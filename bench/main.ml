(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md §4 for the experiment index).

     dune exec bench/main.exe            # run E1–E7
     dune exec bench/main.exe -- e3 e6   # run selected experiments
     dune exec bench/main.exe -- speed   # Bechamel micro-benchmarks (E5)

   Paper reference numbers are printed alongside the measured ones; the
   reproduction target is the *shape* (who wins, by what factor, where
   the walls/crossovers fall), not the authors' absolute testbed numbers. *)

open Tytra_front

let hr title =
  Format.printf "@.%s@.%s@." title (String.make (String.length title) '=')

let pct e a =
  if a = 0.0 then if e = 0.0 then 0.0 else 100.0
  else 100.0 *. Float.abs (e -. a) /. a

(* ------------------------------------------------------------------ *)
(* E1 / Fig 9: resource-cost calibration                               *)
(* ------------------------------------------------------------------ *)

let e1 () =
  hr "E1 / Fig 9: per-instruction resource expressions from synthesis points";
  let device = Tytra_device.Device.stratixv_gsd8 in
  let synth_div w =
    (Tytra_sim.Techmap.map_unit ~device Tytra_ir.Ast.Div (Tytra_ir.Ty.UInt w))
      .Tytra_device.Resources.aluts
  in
  Format.printf
    "fitting quadratic for unsigned-division ALUTs from synthesis at 18/32/64 \
     bits@.";
  let poly = Tytra_cost.Resource_model.calibrate_div synth_div in
  Format.printf "  fitted: %a@." Tytra_cost.Fit.pp_poly poly;
  Format.printf "  paper:  x^2 + 3.7x - 10.6@.";
  let est24 = Tytra_cost.Fit.eval poly 24.0 in
  let act24 = synth_div 24 in
  Format.printf
    "  held-out 24-bit: interpolated %.0f vs synthesized %d  (paper: 654 vs \
     652)@."
    est24 act24;
  Format.printf "@.  width |  div ALUTs | mul ALUTs | mul DSPs@.";
  List.iter
    (fun w ->
      let mu =
        Tytra_sim.Techmap.map_unit ~device Tytra_ir.Ast.Mul (Tytra_ir.Ty.UInt w)
      in
      Format.printf "  %5d | %10d | %9d | %8d@." w (synth_div w)
        mu.Tytra_device.Resources.aluts mu.Tytra_device.Resources.dsps)
    [ 8; 12; 18; 24; 32; 40; 48; 54; 64 ];
  Format.printf
    "  (mul: piecewise-linear ALUTs and stepped DSPs at 18-bit tile \
     boundaries, as in Fig 9)@."

(* ------------------------------------------------------------------ *)
(* E2 / Fig 10: sustained stream bandwidth                             *)
(* ------------------------------------------------------------------ *)

let e2 () =
  hr "E2 / Fig 10: sustained bandwidth vs size and contiguity (ADM-PCIE-7V3)";
  let dev = Tytra_device.Device.virtex7_690t in
  let paper_cont =
    [ (100, 0.3); (200, 1.2); (400, 1.7); (600, 2.4); (1000, 4.1);
      (1500, 5.2); (2000, 5.6); (2500, 5.8); (3000, 6.1); (4000, 6.2);
      (5000, 6.2); (6000, 6.3) ]
  in
  Format.printf "  side | contiguous Gbit/s (paper) | strided Gbit/s (paper)@.";
  List.iter
    (fun (side, paper) ->
      let m = Tytra_streambench.Streambench.copy dev `Cont ~side in
      let gb = m.Tytra_streambench.Streambench.m_bps *. 8.0 /. 1e9 in
      let strided =
        if side <= 2000 then begin
          let s = Tytra_streambench.Streambench.copy dev `Strided ~side in
          Printf.sprintf "%5.3f (0.04-0.07)"
            (s.Tytra_streambench.Streambench.m_bps *. 8.0 /. 1e9)
        end
        else "    -"
      in
      Format.printf "  %4d |        %5.2f (%4.1f)       | %s@." side gb paper
        strided)
    paper_cont;
  let c2000 = Tytra_streambench.Streambench.copy dev `Cont ~side:2000 in
  let s2000 = Tytra_streambench.Streambench.copy dev `Strided ~side:2000 in
  Format.printf "  contiguity impact at side 2000: %.0fx (paper: ~2 orders)@."
    (c2000.Tytra_streambench.Streambench.m_bps
     /. s2000.Tytra_streambench.Streambench.m_bps);
  let r1000 = Tytra_streambench.Streambench.copy dev `Random ~side:1000 in
  let st1000 = Tytra_streambench.Streambench.copy dev `Strided ~side:1000 in
  Format.printf
    "  random vs fixed-stride at side 1000: %.2fx (paper: 'little \
     difference')@."
    (r1000.Tytra_streambench.Streambench.m_bps
     /. st1000.Tytra_streambench.Streambench.m_bps)

(* ------------------------------------------------------------------ *)
(* E3 / Fig 15: SOR variant sweep over lane count                      *)
(* ------------------------------------------------------------------ *)

let e3 () =
  hr "E3 / Fig 15: SOR lane sweep - utilization, bandwidth and EWGT walls";
  let device = Tytra_device.Device.stratixv_gsd8 in
  (* 110 x 104 x 126 = 1441440 points: divisible by every lane count
     1..16, so the sweep has the paper's 16 data points *)
  let im, jm, km = (110, 104, 126) in
  let nki = 10 in
  let prog = Tytra_kernels.Sor.program ~ty:(Tytra_ir.Ty.Float 32) ~im ~jm ~km () in
  Format.printf
    "SOR %dx%dx%d (fp32), %d kernel iterations on %s@." im jm km nki
    device.Tytra_device.Device.dev_name;
  Format.printf
    "lanes  ALUT%%  REG%%  BRAM%%  DSP%%  GMemBW%%  HostBW%%   EWGT-A/s   \
     EWGT-B/s  limiter(A)@.";
  let walls1 = ref None in
  for l = 1 to 16 do
    let v = if l = 1 then Transform.Pipe else Transform.ParPipe l in
    if Transform.applicable prog v then begin
      let d = Lower.lower prog v in
      let ra =
        Tytra_cost.Report.evaluate ~device ~form:Tytra_cost.Throughput.FormA
          ~nki d
      in
      let rb =
        Tytra_cost.Report.evaluate ~device ~form:Tytra_cost.Throughput.FormB
          ~nki d
      in
      if l = 1 then walls1 := Some ra.Tytra_cost.Report.rp_walls;
      let u = ra.Tytra_cost.Report.rp_utilization in
      let bd = ra.Tytra_cost.Report.rp_breakdown in
      let inputs_like_bw which =
        (* achieved share of sustained bandwidth: demand / sustained *)
        let demand = bd.Tytra_cost.Throughput.bd_comp_s in
        match which with
        | `G ->
            100.0 *. (bd.Tytra_cost.Throughput.bd_gmem_s /. Float.max demand bd.Tytra_cost.Throughput.bd_gmem_s)
        | `H ->
            100.0 *. (bd.Tytra_cost.Throughput.bd_host_s /. Float.max demand bd.Tytra_cost.Throughput.bd_host_s)
      in
      Format.printf
        "%5d  %5.1f %5.1f  %5.1f %5.1f   %6.1f   %6.1f  %9.1f  %9.1f  %s@." l
        (100. *. u.Tytra_device.Resources.ut_aluts)
        (100. *. u.Tytra_device.Resources.ut_regs)
        (100. *. u.Tytra_device.Resources.ut_bram)
        (100. *. u.Tytra_device.Resources.ut_dsps)
        (inputs_like_bw `G) (inputs_like_bw `H)
        bd.Tytra_cost.Throughput.bd_ekit
        rb.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_ekit
        (Tytra_cost.Throughput.limiter_to_string
           bd.Tytra_cost.Throughput.bd_limiter)
    end
  done;
  (match !walls1 with
  | Some w ->
      Format.printf "@.walls (from the 1-lane variant): %a@."
        Tytra_cost.Limits.pp_walls w;
      Format.printf
        "paper: host-comm wall ~4 lanes (form A), DRAM wall ~16 lanes (form \
         B), computation wall ~6 lanes@."
  | None -> ())

(* ------------------------------------------------------------------ *)
(* E4 / Table II: estimated vs actual, three kernels                   *)
(* ------------------------------------------------------------------ *)

let e4 () =
  hr "E4 / Table II: estimated vs actual resources and CPKI";
  let device = Tytra_device.Device.stratixv_gsd8 in
  let paper =
    [ ("hotspot", (4.0, 4.2, 0.3, 0.0, 0.07));
      ("lavamd", (6.0, 3.9, 0.0, 13.0, 3.4));
      ("sor", (1.1, 7.1, 0.3, 0.0, 5.2)) ]
  in
  Format.printf
    "kernel    |        ALUT         |        REG          |      BRAM bits   \
     \    |  DSP        | CPKI@.";
  Format.printf
    "          |   est    act   err%% |   est    act   err%% |    est     act  \
     \ err%% | est act err%%| est      act      err%%@.";
  List.iter
    (fun (name, prog) ->
      let d = Lower.lower prog Transform.Pipe in
      let est = Tytra_cost.Resource_model.estimate ~device d in
      let inputs = Tytra_cost.Throughput.inputs_of_design ~device d in
      let cpki_est =
        Tytra_cost.Throughput.cpki Tytra_cost.Throughput.FormB inputs
      in
      let tm = Tytra_sim.Techmap.run ~device ~effort:`Full d in
      let sim =
        Tytra_sim.Cyclesim.run ~device
          ~fmax_mhz:tm.Tytra_sim.Techmap.tm_fmax_mhz ~form:Tytra_sim.Cyclesim.B
          d
      in
      let eu = est.Tytra_cost.Resource_model.est_usage in
      let au = tm.Tytra_sim.Techmap.tm_usage in
      let open Tytra_device.Resources in
      let p e a = pct (float_of_int e) (float_of_int a) in
      Format.printf
        "%-9s | %6d %6d %5.1f | %6d %6d %5.1f | %7d %7d %5.1f | %3d %3d \
         %4.1f| %8.0f %8.0f %5.1f@."
        name eu.aluts au.aluts (p eu.aluts au.aluts) eu.regs au.regs
        (p eu.regs au.regs) eu.bram_bits au.bram_bits
        (p eu.bram_bits au.bram_bits) eu.dsps au.dsps (p eu.dsps au.dsps)
        cpki_est sim.Tytra_sim.Cyclesim.r_cycles_per_ki
        (pct cpki_est sim.Tytra_sim.Cyclesim.r_cycles_per_ki))
    [ ("hotspot", Tytra_kernels.Hotspot.table2_program ());
      ("lavamd", Tytra_kernels.Lavamd.table2_program ());
      ("sor", Tytra_kernels.Sor.table2_program ()) ];
  Format.printf "@.paper errors (ALUT, REG, BRAM, DSP, CPKI):@.";
  List.iter
    (fun (n, (a, r, b, d, c)) ->
      Format.printf "  %-9s %4.1f %4.1f %4.1f %4.1f %4.2f@." n a r b d c)
    paper

(* ------------------------------------------------------------------ *)
(* E5: estimator speed vs synthesis-grade evaluation                   *)
(* ------------------------------------------------------------------ *)

let time_s f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Cumulative wall time attributed to span [name] so far, in seconds;
   measuring a phase = subtracting two snapshots around it. Requires
   telemetry to be enabled while the measured code runs. *)
let span_total_s name =
  List.fold_left
    (fun acc (r : Tytra_telemetry.Export.row) ->
      if r.Tytra_telemetry.Export.sr_name = name then
        acc
        +. (Int64.to_float r.Tytra_telemetry.Export.sr_total_ns /. 1e9)
      else acc)
    0.0
    (Tytra_telemetry.Export.summary ())

(* Run [f] with span recording on (restoring the previous state) and
   return [f ()] plus the wall time spent inside span [name]. *)
let with_span_meter name f =
  let was = Tytra_telemetry.Control.is_enabled () in
  Tytra_telemetry.Control.set_enabled true;
  let before = span_total_s name in
  let r = f () in
  let dt = span_total_s name -. before in
  Tytra_telemetry.Control.set_enabled was;
  (r, dt)

(* --jobs N: width of the Domain pool used by the E5 parallel sweep
   (0 = one per core). *)
let jobs_flag = ref 1

let e5 () =
  hr "E5 / par.VI-A: cost-model evaluation speed per design variant";
  let device = Tytra_device.Device.stratixv_gsd8 in
  let prog = Tytra_kernels.Sor.program ~im:64 ~jm:64 ~km:64 () in
  let variants =
    [ Transform.Pipe; Transform.ParPipe 2; Transform.ParPipe 4;
      Transform.ParPipe 8; Transform.ParPipe 16 ]
  in
  Format.printf
    "variant        estimator(s)  synthesis+sim(s)   ratio@.";
  let tot_e = ref 0.0 and tot_s = ref 0.0 in
  List.iter
    (fun v ->
      let d = Lower.lower prog v in
      ignore (Tytra_cost.Report.evaluate ~device d) (* warm *);
      let _, te = time_s (fun () -> Tytra_cost.Report.evaluate ~device d) in
      let _, ts =
        time_s (fun () ->
            let tm = Tytra_sim.Techmap.run ~device ~effort:`Full d in
            Tytra_sim.Cyclesim.run ~device
              ~fmax_mhz:tm.Tytra_sim.Techmap.tm_fmax_mhz d)
      in
      tot_e := !tot_e +. te;
      tot_s := !tot_s +. ts;
      Format.printf "%-13s  %11.5f  %16.3f  %6.0fx@." (Transform.to_string v)
        te ts (ts /. Float.max 1e-9 te))
    variants;
  Format.printf
    "total for %d variants: estimator %.4f s, synthesis-grade %.2f s -> \
     %.0fx@."
    (List.length variants) !tot_e !tot_s (!tot_s /. Float.max 1e-9 !tot_e);
  Format.printf
    "paper: 0.3 s/variant for the estimator vs ~70 s for SDAccel estimates \
     (>200x)@.";
  (* the estimator loop through the Domain pool: same sweep, N workers *)
  let jobs =
    if !jobs_flag = 0 then Tytra_exec.Pool.default_jobs () else !jobs_flag
  in
  let sweep_prog = Tytra_kernels.Sor.program ~im:96 ~jm:96 ~km:96 () in
  let config jobs =
    (* prune off: E5 measures the pool's scaling on the full evaluation
       load; E8 measures what pruning removes from it *)
    { Tytra_dse.Dse.default_config with
      max_lanes = 64; max_vec = 8; nki = 100; jobs; use_cache = false;
      prune = false }
  in
  Tytra_dse.Dse.clear_cache ();
  let pts, t1 =
    time_s (fun () -> Tytra_dse.Dse.explore ~config:(config 1) sweep_prog)
  in
  let _, tn =
    time_s (fun () -> Tytra_dse.Dse.explore ~config:(config jobs) sweep_prog)
  in
  Format.printf
    "parallel sweep (--jobs): %d points on %d core(s); jobs=1 %.3f s, \
     jobs=%d %.3f s -> %.2fx@."
    (List.length pts)
    (Domain.recommended_domain_count ())
    t1 jobs tn
    (t1 /. Float.max 1e-9 tn);
  (* memoized repeat: an identical sweep is served from the cache *)
  Tytra_dse.Dse.clear_cache ();
  let cached = { (config jobs) with Tytra_dse.Dse.use_cache = true } in
  let _, cold =
    time_s (fun () -> Tytra_dse.Dse.explore ~config:cached sweep_prog)
  in
  let before = Tytra_dse.Dse.cache_stats () in
  let _, warm =
    time_s (fun () -> Tytra_dse.Dse.explore ~config:cached sweep_prog)
  in
  let s = Tytra_dse.Dse.cache_stats () in
  let warm_hits = s.Tytra_exec.Cache.st_hits - before.Tytra_exec.Cache.st_hits in
  let warm_misses =
    s.Tytra_exec.Cache.st_misses - before.Tytra_exec.Cache.st_misses
  in
  Format.printf
    "memoized repeat: cold %.3f s, warm %.4f s (%.0fx); warm sweep %d hits / \
     %d misses (hit rate %.0f%%)@."
    cold warm
    (cold /. Float.max 1e-9 warm)
    warm_hits warm_misses
    (100.0
    *. float_of_int warm_hits
    /. Float.max 1.0 (float_of_int (warm_hits + warm_misses)))

(* ------------------------------------------------------------------ *)
(* E8: bound-based DSE pruning - exhaustive vs pruned sweep            *)
(* ------------------------------------------------------------------ *)

let e8 () =
  hr "E8: bound-based pruning - exhaustive vs pruned sweep, all kernels";
  let jobs =
    if !jobs_flag = 0 then Tytra_exec.Pool.default_jobs () else !jobs_flag
  in
  let kernels =
    [
      ("sor",
       Tytra_kernels.Sor.program ~ty:(Tytra_ir.Ty.Float 32) ~im:64 ~jm:64
         ~km:64 ());
      ("hotspot", Tytra_kernels.Hotspot.program ~rows:64 ~cols:64 ());
      ("lavamd", Tytra_kernels.Lavamd.program ~boxes:64 ());
      ("srad", Tytra_kernels.Srad.program ~rows:64 ~cols:64 ());
    ]
  in
  let config =
    (* the E5 sweep space: 64 lanes with vectorization variants *)
    { Tytra_dse.Dse.default_config with
      max_lanes = 64; max_vec = 8; nki = 100; jobs; use_cache = false }
  in
  (* cold caches for every run so the comparison is evaluation work, not
     memoization *)
  let cold_sweep prune prog =
    Tytra_dse.Dse.clear_cache ();
    Tytra_cost.Report.clear_stage_caches ();
    time_s (fun () ->
        Tytra_dse.Dse.explore_sweep
          ~config:{ config with Tytra_dse.Dse.prune } prog)
  in
  Format.printf
    "kernel   | space | exhaustive evals/time | pruned evals/time | fewer \
     evals | same best@.";
  List.iter
    (fun (name, prog) ->
      let ex, t_ex = cold_sweep false prog in
      let pr, t_pr = cold_sweep true prog in
      let exs = ex.Tytra_dse.Dse.sw_stats
      and prs = pr.Tytra_dse.Dse.sw_stats in
      let vname p =
        match Tytra_dse.Dse.best p.Tytra_dse.Dse.sw_points with
        | Some b -> Transform.to_string b.Tytra_dse.Dse.dp_variant
        | None -> "-"
      in
      let same = vname ex = vname pr in
      let ratio =
        float_of_int exs.Tytra_dse.Dse.ss_evaluated
        /. Float.max 1.0 (float_of_int prs.Tytra_dse.Dse.ss_evaluated)
      in
      Format.printf
        "%-8s | %5d | %8d  %9.4f s | %5d  %8.4f s |     %4.1fx  | %s (%s)@."
        name exs.Tytra_dse.Dse.ss_space exs.Tytra_dse.Dse.ss_evaluated t_ex
        prs.Tytra_dse.Dse.ss_evaluated t_pr ratio
        (if same then "yes" else "NO")
        (vname pr);
      List.iter
        (fun (k, v) ->
          Tytra_telemetry.Metrics.set
            (Printf.sprintf "bench.e8.%s.%s" name k)
            (float_of_int v))
        [ ("space", exs.Tytra_dse.Dse.ss_space);
          ("evals_exhaustive", exs.Tytra_dse.Dse.ss_evaluated);
          ("evals_pruned", prs.Tytra_dse.Dse.ss_evaluated);
          ("pruned_resource", prs.Tytra_dse.Dse.ss_pruned_resource);
          ("pruned_incumbent", prs.Tytra_dse.Dse.ss_pruned_incumbent) ];
      Tytra_telemetry.Metrics.set
        (Printf.sprintf "bench.e8.%s.exhaustive_s" name) t_ex;
      Tytra_telemetry.Metrics.set
        (Printf.sprintf "bench.e8.%s.pruned_s" name) t_pr)
    kernels;
  (* stage-cache effect: the same pruned SOR sweep, warm per-stage caches *)
  let prog = List.assoc "sor" kernels in
  let _, cold = cold_sweep true prog in
  let _, warm =
    time_s (fun () -> Tytra_dse.Dse.explore_sweep ~config prog)
  in
  Format.printf
    "@.staged cost memoization (pruned SOR sweep): cold %.4f s, warm %.4f \
     s@."
    cold warm;
  List.iter
    (fun (name, s) ->
      let total = s.Tytra_exec.Cache.st_hits + s.Tytra_exec.Cache.st_misses in
      Format.printf "  %-28s %6d hits / %6d lookups (%.0f%%)@." name
        s.Tytra_exec.Cache.st_hits total
        (100.0
        *. float_of_int s.Tytra_exec.Cache.st_hits
        /. Float.max 1.0 (float_of_int total)))
    (Tytra_cost.Report.stage_cache_stats ());
  Format.printf
    "(the bounds keep best/pareto provably exact while skipping most of the \
     64-lane space: replication beyond the bandwidth wall cannot beat the \
     incumbent, oversize lane counts cannot fit)@.";
  (* --- IR fast path vs reference: measured, not asserted --- *)
  Format.printf
    "@.IR fast path (derived variants + incremental annealer) vs \
     --no-fast-ir:@.";
  let selection_sig sw =
    let pts = sw.Tytra_dse.Dse.sw_points in
    let sig_of p =
      ( Transform.to_string p.Tytra_dse.Dse.dp_variant,
        Tytra_dse.Dse.ekit p,
        Tytra_dse.Dse.area p )
    in
    ( Option.map sig_of (Tytra_dse.Dse.best pts),
      List.map sig_of (Tytra_dse.Dse.pareto pts) )
  in
  (* workload A: the exhaustive 4-kernel sweep above (every point
     lowered and validated, nothing pruned away) — the same load whose
     ir.validate total the committed baseline records *)
  let sweep_all fast =
    Tytra_ir.Fastpath.with_enabled fast (fun () ->
        with_span_meter "ir.validate" (fun () ->
            List.map
              (fun (_, prog) ->
                Tytra_dse.Dse.clear_cache ();
                Tytra_cost.Report.clear_stage_caches ();
                selection_sig
                  (Tytra_dse.Dse.explore_sweep
                     ~config:{ config with Tytra_dse.Dse.prune = false }
                     prog))
              kernels))
  in
  let sel_fast, tv_fast = sweep_all true in
  let sel_slow, tv_slow = sweep_all false in
  let same_sel = sel_fast = sel_slow in
  Format.printf
    "  ir.validate over the exhaustive sweeps: fast %.4f s, slow %.4f s -> \
     %.2fx; best/pareto %s@."
    tv_fast tv_slow
    (tv_slow /. Float.max 1e-9 tv_fast)
    (if same_sel then "identical" else "DIFFER");
  (* workload B: the synthesis-grade SOR placement load, once per
     placement mode. reference vs incremental is the bit-identity
     check; parallel is held to the wirelength quality bound instead
     (<= reference + 2% per variant). Normal effort keeps the reference
     leg affordable — the Full-effort production load runs only under
     the parallel engine below. *)
  let place_prog =
    Tytra_kernels.Sor.program ~ty:(Tytra_ir.Ty.Float 32) ~im:64 ~jm:64
      ~km:64 ()
  in
  let place_variants =
    [ Transform.Pipe; Transform.ParPipe 2; Transform.ParPipe 4;
      Transform.ParPipe 8; Transform.ParPipe 16 ]
  in
  let place_all ?(effort = `Normal) mode =
    with_span_meter "sim.techmap.place" (fun () ->
        List.map
          (fun v ->
            let d = Lower.lower place_prog v in
            let tm = Tytra_sim.Techmap.run ~effort ~mode d in
            tm.Tytra_sim.Techmap.tm_avg_wire)
          place_variants)
  in
  let wire_slow, tp_slow = place_all Tytra_sim.Techmap.Reference in
  let wire_fast, tp_fast = place_all Tytra_sim.Techmap.Incremental in
  let wire_par, tp_par = place_all Tytra_sim.Techmap.Parallel in
  let same_wire = wire_fast = wire_slow in
  let quality_ok =
    List.for_all2 (fun p r -> p <= (r *. 1.02) +. 1e-9) wire_par wire_slow
  in
  Format.printf
    "  sim.techmap.place over 5 SOR runs: reference %.4f s, incremental \
     %.4f s (%.2fx, placements %s), parallel %.4f s (%.2fx, wire within \
     +2%%: %s)@."
    tp_slow tp_fast
    (tp_slow /. Float.max 1e-9 tp_fast)
    (if same_wire then "bit-identical" else "DIFFER")
    tp_par
    (tp_slow /. Float.max 1e-9 tp_par)
    (if quality_ok then "yes" else "NO");
  (* the Full-effort production load (the old E8 bottleneck) now runs
     on the parallel engine: analytic seed + replica exchange *)
  let _, tp_full = place_all ~effort:`Full Tytra_sim.Techmap.Parallel in
  Format.printf
    "  sim.techmap.place over 5 full SOR runs (parallel engine): %.4f s@."
    tp_full;
  (* DSE selections must not depend on the placement mode *)
  let sel_of_mode mode =
    Tytra_sim.Techmap.with_place_mode (Some mode) (fun () ->
        Tytra_dse.Dse.clear_cache ();
        Tytra_cost.Report.clear_stage_caches ();
        selection_sig (Tytra_dse.Dse.explore_sweep ~config prog))
  in
  let mode_sels =
    List.map sel_of_mode
      [ Tytra_sim.Techmap.Reference; Tytra_sim.Techmap.Incremental;
        Tytra_sim.Techmap.Parallel ]
  in
  let mode_sel_same =
    List.for_all (fun s -> s = List.hd mode_sels) mode_sels
  in
  Format.printf "  best/pareto across place modes: %s@."
    (if mode_sel_same then "identical" else "DIFFER");
  List.iter
    (fun (k, v) -> Tytra_telemetry.Metrics.set ("bench.e8.fastpath." ^ k) v)
    [ ("validate_fast_s", tv_fast);
      ("validate_slow_s", tv_slow);
      ("validate_speedup", tv_slow /. Float.max 1e-9 tv_fast);
      ("place_fast_s", tp_fast);
      ("place_slow_s", tp_slow);
      ("place_speedup", tp_slow /. Float.max 1e-9 tp_fast);
      ("selections_identical", if same_sel then 1.0 else 0.0);
      ("placements_identical", if same_wire then 1.0 else 0.0) ];
  List.iter
    (fun (k, v) -> Tytra_telemetry.Metrics.set ("bench.e8.placemode." ^ k) v)
    [ ("parallel_s", tp_par);
      ("parallel_speedup", tp_slow /. Float.max 1e-9 tp_par);
      ("full_parallel_s", tp_full);
      ("quality_ok", if quality_ok then 1.0 else 0.0);
      ("selections_identical", if mode_sel_same then 1.0 else 0.0) ];
  (* --- resilience overhead on the clean path: measured, not asserted.
     jobs = 1 keeps the measurement free of domain-scheduling jitter;
     the retry wrapper and checkpoint writes cost the same per point
     either way. --- *)
  Format.printf
    "@.resilience overhead (exhaustive sequential SOR sweep, no faults \
     injected):@.";
  let resilient_sweep extra =
    Tytra_dse.Dse.clear_cache ();
    Tytra_cost.Report.clear_stage_caches ();
    time_s (fun () ->
        Tytra_dse.Dse.explore_sweep
          ~config:(extra { config with Tytra_dse.Dse.prune = false; jobs = 1 })
          prog)
  in
  let ckpt_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tytra_bench_e8_ckpt.%d" (Unix.getpid ()))
  in
  let clean = Fun.id in
  let retrying c =
    { c with Tytra_dse.Dse.max_attempts = 3; fail_fast = false }
  in
  let checkpointing c =
    { (retrying c) with Tytra_dse.Dse.checkpoint = Some ckpt_path }
  in
  (* interleave the configurations across rounds (taking each one's best)
     so machine drift hits all three equally *)
  ignore (resilient_sweep clean);
  let best = Array.make 3 infinity in
  for _ = 1 to 3 do
    List.iteri
      (fun i extra -> best.(i) <- min best.(i) (snd (resilient_sweep extra)))
      [ clean; retrying; checkpointing ]
  done;
  let t_clean = best.(0) and t_res = best.(1) and t_ckpt = best.(2) in
  (* count the writes in a separate untimed run, with telemetry forced
     on (the timed runs above must not pay for it) *)
  let writes =
    Tytra_telemetry.Control.with_enabled true (fun () ->
        let before =
          Option.value ~default:0.0
            (Tytra_telemetry.Metrics.counter_value "dse.checkpoint.writes")
        in
        ignore (resilient_sweep checkpointing);
        Option.value ~default:0.0
          (Tytra_telemetry.Metrics.counter_value "dse.checkpoint.writes")
        -. before)
  in
  (if Sys.file_exists ckpt_path then Sys.remove ckpt_path);
  let pct extra = 100.0 *. (extra -. t_clean) /. Float.max 1e-9 t_clean in
  let per_write_ms =
    1000.0 *. (t_ckpt -. t_res) /. Float.max 1.0 writes
  in
  Format.printf
    "  clean %.4f s | retries+quarantine %.4f s (%+.2f%%, target < 2%%) | + \
     checkpoints %.4f s (%.0f writes, %.1f ms/write)@."
    t_clean t_res (pct t_res) t_ckpt writes per_write_ms;
  Format.printf
    "  (a checkpoint write costs a fixed Marshal+rename; it amortizes below \
     the 2%% target whenever a checkpoint interval evaluates for longer \
     than ~50x the write, which any synthesis-grade sweep does)@.";
  List.iter
    (fun (k, v) -> Tytra_telemetry.Metrics.set ("bench.e8.resilience." ^ k) v)
    [ ("clean_s", t_clean);
      ("resilient_s", t_res);
      ("checkpoint_s", t_ckpt);
      ("overhead_pct", pct t_res);
      ("checkpoint_write_ms", per_write_ms) ];
  (* --- observability overhead on the same sweep: event log + flight
     recorder + progress callback. Two numbers are reported:

     (1) attributed overhead (the gated one): the instrumentation a live
         sweep adds per evaluated point — the two clock reads that time
         the point, one flight-recorder note, one point_evaluated emit
         into a real file sink — micro-timed over enough iterations to
         resolve it, multiplied out over the sweep's space, divided by
         the sweep's wall time. This prices exactly the added work and
         is reproducible to sub-percent on any host.

     (2) end-to-end on-vs-off minimum floors (sanity print, not gated):
         on a virtualized host this sweep's own wall time wanders by
         5-8% at the seconds scale — an order of magnitude above the
         ~0.1% effect — so a direct difference measures host drift, not
         instrumentation. The min over interleaved single-sweep samples
         is the most drift-resistant end-to-end summary and is printed
         for cross-checking the attribution, nothing more.

     The progress line is formatted into a buffer, not written to the
     terminal, so the measurement prices the instrumentation rather
     than tty I/O; progress fires once per wave (not per point), so it
     contributes to (2) but is negligible in (1). --- *)
  Format.printf
    "@.observability overhead (same sweep; events + flight recorder + \
     progress):@.";
  let events_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tytra_bench_e8_events.%d.jsonl" (Unix.getpid ()))
  in
  (* only install a private event sink if the harness-wide --events one
     is not already active (stealing it would truncate the user's file) *)
  let own_sink = not (Tytra_telemetry.Events.active ()) in
  let progress_buf = Buffer.create 128 in
  let on_progress (p : Tytra_dse.Dse.progress) =
    Buffer.clear progress_buf;
    Buffer.add_string progress_buf
      (Printf.sprintf "[explore] %d/%d points  pruned %d  failed %d"
         p.Tytra_dse.Dse.pr_evaluated p.Tytra_dse.Dse.pr_space
         p.Tytra_dse.Dse.pr_pruned p.Tytra_dse.Dse.pr_failed)
  in
  let space_pts = ref 0 in
  let observed_sweep observed =
    Tytra_dse.Dse.clear_cache ();
    Tytra_cost.Report.clear_stage_caches ();
    if observed then begin
      if own_sink then Tytra_telemetry.Events.open_file events_path;
      Tytra_dse.Flightrec.enable ()
    end;
    let cfg =
      { config with
        Tytra_dse.Dse.prune = false; jobs = 1;
        on_progress = (if observed then Some on_progress else None) }
    in
    let sw = ref None in
    let _, t =
      time_s (fun () -> sw := Some (Tytra_dse.Dse.explore_sweep ~config:cfg prog))
    in
    Option.iter
      (fun sw -> space_pts := sw.Tytra_dse.Dse.sw_stats.Tytra_dse.Dse.ss_space)
      !sw;
    if observed then begin
      if own_sink then Tytra_telemetry.Events.close ();
      Tytra_dse.Flightrec.disable ()
    end;
    t
  in
  ignore (observed_sweep false);
  ignore (observed_sweep true);
  let n_samples = 5 in
  let offs = Array.make n_samples 0.0 in
  let ons = Array.make n_samples 0.0 in
  for i = 0 to n_samples - 1 do
    ons.(i) <- observed_sweep true;
    offs.(i) <- observed_sweep false
  done;
  let amin a = Array.fold_left min a.(0) a in
  let t_off = amin offs and t_on = amin ons in
  (* attributed per-point cost: exactly what the sweep's hot loop adds
     per point when fully observed, against a real file sink *)
  Tytra_dse.Flightrec.enable ();
  let iters = 20_000 in
  let per_point_sample () =
    if own_sink then Tytra_telemetry.Events.open_file events_path;
    let _, t =
      time_s (fun () ->
          for _ = 1 to iters do
            let t0 = Tytra_telemetry.Clock.now_ns () in
            Tytra_dse.Flightrec.note ~variant:"par8-pipe"
              (Tytra_dse.Flightrec.Evaluated
                 { fo_ekit = 123.5; fo_valid = true; fo_cached = false;
                   fo_dur_ns = 1_000L });
            let t1 = Tytra_telemetry.Clock.now_ns () in
            Tytra_telemetry.Events.emit
              (Tytra_telemetry.Events.Point_evaluated
                 { variant = "par8-pipe"; ekit = 123.5; valid = true;
                   cached = false; dur_ns = Int64.sub t1 t0 })
          done)
    in
    t /. float_of_int iters
  in
  ignore (per_point_sample ());
  let per_point_s =
    min (per_point_sample ()) (min (per_point_sample ()) (per_point_sample ()))
  in
  if own_sink then Tytra_telemetry.Events.close ();
  Tytra_dse.Flightrec.disable ();
  (if own_sink && Sys.file_exists events_path then Sys.remove events_path);
  let over_pct =
    100.0 *. per_point_s *. float_of_int !space_pts /. Float.max 1e-9 t_off
  in
  Format.printf
    "  attributed: %.2f us/point x %d points = %+.2f%% of the %.4f s sweep \
     (target <= 2%%)@."
    (per_point_s *. 1e6) !space_pts over_pct t_off;
  Format.printf
    "  end-to-end min floors: off %.4f s | on %.4f s (%+.2f%%; host noise \
     floor is several %%, see bench/main.ml)@."
    t_off t_on
    (100.0 *. (t_on -. t_off) /. Float.max 1e-9 t_off);
  List.iter
    (fun (k, v) ->
      Tytra_telemetry.Metrics.set ("bench.e8.observability." ^ k) v)
    [ ("off_s", t_off); ("on_s", t_on);
      ("per_point_us", per_point_s *. 1e6);
      ("overhead_pct", over_pct) ]

(* ------------------------------------------------------------------ *)
(* E9: parse+validate throughput (front-end speed microbench)          *)
(* ------------------------------------------------------------------ *)

let e9 () =
  hr "E9: parse+validate throughput, lines/sec over kernels x lane counts";
  let kernels =
    [
      ("sor",
       Tytra_kernels.Sor.program ~ty:(Tytra_ir.Ty.Float 32) ~im:64 ~jm:64
         ~km:64 ());
      ("hotspot", Tytra_kernels.Hotspot.program ~rows:64 ~cols:64 ());
      ("lavamd", Tytra_kernels.Lavamd.program ~boxes:64 ());
      ("srad", Tytra_kernels.Srad.program ~rows:64 ~cols:64 ());
    ]
  in
  let lanes = [ 1; 4; 16; 64 ] in
  let reps = 5 in
  Format.printf "kernel   | lanes |  lines | parse+validate | lines/sec@.";
  let tot_lines = ref 0 and tot_t = ref 0.0 in
  List.iter
    (fun (name, prog) ->
      List.iter
        (fun l ->
          let v =
            if l = 1 then Transform.Pipe else Transform.ParPipe l
          in
          if Transform.applicable prog v then begin
            let src =
              Tytra_ir.Pprint.design_to_string (Lower.lower prog v)
            in
            let nlines =
              String.fold_left
                (fun acc c -> if c = '\n' then acc + 1 else acc)
                0 src
            in
            (* warm once (symbol interning, minor heap), then measure *)
            ignore (Tytra_ir.Validate.check (Tytra_ir.Parser.parse src));
            let _, t =
              time_s (fun () ->
                  for _ = 1 to reps do
                    let d = Tytra_ir.Parser.parse src in
                    match Tytra_ir.Validate.check d with
                    | [] -> ()
                    | _ -> failwith "E9: kernel design failed validation"
                  done)
            in
            let per = t /. float_of_int reps in
            let lps = float_of_int nlines /. Float.max 1e-9 per in
            tot_lines := !tot_lines + nlines;
            tot_t := !tot_t +. per;
            Format.printf "%-8s | %5d | %6d | %11.5f s | %9.0f@." name l
              nlines per lps;
            List.iter
              (fun (k, x) ->
                Tytra_telemetry.Metrics.set
                  (Printf.sprintf "bench.e9.%s.l%d.%s" name l k)
                  x)
              [ ("lines", float_of_int nlines);
                ("parse_validate_s", per);
                ("lines_per_s", lps) ]
          end)
        lanes)
    kernels;
  Format.printf
    "total: %d lines in %.4f s -> %.0f lines/sec aggregate@." !tot_lines
    !tot_t
    (float_of_int !tot_lines /. Float.max 1e-9 !tot_t);
  Tytra_telemetry.Metrics.set "bench.e9.total_lines"
    (float_of_int !tot_lines);
  Tytra_telemetry.Metrics.set "bench.e9.total_s" !tot_t

(* ------------------------------------------------------------------ *)
(* E10: cost-model-as-a-service - warm engine vs one-shot CLI          *)
(* ------------------------------------------------------------------ *)

module Engine = Tytra_engine.Engine

let percentile sorted p =
  let n = Array.length sorted in
  sorted.(min (n - 1) (n * p / 100))

let e10 () =
  hr "E10: cost-model-as-a-service - warm engine latency vs one-shot CLI";
  let device = Tytra_device.Device.stratixv_gsd8 in
  (* small instances: E10 measures request-lifecycle overhead, not
     evaluation scaling (that is E5/E8) *)
  let kernels =
    [
      ("sor", Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 ());
      ("hotspot", Tytra_kernels.Hotspot.program ~rows:32 ~cols:32 ());
      ("lavamd", Tytra_kernels.Lavamd.program ~boxes:8 ());
      ("srad", Tytra_kernels.Srad.program ~rows:32 ~cols:32 ());
    ]
  in
  let sources =
    List.map
      (fun (name, prog) ->
        (name, Tytra_ir.Pprint.design_to_string (Lower.lower prog Transform.Pipe)))
      kernels
  in
  (* the mixed traffic profile: per kernel one check, a cost in each
     throughput form, and a cycle-accurate sim - 16 distinct requests *)
  let mix =
    List.concat_map
      (fun (name, src) ->
        let source = Engine.Inline src in
        [
          (name ^ "/check", Engine.Check { source });
          ( name ^ "/costA",
            Engine.Cost
              { source; device; form = Tytra_cost.Throughput.FormA; nki = 10;
                optimize = false; calib = None } );
          ( name ^ "/costB",
            Engine.Cost
              { source; device; form = Tytra_cost.Throughput.FormB; nki = 10;
                optimize = false; calib = None } );
          ( name ^ "/sim",
            Engine.Sim
              { source; device; form = Tytra_cost.Throughput.FormB; nki = 10;
                optimize = false } );
        ])
      sources
  in
  let eng = Engine.create Engine.default_config in
  let submit_ok (label, req) =
    match Engine.submit eng req with
    | Ok _ -> ()
    | Error e -> failwith ("E10 request " ^ label ^ ": " ^ Engine.error_message e)
  in
  (* prewarm sequentially: fills the parse cache and the process-global
     stage caches, so the measured phases see steady-state traffic (and
     the cache counters stay a pure function of the request counts) *)
  List.iter submit_ok mix;
  let warm0 = Engine.parse_cache_stats eng in
  (* sequential phase: per-request latency percentiles *)
  let seq_reps = 10 in
  let lats =
    Array.init (seq_reps * List.length mix) (fun i ->
        let req = List.nth mix (i mod List.length mix) in
        let (), dt = time_s (fun () -> submit_ok req) in
        dt)
  in
  Array.sort compare lats;
  let p50 = percentile lats 50 and p95 = percentile lats 95 in
  (* concurrent phase: 4 client domains replay the mix against the one
     warm engine (fixed at 4 regardless of --jobs, so the work counters
     are machine-independent) *)
  let clients = 4 and conc_reps = 5 in
  let (), wall =
    time_s (fun () ->
        List.init clients (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to conc_reps do
                  List.iter submit_ok mix
                done))
        |> List.iter Domain.join)
  in
  let conc_n = clients * conc_reps * List.length mix in
  let req_s = float_of_int conc_n /. Float.max 1e-9 wall in
  let warm1 = Engine.parse_cache_stats eng in
  Format.printf
    "mixed traffic (%d request kinds over 4 kernels: check + cost A/B + sim):@."
    (List.length mix);
  Format.printf
    "  sequential: %d requests, p50 %.3f ms, p95 %.3f ms@."
    (Array.length lats) (p50 *. 1e3) (p95 *. 1e3);
  Format.printf
    "  concurrent: %d clients x %d requests -> %.0f req/s sustained@." clients
    (conc_reps * List.length mix) req_s;
  Format.printf
    "  parse cache over the measured phases: %d hits / %d misses (the warm \
     engine re-parses nothing)@."
    (warm1.Tytra_exec.Cache.st_hits - warm0.Tytra_exec.Cache.st_hits)
    (warm1.Tytra_exec.Cache.st_misses - warm0.Tytra_exec.Cache.st_misses);
  (* cold comparison: the same cost request as a one-shot tybec process
     (fork + exec + parse + validate + evaluate + exit) vs the warm
     engine answering it in-process *)
  let sor_src = List.assoc "sor" sources in
  let tirl_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tytra_bench_e10.%d.tirl" (Unix.getpid ()))
  in
  let oc = open_out tirl_path in
  output_string oc sor_src;
  close_out oc;
  let cost_req =
    Engine.Cost
      { source = Engine.File tirl_path; device;
        form = Tytra_cost.Throughput.FormB; nki = 1; optimize = false;
        calib = None }
  in
  submit_ok ("cold-compare/warm", cost_req);
  let warm_reps = 40 in
  let warm_lats =
    Array.init warm_reps (fun _ ->
        snd (time_s (fun () -> submit_ok ("cold-compare/warm", cost_req))))
  in
  Array.sort compare warm_lats;
  let warm_p50 = percentile warm_lats 50 in
  let tybec =
    let guess =
      Filename.concat
        (Filename.dirname (Filename.dirname Sys.executable_name))
        "bin/tybec.exe"
    in
    if Sys.file_exists guess then Some guess else None
  in
  let cold_p50 =
    match tybec with
    | Some exe ->
        let cmd =
          Printf.sprintf "%s cost %s > /dev/null 2>&1" (Filename.quote exe)
            (Filename.quote tirl_path)
        in
        let runs =
          Array.init 7 (fun _ ->
              snd
                (time_s (fun () ->
                     if Sys.command cmd <> 0 then
                       failwith "E10: cold tybec cost failed")))
        in
        Array.sort compare runs;
        percentile runs 50
    | None ->
        (* no CLI binary next to the bench executable: approximate a
           cold process with a fresh engine over cleared caches (this
           under-counts exec+runtime-startup cost, so the printed ratio
           is a floor) *)
        Format.printf
          "  (tybec.exe not found; cold figure is in-process cold-cache, a \
           floor on the true ratio)@.";
        let runs =
          Array.init 7 (fun _ ->
              Tytra_cost.Report.clear_stage_caches ();
              let cold_eng = Engine.create Engine.default_config in
              snd
                (time_s (fun () ->
                     match Engine.submit cold_eng cost_req with
                     | Ok _ -> ()
                     | Error e -> failwith (Engine.error_message e))))
        in
        Array.sort compare runs;
        percentile runs 50
  in
  Sys.remove tirl_path;
  let speedup = cold_p50 /. Float.max 1e-9 warm_p50 in
  Format.printf
    "  cold one-shot `tybec cost` p50 %.2f ms vs warm engine p50 %.3f ms -> \
     %.0fx (target >= 10x)@."
    (cold_p50 *. 1e3) (warm_p50 *. 1e3) speedup;
  List.iter
    (fun (k, v) -> Tytra_telemetry.Metrics.set ("bench.e10." ^ k) v)
    [
      ("warm_p50_ms", p50 *. 1e3);
      ("warm_p95_ms", p95 *. 1e3);
      ("req_per_s", req_s);
      ("cold_p50_ms", cold_p50 *. 1e3);
      ("cold_vs_warm_p50_x", speedup);
      ( "parse_cache_hits",
        float_of_int (warm1.Tytra_exec.Cache.st_hits - warm0.Tytra_exec.Cache.st_hits) );
      ( "parse_cache_misses",
        float_of_int
          (warm1.Tytra_exec.Cache.st_misses - warm0.Tytra_exec.Cache.st_misses) );
    ]

(* ------------------------------------------------------------------ *)
(* E11: parallel placement - analytic seed vs random start, replica    *)
(* scaling                                                             *)
(* ------------------------------------------------------------------ *)

let e11 () =
  Format.printf
    "@.E11: parallel placement - analytic seed vs random start, replica \
     scaling@.";
  Format.printf
    "=======================================================================@.";
  let prog =
    Tytra_kernels.Sor.program ~ty:(Tytra_ir.Ty.Float 32) ~im:64 ~jm:64 ~km:64
      ()
  in
  let netlist_of v =
    let d = Lower.lower prog v in
    let summary = Tytra_ir.Config_tree.classify d in
    let pes =
      List.filter_map (Tytra_ir.Ast.find_func d)
        summary.Tytra_ir.Config_tree.cs_pes
    in
    Tytra_sim.Techmap.build_netlist d pes
  in
  let effort = Tytra_sim.Techmap.effort_passes `Normal in
  (* --- seed ablation: identical budget, ladder and replica streams;
     only the starting placement differs --- *)
  Format.printf
    "variant |   cells | moves seeded | moves random | saved | wire \
     seeded / random@.";
  let any_reduced = ref false in
  List.iter
    (fun (name, v) ->
      let nl = netlist_of v in
      let seed = Tytra_sim.Prng.seed_of_string ("e11:" ^ name) in
      let run si =
        time_s (fun () ->
            Tytra_sim.Techmap.place_parallel ~seed_init:si ~seed ~effort nl)
      in
      let seeded, t_seeded = run `Analytic in
      let random, t_random = run `Random in
      let saved =
        float_of_int random.Tytra_sim.Techmap.pl_moves
        /. Float.max 1.0 (float_of_int seeded.Tytra_sim.Techmap.pl_moves)
      in
      if seeded.Tytra_sim.Techmap.pl_moves < random.Tytra_sim.Techmap.pl_moves
      then any_reduced := true;
      Format.printf
        "%-7s | %7d | %12d | %12d | %4.1fx | %.2f / %.2f (%.3f s / %.3f \
         s)@."
        name nl.Tytra_sim.Techmap.n_cells seeded.Tytra_sim.Techmap.pl_moves
        random.Tytra_sim.Techmap.pl_moves saved
        seeded.Tytra_sim.Techmap.pl_avg_wire
        random.Tytra_sim.Techmap.pl_avg_wire t_seeded t_random;
      List.iter
        (fun (k, x) ->
          Tytra_telemetry.Metrics.set
            (Printf.sprintf "bench.e11.%s.%s" name k)
            x)
        [ ("moves_seeded", float_of_int seeded.Tytra_sim.Techmap.pl_moves);
          ("moves_random", float_of_int random.Tytra_sim.Techmap.pl_moves);
          ("wire_seeded", seeded.Tytra_sim.Techmap.pl_avg_wire);
          ("wire_random", random.Tytra_sim.Techmap.pl_avg_wire) ])
    [ ("pipe", Transform.Pipe); ("par4", Transform.ParPipe 4);
      ("par16", Transform.ParPipe 16) ];
  Tytra_telemetry.Metrics.set "bench.e11.seed_reduces_moves"
    (if !any_reduced then 1.0 else 0.0);
  Format.printf "analytic seed reduces anneal moves: %s@."
    (if !any_reduced then "yes" else "NO");
  (* --- replica scaling on the widest variant: the same fixed 4-replica
     ensemble (identical work, identical result) spread over 1, 2 and 4
     domains — wall time measures the domain-parallel speedup, which is
     bounded by the machine's core count --- *)
  let nl = netlist_of (Transform.ParPipe 16) in
  let seed = Tytra_sim.Prng.seed_of_string "e11:replicas" in
  Format.printf
    "replica scaling (par16, %d cells, 4 replicas, %d core machine):@."
    nl.Tytra_sim.Techmap.n_cells
    (Tytra_exec.Pool.default_jobs ());
  let t1 = ref 0.0 in
  List.iter
    (fun jobs ->
      let r, t =
        time_s (fun () ->
            Tytra_sim.Techmap.place_parallel ~jobs ~seed ~effort nl)
      in
      if jobs = 1 then t1 := t;
      Format.printf
        "  %d domain%s: %.3f s (%.2fx vs 1), wire %.2f, %d moves@." jobs
        (if jobs = 1 then " " else "s")
        t
        (!t1 /. Float.max 1e-9 t)
        r.Tytra_sim.Techmap.pl_avg_wire r.Tytra_sim.Techmap.pl_moves;
      Tytra_telemetry.Metrics.set
        (Printf.sprintf "bench.e11.domains.j%d_s" jobs)
        t)
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* E12: batched, sharded serving                                       *)
(* ------------------------------------------------------------------ *)

(* Phase 1 runs in-process and is deterministic (exact batch counters,
   byte-identity gauge). Phase 2 spawns real `tybec serve` processes —
   single-process vs 2- and 4-shard fronts, batched vs unbatched — and
   drives them over HTTP in closed and open loop; it is gated behind
   finding the CLI binary and publishes bench.e12.http_measured so the
   perf guard knows whether the throughput figures exist. *)

let e12_http_post ?(meth = "POST") sockaddr path body =
  let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd sockaddr;
      let req =
        Printf.sprintf
          "%s %s HTTP/1.0\r\nHost: b\r\nContent-Length: %d\r\n\r\n%s" meth
          path (String.length body) body
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            ()
      in
      drain ();
      let raw = Buffer.contents buf in
      let status =
        match String.split_on_char ' ' raw with
        | _ :: code :: _ -> ( try int_of_string code with _ -> 0)
        | _ -> 0
      in
      let body =
        let rec find i =
          if i + 3 >= String.length raw then String.length raw
          else if
            raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
            && raw.[i + 3] = '\n'
          then i + 4
          else find (i + 1)
        in
        let s = find 0 in
        String.sub raw s (String.length raw - s)
      in
      (status, body))

let e12_free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> failwith "e12: no port"
  in
  Unix.close fd;
  port

let e12_wait_ready sockaddr ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let ok =
      try fst (e12_http_post ~meth:"GET" sockaddr "/healthz" "") = 200
      with Unix.Unix_error _ -> false
    in
    if ok then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let e12 () =
  hr "E12: batched, sharded serving - batch amortization + multi-shard front";
  let device = Tytra_device.Device.stratixv_gsd8 in
  let sor_src =
    Tytra_ir.Pprint.design_to_string
      (Lower.lower (Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 ())
         Transform.Pipe)
  in
  let hot_src =
    Tytra_ir.Pprint.design_to_string
      (Lower.lower (Tytra_kernels.Hotspot.program ~rows:32 ~cols:32 ())
         Transform.Pipe)
  in
  (* four distinct request shapes; the batch workload interleaves four
     copies so every batch of 16 carries exactly 12 dedupable repeats *)
  let mix =
    [
      Engine.Check { source = Engine.Inline sor_src };
      Engine.Cost
        { source = Engine.Inline sor_src; device;
          form = Tytra_cost.Throughput.FormB; nki = 10; optimize = false;
          calib = None };
      Engine.Cost
        { source = Engine.Inline hot_src; device;
          form = Tytra_cost.Throughput.FormA; nki = 10; optimize = false;
          calib = None };
      Engine.Sim
        { source = Engine.Inline sor_src; device;
          form = Tytra_cost.Throughput.FormB; nki = 10; optimize = false };
    ]
  in
  let batches = 4 in
  let workload = List.concat (List.init batches (fun _ -> mix)) in
  (* 16 items per dispatched batch: the whole workload replayed once *)
  let batch_workload = List.concat (List.init batches (fun _ -> workload)) in
  let seq_engine = Engine.create Engine.default_config in
  let seq_of reqs =
    List.map
      (fun req ->
        match Engine.submit seq_engine req with
        | Ok r -> r.Engine.rs_text
        | Error e -> failwith ("E12 sequential: " ^ Engine.error_message e))
      reqs
  in
  ignore (seq_of workload) (* prewarm parse + stage caches *);
  let reference, seq_s = time_s (fun () -> seq_of batch_workload) in
  let batch_engine = Engine.create Engine.default_config in
  ignore
    (Engine.submit_batch batch_engine (List.map Engine.batch_item workload));
  let batched, batch_s =
    time_s (fun () ->
        List.concat
          (List.init batches (fun _ ->
               Engine.submit_batch batch_engine
                 (List.map Engine.batch_item workload))))
  in
  let batch_texts =
    List.map
      (function
        | Ok r -> r.Engine.rs_text
        | Error e -> failwith ("E12 batch: " ^ Engine.error_message e))
      batched
  in
  let identical = batch_texts = reference in
  Format.printf
    "in-process: %d warm requests, sequential %.1f ms vs batched %.1f ms \
     (16 per dispatch, 12/16 deduped in-batch); responses byte-identical: \
     %b@."
    (List.length batch_workload) (seq_s *. 1e3) (batch_s *. 1e3) identical;
  Tytra_telemetry.Metrics.set "bench.e12.batch_identical"
    (if identical then 1.0 else 0.0);
  Tytra_telemetry.Metrics.set "bench.e12.cores"
    (float_of_int (Tytra_exec.Pool.default_jobs ()));
  (* ---- phase 2: real servers over HTTP ---- *)
  let tybec =
    let guess =
      Filename.concat
        (Filename.dirname (Filename.dirname Sys.executable_name))
        "bin/tybec.exe"
    in
    if Sys.file_exists guess then Some guess else None
  in
  match tybec with
  | None ->
      Format.printf
        "tybec.exe not found next to the bench binary; skipping the HTTP \
         shard sweep (bench.e12.http_measured = 0)@.";
      Tytra_telemetry.Metrics.set "bench.e12.http_measured" 0.0
  | Some exe ->
      let wire_mix = List.map Tytra_engine.Protocol.encode_request mix in
      let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
      let run_config ~shards ~batched =
        let port = e12_free_port () in
        let addr = Printf.sprintf "127.0.0.1:%d" port in
        let sockaddr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
        let args =
          [ exe; "serve"; "--addr"; addr; "--workers"; "2"; "--queue-cap";
            "64"; "--jobs"; "1" ]
          @ (if shards > 1 then
               [ "--shards"; string_of_int shards; "--admin-addr";
                 Printf.sprintf "127.0.0.1:%d" (e12_free_port ()) ]
             else [])
          @
          if batched then [ "--batch-window-ms"; "0.2"; "--batch-max"; "16" ]
          else []
        in
        let pid =
          Unix.create_process exe (Array.of_list args) devnull devnull devnull
        in
        let kill_and_reap () =
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
        in
        match e12_wait_ready sockaddr ~timeout_s:15.0 with
        | false ->
            kill_and_reap ();
            None
        | true ->
            Fun.protect ~finally:kill_and_reap @@ fun () ->
            (* canonical bodies for the cross-config identity gauge *)
            let canonical =
              List.map (fun w -> snd (e12_http_post sockaddr "/v1/submit" w))
                wire_mix
            in
            (* closed loop: 8 client domains — enough concurrency for the
               batch window to actually coalesce arrivals per shard *)
            let clients = 8 and per_client = 12 in
            let client () =
              List.init per_client (fun i ->
                  let w = List.nth wire_mix (i mod List.length wire_mix) in
                  snd (time_s (fun () ->
                      ignore (e12_http_post sockaddr "/v1/submit" w))))
            in
            (* best of two rounds: closed-loop throughput on a loaded
               box has a heavy downside tail from scheduler noise *)
            let round () =
              let lats, wall =
                time_s (fun () ->
                    List.init clients (fun _ -> Domain.spawn client)
                    |> List.concat_map Domain.join |> Array.of_list)
              in
              Array.sort compare lats;
              (lats, wall)
            in
            let r1 = round () and r2 = round () in
            let lats, wall = if snd r1 <= snd r2 then r1 else r2 in
            let n = clients * per_client in
            let req_s = float_of_int n /. Float.max 1e-9 wall in
            let p50 = percentile lats 50 and p99 = percentile lats 99 in
            (* open loop: paced arrivals at ~60% of the closed-loop rate *)
            let rate = Float.max 5.0 (req_s *. 0.6) in
            let open_n = 30 in
            let open_lats =
              Array.init open_n (fun i ->
                  let w = List.nth wire_mix (i mod List.length wire_mix) in
                  let dt =
                    snd (time_s (fun () ->
                        ignore (e12_http_post sockaddr "/v1/submit" w)))
                  in
                  let pace = 1.0 /. rate in
                  if dt < pace then Unix.sleepf (pace -. dt);
                  dt)
            in
            Array.sort compare open_lats;
            Some
              ( canonical, req_s, p50, p99,
                percentile open_lats 50, percentile open_lats 99 )
      in
      let configs =
        [ (1, false); (1, true); (2, false); (2, true); (4, false); (4, true) ]
      in
      let results =
        List.map
          (fun (shards, batched) ->
            ((shards, batched), run_config ~shards ~batched))
          configs
      in
      Unix.close devnull;
      let measured =
        List.filter_map
          (fun (cfg, r) -> Option.map (fun r -> (cfg, r)) r)
          results
      in
      if List.length measured < List.length configs then
        Format.printf
          "WARNING: %d/%d server configs failed to come up; \
           bench.e12.http_measured = 0@."
          (List.length configs - List.length measured)
          (List.length configs);
      let all_up = List.length measured = List.length configs in
      Tytra_telemetry.Metrics.set "bench.e12.http_measured"
        (if all_up then 1.0 else 0.0);
      (match measured with
      | ((_, (first_bodies, _, _, _, _, _)) :: _) as ms ->
          let identical =
            List.for_all
              (fun (_, (bodies, _, _, _, _, _)) -> bodies = first_bodies)
              ms
          in
          Tytra_telemetry.Metrics.set "bench.e12.shard_identical"
            (if identical then 1.0 else 0.0);
          Format.printf
            "responses byte-identical across all measured configs: %b@."
            identical
      | [] -> ());
      Format.printf
        " shards batch |   req/s   p50(ms)  p99(ms) | open p50  open p99@.";
      List.iter
        (fun ((shards, batched), (_, req_s, p50, p99, op50, op99)) ->
          Format.printf "   %d    %-5s | %7.0f  %7.3f  %7.3f | %7.3f  %7.3f@."
            shards
            (if batched then "on" else "off")
            req_s (p50 *. 1e3) (p99 *. 1e3) (op50 *. 1e3) (op99 *. 1e3);
          let prefix =
            Printf.sprintf "bench.e12.shards%d.%s" shards
              (if batched then "batched" else "unbatched")
          in
          List.iter
            (fun (k, v) -> Tytra_telemetry.Metrics.set (prefix ^ "." ^ k) v)
            [
              ("req_s", req_s);
              ("p50_ms", p50 *. 1e3);
              ("p99_ms", p99 *. 1e3);
              ("open_p50_ms", op50 *. 1e3);
              ("open_p99_ms", op99 *. 1e3);
            ])
        measured

(* ------------------------------------------------------------------ *)
(* E6 / Fig 17: runtime, cpu vs fpga-maxJ vs fpga-tytra                *)
(* ------------------------------------------------------------------ *)

let case_study side nki =
  let device = Tytra_device.Device.stratixv_gsd8 in
  let cpu = Tytra_device.Device.host_i7 in
  let prog = Tytra_kernels.Sor.case_study_program side in
  let cpu_s =
    Tytra_sim.Cpu_model.run_s cpu (Tytra_kernels.Sor.cpu_workload ~side) ~nki
  in
  let run v =
    let d = Lower.lower prog v in
    let tm = Tytra_sim.Techmap.run ~device d in
    let sim =
      Tytra_sim.Cyclesim.run ~device ~fmax_mhz:tm.Tytra_sim.Techmap.tm_fmax_mhz
        ~form:Tytra_sim.Cyclesim.B ~nki d
    in
    (tm, sim)
  in
  let tm_maxj, maxj = run Transform.Pipe in
  let tm_tytra, tytra = run (Transform.ParPipe 4) in
  (cpu_s, (tm_maxj, maxj), (tm_tytra, tytra))

let e6_results = Hashtbl.create 8

let e6 () =
  hr "E6 / Fig 17: SOR runtime, normalized to the CPU-only solution";
  Format.printf
    "(fpga-maxJ = single HLS pipeline; fpga-tytra = 4-lane variant selected \
     by the cost model; 1000 kernel iterations)@.";
  Format.printf
    " side |  cpu(s)   maxJ(s)  tytra(s) | maxJ/cpu tytra/cpu | tytra vs \
     maxJ@.";
  List.iter
    (fun side ->
      let nki = 1000 in
      let (cpu_s, (_, maxj), (_, tytra)) as r = case_study side nki in
      Hashtbl.replace e6_results side r;
      let tm = maxj.Tytra_sim.Cyclesim.r_total_s in
      let tt = tytra.Tytra_sim.Cyclesim.r_total_s in
      Format.printf
        " %4d | %8.3f %8.3f %8.3f |   %5.2f    %5.2f   |   %5.2fx@." side
        cpu_s tm tt (tm /. cpu_s) (tt /. cpu_s) (tm /. tt))
    Tytra_kernels.Sor.case_study_sides;
  Format.printf
    "@.paper shape: tytra up to 3.9x vs maxJ and 2.6x vs cpu; at ~100^3 \
     maxJ slower than cpu while tytra ~2.75x faster; small grids favour \
     cpu.@."

(* ------------------------------------------------------------------ *)
(* E7 / Fig 18: delta-energy, normalized to the CPU-only solution      *)
(* ------------------------------------------------------------------ *)

let e7 () =
  hr "E7 / Fig 18: delta-energy over idle, normalized to the CPU solution";
  let device = Tytra_device.Device.stratixv_gsd8 in
  let cpu = Tytra_device.Device.host_i7 in
  Format.printf
    " side |  E_cpu(J)  E_maxJ(J) E_tytra(J) | maxJ/cpu tytra/cpu | \
     efficiency vs cpu@.";
  List.iter
    (fun side ->
      let nki = 1000 in
      let cpu_s, (tm_maxj, maxj), (tm_tytra, tytra) =
        match Hashtbl.find_opt e6_results side with
        | Some r -> r
        | None -> case_study side nki
      in
      let e_cpu = Tytra_sim.Power.cpu_run_energy_j cpu ~seconds:cpu_s in
      let fpga_e (tm : Tytra_sim.Techmap.report)
          (sim : Tytra_sim.Cyclesim.result) =
        Tytra_sim.Power.fpga_run_energy_j device cpu tm.Tytra_sim.Techmap.tm_usage
          ~fmax_mhz:tm.Tytra_sim.Techmap.tm_fmax_mhz
          ~gmem_bps:sim.Tytra_sim.Cyclesim.r_gmem_bps
          ~host_bps:sim.Tytra_sim.Cyclesim.r_host_bps
          ~device_s:
            (sim.Tytra_sim.Cyclesim.r_total_s -. sim.Tytra_sim.Cyclesim.r_host_s)
          ~host_s:sim.Tytra_sim.Cyclesim.r_host_s
      in
      let e_maxj = fpga_e tm_maxj maxj in
      let e_tytra = fpga_e tm_tytra tytra in
      Format.printf
        " %4d | %9.2f %9.2f %10.2f |   %5.2f    %5.2f   |   %5.1fx@." side
        e_cpu e_maxj e_tytra (e_maxj /. e_cpu) (e_tytra /. e_cpu)
        (e_cpu /. e_tytra))
    Tytra_kernels.Sor.case_study_sides;
  Format.printf
    "@.paper shape: FPGAs quickly overtake the CPU; fpga-tytra up to 11x \
     more power-efficient than cpu and 2.9x than fpga-maxJ.@."

(* ------------------------------------------------------------------ *)
(* A1: IR-optimizer ablation                                           *)
(* ------------------------------------------------------------------ *)

let a1 () =
  hr "A1 (ablation): IR optimization passes before costing";
  let device = Tytra_device.Device.stratixv_gsd8 in
  Format.printf
    "kernel     |   NI  ->  NI' |  KPD -> KPD' | ALUT -> ALUT' | DSP -> DSP' \
     | stats@.";
  List.iter
    (fun (name, prog) ->
      let d = Lower.lower prog Transform.Pipe in
      let d', st = Tytra_ir.Optim.run d in
      let q = Tytra_ir.Analysis.params d
      and q' = Tytra_ir.Analysis.params d' in
      let u dd =
        (Tytra_cost.Resource_model.estimate ~device dd)
          .Tytra_cost.Resource_model.est_usage
      in
      let a = u d and a' = u d' in
      Format.printf
        "%-10s | %4d -> %4d | %4d -> %4d | %5d -> %5d | %3d -> %3d | %a@."
        name q.Tytra_ir.Analysis.ni q'.Tytra_ir.Analysis.ni
        q.Tytra_ir.Analysis.kpd q'.Tytra_ir.Analysis.kpd
        a.Tytra_device.Resources.aluts a'.Tytra_device.Resources.aluts
        a.Tytra_device.Resources.dsps a'.Tytra_device.Resources.dsps
        Tytra_ir.Optim.pp_stats st)
    [
      ("sor", Tytra_kernels.Sor.table2_program ());
      ("hotspot", Tytra_kernels.Hotspot.table2_program ());
      ("lavamd", Tytra_kernels.Lavamd.table2_program ());
      (* a kernel with power-of-two weights: strength reduction frees DSPs *)
      ("pow2-blur",
       Expr.
         {
           p_kernel =
             {
               k_name = "pow2blur";
               k_ty = Tytra_ir.Ty.UInt 18;
               k_inputs = [ "x" ];
               k_params = [];
               k_outputs =
                 [
                   {
                     o_name = "y";
                     o_expr =
                       (sten "x" (-1) *: ci 2) +: (input "x" *: ci 4)
                       +: (sten "x" 1 *: ci 2);
                   };
                 ];
               k_reductions = [];
             };
           p_shape = [ 4096 ];
         });
    ];
  Format.printf
    "(interprocedural constant-arg propagation exposes the integer \
     parameterization's unit weights to folding — multiplies collapse and \
     DSPs free up; pow2-blur shows the pure strength-reduction path: \
     mul-by-2^k becomes free wiring. Table II (E4) deliberately costs the \
     *unoptimized* designs, as the paper does.)@."

(* ------------------------------------------------------------------ *)
(* A2: empirical-bandwidth-model ablation                              *)
(* ------------------------------------------------------------------ *)

let a2 () =
  hr "A2 (ablation): empirical sustained-bandwidth model vs datasheet peak";
  let device = Tytra_device.Device.stratixv_gsd8 in
  let naive_calib =
    (* 'datasheet' model: sustained = peak at every size and pattern *)
    Tytra_device.Bandwidth.make ~device:device.Tytra_device.Device.dev_name
      ~cont:[ (1.0, device.Tytra_device.Device.gpb) ]
      ~strided:[ (1.0, device.Tytra_device.Device.gpb) ]
      ~random:[ (1.0, device.Tytra_device.Device.gpb) ]
  in
  let prog = Tytra_kernels.Sor.program ~ty:(Tytra_ir.Ty.Float 32) ~im:64 ~jm:64 ~km:64 () in
  let nki = 100 in
  let eval calib v =
    let d = Lower.lower prog v in
    (Tytra_cost.Report.evaluate ~device ?calib ~nki d)
      .Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_ekit
  in
  let simulate v =
    let d = Lower.lower prog v in
    (Tytra_sim.Cyclesim.run ~device ~form:Tytra_sim.Cyclesim.B ~nki d)
      .Tytra_sim.Cyclesim.r_ekit
  in
  let lanes = [ 1; 2; 4; 8; 16 ] in
  Format.printf "lanes |  EKIT naive  | EKIT empirical |  EKIT simulated@.";
  let best = Hashtbl.create 4 in
  List.iter
    (fun l ->
      let v = if l = 1 then Transform.Pipe else Transform.ParPipe l in
      let n = eval (Some naive_calib) v in
      let e = eval None v in
      let s = simulate v in
      List.iter
        (fun (k, value) ->
          match Hashtbl.find_opt best k with
          | Some (_, bv) when bv >= value -> ()
          | _ -> Hashtbl.replace best k (l, value))
        [ ("naive", n); ("empirical", e); ("sim", s) ];
      Format.printf "%5d | %12.4g | %14.4g | %15.4g@." l n e s)
    lanes;
  let pick k = fst (Hashtbl.find best k) in
  Format.printf
    "@.chosen lane count: naive model %d, empirical model %d, simulated \
     platform %d@."
    (pick "naive") (pick "empirical") (pick "sim");
  Format.printf
    "(the empirical rho factors are what keep the cost model's choice \
     aligned with the platform — the point of §V-C)@."

(* ------------------------------------------------------------------ *)
(* A3: lanes vs vectorization (C1 vs C3)                               *)
(* ------------------------------------------------------------------ *)

let a3 () =
  hr "A3 (ablation): thread lanes (C1) vs vectorized lanes (C3) at equal PEs";
  let device = Tytra_device.Device.stratixv_gsd8 in
  let prog = Tytra_kernels.Sor.program ~im:32 ~jm:32 ~km:32 () in
  Format.printf
    "variant        class  PEs   ALUT    REG     EKIT      limiter@.";
  List.iter
    (fun v ->
      let d = Lower.lower prog v in
      let s = Tytra_ir.Config_tree.classify d in
      let r = Tytra_cost.Report.evaluate ~device ~nki:100 d in
      let u = r.Tytra_cost.Report.rp_estimate.Tytra_cost.Resource_model.est_usage in
      Format.printf "%-13s  %-5s  %3d  %6d %6d  %9.4g  %s@."
        (Transform.to_string v)
        (Tytra_ir.Config_tree.cclass_to_string s.Tytra_ir.Config_tree.cs_class)
        (Transform.pes v) u.Tytra_device.Resources.aluts
        u.Tytra_device.Resources.regs
        r.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_ekit
        (Tytra_cost.Throughput.limiter_to_string
           r.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_limiter))
    [ Transform.ParPipe 8; Transform.ParVecPipe (4, 2);
      Transform.ParVecPipe (2, 4) ];
  Format.printf
    "(equal PE counts give equal compute ceilings; the configurations \
     differ in stream-control granularity, visible in the ALUT column)@."

(* ------------------------------------------------------------------ *)
(* A4: contribution of the EKIT terms                                  *)
(* ------------------------------------------------------------------ *)

let a4 () =
  hr "A4 (ablation): per-term contribution to the EKIT expressions";
  let device = Tytra_device.Device.stratixv_gsd8 in
  Format.printf
    "kernel/size        form |  host%%   offset%%  fill%%   exec%%@.";
  let show name prog form nki =
    let d = Lower.lower prog Transform.Pipe in
    let i = Tytra_cost.Throughput.inputs_of_design ~device ~nki d in
    let b = Tytra_cost.Throughput.ekit form i in
    let t = b.Tytra_cost.Throughput.bd_total_s in
    let p x = 100.0 *. x /. t in
    Format.printf "%-18s  %s   | %6.1f %8.1f %6.1f %7.1f@." name
      (Tytra_cost.Throughput.form_to_string form)
      (p b.Tytra_cost.Throughput.bd_host_s)
      (p b.Tytra_cost.Throughput.bd_off_s)
      (p b.Tytra_cost.Throughput.bd_fill_s)
      (p b.Tytra_cost.Throughput.bd_exec_s)
  in
  show "lavamd (100 wi)" (Tytra_kernels.Lavamd.table2_program ())
    Tytra_cost.Throughput.FormB 1;
  show "sor 8x6x6" (Tytra_kernels.Sor.table2_program ())
    Tytra_cost.Throughput.FormB 1;
  show "sor 64^3" (Tytra_kernels.Sor.program ~im:64 ~jm:64 ~km:64 ())
    Tytra_cost.Throughput.FormB 1000;
  show "sor 64^3" (Tytra_kernels.Sor.program ~im:64 ~jm:64 ~km:64 ())
    Tytra_cost.Throughput.FormA 1000;
  Format.printf
    "(offset/fill terms matter only for small NDRanges; form A is dominated \
     by the host term — the structure behind Eqs 1-3)@."

(* ------------------------------------------------------------------ *)
(* A5: cost-model accuracy across a design corpus                      *)
(* ------------------------------------------------------------------ *)

let a5 () =
  hr "A5 (ablation): estimate-vs-actual error distribution over a corpus";
  let device = Tytra_device.Device.stratixv_gsd8 in
  let corpus =
    List.concat_map
      (fun (name, mk) ->
        List.concat_map
          (fun ty ->
            List.filter_map
              (fun v ->
                let prog = mk ty in
                if Transform.applicable prog v then
                  Some (Printf.sprintf "%s/%s/%s" name
                          (Tytra_ir.Ty.to_string ty)
                          (Transform.to_string v),
                        Lower.lower prog v)
                else None)
              [ Transform.Pipe; Transform.ParPipe 2; Transform.ParPipe 4 ])
          [ Tytra_ir.Ty.UInt 16; Tytra_ir.Ty.UInt 18; Tytra_ir.Ty.UInt 24;
            Tytra_ir.Ty.UInt 32 ])
      [
        ("sor", fun ty -> Tytra_kernels.Sor.program ~ty ~im:8 ~jm:8 ~km:8 ());
        ("hotspot", fun ty -> Tytra_kernels.Hotspot.program ~ty ~rows:64 ~cols:64 ());
        ("lavamd", fun ty -> Tytra_kernels.Lavamd.program ~ty ~boxes:1 ());
        ("srad", fun ty -> Tytra_kernels.Srad.program ~ty ~rows:32 ~cols:32 ());
      ]
  in
  let errs = Hashtbl.create 4 in
  let record k v =
    let l = try Hashtbl.find errs k with Not_found -> [] in
    Hashtbl.replace errs k (v :: l)
  in
  let worst = ref ("", 0.0) in
  List.iter
    (fun (label, d) ->
      let est =
        (Tytra_cost.Resource_model.estimate ~device d)
          .Tytra_cost.Resource_model.est_usage
      in
      let act = (Tytra_sim.Techmap.run ~device ~effort:`Fast d).Tytra_sim.Techmap.tm_usage in
      let open Tytra_device.Resources in
      let p e a =
        if a = 0 then if e = 0 then 0.0 else 100.0
        else 100.0 *. Float.abs (float_of_int (e - a)) /. float_of_int a
      in
      let cases =
        [ ("ALUT", p est.aluts act.aluts); ("REG", p est.regs act.regs);
          ("BRAM", p est.bram_bits act.bram_bits);
          ("DSP", p est.dsps act.dsps) ]
      in
      List.iter
        (fun (k, v) ->
          record k v;
          if v > snd !worst then worst := (label ^ " " ^ k, v))
        cases)
    corpus;
  Format.printf "corpus: %d designs (4 kernels x 4 widths x <=3 variants)@."
    (List.length corpus);
  Format.printf "resource |   mean%%   p95%%    max%%@.";
  List.iter
    (fun k ->
      let l = List.sort compare (Hashtbl.find errs k) in
      let n = List.length l in
      let mean = List.fold_left ( +. ) 0.0 l /. float_of_int n in
      let p95 = List.nth l (min (n - 1) (n * 95 / 100)) in
      let mx = List.nth l (n - 1) in
      Format.printf "%-8s | %6.2f %6.2f %7.2f@." k mean p95 mx)
    [ "ALUT"; "REG"; "BRAM"; "DSP" ];
  Format.printf "worst case: %s at %.1f%%@." (fst !worst) (snd !worst);
  Format.printf
    "(the paper validates on 3 kernels; the corpus shows the closed forms \
     track the detailed elaboration across widths and lane counts — the \
     'accurate enough to make design decisions' claim, quantified)@."

(* ------------------------------------------------------------------ *)
(* A6: parameter sensitivity of the EKIT expression                    *)
(* ------------------------------------------------------------------ *)

let a6 () =
  hr "A6 (ablation): EKIT sensitivity to +-20% in each Table-I parameter";
  let device = Tytra_device.Device.stratixv_gsd8 in
  let prog = Tytra_kernels.Sor.program ~ty:(Tytra_ir.Ty.Float 32) ~im:64 ~jm:64 ~km:64 () in
  let d = Lower.lower prog (Transform.ParPipe 4) in
  let base = Tytra_cost.Throughput.inputs_of_design ~device ~nki:100 d in
  let ek i =
    (Tytra_cost.Throughput.ekit Tytra_cost.Throughput.FormB i)
      .Tytra_cost.Throughput.bd_ekit
  in
  let e0 = ek base in
  let open Tytra_cost.Throughput in
  let knobs =
    [
      ("FD (clock)", fun s -> { base with fd_hz = base.fd_hz *. s });
      ("rho_G (sustained DRAM)", fun s -> { base with rho_g = base.rho_g *. s });
      ("rho_H (sustained host)", fun s -> { base with rho_h = base.rho_h *. s });
      ("KNL (lanes)",
       fun s -> { base with knl = max 1 (int_of_float (4.0 *. s)) });
      ("KPD (pipeline depth)",
       fun s -> { base with kpd = int_of_float (float_of_int base.kpd *. s) });
      ("Noff (offset fill)",
       fun s -> { base with noff = int_of_float (float_of_int base.noff *. s) });
      ("NWPT (bytes/tuple)",
       fun s -> { base with bytes_per_tuple = base.bytes_per_tuple *. s });
    ]
  in
  Format.printf
    "parameter                  |  EKIT at 0.8x   EKIT at 1.2x  |  swing@.";
  List.iter
    (fun (name, mk) ->
      let lo = ek (mk 0.8) and hi = ek (mk 1.2) in
      Format.printf "%-26s | %12.4g  %12.4g  | %5.1f%%@." name lo hi
        (100.0 *. (hi -. lo) /. e0))
    knobs;
  Format.printf
    "(baseline EKIT %.4g; the dominant knob is what Limits reports as the \
     limiting parameter — 'exposing the performance limiting parameter' is \
     the paper's stated purpose for the model)@."
    e0

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks (rigorous timing for E5)                  *)
(* ------------------------------------------------------------------ *)

let speed () =
  hr "Bechamel micro-benchmarks: per-stage latency of the fast path";
  let open Bechamel in
  let prog = Tytra_kernels.Sor.program ~im:32 ~jm:32 ~km:32 () in
  let d4 = Lower.lower prog (Transform.ParPipe 4) in
  let tirl = Tytra_ir.Pprint.design_to_string d4 in
  let tests =
    [
      Test.make ~name:"parse .tirl"
        (Staged.stage (fun () -> ignore (Tytra_ir.Parser.parse tirl)));
      Test.make ~name:"validate"
        (Staged.stage (fun () -> ignore (Tytra_ir.Validate.check d4)));
      Test.make ~name:"analysis params"
        (Staged.stage (fun () -> ignore (Tytra_ir.Analysis.params d4)));
      Test.make ~name:"resource estimate"
        (Staged.stage (fun () ->
             ignore (Tytra_cost.Resource_model.estimate d4)));
      Test.make ~name:"full cost report"
        (Staged.stage (fun () -> ignore (Tytra_cost.Report.evaluate d4)));
      Test.make ~name:"lower par4"
        (Staged.stage (fun () ->
             ignore (Lower.lower prog (Transform.ParPipe 4))));
      Test.make ~name:"schedule PE"
        (Staged.stage (fun () ->
             let f = Tytra_ir.Ast.find_func_exn d4 "f0" in
             ignore (Tytra_hdl.Schedule.schedule_func d4 f)));
      Test.make ~name:"verilog emit"
        (Staged.stage (fun () -> ignore (Tytra_hdl.Verilog.emit d4)));
      Test.make ~name:"techmap fast"
        (Staged.stage (fun () ->
             ignore (Tytra_sim.Techmap.run ~effort:`Fast d4)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  List.iter
    (fun t ->
      let results =
        Benchmark.all cfg [ instance ]
          (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ t ])
      in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Format.printf "  %-28s %12.1f ns/run@." name est
          | _ -> Format.printf "  %-28s (no estimate)@." name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)

let all = [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
            ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10);
            ("e11", e11); ("e12", e12);
            ("a1", a1); ("a2", a2); ("a3", a3); ("a4", a4); ("a5", a5);
            ("a6", a6) ]

(* Telemetry options: --json FILE writes a machine-readable per-phase
   report (spans + metrics + perf_profile), --trace FILE writes a
   Chrome-trace timeline viewable in chrome://tracing or Perfetto, and
   --events FILE writes the structured event log (JSONL, schema v1).
   Each experiment runs under a "bench.<name>" root span, so the
   per-phase summary attributes wall time to E1..E7 and their inner
   compile/cost/sim phases. *)

let parse_args args =
  let json = ref None and trace = ref None and events = ref None
  and rest = ref [] in
  let rec go = function
    | [] -> ()
    | "--json" :: path :: tl -> json := Some path; go tl
    | "--trace" :: path :: tl -> trace := Some path; go tl
    | "--events" :: path :: tl -> events := Some path; go tl
    | "--jobs" :: n :: tl ->
        (match int_of_string_opt n with
        | Some j when j >= 0 -> jobs_flag := j
        | _ -> Format.eprintf "ignoring bad --jobs %S@." n);
        go tl
    | "--no-fast-ir" :: tl ->
        Tytra_ir.Fastpath.set_enabled false;
        go tl
    | a :: tl -> rest := a :: !rest; go tl
  in
  go args;
  (!json, !trace, !events, List.rev !rest)

let run_experiment name f =
  Tytra_telemetry.Span.with_ ~name:("bench." ^ name) f

let () =
  let json, trace, events, args =
    parse_args (List.tl (Array.to_list Sys.argv))
  in
  if json <> None || trace <> None || events <> None then begin
    Tytra_telemetry.Control.set_enabled true;
    Option.iter Tytra_telemetry.Events.open_file events;
    at_exit (fun () ->
        Option.iter
          (fun path ->
            Tytra_telemetry.Export.write_report path;
            Format.eprintf "telemetry report written to %s@." path)
          json;
        Option.iter
          (fun path ->
            Tytra_telemetry.Export.write_chrome_trace ~process_name:"bench"
              path;
            Format.eprintf "chrome trace written to %s@." path)
          trace;
        Option.iter
          (fun path ->
            Tytra_telemetry.Events.close ();
            Format.eprintf "event log written to %s@." path)
          events)
  end;
  Format.printf
    "TyTra cost-model reproduction - experiment harness (see DESIGN.md §4)@.";
  match args with
  | [] -> List.iter (fun (name, f) -> run_experiment name f) all
  | args ->
      List.iter
        (fun a ->
          match List.assoc_opt a all with
          | Some f -> run_experiment a f
          | None when a = "speed" -> run_experiment "speed" speed
          | None ->
              Format.printf "unknown experiment %S (known: %s, speed)@." a
                (String.concat ", " (List.map fst all)))
        args
