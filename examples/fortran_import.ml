(* Legacy import: take the SOR kernel as it appears in the weather
   model's Fortran source, elaborate it through the legacy front end,
   check it against the hand-written DSL kernel, and run the whole flow —
   exploration, cost model, form selection, roofline — on it.

   Run with:  dune exec examples/fortran_import.exe
*)

open Tytra_front

let () =
  let sizes = [ ("im", 16); ("jm", 16); ("km", 16) ] in
  let path =
    if Sys.file_exists "examples/ir/sor.f90" then "examples/ir/sor.f90"
    else "../../../examples/ir/sor.f90"
  in
  let prog = Fortran.parse_file ~sizes path in
  Format.printf "parsed %s: %d-point index space, inputs [%s], %d params@."
    path (Expr.points prog)
    (String.concat "; " prog.Expr.p_kernel.Expr.k_inputs)
    (List.length prog.Expr.p_kernel.Expr.k_params);

  (* the imported kernel computes exactly what the hand-written one does *)
  let hand = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 () in
  let env = Tytra_kernels.Workloads.random_env hand in
  let env_for_imported =
    (* same data, stream names as the Fortran source uses *)
    List.map
      (fun s ->
        ( s,
          List.assoc (if s = "p" then "p" else "rhs") env ))
      prog.Expr.p_kernel.Expr.k_inputs
  in
  let a = Eval.run_baseline hand env in
  let b = Eval.run_baseline prog env_for_imported in
  let same =
    List.assoc "p" a.Eval.outputs = List.assoc "p_new" b.Eval.outputs
  in
  Format.printf "imported kernel == hand-written kernel: %b@." same;
  assert same;

  (* full flow on the imported program *)
  let pts =
    Tytra_dse.Dse.(explore
      ~config:{ default_config with nki = 1000; max_lanes = 8 })
      prog
  in
  List.iter (fun p -> Format.printf "  %a@." Tytra_dse.Dse.pp_point p) pts;
  (match Tytra_dse.Dse.best pts with
  | Some best ->
      let d = best.Tytra_dse.Dse.dp_design in
      Format.printf "@.selected %s@."
        (Transform.to_string best.Tytra_dse.Dse.dp_variant);
      Format.printf "form selection:@.%a@." Tytra_cost.Formsel.pp
        (Tytra_cost.Formsel.recommend ~nki:1000 d);
      Format.printf "@.roofline: %a@." Tytra_cost.Roofline.pp
        (Tytra_cost.Roofline.of_design ~nki:1000 d)
  | None -> Format.printf "no valid variant@.")
