! Successive over-relaxation kernel, as it appears in the LES weather
! model's pressure solver (integer parameterization for cost-model
! validation; see Tytra_front.Fortran for the supported subset).
parameter omega = 1
parameter cn1   = 1
parameter cn2l  = 1
parameter cn2s  = 1
parameter cn3l  = 1
parameter cn3s  = 1
parameter cn4l  = 1
parameter cn4s  = 1

do k = 1, km
  do j = 1, jm
    do i = 1, im
      reltmp = omega * (cn1 * ( cn2l * p(i+1,j,k) + cn2s * p(i-1,j,k)  &
             + cn3l * p(i,j+1,k) + cn3s * p(i,j-1,k)                   &
             + cn4l * p(i,j,k+1) + cn4s * p(i,j,k-1) ) - rhs(i,j,k)) - p(i,j,k)
      p_new(i,j,k) = p(i,j,k) + reltmp
      sorerracc = sorerracc + reltmp * reltmp
    end do
  end do
end do
