(* SOR design-space exploration — the paper's §VI walk-through.

   Sweeps the number of kernel pipeline lanes for the SOR kernel (the
   reshapeTo transformation), prints the Fig 15-style table of resource
   utilization and throughput, shows where the communication and
   computation walls fall for forms A and B, and emits the HDL of the
   selected variant.

   Run with:  dune exec examples/sor_exploration.exe
*)

open Tytra_front

let () =
  let device = Tytra_device.Device.stratixv_gsd8 in
  let side = 64 in
  let nki = 10 in
  let program = Tytra_kernels.Sor.program ~im:side ~jm:side ~km:side () in
  Format.printf "SOR %dx%dx%d, %d kernel iterations, device %s@.@." side side
    side nki device.Tytra_device.Device.dev_name;

  let lanes = [ 1; 2; 4; 8; 16 ] in
  Format.printf
    "lanes   ALUT%%   REG%%   BRAM%%   DSP%%   EKIT(A)       EKIT(B)      \
     limiter(B)@.";
  List.iter
    (fun l ->
      let v = if l = 1 then Transform.Pipe else Transform.ParPipe l in
      let d = Lower.lower program v in
      let ra =
        Tytra_cost.Report.evaluate ~device ~form:Tytra_cost.Throughput.FormA
          ~nki d
      in
      let rb =
        Tytra_cost.Report.evaluate ~device ~form:Tytra_cost.Throughput.FormB
          ~nki d
      in
      let u = rb.Tytra_cost.Report.rp_utilization in
      Format.printf
        "%5d  %5.1f  %5.1f  %6.2f  %5.1f  %11.4g  %11.4g   %s@." l
        (100. *. u.Tytra_device.Resources.ut_aluts)
        (100. *. u.Tytra_device.Resources.ut_regs)
        (100. *. u.Tytra_device.Resources.ut_bram)
        (100. *. u.Tytra_device.Resources.ut_dsps)
        ra.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_ekit
        rb.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_ekit
        (Tytra_cost.Throughput.limiter_to_string
           rb.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_limiter))
    lanes;

  (* the walls, from the single-lane analysis *)
  let d1 = Lower.lower program Transform.Pipe in
  let r1 = Tytra_cost.Report.evaluate ~device ~nki d1 in
  Format.printf "@.walls: %a@." Tytra_cost.Limits.pp_walls
    r1.Tytra_cost.Report.rp_walls;
  Format.printf "balance hint: binding resource %s@."
    r1.Tytra_cost.Report.rp_balance.Tytra_cost.Limits.bh_binding;

  (* guided search: follow the limiting parameter *)
  Format.printf "@.guided search trace:@.";
  let trace =
    Tytra_dse.Dse.(guided
      ~config:{ default_config with device; nki; max_lanes = 32 })
      program
  in
  List.iter (fun p -> Format.printf "  %a@." Tytra_dse.Dse.pp_point p) trace;

  match Tytra_dse.Dse.best trace with
  | None -> Format.printf "no valid variant@."
  | Some best ->
      Format.printf "@.selected: %s@."
        (Transform.to_string best.Tytra_dse.Dse.dp_variant);
      let dir = Filename.get_temp_dir_name () in
      let v, vh = Tytra_hdl.Verilog.write ~dir best.Tytra_dse.Dse.dp_design in
      Format.printf "HDL written: %s, %s@." v vh
