(* Quickstart: write a kernel in the functional DSL, generate design
   variants by type transformation, cost them, and pick one — the whole
   TyTra flow (paper Fig 1) in ~60 lines.

   Run with:  dune exec examples/quickstart.exe
*)

open Tytra_front
open Tytra_front.Expr

let () =
  (* 1. Design entry: a pure-software kernel. This one computes a damped
     three-point smoothing over a 1-D stream — stencil offsets and a
     scalar weight, like a tiny SOR. *)
  let kernel =
    {
      k_name = "smooth";
      k_ty = Tytra_ir.Ty.UInt 18;
      k_inputs = [ "x" ];
      k_params = [ ("w", 3L) ];
      k_outputs =
        [
          {
            o_name = "y";
            o_expr = (param "w" *: (sten "x" (-1) +: input "x" +: sten "x" 1));
          };
        ];
      k_reductions = [];
    }
  in
  let program = { p_kernel = kernel; p_shape = [ 4096 ] } in

  (* 2. Type transformations enumerate the variant space: reshapeTo plus
     par/pipe/seq annotations, only size-preserving reshapes allowed. *)
  let variants = Transform.enumerate ~max_lanes:8 program in
  Format.printf "variants: %s@."
    (String.concat ", " (List.map Transform.to_string variants));

  (* 3. Every variant is correct by construction: its evaluation equals
     the baseline map. *)
  let env = Tytra_kernels.Workloads.random_env program in
  let baseline = Eval.run_baseline program env in
  List.iter
    (fun v ->
      let r = Eval.run_variant program v env in
      assert (r.Eval.outputs = baseline.Eval.outputs))
    variants;
  Format.printf "all %d variants compute the baseline function (checked)@."
    (List.length variants);

  (* 4. Lower to TyTra-IR and run the cost model on each variant. *)
  let device = Tytra_device.Device.stratixv_gsd8 in
  let points =
    Tytra_dse.Dse.(explore
      ~config:{ default_config with device; nki = 1000; max_lanes = 8 })
      program
  in
  List.iter (fun p -> Format.printf "  %a@." Tytra_dse.Dse.pp_point p) points;

  (* 5. Select and inspect the winner. *)
  match Tytra_dse.Dse.best points with
  | None -> Format.printf "no variant fits the device!@."
  | Some best ->
      Format.printf "@.selected variant: %s@."
        (Transform.to_string best.Tytra_dse.Dse.dp_variant);
      Format.printf "%a@." Tytra_cost.Report.pp best.Tytra_dse.Dse.dp_report;
      (* 6. …and the compiler can emit its HDL. *)
      let verilog = Tytra_hdl.Verilog.emit best.Tytra_dse.Dse.dp_design in
      Format.printf "generated %d lines of Verilog for the selected variant@."
        (List.length (String.split_on_char '\n' verilog))
