(* Hotspot: cost-model accuracy on one kernel — a single row of the
   paper's Table II, reproduced end to end.

   Lowers Rodinia's hotspot (integer version, 512×512 floorplan) to a
   single kernel pipeline, then compares:
     - the analytic cost model's resource estimate (fast path) against
       the technology mapper's synthesis-grade figures (slow path), and
     - the estimated cycles-per-kernel-instance against the cycle-level
       simulation.

   Run with:  dune exec examples/hotspot_pipeline.exe
*)

let pct est act =
  if act = 0 then if est = 0 then 0.0 else 100.0
  else 100.0 *. Float.abs (float_of_int (est - act)) /. float_of_int act

let () =
  let device = Tytra_device.Device.stratixv_gsd8 in
  let program = Tytra_kernels.Hotspot.table2_program () in
  let design = Tytra_front.Lower.lower program Tytra_front.Transform.Pipe in
  Format.printf "hotspot (Rodinia), integer version, 512x512 grid@.";
  Format.printf "config tree:@.%a@."
    (fun fmt n -> Tytra_ir.Config_tree.pp_node fmt n)
    (Tytra_ir.Config_tree.build design);

  (* fast path: the analytic cost model *)
  let t0 = Unix.gettimeofday () in
  let est = Tytra_cost.Resource_model.estimate ~device design in
  let inputs = Tytra_cost.Throughput.inputs_of_design ~device design in
  let cpki_est =
    Tytra_cost.Throughput.cpki Tytra_cost.Throughput.FormB inputs
  in
  let t_est = Unix.gettimeofday () -. t0 in

  (* slow path: synthesis-grade elaboration + cycle-level simulation *)
  let t0 = Unix.gettimeofday () in
  let tm = Tytra_sim.Techmap.run ~device ~effort:`Full design in
  let sim =
    Tytra_sim.Cyclesim.run ~device ~fmax_mhz:tm.Tytra_sim.Techmap.tm_fmax_mhz
      design
  in
  let t_act = Unix.gettimeofday () -. t0 in

  let eu = est.Tytra_cost.Resource_model.est_usage in
  let au = tm.Tytra_sim.Techmap.tm_usage in
  let open Tytra_device.Resources in
  Format.printf "@.            %12s %12s %8s@." "Estimated" "Actual" "%% err";
  Format.printf "ALUT        %12d %12d %8.1f@." eu.aluts au.aluts
    (pct eu.aluts au.aluts);
  Format.printf "REG         %12d %12d %8.1f@." eu.regs au.regs
    (pct eu.regs au.regs);
  Format.printf "BRAM (bits) %12d %12d %8.1f@." eu.bram_bits au.bram_bits
    (pct eu.bram_bits au.bram_bits);
  Format.printf "DSP         %12d %12d %8.1f@." eu.dsps au.dsps
    (pct eu.dsps au.dsps);
  Format.printf "CPKI        %12.0f %12.0f %8.1f@." cpki_est
    sim.Tytra_sim.Cyclesim.r_cycles_per_ki
    (100.
     *. Float.abs (cpki_est -. sim.Tytra_sim.Cyclesim.r_cycles_per_ki)
     /. sim.Tytra_sim.Cyclesim.r_cycles_per_ki);
  Format.printf "@.estimator: %.4f s;  synthesis+simulation: %.2f s (%.0fx)@."
    t_est t_act (t_act /. Float.max 1e-9 t_est)
