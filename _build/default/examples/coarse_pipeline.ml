(* Coarse-grained pipelines: kernel composition (paper Fig 7,
   configurations 3 and 4).

   Builds a two-stage despeckle-then-detect image pipeline: an SRAD-style
   smoothing stage feeding an edge-detect stage, chained peer-to-peer on
   chip (the intermediate stream never touches global memory). Checks the
   lowered coarse pipeline against the reference composition in the IR
   interpreter, costs configuration 3 vs configuration 4, and prints the
   generated .tirl showing the returning call (%c1 = call @fs0 ...).

   Run with:  dune exec examples/coarse_pipeline.exe
*)

open Tytra_front
open Tytra_front.Expr

let cols = 32

let despeckle =
  {
    k_name = "despeckle";
    k_ty = Tytra_ir.Ty.UInt 18;
    k_inputs = [ "img" ];
    k_params = [ ("w", 1L) ];
    k_outputs =
      [
        {
          o_name = "s";
          o_expr =
            param "w"
            *: (sten "img" (-cols) +: sten "img" (-1) +: input "img"
               +: sten "img" 1 +: sten "img" cols);
        };
      ];
    k_reductions = [];
  }

let detect =
  {
    k_name = "detect";
    k_ty = Tytra_ir.Ty.UInt 18;
    k_inputs = [ "v"; "bias" ];
    k_params = [ ("thresh", 200L) ];
    k_outputs =
      [
        {
          o_name = "edge";
          o_expr =
            Select
              ( Bin (Tytra_ir.Ast.CmpGt,
                     (sten "v" 1 -: input "v") +: input "bias",
                     param "thresh"),
                ci 1, ci 0 );
        };
      ];
    k_reductions =
      [ { r_name = "edges"; r_op = Tytra_ir.Ast.Add;
          r_expr =
            Select
              ( Bin (Tytra_ir.Ast.CmpGt,
                     (sten "v" 1 -: input "v") +: input "bias",
                     param "thresh"),
                ci 1, ci 0 );
          r_init = 0L } ];
  }

let () =
  let chain =
    Chain.make_exn ~name:"despeckle_detect" ~shape:[ cols; cols ]
      [ despeckle; detect ]
  in
  let n = Chain.points chain in
  let rng = Tytra_sim.Prng.of_string "coarse" in
  let env =
    [ ("img", Array.init n (fun _ -> Int64.of_int (Tytra_sim.Prng.int rng 64)));
      ("bias", Array.init n (fun _ -> Int64.of_int (Tytra_sim.Prng.int rng 8))) ]
  in

  (* reference semantics vs the lowered coarse pipeline in the interpreter *)
  let golden = Chain.eval chain env in
  let d3 = Chain.lower chain Transform.Pipe in
  let r = Tytra_ir.Interp.run d3 env in
  let same =
    snd (List.hd r.Tytra_ir.Interp.ir_outputs)
    = List.assoc "edge" golden.Eval.outputs
    && List.assoc "edges" r.Tytra_ir.Interp.ir_globals
       = List.assoc "edges" golden.Eval.reductions
  in
  Format.printf "coarse pipeline == composed reference: %b@." same;
  assert same;

  (* the generated IR, showing the peer-to-peer returning call *)
  Format.printf "@.configuration 3 (.tirl excerpt):@.";
  String.split_on_char '\n' (Tytra_ir.Pprint.design_to_string d3)
  |> List.filter (fun l ->
         let has sub =
           let n = String.length sub in
           let rec go i =
             i + n <= String.length l && (String.sub l i n = sub || go (i + 1))
           in
           go 0
         in
         has "define" || has "call")
  |> List.iter (fun l -> Format.printf "  %s@." l);

  (* cost configuration 3 vs configuration 4 *)
  Format.printf "@.";
  List.iter
    (fun (label, v) ->
      let d = Chain.lower chain v in
      let rep = Tytra_cost.Report.evaluate ~nki:100 d in
      let u = rep.Tytra_cost.Report.rp_estimate.Tytra_cost.Resource_model.est_usage in
      Format.printf
        "%-28s ALUT %5d  REG %6d  EKIT %10.4g  (%s)@." label
        u.Tytra_device.Resources.aluts u.Tytra_device.Resources.regs
        rep.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_ekit
        (Tytra_cost.Throughput.limiter_to_string
           rep.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_limiter))
    [ ("config 3: coarse pipeline", Transform.Pipe);
      ("config 4: 2 coarse lanes", Transform.ParPipe 2);
      ("config 4: 4 coarse lanes", Transform.ParPipe 4) ];
  Format.printf
    "@.(the chained stream stays on chip: only img, bias and edge move \
     through global memory)@."
