(* LavaMD: correctness across variants, the form-C execution path, and
   an energy estimate.

   LavaMD has no stencil offsets, so every lane count is exactly
   equivalent to the baseline all the way down to the IR interpreter —
   this example demonstrates the correct-by-construction claim at both
   levels (functional evaluator and lowered IR), then runs the
   memory-execution forms A/B/C of the paper's Fig 6 on the same design
   and compares their EKIT, and finally estimates delta-energy.

   Run with:  dune exec examples/lavamd_study.exe
*)

open Tytra_front

let () =
  let device = Tytra_device.Device.stratixv_gsd8 in
  let boxes = 8 in
  let program = Tytra_kernels.Lavamd.program ~boxes () in
  let n = Expr.points program in
  let env = Tytra_kernels.Workloads.random_env program in
  let golden = Eval.run_baseline program env in

  (* 1. functional-level equivalence for every enumerated variant *)
  let variants = Transform.enumerate ~max_lanes:8 program in
  List.iter
    (fun v ->
      let r = Eval.run_variant program v env in
      assert (r.Eval.outputs = golden.Eval.outputs);
      assert (r.Eval.reductions = golden.Eval.reductions))
    variants;
  Format.printf "front-end: %d variants == baseline on %d points@."
    (List.length variants) n;

  (* 2. IR-level equivalence for a 4-lane variant *)
  let d4 = Lower.lower program (Transform.ParPipe 4) in
  let chunk = n / 4 in
  let env4 =
    List.concat_map
      (fun (s, a) ->
        List.init 4 (fun i ->
            (Printf.sprintf "%s%d" s i, Array.sub a (i * chunk) chunk)))
      env
  in
  let ir = Tytra_ir.Interp.run d4 env4 in
  List.iteri
    (fun nth (o : Expr.output) ->
      let got =
        Tytra_ir.Interp.gathered_output d4 ir ~outputs_per_lane:3 ~nth
      in
      assert (got = List.assoc o.Expr.o_name golden.Eval.outputs))
    program.Expr.p_kernel.Expr.k_outputs;
  assert (
    List.assoc "energy" ir.Tytra_ir.Interp.ir_globals
    = List.assoc "energy" golden.Eval.reductions);
  Format.printf "IR interpreter: 4-lane design == baseline (outputs + energy)@.";

  (* 3. memory-execution forms A/B/C on the same design *)
  let nki = 100 in
  Format.printf "@.form     EKIT (sim)      notes@.";
  List.iter
    (fun (label, form) ->
      let r = Tytra_sim.Cyclesim.run ~device ~form ~nki d4 in
      Format.printf "%-5s  %12.4g   %s@." label r.Tytra_sim.Cyclesim.r_ekit
        (match form with
        | Tytra_sim.Cyclesim.A -> "host transfer every kernel instance"
        | Tytra_sim.Cyclesim.B -> "host transfer once, DRAM-resident"
        | Tytra_sim.Cyclesim.C -> "on-chip data, compute-bound"))
    [ ("A", Tytra_sim.Cyclesim.A); ("B", Tytra_sim.Cyclesim.B);
      ("C", Tytra_sim.Cyclesim.C) ];

  (* 4. delta-energy estimate vs the CPU baseline (paper Fig 18 style) *)
  let tm = Tytra_sim.Techmap.run ~device d4 in
  let sim =
    Tytra_sim.Cyclesim.run ~device ~fmax_mhz:tm.Tytra_sim.Techmap.tm_fmax_mhz
      ~form:Tytra_sim.Cyclesim.B ~nki d4
  in
  let cpu = Tytra_device.Device.host_i7 in
  let cpu_s =
    Tytra_sim.Cpu_model.run_s cpu (Tytra_kernels.Lavamd.cpu_workload ~boxes)
      ~nki
  in
  let e_fpga =
    Tytra_sim.Power.fpga_run_energy_j device cpu tm.Tytra_sim.Techmap.tm_usage
      ~fmax_mhz:tm.Tytra_sim.Techmap.tm_fmax_mhz
      ~gmem_bps:sim.Tytra_sim.Cyclesim.r_gmem_bps
      ~host_bps:sim.Tytra_sim.Cyclesim.r_host_bps
      ~device_s:
        (sim.Tytra_sim.Cyclesim.r_total_s -. sim.Tytra_sim.Cyclesim.r_host_s)
      ~host_s:sim.Tytra_sim.Cyclesim.r_host_s
  in
  let e_cpu = Tytra_sim.Power.cpu_run_energy_j cpu ~seconds:cpu_s in
  Format.printf
    "@.delta-energy for %d instances: fpga %.4f J (%.4g s), cpu %.4f J (%.4g \
     s) -> %.1fx@."
    nki e_fpga sim.Tytra_sim.Cyclesim.r_total_s e_cpu cpu_s (e_cpu /. e_fpga)
