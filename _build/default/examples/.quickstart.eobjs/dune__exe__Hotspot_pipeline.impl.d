examples/hotspot_pipeline.ml: Float Format Tytra_cost Tytra_device Tytra_front Tytra_ir Tytra_kernels Tytra_sim Unix
