examples/hotspot_pipeline.mli:
