examples/coarse_pipeline.ml: Array Chain Eval Format Int64 List String Transform Tytra_cost Tytra_device Tytra_front Tytra_ir Tytra_sim
