examples/coarse_pipeline.mli:
