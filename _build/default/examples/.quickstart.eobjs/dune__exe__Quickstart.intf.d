examples/quickstart.mli:
