examples/fortran_import.ml: Eval Expr Format Fortran List String Sys Transform Tytra_cost Tytra_dse Tytra_front Tytra_kernels
