examples/quickstart.ml: Eval Format List String Transform Tytra_cost Tytra_device Tytra_dse Tytra_front Tytra_hdl Tytra_ir Tytra_kernels
