examples/fortran_import.mli:
