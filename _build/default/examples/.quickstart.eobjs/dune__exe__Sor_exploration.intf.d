examples/sor_exploration.mli:
