examples/sor_exploration.ml: Filename Format List Lower Transform Tytra_cost Tytra_device Tytra_dse Tytra_front Tytra_hdl Tytra_kernels
