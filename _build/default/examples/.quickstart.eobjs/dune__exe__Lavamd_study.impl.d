examples/lavamd_study.ml: Array Eval Expr Format List Lower Printf Transform Tytra_device Tytra_front Tytra_ir Tytra_kernels Tytra_sim
