examples/lavamd_study.mli:
