(* Stream-benchmark tests: the Fig 10 curve family and the calibration
   round-trip into the cost model. *)

open Tytra_streambench
open Tytra_device

let dev = Device.virtex7_690t

let test_contiguous_rises_then_plateaus () =
  let bw side = (Streambench.copy dev `Cont ~side).Streambench.m_bps in
  let small = bw 100 and mid = bw 1000 and big = bw 4000 and big2 = bw 6000 in
  Alcotest.(check bool) "rising" true (small < mid && mid < big);
  Alcotest.(check bool) "plateau" true
    (Float.abs (big2 -. big) /. big < 0.10)

let test_paper_endpoints () =
  (* Fig 10: ~0.3 Gbit/s at side 100, ~6.3 Gbit/s at side 6000 *)
  let gbit m = m.Streambench.m_bps *. 8.0 /. 1e9 in
  let s100 = gbit (Streambench.copy dev `Cont ~side:100) in
  let s6000 = gbit (Streambench.copy dev `Cont ~side:6000) in
  Alcotest.(check bool) (Printf.sprintf "side 100 = %.2f" s100) true
    (s100 > 0.15 && s100 < 0.6);
  Alcotest.(check bool) (Printf.sprintf "side 6000 = %.2f" s6000) true
    (s6000 > 5.5 && s6000 < 7.5)

let test_strided_flat_and_slow () =
  let gbit side =
    (Streambench.copy dev `Strided ~side).Streambench.m_bps *. 8.0 /. 1e9
  in
  let s500 = gbit 500 and s2000 = gbit 2000 in
  Alcotest.(check bool) "strided ~0.07 Gbit/s" true
    (s500 > 0.03 && s500 < 0.15);
  Alcotest.(check bool) "flat" true (Float.abs (s2000 -. s500) /. s500 < 0.3)

let test_two_orders_of_magnitude () =
  let cont = (Streambench.copy dev `Cont ~side:2000).Streambench.m_bps in
  let str = (Streambench.copy dev `Strided ~side:2000).Streambench.m_bps in
  Alcotest.(check bool)
    (Printf.sprintf "gap %.0fx" (cont /. str))
    true
    (cont /. str > 30.0 && cont /. str < 300.0)

let test_random_behaves_like_strided () =
  (* §V-C: "little difference in sustained bandwidth between fixed-stride
     and true random access" *)
  let str = (Streambench.copy dev `Strided ~side:1000).Streambench.m_bps in
  let rnd = (Streambench.copy dev `Random ~side:1000).Streambench.m_bps in
  Alcotest.(check bool)
    (Printf.sprintf "random %.3g vs strided %.3g" rnd str)
    true
    (rnd /. str > 0.5 && rnd /. str < 2.0)

let test_sweep_and_calibration_roundtrip () =
  let ms =
    Streambench.sweep ~cont_sides:[ 200; 1000; 3000 ] ~strided_sides:[ 500 ]
      dev
  in
  Alcotest.(check int) "5 measurements" 5 (List.length ms);
  let calib = Streambench.to_calib dev ms in
  (* the calibration must reproduce the measured points *)
  List.iter
    (fun (m : Streambench.measurement) ->
      if m.Streambench.m_pattern = `Cont then begin
        let predicted =
          Bandwidth.sustained calib `Cont
            ~bytes:(float_of_int m.Streambench.m_bytes)
        in
        Alcotest.(check bool) "calibration reproduces measurement" true
          (Float.abs (predicted -. m.Streambench.m_bps) /. m.Streambench.m_bps
           < 1e-6)
      end)
    ms

let test_regenerated_matches_shipped_calibration () =
  (* E2's claim: the streambench curve on the simulated platform matches
     the shipped Fig 10 calibration within a factor of ~1.6 everywhere *)
  let shipped = Bandwidth.virtex7_default in
  List.iter
    (fun side ->
      let measured = (Streambench.copy dev `Cont ~side).Streambench.m_bps in
      let expected =
        Bandwidth.sustained shipped `Cont
          ~bytes:(float_of_int (side * side * 4))
      in
      let ratio = measured /. expected in
      Alcotest.(check bool)
        (Printf.sprintf "side %d ratio %.2f" side ratio)
        true
        (ratio > 0.6 && ratio < 1.7))
    [ 100; 400; 1000; 2000; 4000 ]

let suite =
  [
    Alcotest.test_case "contiguous rises then plateaus" `Quick
      test_contiguous_rises_then_plateaus;
    Alcotest.test_case "paper endpoints" `Quick test_paper_endpoints;
    Alcotest.test_case "strided flat & slow" `Quick test_strided_flat_and_slow;
    Alcotest.test_case "two orders of magnitude" `Quick
      test_two_orders_of_magnitude;
    Alcotest.test_case "random ~ strided" `Quick
      test_random_behaves_like_strided;
    Alcotest.test_case "calibration roundtrip" `Quick
      test_sweep_and_calibration_roundtrip;
    Alcotest.test_case "matches shipped calibration" `Quick
      test_regenerated_matches_shipped_calibration;
  ]
