test/test_front.ml: Alcotest Array Eval Expr Gen List Lower Printf QCheck QCheck_alcotest Transform Tytra_front Tytra_ir Tytra_kernels Vtype
