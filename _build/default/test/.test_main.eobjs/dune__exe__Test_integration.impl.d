test/test_integration.ml: Alcotest Array Filename Float List Lower Printf String Sys Transform Tytra_cost Tytra_device Tytra_front Tytra_hdl Tytra_ir Tytra_kernels Tytra_sim Unix
