test/gen.ml: Array Chain Expr Int64 List Printf QCheck Transform Tytra_front Tytra_ir Vtype
