test/test_device.ml: Alcotest Bandwidth Calib_io Device Filename Float List Printf Resources Tytra_device
