test/test_cost.ml: Alcotest Array Ast Fit Float Limits List Printf Report Resource_model String Throughput Ty Tytra_cost Tytra_device Tytra_front Tytra_ir Tytra_kernels Tytra_sim
