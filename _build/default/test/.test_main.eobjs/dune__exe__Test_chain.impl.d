test/test_chain.ml: Alcotest Array Chain Eval Expr Gen Int64 List QCheck QCheck_alcotest String Transform Tytra_cost Tytra_device Tytra_front Tytra_hdl Tytra_ir Tytra_sim
