test/test_analysis.ml: Alcotest Analysis Ast Config_tree List Lower Parser Transform Tytra_front Tytra_ir Tytra_kernels Validate
