test/test_parser.ml: Alcotest Array Ast Lexer List Parser Pprint QCheck QCheck_alcotest String Tytra_front Tytra_ir Tytra_kernels Validate
