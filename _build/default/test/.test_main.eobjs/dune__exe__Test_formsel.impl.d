test/test_formsel.ml: Alcotest Formsel List Lower Roofline Throughput Transform Tytra_cost Tytra_front Tytra_kernels
