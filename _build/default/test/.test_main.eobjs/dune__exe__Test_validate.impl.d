test/test_validate.ml: Alcotest List Parser String Tytra_ir Validate
