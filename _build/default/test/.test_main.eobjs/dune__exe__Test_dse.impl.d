test/test_dse.ml: Alcotest Dse List Transform Tytra_cost Tytra_device Tytra_dse Tytra_front Tytra_kernels
