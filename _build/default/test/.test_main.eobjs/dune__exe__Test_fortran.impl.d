test/test_fortran.ml: Alcotest Array Eval Expr Fortran Int64 List Lower Transform Tytra_front Tytra_ir Tytra_kernels
