test/test_robustness.ml: Expr Float Gen List Lower QCheck QCheck_alcotest String Transform Tytra_cost Tytra_device Tytra_front Tytra_hdl Tytra_ir Tytra_sim
