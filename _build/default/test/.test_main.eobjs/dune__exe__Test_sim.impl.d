test/test_sim.ml: Alcotest Cpu_model Cyclesim Device Dram Float Hostlink List Power Printf Prng Resources Techmap Tytra_cost Tytra_device Tytra_front Tytra_ir Tytra_kernels Tytra_sim
