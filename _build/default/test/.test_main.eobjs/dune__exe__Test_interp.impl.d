test/test_interp.ml: Alcotest Array Ast Int64 Interp List Parser QCheck QCheck_alcotest Ty Tytra_front Tytra_ir Tytra_kernels Validate
