test/test_ty.ml: Alcotest Int64 List QCheck QCheck_alcotest Ty Tytra_ir
