test/test_cfront.ml: Alcotest Array C_front Eval Expr Int64 List Lower Transform Tytra_front Tytra_ir Tytra_kernels
