test/test_optim.ml: Alcotest Analysis Ast Gen Interp List Optim Parser QCheck QCheck_alcotest Ty Tytra_cost Tytra_device Tytra_front Tytra_ir Tytra_kernels Validate
