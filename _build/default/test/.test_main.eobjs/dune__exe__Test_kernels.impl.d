test/test_kernels.ml: Alcotest Analysis Array Ast Eval Expr Float Int64 List Lower Printf Stdlib Transform Ty Tytra_cost Tytra_device Tytra_front Tytra_ir Tytra_kernels Tytra_sim
