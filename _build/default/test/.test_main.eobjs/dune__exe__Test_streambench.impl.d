test/test_streambench.ml: Alcotest Bandwidth Device Float List Printf Streambench Tytra_device Tytra_streambench
