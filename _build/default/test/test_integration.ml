(* End-to-end integration tests: the full flow on each paper kernel, the
   Table II experiment in miniature, and the shipped .tirl examples. *)

open Tytra_front

let pct e a =
  if a = 0.0 then if e = 0.0 then 0.0 else 100.0
  else 100.0 *. Float.abs (e -. a) /. a

let full_flow prog =
  let d = Lower.lower prog Transform.Pipe in
  let est = Tytra_cost.Resource_model.estimate d in
  let inputs = Tytra_cost.Throughput.inputs_of_design d in
  let cpki_est = Tytra_cost.Throughput.cpki Tytra_cost.Throughput.FormB inputs in
  let tm = Tytra_sim.Techmap.run ~effort:`Fast d in
  let sim =
    Tytra_sim.Cyclesim.run ~fmax_mhz:tm.Tytra_sim.Techmap.tm_fmax_mhz
      ~form:Tytra_sim.Cyclesim.B d
  in
  (d, est, cpki_est, tm, sim)

let check_table2_row name prog ~cpki_tol =
  let _, est, cpki_est, tm, sim = full_flow prog in
  let eu = est.Tytra_cost.Resource_model.est_usage in
  let au = tm.Tytra_sim.Techmap.tm_usage in
  let open Tytra_device.Resources in
  let p e a = pct (float_of_int e) (float_of_int a) in
  Alcotest.(check bool) (name ^ " ALUT err <= 10%") true (p eu.aluts au.aluts <= 10.);
  Alcotest.(check bool) (name ^ " REG err <= 12%") true (p eu.regs au.regs <= 12.);
  Alcotest.(check bool) (name ^ " BRAM err <= 5%") true
    (p eu.bram_bits au.bram_bits <= 5.);
  Alcotest.(check bool) (name ^ " DSP err <= 20%") true (p eu.dsps au.dsps <= 20.);
  let cpki_err = pct cpki_est sim.Tytra_sim.Cyclesim.r_cycles_per_ki in
  Alcotest.(check bool)
    (Printf.sprintf "%s CPKI err %.1f%% <= %.0f%%" name cpki_err cpki_tol)
    true (cpki_err <= cpki_tol)

let test_table2_sor () =
  check_table2_row "sor" (Tytra_kernels.Sor.table2_program ()) ~cpki_tol:25.

let test_table2_hotspot () =
  check_table2_row "hotspot" (Tytra_kernels.Hotspot.table2_program ())
    ~cpki_tol:10.

let test_table2_lavamd () =
  check_table2_row "lavamd" (Tytra_kernels.Lavamd.table2_program ())
    ~cpki_tol:40.

let test_estimator_much_faster_than_synthesis () =
  let d =
    Lower.lower (Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 ())
      (Transform.ParPipe 4)
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  (* warm up, then measure *)
  ignore (Tytra_cost.Report.evaluate d);
  let t_est = time (fun () -> Tytra_cost.Report.evaluate d) in
  let t_synth = time (fun () -> Tytra_sim.Techmap.run ~effort:`Full d) in
  Alcotest.(check bool)
    (Printf.sprintf "estimator %.4gs vs synthesis %.4gs" t_est t_synth)
    true
    (t_synth > 20.0 *. t_est)

let test_cost_model_tracks_simulator_ranking () =
  (* the cost model's job: ranking variants like the measured system *)
  (* a grid large enough that per-stream sizes sit on the sloped part of
     the bandwidth calibration (tiny grids clamp to the smallest point
     and tie) *)
  let p = Tytra_kernels.Sor.program ~im:32 ~jm:32 ~km:32 () in
  let variants =
    [ Transform.Pipe; Transform.ParPipe 2; Transform.ParPipe 4 ]
  in
  let est_rank =
    List.map
      (fun v ->
        let r = Tytra_cost.Report.evaluate ~nki:100 (Lower.lower p v) in
        (v, r.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_ekit))
      variants
  in
  let sim_rank =
    List.map
      (fun v ->
        let r =
          Tytra_sim.Cyclesim.run ~form:Tytra_sim.Cyclesim.B ~nki:100
            (Lower.lower p v)
        in
        (v, r.Tytra_sim.Cyclesim.r_ekit))
      variants
  in
  let order l =
    List.map fst
      (List.sort (fun (_, a) (_, b) -> compare b a) l)
  in
  Alcotest.(check bool) "same ranking" true (order est_rank = order sim_rank)

let test_shipped_tirl_examples () =
  let dir = "../../../examples/ir" in
  let dir =
    if Sys.file_exists dir then dir
    else "examples/ir" (* running from the repo root *)
  in
  if Sys.file_exists dir then
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".tirl" then begin
          let d = Tytra_ir.Parser.parse_file (Filename.concat dir f) in
          Alcotest.(check (list Alcotest.string)) (f ^ " validates") []
            (List.map Tytra_ir.Validate.error_to_string
               (Tytra_ir.Validate.check d))
        end)
      (Sys.readdir dir)
  else Alcotest.skip ()

let test_hdl_emission_all_kernels () =
  List.iter
    (fun prog ->
      let d = Lower.lower prog Transform.Pipe in
      let v = Tytra_hdl.Verilog.emit d in
      Alcotest.(check bool) "nonempty verilog" true (String.length v > 1000);
      let m = Tytra_hdl.Maxj.emit d in
      Alcotest.(check bool) "nonempty maxj" true (String.length m > 300))
    [
      Tytra_kernels.Sor.table2_program ();
      Tytra_kernels.Hotspot.program ~rows:32 ~cols:32 ();
      Tytra_kernels.Lavamd.table2_program ();
    ]

let test_fig17_shape_small () =
  (* miniature Fig 17: at a reasonable grid, tytra(4 lanes) beats maxJ
     (single pipe) on the simulator *)
  let side = 48 in
  let nki = 50 in
  let p = Tytra_kernels.Sor.case_study_program side in
  let run v =
    (Tytra_sim.Cyclesim.run ~form:Tytra_sim.Cyclesim.B ~nki
       (Lower.lower p v))
      .Tytra_sim.Cyclesim.r_total_s
  in
  let t_maxj = run Transform.Pipe in
  let t_tytra = run (Transform.ParPipe 4) in
  Alcotest.(check bool)
    (Printf.sprintf "tytra %.3gs < maxj %.3gs" t_tytra t_maxj)
    true (t_tytra < t_maxj)

let suite =
  [
    Alcotest.test_case "Table II row: SOR" `Slow test_table2_sor;
    Alcotest.test_case "Table II row: Hotspot" `Slow test_table2_hotspot;
    Alcotest.test_case "Table II row: LavaMD" `Slow test_table2_lavamd;
    Alcotest.test_case "estimator >> faster than synthesis" `Slow
      test_estimator_much_faster_than_synthesis;
    Alcotest.test_case "cost model ranks like simulator" `Slow
      test_cost_model_tracks_simulator_ranking;
    Alcotest.test_case "shipped .tirl examples validate" `Quick
      test_shipped_tirl_examples;
    Alcotest.test_case "HDL emission for all kernels" `Quick
      test_hdl_emission_all_kernels;
    Alcotest.test_case "Fig 17 shape (miniature)" `Slow test_fig17_shape_small;
  ]
