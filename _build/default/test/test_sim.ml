(* Simulator-substrate tests: PRNG determinism, the DRAM request model,
   the host link, the technology mapper, the cycle-level simulator, and
   the power model. *)

open Tytra_sim
open Tytra_device

let test_prng_determinism () =
  let a = Prng.of_string "seed" and b = Prng.of_string "seed" in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done;
  let c = Prng.of_string "other" in
  Alcotest.(check bool) "different seed differs" true
    (Prng.next_int64 (Prng.of_string "seed") <> Prng.next_int64 c)

let test_prng_ranges () =
  let r = Prng.of_string "ranges" in
  for _ = 1 to 1000 do
    let f = Prng.float r in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0);
    let i = Prng.int r 7 in
    Alcotest.(check bool) "int in [0,7)" true (i >= 0 && i < 7);
    let n = Prng.noise r 0.05 in
    Alcotest.(check bool) "noise in [0.95,1.05]" true (n >= 0.95 && n <= 1.05)
  done

(* ---- DRAM ---- *)

let test_dram_row_hits () =
  let cfg = Device.virtex7_690t.Device.dram in
  let d = Dram.create cfg in
  let hit_then =
    let first = Dram.service_cycles d ~addr:0 ~bytes:64 ~merged:true in
    let second = Dram.service_cycles d ~addr:64 ~bytes:64 ~merged:true in
    (first, second)
  in
  Alcotest.(check bool) "first access opens row (slower)" true
    (fst hit_then > snd hit_then)

let test_dram_contiguous_beats_strided () =
  let cfg = Device.virtex7_690t.Device.dram in
  let d = Dram.create cfg in
  (* contiguous: 1 MiB in merged 64 B requests *)
  let t_cont = ref 0.0 in
  for i = 0 to (1 lsl 20) / 64 - 1 do
    t_cont := !t_cont +. Dram.service_s d ~addr:(i * 64) ~bytes:64 ~merged:true
  done;
  Dram.reset d;
  (* strided: same payload, one 4 B element per request, 8 KiB apart *)
  let t_str = ref 0.0 in
  for i = 0 to ((1 lsl 20) / 64) - 1 do
    t_str := !t_str +. Dram.service_s d ~addr:(i * 8192) ~bytes:4 ~merged:false
  done;
  (* per-useful-byte, strided must be >= 1 order of magnitude slower *)
  let bw_cont = 1048576.0 /. !t_cont in
  let bw_str = float_of_int (((1 lsl 20) / 64) * 4) /. !t_str in
  Alcotest.(check bool)
    (Printf.sprintf "gap %.0fx" (bw_cont /. bw_str))
    true
    (bw_cont /. bw_str > 10.0)

let test_dram_counters () =
  let d = Dram.create Device.virtex7_690t.Device.dram in
  ignore (Dram.service_cycles d ~addr:0 ~bytes:64 ~merged:true);
  ignore (Dram.service_cycles d ~addr:64 ~bytes:64 ~merged:true);
  Alcotest.(check int) "2 requests" 2 d.Dram.requests;
  Alcotest.(check int64) "128 bytes" 128L d.Dram.bytes_moved;
  Alcotest.(check bool) "achieved bw positive" true (Dram.achieved_bps d > 0.0);
  Dram.reset d;
  Alcotest.(check int) "reset" 0 d.Dram.requests

(* ---- host link ---- *)

let test_hostlink () =
  let link = Device.stratixv_gsd8.Device.link in
  let small = Hostlink.transfer_s link ~bytes:64 in
  let large = Hostlink.transfer_s link ~bytes:(1 lsl 26) in
  Alcotest.(check bool) "latency floor" true (small >= link.Device.link_latency_s);
  let eff = Hostlink.effective_bps link ~bytes:(1 lsl 26) in
  Alcotest.(check bool) "large transfer near peak*eff" true
    (eff > 0.9 *. link.Device.link_eff *. link.Device.link_peak_bps);
  Alcotest.(check bool) "monotone" true (large > small);
  Alcotest.(check (float 0.0)) "zero bytes" 0.0 (Hostlink.transfer_s link ~bytes:0)

(* ---- techmap ---- *)

let sor_design v =
  Tytra_front.Lower.lower (Tytra_kernels.Sor.program ~im:8 ~jm:6 ~km:6 ()) v

let test_techmap_deterministic () =
  let d = sor_design Tytra_front.Transform.Pipe in
  let a = Techmap.run ~effort:`Fast d and b = Techmap.run ~effort:`Fast d in
  Alcotest.(check bool) "same usage" true (a.Techmap.tm_usage = b.Techmap.tm_usage);
  Alcotest.(check (float 1e-9)) "same fmax" a.Techmap.tm_fmax_mhz b.Techmap.tm_fmax_mhz

let test_techmap_close_to_estimate () =
  (* estimate-vs-actual errors stay in the paper's Table II range *)
  List.iter
    (fun prog ->
      let d = Tytra_front.Lower.lower prog Tytra_front.Transform.Pipe in
      let est =
        (Tytra_cost.Resource_model.estimate d).Tytra_cost.Resource_model.est_usage
      in
      let act = (Techmap.run ~effort:`Fast d).Techmap.tm_usage in
      let open Resources in
      let pct e a =
        if a = 0 then if e = 0 then 0.0 else 100.0
        else 100.0 *. Float.abs (float_of_int (e - a)) /. float_of_int a
      in
      Alcotest.(check bool) "ALUT err < 10%" true (pct est.aluts act.aluts < 10.0);
      Alcotest.(check bool) "REG err < 12%" true (pct est.regs act.regs < 12.0);
      Alcotest.(check bool) "BRAM err < 5%" true
        (pct est.bram_bits act.bram_bits < 5.0);
      Alcotest.(check bool) "DSP err < 20%" true (pct est.dsps act.dsps < 20.0))
    [
      Tytra_kernels.Sor.table2_program ();
      Tytra_kernels.Lavamd.table2_program ();
    ]

let test_techmap_unit_dsp_merge_direction () =
  (* synthesis may merge DSPs (actual <= model) but never invents them *)
  let d =
    Tytra_front.Lower.lower
      (Tytra_kernels.Lavamd.table2_program ())
      Tytra_front.Transform.Pipe
  in
  let est =
    (Tytra_cost.Resource_model.estimate d).Tytra_cost.Resource_model.est_usage
  in
  let act = (Techmap.run ~effort:`Fast d).Techmap.tm_usage in
  Alcotest.(check bool) "dsps actual <= estimated" true
    (act.Resources.dsps <= est.Resources.dsps)

let test_techmap_effort_slower_but_same_resources () =
  let d = sor_design Tytra_front.Transform.Pipe in
  let fast = Techmap.run ~effort:`Fast d in
  let full = Techmap.run ~effort:`Full d in
  Alcotest.(check bool) "usage independent of placement effort" true
    (fast.Techmap.tm_usage = full.Techmap.tm_usage)

let test_map_unit_div_matches_rule () =
  let u = Techmap.map_unit Tytra_ir.Ast.Div (Tytra_ir.Ty.UInt 24) in
  Alcotest.(check bool) "~652 ALUTs at 24 bits" true
    (abs (u.Resources.aluts - 652) < 12)

(* ---- cyclesim ---- *)

let test_cyclesim_lane_speedup () =
  let p = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 () in
  let run v =
    (Cyclesim.run ~form:Cyclesim.B (Tytra_front.Lower.lower p v))
      .Cyclesim.r_cycles_per_ki
  in
  let c1 = run Tytra_front.Transform.Pipe in
  let c4 = run (Tytra_front.Transform.ParPipe 4) in
  Alcotest.(check bool)
    (Printf.sprintf "4 lanes faster (%.0f vs %.0f)" c1 c4)
    true (c4 < c1 /. 2.0)

let test_cyclesim_forms () =
  let p = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 () in
  let d = Tytra_front.Lower.lower p Tytra_front.Transform.Pipe in
  let nki = 50 in
  let a = Cyclesim.run ~form:Cyclesim.A ~nki d in
  let b = Cyclesim.run ~form:Cyclesim.B ~nki d in
  let c = Cyclesim.run ~form:Cyclesim.C ~nki d in
  Alcotest.(check bool) "A pays host every instance" true
    (a.Cyclesim.r_host_s > 10.0 *. b.Cyclesim.r_host_s);
  Alcotest.(check bool) "B total < A total" true
    (b.Cyclesim.r_total_s < a.Cyclesim.r_total_s);
  Alcotest.(check bool) "C compute bound" true c.Cyclesim.r_compute_bound;
  (* form C streams its windows from BRAM at one element per kernel cycle,
     while form B's DRAM fill delivers a whole burst per request — so for a
     compute-bound kernel B and C are within a few percent of each other *)
  Alcotest.(check bool) "C within 5% of B per instance" true
    (c.Cyclesim.r_time_per_ki_s <= 1.05 *. b.Cyclesim.r_time_per_ki_s)

let test_cyclesim_cpki_scale () =
  (* single-lane pipelined kernel: CPKI close to NGS + overheads *)
  let p = Tytra_kernels.Sor.program ~im:8 ~jm:6 ~km:6 () in
  let d = Tytra_front.Lower.lower p Tytra_front.Transform.Pipe in
  let r = Cyclesim.run ~form:Cyclesim.B d in
  Alcotest.(check bool)
    (Printf.sprintf "CPKI %.0f in [288, 600]" r.Cyclesim.r_cycles_per_ki)
    true
    (r.Cyclesim.r_cycles_per_ki >= 288.0 && r.Cyclesim.r_cycles_per_ki < 600.0)

let test_cyclesim_strided_slower () =
  let p = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 () in
  let dc = Tytra_front.Lower.lower p Tytra_front.Transform.Pipe in
  let ds =
    Tytra_front.Lower.lower ~pattern:(Tytra_ir.Ast.Strided 256) p
      Tytra_front.Transform.Pipe
  in
  let rc = Cyclesim.run ~form:Cyclesim.B dc in
  let rs = Cyclesim.run ~form:Cyclesim.B ds in
  Alcotest.(check bool) "strided streams slower" true
    (rs.Cyclesim.r_cycles_per_ki > 2.0 *. rc.Cyclesim.r_cycles_per_ki);
  Alcotest.(check bool) "strided memory-bound" true
    (not rs.Cyclesim.r_compute_bound)

(* ---- power / cpu model ---- *)

let test_power_monotone_in_resources () =
  let dev = Device.stratixv_gsd8 in
  let u1 =
    { Resources.aluts = 1000; regs = 2000; bram_bits = 10000; bram_blocks = 1;
      dsps = 4 }
  in
  let u4 = Resources.scale 4 u1 in
  let p1 = Power.fpga_delta_w dev u1 ~fmax_mhz:200. ~gmem_bps:1e9 ~host_bps:1e8 in
  let p4 = Power.fpga_delta_w dev u4 ~fmax_mhz:200. ~gmem_bps:1e9 ~host_bps:1e8 in
  Alcotest.(check bool) "more logic, more power" true (p4 > p1);
  Alcotest.(check bool) "above static floor" true
    (p1 > dev.Device.power.Device.pw_static_w)

let test_cpu_model () =
  let cpu = Device.host_i7 in
  let small = Tytra_kernels.Sor.cpu_workload ~side:24 in
  let large = Tytra_kernels.Sor.cpu_workload ~side:192 in
  let ts = Cpu_model.instance_s cpu small in
  let tl = Cpu_model.instance_s cpu large in
  Alcotest.(check bool) "larger grid slower" true (tl > 100.0 *. ts);
  Alcotest.(check (float 1e-12)) "run_s = nki * instance"
    (1000.0 *. tl)
    (Cpu_model.run_s cpu large ~nki:1000)

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    Alcotest.test_case "prng ranges" `Quick test_prng_ranges;
    Alcotest.test_case "dram row hits" `Quick test_dram_row_hits;
    Alcotest.test_case "dram contiguous >> strided" `Quick
      test_dram_contiguous_beats_strided;
    Alcotest.test_case "dram counters" `Quick test_dram_counters;
    Alcotest.test_case "host link" `Quick test_hostlink;
    Alcotest.test_case "techmap deterministic" `Quick test_techmap_deterministic;
    Alcotest.test_case "techmap close to estimate" `Quick
      test_techmap_close_to_estimate;
    Alcotest.test_case "techmap dsp merge direction" `Quick
      test_techmap_unit_dsp_merge_direction;
    Alcotest.test_case "techmap effort invariant" `Quick
      test_techmap_effort_slower_but_same_resources;
    Alcotest.test_case "map_unit div" `Quick test_map_unit_div_matches_rule;
    Alcotest.test_case "cyclesim lane speedup" `Quick test_cyclesim_lane_speedup;
    Alcotest.test_case "cyclesim forms A/B/C" `Quick test_cyclesim_forms;
    Alcotest.test_case "cyclesim CPKI scale" `Quick test_cyclesim_cpki_scale;
    Alcotest.test_case "cyclesim strided slower" `Quick
      test_cyclesim_strided_slower;
    Alcotest.test_case "power monotone" `Quick test_power_monotone_in_resources;
    Alcotest.test_case "cpu model" `Quick test_cpu_model;
  ]
