(* IR interpreter tests: scalar op semantics, offsets/padding, reductions,
   and execution through the call hierarchy. *)

open Tytra_ir

let ui8 = Ty.UInt 8
let si8 = Ty.SInt 8

let op = Interp.apply_op

let test_int_ops () =
  Alcotest.(check int64) "add wraps" 4L (op ui8 Ast.Add [ 250L; 10L ]);
  Alcotest.(check int64) "sub wraps" 251L (op ui8 Ast.Sub [ 1L; 6L ]);
  Alcotest.(check int64) "mul" 200L (op ui8 Ast.Mul [ 20L; 10L ]);
  Alcotest.(check int64) "div" 6L (op ui8 Ast.Div [ 20L; 3L ]);
  Alcotest.(check int64) "div by zero" 0L (op ui8 Ast.Div [ 20L; 0L ]);
  Alcotest.(check int64) "rem" 2L (op ui8 Ast.Rem [ 20L; 3L ]);
  Alcotest.(check int64) "and" 8L (op ui8 Ast.And [ 12L; 10L ]);
  Alcotest.(check int64) "or" 14L (op ui8 Ast.Or [ 12L; 10L ]);
  Alcotest.(check int64) "xor" 6L (op ui8 Ast.Xor [ 12L; 10L ]);
  Alcotest.(check int64) "shl" 48L (op ui8 Ast.Shl [ 12L; 2L ]);
  Alcotest.(check int64) "shr" 3L (op ui8 Ast.Shr [ 12L; 2L ]);
  Alcotest.(check int64) "min" 3L (op ui8 Ast.Min [ 3L; 7L ]);
  Alcotest.(check int64) "max" 7L (op ui8 Ast.Max [ 3L; 7L ]);
  Alcotest.(check int64) "not" 243L (op ui8 Ast.Not [ 12L ]);
  Alcotest.(check int64) "sqrt 16" 4L (op ui8 Ast.Sqrt [ 16L ]);
  Alcotest.(check int64) "sqrt 17" 4L (op ui8 Ast.Sqrt [ 17L ]);
  Alcotest.(check int64) "sqrt 0" 0L (op ui8 Ast.Sqrt [ 0L ])

let test_signed_ops () =
  Alcotest.(check int64) "signed div" (-6L) (op si8 Ast.Div [ -20L; 3L ]);
  Alcotest.(check int64) "signed min" (-20L) (op si8 Ast.Min [ -20L; 3L ]);
  Alcotest.(check int64) "abs" 20L (op si8 Ast.Abs [ -20L ]);
  Alcotest.(check int64) "neg wraps" (-128L) (op si8 Ast.Neg [ -128L ]);
  Alcotest.(check int64) "signed shr" (-2L) (op si8 Ast.Shr [ -8L; 2L ]);
  Alcotest.(check int64) "signed lt" 1L (op si8 Ast.CmpLt [ -1L; 0L ])

let test_unsigned_compare () =
  (* 255 > 1 unsigned even though the bits look negative *)
  Alcotest.(check int64) "unsigned gt" 1L (op ui8 Ast.CmpGt [ 255L; 1L ]);
  Alcotest.(check int64) "select true" 42L (op ui8 Ast.Select [ 1L; 42L; 7L ]);
  Alcotest.(check int64) "select false" 7L (op ui8 Ast.Select [ 0L; 42L; 7L ])

let test_float_ops () =
  let fp = Ty.Float 64 in
  let f v = Int64.bits_of_float v in
  let fo v = Int64.float_of_bits v in
  Alcotest.(check (float 1e-12)) "fadd" 3.5 (fo (op fp Ast.Add [ f 1.25; f 2.25 ]));
  Alcotest.(check (float 1e-12)) "fmul" 2.5 (fo (op fp Ast.Mul [ f 2.0; f 1.25 ]));
  Alcotest.(check (float 1e-12)) "fdiv0" 0.0 (fo (op fp Ast.Div [ f 2.0; f 0.0 ]));
  Alcotest.(check int64) "fcmp" 1L (op fp Ast.CmpLt [ f 1.0; f 2.0 ])

let test_offsets_and_padding () =
  let src =
    {|
define void @f (ui8 %x) pipe {
  %prev = offset ui8 %x, -1
  %next = offset ui8 %x, +1
  %s = add ui8 %prev, %next
  %out_y = mov ui8 %s
}
define void @main (ui8 %x) seq { call @f (%x) pipe }
|}
  in
  let d = Validate.check_exn (Parser.parse src) in
  let r = Interp.run d [ ("x", [| 1L; 2L; 3L; 4L |]) ] in
  let y = snd (List.hd r.Interp.ir_outputs) in
  (* y[i] = x[i-1] + x[i+1], zero-padded *)
  Alcotest.(check bool) "padded stencil" true (y = [| 2L; 4L; 6L; 3L |])

let test_reduction_accumulates () =
  let src =
    {|
@acc = global ui16 init 5
define void @f (ui16 %x) pipe {
  @acc = add ui16 %x, @acc
}
define void @main (ui16 %x) seq { call @f (%x) pipe }
|}
  in
  let d = Validate.check_exn (Parser.parse src) in
  let r = Interp.run d [ ("x", [| 1L; 2L; 3L |]) ] in
  Alcotest.(check int64) "5+1+2+3" 11L (List.assoc "acc" r.Interp.ir_globals)

let test_scalar_call_args () =
  let src =
    {|
define void @f (ui8 %x, ui8 %k) pipe {
  %y = mul ui8 %x, %k
  %out_y = mov ui8 %y
}
define void @main (ui8 %x) seq { call @f (%x, 3) pipe }
|}
  in
  let d = Validate.check_exn (Parser.parse src) in
  let r = Interp.run d [ ("x", [| 1L; 2L; 3L |]) ] in
  Alcotest.(check bool) "scaled" true
    (snd (List.hd r.Interp.ir_outputs) = [| 3L; 6L; 9L |])

let test_par_lanes_execute () =
  let src =
    {|
define void @f (ui8 %x) pipe {
  %y = add ui8 %x, 1
  %out_y = mov ui8 %y
}
define void @lanes (ui8 %a, ui8 %b) par {
  call @f (%a) pipe
  call @f (%b) pipe
}
define void @main (ui8 %a, ui8 %b) seq { call @lanes (%a, %b) par }
|}
  in
  let d = Validate.check_exn (Parser.parse src) in
  let r =
    Interp.run d [ ("a", [| 1L; 2L |]); ("b", [| 10L; 20L |]) ]
  in
  Alcotest.(check int) "two output groups" 2 (List.length r.Interp.ir_outputs);
  let arrays = List.map snd r.Interp.ir_outputs in
  Alcotest.(check bool) "lane values" true
    (arrays = [ [| 2L; 3L |]; [| 11L; 21L |] ])

let test_gathered_output () =
  let src =
    {|
define void @f (ui8 %x) pipe {
  %y = add ui8 %x, 1
  %out_y = mov ui8 %y
}
define void @lanes (ui8 %a, ui8 %b) par {
  call @f (%a) pipe
  call @f (%b) pipe
}
define void @main (ui8 %a, ui8 %b) seq { call @lanes (%a, %b) par }
|}
  in
  let d = Validate.check_exn (Parser.parse src) in
  let r = Interp.run d [ ("a", [| 1L |]); ("b", [| 10L |]) ] in
  Alcotest.(check bool) "gathered lane-major" true
    (Interp.gathered_output d r ~outputs_per_lane:1 ~nth:0 = [| 2L; 11L |])

(* property: apply_op always lands in the type's range for random ops *)
let prop_ops_in_range =
  let ops =
    [| Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Rem; Ast.And; Ast.Or; Ast.Xor;
       Ast.Min; Ast.Max; Ast.Neg; Ast.Not |]
  in
  QCheck.Test.make ~name:"integer op results in range" ~count:1000
    QCheck.(triple (int_range 0 11) (int_range 1 32) (pair int64 int64))
    (fun (oi, w, (a, b)) ->
      let t = Ty.UInt w in
      let o = ops.(oi) in
      let a = Ty.mask t a and b = Ty.mask t b in
      let args = if Ast.arity o = 1 then [ a ] else [ a; b ] in
      let r = op t o args in
      match Ty.int_range t with
      | Some (lo, hi) -> Int64.compare r lo >= 0 && Int64.compare r hi <= 0
      | None -> false)

let suite =
  [
    Alcotest.test_case "integer ops" `Quick test_int_ops;
    Alcotest.test_case "signed ops" `Quick test_signed_ops;
    Alcotest.test_case "unsigned compare & select" `Quick test_unsigned_compare;
    Alcotest.test_case "float ops" `Quick test_float_ops;
    Alcotest.test_case "offsets & padding" `Quick test_offsets_and_padding;
    Alcotest.test_case "reduction accumulates" `Quick test_reduction_accumulates;
    Alcotest.test_case "scalar call args" `Quick test_scalar_call_args;
    Alcotest.test_case "par lanes execute" `Quick test_par_lanes_execute;
    Alcotest.test_case "gathered output" `Quick test_gathered_output;
    QCheck_alcotest.to_alcotest prop_ops_in_range;
  ]

let test_seq_design_executes () =
  (* C4: datapath directly in a sequential @main *)
  let p = Tytra_kernels.Lavamd.program ~boxes:1 () in
  let d = Tytra_front.Lower.lower p Tytra_front.Transform.Seq in
  let env = Tytra_kernels.Workloads.random_env p in
  let golden = Tytra_front.Eval.run_baseline p env in
  let r = Interp.run d env in
  let fx = Interp.gathered_output d r ~outputs_per_lane:3 ~nth:0 in
  Alcotest.(check bool) "seq == baseline" true
    (fx = List.assoc "fx" golden.Tytra_front.Eval.outputs)

let test_float_design_executes () =
  let p =
    Tytra_kernels.Sor.program ~ty:(Ty.Float 32) ~im:4 ~jm:3 ~km:3 ()
  in
  let d = Tytra_front.Lower.lower p Tytra_front.Transform.Pipe in
  let env = Tytra_kernels.Workloads.random_env p in
  let golden = Tytra_front.Eval.run_baseline p env in
  let r = Interp.run d env in
  let out = Interp.gathered_output d r ~outputs_per_lane:1 ~nth:0 in
  Alcotest.(check bool) "fp32 interp == eval" true
    (out = List.assoc "p" golden.Tytra_front.Eval.outputs)

let test_empty_stream () =
  let src =
    {|
define void @f (ui8 %x) pipe { %out_y = mov ui8 %x }
define void @main (ui8 %x) seq { call @f (%x) pipe }
|}
  in
  let d = Validate.check_exn (Parser.parse src) in
  let r = Interp.run d [ ("x", [||]) ] in
  Alcotest.(check int) "empty output" 0
    (Array.length (snd (List.hd r.Interp.ir_outputs)))

let suite =
  suite
  @ [
      Alcotest.test_case "seq (C4) design executes" `Quick
        test_seq_design_executes;
      Alcotest.test_case "float design executes" `Quick
        test_float_design_executes;
      Alcotest.test_case "empty stream" `Quick test_empty_stream;
    ]
