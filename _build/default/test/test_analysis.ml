(* Tests for the IR analyses that extract the Table I parameters, and for
   the configuration-tree classifier (paper Figs 5, 7, 8). *)

open Tytra_ir
open Tytra_front

let sor im jm km = Tytra_kernels.Sor.program ~im ~jm ~km ()

let params v p = Analysis.params (Lower.lower p v)

let test_ngs () =
  let p = sor 8 6 6 in
  Alcotest.(check int) "ngs pipe" 288 (params Transform.Pipe p).Analysis.ngs;
  Alcotest.(check int) "ngs par4" 288
    (params (Transform.ParPipe 4) p).Analysis.ngs;
  Alcotest.(check int) "ngs seq" 288 (params Transform.Seq p).Analysis.ngs

let test_noff () =
  let p = sor 8 6 6 in
  (* k-neighbour offset = im*jm = 48 *)
  Alcotest.(check int) "noff = im*jm" 48
    (params Transform.Pipe p).Analysis.noff;
  let p2 = sor 16 16 4 in
  Alcotest.(check int) "noff = 256" 256
    (params Transform.Pipe p2).Analysis.noff

let test_knl_dv () =
  let p = sor 8 6 6 in
  let q v = params v p in
  Alcotest.(check int) "pipe knl" 1 (q Transform.Pipe).Analysis.knl;
  Alcotest.(check int) "par4 knl" 4 (q (Transform.ParPipe 4)).Analysis.knl;
  Alcotest.(check int) "par4 dv" 1 (q (Transform.ParPipe 4)).Analysis.dv;
  let qv = q (Transform.ParVecPipe (2, 2)) in
  Alcotest.(check int) "parvec knl" 2 qv.Analysis.knl;
  Alcotest.(check int) "parvec dv" 2 qv.Analysis.dv

let test_nto () =
  let p = sor 8 6 6 in
  Alcotest.(check int) "pipe nto=1" 1 (params Transform.Pipe p).Analysis.nto;
  let s = params Transform.Seq p in
  Alcotest.(check bool) "seq nto=ni>1" true
    (s.Analysis.nto = s.Analysis.ni && s.Analysis.ni > 1)

let test_ni_stable_across_lanes () =
  let p = sor 8 6 6 in
  let n1 = (params Transform.Pipe p).Analysis.ni in
  let n4 = (params (Transform.ParPipe 4) p).Analysis.ni in
  Alcotest.(check int) "ni per PE invariant" n1 n4;
  Alcotest.(check bool) "sor has ~18 ops" true (n1 >= 14 && n1 <= 22)

let test_nwpt () =
  let p = sor 8 6 6 in
  let q = params Transform.Pipe p in
  Alcotest.(check int) "2 inputs" 2 q.Analysis.in_words;
  Alcotest.(check int) "1 output" 1 q.Analysis.out_words;
  Alcotest.(check int) "nwpt" 3 q.Analysis.nwpt;
  let q4 = params (Transform.ParPipe 4) p in
  Alcotest.(check int) "nwpt per work-item invariant" 3 q4.Analysis.nwpt

let test_kpd () =
  let p = sor 8 6 6 in
  let q = params Transform.Pipe p in
  (* depth must cover at least one mul (3) + adds chain, and be sane *)
  Alcotest.(check bool) "kpd positive & plausible" true
    (q.Analysis.kpd >= 5 && q.Analysis.kpd <= 100);
  let q4 = params (Transform.ParPipe 4) p in
  Alcotest.(check int) "kpd invariant across lanes" q.Analysis.kpd
    q4.Analysis.kpd

let test_config_classes () =
  let p = sor 8 6 6 in
  let cls v =
    (Config_tree.classify (Lower.lower p v)).Config_tree.cs_class
  in
  Alcotest.(check string) "pipe -> C2" "C2"
    (Config_tree.cclass_to_string (cls Transform.Pipe));
  Alcotest.(check string) "par -> C1" "C1"
    (Config_tree.cclass_to_string (cls (Transform.ParPipe 4)));
  Alcotest.(check string) "parvec -> C3" "C3"
    (Config_tree.cclass_to_string (cls (Transform.ParVecPipe (2, 2))));
  Alcotest.(check string) "seq -> C4" "C4"
    (Config_tree.cclass_to_string (cls Transform.Seq))

let test_config_pes () =
  let p = sor 8 6 6 in
  let pes v =
    List.length (Config_tree.classify (Lower.lower p v)).Config_tree.cs_pes
  in
  Alcotest.(check int) "pipe 1 PE" 1 (pes Transform.Pipe);
  Alcotest.(check int) "par4 4 PEs" 4 (pes (Transform.ParPipe 4));
  Alcotest.(check int) "parvec 2x2 4 PEs" 4 (pes (Transform.ParVecPipe (2, 2)))

let test_coarse_pipeline_tree () =
  (* Fig 7 configuration 3: coarse-grained pipeline (pipe of pipes) *)
  let src =
    {|
define void @pipeA (ui18 %x) pipe { %out_a = add ui18 %x, 1 }
define void @pipeB (ui18 %x) pipe { %out_b = add ui18 %x, 2 }
define void @top (ui18 %x) pipe {
  call @pipeA (%x) pipe
  call @pipeB (%x) pipe
}
define void @main (ui18 %x) seq {
  call @top (%x) pipe
}
|}
  in
  let d = Validate.check_exn (Parser.parse src) in
  let s = Config_tree.classify d in
  Alcotest.(check string) "coarse C2" "C2"
    (Config_tree.cclass_to_string s.Config_tree.cs_class);
  Alcotest.(check bool) "coarse flag" true s.Config_tree.cs_coarse;
  Alcotest.(check int) "2 PEs in the lane" 2 (List.length s.Config_tree.cs_pes)

let test_bytes_per_ndrange () =
  let p = sor 8 6 6 in
  let d = Lower.lower p Transform.Pipe in
  (* 3 streams x 288 elements x 3 bytes (ui18) *)
  Alcotest.(check int) "bytes" (3 * 288 * 3) (Analysis.bytes_per_ndrange d)

let test_dominant_pattern () =
  let p = sor 8 6 6 in
  let d = Lower.lower p Transform.Pipe in
  Alcotest.(check bool) "cont" true (Analysis.dominant_pattern d = Ast.Cont);
  let ds = Lower.lower ~pattern:(Ast.Strided 48) p Transform.Pipe in
  Alcotest.(check bool) "strided wins" true
    (Analysis.dominant_pattern ds = Ast.Strided 48)

let suite =
  [
    Alcotest.test_case "NGS" `Quick test_ngs;
    Alcotest.test_case "Noff" `Quick test_noff;
    Alcotest.test_case "KNL / DV" `Quick test_knl_dv;
    Alcotest.test_case "NTO" `Quick test_nto;
    Alcotest.test_case "NI invariant per PE" `Quick test_ni_stable_across_lanes;
    Alcotest.test_case "NWPT" `Quick test_nwpt;
    Alcotest.test_case "KPD" `Quick test_kpd;
    Alcotest.test_case "design-space classes" `Quick test_config_classes;
    Alcotest.test_case "PE counting" `Quick test_config_pes;
    Alcotest.test_case "coarse-grained pipeline" `Quick
      test_coarse_pipeline_tree;
    Alcotest.test_case "bytes per NDRange" `Quick test_bytes_per_ndrange;
    Alcotest.test_case "dominant pattern" `Quick test_dominant_pattern;
  ]
