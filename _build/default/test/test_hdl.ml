(* Tests for the HDL layer: scheduling invariants, offset-buffer sizing,
   Verilog emission structure, and the MaxJ wrapper. *)

open Tytra_ir
open Tytra_hdl

let sor_design () =
  Tytra_front.Lower.lower
    (Tytra_kernels.Sor.program ~im:8 ~jm:6 ~km:6 ())
    Tytra_front.Transform.Pipe

(* ---- schedule ---- *)

let test_schedule_invariants () =
  let d = sor_design () in
  let f = Ast.find_func_exn d "f0" in
  let s = Schedule.schedule_func d f in
  (* every operand is ready at or before its consumer starts *)
  let ready = s.Schedule.sc_values in
  List.iter
    (fun (sl : Schedule.slot) ->
      match sl.Schedule.sl_instr with
      | Ast.Assign { args; _ } ->
          List.iter
            (function
              | Ast.Var v -> (
                  match List.assoc_opt v ready with
                  | Some t ->
                      if t > sl.Schedule.sl_start then
                        Alcotest.failf "%s consumed at %d but ready at %d" v
                          sl.Schedule.sl_start t
                  | None -> Alcotest.failf "unknown value %s" v)
              | _ -> ())
            args
      | _ -> ())
    s.Schedule.sc_slots;
  (* depth equals the max finish time and matches the analysis *)
  let maxf =
    List.fold_left (fun a sl -> max a sl.Schedule.sl_finish) 0
      s.Schedule.sc_slots
  in
  Alcotest.(check int) "depth = max finish" maxf s.Schedule.sc_depth;
  Alcotest.(check int) "analysis kpd agrees" (Analysis.kpd d)
    s.Schedule.sc_depth;
  Alcotest.(check bool) "delay regs non-negative" true
    (s.Schedule.sc_delay_regs >= 0)

let test_schedule_latency_respected () =
  (* a mul (latency 3 at ui18) followed by an add: add starts at >= 3 *)
  let src =
    {|
define void @main (ui18 %a, ui18 %b) seq {
  %m = mul ui18 %a, %b
  %s = add ui18 %m, %a
}
|}
  in
  let d = Validate.check_exn (Parser.parse src) in
  let f = Ast.find_func_exn d "main" in
  let s = Schedule.schedule_func d f in
  (match
     List.find_opt
       (fun (sl : Schedule.slot) ->
         match sl.Schedule.sl_instr with
         | Ast.Assign { op = Ast.Add; _ } -> true
         | _ -> false)
       s.Schedule.sc_slots
   with
  | Some sl ->
      Alcotest.(check int) "add starts at mul latency"
        (Opinfo.latency Ast.Mul (Ty.UInt 18))
        sl.Schedule.sl_start
  | None -> Alcotest.fail "no add scheduled");
  (* the %a operand of the add needs a delay line: 3 stages x 18 bits *)
  Alcotest.(check bool) "delay line present" true
    (s.Schedule.sc_delay_regs >= 3 * 18)

let test_by_stage_sorted () =
  let d = sor_design () in
  let s = Schedule.schedule_func d (Ast.find_func_exn d "f0") in
  let stages = List.map fst (Schedule.by_stage s) in
  Alcotest.(check bool) "sorted" true (List.sort compare stages = stages)

let test_schedule_lane_composition () =
  let src =
    {|
define void @pipeA (ui18 %x) pipe { %out_a = add ui18 %x, 1 }
define void @pipeB (ui18 %x) pipe { %m = mul ui18 %x, %x
  %out_b = add ui18 %m, 1 }
define void @main (ui18 %x) seq {
  call @pipeA (%x) pipe
  call @pipeB (%x) pipe
}
|}
  in
  let d = Validate.check_exn (Parser.parse src) in
  let a = Ast.find_func_exn d "pipeA" and b = Ast.find_func_exn d "pipeB" in
  let sa = Schedule.schedule_func d a and sb = Schedule.schedule_func d b in
  let lane = Schedule.schedule_lane d [ a; b ] in
  Alcotest.(check int) "serial depth adds"
    (sa.Schedule.sc_depth + sb.Schedule.sc_depth)
    lane.Schedule.sc_depth

(* ---- offset buffers ---- *)

let test_offsetbuf_window () =
  let d = sor_design () in
  let bufs = Offsetbuf.of_func (Ast.find_func_exn d "f0") in
  Alcotest.(check int) "one windowed stream" 1 (List.length bufs);
  let b = List.hd bufs in
  Alcotest.(check int) "min off" (-48) b.Offsetbuf.ob_min_off;
  Alcotest.(check int) "max off" 48 b.Offsetbuf.ob_max_off;
  Alcotest.(check int) "window elems" 97 b.Offsetbuf.ob_elems;
  Alcotest.(check int) "bits" (97 * 18) b.Offsetbuf.ob_bits;
  Alcotest.(check bool) "in BRAM" true b.Offsetbuf.ob_in_bram;
  Alcotest.(check int) "lookahead" 48 (Offsetbuf.max_lookahead bufs)

let test_offsetbuf_small_in_regs () =
  let src =
    {|
define void @f (ui8 %x) pipe {
  %a = offset ui8 %x, +1
  %out_y = add ui8 %a, %x
}
define void @main (ui8 %x) seq { call @f (%x) pipe }
|}
  in
  let d = Validate.check_exn (Parser.parse src) in
  let bufs = Offsetbuf.of_func (Ast.find_func_exn d "f") in
  Alcotest.(check bool) "register window" true
    (not (List.hd bufs).Offsetbuf.ob_in_bram);
  Alcotest.(check int) "no bram bits" 0 (Offsetbuf.bram_bits bufs);
  Alcotest.(check int) "reg bits" (2 * 8) (Offsetbuf.reg_bits bufs)

(* ---- verilog ---- *)

let count_substr hay needle =
  let n = String.length needle in
  let rec go i acc =
    if i + n > String.length hay then acc
    else if String.sub hay i n = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_verilog_structure () =
  let d = sor_design () in
  let v = Verilog.emit d in
  Alcotest.(check int) "balanced module/endmodule"
    (count_substr v "\nmodule ") (count_substr v "endmodule");
  Alcotest.(check bool) "PE module present" true
    (count_substr v "module sor_pipe_f0" = 1);
  Alcotest.(check bool) "stream control present" true
    (count_substr v "module sor_pipe_stream_control" = 1);
  Alcotest.(check bool) "top present" true
    (count_substr v "module sor_pipe_top" = 1);
  Alcotest.(check bool) "window buffer emitted" true
    (count_substr v "win_p" > 0);
  Alcotest.(check bool) "valid pipeline" true (count_substr v "vld" > 0);
  Alcotest.(check bool) "reduction accumulator" true
    (count_substr v "acc_sorErrAcc" > 0)

let test_verilog_lanes () =
  let d4 =
    Tytra_front.Lower.lower
      (Tytra_kernels.Sor.program ~im:8 ~jm:6 ~km:6 ())
      (Tytra_front.Transform.ParPipe 4)
  in
  let v = Verilog.emit d4 in
  Alcotest.(check int) "4 lane instances" 4 (count_substr v "u_lane");
  (* one PE module shared by all lanes *)
  Alcotest.(check int) "single PE module" 1
    (count_substr v "module sor_par4_pipe_f0 ")

let test_verilog_div_uses_primitive () =
  let src =
    {|
define void @f (ui18 %x, ui18 %y) pipe {
  %q = div ui18 %x, %y
  %out_q = mov ui18 %q
}
define void @main (ui18 %x, ui18 %y) seq { call @f (%x, %y) pipe }
|}
  in
  let d = Validate.check_exn (Parser.parse src) in
  let v = Verilog.emit d in
  Alcotest.(check bool) "instantiates tytra_div_pipe" true
    (count_substr v "tytra_div_pipe" >= 2)
  (* instantiation + primitive definition *)

let test_verilog_config () =
  let d = sor_design () in
  let c = Verilog.emit_config d in
  Alcotest.(check bool) "KNL defined" true (count_substr c "`define TYTRA_KNL 1" = 1);
  Alcotest.(check bool) "NGS defined" true (count_substr c "`define TYTRA_NGS 288" = 1);
  Alcotest.(check bool) "class C2" true (count_substr c "\"C2\"" = 1)

let test_verilog_write_files () =
  let d = sor_design () in
  let dir = Filename.temp_file "tytra" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let v, vh = Verilog.write ~dir d in
  Alcotest.(check bool) "verilog file exists" true (Sys.file_exists v);
  Alcotest.(check bool) "config file exists" true (Sys.file_exists vh)

let test_maxj_wrapper () =
  let d = sor_design () in
  let m = Maxj.emit d in
  Alcotest.(check bool) "kernel class" true
    (count_substr m "class Sor_pipeKernel extends Kernel" = 1);
  Alcotest.(check bool) "inputs wired" true (count_substr m "io.input" >= 2);
  Alcotest.(check bool) "outputs wired" true (count_substr m "io.output" >= 1);
  Alcotest.(check bool) "HDL node" true (count_substr m "HDLNode" >= 1);
  Alcotest.(check bool) "dfeUInt(18)" true (count_substr m "dfeUInt(18)" >= 1)

let test_primitive_library_selection () =
  let lib =
    Primitives.library
      ~need:{ Primitives.need_div = false; need_sqrt = false; need_window = false }
  in
  Alcotest.(check bool) "fifo always present" true
    (count_substr lib "tytra_sync_fifo" >= 1);
  Alcotest.(check bool) "no divider when unused" true
    (count_substr lib "tytra_div_pipe" = 0)

let suite =
  [
    Alcotest.test_case "schedule invariants" `Quick test_schedule_invariants;
    Alcotest.test_case "latency respected" `Quick test_schedule_latency_respected;
    Alcotest.test_case "by_stage sorted" `Quick test_by_stage_sorted;
    Alcotest.test_case "lane composition" `Quick test_schedule_lane_composition;
    Alcotest.test_case "offset window sizing" `Quick test_offsetbuf_window;
    Alcotest.test_case "small window in registers" `Quick
      test_offsetbuf_small_in_regs;
    Alcotest.test_case "verilog structure" `Quick test_verilog_structure;
    Alcotest.test_case "verilog lane replication" `Quick test_verilog_lanes;
    Alcotest.test_case "verilog div primitive" `Quick
      test_verilog_div_uses_primitive;
    Alcotest.test_case "config include" `Quick test_verilog_config;
    Alcotest.test_case "write files" `Quick test_verilog_write_files;
    Alcotest.test_case "maxj wrapper" `Quick test_maxj_wrapper;
    Alcotest.test_case "primitive library selection" `Quick
      test_primitive_library_selection;
  ]

(* ---- testbench generation ---- *)

let test_testbench_generation () =
  let p = Tytra_kernels.Sor.program ~im:4 ~jm:3 ~km:3 () in
  let d = Tytra_front.Lower.lower p Tytra_front.Transform.Pipe in
  let env = Tytra_kernels.Workloads.random_env p in
  let dir = Filename.temp_file "tytra_tb" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let tb = Testbench.write ~dir d env in
  Alcotest.(check bool) "tb file exists" true (Sys.file_exists tb);
  let read f = 
    let ic = open_in f in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic; s
  in
  let tbs = read tb in
  Alcotest.(check bool) "instantiates DUT" true (count_substr tbs "sor_pipe_f0 dut" = 1);
  Alcotest.(check bool) "self-checking" true (count_substr tbs "MISMATCH" >= 1);
  Alcotest.(check bool) "readmemh inputs" true (count_substr tbs "$readmemh" >= 3);
  (* vector files present and consistent with the interpreter *)
  let hex_lines f = String.split_on_char '\n' (read f) |> List.filter (fun l -> l <> "") in
  let p_hex = hex_lines (Filename.concat dir "sor_pipe_p.hex") in
  Alcotest.(check int) "36 input vectors" 36 (List.length p_hex);
  let exp_hex = hex_lines (Filename.concat dir "sor_pipe_out_p_expected.hex") in
  Alcotest.(check int) "36 expected vectors" 36 (List.length exp_hex);
  let golden = Tytra_front.Eval.run_baseline p env in
  let gold = List.assoc "p" golden.Tytra_front.Eval.outputs in
  List.iteri
    (fun i h ->
      Alcotest.(check string)
        (Printf.sprintf "expected[%d]" i)
        (Printf.sprintf "%05Lx" gold.(i))
        h)
    exp_hex

let test_testbench_rejects_multilane () =
  let p = Tytra_kernels.Sor.program ~im:4 ~jm:3 ~km:3 () in
  let d = Tytra_front.Lower.lower p (Tytra_front.Transform.ParPipe 2) in
  match Testbench.write ~dir:"/tmp" d [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "multi-lane testbench should be rejected"

let suite =
  suite
  @ [
      Alcotest.test_case "testbench generation" `Quick
        test_testbench_generation;
      Alcotest.test_case "testbench rejects multi-lane" `Quick
        test_testbench_rejects_multilane;
    ]

let test_const_shift_free_in_verilog () =
  (* a constant shift costs no ALUTs in either model *)
  let src =
    {|
define void @f (ui16 %x) pipe {
  %a = shl ui16 %x, 3
  %out_y = mov ui16 %a
}
define void @main (ui16 %x) seq { call @f (%x) pipe }
|}
  in
  let d = Validate.check_exn (Parser.parse src) in
  let est =
    (Tytra_cost.Resource_model.estimate d)
      .Tytra_cost.Resource_model.est_usage
  in
  let base =
    (* same design, no datapath at all *)
    let src0 = {|
define void @f (ui16 %x) pipe { %out_y = mov ui16 %x }
define void @main (ui16 %x) seq { call @f (%x) pipe }
|} in
    (Tytra_cost.Resource_model.estimate (Validate.check_exn (Parser.parse src0)))
      .Tytra_cost.Resource_model.est_usage
  in
  Alcotest.(check int) "constant shift adds no ALUTs"
    base.Tytra_device.Resources.aluts est.Tytra_device.Resources.aluts

let suite =
  suite
  @ [ Alcotest.test_case "constant shift is free" `Quick
        test_const_shift_free_in_verilog ]
