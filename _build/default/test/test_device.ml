(* Device-description and empirical-bandwidth-model tests. *)

open Tytra_device

let test_registry () =
  Alcotest.(check int) "three devices" 3 (List.length Device.all);
  Alcotest.(check bool) "find maia" true
    (Device.find "maxeler-maia.stratix-v-gsd8" <> None);
  Alcotest.(check bool) "unknown none" true (Device.find "nope" = None);
  match Device.find_exn "bogus" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "find_exn should raise"

let test_inventories_sane () =
  List.iter
    (fun (d : Device.t) ->
      Alcotest.(check bool) "aluts" true (d.Device.aluts > 100_000);
      Alcotest.(check bool) "bram" true (d.Device.bram_bits > 10_000_000);
      Alcotest.(check bool) "dsps" true (d.Device.dsps > 1000);
      Alcotest.(check bool) "hpb < gpb" true (d.Device.hpb < d.Device.gpb))
    Device.all

let test_fmax_derating () =
  let d = Device.stratixv_gsd8 in
  let lo = Device.fmax_mhz d ~alut_util:0.0 in
  let hi = Device.fmax_mhz d ~alut_util:1.0 in
  Alcotest.(check (float 1e-9)) "0%% util = base" d.Device.fmax_base_mhz lo;
  Alcotest.(check bool) "derated but floored" true
    (hi < lo && hi >= 0.6 *. d.Device.fmax_base_mhz);
  (* clamped outside [0,1] *)
  Alcotest.(check (float 1e-9)) "clamp" hi (Device.fmax_mhz d ~alut_util:2.0)

let test_bandwidth_interp () =
  let c = Bandwidth.virtex7_default in
  (* at a calibration point, the interpolation returns the point *)
  let at_side side = side *. side *. 4.0 in
  let v = Bandwidth.sustained c `Cont ~bytes:(at_side 1000.) in
  Alcotest.(check bool) "4.1 Gbit at side 1000" true
    (Float.abs ((v *. 8. /. 1e9) -. 4.1) < 0.01);
  (* clamped at both ends *)
  let tiny = Bandwidth.sustained c `Cont ~bytes:100.0 in
  let small = Bandwidth.sustained c `Cont ~bytes:(at_side 100.) in
  Alcotest.(check (float 1e-6)) "clamped below" small tiny;
  let huge = Bandwidth.sustained c `Cont ~bytes:1e12 in
  let large = Bandwidth.sustained c `Cont ~bytes:(at_side 6000.) in
  Alcotest.(check (float 1e-6)) "clamped above" large huge

let test_bandwidth_monotone_cont () =
  let c = Bandwidth.virtex7_default in
  let sides = [ 100.; 300.; 700.; 1200.; 2200.; 3500.; 5500. ] in
  let values =
    List.map (fun s -> Bandwidth.sustained c `Cont ~bytes:(s *. s *. 4.)) sides
  in
  let rec mono = function
    | a :: (b :: _ as tl) -> a <= b +. 1e-6 && mono tl
    | _ -> true
  in
  Alcotest.(check bool) "contiguous curve monotone" true (mono values)

let test_bandwidth_gap () =
  let c = Bandwidth.virtex7_default in
  let bytes = 2000. *. 2000. *. 4.0 in
  let cont = Bandwidth.sustained c `Cont ~bytes in
  let str = Bandwidth.sustained c `Strided ~bytes in
  Alcotest.(check bool)
    (Printf.sprintf "~2 orders of magnitude (%.0fx)" (cont /. str))
    true
    (cont /. str > 50.0)

let test_rho_bounds () =
  let c = Bandwidth.virtex7_default in
  List.iter
    (fun bytes ->
      let r = Bandwidth.rho c ~peak:21.3e9 `Cont ~bytes in
      Alcotest.(check bool) "rho in (0,1]" true (r > 0.0 && r <= 1.0))
    [ 1.0; 1e4; 1e7; 1e12 ]

let test_rho_host () =
  let link = Device.stratixv_gsd8.Device.link in
  let small = Bandwidth.rho_host link ~bytes:64. in
  let large = Bandwidth.rho_host link ~bytes:1e9 in
  Alcotest.(check bool) "small transfers latency-bound" true (small < 0.1);
  Alcotest.(check bool) "large transfers approach link_eff" true
    (large > 0.95 *. link.Device.link_eff)

let test_resources_algebra () =
  let u =
    { Resources.aluts = 10; regs = 20; bram_bits = 30; bram_blocks = 1; dsps = 2 }
  in
  let s = Resources.add u (Resources.scale 2 u) in
  Alcotest.(check int) "add/scale" 30 s.Resources.aluts;
  Alcotest.(check int) "sum" 60 (Resources.sum [ u; u; Resources.scale 4 u ]).Resources.aluts;
  Alcotest.(check bool) "zero identity" true (Resources.add Resources.zero u = u)

let test_utilization_and_fits () =
  let d = Device.stratixv_gsd8 in
  let u =
    { Resources.aluts = d.Device.aluts / 2; regs = 0; bram_bits = 0;
      bram_blocks = 0; dsps = 0 }
  in
  let x = Resources.utilization d u in
  Alcotest.(check (float 1e-9)) "50%%" 0.5 x.Resources.ut_aluts;
  Alcotest.(check bool) "fits" true (Resources.fits d u);
  Alcotest.(check string) "binding" "ALUTs" (Resources.binding_resource d u);
  let over = { u with Resources.aluts = d.Device.aluts * 2 } in
  Alcotest.(check bool) "over budget" false (Resources.fits d over)

let suite =
  [
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "inventories sane" `Quick test_inventories_sane;
    Alcotest.test_case "fmax derating" `Quick test_fmax_derating;
    Alcotest.test_case "bandwidth interpolation" `Quick test_bandwidth_interp;
    Alcotest.test_case "contiguous curve monotone" `Quick
      test_bandwidth_monotone_cont;
    Alcotest.test_case "contiguous/strided gap" `Quick test_bandwidth_gap;
    Alcotest.test_case "rho bounds" `Quick test_rho_bounds;
    Alcotest.test_case "rho host" `Quick test_rho_host;
    Alcotest.test_case "resource algebra" `Quick test_resources_algebra;
    Alcotest.test_case "utilization & fits" `Quick test_utilization_and_fits;
  ]

(* ---- calibration file IO ---- *)

let test_calib_roundtrip () =
  let c = Bandwidth.virtex7_default in
  let path = Filename.temp_file "tytra" ".calib" in
  Calib_io.save path c;
  match Calib_io.load path with
  | Error e -> Alcotest.fail e
  | Ok c' ->
      Alcotest.(check string) "device" c.Bandwidth.cal_device
        c'.Bandwidth.cal_device;
      List.iter
        (fun bytes ->
          Alcotest.(check (float 1.0)) "cont prediction preserved"
            (Bandwidth.sustained c `Cont ~bytes)
            (Bandwidth.sustained c' `Cont ~bytes);
          Alcotest.(check (float 1.0)) "strided prediction preserved"
            (Bandwidth.sustained c `Strided ~bytes)
            (Bandwidth.sustained c' `Strided ~bytes))
        [ 1e4; 1e6; 1e8 ]

let test_calib_load_errors () =
  let path = Filename.temp_file "tytra" ".calib" in
  let oc = open_out path in
  output_string oc "not a calibration\n";
  close_out oc;
  (match Calib_io.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header must fail");
  (match Calib_io.load "/nonexistent/file" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must fail")

let suite =
  suite
  @ [
      Alcotest.test_case "calibration roundtrip" `Quick test_calib_roundtrip;
      Alcotest.test_case "calibration load errors" `Quick
        test_calib_load_errors;
    ]
