(* Whole-stack robustness properties on randomly generated programs:
   every stage must accept whatever the front end can produce. *)

open Tytra_front

let lower_pipe p = Lower.lower p Transform.Pipe

let prop_verilog_emits =
  QCheck.Test.make ~name:"verilog emission total on random designs" ~count:40
    Gen.arb_program
    (fun p ->
      let d = lower_pipe p in
      let v = Tytra_hdl.Verilog.emit d in
      let count needle hay =
        let n = String.length needle in
        let rec go i acc =
          if i + n > String.length hay then acc
          else if String.sub hay i n = needle then go (i + 1) (acc + 1)
          else go (i + 1) acc
        in
        go 0 0
      in
      String.length v > 200
      && count "\nmodule " v = count "endmodule" v)

let prop_techmap_total =
  QCheck.Test.make ~name:"techmap total on random designs" ~count:30
    Gen.arb_program
    (fun p ->
      let d = lower_pipe p in
      let r = Tytra_sim.Techmap.run ~effort:`Fast d in
      let u = r.Tytra_sim.Techmap.tm_usage in
      u.Tytra_device.Resources.aluts > 0
      && u.Tytra_device.Resources.regs > 0
      && r.Tytra_sim.Techmap.tm_fmax_mhz > 0.0)

let prop_schedule_operands_ready =
  QCheck.Test.make ~name:"schedule: operands ready before use" ~count:40
    Gen.arb_program
    (fun p ->
      let d = lower_pipe p in
      let f = Tytra_ir.Ast.find_func_exn d "f0" in
      let s = Tytra_hdl.Schedule.schedule_func d f in
      let ready = s.Tytra_hdl.Schedule.sc_values in
      List.for_all
        (fun (sl : Tytra_hdl.Schedule.slot) ->
          match sl.Tytra_hdl.Schedule.sl_instr with
          | Tytra_ir.Ast.Assign { args; _ } ->
              List.for_all
                (function
                  | Tytra_ir.Ast.Var v -> (
                      match List.assoc_opt v ready with
                      | Some t -> t <= sl.Tytra_hdl.Schedule.sl_start
                      | None -> false)
                  | _ -> true)
                args
          | _ -> true)
        s.Tytra_hdl.Schedule.sc_slots)

let prop_estimate_scales_with_lanes =
  QCheck.Test.make ~name:"lane replication grows resources" ~count:30
    Gen.arb_program
    (fun p ->
      QCheck.assume (Expr.points p mod 2 = 0);
      let u v =
        (Tytra_cost.Resource_model.estimate (Lower.lower p v))
          .Tytra_cost.Resource_model.est_usage
      in
      let u1 = u Transform.Pipe and u2 = u (Transform.ParPipe 2) in
      u2.Tytra_device.Resources.aluts > u1.Tytra_device.Resources.aluts
      && u2.Tytra_device.Resources.regs > u1.Tytra_device.Resources.regs
      && u2.Tytra_device.Resources.dsps >= u1.Tytra_device.Resources.dsps)

let prop_optimizer_never_grows_dsps =
  QCheck.Test.make ~name:"optimizer never grows DSPs or ALUTs" ~count:40
    Gen.arb_program
    (fun p ->
      let d = lower_pipe p in
      let d', _ = Tytra_ir.Optim.run d in
      let u dd =
        (Tytra_cost.Resource_model.estimate dd)
          .Tytra_cost.Resource_model.est_usage
      in
      let a = u d and b = u d' in
      b.Tytra_device.Resources.dsps <= a.Tytra_device.Resources.dsps
      && b.Tytra_device.Resources.aluts <= a.Tytra_device.Resources.aluts)

let prop_cost_report_total =
  QCheck.Test.make ~name:"cost report total on random designs" ~count:40
    Gen.arb_program
    (fun p ->
      let d = lower_pipe p in
      let r = Tytra_cost.Report.evaluate ~nki:10 d in
      let b = r.Tytra_cost.Report.rp_breakdown in
      b.Tytra_cost.Throughput.bd_ekit > 0.0
      && b.Tytra_cost.Throughput.bd_total_s > 0.0
      && Float.is_finite b.Tytra_cost.Throughput.bd_ekit)

let prop_cyclesim_total =
  QCheck.Test.make ~name:"cyclesim terminates on random designs" ~count:15
    Gen.arb_program
    (fun p ->
      let d = lower_pipe p in
      let r = Tytra_sim.Cyclesim.run ~form:Tytra_sim.Cyclesim.B d in
      r.Tytra_sim.Cyclesim.r_cycles_per_ki >= float_of_int (Expr.points p)
      && Float.is_finite r.Tytra_sim.Cyclesim.r_total_s)

let prop_analysis_consistency =
  let arb_p = Gen.arb_program in
  QCheck.Test.make ~name:"analysis params self-consistent" ~count:40
    QCheck.(pair arb_p (int_range 0 2))
    (fun (p, vi) ->
      let v =
        match vi with
        | 0 -> Transform.Pipe
        | 1 -> Transform.Seq
        | _ ->
            if Expr.points p mod 4 = 0 then Transform.ParPipe 4
            else Transform.Pipe
      in
      let q = Tytra_ir.Analysis.params (Lower.lower p v) in
      q.Tytra_ir.Analysis.ngs = Expr.points p
      && q.Tytra_ir.Analysis.knl = Transform.lanes v
      && q.Tytra_ir.Analysis.nwpt
         = List.length p.Expr.p_kernel.Expr.k_inputs
           + List.length p.Expr.p_kernel.Expr.k_outputs
      && q.Tytra_ir.Analysis.noff = Expr.max_offset p.Expr.p_kernel
      && q.Tytra_ir.Analysis.kpd >= 0)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_verilog_emits;
    QCheck_alcotest.to_alcotest prop_techmap_total;
    QCheck_alcotest.to_alcotest prop_schedule_operands_ready;
    QCheck_alcotest.to_alcotest prop_estimate_scales_with_lanes;
    QCheck_alcotest.to_alcotest prop_optimizer_never_grows_dsps;
    QCheck_alcotest.to_alcotest prop_cost_report_total;
    QCheck_alcotest.to_alcotest prop_cyclesim_total;
    QCheck_alcotest.to_alcotest prop_analysis_consistency;
  ]
