(* Validator tests: each well-formedness rule of the IR has a positive
   and a negative case. *)

open Tytra_ir

let parse = Parser.parse

let errors src = Validate.check (parse src)

let has_error_matching src substr =
  let errs = errors src in
  if
    List.exists
      (fun e ->
        let s = Validate.error_to_string e in
        let n = String.length substr in
        let rec find i =
          i + n <= String.length s && (String.sub s i n = substr || find (i + 1))
        in
        find 0)
      errs
  then ()
  else
    Alcotest.failf "expected error containing %S, got: %s" substr
      (String.concat "; " (List.map Validate.error_to_string errs))

let valid_base =
  {|
define void @f (ui18 %x) pipe {
  %y = add ui18 %x, 1
  %out_y = mov ui18 %y
}
define void @main (ui18 %x) seq {
  call @f (%x) pipe
}
|}

let test_valid () =
  Alcotest.(check int) "no errors" 0 (List.length (errors valid_base))

let test_ssa_reassign () =
  has_error_matching
    {|
define void @main (ui18 %x) seq {
  %y = add ui18 %x, 1
  %y = add ui18 %x, 2
}
|}
    "reassigned"

let test_use_before_def () =
  has_error_matching
    {|
define void @main (ui18 %x) seq {
  %y = add ui18 %z, 1
}
|}
    "undefined local"

let test_param_shadow_is_reassign () =
  has_error_matching
    {|
define void @main (ui18 %x) seq {
  %x = add ui18 %x, 1
}
|}
    "reassigned"

let test_type_mismatch () =
  has_error_matching
    {|
define void @main (ui18 %x, ui32 %w) seq {
  %y = add ui18 %x, %w
}
|}
    "type"

let test_imm_out_of_range () =
  has_error_matching
    {|
define void @main (ui18 %x) seq {
  %y = add ui18 %x, 300000
}
|}
    "out of range"

let test_float_imm_at_int () =
  has_error_matching
    {|
define void @main (ui18 %x) seq {
  %y = add ui18 %x, 1.5
}
|}
    "float immediate"

let test_bitwise_on_float () =
  has_error_matching
    {|
define void @main (fp32 %x) seq {
  %y = xor fp32 %x, %x
}
|}
    "float"

let test_call_undefined () =
  has_error_matching
    {|
define void @main (ui18 %x) seq {
  call @nope (%x) pipe
}
|}
    "undefined function"

let test_call_kind_mismatch () =
  has_error_matching
    {|
define void @f (ui18 %x) pipe { }
define void @main (ui18 %x) seq {
  call @f (%x) par
}
|}
    "kind"

let test_call_arity () =
  has_error_matching
    {|
define void @f (ui18 %x, ui18 %y) pipe { }
define void @main (ui18 %x) seq {
  call @f (%x) pipe
}
|}
    "arguments"

let test_recursion_rejected () =
  has_error_matching
    {|
define void @f (ui18 %x) pipe {
  call @g (%x) pipe
}
define void @g (ui18 %x) pipe {
  call @f (%x) pipe
}
define void @main (ui18 %x) seq {
  call @f (%x) pipe
}
|}
    "recursive"

let test_par_body_shape () =
  has_error_matching
    {|
define void @p (ui18 %x) par {
  %y = add ui18 %x, 1
}
define void @main (ui18 %x) seq {
  call @p (%x) par
}
|}
    "par function body"

let test_comb_body_shape () =
  has_error_matching
    {|
define void @c (ui18 %x) comb {
  %y = offset ui18 %x, +1
}
define void @main (ui18 %x) seq {
  call @c (%x) comb
}
|}
    "comb"

let test_offset_of_nonparam () =
  has_error_matching
    {|
define void @main (ui18 %x) seq {
  %y = add ui18 %x, 1
  %z = offset ui18 %y, +1
}
|}
    "stream parameter"

let test_no_main () =
  has_error_matching {|
define void @f (ui18 %x) pipe { }
|} "no @main"

let test_stream_unknown_mem () =
  has_error_matching
    {|
%s = stream istream %nomem pattern cont
define void @main () seq { }
|}
    "unknown memory object"

let test_port_unknown_stream () =
  has_error_matching
    {|
@main.p = addrspace(1) ui18 !istream !cont !0 !ghost
define void @main (ui18 %p) seq { }
|}
    "unknown stream"

let test_port_dir_conflict () =
  has_error_matching
    {|
%m = memobj global ui18 size 8
%s = stream ostream %m pattern cont
@main.p = addrspace(1) ui18 !istream !cont !0 !s
define void @main (ui18 %p) seq { }
|}
    "direction"

let test_port_type_conflict () =
  has_error_matching
    {|
%m = memobj global ui32 size 8
%s = stream istream %m pattern cont
@main.p = addrspace(1) ui18 !istream !cont !0 !s
define void @main (ui18 %p) seq { }
|}
    "does not match memory"

let test_port_no_param () =
  has_error_matching
    {|
%m = memobj global ui18 size 8
%s = stream istream %m pattern cont
@main.ghost = addrspace(1) ui18 !istream !cont !0 !s
define void @main (ui18 %p) seq { }
|}
    "no parameter"

let test_duplicate_names () =
  has_error_matching
    {|
%m = memobj global ui18 size 8
%m = memobj global ui18 size 9
define void @main () seq { }
|}
    "duplicate";
  has_error_matching
    {|
define void @f (ui18 %x) pipe { }
define void @f (ui18 %x) pipe { }
define void @main () seq { }
|}
    "duplicate"

let test_reduction_to_undeclared_global () =
  has_error_matching
    {|
define void @main (ui18 %x) seq {
  @acc = add ui18 %x, @acc
}
|}
    "global"

let test_select_condition_bool () =
  has_error_matching
    {|
define void @main (ui18 %x) seq {
  %y = select ui18 %x, %x, %x
}
|}
    "type";
  (* and the well-typed version passes *)
  Alcotest.(check int) "bool condition ok" 0
    (List.length
       (errors
          {|
define void @main (ui18 %x) seq {
  %c = cmplt ui18 %x, 5
  %y = select ui18 %c, %x, %x
}
|}))

let test_check_exn () =
  (match Validate.check_exn (parse valid_base) with
  | _ -> ());
  match Validate.check_exn (parse "define void @f (ui18 %x) pipe { }") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "check_exn should raise on invalid design"

let suite =
  [
    Alcotest.test_case "valid design passes" `Quick test_valid;
    Alcotest.test_case "SSA reassignment" `Quick test_ssa_reassign;
    Alcotest.test_case "use before def" `Quick test_use_before_def;
    Alcotest.test_case "param shadow" `Quick test_param_shadow_is_reassign;
    Alcotest.test_case "operand type mismatch" `Quick test_type_mismatch;
    Alcotest.test_case "immediate out of range" `Quick test_imm_out_of_range;
    Alcotest.test_case "float imm at int type" `Quick test_float_imm_at_int;
    Alcotest.test_case "bitwise on float" `Quick test_bitwise_on_float;
    Alcotest.test_case "call to undefined" `Quick test_call_undefined;
    Alcotest.test_case "call kind mismatch" `Quick test_call_kind_mismatch;
    Alcotest.test_case "call arity" `Quick test_call_arity;
    Alcotest.test_case "recursion rejected" `Quick test_recursion_rejected;
    Alcotest.test_case "par body only calls" `Quick test_par_body_shape;
    Alcotest.test_case "comb body combinational" `Quick test_comb_body_shape;
    Alcotest.test_case "offset needs stream param" `Quick
      test_offset_of_nonparam;
    Alcotest.test_case "missing @main" `Quick test_no_main;
    Alcotest.test_case "stream -> unknown mem" `Quick test_stream_unknown_mem;
    Alcotest.test_case "port -> unknown stream" `Quick test_port_unknown_stream;
    Alcotest.test_case "port direction conflict" `Quick test_port_dir_conflict;
    Alcotest.test_case "port type conflict" `Quick test_port_type_conflict;
    Alcotest.test_case "port without parameter" `Quick test_port_no_param;
    Alcotest.test_case "duplicate names" `Quick test_duplicate_names;
    Alcotest.test_case "undeclared global reduction" `Quick
      test_reduction_to_undeclared_global;
    Alcotest.test_case "select condition must be bool" `Quick
      test_select_condition_bool;
    Alcotest.test_case "check_exn" `Quick test_check_exn;
  ]
