(* Coarse-grained pipeline (kernel composition) tests: paper Fig 7,
   configurations 3 and 4, end to end. *)

open Tytra_front
open Expr

(* stage 1: damped smoothing; stage 2: threshold + scale against a second
   external stream *)
let smooth =
  {
    k_name = "smooth";
    k_ty = Tytra_ir.Ty.UInt 18;
    k_inputs = [ "x" ];
    k_params = [ ("w", 3L) ];
    k_outputs =
      [ { o_name = "s"; o_expr = param "w" *: (sten "x" (-1) +: input "x" +: sten "x" 1) } ];
    k_reductions = [];
  }

let threshold =
  {
    k_name = "threshold";
    k_ty = Tytra_ir.Ty.UInt 18;
    k_inputs = [ "v"; "gain" ];
    k_params = [ ("cut", 100L) ];
    k_outputs =
      [
        {
          o_name = "y";
          o_expr =
            Select
              ( Bin (Tytra_ir.Ast.CmpGt, input "v", param "cut"),
                input "v" *: input "gain",
                input "v" );
        };
      ];
    k_reductions =
      [ { r_name = "hits"; r_op = Tytra_ir.Ast.Add;
          r_expr =
            Select
              ( Bin (Tytra_ir.Ast.CmpGt, input "v", param "cut"),
                ci 1, ci 0 );
          r_init = 0L } ];
  }

let chain () = Chain.make_exn ~name:"smooth_thresh" ~shape:[ 64 ] [ smooth; threshold ]

let env () =
  let rng = Tytra_sim.Prng.of_string "chain" in
  [ ("x", Array.init 64 (fun _ -> Int64.of_int (Tytra_sim.Prng.int rng 64)));
    ("gain", Array.init 64 (fun _ -> Int64.of_int (1 + Tytra_sim.Prng.int rng 3))) ]

let test_make_checks () =
  (match Chain.make ~name:"c" ~shape:[ 8 ] [ smooth ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "single stage must fail");
  (* intermediate stage with two outputs *)
  let two_out = { smooth with k_outputs = smooth.k_outputs @ smooth.k_outputs } in
  (match Chain.make ~name:"c" ~shape:[ 8 ] [ two_out; threshold ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "multi-output intermediate must fail");
  (* duplicate external stream name *)
  let dup = { threshold with k_inputs = [ "v"; "x" ] } in
  match Chain.make ~name:"c" ~shape:[ 8 ] [ smooth; dup ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate external stream must fail"

let test_eval_composes () =
  let c = chain () in
  let e = env () in
  let r = Chain.eval c e in
  (* reference: run smooth, feed threshold *)
  let s = Eval.run_baseline { p_kernel = smooth; p_shape = [ 64 ] } e in
  let t =
    Eval.run_baseline
      { p_kernel = threshold; p_shape = [ 64 ] }
      (("v", List.assoc "s" s.Eval.outputs) :: e)
  in
  Alcotest.(check bool) "outputs compose" true
    (List.assoc "y" r.Eval.outputs = List.assoc "y" t.Eval.outputs);
  Alcotest.(check bool) "reductions carried" true
    (List.assoc "hits" r.Eval.reductions = List.assoc "hits" t.Eval.reductions)

let test_lower_config3 () =
  let d = Chain.lower (chain ()) Transform.Pipe in
  Alcotest.(check bool) "validates" true (Tytra_ir.Validate.is_valid d);
  let s = Tytra_ir.Config_tree.classify d in
  Alcotest.(check string) "class C2" "C2"
    (Tytra_ir.Config_tree.cclass_to_string s.Tytra_ir.Config_tree.cs_class);
  Alcotest.(check bool) "coarse" true s.Tytra_ir.Config_tree.cs_coarse;
  Alcotest.(check int) "two PEs in the lane" 2
    (List.length s.Tytra_ir.Config_tree.cs_pes);
  (* the intermediate stream never touches global memory: only the
     external streams and the final output are ports *)
  Alcotest.(check int) "3 ports" 3 (List.length d.Tytra_ir.Ast.d_ports)

let test_lower_config4 () =
  let d = Chain.lower (chain ()) (Transform.ParPipe 2) in
  Alcotest.(check bool) "validates" true (Tytra_ir.Validate.is_valid d);
  let s = Tytra_ir.Config_tree.classify d in
  Alcotest.(check string) "class C1" "C1"
    (Tytra_ir.Config_tree.cclass_to_string s.Tytra_ir.Config_tree.cs_class);
  Alcotest.(check bool) "coarse lanes" true s.Tytra_ir.Config_tree.cs_coarse;
  Alcotest.(check int) "4 PEs total" 4
    (List.length s.Tytra_ir.Config_tree.cs_pes)

let test_interp_matches_eval () =
  let c = chain () in
  let e = env () in
  let golden = Chain.eval c e in
  let d = Chain.lower c Transform.Pipe in
  let r = Tytra_ir.Interp.run d e in
  Alcotest.(check int) "one output group" 1
    (List.length r.Tytra_ir.Interp.ir_outputs);
  Alcotest.(check bool) "IR == reference" true
    (snd (List.hd r.Tytra_ir.Interp.ir_outputs)
    = List.assoc "y" golden.Eval.outputs);
  Alcotest.(check int64) "reduction"
    (List.assoc "hits" golden.Eval.reductions)
    (List.assoc "hits" r.Tytra_ir.Interp.ir_globals)

let test_roundtrip_tirl () =
  let d = Chain.lower (chain ()) Transform.Pipe in
  let txt = Tytra_ir.Pprint.design_to_string d in
  Alcotest.(check bool) "returning call printed" true
    (let rec has s sub i =
       i + String.length sub <= String.length s
       && (String.sub s i (String.length sub) = sub || has s sub (i + 1))
     in
     has txt "%c1 = call @fs0" 0);
  let d2 = Tytra_ir.Parser.parse ~name:d.Tytra_ir.Ast.d_name txt in
  Alcotest.(check bool) "roundtrips" true (Tytra_ir.Ast.equal_design d d2)

let test_analysis_on_chain () =
  let d = Chain.lower (chain ()) Transform.Pipe in
  let q = Tytra_ir.Analysis.params d in
  (* NI sums both stages; KPD is the serial composition of their depths *)
  Alcotest.(check bool) "NI covers both stages" true (q.Tytra_ir.Analysis.ni >= 5);
  let fs0 = Tytra_ir.Ast.find_func_exn d "fs0" in
  let fs1 = Tytra_ir.Ast.find_func_exn d "fs1" in
  let d0 = Tytra_ir.Analysis.pe_depth d fs0
  and d1 = Tytra_ir.Analysis.pe_depth d fs1 in
  Alcotest.(check int) "KPD = sum of stage depths" (d0 + d1)
    q.Tytra_ir.Analysis.kpd;
  (* the chained stream stays on chip: NWPT counts only the 3 ports *)
  Alcotest.(check int) "nwpt" 3 q.Tytra_ir.Analysis.nwpt

let test_cost_and_sim_on_chain () =
  let d = Chain.lower (chain ()) Transform.Pipe in
  let r = Tytra_cost.Report.evaluate ~nki:10 d in
  Alcotest.(check bool) "fits" true r.Tytra_cost.Report.rp_valid;
  let u = r.Tytra_cost.Report.rp_estimate.Tytra_cost.Resource_model.est_usage in
  Alcotest.(check bool) "both stages costed" true
    (u.Tytra_device.Resources.aluts > 100);
  let s = Tytra_sim.Cyclesim.run ~form:Tytra_sim.Cyclesim.B d in
  Alcotest.(check bool) "simulates" true
    (s.Tytra_sim.Cyclesim.r_cycles_per_ki >= 64.0)

let test_verilog_emits_stages () =
  let d = Chain.lower (chain ()) Transform.Pipe in
  let v = Tytra_hdl.Verilog.emit d in
  let count needle hay =
    let n = String.length needle in
    let rec go i acc =
      if i + n > String.length hay then acc
      else if String.sub hay i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "stage 0 module" 1
    (count "module smooth_thresh_pipe_fs0" v);
  Alcotest.(check int) "stage 1 module" 1
    (count "module smooth_thresh_pipe_fs1" v)

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_checks;
    Alcotest.test_case "eval composes stages" `Quick test_eval_composes;
    Alcotest.test_case "lower configuration 3" `Quick test_lower_config3;
    Alcotest.test_case "lower configuration 4" `Quick test_lower_config4;
    Alcotest.test_case "interp == reference" `Quick test_interp_matches_eval;
    Alcotest.test_case "tirl roundtrip (returning call)" `Quick
      test_roundtrip_tirl;
    Alcotest.test_case "analysis on chains" `Quick test_analysis_on_chain;
    Alcotest.test_case "cost & sim on chains" `Quick test_cost_and_sim_on_chain;
    Alcotest.test_case "verilog emits stages" `Quick test_verilog_emits_stages;
  ]

(* ---- properties on random chains ---- *)

let chain_env (c : Chain.t) =
  let n = Chain.points c in
  List.map
    (fun s ->
      let rng = Tytra_sim.Prng.of_string ("chainenv:" ^ s) in
      (s, Array.init n (fun _ -> Int64.of_int (Tytra_sim.Prng.int rng 64))))
    (Chain.external_streams c)

let prop_chain_lowered_validates =
  QCheck.Test.make ~name:"random chains lower to valid IR" ~count:30
    Gen.arb_chain
    (fun c ->
      Tytra_ir.Validate.is_valid (Chain.lower c Transform.Pipe)
      && Tytra_ir.Validate.is_valid (Chain.lower c (Transform.ParPipe 2)))

let prop_chain_interp_matches_eval =
  QCheck.Test.make ~name:"random chains: IR interp == reference" ~count:30
    Gen.arb_chain
    (fun c ->
      let env = chain_env c in
      let golden = Chain.eval c env in
      let d = Chain.lower c Transform.Pipe in
      let r = Tytra_ir.Interp.run d env in
      let last = List.nth c.Chain.ch_stages 1 in
      let got = List.map snd r.Tytra_ir.Interp.ir_outputs in
      let want =
        List.map
          (fun (o : Expr.output) -> List.assoc o.Expr.o_name golden.Eval.outputs)
          last.Expr.k_outputs
      in
      got = want
      && List.for_all
           (fun (r' : Expr.reduction) ->
             List.assoc r'.Expr.r_name r.Tytra_ir.Interp.ir_globals
             = List.assoc r'.Expr.r_name golden.Eval.reductions)
           last.Expr.k_reductions)

let prop_chain_roundtrip =
  QCheck.Test.make ~name:"random chains roundtrip through .tirl" ~count:20
    Gen.arb_chain
    (fun c ->
      let d = Chain.lower c Transform.Pipe in
      let d2 =
        Tytra_ir.Parser.parse ~name:d.Tytra_ir.Ast.d_name
          (Tytra_ir.Pprint.design_to_string d)
      in
      Tytra_ir.Ast.equal_design d d2)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_chain_lowered_validates;
      QCheck_alcotest.to_alcotest prop_chain_interp_matches_eval;
      QCheck_alcotest.to_alcotest prop_chain_roundtrip;
    ]
