(* Front-end tests: sized vector types, type transformations, the
   correct-by-construction property (every variant computes the baseline
   function), lowering validity, and IR-interpreter agreement. *)

open Tytra_front

let test_vtype_reshape () =
  let t = Vtype.Vect (24, Vtype.Scalar (Tytra_ir.Ty.UInt 18)) in
  (match Vtype.reshape_to 4 t with
  | Ok (Vtype.Vect (4, Vtype.Vect (6, _))) -> ()
  | Ok other -> Alcotest.failf "wrong shape: %s" (Vtype.to_string other)
  | Error e -> Alcotest.fail e);
  (match Vtype.reshape_to 5 t with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "5 does not divide 24");
  match Vtype.reshape_to 4 (Vtype.Scalar (Tytra_ir.Ty.UInt 8)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cannot reshape a scalar"

let test_vtype_size_preservation () =
  let t = Vtype.Vect (24, Vtype.Scalar (Tytra_ir.Ty.UInt 18)) in
  match Vtype.reshape_to 6 t with
  | Ok t' ->
      Alcotest.(check int) "size preserved" (Vtype.size t) (Vtype.size t');
      (match Vtype.flatten t' with
      | Ok flat -> Alcotest.(check bool) "flatten inverts" true (Vtype.equal flat t)
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e

let test_divisors () =
  Alcotest.(check (list int)) "divisors 12" [ 1; 2; 3; 4; 6; 12 ]
    (Vtype.divisors 12)

let test_enumerate () =
  let p = Tytra_kernels.Sor.program ~im:4 ~jm:2 ~km:2 () in
  let vs = Transform.enumerate ~max_lanes:8 p in
  Alcotest.(check bool) "has seq" true (List.mem Transform.Seq vs);
  Alcotest.(check bool) "has pipe" true (List.mem Transform.Pipe vs);
  Alcotest.(check bool) "has par8" true (List.mem (Transform.ParPipe 8) vs);
  Alcotest.(check bool) "no par3 (16 % 3 <> 0)" false
    (List.mem (Transform.ParPipe 3) vs);
  Alcotest.(check bool) "all applicable" true
    (List.for_all (Transform.applicable p) vs)

let test_enumerate_vec () =
  let p = Tytra_kernels.Sor.program ~im:4 ~jm:2 ~km:2 () in
  let vs = Transform.enumerate ~max_lanes:4 ~max_vec:2 p in
  Alcotest.(check bool) "has par2-vec2" true
    (List.mem (Transform.ParVecPipe (2, 2)) vs)

let test_lane_bounds () =
  let p = Tytra_kernels.Sor.program ~im:4 ~jm:2 ~km:2 () in
  let b = Transform.lane_bounds p (Transform.ParPipe 4) in
  Alcotest.(check int) "4 lanes" 4 (Array.length b);
  Alcotest.(check bool) "cover in order" true
    (b = [| (0, 4); (4, 8); (8, 12); (12, 16) |])

let test_stencil_offsets () =
  let k = Tytra_kernels.Sor.program ~im:8 ~jm:6 ~km:6 () in
  let offs = Expr.stencil_offsets k.Expr.p_kernel in
  Alcotest.(check (list int)) "p offsets" [ -48; -8; -1; 1; 8; 48 ]
    (List.assoc "p" offs);
  Alcotest.(check (list int)) "rhs no offsets" [] (List.assoc "rhs" offs);
  Alcotest.(check int) "max offset" 48 (Expr.max_offset k.Expr.p_kernel)

let test_check_kernel () =
  let bad =
    {
      Expr.k_name = "bad";
      k_ty = Tytra_ir.Ty.UInt 8;
      k_inputs = [ "x" ];
      k_params = [];
      k_outputs = [ { Expr.o_name = "y"; o_expr = Expr.input "ghost" } ];
      k_reductions = [];
    }
  in
  (match Expr.check_kernel bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "undeclared input must fail");
  let empty = { bad with Expr.k_outputs = []; k_inputs = [ "x" ] } in
  match Expr.check_kernel empty with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "kernel with no outputs must fail"

(* ---- the central correctness property ---- *)

let prop_variant_equals_baseline =
  QCheck.Test.make ~name:"map^par (map^pipe f) . reshapeTo == map f" ~count:60
    Gen.arb_program_variant
    (fun (p, v) ->
      QCheck.assume (Transform.applicable p v);
      let env = Tytra_kernels.Workloads.random_env p in
      let b = Eval.run_baseline p env in
      let r = Eval.run_variant p v env in
      b.Eval.outputs = r.Eval.outputs && b.Eval.reductions = r.Eval.reductions)

let prop_lowered_designs_validate =
  QCheck.Test.make ~name:"lowered variants validate" ~count:40
    Gen.arb_program_variant
    (fun (p, v) ->
      QCheck.assume (Transform.applicable p v);
      let d = Lower.lower p v in
      Tytra_ir.Validate.is_valid d)

let prop_interp_matches_eval_pipe =
  QCheck.Test.make ~name:"IR interp == evaluator (single pipeline)" ~count:40
    Gen.arb_program
    (fun p ->
      let env = Tytra_kernels.Workloads.random_env p in
      let golden = Eval.run_baseline p env in
      let d = Lower.lower p Transform.Pipe in
      let r = Tytra_ir.Interp.run d env in
      let outs_per_lane = List.length p.Expr.p_kernel.Expr.k_outputs in
      List.for_all
        (fun (i, (o : Expr.output)) ->
          Tytra_ir.Interp.gathered_output d r ~outputs_per_lane:outs_per_lane
            ~nth:i
          = List.assoc o.Expr.o_name golden.Eval.outputs)
        (List.mapi (fun i o -> (i, o)) p.Expr.p_kernel.Expr.k_outputs)
      && List.for_all
           (fun (r' : Expr.reduction) ->
             List.assoc r'.Expr.r_name r.Tytra_ir.Interp.ir_globals
             = List.assoc r'.Expr.r_name golden.Eval.reductions)
           p.Expr.p_kernel.Expr.k_reductions)

(* multi-lane interp equality holds exactly for stencil-free kernels *)
let prop_interp_multilane_no_stencil =
  QCheck.Test.make ~name:"IR interp multi-lane == evaluator (no stencil)"
    ~count:30 Gen.arb_program
    (fun p ->
      let has_stencil = Expr.max_offset p.Expr.p_kernel > 0 in
      QCheck.assume (not has_stencil);
      QCheck.assume (Expr.points p mod 4 = 0);
      let env = Tytra_kernels.Workloads.random_env p in
      let golden = Eval.run_baseline p env in
      let d = Lower.lower p (Transform.ParPipe 4) in
      let chunk = Expr.points p / 4 in
      let env4 =
        List.concat_map
          (fun (s, a) ->
            List.init 4 (fun i ->
                (Printf.sprintf "%s%d" s i, Array.sub a (i * chunk) chunk)))
          env
      in
      let r = Tytra_ir.Interp.run d env4 in
      let outs_per_lane = List.length p.Expr.p_kernel.Expr.k_outputs in
      List.for_all
        (fun (i, (o : Expr.output)) ->
          Tytra_ir.Interp.gathered_output d r ~outputs_per_lane:outs_per_lane
            ~nth:i
          = List.assoc o.Expr.o_name golden.Eval.outputs)
        (List.mapi (fun i o -> (i, o)) p.Expr.p_kernel.Expr.k_outputs))

let prop_reshape_type_size_preserved =
  QCheck.Test.make ~name:"reshape preserves total size" ~count:100
    QCheck.(pair (int_range 1 64) (int_range 1 16))
    (fun (n, l) ->
      let t = Vtype.Vect (n, Vtype.Scalar (Tytra_ir.Ty.UInt 18)) in
      match Vtype.reshape_to l t with
      | Ok t' -> Vtype.size t' = n
      | Error _ -> n mod l <> 0 || l <= 0)

let test_cse_shares_subterms () =
  (* reltmp feeds both the output and the reduction: NI must count the
     shared datapath once *)
  let p = Tytra_kernels.Sor.program ~im:8 ~jm:6 ~km:6 () in
  let d = Lower.lower p Transform.Pipe in
  let q = Tytra_ir.Analysis.params d in
  Alcotest.(check bool) "NI < 25 (shared reltmp)" true (q.Tytra_ir.Analysis.ni < 25)

let suite =
  [
    Alcotest.test_case "reshape_to" `Quick test_vtype_reshape;
    Alcotest.test_case "size preservation" `Quick test_vtype_size_preservation;
    Alcotest.test_case "divisors" `Quick test_divisors;
    Alcotest.test_case "variant enumeration" `Quick test_enumerate;
    Alcotest.test_case "vectorized enumeration" `Quick test_enumerate_vec;
    Alcotest.test_case "lane bounds" `Quick test_lane_bounds;
    Alcotest.test_case "stencil offsets" `Quick test_stencil_offsets;
    Alcotest.test_case "kernel checking" `Quick test_check_kernel;
    Alcotest.test_case "CSE shares subterms" `Quick test_cse_shares_subterms;
    QCheck_alcotest.to_alcotest prop_variant_equals_baseline;
    QCheck_alcotest.to_alcotest prop_lowered_designs_validate;
    QCheck_alcotest.to_alcotest prop_interp_matches_eval_pipe;
    QCheck_alcotest.to_alcotest prop_interp_multilane_no_stencil;
    QCheck_alcotest.to_alcotest prop_reshape_type_size_preserved;
  ]
