(* Optimizer tests: each rewrite, plus the central property — optimized
   designs are interpreter-equivalent to the original. *)

open Tytra_ir

let parse_valid src = Validate.check_exn (Parser.parse src)

let body_of d name = (Ast.find_func_exn d name).Ast.fn_body

let count_op d fname op =
  List.length
    (List.filter
       (function Ast.Assign { op = o; _ } -> o = op | _ -> false)
       (body_of d fname))

let test_constant_folding () =
  let d =
    parse_valid
      {|
define void @f (ui16 %x) pipe {
  %a = add ui16 3, 4
  %b = mul ui16 %a, %x
  %out_y = mov ui16 %b
}
define void @main (ui16 %x) seq { call @f (%x) pipe }
|}
  in
  let d', st = Optim.run d in
  Alcotest.(check bool) "folded" true (st.Optim.folded >= 1);
  Alcotest.(check int) "no adds left" 0 (count_op d' "f" Ast.Add);
  (* the folded constant feeds the multiply *)
  let has_mul_by_7 =
    List.exists
      (function
        | Ast.Assign { op = Ast.Mul; args; _ } -> List.mem (Ast.Imm 7L) args
        | _ -> false)
      (body_of d' "f")
  in
  Alcotest.(check bool) "constant propagated" true has_mul_by_7

let test_strength_reduction_mul () =
  let d =
    parse_valid
      {|
define void @f (ui16 %x) pipe {
  %a = mul ui16 %x, 8
  %out_y = mov ui16 %a
}
define void @main (ui16 %x) seq { call @f (%x) pipe }
|}
  in
  let d', st = Optim.run d in
  Alcotest.(check bool) "reduced" true (st.Optim.reduced >= 1);
  Alcotest.(check int) "mul gone" 0 (count_op d' "f" Ast.Mul);
  Alcotest.(check int) "shl appears" 1 (count_op d' "f" Ast.Shl)

let test_strength_reduction_div_rem () =
  let d =
    parse_valid
      {|
define void @f (ui16 %x) pipe {
  %q = div ui16 %x, 16
  %r = rem ui16 %x, 16
  %s = add ui16 %q, %r
  %out_y = mov ui16 %s
}
define void @main (ui16 %x) seq { call @f (%x) pipe }
|}
  in
  let d', _ = Optim.run d in
  Alcotest.(check int) "div gone" 0 (count_op d' "f" Ast.Div);
  Alcotest.(check int) "rem gone" 0 (count_op d' "f" Ast.Rem);
  Alcotest.(check int) "shr appears" 1 (count_op d' "f" Ast.Shr);
  Alcotest.(check int) "and appears" 1 (count_op d' "f" Ast.And)

let test_signed_div_not_reduced () =
  (* arithmetic shift rounds toward -inf; signed division must survive *)
  let d =
    parse_valid
      {|
define void @f (si16 %x) pipe {
  %q = div si16 %x, 4
  %out_y = mov si16 %q
}
define void @main (si16 %x) seq { call @f (%x) pipe }
|}
  in
  let d', _ = Optim.run d in
  Alcotest.(check int) "signed div kept" 1 (count_op d' "f" Ast.Div)

let test_identities () =
  let d =
    parse_valid
      {|
define void @f (ui16 %x) pipe {
  %a = add ui16 %x, 0
  %b = mul ui16 %a, 1
  %c = xor ui16 %b, %b
  %s = add ui16 %b, %c
  %out_y = mov ui16 %s
}
define void @main (ui16 %x) seq { call @f (%x) pipe }
|}
  in
  let d', _ = Optim.run d in
  (* everything simplifies to out_y = mov x *)
  let ni = Analysis.ni_of_func d' (Ast.find_func_exn d' "f") in
  Alcotest.(check int) "datapath collapses" 0 ni

let test_cse () =
  let d =
    parse_valid
      {|
define void @f (ui16 %x, ui16 %y) pipe {
  %a = mul ui16 %x, %y
  %b = mul ui16 %x, %y
  %s = add ui16 %a, %b
  %out_y = mov ui16 %s
}
define void @main (ui16 %x, ui16 %y) seq { call @f (%x, %y) pipe }
|}
  in
  let d', st = Optim.run d in
  Alcotest.(check bool) "cse hit" true (st.Optim.cse >= 1);
  Alcotest.(check int) "one mul left" 1 (count_op d' "f" Ast.Mul)

let test_dce () =
  let d =
    parse_valid
      {|
define void @f (ui16 %x) pipe {
  %dead = mul ui16 %x, %x
  %deadoff = offset ui16 %x, +3
  %a = add ui16 %x, 1
  %out_y = mov ui16 %a
}
define void @main (ui16 %x) seq { call @f (%x) pipe }
|}
  in
  let d', st = Optim.run d in
  Alcotest.(check bool) "dce removed" true (st.Optim.dce >= 2);
  Alcotest.(check int) "mul gone" 0 (count_op d' "f" Ast.Mul);
  (* the unused offset also disappears, shrinking Noff *)
  Alcotest.(check int) "noff 0" 0
    (Analysis.noff_of_func d' (Ast.find_func_exn d' "f"))

let test_reductions_survive () =
  let d =
    parse_valid
      {|
@acc = global ui16 init 0
define void @f (ui16 %x) pipe {
  %a = mul ui16 %x, %x
  @acc = add ui16 %a, @acc
}
define void @main (ui16 %x) seq { call @f (%x) pipe }
|}
  in
  let d', _ = Optim.run d in
  Alcotest.(check int) "mul kept for the reduction" 1 (count_op d' "f" Ast.Mul);
  Alcotest.(check bool) "reduction kept" true
    (List.exists
       (function Ast.Assign { dst = Ast.Dglobal _; _ } -> true | _ -> false)
       (body_of d' "f"))

let test_optimized_validates () =
  let p = Tytra_kernels.Sor.table2_program () in
  let d = Tytra_front.Lower.lower p Tytra_front.Transform.Pipe in
  let d', _ = Optim.run d in
  Alcotest.(check (list Alcotest.string)) "valid after optimization" []
    (List.map Validate.error_to_string (Validate.check d'))

let test_cost_improves () =
  (* a kernel with pow2 multiplies: optimization must cut DSPs *)
  let open Tytra_front.Expr in
  let k =
    {
      k_name = "pow2";
      k_ty = Ty.UInt 18;
      k_inputs = [ "x" ];
      k_params = [];
      k_outputs =
        [ { o_name = "y"; o_expr = (input "x" *: ci 4) +: (input "x" *: ci 16) } ];
      k_reductions = [];
    }
  in
  let p = { p_kernel = k; p_shape = [ 64 ] } in
  let d = Tytra_front.Lower.lower p Tytra_front.Transform.Pipe in
  let d', _ = Optim.run d in
  let dsps dd =
    (Tytra_cost.Resource_model.estimate dd)
      .Tytra_cost.Resource_model.est_usage.Tytra_device.Resources.dsps
  in
  Alcotest.(check int) "2 DSPs before" 2 (dsps d);
  Alcotest.(check int) "0 DSPs after" 0 (dsps d')

(* the central property: semantics preservation on random kernels *)
let prop_semantics_preserved =
  QCheck.Test.make ~name:"optimizer preserves interpreter semantics" ~count:60
    Gen.arb_program
    (fun p ->
      let env = Tytra_kernels.Workloads.random_env p in
      let d = Tytra_front.Lower.lower p Tytra_front.Transform.Pipe in
      let d', _ = Optim.run d in
      Validate.is_valid d'
      &&
      let r = Interp.run d env and r' = Interp.run d' env in
      List.map snd r.Interp.ir_outputs = List.map snd r'.Interp.ir_outputs
      && r.Interp.ir_globals = r'.Interp.ir_globals)

let prop_idempotent =
  QCheck.Test.make ~name:"optimizer is idempotent" ~count:30 Gen.arb_program
    (fun p ->
      let d = Tytra_front.Lower.lower p Tytra_front.Transform.Pipe in
      let d1, _ = Optim.run d in
      let d2, st = Optim.run d1 in
      Ast.equal_design d1 d2
      && st.Optim.folded = 0 && st.Optim.dce = 0 && st.Optim.cse = 0)

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "strength reduction: mul" `Quick
      test_strength_reduction_mul;
    Alcotest.test_case "strength reduction: div/rem" `Quick
      test_strength_reduction_div_rem;
    Alcotest.test_case "signed div kept" `Quick test_signed_div_not_reduced;
    Alcotest.test_case "algebraic identities" `Quick test_identities;
    Alcotest.test_case "cse" `Quick test_cse;
    Alcotest.test_case "dce" `Quick test_dce;
    Alcotest.test_case "reductions survive" `Quick test_reductions_survive;
    Alcotest.test_case "optimized design validates" `Quick
      test_optimized_validates;
    Alcotest.test_case "cost improves on pow2 kernels" `Quick
      test_cost_improves;
    QCheck_alcotest.to_alcotest prop_semantics_preserved;
    QCheck_alcotest.to_alcotest prop_idempotent;
  ]
