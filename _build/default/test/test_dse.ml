(* DSE tests: exploration coverage, selection, Pareto front, guided
   search. *)

open Tytra_dse
open Tytra_front

let prog () = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 ()

let test_explore_covers_variants () =
  let pts = Dse.explore ~max_lanes:8 (prog ()) in
  let names =
    List.map (fun p -> Transform.to_string p.Dse.dp_variant) pts
  in
  List.iter
    (fun v ->
      Alcotest.(check bool) (v ^ " explored") true (List.mem v names))
    [ "seq"; "pipe"; "par2-pipe"; "par4-pipe"; "par8-pipe" ]

let test_best_is_valid_max () =
  let pts = Dse.explore ~max_lanes:8 ~nki:100 (prog ()) in
  match Dse.best pts with
  | None -> Alcotest.fail "expected a valid point"
  | Some b ->
      Alcotest.(check bool) "valid" true (Dse.valid b);
      List.iter
        (fun p ->
          if Dse.valid p then
            Alcotest.(check bool) "no better valid point" true
              (Dse.ekit p <= Dse.ekit b +. 1e-9))
        pts

let test_pipe_beats_seq () =
  let pts = Dse.explore ~max_lanes:4 (prog ()) in
  let find v = List.find (fun p -> p.Dse.dp_variant = v) pts in
  Alcotest.(check bool) "pipeline >> sequential" true
    (Dse.ekit (find Transform.Pipe) > 3.0 *. Dse.ekit (find Transform.Seq))

let test_pareto_front_property () =
  let pts = Dse.explore ~max_lanes:16 ~nki:100 (prog ()) in
  let front = Dse.pareto pts in
  Alcotest.(check bool) "front non-empty" true (front <> []);
  let area p =
    p.Dse.dp_report.Tytra_cost.Report.rp_estimate
      .Tytra_cost.Resource_model.est_usage
      .Tytra_device.Resources.aluts
  in
  (* no point of the front is dominated by any valid point *)
  List.iter
    (fun f ->
      List.iter
        (fun q ->
          if Dse.valid q && q != f then
            Alcotest.(check bool) "not dominated" false
              (Dse.ekit q > Dse.ekit f && area q < area f))
        pts)
    front

let test_guided_trace () =
  let trace = Dse.guided ~nki:100 ~max_lanes:16 (prog ()) in
  Alcotest.(check bool) "trace starts at pipe" true
    ((List.hd trace).Dse.dp_variant = Transform.Pipe);
  (* lanes double along the trace *)
  let lanes =
    List.map (fun p -> Transform.lanes p.Dse.dp_variant) trace
  in
  let rec doubling = function
    | a :: (b :: _ as tl) -> b = 2 * a && doubling tl
    | _ -> true
  in
  Alcotest.(check bool) "doubling lanes" true (doubling lanes);
  (* the trace stops for a reason: wall hit, lanes exhausted, or oversize *)
  let last = List.nth trace (List.length trace - 1) in
  let stopped_reasonably =
    Transform.lanes last.Dse.dp_variant >= 16
    || last.Dse.dp_report.Tytra_cost.Report.rp_breakdown
         .Tytra_cost.Throughput.bd_limiter
       <> Tytra_cost.Throughput.Compute
    || not (Dse.valid last)
  in
  Alcotest.(check bool) "stop condition" true stopped_reasonably

let test_explore_respects_divisibility () =
  (* 10 points: lanes 3 not applicable, enumerate must skip it *)
  let p =
    { Tytra_front.Expr.p_kernel = (Tytra_kernels.Sor.program ~im:10 ~jm:1 ~km:1 ()).Tytra_front.Expr.p_kernel;
      p_shape = [ 10 ] }
  in
  let pts = Dse.explore ~max_lanes:8 p in
  List.iter
    (fun pt ->
      Alcotest.(check bool) "applicable" true
        (Transform.applicable p pt.Dse.dp_variant))
    pts

let suite =
  [
    Alcotest.test_case "explore covers variants" `Quick
      test_explore_covers_variants;
    Alcotest.test_case "best is valid max" `Quick test_best_is_valid_max;
    Alcotest.test_case "pipe beats seq" `Quick test_pipe_beats_seq;
    Alcotest.test_case "pareto front" `Quick test_pareto_front_property;
    Alcotest.test_case "guided trace" `Quick test_guided_trace;
    Alcotest.test_case "divisibility respected" `Quick
      test_explore_respects_divisibility;
  ]

let test_explore_devices () =
  let p = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 () in
  let per_device, best = Dse.explore_devices ~nki:100 ~max_lanes:4 p in
  Alcotest.(check int) "all devices explored"
    (List.length Tytra_device.Device.all)
    (List.length per_device);
  List.iter
    (fun (_, pts) ->
      Alcotest.(check bool) "non-empty space" true (pts <> []))
    per_device;
  match best with
  | None -> Alcotest.fail "expected an overall best"
  | Some (dev, pt) ->
      (* the winner is at least as good as every per-device best *)
      List.iter
        (fun (_, pts) ->
          match Dse.best pts with
          | Some b ->
              Alcotest.(check bool) "global max" true
                (Dse.ekit pt >= Dse.ekit b)
          | None -> ())
        per_device;
      Alcotest.(check bool) "winner from the registry" true
        (List.memq dev Tytra_device.Device.all)

let suite =
  suite
  @ [ Alcotest.test_case "cross-device exploration" `Quick
        test_explore_devices ]
