(* QCheck generators for random kernels/programs, used by the
   correctness-property tests (variant == baseline, interp == eval,
   roundtrips). Generated kernels use only total integer operations so
   every level of the stack has exact semantics. *)

open Tytra_front
open Expr

let safe_binops =
  [| Tytra_ir.Ast.Add; Sub; Mul; Min; Max; And; Or; Xor |]

let cmp_ops =
  [| Tytra_ir.Ast.CmpLt; CmpLe; CmpEq; CmpNe; CmpGt; CmpGe |]

(* random expression over given inputs/params, bounded depth *)
let rec gen_expr inputs params depth st =
  let open QCheck.Gen in
  if depth = 0 then
    (oneof
       [
         map (fun i -> Input (List.nth inputs (i mod List.length inputs))) nat;
         map
           (fun i ->
             Stencil
               ( List.nth inputs (i mod List.length inputs),
                 (i mod 7) - 3 ))
           nat;
         (if params = [] then
            map (fun i -> ConstI (Int64.of_int (i mod 16))) nat
          else
            map (fun i -> Param (List.nth params (i mod List.length params)))
              nat);
         map (fun i -> ConstI (Int64.of_int (i mod 16))) nat;
       ])
      st
  else
    (frequency
       [
         (3,
          map3
            (fun o a b -> Bin (safe_binops.(o mod Array.length safe_binops), a, b))
            nat
            (gen_expr inputs params (depth - 1))
            (gen_expr inputs params (depth - 1)));
         (1,
          map3
            (fun o a b ->
              Select
                ( Bin (cmp_ops.(o mod Array.length cmp_ops), a, b),
                  a,
                  b ))
            nat
            (gen_expr inputs params (depth - 1))
            (gen_expr inputs params (depth - 1)));
         (1, gen_expr inputs params 0);
       ])
      st

let gen_kernel st =
  let open QCheck.Gen in
  let n_inputs = int_range 1 3 st in
  let inputs = List.init n_inputs (fun i -> Printf.sprintf "in%d" i) in
  let n_params = int_range 0 2 st in
  let params = List.init n_params (fun i -> Printf.sprintf "c%d" i) in
  let depth = int_range 1 4 st in
  let n_outputs = int_range 1 2 st in
  let outputs =
    List.init n_outputs (fun i ->
        { o_name = Printf.sprintf "y%d" i;
          o_expr = gen_expr inputs params depth st })
  in
  let with_reduction = bool st in
  {
    k_name = "rand";
    k_ty = Tytra_ir.Ty.UInt (int_range 8 24 st);
    k_inputs = inputs;
    k_params = List.map (fun p -> (p, Int64.of_int (int_range 0 15 st))) params;
    k_outputs = outputs;
    k_reductions =
      (if with_reduction then
         [ { r_name = "acc"; r_op = Tytra_ir.Ast.Add;
             r_expr = gen_expr inputs params (min depth 2) st; r_init = 0L } ]
       else []);
  }

let gen_program st =
  let open QCheck.Gen in
  let k = gen_kernel st in
  let n = 8 * int_range 1 8 st in
  { p_kernel = k; p_shape = [ n ] }

let arb_program =
  QCheck.make ~print:(fun p ->
      Printf.sprintf "<program %s, %d points, %d ops>" p.p_kernel.k_name
        (points p) (op_count p.p_kernel))
    gen_program

(* a variant applicable to the program, biased to multi-lane *)
let gen_applicable_variant p st =
  let open QCheck.Gen in
  let n = points p in
  let divs = List.filter (fun d -> d > 1 && d <= 8) (Vtype.divisors n) in
  match divs with
  | [] -> Transform.Pipe
  | _ ->
      let l = List.nth divs (int_range 0 (List.length divs - 1) st) in
      let choice = int_range 0 3 st in
      if choice = 0 then Transform.Pipe
      else if choice = 1 then Transform.Seq
      else if choice = 2 then Transform.ParPipe l
      else begin
        let rest = n / l in
        let vdivs = List.filter (fun d -> d > 1 && d <= 4) (Vtype.divisors rest) in
        match vdivs with
        | [] -> Transform.ParPipe l
        | v :: _ -> Transform.ParVecPipe (l, v)
      end

let arb_program_variant =
  QCheck.make
    ~print:(fun (p, v) ->
      Printf.sprintf "<%d points, %s>" (points p) (Transform.to_string v))
    QCheck.Gen.(
      gen_program >>= fun p ->
      map (fun v -> (p, v)) (gen_applicable_variant p))

(* random 2-stage chains: stage 0 is forced single-output, reduction-free;
   stage 1 is any random kernel whose first input is the chained stream *)
let gen_chain st =
  let open QCheck.Gen in
  let k0 = gen_kernel st in
  let k0 =
    { k0 with
      k_name = "stage0";
      k_inputs = List.map (fun s -> "a" ^ s) k0.k_inputs;
      k_outputs = [ { (List.hd k0.k_outputs) with o_name = "mid" } ];
      k_reductions = [];
    }
  in
  (* rename stage-0 body streams to match the prefixed inputs *)
  let rec ren e =
    match e with
    | Input s -> Input ("a" ^ s)
    | Stencil (s, o) -> Stencil ("a" ^ s, o)
    | Bin (op, a, b) -> Bin (op, ren a, ren b)
    | Un (op, a) -> Un (op, ren a)
    | Select (c, a, b) -> Select (ren c, ren a, ren b)
    | e -> e
  in
  let k0 =
    { k0 with k_outputs =
        List.map (fun o -> { o with o_expr = ren o.o_expr }) k0.k_outputs }
  in
  let k1 = gen_kernel st in
  let k1 =
    { k1 with
      k_name = "stage1";
      k_ty = k0.k_ty;
      k_inputs = List.map (fun s -> "b" ^ s) k1.k_inputs;
      k_outputs =
        List.mapi (fun i o -> { o with o_name = Printf.sprintf "z%d" i })
          k1.k_outputs;
    }
  in
  let rec ren1 e =
    match e with
    | Input s -> Input ("b" ^ s)
    | Stencil (s, o) -> Stencil ("b" ^ s, o)
    | Bin (op, a, b) -> Bin (op, ren1 a, ren1 b)
    | Un (op, a) -> Un (op, ren1 a)
    | Select (c, a, b) -> Select (ren1 c, ren1 a, ren1 b)
    | e -> e
  in
  let k1 =
    { k1 with
      k_outputs = List.map (fun o -> { o with o_expr = ren1 o.o_expr }) k1.k_outputs;
      k_reductions =
        List.map (fun r -> { r with r_expr = ren1 r.r_expr }) k1.k_reductions;
    }
  in
  let n = 8 * int_range 1 6 st in
  Chain.make_exn ~name:"randchain" ~shape:[ n ] [ k0; k1 ]

let arb_chain =
  QCheck.make
    ~print:(fun c -> Printf.sprintf "<chain %d points>" (Chain.points c))
    gen_chain
