(* Form-selection and roofline tests. *)

open Tytra_front
open Tytra_cost

let lower_sor side v =
  Lower.lower (Tytra_kernels.Sor.program ~im:side ~jm:side ~km:side ()) v

let test_small_data_prefers_form_c () =
  (* 16^3 x 3 streams x 3 B ≈ 37 KB: fits on-chip easily *)
  let d = lower_sor 16 Transform.Pipe in
  let r = Formsel.recommend ~nki:1000 d in
  Alcotest.(check bool) "form C recommended" true
    (r.Formsel.fr_best.Formsel.fo_form = Throughput.FormC);
  Alcotest.(check int) "untiled" 1 r.Formsel.fr_best.Formsel.fo_tiles;
  Alcotest.(check int) "three options" 3 (List.length r.Formsel.fr_options)

let test_medium_data_tiles () =
  (* 128^3 x 3 x 3 B ≈ 19 MB: too big for BRAM, fits DRAM, NKI large ->
     tiled form C must appear as an option *)
  let d = lower_sor 128 Transform.Pipe in
  let r = Formsel.recommend ~nki:1000 d in
  let tiled =
    List.find_opt (fun o -> o.Formsel.fo_tiles > 1) r.Formsel.fr_options
  in
  (match tiled with
  | Some t ->
      Alcotest.(check bool) "tile count covers footprint" true
        (float_of_int r.Formsel.fr_footprint_bytes
         /. float_of_int t.Formsel.fo_tiles
         <= r.Formsel.fr_onchip_bytes)
  | None -> Alcotest.fail "expected a tiled form-C option");
  (* and form B is present *)
  Alcotest.(check bool) "form B present" true
    (List.exists
       (fun o -> o.Formsel.fo_form = Throughput.FormB && o.Formsel.fo_tiles = 1)
       r.Formsel.fr_options)

let test_no_tiling_without_reuse () =
  (* with NKI = 1 there is no reuse to amortize tile loads: no tiled option *)
  let d = lower_sor 128 Transform.Pipe in
  let r = Formsel.recommend ~nki:1 d in
  Alcotest.(check bool) "no tiled option at nki=1" true
    (List.for_all (fun o -> o.Formsel.fo_tiles = 1) r.Formsel.fr_options)

let test_ordering_invariant () =
  let d = lower_sor 64 Transform.Pipe in
  let r = Formsel.recommend ~nki:100 d in
  let rec sorted = function
    | a :: (b :: _ as tl) ->
        a.Formsel.fo_ekit >= b.Formsel.fo_ekit && sorted tl
    | _ -> true
  in
  Alcotest.(check bool) "options sorted best-first" true
    (sorted r.Formsel.fr_options);
  Alcotest.(check bool) "best is head" true
    (r.Formsel.fr_best == List.hd r.Formsel.fr_options)

let test_form_b_beats_a_with_reuse () =
  let d = lower_sor 64 Transform.Pipe in
  let r = Formsel.recommend ~nki:1000 d in
  let find f =
    List.find (fun o -> o.Formsel.fo_form = f && o.Formsel.fo_tiles = 1)
      r.Formsel.fr_options
  in
  Alcotest.(check bool) "B >= A" true
    ((find Throughput.FormB).Formsel.fo_ekit
     >= (find Throughput.FormA).Formsel.fo_ekit)

(* ---- roofline ---- *)

let test_roofline_basics () =
  let d = lower_sor 32 Transform.Pipe in
  let r = Roofline.of_design ~nki:100 d in
  Alcotest.(check bool) "intensity positive" true (r.Roofline.rf_intensity > 0.0);
  Alcotest.(check bool) "attainable <= compute ceiling" true
    (r.Roofline.rf_attainable <= r.Roofline.rf_compute_ceiling +. 1e-6);
  Alcotest.(check bool) "attainable <= gmem roof" true
    (r.Roofline.rf_attainable <= r.Roofline.rf_gmem_roof +. 1e-6)

let test_roofline_lanes_move_compute_ceiling () =
  let r1 = Roofline.of_design ~nki:100 (lower_sor 32 Transform.Pipe) in
  let r4 = Roofline.of_design ~nki:100 (lower_sor 32 (Transform.ParPipe 4)) in
  Alcotest.(check bool) "4 lanes ~4x compute ceiling" true
    (r4.Roofline.rf_compute_ceiling /. r1.Roofline.rf_compute_ceiling > 3.9);
  Alcotest.(check (float 1e-9)) "intensity invariant"
    r1.Roofline.rf_intensity r4.Roofline.rf_intensity

let test_roofline_crossover () =
  (* enough lanes push the variant from compute-bound to bandwidth-bound *)
  let prog = Tytra_kernels.Sor.program ~im:32 ~jm:32 ~km:32 () in
  let bound l =
    (Roofline.of_design ~nki:100
       (Lower.lower prog (if l = 1 then Transform.Pipe else Transform.ParPipe l)))
      .Roofline.rf_bound
  in
  Alcotest.(check bool) "1 lane compute-bound" true (bound 1 = `Compute);
  Alcotest.(check bool) "16 lanes bandwidth-bound" true (bound 16 <> `Compute)

let test_roofline_form_c_ignores_bandwidth () =
  let d = lower_sor 16 (Transform.ParPipe 16) in
  let r = Roofline.of_design ~form:Throughput.FormC ~nki:100 d in
  Alcotest.(check bool) "form C compute-bound" true (r.Roofline.rf_bound = `Compute);
  Alcotest.(check (float 1e-6)) "attainable = compute ceiling"
    r.Roofline.rf_compute_ceiling r.Roofline.rf_attainable

let suite =
  [
    Alcotest.test_case "small data -> form C" `Quick
      test_small_data_prefers_form_c;
    Alcotest.test_case "medium data tiles" `Quick test_medium_data_tiles;
    Alcotest.test_case "no tiling without reuse" `Quick
      test_no_tiling_without_reuse;
    Alcotest.test_case "options sorted" `Quick test_ordering_invariant;
    Alcotest.test_case "B beats A with reuse" `Quick
      test_form_b_beats_a_with_reuse;
    Alcotest.test_case "roofline basics" `Quick test_roofline_basics;
    Alcotest.test_case "roofline lanes" `Quick
      test_roofline_lanes_move_compute_ceiling;
    Alcotest.test_case "roofline crossover" `Quick test_roofline_crossover;
    Alcotest.test_case "roofline form C" `Quick
      test_roofline_form_c_ignores_bandwidth;
  ]
