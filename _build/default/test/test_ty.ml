(* Unit and property tests for Tytra_ir.Ty: widths, parsing, masking. *)

open Tytra_ir

let check = Alcotest.check
let ty = Alcotest.testable Ty.pp Ty.equal

let test_width () =
  check Alcotest.int "ui18 width" 18 (Ty.width (Ty.UInt 18));
  check Alcotest.int "si32 width" 32 (Ty.width (Ty.SInt 32));
  check Alcotest.int "fp64 width" 64 (Ty.width (Ty.Float 64));
  check Alcotest.int "bool width" 1 (Ty.width Ty.Bool)

let test_to_of_string () =
  List.iter
    (fun t ->
      check ty
        ("roundtrip " ^ Ty.to_string t)
        t
        (Ty.of_string_exn (Ty.to_string t)))
    [ Ty.UInt 18; Ty.UInt 1; Ty.SInt 24; Ty.Float 32; Ty.Float 64; Ty.Bool ]

let test_of_string_errors () =
  List.iter
    (fun s ->
      match Ty.of_string s with
      | Ok t -> Alcotest.failf "%S parsed to %s" s (Ty.to_string t)
      | Error _ -> ())
    [ "ui"; "ui0"; "ui129"; "fp16"; "fp65"; "int32"; ""; "uixx"; "si" ]

let test_classify () =
  Alcotest.(check bool) "ui integer" true (Ty.is_integer (Ty.UInt 18));
  Alcotest.(check bool) "fp not integer" false (Ty.is_integer (Ty.Float 32));
  Alcotest.(check bool) "si signed" true (Ty.is_signed (Ty.SInt 8));
  Alcotest.(check bool) "ui not signed" false (Ty.is_signed (Ty.UInt 8));
  Alcotest.(check bool) "fp float" true (Ty.is_float (Ty.Float 64))

let test_mask_ui () =
  check Alcotest.int64 "ui8 wraps 256" 0L (Ty.mask (Ty.UInt 8) 256L);
  check Alcotest.int64 "ui8 wraps 257" 1L (Ty.mask (Ty.UInt 8) 257L);
  check Alcotest.int64 "ui8 keeps 255" 255L (Ty.mask (Ty.UInt 8) 255L);
  check Alcotest.int64 "ui18 max" 262143L (Ty.mask (Ty.UInt 18) 262143L);
  check Alcotest.int64 "ui18 wrap" 0L (Ty.mask (Ty.UInt 18) 262144L)

let test_mask_si () =
  check Alcotest.int64 "si8 128 -> -128" (-128L) (Ty.mask (Ty.SInt 8) 128L);
  check Alcotest.int64 "si8 -129 -> 127" 127L (Ty.mask (Ty.SInt 8) (-129L));
  check Alcotest.int64 "si8 keeps -1" (-1L) (Ty.mask (Ty.SInt 8) (-1L));
  check Alcotest.int64 "bool mask" 1L (Ty.mask Ty.Bool 42L)

let test_int_range () =
  (match Ty.int_range (Ty.UInt 8) with
  | Some (lo, hi) ->
      check Alcotest.int64 "ui8 lo" 0L lo;
      check Alcotest.int64 "ui8 hi" 255L hi
  | None -> Alcotest.fail "ui8 has a range");
  (match Ty.int_range (Ty.SInt 8) with
  | Some (lo, hi) ->
      check Alcotest.int64 "si8 lo" (-128L) lo;
      check Alcotest.int64 "si8 hi" 127L hi
  | None -> Alcotest.fail "si8 has a range");
  check Alcotest.bool "float no range" true (Ty.int_range (Ty.Float 32) = None)

(* property: mask is idempotent and lands in range *)
let prop_mask_idempotent =
  QCheck.Test.make ~name:"mask idempotent and in range" ~count:500
    QCheck.(pair (int_range 1 62) int64)
    (fun (w, v) ->
      let t = Ty.UInt w in
      let m = Ty.mask t v in
      Ty.mask t m = m
      &&
      match Ty.int_range t with
      | Some (lo, hi) -> Int64.compare m lo >= 0 && Int64.compare m hi <= 0
      | None -> false)

let prop_mask_signed =
  QCheck.Test.make ~name:"signed mask in range" ~count:500
    QCheck.(pair (int_range 2 62) int64)
    (fun (w, v) ->
      let t = Ty.SInt w in
      let m = Ty.mask t v in
      match Ty.int_range t with
      | Some (lo, hi) -> Int64.compare m lo >= 0 && Int64.compare m hi <= 0
      | None -> false)

let suite =
  [
    Alcotest.test_case "width" `Quick test_width;
    Alcotest.test_case "to/of_string roundtrip" `Quick test_to_of_string;
    Alcotest.test_case "of_string errors" `Quick test_of_string_errors;
    Alcotest.test_case "classification" `Quick test_classify;
    Alcotest.test_case "mask unsigned" `Quick test_mask_ui;
    Alcotest.test_case "mask signed" `Quick test_mask_si;
    Alcotest.test_case "int_range" `Quick test_int_range;
    QCheck_alcotest.to_alcotest prop_mask_idempotent;
    QCheck_alcotest.to_alcotest prop_mask_signed;
  ]
