(* Legacy Fortran front-end tests: parsing, elaboration, semantics
   equivalence with the hand-written kernels, and rejection of the
   unsupported. *)

open Tytra_front

let sizes = [ ("im", 8); ("jm", 6); ("km", 6) ]

let sor_src =
  {|
parameter omega = 1
parameter cn1 = 1
parameter cn2l = 1
parameter cn2s = 1
parameter cn3l = 1
parameter cn3s = 1
parameter cn4l = 1
parameter cn4s = 1
do k = 1, km
  do j = 1, jm
    do i = 1, im
      reltmp = omega * (cn1 * ( cn2l * p(i+1,j,k) + cn2s * p(i-1,j,k)  &
             + cn3l * p(i,j+1,k) + cn3s * p(i,j-1,k)                   &
             + cn4l * p(i,j,k+1) + cn4s * p(i,j,k-1) ) - rhs(i,j,k)) - p(i,j,k)
      p_new(i,j,k) = p(i,j,k) + reltmp
      sorerracc = sorerracc + reltmp * reltmp
    end do
  end do
end do
|}

let test_parse_sor () =
  let p = Fortran.parse ~sizes sor_src in
  Alcotest.(check int) "points" (8 * 6 * 6) (Expr.points p);
  Alcotest.(check (list string)) "inputs" [ "p"; "rhs" ]
    p.Expr.p_kernel.Expr.k_inputs;
  Alcotest.(check int) "8 params" 8
    (List.length p.Expr.p_kernel.Expr.k_params);
  Alcotest.(check int) "1 output" 1
    (List.length p.Expr.p_kernel.Expr.k_outputs);
  Alcotest.(check int) "1 reduction" 1
    (List.length p.Expr.p_kernel.Expr.k_reductions);
  (* stencil offsets linearize with i fastest: ±1, ±im, ±im*jm *)
  let offs = List.assoc "p" (Expr.stencil_offsets p.Expr.p_kernel) in
  Alcotest.(check (list int)) "offsets" [ -48; -8; -1; 1; 8; 48 ] offs

let test_semantics_match_hand_written () =
  let p = Fortran.parse ~sizes sor_src in
  let hand = Tytra_kernels.Sor.program ~im:8 ~jm:6 ~km:6 () in
  let env = Tytra_kernels.Workloads.random_env hand in
  let a = Eval.run_baseline hand env in
  let b = Eval.run_baseline p env in
  Alcotest.(check bool) "outputs equal" true
    (List.assoc "p" a.Eval.outputs = List.assoc "p_new" b.Eval.outputs);
  Alcotest.(check int64) "reductions equal"
    (List.assoc "sorErrAcc" a.Eval.reductions)
    (List.assoc "sorerracc" b.Eval.reductions)

let test_imported_lowers_and_validates () =
  let p = Fortran.parse ~sizes sor_src in
  List.iter
    (fun v ->
      let d = Lower.lower p v in
      Alcotest.(check bool)
        (Transform.to_string v ^ " validates")
        true
        (Tytra_ir.Validate.is_valid d))
    [ Transform.Pipe; Transform.ParPipe 4; Transform.Seq ]

let test_1d_and_2d_nests () =
  let p1 =
    Fortran.parse ~sizes:[ ("n", 32) ]
      {|
do i = 1, n
  y(i) = x(i+1) + x(i-1)
end do
|}
  in
  Alcotest.(check int) "1d points" 32 (Expr.points p1);
  Alcotest.(check (list int)) "1d offsets" [ -1; 1 ]
    (List.assoc "x" (Expr.stencil_offsets p1.Expr.p_kernel));
  let p2 =
    Fortran.parse ~sizes:[ ("rows", 4); ("cols", 8) ]
      {|
do r = 1, rows
  do c = 1, cols
    y(c,r) = x(c,r+1) + x(c+1,r)
  end do
end do
|}
  in
  Alcotest.(check int) "2d points" 32 (Expr.points p2);
  (* r stride = cols = 8 *)
  Alcotest.(check (list int)) "2d offsets" [ 1; 8 ]
    (List.assoc "x" (Expr.stencil_offsets p2.Expr.p_kernel))

let test_literal_bounds_and_enddo () =
  let p =
    Fortran.parse ~sizes:[]
      {|
do i = 1, 16
  y(i) = 3 * x(i)
enddo
|}
  in
  Alcotest.(check int) "points" 16 (Expr.points p)

let test_min_max_reductions () =
  let p =
    Fortran.parse ~sizes:[ ("n", 8) ]
      {|
do i = 1, n
  hottest = max(hottest, t(i))
  y(i) = t(i)
end do
|}
  in
  let r = List.hd p.Expr.p_kernel.Expr.k_reductions in
  Alcotest.(check bool) "max reduction" true (r.Expr.r_op = Tytra_ir.Ast.Max)

let test_intrinsics () =
  let p =
    Fortran.parse ~sizes:[ ("n", 8) ]
      {|
do i = 1, n
  y(i) = abs(x(i)) + sqrt(x(i)) + min(x(i), 7)
end do
|}
  in
  let env = [ ("x", [| 9L; 16L; 25L; 4L; 1L; 0L; 49L; 64L |]) ] in
  let r = Eval.run_baseline p env in
  let y = List.assoc "y" r.Eval.outputs in
  (* abs(9)+sqrt(9)+min(9,7) = 9+3+7 = 19 *)
  Alcotest.(check int64) "first" 19L y.(0)

let expect_error src sizes' =
  match Fortran.parse ~sizes:sizes' src with
  | exception Fortran.Error _ -> ()
  | _ -> Alcotest.failf "expected rejection of %S" src

let test_rejections () =
  (* non-affine index *)
  expect_error {|
do i = 1, 8
  y(i) = x(j)
end do
|} [];
  (* unknown size name *)
  expect_error {|
do i = 1, n
  y(i) = x(i)
end do
|} [];
  (* self-dependent non-reduction *)
  expect_error {|
do i = 1, 8
  s = s * x(i)
  y(i) = s
end do
|} [];
  (* output written at an offset *)
  expect_error {|
do i = 1, 8
  y(i+1) = x(i)
end do
|} [];
  (* lower bound not 1 *)
  expect_error {|
do i = 2, 8
  y(i) = x(i)
end do
|} [];
  (* 4-deep nest *)
  expect_error
    {|
do a = 1, 2
do b = 1, 2
do c = 1, 2
do d = 1, 2
  y(d,c,b,a) = x(d,c,b,a)
end do
end do
end do
end do
|}
    []

let test_float_kernel () =
  let p =
    Fortran.parse ~ty:(Tytra_ir.Ty.Float 32) ~sizes:[ ("n", 4) ]
      {|
parameter w = 0.5
do i = 1, n
  y(i) = w * x(i)
end do
|}
  in
  let x = Array.map Int64.bits_of_float [| 2.0; 4.0; 6.0; 8.0 |] in
  let r = Eval.run_baseline p [ ("x", x) ] in
  let y = List.assoc "y" r.Eval.outputs in
  Alcotest.(check (float 1e-9)) "0.5 * 2.0" 1.0 (Int64.float_of_bits y.(0))

let suite =
  [
    Alcotest.test_case "parse SOR loop nest" `Quick test_parse_sor;
    Alcotest.test_case "matches hand-written kernel" `Quick
      test_semantics_match_hand_written;
    Alcotest.test_case "imported program lowers" `Quick
      test_imported_lowers_and_validates;
    Alcotest.test_case "1-D and 2-D nests" `Quick test_1d_and_2d_nests;
    Alcotest.test_case "literal bounds / enddo" `Quick
      test_literal_bounds_and_enddo;
    Alcotest.test_case "min/max reductions" `Quick test_min_max_reductions;
    Alcotest.test_case "intrinsics" `Quick test_intrinsics;
    Alcotest.test_case "unsupported code rejected" `Quick test_rejections;
    Alcotest.test_case "float kernels" `Quick test_float_kernel;
  ]
