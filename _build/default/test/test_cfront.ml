(* C front-end tests, including cross-language agreement with the Fortran
   front end and the hand-written kernels. *)

open Tytra_front

let sor_c =
  {|
/* SOR kernel, C rendering (row-major arrays, zero-based loops) */
#define omega 1
#define cn1 1
#define cn2l 1
#define cn2s 1
#define cn3l 1
#define cn3s 1
#define cn4l 1
#define cn4s 1
for (k = 0; k < KM; k++) {
  for (j = 0; j < JM; j++) {
    for (i = 0; i < IM; i++) {
      // the stencil: i is the fastest dimension
      reltmp = omega * (cn1 * ( cn2l * p[k][j][i+1] + cn2s * p[k][j][i-1]
             + cn3l * p[k][j+1][i] + cn3s * p[k][j-1][i]
             + cn4l * p[k+1][j][i] + cn4s * p[k-1][j][i] ) - rhs[k][j][i]) - p[k][j][i];
      p_new[k][j][i] = p[k][j][i] + reltmp;
      sorerracc += reltmp * reltmp;
    }
  }
}
|}

let sizes = [ ("IM", 8); ("JM", 6); ("KM", 6) ]

let test_parse_sor_c () =
  let p = C_front.parse ~sizes sor_c in
  Alcotest.(check int) "points" (8 * 6 * 6) (Expr.points p);
  Alcotest.(check (list string)) "inputs" [ "p"; "rhs" ]
    p.Expr.p_kernel.Expr.k_inputs;
  let offs = List.assoc "p" (Expr.stencil_offsets p.Expr.p_kernel) in
  Alcotest.(check (list int)) "row-major offsets" [ -48; -8; -1; 1; 8; 48 ] offs;
  Alcotest.(check int) "1 reduction (+=)" 1
    (List.length p.Expr.p_kernel.Expr.k_reductions)

let test_c_matches_fortran_and_dsl () =
  let pc = C_front.parse ~sizes sor_c in
  let hand = Tytra_kernels.Sor.program ~im:8 ~jm:6 ~km:6 () in
  let env = Tytra_kernels.Workloads.random_env hand in
  let a = Eval.run_baseline hand env in
  let c = Eval.run_baseline pc env in
  Alcotest.(check bool) "C == hand-written" true
    (List.assoc "p" a.Eval.outputs = List.assoc "p_new" c.Eval.outputs);
  Alcotest.(check int64) "reduction agrees"
    (List.assoc "sorErrAcc" a.Eval.reductions)
    (List.assoc "sorerracc" c.Eval.reductions)

let test_int_decl_and_literal_bounds () =
  let p =
    C_front.parse ~sizes:[]
      {|
for (int i = 0; i < 16; i++) {
  y[i] = 3 * x[i] + x[i+1];
}
|}
  in
  Alcotest.(check int) "points" 16 (Expr.points p)

let test_intrinsic_renaming () =
  let p =
    C_front.parse ~sizes:[ ("N", 4) ]
      {|
for (i = 0; i < N; i++) {
  y[i] = fmax(x[i], 3) + fabs(x[i]);
  peak = max(peak, x[i]);
}
|}
  in
  let r = List.hd p.Expr.p_kernel.Expr.k_reductions in
  Alcotest.(check bool) "max reduction" true (r.Expr.r_op = Tytra_ir.Ast.Max);
  let env = [ ("x", [| 1L; 5L; 2L; 9L |]) ] in
  let res = Eval.run_baseline p env in
  Alcotest.(check int64) "fmax+fabs" 4L (List.assoc "y" res.Eval.outputs).(0);
  Alcotest.(check int64) "peak" 9L (List.assoc "peak" res.Eval.reductions)

let test_plus_eq_reduction () =
  let p =
    C_front.parse ~sizes:[ ("N", 8) ]
      {|
for (i = 0; i < N; i++) {
  total += x[i];
  y[i] = x[i];
}
|}
  in
  let env = [ ("x", Array.init 8 Int64.of_int) ] in
  let r = Eval.run_baseline p env in
  Alcotest.(check int64) "sum 0..7" 28L (List.assoc "total" r.Eval.reductions)

let test_comments_and_float_literals () =
  let p =
    C_front.parse ~ty:(Tytra_ir.Ty.Float 32) ~sizes:[ ("N", 2) ]
      {|
#define w 0.25
/* block
   comment */
for (i = 0; i < N; i++) {
  y[i] = w * x[i]; // scale
}
|}
  in
  let x = Array.map Int64.bits_of_float [| 4.0; 8.0 |] in
  let r = Eval.run_baseline p [ ("x", x) ] in
  Alcotest.(check (float 1e-9)) "0.25*4" 1.0
    (Int64.float_of_bits (List.assoc "y" r.Eval.outputs).(0))

let expect_error src sizes' =
  match C_front.parse ~sizes:sizes' src with
  | exception C_front.Error _ -> ()
  | _ -> Alcotest.failf "expected rejection"

let test_rejections () =
  (* loop not starting at 0 *)
  expect_error {|
for (i = 1; i < 8; i++) { y[i] = x[i]; }
|} [];
  (* missing semicolon *)
  expect_error {|
for (i = 0; i < 8; i++) { y[i] = x[i] }
|} [];
  (* unsupported function *)
  expect_error {|
for (i = 0; i < 8; i++) { y[i] = exp(x[i]); }
|} [];
  (* mismatched braces *)
  expect_error {|
for (i = 0; i < 8; i++) { y[i] = x[i];
|} []

let test_lowered_c_program_validates () =
  let p = C_front.parse ~sizes sor_c in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Transform.to_string v ^ " valid")
        true
        (Tytra_ir.Validate.is_valid (Lower.lower p v)))
    [ Transform.Pipe; Transform.ParPipe 4 ]

let suite =
  [
    Alcotest.test_case "parse SOR (C)" `Quick test_parse_sor_c;
    Alcotest.test_case "C == Fortran == DSL" `Quick
      test_c_matches_fortran_and_dsl;
    Alcotest.test_case "int decl / literal bounds" `Quick
      test_int_decl_and_literal_bounds;
    Alcotest.test_case "intrinsic renaming" `Quick test_intrinsic_renaming;
    Alcotest.test_case "+= reduction" `Quick test_plus_eq_reduction;
    Alcotest.test_case "comments & float literals" `Quick
      test_comments_and_float_literals;
    Alcotest.test_case "unsupported code rejected" `Quick test_rejections;
    Alcotest.test_case "lowered C program validates" `Quick
      test_lowered_c_program_validates;
  ]
