(* Kernel-library tests: the three paper kernels have the structural
   properties the paper's Table II implies, and their golden references
   behave. *)

open Tytra_front
open Tytra_ir

let test_sor_structure () =
  let p = Tytra_kernels.Sor.program ~im:8 ~jm:6 ~km:6 () in
  let k = p.Expr.p_kernel in
  Alcotest.(check (list string)) "streams" [ "p"; "rhs" ] k.Expr.k_inputs;
  Alcotest.(check int) "6 stencil neighbours" 6
    (List.length (List.assoc "p" (Expr.stencil_offsets k)));
  Alcotest.(check int) "noff = im*jm" 48 (Expr.max_offset k);
  Alcotest.(check bool) "has error reduction" true (k.Expr.k_reductions <> []);
  match Expr.check_kernel k with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_sor_against_reference () =
  (* independent dense reference for the SOR arithmetic *)
  let im, jm, km = (4, 3, 3) in
  let p = Tytra_kernels.Sor.program ~im ~jm ~km () in
  let env = Tytra_kernels.Workloads.random_env p in
  let res = Eval.run_baseline p env in
  let parr = List.assoc "p" env and rhs = List.assoc "rhs" env in
  let n = im * jm * km in
  let mask v = Ty.mask (Ty.UInt 18) v in
  let at a i = if i >= 0 && i < n then a.(i) else 0L in
  let out = List.assoc "p" res.Eval.outputs in
  let sk = im * jm in
  for i = 0 to n - 1 do
    let ( + ) = Int64.add and ( - ) = Int64.sub in
    let neigh =
      at parr (Stdlib.( + ) i 1)
      + at parr (Stdlib.( - ) i 1)
      + at parr (Stdlib.( + ) i im)
      + at parr (Stdlib.( - ) i im)
      + at parr (Stdlib.( + ) i sk)
      + at parr (Stdlib.( - ) i sk)
    in
    (* omega = cn1 = cn* = 1 in the integer parameterization *)
    let reltmp = mask (mask neigh - rhs.(i) - parr.(i)) in
    let expect = mask (reltmp + parr.(i)) in
    if out.(i) <> expect then
      Alcotest.failf "sor mismatch at %d: got %Ld expected %Ld" i out.(i)
        expect
  done

let test_hotspot_table2_properties () =
  let p = Tytra_kernels.Hotspot.table2_program () in
  Alcotest.(check int) "512x512 work-items" (512 * 512) (Expr.points p);
  let d = Lower.lower p Transform.Pipe in
  let est = Tytra_cost.Resource_model.estimate d in
  let u = est.Tytra_cost.Resource_model.est_usage in
  (* the paper's Table II row: 12 DSPs, ~32.8 Kbit of BRAM *)
  Alcotest.(check int) "12 DSPs" 12 u.Tytra_device.Resources.dsps;
  Alcotest.(check bool) "BRAM ~32.8 Kbit" true
    (abs (u.Tytra_device.Resources.bram_bits - 32800) < 1000);
  let q = Analysis.params d in
  Alcotest.(check int) "noff = 512" 512 q.Analysis.noff

let test_lavamd_table2_properties () =
  let p = Tytra_kernels.Lavamd.table2_program () in
  Alcotest.(check int) "100 work-items" 100 (Expr.points p);
  let d = Lower.lower p Transform.Pipe in
  let est = Tytra_cost.Resource_model.estimate d in
  let u = est.Tytra_cost.Resource_model.est_usage in
  (* no stencils -> no BRAM windows (paper: BRAM 0) *)
  Alcotest.(check int) "BRAM 0" 0 u.Tytra_device.Resources.bram_bits;
  Alcotest.(check bool) "DSP-heavy (>= 12)" true
    (u.Tytra_device.Resources.dsps >= 12);
  let q = Analysis.params d in
  Alcotest.(check int) "noff 0" 0 q.Analysis.noff

let test_sor_case_study_sides () =
  List.iter
    (fun side ->
      Alcotest.(check bool)
        (Printf.sprintf "side %d divisible by 4 lanes" side)
        true
        (side * side * side mod 4 = 0))
    Tytra_kernels.Sor.case_study_sides

let test_float_sor_evaluates () =
  let p = Tytra_kernels.Sor.case_study_program 24 in
  Alcotest.(check bool) "float type" true
    (Ty.is_float p.Expr.p_kernel.Expr.k_ty);
  let small = Tytra_kernels.Sor.program ~ty:(Ty.Float 32) ~im:4 ~jm:4 ~km:4 () in
  let env = Tytra_kernels.Workloads.random_env small in
  let r = Eval.run_baseline small env in
  let out = List.assoc "p" r.Eval.outputs in
  Array.iter
    (fun v ->
      let f = Int64.float_of_bits v in
      Alcotest.(check bool) "finite" true (Float.is_finite f))
    out

let test_workload_determinism () =
  let p = Tytra_kernels.Sor.program ~im:4 ~jm:4 ~km:4 () in
  let a = Tytra_kernels.Workloads.random_env p in
  let b = Tytra_kernels.Workloads.random_env p in
  Alcotest.(check bool) "same seed, same data" true (a = b);
  let c = Tytra_kernels.Workloads.random_env ~seed:"other" p in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_cpu_workloads_scale () =
  let w24 = Tytra_kernels.Sor.cpu_workload ~side:24 in
  let w192 = Tytra_kernels.Sor.cpu_workload ~side:192 in
  Alcotest.(check int) "points cube" (24 * 24 * 24)
    w24.Tytra_sim.Cpu_model.wl_points;
  Alcotest.(check int) "8^3 more points" (512 * w24.Tytra_sim.Cpu_model.wl_points)
    w192.Tytra_sim.Cpu_model.wl_points

let suite =
  [
    Alcotest.test_case "sor structure" `Quick test_sor_structure;
    Alcotest.test_case "sor against dense reference" `Quick
      test_sor_against_reference;
    Alcotest.test_case "hotspot Table II properties" `Quick
      test_hotspot_table2_properties;
    Alcotest.test_case "lavamd Table II properties" `Quick
      test_lavamd_table2_properties;
    Alcotest.test_case "case-study sides" `Quick test_sor_case_study_sides;
    Alcotest.test_case "float sor evaluates" `Quick test_float_sor_evaluates;
    Alcotest.test_case "workload determinism" `Quick test_workload_determinism;
    Alcotest.test_case "cpu workloads scale" `Quick test_cpu_workloads_scale;
  ]

(* ---- SRAD (beyond the paper's three kernels) ---- *)

let test_srad_structure () =
  let p = Tytra_kernels.Srad.program ~rows:16 ~cols:16 () in
  let k = p.Expr.p_kernel in
  Alcotest.(check (list int)) "five-point stencil" [ -16; -1; 1; 16 ]
    (List.assoc "c" (Expr.stencil_offsets k));
  (* two divisions: the op the Fig 9 calibration is about *)
  let d = Lower.lower p Transform.Pipe in
  let divs =
    Ast.fold_instrs d (Ast.find_func_exn d "f0") 0 (fun acc _ i ->
        match i with
        | Ast.Assign { op = Ast.Div; _ } -> acc + 1
        | _ -> acc)
  in
  Alcotest.(check int) "two divs" 2 divs

let test_srad_reference () =
  (* independent dense reference of the SRAD arithmetic *)
  let rows, cols = (6, 8) in
  let p = Tytra_kernels.Srad.program ~rows ~cols () in
  let env = Tytra_kernels.Workloads.random_env p in
  let res = Eval.run_baseline p env in
  let c = List.assoc "c" env in
  let out = List.assoc "c" res.Eval.outputs in
  let n = rows * cols in
  let ty = Ty.UInt 18 in
  let m v = Ty.mask ty v in
  let at i = if i >= 0 && i < n then c.(i) else 0L in
  let q0 = 3L and lambda = 1L in
  for i = 0 to n - 1 do
    let ( + ) = Int64.add and ( - ) = Int64.sub and ( * ) = Int64.mul in
    let dn = m (at (Stdlib.( - ) i cols) - at i) in
    let ds = m (at (Stdlib.( + ) i cols) - at i) in
    let de = m (at (Stdlib.( + ) i 1) - at i) in
    let dw = m (at (Stdlib.( - ) i 1) - at i) in
    let num = m ((dn * dn) + (ds * ds) + (de * de) + (dw * dw)) in
    let den = m ((at i * at i) + 1L) in
    let g2 = if den = 0L then 0L else Int64.unsigned_div num den in
    let l = m (dn + ds + de + dw) in
    let den2 = m (g2 + q0) in
    let coef = if den2 = 0L then 0L else Int64.unsigned_div l den2 in
    let expect = m (at i + m (lambda * coef)) in
    if out.(i) <> expect then
      Alcotest.failf "srad mismatch at %d: got %Ld expected %Ld" i out.(i)
        expect
  done

let test_srad_variants_correct () =
  let p = Tytra_kernels.Srad.program ~rows:8 ~cols:8 () in
  let env = Tytra_kernels.Workloads.random_env p in
  let g = Eval.run_baseline p env in
  List.iter
    (fun v ->
      let r = Eval.run_variant p v env in
      Alcotest.(check bool)
        (Transform.to_string v ^ " == baseline")
        true
        (r.Eval.outputs = g.Eval.outputs && r.Eval.reductions = g.Eval.reductions))
    (Transform.enumerate ~max_lanes:8 p)

let test_srad_div_dominates_aluts () =
  (* the two 18-bit divides (~380 ALUTs each) dominate the datapath *)
  let d =
    Lower.lower (Tytra_kernels.Srad.program ~rows:16 ~cols:16 ()) Transform.Pipe
  in
  let u =
    (Tytra_cost.Resource_model.estimate d)
      .Tytra_cost.Resource_model.est_usage
  in
  Alcotest.(check bool) "ALUTs reflect dividers" true
    (u.Tytra_device.Resources.aluts > 800)

let suite =
  suite
  @ [
      Alcotest.test_case "srad structure" `Quick test_srad_structure;
      Alcotest.test_case "srad dense reference" `Quick test_srad_reference;
      Alcotest.test_case "srad variants correct" `Quick
        test_srad_variants_correct;
      Alcotest.test_case "srad div-heavy ALUTs" `Quick
        test_srad_div_dominates_aluts;
    ]
