(* regenerate shipped .tirl examples, including a coarse pipeline *)
let () =
  let p = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 () in
  Tytra_ir.Pprint.write_file "examples/ir/sor_c2.tirl"
    (Tytra_front.Lower.lower p Tytra_front.Transform.Pipe);
  Tytra_ir.Pprint.write_file "examples/ir/sor_c1_4lanes.tirl"
    (Tytra_front.Lower.lower p (Tytra_front.Transform.ParPipe 4));
  let h = Tytra_kernels.Hotspot.table2_program () in
  Tytra_ir.Pprint.write_file "examples/ir/hotspot_c2.tirl"
    (Tytra_front.Lower.lower h Tytra_front.Transform.Pipe);
  let l = Tytra_kernels.Lavamd.table2_program () in
  Tytra_ir.Pprint.write_file "examples/ir/lavamd_c2.tirl"
    (Tytra_front.Lower.lower l Tytra_front.Transform.Pipe);
  let s = Tytra_kernels.Srad.program ~rows:64 ~cols:64 () in
  Tytra_ir.Pprint.write_file "examples/ir/srad_c2.tirl"
    (Tytra_front.Lower.lower s Tytra_front.Transform.Pipe);
  (* a coarse-grained pipeline (Fig 7 configuration 3) with a returning
     call, as a shipped syntax example *)
  let open Tytra_front.Expr in
  let blur =
    { k_name = "blur"; k_ty = Tytra_ir.Ty.UInt 18; k_inputs = [ "img" ];
      k_params = [ ("w", 1L) ];
      k_outputs =
        [ { o_name = "s";
            o_expr = param "w" *: (sten "img" (-1) +: input "img" +: sten "img" 1) } ];
      k_reductions = [] }
  in
  let scale =
    { k_name = "scale"; k_ty = Tytra_ir.Ty.UInt 18; k_inputs = [ "v"; "gain" ];
      k_params = [];
      k_outputs = [ { o_name = "y"; o_expr = input "v" *: input "gain" } ];
      k_reductions = [] }
  in
  let chain =
    Tytra_front.Chain.make_exn ~name:"blur_scale" ~shape:[ 256 ] [ blur; scale ]
  in
  Tytra_ir.Pprint.write_file "examples/ir/blur_scale_coarse.tirl"
    (Tytra_front.Chain.lower chain Tytra_front.Transform.Pipe);
  print_endline "wrote examples/ir/*.tirl"
