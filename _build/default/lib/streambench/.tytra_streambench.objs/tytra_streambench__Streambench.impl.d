lib/streambench/streambench.ml: Format List Printf Tytra_device Tytra_sim
