(** STREAM-like sustained-bandwidth benchmark (paper §V-C, Fig 10).

    The paper extends McCalpin's STREAM benchmark to OpenCL-on-FPGA
    (following GPU-STREAM) and measures the sustained bandwidth of a copy
    stream over a square 2-D array, contiguous and at a constant stride
    equal to the array side. Here the same access sequences run against
    the simulated memory system ({!Tytra_sim.Dram}) — including the
    kernel-launch overhead that dominates small sizes — regenerating the
    Fig 10 curve family and the calibration tables the cost model's ρ
    factors come from. *)

type measurement = {
  m_side : int;          (** side of the square 2-D array *)
  m_bytes : int;         (** total bytes in the array *)
  m_pattern : [ `Cont | `Strided | `Random ];
  m_seconds : float;
  m_bps : float;         (** sustained bandwidth, bytes/s *)
}

let pattern_to_string = function
  | `Cont -> "contiguous"
  | `Strided -> "strided"
  | `Random -> "random"

let pp fmt m =
  Format.fprintf fmt "%5d  %10d B  %-10s  %8.3f Gbit/s" m.m_side m.m_bytes
    (pattern_to_string m.m_pattern)
    (m.m_bps *. 8.0 /. 1e9)

(** [copy ?elem_bytes device pattern ~side] — stream-read a [side²]
    array and stream-write the result (STREAM "copy"): the measured
    figure is total bytes moved over total time, launch overhead
    included. Strided access walks the array column-major with stride
    [side] (the paper's "stride equals the side"); random uses
    fixed-seed pseudo-random addresses (which §V-C reports behaves like
    strided — verified in the tests). *)
let copy ?(elem_bytes = 4) (device : Tytra_device.Device.t)
    (pattern : [ `Cont | `Strided | `Random ]) ~(side : int) : measurement =
  let n = side * side in
  let bytes_total = n * elem_bytes in
  let dram = Tytra_sim.Dram.create device.Tytra_device.Device.dram in
  let rng = Tytra_sim.Prng.of_string (Printf.sprintf "streambench:%d" side) in
  let t = ref device.Tytra_device.Device.dram.launch_overhead_s in
  (match pattern with
  | `Cont ->
      (* merged linear requests; read stream + write stream interleave *)
      let merge = max 1 (device.Tytra_device.Device.dram.req_bytes / elem_bytes) in
      let reqs = (n + merge - 1) / merge in
      let row = device.Tytra_device.Device.dram.row_bytes in
      (* the write region starts a few rows past the read region so the two
         streams keep distinct rows (and banks) open *)
      let wbase = (((bytes_total + row - 1) / row) + 3) * row in
      let raddr = ref 0 and waddr = ref wbase in
      for _ = 1 to reqs do
        let b = merge * elem_bytes in
        t := !t +. Tytra_sim.Dram.service_s dram ~addr:!raddr ~bytes:b ~merged:true;
        raddr := !raddr + b;
        t := !t +. Tytra_sim.Dram.service_s dram ~addr:!waddr ~bytes:b ~merged:true;
        waddr := !waddr + b
      done
  | `Strided ->
      (* column-major walk: element (i) at address ((i mod side)*side +
         i/side); every access is a separate request *)
      for i = 0 to n - 1 do
        let row = i mod side and col = i / side in
        let addr = ((row * side) + col) * elem_bytes in
        t := !t
             +. Tytra_sim.Dram.service_s dram ~addr ~bytes:elem_bytes
                  ~merged:false;
        t := !t
             +. Tytra_sim.Dram.service_s dram ~addr:(bytes_total + addr)
                  ~bytes:elem_bytes ~merged:false
      done
  | `Random ->
      for _ = 0 to n - 1 do
        let addr = Tytra_sim.Prng.int rng bytes_total in
        t := !t
             +. Tytra_sim.Dram.service_s dram ~addr ~bytes:elem_bytes
                  ~merged:false;
        let addr2 = bytes_total + Tytra_sim.Prng.int rng bytes_total in
        t := !t
             +. Tytra_sim.Dram.service_s dram ~addr:addr2 ~bytes:elem_bytes
                  ~merged:false
      done);
  let moved = 2 * bytes_total in
  {
    m_side = side;
    m_bytes = bytes_total;
    m_pattern = pattern;
    m_seconds = !t;
    m_bps = float_of_int moved /. !t;
  }

(** The Fig 10 sweep: sides 100…6000 contiguous; the paper's strided
    points at a subset of sides. Strided points above side 2000 are
    subsampled (the full column walk is O(side²) requests). *)
let default_cont_sides = [ 100; 200; 400; 600; 1000; 1500; 2000; 2500; 3000; 4000; 5000; 6000 ]
let default_strided_sides = [ 100; 500; 1000; 2000 ]

(** [sweep device] — the full benchmark: one measurement per (pattern,
    side). *)
let sweep ?(cont_sides = default_cont_sides)
    ?(strided_sides = default_strided_sides) (device : Tytra_device.Device.t)
    : measurement list =
  List.map (fun s -> copy device `Cont ~side:s) cont_sides
  @ List.map (fun s -> copy device `Strided ~side:s) strided_sides
  @ List.map (fun s -> copy device `Random ~side:s) strided_sides

(** [to_calib device ms] — package a sweep as the cost model's empirical
    calibration (the "one-time benchmark experiments" input of paper
    Fig 2). *)
let to_calib (device : Tytra_device.Device.t) (ms : measurement list) :
    Tytra_device.Bandwidth.calib =
  let pick pat =
    List.filter_map
      (fun m ->
        if m.m_pattern = pat then Some (float_of_int m.m_bytes, m.m_bps)
        else None)
      ms
  in
  Tytra_device.Bandwidth.make ~device:device.Tytra_device.Device.dev_name
    ~cont:(pick `Cont) ~strided:(pick `Strided) ~random:(pick `Random)
