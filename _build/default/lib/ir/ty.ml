(** Scalar types of the TyTra-IR.

    The TyTra-IR is strongly and statically typed (paper §IV). Types carry
    an explicit bit-width, e.g. [ui18] is an 18-bit unsigned integer — the
    width used throughout the paper's SOR listings. Widths are significant:
    the resource cost model (paper §V-A, Fig 9) is parameterised on the
    bit-width of each operation. *)

type t =
  | UInt of int  (** unsigned integer of the given bit-width, e.g. [ui18] *)
  | SInt of int  (** signed (two's-complement) integer *)
  | Float of int (** IEEE-754 binary float; width 32 or 64 *)
  | Bool         (** single-bit predicate, result of comparisons *)
[@@deriving show { with_path = false }, eq, ord]

(** [width t] is the bit-width of a value of type [t]. *)
let width = function
  | UInt w | SInt w | Float w -> w
  | Bool -> 1

(** [is_integer t] holds for [UInt]/[SInt]/[Bool]. *)
let is_integer = function UInt _ | SInt _ | Bool -> true | Float _ -> false

let is_float = function Float _ -> true | _ -> false
let is_signed = function SInt _ -> true | _ -> false

(** [valid t] checks representability constraints: integer widths in
    [1, 128]; float widths 32 or 64. *)
let valid = function
  | UInt w | SInt w -> w >= 1 && w <= 128
  | Float w -> w = 32 || w = 64
  | Bool -> true

(** Concrete syntax, as used in [.tirl] listings: [ui18], [si32], [fp32],
    [bool]. *)
let to_string = function
  | UInt w -> Printf.sprintf "ui%d" w
  | SInt w -> Printf.sprintf "si%d" w
  | Float w -> Printf.sprintf "fp%d" w
  | Bool -> "bool"

(** [of_string s] parses the concrete syntax. Returns [Error _] on
    malformed names or invalid widths. *)
let of_string s : (t, string) result =
  let num pfx =
    let n = String.length pfx in
    match int_of_string_opt (String.sub s n (String.length s - n)) with
    | Some w -> Ok w
    | None -> Error (Printf.sprintf "malformed type %S" s)
  in
  let check t = if valid t then Ok t else Error ("invalid width in type " ^ s) in
  if s = "bool" then Ok Bool
  else if String.length s > 2 && String.sub s 0 2 = "ui" then
    Result.bind (num "ui") (fun w -> check (UInt w))
  else if String.length s > 2 && String.sub s 0 2 = "si" then
    Result.bind (num "si") (fun w -> check (SInt w))
  else if String.length s > 2 && String.sub s 0 2 = "fp" then
    Result.bind (num "fp") (fun w -> check (Float w))
  else Error (Printf.sprintf "unknown type %S" s)

let of_string_exn s =
  match of_string s with Ok t -> t | Error e -> invalid_arg e

(** Range of representable values, for the interpreter and validator.
    Floats report an infinite range. *)
let int_range = function
  | UInt w ->
      let w = min w 62 in
      Some (0L, Int64.sub (Int64.shift_left 1L w) 1L)
  | SInt w ->
      let w = min w 62 in
      let h = Int64.shift_left 1L (w - 1) in
      Some (Int64.neg h, Int64.sub h 1L)
  | Bool -> Some (0L, 1L)
  | Float _ -> None

(** [mask t v] wraps the integer [v] into the representable range of [t]
    (modular arithmetic, as in hardware). Identity for float types. *)
let mask t (v : int64) : int64 =
  match t with
  | Float _ -> v
  | Bool -> if Int64.equal v 0L then 0L else 1L
  | UInt w when w >= 63 -> v
  | UInt w ->
      Int64.logand v (Int64.sub (Int64.shift_left 1L w) 1L)
  | SInt w when w >= 63 -> v
  | SInt w ->
      let m = Int64.shift_left 1L w in
      let r = Int64.rem v m in
      let r = if Int64.compare r 0L < 0 then Int64.add r m else r in
      let h = Int64.shift_left 1L (w - 1) in
      if Int64.compare r h >= 0 then Int64.sub r m else r

let pp_t fmt t = Format.pp_print_string fmt (to_string t)
