(** Programmatic construction of TyTra-IR designs.

    The front-end lowering pass and the kernel library build IR through
    this interface rather than by concatenating [.tirl] text. Fresh SSA
    names are generated automatically; the result can be validated and
    printed back to concrete syntax. *)

open Ast

type t = {
  name : string;
  mutable mems : mem_obj list;
  mutable streams : stream_obj list;
  mutable ports : port list;
  mutable globals : global list;
  mutable funcs : func list;
}

let create name =
  { name; mems = []; streams = []; ports = []; globals = []; funcs = [] }

(** [mem b name ~space ~ty ~size] declares a memory object and returns its
    name. *)
let mem b name ~space ~ty ~size =
  b.mems <- b.mems @ [ { mo_name = name; mo_space = space; mo_ty = ty; mo_size = size } ];
  name

(** [stream b name ~dir ~mem ~pattern] declares a stream object over
    memory object [mem]. *)
let stream b name ~dir ~mem ~pattern =
  b.streams <-
    b.streams @ [ { so_name = name; so_dir = dir; so_mem = mem; so_pattern = pattern } ];
  name

(** [port b ~fn ~port ~ty ~dir ~stream] binds parameter [port] of function
    [fn] to stream object [stream]. *)
let port b ~fn ~port:pt ~ty ~dir ?(space = Global) ?(pattern = Cont)
    ?(base_off = 0) ~stream () =
  b.ports <-
    b.ports
    @ [
        {
          pt_fun = fn;
          pt_port = pt;
          pt_space = space;
          pt_ty = ty;
          pt_dir = dir;
          pt_pattern = pattern;
          pt_base_off = base_off;
          pt_stream = stream;
        };
      ]

(** [global b name ~ty ~init] declares a design-global accumulator. *)
let global b name ~ty ?(init = 0L) () =
  b.globals <- b.globals @ [ { g_name = name; g_ty = ty; g_init = init } ];
  name

(** {2 Function bodies} *)

type fb = {
  mutable body : instr list;  (* reversed *)
  mutable fresh : int;
  params : (string * Ty.t) list;
}

(** Operand helpers. *)
let v name = Var name
let g name = Glob name
let i64 n = Imm (Int64.of_int n)
let f64 x = ImmF x

(** [param fb name] is the operand for parameter [name] (checked). *)
let param fb name =
  if List.mem_assoc name fb.params then Var name
  else invalid_arg (Printf.sprintf "Builder.param: no parameter %%%s" name)

let fresh fb =
  let n = fb.fresh in
  fb.fresh <- n + 1;
  Printf.sprintf "t%d" n

(** [offset fb ~ty src off] emits a stream-offset definition and returns
    the new stream operand. *)
let offset fb ~ty src off =
  let dst = fresh fb in
  fb.body <- Offset { dst; ty; src; off } :: fb.body;
  Var dst

(** [offset_named fb dst ~ty src off] — as {!offset} with an explicit
    destination name. *)
let offset_named fb dst ~ty src off =
  fb.body <- Offset { dst; ty; src; off } :: fb.body;
  Var dst

(** [ins fb op ty args] emits an SSA assignment to a fresh local and
    returns it as an operand. *)
let ins fb op ty args =
  let dst = fresh fb in
  fb.body <- Assign { dst = Dlocal dst; ty; op; args } :: fb.body;
  Var dst

(** [ins_named fb dst op ty args] — as {!ins} with an explicit name. *)
let ins_named fb dst op ty args =
  fb.body <- Assign { dst = Dlocal dst; ty; op; args } :: fb.body;
  Var dst

(** [reduce fb glob op ty args] emits a reduction into global [@glob]. *)
let reduce fb glob op ty args =
  fb.body <- Assign { dst = Dglobal glob; ty; op; args } :: fb.body

(** [call fb callee args kind] emits a child-function instantiation;
    [rets] binds the callee's streamed outputs for peer-to-peer plumbing
    (coarse-grained pipelines). *)
let call ?(rets = []) fb callee args kind =
  fb.body <- Call { callee; args; kind; rets } :: fb.body

(** Shorthands for common binary operations. *)
let add fb ty a c = ins fb Add ty [ a; c ]
let sub fb ty a c = ins fb Sub ty [ a; c ]
let mul fb ty a c = ins fb Mul ty [ a; c ]
let div fb ty a c = ins fb Div ty [ a; c ]

(** [func b name ~kind ~params f] defines function [@name]; [f] receives a
    function-body builder. Returns the function name. *)
let func b name ~kind ~params f =
  let fb = { body = []; fresh = 0; params } in
  f fb;
  b.funcs <-
    b.funcs
    @ [ { fn_name = name; fn_params = params; fn_kind = kind; fn_body = List.rev fb.body } ];
  name

(** [func_raw b name ~kind ~params body] defines a function from a ready
    instruction list. *)
let func_raw b name ~kind ~params body =
  b.funcs <-
    b.funcs @ [ { fn_name = name; fn_params = params; fn_kind = kind; fn_body = body } ];
  name

(** [design b] extracts the finished design (unvalidated). *)
let design b : design =
  {
    d_name = b.name;
    d_mems = b.mems;
    d_streams = b.streams;
    d_ports = b.ports;
    d_globals = b.globals;
    d_funcs = b.funcs;
  }

(** [design_exn b] extracts and validates; raises on invalid IR. *)
let design_exn b = Validate.check_exn (design b)
