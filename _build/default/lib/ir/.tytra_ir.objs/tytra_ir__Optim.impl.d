lib/ir/optim.pp.ml: Array Ast Conventions Format Hashtbl Int64 Interp List Map String Ty
