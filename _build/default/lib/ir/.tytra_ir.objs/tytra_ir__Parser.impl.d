lib/ir/parser.pp.ml: Ast Filename Fun Int64 Lexer List Printf String Ty
