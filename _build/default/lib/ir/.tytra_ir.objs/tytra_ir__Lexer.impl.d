lib/ir/lexer.pp.ml: Array Buffer List Printf String
