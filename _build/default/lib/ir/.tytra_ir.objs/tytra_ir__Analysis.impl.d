lib/ir/analysis.pp.ml: Ast Config_tree List Map Opinfo Option Ppx_deriving_runtime String Ty
