lib/ir/builder.pp.ml: Ast Int64 List Printf Ty Validate
