lib/ir/ast.pp.ml: Conventions List Ppx_deriving_runtime Printf Ty
