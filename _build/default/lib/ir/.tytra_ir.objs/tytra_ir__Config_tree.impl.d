lib/ir/config_tree.pp.ml: Ast Format List String
