lib/ir/opinfo.pp.ml: Ast Ty
