lib/ir/validate.pp.ml: Ast Format Hashtbl Int64 List Map Pprint Printf Set String Ty
