lib/ir/ty.pp.ml: Format Int64 Ppx_deriving_runtime Printf Result String
