lib/ir/conventions.pp.ml: String
