lib/ir/interp.pp.ml: Array Ast Conventions Float Fun Hashtbl Int64 List Map Printf String Ty
