lib/ir/pprint.pp.ml: Ast Format Fun List Printf String Ty
