(** Functional interpreter for TyTra-IR designs.

    Executes a design's dataflow semantics element-at-a-time: every
    [pipe]/[seq]/[comb] processing element consumes one element per index
    from each of its input stream arrays, evaluates its SSA body, and
    produces its [out_*] values; design-global accumulators reduce across
    the whole index space. Stream offsets read the backing array at
    [i + off], with reads outside the stream returning 0 (the padding the
    generated stream hardware produces at stream boundaries).

    This gives the test suite an executable meaning for lowered designs:
    the front-end evaluator and the interpreter must agree on single-lane
    designs exactly, and on multi-lane designs away from chunk halos.

    Conventions interpreted (matching the lowering pass):
    - an [IStream] port of [@main] binds an input array to the @main
      parameter of the same name, flowing to PEs by call-argument
      position;
    - a PE's outputs are its SSA locals named [out_*], in body order;
      they map lane-major onto the design's [OStream] ports. *)

open Ast

type env = (string * int64 array) list
(** input binding: @main port name → data *)

type result = {
  ir_outputs : (string * int64 array) list;  (** per OStream port *)
  ir_globals : (string * int64) list;        (** final accumulator values *)
}

(** Scalar operation semantics at type [ty] — shared with the front-end
    evaluator. Integer ops wrap modulo the type width; float types carry
    IEEE-754 double bits in the int64. Division by zero yields 0. *)
let apply_op (ty : Ty.t) (op : op) (args : int64 list) : int64 =
  let m v = Ty.mask ty v in
  let b f = match args with [ a; c ] -> f a c | _ -> invalid_arg "arity" in
  let u f = match args with [ a ] -> f a | _ -> invalid_arg "arity" in
  let bool_ v = if v then 1L else 0L in
  if Ty.is_float ty then begin
    let fo = Int64.float_of_bits and fi = Int64.bits_of_float in
    let bf f = b (fun a c -> fi (f (fo a) (fo c))) in
    let cmp f = b (fun a c -> bool_ (f (compare (fo a) (fo c)) 0)) in
    match op with
    | Add -> bf ( +. )
    | Sub -> bf ( -. )
    | Mul -> bf ( *. )
    | Div -> bf (fun a c -> if c = 0.0 then 0.0 else a /. c)
    | Min -> bf Float.min
    | Max -> bf Float.max
    | Abs -> u (fun a -> fi (Float.abs (fo a)))
    | Neg -> u (fun a -> fi (-.fo a))
    | Sqrt -> u (fun a -> fi (Float.sqrt (Float.max 0.0 (fo a))))
    | CmpEq -> cmp ( = )
    | CmpNe -> cmp ( <> )
    | CmpLt -> cmp ( < )
    | CmpLe -> cmp ( <= )
    | CmpGt -> cmp ( > )
    | CmpGe -> cmp ( >= )
    | Select -> (
        match args with
        | [ c; a; d ] -> if c <> 0L then a else d
        | _ -> invalid_arg "arity")
    | Mov -> u Fun.id
    | _ -> invalid_arg ("float semantics undefined for " ^ op_to_string op)
  end
  else begin
    let signed = Ty.is_signed ty in
    let cmpv a c = if signed then Int64.compare a c else Int64.unsigned_compare a c in
    match op with
    | Add -> m (b Int64.add)
    | Sub -> m (b Int64.sub)
    | Mul -> m (b Int64.mul)
    | Div ->
        m (b (fun a c ->
            if Int64.equal c 0L then 0L
            else if signed then Int64.div a c
            else Int64.unsigned_div a c))
    | Rem ->
        m (b (fun a c ->
            if Int64.equal c 0L then 0L
            else if signed then Int64.rem a c
            else Int64.unsigned_rem a c))
    | And -> m (b Int64.logand)
    | Or -> m (b Int64.logor)
    | Xor -> m (b Int64.logxor)
    | Shl ->
        m (b (fun a c -> Int64.shift_left a (Int64.to_int (Int64.logand c 63L))))
    | Shr ->
        m (b (fun a c ->
            let s = Int64.to_int (Int64.logand c 63L) in
            if signed then Int64.shift_right a s
            else Int64.shift_right_logical a s))
    | Min -> b (fun a c -> if cmpv a c <= 0 then a else c)
    | Max -> b (fun a c -> if cmpv a c >= 0 then a else c)
    | Abs ->
        m (u (fun a -> if signed && Int64.compare a 0L < 0 then Int64.neg a else a))
    | Neg -> m (u Int64.neg)
    | Not -> m (u Int64.lognot)
    | Sqrt ->
        u (fun v ->
            if Int64.compare v 0L <= 0 then 0L
            else begin
              let x = ref (Int64.of_float (Float.sqrt (Int64.to_float v))) in
              while Int64.compare (Int64.mul !x !x) v > 0 do
                x := Int64.sub !x 1L
              done;
              while
                Int64.compare
                  (Int64.mul (Int64.add !x 1L) (Int64.add !x 1L)) v <= 0
              do
                x := Int64.add !x 1L
              done;
              !x
            end)
    | CmpEq -> b (fun a c -> bool_ (Int64.equal a c))
    | CmpNe -> b (fun a c -> bool_ (not (Int64.equal a c)))
    | CmpLt -> b (fun a c -> bool_ (cmpv a c < 0))
    | CmpLe -> b (fun a c -> bool_ (cmpv a c <= 0))
    | CmpGt -> b (fun a c -> bool_ (cmpv a c > 0))
    | CmpGe -> b (fun a c -> bool_ (cmpv a c >= 0))
    | Select -> (
        match args with
        | [ c; a; d ] -> if Int64.compare c 0L <> 0 then a else d
        | _ -> invalid_arg "arity")
    | Mov -> u Fun.id
  end

(* a stream value bound to a PE parameter: the array plus the current
   lane's view; scalars are constants *)
type binding =
  | Stream of int64 array
  | ScalarI of int64
  | ScalarF of float
  | Unbound
      (** parameter with no data bound (e.g. an output port of a [Seq]
          design's @main): ignored unless actually read *)

module SM = Map.Make (String)

(* globals accumulate here across all lanes *)
type gstate = (string, int64) Hashtbl.t

(* execute one PE (pipe/seq/comb leaf) over its stream bindings *)
let rec exec_pe (d : design) (g : gstate) (f : func)
    (bindings : binding list) : (string * int64 array) list =
  let bound =
    try List.combine (List.map fst f.fn_params) bindings
    with Invalid_argument _ ->
      invalid_arg
        (Printf.sprintf "Interp: @%s called with %d args, has %d params"
           f.fn_name (List.length bindings) (List.length f.fn_params))
  in
  let len =
    List.fold_left
      (fun acc (_, b) ->
        match b with Stream a -> min acc (Array.length a) | _ -> acc)
      max_int bound
  in
  let len = if len = max_int then 0 else len in
  let outs =
    List.filter_map
      (function
        | Assign { dst = Dlocal n; _ } when Conventions.is_output n ->
            Some (n, Array.make len 0L)
        | _ -> None)
      f.fn_body
  in
  for i = 0 to len - 1 do
    let env = ref SM.empty in
    List.iter
      (fun ((n, _), b) ->
        match b with
        | Stream a -> env := SM.add n a.(i) !env
        | ScalarI v -> env := SM.add n v !env
        | ScalarF fl -> env := SM.add n (Int64.bits_of_float fl) !env
        | Unbound -> ())
      (List.combine f.fn_params bindings);
    let lookup (o : operand) : int64 =
      match o with
      | Var v -> (
          match SM.find_opt v !env with
          | Some x -> x
          | None -> invalid_arg ("Interp: unbound %" ^ v))
      | Glob gn -> (
          match Hashtbl.find_opt g gn with
          | Some x -> x
          | None -> (
              match find_global d gn with
              | Some gl -> gl.g_init
              | None -> invalid_arg ("Interp: unbound @" ^ gn)))
      | Imm v -> v
      | ImmF fl -> Int64.bits_of_float fl
    in
    List.iter
      (fun (instr : instr) ->
        match instr with
        | Offset { dst; src; off; ty = _ } ->
            let v =
              match src with
              | Var s -> (
                  match List.assoc_opt s bound with
                  | Some (Stream a) ->
                      let j = i + off in
                      if j >= 0 && j < Array.length a then a.(j) else 0L
                  | Some (ScalarI v) -> v
                  | Some (ScalarF fl) -> Int64.bits_of_float fl
                  | Some Unbound | None ->
                      invalid_arg ("Interp: offset of unbound %" ^ s))
              | _ -> invalid_arg "Interp: offset source must be a parameter"
            in
            env := SM.add dst v !env
        | Assign { dst; ty; op; args } -> (
            let v = apply_op ty op (List.map lookup args) in
            match dst with
            | Dlocal n ->
                env := SM.add n v !env;
                (match List.assoc_opt n outs with
                | Some arr -> arr.(i) <- v
                | None -> ())
            | Dglobal gn -> Hashtbl.replace g gn v)
        | Call _ -> ())
      f.fn_body
  done;
  outs

(* evaluate a call argument in the caller's binding environment *)
and eval_arg (bound : (string * binding) list) (a : operand) : binding =
  match a with
  | Var v -> (
      match List.assoc_opt v bound with
      | Some b -> b
      | None -> invalid_arg ("Interp: call argument %" ^ v ^ " unbound"))
  | Glob g -> invalid_arg ("Interp: global @" ^ g ^ " as call argument")
  | Imm v -> ScalarI v
  | ImmF f -> ScalarF f

(* execute a function: leaves run elementwise; par/seq/coarse-pipe
   wrappers recurse into their calls in body order. A returning call
   ([rets] non-empty) binds its callee's leading outputs as stream values
   visible to later peers — the coarse-grained-pipeline plumbing — and
   contributes no output group itself; calls without [rets] dangle and
   their outputs become this function's output groups (lane-major). *)
and exec_func (d : design) (g : gstate) (f : func) (bindings : binding list)
    : (string * int64 array) list list =
  let has_calls =
    List.exists (function Call _ -> true | _ -> false) f.fn_body
  in
  if not has_calls then [ exec_pe d g f bindings ]
  else begin
    let bound = ref (List.combine (List.map fst f.fn_params) bindings) in
    List.concat_map
      (fun (instr : instr) ->
        match instr with
        | Call { callee; args; rets; _ } ->
            let cf = find_func_exn d callee in
            let groups =
              exec_func d g cf (List.map (eval_arg !bound) args)
            in
            if rets = [] then groups
            else begin
              let flat = List.concat groups in
              List.iteri
                (fun i r ->
                  match List.nth_opt flat i with
                  | Some (_, arr) -> bound := (r, Stream arr) :: !bound
                  | None ->
                      invalid_arg
                        (Printf.sprintf
                           "Interp: call to @%s binds %d results but only %d \
                            outputs flowed"
                           callee (List.length rets) (List.length flat)))
                rets;
              (* outputs beyond the bound prefix still dangle *)
              [ List.filteri (fun i _ -> i >= List.length rets) flat ]
              |> List.filter (fun l -> l <> [])
            end
        | _ -> [])
      f.fn_body
  end

(** [run d env] — execute design [d] on the [env] input binding (one
    array per [IStream] port of [@main], keyed by port name). *)
let run (d : design) (env : env) : result =
  let main = main_func d in
  let g : gstate = Hashtbl.create 4 in
  List.iter (fun gl -> Hashtbl.replace g gl.g_name gl.g_init) d.d_globals;
  let bindings =
    List.map
      (fun (pname, _ty) ->
        match List.assoc_opt pname env with
        | Some a -> Stream a
        | None ->
            (* unbound params: output-port placeholders; reads fail,
               stream-length computation ignores them *)
            Unbound)
      main.fn_params
  in
  (* replace placeholder bindings for parameters that are not IStream
     ports: output ports get empty streams (never read); scalars, if any,
     stay as empty streams unless bound *)
  let pe_outs = exec_func d g main bindings in
  (* map PE outputs lane-major onto OStream ports *)
  let oports =
    List.filter (fun (p : port) -> p.pt_dir = OStream) d.d_ports
  in
  let flat_outs = List.concat pe_outs in
  let n_pe_groups = List.length pe_outs in
  let outs_per_lane =
    if n_pe_groups = 0 then 0 else List.length (List.hd pe_outs)
  in
  ignore outs_per_lane;
  let ir_outputs =
    if List.length flat_outs = List.length oports then
      List.map2
        (fun (p : port) (_, arr) -> (p.pt_fun ^ "." ^ p.pt_port, arr))
        oports flat_outs
    else
      (* fall back to PE-local names when shapes disagree *)
      List.mapi (fun i (n, arr) -> (Printf.sprintf "%s#%d" n i, arr)) flat_outs
  in
  {
    ir_outputs;
    ir_globals =
      List.map (fun gl -> (gl.g_name, Hashtbl.find g gl.g_name)) d.d_globals;
  }

(** Convenience: concatenate the per-lane output arrays of the same
    logical output (lane-major), recovering the full index space of the
    baseline program. [nth] selects which of the kernel's outputs (0 for
    single-output kernels). *)
let gathered_output (_d : design) (r : result) ~(outputs_per_lane : int)
    ~(nth : int) : int64 array =
  let arrays =
    List.filteri
      (fun i _ -> i mod outputs_per_lane = nth)
      (List.map snd r.ir_outputs)
  in
  Array.concat arrays
