(** Pretty-printer emitting the textual [.tirl] concrete syntax.

    The output parses back with {!Parser.parse} to a structurally equal
    design (round-trip property, checked by qcheck in the test suite). *)

open Ast

(* Shortest decimal representation that round-trips and lexes as a float
   (i.e. contains '.' or an exponent). *)
let float_lit f =
  let s = Printf.sprintf "%.17g" f in
  let s = if float_of_string s = f then s else Printf.sprintf "%.17e" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let pp_operand fmt = function
  | Var s -> Format.fprintf fmt "%%%s" s
  | Glob s -> Format.fprintf fmt "@@%s" s
  | Imm i -> Format.fprintf fmt "%Ld" i
  | ImmF f -> Format.pp_print_string fmt (float_lit f)

let operand_to_string o = Format.asprintf "%a" pp_operand o

let pp_mem fmt (m : mem_obj) =
  Format.fprintf fmt "%%%s = memobj %s %s size %d" m.mo_name
    (space_to_string m.mo_space) (Ty.to_string m.mo_ty) m.mo_size

let pp_stream fmt (s : stream_obj) =
  Format.fprintf fmt "%%%s = stream %s %%%s pattern %s" s.so_name
    (dir_to_string s.so_dir) s.so_mem
    (pattern_to_string s.so_pattern)

let pp_port fmt (p : port) =
  let pat =
    match p.pt_pattern with
    | Cont -> "!cont"
    | Random -> "!random"
    | Strided s -> Printf.sprintf "!strided %d" s
  in
  Format.fprintf fmt "@@%s.%s = addrspace(%d) %s !%s %s !%d !%s" p.pt_fun
    p.pt_port (space_level p.pt_space) (Ty.to_string p.pt_ty)
    (dir_to_string p.pt_dir) pat p.pt_base_off p.pt_stream

let pp_global fmt (g : global) =
  Format.fprintf fmt "@@%s = global %s init %Ld" g.g_name
    (Ty.to_string g.g_ty) g.g_init

let pp_instr fmt = function
  | Offset { dst; ty; src; off } ->
      Format.fprintf fmt "%%%s = offset %s %a, %s%d" dst (Ty.to_string ty)
        pp_operand src
        (if off >= 0 then "+" else "")
        off
  | Assign { dst; ty; op; args } ->
      let d =
        match dst with Dlocal s -> "%" ^ s | Dglobal s -> "@" ^ s
      in
      Format.fprintf fmt "%s = %s %s %s" d (op_to_string op)
        (Ty.to_string ty)
        (String.concat ", " (List.map operand_to_string args))
  | Call { callee; args; kind; rets } ->
      let prefix =
        match rets with
        | [] -> ""
        | rs -> String.concat ", " (List.map (fun r -> "%" ^ r) rs) ^ " = "
      in
      Format.fprintf fmt "%scall @@%s (%s) %s" prefix callee
        (String.concat ", " (List.map operand_to_string args))
        (kind_to_string kind)

let pp_func fmt (f : func) =
  let params =
    String.concat ", "
      (List.map
         (fun (n, t) -> Printf.sprintf "%s %%%s" (Ty.to_string t) n)
         f.fn_params)
  in
  Format.fprintf fmt "define void @@%s (%s) %s {@\n" f.fn_name params
    (kind_to_string f.fn_kind);
  List.iter (fun i -> Format.fprintf fmt "  %a@\n" pp_instr i) f.fn_body;
  Format.fprintf fmt "}"

let pp_design fmt (d : design) =
  Format.fprintf fmt "; design: %s@\n" d.d_name;
  if d.d_mems <> [] || d.d_streams <> [] || d.d_ports <> [] then
    Format.fprintf fmt "; **** MANAGE-IR ****@\n";
  List.iter (fun m -> Format.fprintf fmt "%a@\n" pp_mem m) d.d_mems;
  List.iter (fun s -> Format.fprintf fmt "%a@\n" pp_stream s) d.d_streams;
  List.iter (fun p -> Format.fprintf fmt "%a@\n" pp_port p) d.d_ports;
  List.iter (fun g -> Format.fprintf fmt "%a@\n" pp_global g) d.d_globals;
  Format.fprintf fmt "; **** COMPUTE-IR ****@\n";
  List.iter (fun f -> Format.fprintf fmt "%a@\n" pp_func f) d.d_funcs

let design_to_string d = Format.asprintf "%a" pp_design d
let instr_to_string i = Format.asprintf "%a" pp_instr i
let func_to_string f = Format.asprintf "%a" pp_func f

(** Write a design to a [.tirl] file. *)
let write_file path d =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (design_to_string d))
