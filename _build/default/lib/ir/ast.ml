(** Abstract syntax of the TyTra-IR.

    A design has two components (paper §IV):

    - the {e Manage-IR}: memory objects (sources/sinks of streams — the
      equivalent of arrays in main memory), stream objects connecting a
      streaming port of a processing element to a memory object, and port
      declarations binding kernel arguments to streams;
    - the {e Compute-IR}: a hierarchy of IR functions, each carrying a
      parallelism keyword ([pipe]/[par]/[seq]/[comb]), whose bodies are
      SSA instructions, stream-offset definitions and calls. *)

(** Parallelism pattern of an IR function (paper §IV). *)
type kind =
  | Pipe  (** pipeline parallelism: one result per cycle in steady state *)
  | Par   (** thread parallelism: children execute concurrently *)
  | Seq   (** sequential execution of the body *)
  | Comb  (** custom single-cycle combinatorial block *)
[@@deriving show { with_path = false }, eq, ord]

let kind_to_string = function
  | Pipe -> "pipe" | Par -> "par" | Seq -> "seq" | Comb -> "comb"

(** Memory-hierarchy level, with the paper's numbering (Fig 4):
    private = 0, global = 1, local = 2, constant = 3. *)
type space = Private | Global | Local | Constant
[@@deriving show { with_path = false }, eq, ord]

let space_level = function
  | Private -> 0 | Global -> 1 | Local -> 2 | Constant -> 3

let space_of_level = function
  | 0 -> Some Private | 1 -> Some Global | 2 -> Some Local | 3 -> Some Constant
  | _ -> None

let space_to_string = function
  | Private -> "private" | Global -> "global"
  | Local -> "local" | Constant -> "constant"

(** Streaming-data access pattern (paper §III-6): the prototype model
    considers contiguous and constant-stride access; we additionally model
    pseudo-random access, which the paper measured to behave like strided
    access. *)
type pattern = Cont | Strided of int | Random
[@@deriving show { with_path = false }, eq, ord]

let pattern_to_string = function
  | Cont -> "cont"
  | Strided s -> Printf.sprintf "strided %d" s
  | Random -> "random"

(** Stream direction, from the processing element's point of view. *)
type dir = IStream | OStream
[@@deriving show { with_path = false }, eq, ord]

let dir_to_string = function IStream -> "istream" | OStream -> "ostream"

(** Manage-IR: a memory object — any entity that can source or sink a
    stream; typically an array in device DRAM ([Global]) or an on-chip
    block-RAM buffer ([Local]). [mo_size] is in elements of [mo_ty]. *)
type mem_obj = {
  mo_name : string;
  mo_space : space;
  mo_ty : Ty.t;
  mo_size : int;
}
[@@deriving show { with_path = false }, eq]

(** Manage-IR: a stream object connecting a port to a memory object. *)
type stream_obj = {
  so_name : string;
  so_dir : dir;
  so_mem : string;       (** name of the backing memory object *)
  so_pattern : pattern;
}
[@@deriving show { with_path = false }, eq]

(** Manage-IR: a port declaration
    [@f.p = addrspace(N) ty !dir !pattern !offset !streamobj],
    binding argument [pt_port] of function [pt_fun] to stream
    [pt_stream]. *)
type port = {
  pt_fun : string;
  pt_port : string;
  pt_space : space;
  pt_ty : Ty.t;
  pt_dir : dir;
  pt_pattern : pattern;
  pt_base_off : int;
  pt_stream : string;
}
[@@deriving show { with_path = false }, eq]

(** An operand of an SSA instruction. *)
type operand =
  | Var of string    (** local SSA value or function parameter, [%x] *)
  | Glob of string   (** global (design-level) value, [@x] *)
  | Imm of int64     (** integer immediate *)
  | ImmF of float    (** floating-point immediate *)
[@@deriving show { with_path = false }, eq, ord]

(** Primitive operations of the Compute-IR datapath. The same constructor
    is used for integer and floating-point variants; the instruction's type
    disambiguates (and costs differently, §V-A). *)
type op =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr
  | Min | Max | Abs | Neg | Not | Sqrt
  | CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe
  | Select  (** 3-ary multiplexer: [select c, a, b] *)
  | Mov     (** register copy / width adjustment *)
[@@deriving show { with_path = false }, eq, ord]

let op_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Min -> "min" | Max -> "max" | Abs -> "abs" | Neg -> "neg" | Not -> "not"
  | Sqrt -> "sqrt"
  | CmpEq -> "cmpeq" | CmpNe -> "cmpne" | CmpLt -> "cmplt"
  | CmpLe -> "cmple" | CmpGt -> "cmpgt" | CmpGe -> "cmpge"
  | Select -> "select" | Mov -> "mov"

let op_of_string = function
  | "add" -> Some Add | "sub" -> Some Sub | "mul" -> Some Mul
  | "div" -> Some Div | "rem" -> Some Rem
  | "and" -> Some And | "or" -> Some Or | "xor" -> Some Xor
  | "shl" -> Some Shl | "shr" -> Some Shr
  | "min" -> Some Min | "max" -> Some Max | "abs" -> Some Abs
  | "neg" -> Some Neg | "not" -> Some Not | "sqrt" -> Some Sqrt
  | "cmpeq" -> Some CmpEq | "cmpne" -> Some CmpNe | "cmplt" -> Some CmpLt
  | "cmple" -> Some CmpLe | "cmpgt" -> Some CmpGt | "cmpge" -> Some CmpGe
  | "select" -> Some Select | "mov" -> Some Mov
  | _ -> None

(** Destination of an assignment: a fresh SSA local, or a design-global
    accumulator (the paper's reduction idiom,
    [@sorErrAcc = add ui18 %sorErr, @sorErrAcc]). *)
type dest = Dlocal of string | Dglobal of string
[@@deriving show { with_path = false }, eq, ord]

let dest_name = function Dlocal s | Dglobal s -> s

(** A Compute-IR instruction. *)
type instr =
  | Offset of { dst : string; ty : Ty.t; src : operand; off : int }
      (** stream offset: [%pip1 = offset ui18 %p, +1] — creates a stream
          whose element [i] is element [i + off] of [src] (paper Fig 12,
          lines 6–9). Negative offsets look backwards in the stream. *)
  | Assign of { dst : dest; ty : Ty.t; op : op; args : operand list }
      (** SSA assignment: [%1 = mul ui18 %pip1, %cn2l] *)
  | Call of {
      callee : string;
      args : operand list;
      kind : kind;
      rets : string list;
          (** stream values produced by the callee, bound positionally to
              its [out_*] outputs — the peer-to-peer plumbing of
              coarse-grained pipelines (paper Fig 7, configurations 3–4):
              [%s1 = call @pipeA (%x) pipe]. Empty for leaf calls whose
              outputs leave through ports. *)
    }
      (** instantiation of a child IR function with the given
          parallelism pattern: [call @f0 (...) pipe] *)
[@@deriving show { with_path = false }, eq]

(** A Compute-IR function — equivalent to an HDL module, but at higher
    abstraction, with a parallelism keyword. *)
type func = {
  fn_name : string;
  fn_params : (string * Ty.t) list;
  fn_kind : kind;
  fn_body : instr list;
}
[@@deriving show { with_path = false }, eq]

(** Design-level global values (reduction accumulators). *)
type global = { g_name : string; g_ty : Ty.t; g_init : int64 }
[@@deriving show { with_path = false }, eq]

(** A complete TyTra-IR design: Manage-IR + Compute-IR. *)
type design = {
  d_name : string;
  d_mems : mem_obj list;
  d_streams : stream_obj list;
  d_ports : port list;
  d_globals : global list;
  d_funcs : func list;
}
[@@deriving show { with_path = false }, eq]

let empty_design name =
  { d_name = name; d_mems = []; d_streams = []; d_ports = [];
    d_globals = []; d_funcs = [] }

(** {2 Lookups} *)

let find_func d name = List.find_opt (fun f -> f.fn_name = name) d.d_funcs
let find_mem d name = List.find_opt (fun m -> m.mo_name = name) d.d_mems
let find_stream d name = List.find_opt (fun s -> s.so_name = name) d.d_streams
let find_global d name = List.find_opt (fun g -> g.g_name = name) d.d_globals

let find_func_exn d name =
  match find_func d name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "no function @%s in design %s" name d.d_name)

let find_mem_exn d name =
  match find_mem d name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "no memory object %%%s in design %s" name d.d_name)

let find_stream_exn d name =
  match find_stream d name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "no stream object %%%s in design %s" name d.d_name)

(** Ports declared for function [fname]. *)
let ports_of d fname = List.filter (fun p -> p.pt_fun = fname) d.d_ports

(** The top-level function. By convention a design's entry point is
    [@main]. *)
let main_func d = find_func_exn d "main"

(** Result type of an operation at operand type [ty]: comparisons
    produce [Bool]. *)
let result_ty (op : op) (ty : Ty.t) : Ty.t =
  match op with
  | CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe -> Ty.Bool
  | _ -> ty

(** The streamed outputs of a function: its [out_*]-named SSA values with
    their types, in body order (see {!Conventions}). *)
let func_outputs (f : func) : (string * Ty.t) list =
  List.filter_map
    (function
      | Assign { dst = Dlocal n; ty; op; _ } when Conventions.is_output n ->
          Some (n, result_ty op ty)
      | _ -> None)
    f.fn_body

(** [arity op] is the number of operands [op] expects. *)
let arity = function
  | Select -> 3
  | Abs | Neg | Not | Sqrt | Mov -> 1
  | _ -> 2

(** Whether an instruction writes a design-global accumulator. *)
let is_reduction = function
  | Assign { dst = Dglobal _; _ } -> true
  | _ -> false

(** Fold over all instructions of a function subtree rooted at [fn],
    visiting callee bodies too (each call site contributes one traversal
    of its callee). *)
let rec fold_instrs d fn acc f =
  List.fold_left
    (fun acc i ->
      let acc = f acc fn i in
      match i with
      | Call { callee; _ } -> (
          match find_func d callee with
          | Some g -> fold_instrs d g acc f
          | None -> acc)
      | _ -> acc)
    acc fn.fn_body
