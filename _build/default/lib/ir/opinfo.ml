(** Per-operation micro-architectural metadata.

    Latency and initiation interval of each primitive functional unit, as a
    function of operand type. These numbers model fully pipelined FPGA
    functional units: every unit has initiation interval 1 (one operation
    per cycle in steady state), so pipeline throughput is set by stream
    supply, not by the units; latency contributes to the kernel pipeline
    depth [KPD] (paper Table I). The values are representative of
    Stratix-V / Virtex-7 class fabrics and are fixed per-device via the
    device description. *)

(** [latency op ty] is the number of pipeline stages of the functional
    unit implementing [op] at type [ty]. *)
let latency (op : Ast.op) (ty : Ty.t) : int =
  let w = Ty.width ty in
  match op with
  | Add | Sub -> if Ty.is_float ty then 7 else if w > 32 then 2 else 1
  | Mul -> if Ty.is_float ty then 5 else if w <= 18 then 3 else 4
  | Div | Rem ->
      (* radix-2 restoring divider: one stage per result bit, fully
         pipelined; float dividers similar depth *)
      if Ty.is_float ty then (if w = 32 then 16 else 30) else max 2 w
  | Sqrt -> if Ty.is_float ty then 16 else max 2 (w / 2)
  | And | Or | Xor | Not -> 1
  | Shl | Shr -> 1
  | Min | Max | Abs | Neg -> 1
  | CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe -> 1
  | Select -> 1
  | Mov -> 0

(** All ops are fully pipelined: initiation interval 1. Kept as a function
    so a device description could override (e.g. an iterative divider). *)
let initiation_interval (_ : Ast.op) (_ : Ty.t) : int = 1

(** Whether the unit can be absorbed into routing/LUT inputs at no cost
    (pure wiring). *)
let is_free = function Ast.Mov -> true | _ -> false

(** Rough relative area class, used by the scheduler's tie-breaking and by
    documentation; real area comes from the cost model / tech mapper. *)
type area_class = Trivial | Small | Medium | Large

let area_class (op : Ast.op) (ty : Ty.t) : area_class =
  match op with
  | Mov -> Trivial
  | And | Or | Xor | Not | Shl | Shr -> Small
  | CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe | Select | Min | Max
  | Abs | Neg -> Small
  | Add | Sub -> if Ty.is_float ty then Large else Small
  | Mul -> if Ty.is_float ty then Large else Medium
  | Div | Rem | Sqrt -> Large
