(** Cross-layer naming conventions for generated IR.

    The lowering pass, the Verilog emitter and the interpreter agree on
    one convention: a processing element's streamed outputs are its SSA
    locals whose names begin with ["out"]; the matching [OStream] ports of
    [@main] are prefixed ["o_"] and declared lane-major, inputs before
    outputs within each lane. *)

(** Is [n] a PE output value name? *)
let is_output (n : string) : bool =
  String.length n >= 3 && String.sub n 0 3 = "out"

(** The OStream port name for kernel output [name]. *)
let output_port_name (name : string) : string = "o_" ^ name
