(** The TyTra primitive cores' library (paper Fig 11, "Import: primitive
    cores used").

    Parameterized synthesizable Verilog for the units the datapath emitter
    instantiates rather than inlines: the pipelined divider and square
    root, the BRAM-backed stream window (offset buffer), and a small
    synchronous FIFO used by the stream-control blocks. *)

(** Pipelined restoring divider, one stage per quotient bit. *)
let div_pipe =
  {|
// tytra_div_pipe: fully pipelined restoring divider, II=1, latency=WIDTH.
module tytra_div_pipe #(parameter WIDTH = 18) (
  input  wire                clk,
  input  wire                rst,
  input  wire [WIDTH-1:0]    num,
  input  wire [WIDTH-1:0]    den,
  output wire [WIDTH-1:0]    quo
);
  reg [WIDTH-1:0] q   [0:WIDTH-1];
  reg [WIDTH:0]   rem [0:WIDTH-1];
  reg [WIDTH-1:0] d   [0:WIDTH-1];
  integer i;
  // stage 0 seeds from the inputs; stage i computes quotient bit WIDTH-1-i.
  wire [WIDTH:0] r0 = {{WIDTH{1'b0}}, num[WIDTH-1]};
  always @(posedge clk) begin
    if (rst) begin
      for (i = 0; i < WIDTH; i = i + 1) begin
        q[i] <= 0; rem[i] <= 0; d[i] <= 0;
      end
    end else begin
      d[0]   <= den;
      q[0]   <= (r0 >= {1'b0, den}) ? 1'b1 : 1'b0;
      rem[0] <= (r0 >= {1'b0, den}) ? r0 - {1'b0, den} : r0;
      for (i = 1; i < WIDTH; i = i + 1) begin : stages
        d[i] <= d[i-1];
        if ({rem[i-1][WIDTH-1:0], num[WIDTH-1-i]} >= {1'b0, d[i-1]}) begin
          q[i]   <= {q[i-1][WIDTH-2:0], 1'b1};
          rem[i] <= {rem[i-1][WIDTH-1:0], num[WIDTH-1-i]} - {1'b0, d[i-1]};
        end else begin
          q[i]   <= {q[i-1][WIDTH-2:0], 1'b0};
          rem[i] <= {rem[i-1][WIDTH-1:0], num[WIDTH-1-i]};
        end
      end
    end
  end
  assign quo = q[WIDTH-1];
endmodule
|}

(** Pipelined non-restoring integer square root. *)
let sqrt_pipe =
  {|
// tytra_sqrt_pipe: pipelined integer square root, II=1, latency=WIDTH/2.
module tytra_sqrt_pipe #(parameter WIDTH = 18) (
  input  wire               clk,
  input  wire               rst,
  input  wire [WIDTH-1:0]   x,
  output reg  [WIDTH/2-1:0] root
);
  localparam STAGES = WIDTH / 2;
  reg [WIDTH-1:0]   rem  [0:STAGES-1];
  reg [WIDTH/2-1:0] r    [0:STAGES-1];
  integer i;
  always @(posedge clk) begin
    if (rst) begin
      for (i = 0; i < STAGES; i = i + 1) begin rem[i] <= 0; r[i] <= 0; end
      root <= 0;
    end else begin
      rem[0] <= x; r[0] <= 0;
      for (i = 1; i < STAGES; i = i + 1) begin : stages
        if (rem[i-1] >= ({r[i-1], 2'b01} << (2*(STAGES-1-i)))) begin
          rem[i] <= rem[i-1] - ({r[i-1], 2'b01} << (2*(STAGES-1-i)));
          r[i]   <= {r[i-1][WIDTH/2-2:0], 1'b1};
        end else begin
          rem[i] <= rem[i-1];
          r[i]   <= {r[i-1][WIDTH/2-2:0], 1'b0};
        end
      end
      root <= r[STAGES-1];
    end
  end
endmodule
|}

(** BRAM-backed stream window with registered taps (offset buffer). *)
let stream_window =
  {|
// tytra_stream_window: a DEPTH-deep window over a stream; tap addresses
// are relative to the oldest element. Maps to block RAM above the
// register threshold.
module tytra_stream_window #(parameter WIDTH = 18, parameter DEPTH = 16) (
  input  wire             clk,
  input  wire             rst,
  input  wire             en,
  input  wire [WIDTH-1:0] din,
  output wire [WIDTH-1:0] oldest,
  output wire [WIDTH-1:0] newest
);
  reg [WIDTH-1:0] buf_ [0:DEPTH-1];
  integer i;
  always @(posedge clk) begin
    if (rst) begin
      for (i = 0; i < DEPTH; i = i + 1) buf_[i] <= 0;
    end else if (en) begin
      buf_[0] <= din;
      for (i = 1; i < DEPTH; i = i + 1) buf_[i] <= buf_[i-1];
    end
  end
  assign newest = buf_[0];
  assign oldest = buf_[DEPTH-1];
endmodule
|}

(** Small synchronous FIFO for the stream-control blocks. *)
let sync_fifo =
  {|
// tytra_sync_fifo: synchronous FIFO with registered output.
module tytra_sync_fifo #(parameter WIDTH = 18, parameter LOG2DEPTH = 4) (
  input  wire             clk,
  input  wire             rst,
  input  wire             wr_en,
  input  wire [WIDTH-1:0] din,
  input  wire             rd_en,
  output reg  [WIDTH-1:0] dout,
  output wire             empty,
  output wire             full
);
  localparam DEPTH = 1 << LOG2DEPTH;
  reg [WIDTH-1:0] mem [0:DEPTH-1];
  reg [LOG2DEPTH:0] wptr, rptr;
  assign empty = (wptr == rptr);
  assign full  = (wptr - rptr) == DEPTH[LOG2DEPTH:0];
  always @(posedge clk) begin
    if (rst) begin
      wptr <= 0; rptr <= 0; dout <= 0;
    end else begin
      if (wr_en && !full) begin
        mem[wptr[LOG2DEPTH-1:0]] <= din;
        wptr <= wptr + 1'b1;
      end
      if (rd_en && !empty) begin
        dout <= mem[rptr[LOG2DEPTH-1:0]];
        rptr <= rptr + 1'b1;
      end
    end
  end
endmodule
|}

(** Which primitive cores a design needs, given the ops it uses. *)
type need = { need_div : bool; need_sqrt : bool; need_window : bool }

let library ~(need : need) : string =
  String.concat "\n"
    (List.filter_map Fun.id
       [
         (if need.need_div then Some div_pipe else None);
         (if need.need_sqrt then Some sqrt_pipe else None);
         (if need.need_window then Some stream_window else None);
         Some sync_fifo;
       ])
