(** Pipeline scheduling of Compute-IR SSA instructions.

    The back-end compiler schedules the SSA instructions of a [pipe]
    function into pipeline stages, creates data and control delay lines,
    and connects functional units in a pipeline (paper Fig 11, "Generate
    core-compute"). The same schedule drives the Verilog emitter, the
    register accounting of the tech-mapper, and the [KPD] pipeline-depth
    figure of the cost model.

    Scheduling is ASAP over the SSA dataflow graph: an operation starts as
    soon as all its operands are available; its result appears
    {!Tytra_ir.Opinfo.latency} cycles later. Every producer→consumer edge
    whose consumer starts later than the producer finishes requires a
    delay line; consumers at different stages share one tapped line per
    producer. *)

open Tytra_ir

(** One scheduled datapath operation. *)
type slot = {
  sl_instr : Ast.instr;
  sl_start : int;    (** cycle (stage) at which operands are consumed *)
  sl_finish : int;   (** cycle at which the result is available *)
}

(** A scheduled pipeline for one function. *)
type t = {
  sc_func : string;
  sc_slots : slot list;
  sc_depth : int;
      (** pipeline depth: cycle at which the last result is available *)
  sc_delay_regs : int;
      (** registers spent on data delay lines (bits) *)
  sc_stage_regs : int;
      (** registers inside functional-unit output stages (bits) *)
  sc_values : (string * int) list;
      (** availability cycle of every named value *)
}

module SM = Map.Make (String)

type producer = { p_ready : int; p_width : int; p_last_use : int }

(** [schedule_func d f] schedules the body of [f]. Only [Assign] and
    [Offset] instructions take part; [Call]s are scheduled by composition
    (see {!schedule_lane}). Offsets are available at cycle 0 — their
    buffering happens upstream of the datapath (offset buffers, costed
    separately). *)
let schedule_func (_d : Ast.design) (f : Ast.func) : t =
  let producers : producer SM.t ref = ref SM.empty in
  let declare name ~ready ~width =
    producers := SM.add name { p_ready = ready; p_width = width; p_last_use = ready } !producers
  in
  (* parameters and offsets available at cycle 0 *)
  List.iter (fun (n, ty) -> declare n ~ready:0 ~width:(Ty.width ty)) f.fn_params;
  let use name at =
    match SM.find_opt name !producers with
    | None -> 0
    | Some p ->
        producers :=
          SM.add name { p with p_last_use = max p.p_last_use at } !producers;
        p.p_ready
  in
  let ready_of at = function
    | Ast.Var v -> use v at
    | Ast.Glob _ | Ast.Imm _ | Ast.ImmF _ -> 0
  in
  let slots =
    List.filter_map
      (fun (i : Ast.instr) ->
        match i with
        | Ast.Offset { dst; ty; _ } ->
            declare dst ~ready:0 ~width:(Ty.width ty);
            Some { sl_instr = i; sl_start = 0; sl_finish = 0 }
        | Ast.Assign { dst; ty; op; args } ->
            (* two passes: first compute start from operand readiness,
               then record last-use at that start cycle *)
            let start =
              List.fold_left
                (fun a o ->
                  max a
                    (match o with
                    | Ast.Var v -> (
                        match SM.find_opt v !producers with
                        | Some p -> p.p_ready
                        | None -> 0)
                    | _ -> 0))
                0 args
            in
            List.iter (fun o -> ignore (ready_of start o)) args;
            let fin = start + Opinfo.latency op ty in
            let w =
              match op with
              | Ast.CmpEq | Ast.CmpNe | Ast.CmpLt | Ast.CmpLe | Ast.CmpGt
              | Ast.CmpGe -> 1
              | _ -> Ty.width ty
            in
            (match dst with
            | Ast.Dlocal n -> declare n ~ready:fin ~width:w
            | Ast.Dglobal _ -> ());
            Some { sl_instr = i; sl_start = start; sl_finish = fin }
        | Ast.Call _ -> None)
      f.fn_body
  in
  let depth = List.fold_left (fun a s -> max a s.sl_finish) 0 slots in
  (* data delay lines: one tapped register chain per producer, long enough
     to reach its latest consumer *)
  let delay_regs =
    SM.fold
      (fun _ p acc ->
        let span = max 0 (p.p_last_use - p.p_ready) in
        acc + (span * p.p_width))
      !producers 0
  in
  (* functional-unit internal stage registers: latency × result width *)
  let stage_regs =
    List.fold_left
      (fun acc s ->
        match s.sl_instr with
        | Ast.Assign { ty; op; _ } ->
            let w =
              match op with
              | Ast.CmpEq | Ast.CmpNe | Ast.CmpLt | Ast.CmpLe | Ast.CmpGt
              | Ast.CmpGe -> 1
              | _ -> Ty.width ty
            in
            acc + (Opinfo.latency op ty * w)
        | _ -> acc)
      0 slots
  in
  let values =
    SM.fold (fun n p acc -> (n, p.p_ready) :: acc) !producers []
  in
  {
    sc_func = f.fn_name;
    sc_slots = slots;
    sc_depth = depth;
    sc_delay_regs = delay_regs;
    sc_stage_regs = stage_regs;
    sc_values = values;
  }

(** [schedule_lane d pes] — serial composition of the PEs forming one lane
    of a (possibly coarse-grained) pipeline: total depth is the sum, and
    register costs accumulate. *)
let schedule_lane (d : Ast.design) (pes : Ast.func list) : t =
  let scheds = List.map (schedule_func d) pes in
  match scheds with
  | [] ->
      { sc_func = "<empty>"; sc_slots = []; sc_depth = 0; sc_delay_regs = 0;
        sc_stage_regs = 0; sc_values = [] }
  | first :: _ ->
      List.fold_left
        (fun acc s ->
          {
            acc with
            sc_slots = acc.sc_slots @ s.sc_slots;
            sc_depth = acc.sc_depth + s.sc_depth;
            sc_delay_regs = acc.sc_delay_regs + s.sc_delay_regs;
            sc_stage_regs = acc.sc_stage_regs + s.sc_stage_regs;
          })
        { first with sc_func = String.concat "+" (List.map (fun f -> f.Ast.fn_name) pes) }
        (List.tl scheds)

(** Stages grouped by start cycle, for display and for the Verilog
    emitter's stage-by-stage code layout. *)
let by_stage (t : t) : (int * slot list) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let l = try Hashtbl.find tbl s.sl_start with Not_found -> [] in
      Hashtbl.replace tbl s.sl_start (s :: l))
    t.sc_slots;
  Hashtbl.fold (fun k v acc -> (k, List.rev v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp fmt (t : t) =
  Format.fprintf fmt "schedule %s: depth=%d delay-regs=%d stage-regs=%d@\n"
    t.sc_func t.sc_depth t.sc_delay_regs t.sc_stage_regs;
  List.iter
    (fun (stage, slots) ->
      Format.fprintf fmt "  [%3d] %s@\n" stage
        (String.concat " | "
           (List.map (fun s -> Tytra_ir.Pprint.instr_to_string s.sl_instr) slots)))
    (by_stage t)
