lib/hdl/verilog.ml: Ast Buffer Config_tree Filename Fun Hashtbl Int64 List Map Opinfo Primitives Printf Schedule String Ty Tytra_ir
