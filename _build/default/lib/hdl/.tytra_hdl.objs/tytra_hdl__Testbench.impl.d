lib/hdl/testbench.ml: Array Ast Buffer Config_tree Conventions Filename Fun Int64 Interp List Printf Schedule String Ty Tytra_ir Verilog
