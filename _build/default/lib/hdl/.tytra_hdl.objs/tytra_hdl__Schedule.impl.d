lib/hdl/schedule.ml: Ast Format Hashtbl List Map Opinfo String Ty Tytra_ir
