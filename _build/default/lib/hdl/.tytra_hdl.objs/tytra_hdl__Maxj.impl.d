lib/hdl/maxj.ml: Ast Buffer Char List Printf String Ty Tytra_ir Verilog
