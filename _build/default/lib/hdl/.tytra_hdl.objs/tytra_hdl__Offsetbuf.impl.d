lib/hdl/offsetbuf.ml: Ast Format Hashtbl List Ty Tytra_ir
