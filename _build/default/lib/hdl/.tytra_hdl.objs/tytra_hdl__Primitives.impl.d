lib/hdl/primitives.ml: Fun List String
