(** Synthesizable-Verilog emitter for TyTra-IR designs (paper Fig 11,
    yellow path: core generation, custom combinatorial blocks, pipeline
    core-compute, compute unit and configuration include file).

    Conventions:
    - one Verilog module per processing element ([pipe] leaf function);
    - a PE's outputs are its SSA locals whose names begin with ["out"]
      (the lowering pass follows this convention);
    - offset windows become inline tapped shift registers;
    - [div]/[sqrt] instantiate primitive cores from
      {!Primitives}; everything else is inlined RTL with explicit stage
      registers, laid out according to the ASAP {!Schedule}. *)

open Tytra_ir

let sanitize s =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '_'
      then c
      else '_')
    s

let is_output_name n =
  String.length n >= 3 && String.sub n 0 3 = "out"

let w_decl ty = Printf.sprintf "[%d:0]" (Ty.width ty - 1)

let signed_kw ty = if Ty.is_signed ty then " signed" else ""

type ctx = {
  buf : Buffer.t;
  mutable used_div : bool;
  mutable used_sqrt : bool;
  mutable used_window : bool;
}

let line ctx fmt = Printf.ksprintf (fun s -> Buffer.add_string ctx.buf s;
                                     Buffer.add_char ctx.buf '\n') fmt

(* ---------------------------------------------------------------- *)
(* Per-PE module                                                     *)
(* ---------------------------------------------------------------- *)

module SM = Map.Make (String)

(* window info per base stream: (lo, hi, width) *)
let windows_of (f : Ast.func) =
  List.fold_left
    (fun acc (i : Ast.instr) ->
      match i with
      | Ast.Offset { src = Ast.Var base; off; ty; _ } ->
          let lo, hi, w =
            match SM.find_opt base acc with
            | Some (lo, hi, w) -> (min lo off, max hi off, w)
            | None -> (min 0 off, max 0 off, Ty.width ty)
          in
          SM.add base (lo, hi, w) acc
      | _ -> acc)
    SM.empty f.fn_body

let operand_base = function
  | Ast.Var v -> sanitize v
  | Ast.Glob g -> "acc_" ^ sanitize g
  | Ast.Imm i -> Int64.to_string i
  | Ast.ImmF f -> Printf.sprintf "/* float */ %f" f

(* The signal carrying value [name] as produced (before alignment). *)
let produced_signal windows name =
  match SM.find_opt name windows with
  | Some (lo, hi, _) ->
      (* the "current" element of a windowed stream is tap [hi - 0] *)
      ignore lo;
      Printf.sprintf "win_%s[%d]" (sanitize name) hi
  | None -> sanitize name

let emit_pe (ctx : ctx) (d : Ast.design) (f : Ast.func) : unit =
  let sched = Schedule.schedule_func d f in
  let windows = windows_of f in
  let ready = List.fold_left (fun m (n, t) -> SM.add n t m) SM.empty
      sched.Schedule.sc_values in
  let outs =
    List.filter_map
      (function
        | Ast.Assign { dst = Ast.Dlocal n; ty; op; _ } when is_output_name n ->
            let rty = match op with
              | Ast.CmpEq | Ast.CmpNe | Ast.CmpLt | Ast.CmpLe | Ast.CmpGt
              | Ast.CmpGe -> Ty.Bool
              | _ -> ty
            in
            Some (n, rty)
        | _ -> None)
      f.fn_body
  in
  let mname = sanitize (d.d_name ^ "_" ^ f.fn_name) in
  line ctx "// Processing element %s (kind: %s), pipeline depth %d"
    f.fn_name (Ast.kind_to_string f.fn_kind) sched.Schedule.sc_depth;
  line ctx "module %s (" mname;
  line ctx "  input  wire clk,";
  line ctx "  input  wire rst,";
  line ctx "  input  wire valid_in,";
  List.iter
    (fun (n, ty) ->
      line ctx "  input  wire%s %s %s," (signed_kw ty) (w_decl ty) (sanitize n))
    f.fn_params;
  List.iter
    (fun (n, ty) ->
      line ctx "  output wire%s %s %s_o," (signed_kw ty) (w_decl ty) (sanitize n))
    outs;
  line ctx "  output wire valid_out";
  line ctx ");";
  (* valid pipeline *)
  let depth = max 1 sched.Schedule.sc_depth in
  line ctx "  reg [%d:0] vld;" depth;
  line ctx "  always @(posedge clk) begin";
  line ctx "    if (rst) vld <= 0;";
  line ctx "    else     vld <= {vld[%d:0], valid_in};" (depth - 1);
  line ctx "  end";
  line ctx "  assign valid_out = vld[%d];" depth;
  (* offset windows *)
  SM.iter
    (fun base (lo, hi, w) ->
      ctx.used_window <- true;
      let dep = hi - lo + 1 in
      let b = sanitize base in
      line ctx "  // window over stream %%%s, taps [%d, %d]" base lo hi;
      line ctx "  reg [%d:0] win_%s [0:%d];" (w - 1) b (dep - 1);
      line ctx "  integer wi_%s;" b;
      line ctx "  always @(posedge clk) begin";
      line ctx "    if (valid_in) begin";
      line ctx "      win_%s[0] <= %s;" b b;
      line ctx "      for (wi_%s = 1; wi_%s < %d; wi_%s = wi_%s + 1)" b b dep b b;
      line ctx "        win_%s[wi_%s] <= win_%s[wi_%s-1];" b b b b;
      line ctx "    end";
      line ctx "  end")
    windows;
  (* delay lines: producer name -> (ready, last consumption stage) *)
  let last_use = Hashtbl.create 16 in
  List.iter
    (fun (s : Schedule.slot) ->
      match s.Schedule.sl_instr with
      | Ast.Assign { args; _ } ->
          List.iter
            (function
              | Ast.Var v ->
                  let cur = try Hashtbl.find last_use v with Not_found -> 0 in
                  Hashtbl.replace last_use v (max cur s.Schedule.sl_start)
              | _ -> ())
            args
      | _ -> ())
    sched.Schedule.sc_slots;
  let sig_at (o : Ast.operand) (stage : int) (ty : Ty.t) : string =
    ignore ty;
    match o with
    | Ast.Var v ->
        let r = match SM.find_opt v ready with Some t -> t | None -> 0 in
        if stage <= r then produced_signal windows v
        else Printf.sprintf "%s_dly%d" (sanitize v) (stage - r)
    | o -> operand_base o
  in
  (* emit delay chains *)
  Hashtbl.iter
    (fun v lu ->
      let r = match SM.find_opt v ready with Some t -> t | None -> 0 in
      let span = lu - r in
      if span > 0 then begin
        let sv = sanitize v in
        let w =
          match SM.find_opt v windows with
          | Some (_, _, w) -> w
          | None -> (
              match List.assoc_opt v f.fn_params with
              | Some ty -> Ty.width ty
              | None -> 32 (* width recovered below for locals *))
        in
        (* locals: find defining instruction's width *)
        let w =
          List.fold_left
            (fun acc (i : Ast.instr) ->
              match i with
              | Ast.Assign { dst = Ast.Dlocal n; ty; op; _ } when n = v ->
                  (match op with
                  | Ast.CmpEq | Ast.CmpNe | Ast.CmpLt | Ast.CmpLe
                  | Ast.CmpGt | Ast.CmpGe -> 1
                  | _ -> Ty.width ty)
              | Ast.Offset { dst; ty; _ } when dst = v -> Ty.width ty
              | _ -> acc)
            w f.fn_body
        in
        line ctx "  // delay line for %s: %d stage(s)" v span;
        for k = 1 to span do
          line ctx "  reg [%d:0] %s_dly%d;" (w - 1) sv k
        done;
        line ctx "  always @(posedge clk) begin";
        line ctx "    %s_dly1 <= %s;" sv (produced_signal windows v);
        for k = 2 to span do
          line ctx "    %s_dly%d <= %s_dly%d;" sv k sv (k - 1)
        done;
        line ctx "  end"
      end)
    last_use;
  (* datapath *)
  List.iter
    (fun (s : Schedule.slot) ->
      match s.Schedule.sl_instr with
      | Ast.Offset { dst; ty; src; off } ->
          (* a tap into the source window *)
          let base = match src with Ast.Var v -> v | _ -> "?" in
          (match SM.find_opt base windows with
          | Some (_, hi, _) ->
              line ctx "  wire %s %s = win_%s[%d]; // offset %+d" (w_decl ty)
                (sanitize dst) (sanitize base) (hi - off) off
          | None ->
              line ctx "  wire %s %s = %s; // offset %+d (no window?)"
                (w_decl ty) (sanitize dst) (sanitize base) off)
      | Ast.Assign { dst = Ast.Dlocal n; ty; op; args } ->
          let lat = Opinfo.latency op ty in
          let start = s.Schedule.sl_start in
          let a i = sig_at (List.nth args i) start ty in
          let sn = sanitize n in
          let rw =
            match op with
            | Ast.CmpEq | Ast.CmpNe | Ast.CmpLt | Ast.CmpLe | Ast.CmpGt
            | Ast.CmpGe -> 1
            | _ -> Ty.width ty
          in
          let comb =
            match op with
            | Ast.Add -> Printf.sprintf "%s + %s" (a 0) (a 1)
            | Ast.Sub -> Printf.sprintf "%s - %s" (a 0) (a 1)
            | Ast.Mul -> Printf.sprintf "%s * %s" (a 0) (a 1)
            | Ast.Rem -> Printf.sprintf "%s %% %s" (a 0) (a 1)
            | Ast.And -> Printf.sprintf "%s & %s" (a 0) (a 1)
            | Ast.Or -> Printf.sprintf "%s | %s" (a 0) (a 1)
            | Ast.Xor -> Printf.sprintf "%s ^ %s" (a 0) (a 1)
            | Ast.Shl -> Printf.sprintf "%s << %s" (a 0) (a 1)
            | Ast.Shr -> Printf.sprintf "%s >> %s" (a 0) (a 1)
            | Ast.Min -> Printf.sprintf "(%s < %s) ? %s : %s" (a 0) (a 1) (a 0) (a 1)
            | Ast.Max -> Printf.sprintf "(%s > %s) ? %s : %s" (a 0) (a 1) (a 0) (a 1)
            | Ast.Abs ->
                if Ty.is_signed ty then
                  Printf.sprintf "(%s[%d]) ? -%s : %s" (a 0) (Ty.width ty - 1)
                    (a 0) (a 0)
                else a 0
            | Ast.Neg -> Printf.sprintf "-%s" (a 0)
            | Ast.Not -> Printf.sprintf "~%s" (a 0)
            | Ast.CmpEq -> Printf.sprintf "%s == %s" (a 0) (a 1)
            | Ast.CmpNe -> Printf.sprintf "%s != %s" (a 0) (a 1)
            | Ast.CmpLt -> Printf.sprintf "%s < %s" (a 0) (a 1)
            | Ast.CmpLe -> Printf.sprintf "%s <= %s" (a 0) (a 1)
            | Ast.CmpGt -> Printf.sprintf "%s > %s" (a 0) (a 1)
            | Ast.CmpGe -> Printf.sprintf "%s >= %s" (a 0) (a 1)
            | Ast.Select -> Printf.sprintf "%s ? %s : %s" (a 0) (a 1) (a 2)
            | Ast.Mov -> a 0
            | Ast.Div | Ast.Sqrt -> "" (* primitive cores below *)
          in
          (match op with
          | Ast.Div ->
              ctx.used_div <- true;
              line ctx "  wire [%d:0] %s;" (rw - 1) sn;
              line ctx
                "  tytra_div_pipe #(.WIDTH(%d)) u_div_%s (.clk(clk), .rst(rst), \
                 .num(%s), .den(%s), .quo(%s));"
                (Ty.width ty) sn (a 0) (a 1) sn
          | Ast.Sqrt ->
              ctx.used_sqrt <- true;
              line ctx "  wire [%d:0] %s_root;" ((Ty.width ty / 2) - 1) sn;
              line ctx
                "  tytra_sqrt_pipe #(.WIDTH(%d)) u_sqrt_%s (.clk(clk), .rst(rst), \
                 .x(%s), .root(%s_root));"
                (Ty.width ty) sn (a 0) sn;
              line ctx "  wire [%d:0] %s = {%d'b0, %s_root};" (rw - 1) sn
                (Ty.width ty - (Ty.width ty / 2)) sn
          | _ when lat = 0 ->
              line ctx "  wire%s [%d:0] %s = %s;" (signed_kw ty) (rw - 1) sn comb
          | _ ->
              line ctx "  wire%s [%d:0] %s_c = %s;" (signed_kw ty) (rw - 1) sn comb;
              for k = 1 to lat do
                line ctx "  reg%s [%d:0] %s_r%d;" (signed_kw ty) (rw - 1) sn k
              done;
              line ctx "  always @(posedge clk) begin";
              line ctx "    %s_r1 <= %s_c;" sn sn;
              for k = 2 to lat do
                line ctx "    %s_r%d <= %s_r%d;" sn k sn (k - 1)
              done;
              line ctx "  end";
              line ctx "  wire%s [%d:0] %s = %s_r%d;" (signed_kw ty) (rw - 1) sn
                sn lat)
      | Ast.Assign { dst = Ast.Dglobal _; _ } | Ast.Call _ -> ())
    sched.Schedule.sc_slots;
  (* reductions *)
  List.iter
    (fun (s : Schedule.slot) ->
      match s.Schedule.sl_instr with
      | Ast.Assign { dst = Ast.Dglobal gname; ty; op; args } ->
          let sg = sanitize gname in
          let start = s.Schedule.sl_start in
          let srcs =
            List.filter_map
              (function
                | Ast.Glob g when g = gname -> None
                | o -> Some (sig_at o start ty))
              args
          in
          let rhs =
            match (op, srcs) with
            | Ast.Add, [ x ] -> Printf.sprintf "acc_%s + %s" sg x
            | Ast.Max, [ x ] ->
                Printf.sprintf "(acc_%s > %s) ? acc_%s : %s" sg x sg x
            | Ast.Min, [ x ] ->
                Printf.sprintf "(acc_%s < %s) ? acc_%s : %s" sg x sg x
            | _, xs ->
                Printf.sprintf "acc_%s /* %s */ %s" sg (Ast.op_to_string op)
                  (String.concat " " xs)
          in
          line ctx "  // reduction into design global @%s" gname;
          line ctx "  reg [%d:0] acc_%s;" (Ty.width ty - 1) sg;
          line ctx "  always @(posedge clk) begin";
          line ctx "    if (rst) acc_%s <= 0;" sg;
          line ctx "    else if (vld[%d]) acc_%s <= %s;" (min depth start) sg rhs;
          line ctx "  end"
      | _ -> ())
    sched.Schedule.sc_slots;
  (* outputs: align every output to the full pipeline depth *)
  List.iter
    (fun (n, _ty) ->
      let r = match SM.find_opt n ready with Some t -> t | None -> 0 in
      let sn = sanitize n in
      if r < depth then begin
        line ctx "  // align output %s from stage %d to %d" n r depth;
        for k = 1 to depth - r do
          line ctx "  reg [%d:0] %s_oal%d;"
            ((match List.assoc_opt n outs with
             | Some ty -> Ty.width ty
             | None -> 32) - 1)
            sn k
        done;
        line ctx "  always @(posedge clk) begin";
        line ctx "    %s_oal1 <= %s;" sn sn;
        for k = 2 to depth - r do
          line ctx "    %s_oal%d <= %s_oal%d;" sn k sn (k - 1)
        done;
        line ctx "  end";
        line ctx "  assign %s_o = %s_oal%d;" sn sn (depth - r)
      end
      else line ctx "  assign %s_o = %s;" sn sn)
    outs;
  line ctx "endmodule";
  line ctx ""

(* ---------------------------------------------------------------- *)
(* Compute unit: lanes + stream control                              *)
(* ---------------------------------------------------------------- *)

let emit_stream_control (ctx : ctx) (d : Ast.design) =
  line ctx "// Stream control: translates between random memory access and";
  line ctx "// the pure streaming domain (paper Fig 4). One address";
  line ctx "// generator per stream object.";
  line ctx "module %s_stream_control (" (sanitize d.d_name);
  line ctx "  input  wire clk,";
  line ctx "  input  wire rst,";
  line ctx "  input  wire start,";
  List.iter
    (fun (s : Ast.stream_obj) ->
      line ctx "  output reg  [31:0] addr_%s," (sanitize s.so_name);
      line ctx "  output reg         req_%s," (sanitize s.so_name))
    d.d_streams;
  line ctx "  output wire done";
  line ctx ");";
  List.iteri
    (fun idx (s : Ast.stream_obj) ->
      let sn = sanitize s.so_name in
      let size =
        match Ast.find_mem d s.so_mem with Some m -> m.mo_size | None -> 0
      in
      let stride = match s.so_pattern with
        | Ast.Strided k -> k
        | Ast.Cont | Ast.Random -> 1
      in
      line ctx "  // stream %%%s over %%%s: %s, %d elements" s.so_name s.so_mem
        (Ast.pattern_to_string s.so_pattern) size;
      line ctx "  reg [31:0] cnt_%s;" sn;
      line ctx "  always @(posedge clk) begin";
      line ctx "    if (rst || start) begin";
      line ctx "      cnt_%s <= 0; addr_%s <= 0; req_%s <= 0;" sn sn sn;
      line ctx "    end else if (cnt_%s < %d) begin" sn size;
      line ctx "      req_%s  <= 1'b1;" sn;
      line ctx "      addr_%s <= addr_%s + %d;" sn sn stride;
      line ctx "      cnt_%s  <= cnt_%s + 1;" sn sn;
      line ctx "    end else req_%s <= 1'b0;" sn;
      line ctx "  end";
      if idx = 0 then
        line ctx "  assign done = (cnt_%s >= %d);" sn size)
    d.d_streams;
  if d.d_streams = [] then line ctx "  assign done = 1'b1;";
  line ctx "endmodule";
  line ctx ""

let emit_top (ctx : ctx) (d : Ast.design) =
  let summary = Config_tree.classify d in
  let pes = summary.Config_tree.cs_pes in
  line ctx "// Compute unit: %d lane(s), configuration %s"
    (summary.Config_tree.cs_knl)
    (Config_tree.cclass_to_string summary.Config_tree.cs_class);
  line ctx "module %s_top (" (sanitize d.d_name);
  line ctx "  input  wire clk,";
  line ctx "  input  wire rst,";
  line ctx "  input  wire start,";
  line ctx "  output wire done";
  line ctx ");";
  line ctx "  wire sc_done;";
  (* lane instances *)
  List.iteri
    (fun i pe ->
      match Ast.find_func d pe with
      | None -> ()
      | Some f ->
          let mname = sanitize (d.d_name ^ "_" ^ f.fn_name) in
          line ctx "  // lane %d" i;
          line ctx "  %s u_lane%d (.clk(clk), .rst(rst), .valid_in(1'b1)," mname i;
          List.iter
            (fun (n, ty) ->
              line ctx "    .%s(%d'b0)," (sanitize n) (Ty.width ty))
            f.fn_params;
          List.iter
            (fun (i : Ast.instr) ->
              match i with
              | Ast.Assign { dst = Ast.Dlocal n; _ } when is_output_name n ->
                  line ctx "    .%s_o()," (sanitize n)
              | _ -> ())
            f.fn_body;
          line ctx "    .valid_out());")
    pes;
  (* stream control instance *)
  line ctx "  %s_stream_control u_sc (.clk(clk), .rst(rst), .start(start),"
    (sanitize d.d_name);
  List.iter
    (fun (s : Ast.stream_obj) ->
      line ctx "    .addr_%s(), .req_%s()," (sanitize s.so_name)
        (sanitize s.so_name))
    d.d_streams;
  line ctx "    .done(sc_done));";
  line ctx "  assign done = sc_done;";
  line ctx "endmodule";
  line ctx ""

(** Configuration include file (paper Fig 11: "Configuration include file
    for design"). *)
let emit_config (d : Ast.design) : string =
  let summary = Config_tree.classify d in
  let p = Tytra_ir.Analysis.params d in
  String.concat "\n"
    [
      Printf.sprintf "// %s configuration" d.d_name;
      Printf.sprintf "`define TYTRA_DESIGN \"%s\"" (sanitize d.d_name);
      Printf.sprintf "`define TYTRA_CLASS \"%s\""
        (Config_tree.cclass_to_string summary.Config_tree.cs_class);
      Printf.sprintf "`define TYTRA_KNL %d" summary.Config_tree.cs_knl;
      Printf.sprintf "`define TYTRA_DV %d" summary.Config_tree.cs_dv;
      Printf.sprintf "`define TYTRA_KPD %d" p.Tytra_ir.Analysis.kpd;
      Printf.sprintf "`define TYTRA_NGS %d" p.Tytra_ir.Analysis.ngs;
      "";
    ]

(** [emit d] — the complete Verilog for design [d]: primitive cores, one
    module per distinct PE, stream control, and the top-level compute
    unit. *)
let emit (d : Ast.design) : string =
  let ctx = { buf = Buffer.create 4096; used_div = false; used_sqrt = false;
              used_window = false } in
  line ctx "// Generated by TyBEC (TyTra back-end compiler, OCaml)";
  line ctx "// Design: %s" d.d_name;
  line ctx "";
  let summary = Config_tree.classify d in
  let distinct_pes =
    List.sort_uniq compare summary.Config_tree.cs_pes
  in
  List.iter
    (fun pe ->
      match Ast.find_func d pe with
      | Some f when f.fn_kind = Ast.Pipe || f.fn_kind = Ast.Comb ->
          emit_pe ctx d f
      | _ -> ())
    distinct_pes;
  emit_stream_control ctx d;
  emit_top ctx d;
  let prims =
    Primitives.library
      ~need:
        {
          Primitives.need_div = ctx.used_div;
          need_sqrt = ctx.used_sqrt;
          need_window = ctx.used_window;
        }
  in
  Buffer.contents ctx.buf ^ "\n" ^ prims

(** Write [<design>.v] and [<design>_config.vh] into [dir]. Returns the
    two paths. *)
let write ~dir (d : Ast.design) : string * string =
  let v = Filename.concat dir (sanitize d.d_name ^ ".v") in
  let vh = Filename.concat dir (sanitize d.d_name ^ "_config.vh") in
  let out path s =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc s)
  in
  out v (emit d);
  out vh (emit_config d);
  (v, vh)
