(** Offset-buffer sizing.

    Stream offsets ([%pip1 = offset ui18 %p, +1]) give a work-item access
    to neighbouring elements of a stream (paper Fig 12 lines 6–9; Fig 13
    "Offset Buffers"). In hardware this is a tapped window buffer over the
    stream: to serve taps in [[min_off, max_off]] the buffer holds
    [max_off - min_off] elements and the stream runs [max_off] elements
    ahead of the compute — the fill time that appears as the
    [Noff / (GPB·ρG)] term in the EKIT expressions.

    Small windows are register-based; larger ones (stencil rows/planes) go
    to on-chip block RAM, which is where the BRAM numbers of the paper's
    Table II come from. *)

open Tytra_ir

(** One stream's window buffer. *)
type buf = {
  ob_stream : string;   (** base stream parameter name *)
  ob_width : int;       (** element width, bits *)
  ob_min_off : int;
  ob_max_off : int;
  ob_elems : int;       (** window size in elements *)
  ob_bits : int;        (** total storage bits *)
  ob_in_bram : bool;    (** true if mapped to block RAM *)
}

(** Storage threshold above which a window moves from registers to BRAM.
    Matches typical HLS behaviour (shift registers up to a few hundred
    bits, memories beyond). *)
let bram_threshold_bits = 576

(** [of_func f] — window buffers for every offset base stream of [f]. The
    base stream itself occupies one window slot (tap 0). *)
let of_func (f : Ast.func) : buf list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (i : Ast.instr) ->
      match i with
      | Ast.Offset { src = Ast.Var base; off; ty; _ } ->
          let lo, hi, w =
            match Hashtbl.find_opt tbl base with
            | Some (lo, hi, w) -> (min lo off, max hi off, w)
            | None -> (min 0 off, max 0 off, Ty.width ty)
          in
          Hashtbl.replace tbl base (lo, hi, w)
      | _ -> ())
    f.fn_body;
  Hashtbl.fold
    (fun base (lo, hi, w) acc ->
      let elems = hi - lo + 1 in
      let bits = elems * w in
      {
        ob_stream = base;
        ob_width = w;
        ob_min_off = lo;
        ob_max_off = hi;
        ob_elems = elems;
        ob_bits = bits;
        ob_in_bram = bits > bram_threshold_bits;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.ob_stream b.ob_stream)

(** Buffers for one lane (serial PEs accumulate). *)
let of_lane (pes : Ast.func list) : buf list = List.concat_map of_func pes

(** Total BRAM bits demanded by the window buffers of [bufs]. *)
let bram_bits (bufs : buf list) =
  List.fold_left (fun a b -> a + if b.ob_in_bram then b.ob_bits else 0) 0 bufs

(** Register bits demanded by register-mapped windows. *)
let reg_bits (bufs : buf list) =
  List.fold_left (fun a b -> a + if b.ob_in_bram then 0 else b.ob_bits) 0 bufs

(** Maximum look-ahead across all buffers: the number of stream elements
    that must arrive before the first work-item can issue ([Noff] fill). *)
let max_lookahead (bufs : buf list) =
  List.fold_left (fun a b -> max a (max 0 b.ob_max_off)) 0 bufs

let pp fmt (b : buf) =
  Format.fprintf fmt "window %%%s [%d, %d] %d elems x %d bits -> %s" b.ob_stream
    b.ob_min_off b.ob_max_off b.ob_elems b.ob_width
    (if b.ob_in_bram then "BRAM" else "registers")
