(** Wall analysis: the performance-limiting parameter of a variant and
    the lane counts at which each wall is hit (the annotated walls of
    paper Fig 15).

    "Our cost model also exposes the performance limiting parameter,
    allowing targeted optimization and opening the route to a feedback
    path in our compiler flow" (paper §I). *)

(** Lane-count walls for a family of variants obtained by replicating one
    pipeline lane. [None] means the wall is beyond any practical lane
    count. *)
type walls = {
  w_host_lanes : float option;
      (** lanes at which host bandwidth saturates (form A) *)
  w_gmem_lanes : float option;
      (** lanes at which device-DRAM bandwidth saturates (form B) *)
  w_compute_lanes : float;
      (** lanes at which the first FPGA resource is exhausted *)
  w_binding_resource : string;
      (** which resource class binds the compute wall *)
}

let pp_walls fmt w =
  let o fmt' = function
    | Some v -> Format.fprintf fmt' "%.1f" v
    | None -> Format.pp_print_string fmt' "-"
  in
  Format.fprintf fmt "host wall @ %a lanes, gmem wall @ %a lanes, compute wall @ %.1f lanes (%s)"
    o w.w_host_lanes o w.w_gmem_lanes w.w_compute_lanes w.w_binding_resource

(** [walls ~device ~est ~inputs] — wall positions for the variant family
    of a one-lane estimate [est] with throughput inputs [inputs] (taken
    at one lane). A lane consumes [bytes_per_tuple · fd / cpt] bytes/s of
    stream traffic; bandwidth walls sit where lanes × that rate meets
    the sustained bandwidth. The compute wall sits where the marginal
    per-lane usage exhausts the scarcest device resource. *)
let walls ~(device : Tytra_device.Device.t)
    ~(est : Resource_model.estimate) ~(inputs : Throughput.inputs) : walls =
  let lane_bps =
    inputs.Throughput.bytes_per_tuple *. inputs.Throughput.fd_hz
    /. Float.max 1.0 inputs.Throughput.cpt
  in
  let host_sustained = inputs.Throughput.hpb *. inputs.Throughput.rho_h in
  let gmem_sustained = inputs.Throughput.gpb *. inputs.Throughput.rho_g in
  let bw_wall sustained =
    if lane_bps <= 0.0 then None else Some (sustained /. lane_bps)
  in
  let pl = est.Resource_model.est_per_lane in
  let base = est.Resource_model.est_usage in
  let lanes_for avail per base_used =
    if per <= 0 then infinity
    else float_of_int (avail - base_used + per) /. float_of_int per
  in
  let open Tytra_device in
  let cands =
    [
      ("ALUTs",
       lanes_for device.Device.aluts pl.Resources.aluts base.Resources.aluts);
      ("registers",
       lanes_for device.Device.regs pl.Resources.regs base.Resources.regs);
      ("BRAM",
       lanes_for device.Device.bram_bits pl.Resources.bram_bits
         base.Resources.bram_bits);
      ("DSPs", lanes_for device.Device.dsps pl.Resources.dsps base.Resources.dsps);
    ]
  in
  let binding, compute_wall =
    List.fold_left
      (fun (bn, bv) (n, v) -> if v < bv then (n, v) else (bn, bv))
      ("ALUTs", infinity) cands
  in
  {
    w_host_lanes = bw_wall host_sustained;
    w_gmem_lanes = bw_wall gmem_sustained;
    w_compute_lanes = compute_wall;
    w_binding_resource = binding;
  }

(** Resource-balancing hint (paper §VI-A: "other resources are
    underutilized, and some sort of resource-balancing can lead to
    further performance improvement"): the binding resource and the
    headroom remaining in each other class at the compute wall. *)
type balance_hint = {
  bh_binding : string;
  bh_headroom : (string * float) list;
      (** fraction of each non-binding resource still free at the wall *)
}

let balance_hint ~(device : Tytra_device.Device.t)
    ~(est : Resource_model.estimate) : balance_hint =
  let open Tytra_device in
  let u = Resources.utilization device est.Resource_model.est_usage in
  let all =
    [ ("ALUTs", u.Resources.ut_aluts); ("registers", u.Resources.ut_regs);
      ("BRAM", u.Resources.ut_bram); ("DSPs", u.Resources.ut_dsps) ]
  in
  let binding =
    fst
      (List.fold_left
         (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
         ("ALUTs", neg_infinity) all)
  in
  let scale =
    match List.assoc_opt binding all with
    | Some v when v > 0.0 -> 1.0 /. v
    | _ -> 1.0
  in
  {
    bh_binding = binding;
    bh_headroom =
      List.filter_map
        (fun (n, v) ->
          if n = binding then None else Some (n, 1.0 -. Float.min 1.0 (v *. scale)))
        all;
  }
