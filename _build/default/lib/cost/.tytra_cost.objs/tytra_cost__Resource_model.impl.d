lib/cost/resource_model.ml: Ast Config_tree Fit Float Format List Opinfo Ty Tytra_device Tytra_hdl Tytra_ir
