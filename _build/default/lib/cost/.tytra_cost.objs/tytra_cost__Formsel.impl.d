lib/cost/formsel.ml: Float Format List Printf Throughput Tytra_device Tytra_ir
