lib/cost/roofline.ml: Analysis Float Format List Throughput Tytra_device Tytra_ir
