lib/cost/limits.ml: Device Float Format List Resource_model Resources Throughput Tytra_device
