lib/cost/throughput.ml: Analysis Ast Float Format List Ty Tytra_device Tytra_ir
