lib/cost/fit.ml: Array Float Format List Printf String
