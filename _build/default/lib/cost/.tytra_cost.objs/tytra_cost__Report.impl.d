lib/cost/report.ml: Format Limits List Printf Resource_model String Throughput Tytra_device Tytra_ir
