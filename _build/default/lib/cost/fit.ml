(** Least-squares fitting of resource-cost expressions from synthesis
    experiments (paper §V-A, Fig 9).

    "The regularity of FPGA fabric allows some very simple first or second
    order expressions to be built up for most primitive instructions based
    on a few experiments" — e.g. the quadratic trend-line for division
    ALUTs was generated from three data points (18, 32 and 64 bits) and
    interpolates 24 bits to 654 ALUTs against an actual usage of 652.

    This module fits polynomials (normal equations + Gaussian elimination;
    degrees 1–3 are all that the cost model needs) and piecewise-linear
    curves with known breakpoints (the multiplier's DSP-tiling
    discontinuities at multiples of 18 bits). *)

(** A fitted polynomial: coefficients lowest-degree first. *)
type poly = float array

let eval (p : poly) (x : float) : float =
  let acc = ref 0.0 and xn = ref 1.0 in
  Array.iter
    (fun c ->
      acc := !acc +. (c *. !xn);
      xn := !xn *. x)
    p;
  !acc

let pp_poly fmt (p : poly) =
  let terms =
    Array.to_list p
    |> List.mapi (fun i c ->
        if i = 0 then Printf.sprintf "%.4g" c
        else if i = 1 then Printf.sprintf "%.4gx" c
        else Printf.sprintf "%.4gx^%d" c i)
    |> List.rev
  in
  Format.pp_print_string fmt (String.concat " + " terms)

(* Solve the linear system [a] x = [b] by Gaussian elimination with
   partial pivoting. [a] is square, mutated in place. *)
let solve (a : float array array) (b : float array) : float array =
  let n = Array.length b in
  for col = 0 to n - 1 do
    (* pivot *)
    let piv = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs a.(r).(col) > Float.abs a.(!piv).(col) then piv := r
    done;
    if !piv <> col then begin
      let tmp = a.(col) in
      a.(col) <- a.(!piv);
      a.(!piv) <- tmp;
      let t = b.(col) in
      b.(col) <- b.(!piv);
      b.(!piv) <- t
    end;
    if Float.abs a.(col).(col) < 1e-12 then
      invalid_arg "Fit.solve: singular system";
    for r = col + 1 to n - 1 do
      let f = a.(r).(col) /. a.(col).(col) in
      for c = col to n - 1 do
        a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
      done;
      b.(r) <- b.(r) -. (f *. b.(col))
    done
  done;
  let x = Array.make n 0.0 in
  for r = n - 1 downto 0 do
    let s = ref b.(r) in
    for c = r + 1 to n - 1 do
      s := !s -. (a.(r).(c) *. x.(c))
    done;
    x.(r) <- !s /. a.(r).(r)
  done;
  x

(** [polyfit ~degree pts] — least-squares polynomial of [degree] through
    [(x, y)] points. With exactly [degree + 1] points this is
    interpolation (the paper's three-point quadratic). *)
let polyfit ~degree (pts : (float * float) list) : poly =
  let m = degree + 1 in
  if List.length pts < m then
    invalid_arg
      (Printf.sprintf "Fit.polyfit: need at least %d points for degree %d" m
         degree);
  (* normal equations: (V^T V) c = V^T y *)
  let a = Array.make_matrix m m 0.0 in
  let b = Array.make m 0.0 in
  List.iter
    (fun (x, y) ->
      let powers = Array.make (2 * m) 1.0 in
      for i = 1 to (2 * m) - 1 do
        powers.(i) <- powers.(i - 1) *. x
      done;
      for r = 0 to m - 1 do
        for c = 0 to m - 1 do
          a.(r).(c) <- a.(r).(c) +. powers.(r + c)
        done;
        b.(r) <- b.(r) +. (y *. powers.(r))
      done)
    pts;
  solve a b

(** Goodness of fit: coefficient of determination R². *)
let r_squared (p : poly) (pts : (float * float) list) : float =
  let n = float_of_int (List.length pts) in
  if n = 0.0 then 0.0
  else begin
    let mean = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts /. n in
    let ss_tot =
      List.fold_left (fun a (_, y) -> a +. ((y -. mean) ** 2.0)) 0.0 pts
    in
    let ss_res =
      List.fold_left (fun a (x, y) -> a +. ((y -. eval p x) ** 2.0)) 0.0 pts
    in
    if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot)
  end

(** A piecewise-linear curve: breakpoints partition the x axis; each
    segment carries its own linear fit. *)
type piecewise = { pw_breaks : float list; pw_segments : poly list }

(** [piecewise_fit ~breaks pts] — fit a line per segment delimited by
    [breaks] (e.g. DSP-tiling discontinuities at 18, 36, 54 bits). A
    segment with a single point becomes a constant. *)
let piecewise_fit ~(breaks : float list) (pts : (float * float) list) :
    piecewise =
  let breaks = List.sort compare breaks in
  let segment_of x =
    let rec go i = function
      | [] -> i
      | b :: tl -> if x <= b then i else go (i + 1) tl
    in
    go 0 breaks
  in
  let nseg = List.length breaks + 1 in
  let buckets = Array.make nseg [] in
  List.iter
    (fun (x, y) ->
      let s = segment_of x in
      buckets.(s) <- (x, y) :: buckets.(s))
    pts;
  let segments =
    Array.to_list
      (Array.map
         (fun pts ->
           match pts with
           | [] -> [| 0.0 |]
           | [ (_, y) ] -> [| y |]
           | pts -> polyfit ~degree:1 pts)
         buckets)
  in
  { pw_breaks = breaks; pw_segments = segments }

let piecewise_eval (pw : piecewise) (x : float) : float =
  let rec go i = function
    | [] -> i
    | b :: tl -> if x <= b then i else go (i + 1) tl
  in
  let s = go 0 pw.pw_breaks in
  eval (List.nth pw.pw_segments s) x
