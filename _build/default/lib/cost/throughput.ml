(** Throughput cost model — EKIT, the Effective Kernel-Instance
    Throughput (paper §V-B, Eqs 1–3).

    The kernel-instance throughput is the number of kernel-instance
    repetitions [NKI] divided by the time to execute them all. That time
    has four components (paper, Form A):

    + host↔device-DRAM transfer of the NDRange data;
    + filling the offset stream buffers until the first work-item can be
      processed ([Noff]);
    + filling the kernel pipeline ([KPD / FD]);
    + executing all work-items — limited by either the external memory
      bandwidth or the device pipelines' peak rate, whichever is smaller.

    Form B scales the host term down by [NKI] (data is moved once); Form C
    replaces the max() with its compute argument (data is on-chip, always
    compute-bound).

    Units: the paper's expressions mix words and bandwidths loosely; here
    every traffic term is in bytes against bandwidths in bytes/s. The
    compute term uses cycles-per-tuple-per-lane [cpt]: 1 for pipelined
    PEs ([NTO·NI] collapses to 1 because a dataflow pipe retires [NI]
    instructions per cycle), [NI] for sequential configurations — this is
    exactly the [NTO] figure {!Tytra_ir.Analysis} extracts. *)

type form = FormA | FormB | FormC

let form_to_string = function FormA -> "A" | FormB -> "B" | FormC -> "C"

(** All inputs of the EKIT expressions (paper Table I). *)
type inputs = {
  ngs : int;            (** work-items in the NDRange *)
  bytes_per_tuple : float;  (** NWPT expressed in bytes *)
  nki : int;            (** kernel-instance repetitions *)
  noff : int;           (** maximum stream offset, elements *)
  off_bytes : float;    (** bytes per offset element *)
  kpd : int;            (** kernel pipeline depth, cycles *)
  fd_hz : float;        (** operating frequency *)
  cpt : float;          (** cycles per tuple per lane (NTO·NI collapsed) *)
  knl : int;            (** parallel kernel lanes *)
  dv : int;             (** vectorization degree per lane *)
  hpb : float;          (** host peak bandwidth, bytes/s *)
  rho_h : float;        (** host bandwidth scaling factor (empirical) *)
  gpb : float;          (** device-DRAM peak bandwidth, bytes/s *)
  rho_g : float;        (** DRAM bandwidth scaling factor (empirical) *)
  reconfig_s : float;
      (** run-time reconfiguration penalty per kernel instance, seconds —
          the paper's design-space class C6 (Fig 5): kernels too large for
          the fabric swap configurations at run time. 0 for static
          configurations. "Measuring throughput at this granularity allows
          us to [account for] dynamic reconfiguration penalty if
          applicable" (§V-B). *)
}

(** What limits the execution term of the expression. *)
type limiter = Host_bw | Gmem_bw | Compute | Fill

let limiter_to_string = function
  | Host_bw -> "host bandwidth"
  | Gmem_bw -> "global-memory bandwidth"
  | Compute -> "compute"
  | Fill -> "pipeline/offset fill"

(** Per-term breakdown of the EKIT expression; times in seconds per
    kernel instance. *)
type breakdown = {
  bd_form : form;
  bd_host_s : float;   (** host transfer (already scaled by NKI in form B) *)
  bd_off_s : float;    (** offset-buffer fill *)
  bd_fill_s : float;   (** pipeline fill *)
  bd_gmem_s : float;   (** execution limited by DRAM *)
  bd_comp_s : float;   (** execution limited by the datapath *)
  bd_exec_s : float;   (** the max() of the expressions (Eq 1/2) *)
  bd_total_s : float;  (** time per kernel instance *)
  bd_ekit : float;     (** kernel instances per second *)
  bd_limiter : limiter;
}

let pp_breakdown fmt b =
  Format.fprintf fmt
    "form %s: host=%.3g off=%.3g fill=%.3g gmem=%.3g comp=%.3g -> t/KI=%.3g \
     s, EKIT=%.3g /s, limited by %s"
    (form_to_string b.bd_form) b.bd_host_s b.bd_off_s b.bd_fill_s b.bd_gmem_s
    b.bd_comp_s b.bd_total_s b.bd_ekit
    (limiter_to_string b.bd_limiter)

(** [ekit form i] — evaluate the EKIT expression for the given
    memory-execution form (Eq 1 for A, Eq 2 for B, Eq 3 for C). *)
let ekit (form : form) (i : inputs) : breakdown =
  let ngs = float_of_int i.ngs in
  let traffic = ngs *. i.bytes_per_tuple in
  let host_full = traffic /. (i.hpb *. i.rho_h) in
  let host =
    match form with
    | FormA -> host_full
    | FormB | FormC -> host_full /. float_of_int (max 1 i.nki)
  in
  let off = float_of_int i.noff *. i.off_bytes /. (i.gpb *. i.rho_g) in
  let fill = float_of_int i.kpd /. i.fd_hz in
  let gmem = traffic /. (i.gpb *. i.rho_g) in
  let comp =
    ngs *. i.cpt /. (i.fd_hz *. float_of_int (max 1 i.knl * max 1 i.dv))
  in
  let exec = match form with FormC -> comp | FormA | FormB -> Float.max gmem comp in
  let total = host +. off +. fill +. exec +. i.reconfig_s in
  let limiter =
    let cands =
      [
        (Host_bw, host);
        (Fill, off +. fill);
        ((if form = FormC then Compute
          else if gmem > comp then Gmem_bw
          else Compute),
         exec);
      ]
    in
    fst
      (List.fold_left
         (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
         (Compute, neg_infinity) cands)
  in
  {
    bd_form = form;
    bd_host_s = host;
    bd_off_s = off;
    bd_fill_s = fill;
    bd_gmem_s = gmem;
    bd_comp_s = comp;
    bd_exec_s = exec;
    bd_total_s = total;
    bd_ekit = (if total > 0.0 then 1.0 /. total else infinity);
    bd_limiter = limiter;
  }

(** Estimated cycles per kernel instance — the CPKI figure compared in
    the paper's Table II. Device-time only (host transfers excluded, as
    in the paper's measurement). *)
let cpki (form : form) (i : inputs) : float =
  let b = ekit form i in
  (b.bd_total_s -. b.bd_host_s) *. i.fd_hz

(** [inputs_of_design] — assemble the EKIT inputs from the IR-derived
    parameters, the device description and the empirical bandwidth
    calibration (paper Fig 2: IR + target description + device-specific
    costing parameters → estimates). *)
let inputs_of_design ?(device = Tytra_device.Device.stratixv_gsd8)
    ?(calib : Tytra_device.Bandwidth.calib option) ?(nki = 1)
    ?(fmax_mhz : float option) ?(reconfig_s = 0.0)
    (d : Tytra_ir.Ast.design) : inputs =
  let open Tytra_ir in
  let p = Analysis.params d in
  let calib =
    match calib with
    | Some c -> c
    | None -> Tytra_device.Bandwidth.default_for device
  in
  let total_bytes = Analysis.bytes_per_ndrange d in
  let bytes_per_tuple =
    if p.Analysis.ngs = 0 then 0.0
    else float_of_int total_bytes /. float_of_int p.Analysis.ngs
  in
  let pat =
    match Analysis.dominant_pattern d with
    | Ast.Cont -> `Cont
    | Ast.Strided _ -> `Strided
    | Ast.Random -> `Random
  in
  (* the empirical size effect (launch/setup amortization, Fig 10) is per
     kernel instance, so the ρ lookup uses the instance's total traffic —
     splitting the same data across more lane streams does not re-pay it *)
  let rho_g =
    Tytra_device.Bandwidth.rho calib ~peak:device.Tytra_device.Device.gpb pat
      ~bytes:(float_of_int total_bytes)
  in
  let rho_h =
    Tytra_device.Bandwidth.rho_host device.Tytra_device.Device.link
      ~bytes:(float_of_int total_bytes)
  in
  let fd_mhz =
    match fmax_mhz with
    | Some f -> f
    | None -> device.Tytra_device.Device.fmax_base_mhz
  in
  let off_bytes =
    (* width of the offset-bearing stream's elements; approximate with the
       widest input port *)
    List.fold_left
      (fun acc (pt : Ast.port) ->
        Float.max acc (float_of_int ((Ty.width pt.Ast.pt_ty + 7) / 8)))
      4.0 d.Ast.d_ports
  in
  {
    ngs = p.Analysis.ngs;
    bytes_per_tuple;
    nki;
    noff = p.Analysis.noff;
    off_bytes;
    kpd = p.Analysis.kpd;
    fd_hz = fd_mhz *. 1e6;
    cpt = float_of_int (max 1 p.Analysis.nto);
    knl = p.Analysis.knl;
    dv = p.Analysis.dv;
    hpb = device.Tytra_device.Device.hpb;
    rho_h;
    gpb = device.Tytra_device.Device.gpb;
    rho_g;
    reconfig_s;
  }
