(** Roofline view of a design variant.

    The paper singles out the roofline-for-FPGAs work (da Silva et al.,
    its reference [11]) as "quite relevant and something we are looking
    into for a more useful representation of our cost-model". This module
    provides that representation: for a variant it computes

    - the {e operational intensity} (datapath operations per byte of
      global-memory traffic — fixed by the kernel, not the variant);
    - the {e compute ceiling} of the variant (operations/s its lanes can
      retire at the operating clock);
    - the {e bandwidth ceilings} (sustained global-memory and host
      bandwidth × intensity);
    - the attainable performance and which ceiling binds.

    Sweeping lanes moves the compute ceiling up until it crosses the
    bandwidth roof — the same walls as Fig 15, in roofline form. *)

type t = {
  rf_intensity : float;       (** ops per byte of global traffic *)
  rf_compute_ceiling : float; (** ops/s from the datapath *)
  rf_gmem_roof : float;       (** ops/s allowed by sustained DRAM BW *)
  rf_host_roof : float;       (** ops/s allowed by sustained host BW *)
  rf_attainable : float;      (** min of the applicable ceilings *)
  rf_bound : [ `Compute | `Gmem | `Host ];
}

(** [of_design ?device ?calib ?form ?nki d] — roofline point for [d].
    With form B (the default), host bandwidth is amortized over [nki] and
    usually not the binding roof; with form A it frequently is. *)
let of_design ?(device = Tytra_device.Device.stratixv_gsd8) ?calib
    ?(form = Throughput.FormB) ?(nki = 1) ?fmax_mhz (d : Tytra_ir.Ast.design)
    : t =
  let open Tytra_ir in
  let p = Analysis.params d in
  let inputs = Throughput.inputs_of_design ~device ?calib ~nki ?fmax_mhz d in
  let ops_per_tuple = float_of_int (max 1 p.Analysis.ni) in
  let intensity =
    if inputs.Throughput.bytes_per_tuple > 0.0 then
      ops_per_tuple /. inputs.Throughput.bytes_per_tuple
    else infinity
  in
  let lanes = float_of_int (max 1 (p.Analysis.knl * p.Analysis.dv)) in
  let compute =
    ops_per_tuple *. inputs.Throughput.fd_hz *. lanes
    /. Float.max 1.0 inputs.Throughput.cpt
  in
  let gmem_roof =
    intensity *. inputs.Throughput.gpb *. inputs.Throughput.rho_g
  in
  let host_sust =
    inputs.Throughput.hpb *. inputs.Throughput.rho_h
    *.
    (match form with
    | Throughput.FormA -> 1.0
    | Throughput.FormB | Throughput.FormC -> float_of_int (max 1 nki))
  in
  let host_roof = intensity *. host_sust in
  let applicable_rooves =
    match form with
    | Throughput.FormC -> [ (`Compute, compute) ]
    | Throughput.FormA | Throughput.FormB ->
        [ (`Compute, compute); (`Gmem, gmem_roof); (`Host, host_roof) ]
  in
  let bound, attainable =
    List.fold_left
      (fun (bn, bv) (n, v) -> if v < bv then (n, v) else (bn, bv))
      (`Compute, infinity) applicable_rooves
  in
  {
    rf_intensity = intensity;
    rf_compute_ceiling = compute;
    rf_gmem_roof = gmem_roof;
    rf_host_roof = host_roof;
    rf_attainable = attainable;
    rf_bound = bound;
  }

let bound_to_string = function
  | `Compute -> "compute"
  | `Gmem -> "gmem-bandwidth"
  | `Host -> "host-bandwidth"

let pp fmt r =
  Format.fprintf fmt
    "OI %.3f ops/B | ceilings: compute %.3g, gmem %.3g, host %.3g ops/s | \
     attainable %.3g (%s-bound)"
    r.rf_intensity r.rf_compute_ceiling r.rf_gmem_roof r.rf_host_roof
    r.rf_attainable
    (bound_to_string r.rf_bound)
