(** Memory-execution-form selection and index-space tiling.

    The paper defines three memory-execution forms (Fig 6) and notes the
    model is expected "to evolve to take into account tiling an index
    space such that it can lie on a finer-grained spectrum between these
    three main types" (§III-5). This module is that evolution:

    - it decides which form a kernel instance can run in, from the
      NDRange's footprint against the board's memory capacities;
    - for data too large for on-chip memory but heavily re-used
      ([NKI] ≫ 1), it evaluates {e tiled form C}: split the index space
      into tiles that fit in block RAM, run all [NKI] iterations per tile
      from on-chip memory, and pay global-memory traffic once per tile
      (plus a halo of [2·Noff] elements for stencil kernels);
    - it compares the achievable EKIT of every feasible option and
      recommends the best. *)

(** Fraction of device BRAM available for form-C data buffers (the rest
    holds offset windows, FIFOs and framework logic). *)
let bram_data_fraction = 0.7

(** Assumed device-DRAM capacity in bytes (HPC PCIe boards; the paper's
    form-B discussion: kernel instances that fit "the increasingly large
    DRAMs"). *)
let dram_capacity_bytes = 16.0e9

type option_ = {
  fo_form : Throughput.form;
  fo_tiles : int;           (** 1 = untiled *)
  fo_ekit : float;
  fo_breakdown : Throughput.breakdown;
}

type recommendation = {
  fr_options : option_ list;  (** all feasible options, best first *)
  fr_best : option_;
  fr_footprint_bytes : int;   (** NDRange data footprint *)
  fr_onchip_bytes : float;    (** BRAM budget used for the decision *)
}

(* EKIT of a tiled form-C execution: per tile, the data (tile fraction of
   the NDRange, plus halo) crosses global memory once, then NKI iterations
   run compute-bound on-chip. *)
let tiled_ekit (i : Throughput.inputs) ~(tiles : int) : Throughput.breakdown
    =
  let ngs_tile = (i.Throughput.ngs + tiles - 1) / tiles in
  let halo = 2 * i.Throughput.noff in
  let tile_traffic =
    (float_of_int ngs_tile +. float_of_int halo) *. i.Throughput.bytes_per_tuple
  in
  let gmem_per_tile = tile_traffic /. (i.Throughput.gpb *. i.Throughput.rho_g) in
  let comp_per_tile_iter =
    float_of_int ngs_tile *. i.Throughput.cpt
    /. (i.Throughput.fd_hz *. float_of_int (max 1 i.Throughput.knl * max 1 i.Throughput.dv))
  in
  let fill =
    float_of_int i.Throughput.kpd /. i.Throughput.fd_hz
  in
  let host =
    float_of_int i.Throughput.ngs *. i.Throughput.bytes_per_tuple
    /. (i.Throughput.hpb *. i.Throughput.rho_h)
    /. float_of_int (max 1 i.Throughput.nki)
  in
  (* per kernel-instance equivalent time: tile loads amortize over NKI *)
  let t_ki =
    host
    +. (float_of_int tiles
        *. (gmem_per_tile /. float_of_int (max 1 i.Throughput.nki)
           +. comp_per_tile_iter +. fill))
  in
  {
    Throughput.bd_form = Throughput.FormC;
    bd_host_s = host;
    bd_off_s = 0.0;
    bd_fill_s = float_of_int tiles *. fill;
    bd_gmem_s =
      float_of_int tiles *. gmem_per_tile /. float_of_int (max 1 i.Throughput.nki);
    bd_comp_s = float_of_int tiles *. comp_per_tile_iter;
    bd_exec_s = float_of_int tiles *. comp_per_tile_iter;
    bd_total_s = t_ki;
    bd_ekit = (if t_ki > 0.0 then 1.0 /. t_ki else infinity);
    bd_limiter =
      (if float_of_int tiles *. comp_per_tile_iter >= host then
         Throughput.Compute
       else Throughput.Host_bw);
  }

(** [recommend ?device ?calib ~nki d] — evaluate forms A, B, C and tiled C
    for design [d] and recommend the fastest feasible execution. *)
let recommend ?(device = Tytra_device.Device.stratixv_gsd8) ?calib ~nki
    (d : Tytra_ir.Ast.design) : recommendation =
  let inputs = Throughput.inputs_of_design ~device ?calib ~nki d in
  let footprint = Tytra_ir.Analysis.bytes_per_ndrange d in
  let onchip =
    bram_data_fraction *. float_of_int device.Tytra_device.Device.bram_bits /. 8.0
  in
  let mk form tiles bd =
    { fo_form = form; fo_tiles = tiles; fo_ekit = bd.Throughput.bd_ekit;
      fo_breakdown = bd }
  in
  let opts = ref [] in
  (* form A: always feasible *)
  opts := mk Throughput.FormA 1 (Throughput.ekit Throughput.FormA inputs) :: !opts;
  (* form B: NDRange must fit device DRAM *)
  if float_of_int footprint <= dram_capacity_bytes then
    opts := mk Throughput.FormB 1 (Throughput.ekit Throughput.FormB inputs) :: !opts;
  (* form C untiled: NDRange fits on-chip *)
  if float_of_int footprint <= onchip then
    opts := mk Throughput.FormC 1 (Throughput.ekit Throughput.FormC inputs) :: !opts
  else if float_of_int footprint <= dram_capacity_bytes && nki > 1 then begin
    (* tiled form C: smallest tile count whose tile fits on-chip *)
    let tiles =
      int_of_float (Float.ceil (float_of_int footprint /. onchip))
    in
    if tiles > 1 && tiles <= inputs.Throughput.ngs then
      opts := mk Throughput.FormC tiles (tiled_ekit inputs ~tiles) :: !opts
  end;
  let sorted =
    List.sort (fun a b -> compare b.fo_ekit a.fo_ekit) !opts
  in
  {
    fr_options = sorted;
    fr_best = List.hd sorted;
    fr_footprint_bytes = footprint;
    fr_onchip_bytes = onchip;
  }

let pp_option fmt o =
  Format.fprintf fmt "form %s%s: EKIT %.4g /s (%s)"
    (Throughput.form_to_string o.fo_form)
    (if o.fo_tiles > 1 then Printf.sprintf " x%d tiles" o.fo_tiles else "")
    o.fo_ekit
    (Throughput.limiter_to_string o.fo_breakdown.Throughput.bd_limiter)

let pp fmt (r : recommendation) =
  Format.fprintf fmt "footprint %d bytes, on-chip budget %.0f bytes@\n"
    r.fr_footprint_bytes r.fr_onchip_bytes;
  List.iter (fun o -> Format.fprintf fmt "  %a@\n" pp_option o) r.fr_options;
  Format.fprintf fmt "recommended: %a" pp_option r.fr_best
