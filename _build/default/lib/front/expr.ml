(** The functional kernel DSL — the pure-software design-entry point of
    the TyTra flow (paper §II).

    A {!kernel} is the scalar function the high-level [map] applies to
    every element of the input vector(s): the paper's [p_sor]. Its body is
    a first-order expression over named input streams, neighbouring
    elements of those streams ({!Stencil}, the [p_i_pos]/[p_k_neg] terms
    of the SOR tuple), and scalar parameters. A {!program} is the
    application of a kernel over an index space: [ps = map p_sor pps]. *)

open Tytra_ir

type expr =
  | Input of string            (** current element of a named input stream *)
  | Stencil of string * int    (** neighbour at linear offset: [Stencil ("p", +1)] *)
  | Param of string            (** scalar kernel parameter (e.g. [omega]) *)
  | ConstI of int64
  | ConstF of float
  | Bin of Ast.op * expr * expr
  | Un of Ast.op * expr
  | Select of expr * expr * expr

(** Smart constructors. *)
let ( +: ) a b = Bin (Ast.Add, a, b)
let ( -: ) a b = Bin (Ast.Sub, a, b)
let ( *: ) a b = Bin (Ast.Mul, a, b)
let ( /: ) a b = Bin (Ast.Div, a, b)
let input s = Input s
let param s = Param s
let sten s o = Stencil (s, o)
let ci i = ConstI (Int64.of_int i)
let cf f = ConstF f

(** A named output stream computed by the kernel. *)
type output = { o_name : string; o_expr : expr }

(** A reduction into a design-global accumulator (the paper's
    [@sorErrAcc]). *)
type reduction = { r_name : string; r_op : Ast.op; r_expr : expr; r_init : int64 }

type kernel = {
  k_name : string;
  k_ty : Ty.t;                 (** element type of all streams *)
  k_inputs : string list;      (** input stream names, tuple order *)
  k_params : (string * int64) list;
      (** scalar parameters with their (integer-typed) values; for float
          kernels the value is bit-cast via {!param_float} *)
  k_outputs : output list;
  k_reductions : reduction list;
}

(** Encode a float parameter value in the int64 parameter slot. *)
let param_float (f : float) : int64 = Int64.bits_of_float f
let param_value_float (i : int64) : float = Int64.float_of_bits i

type program = {
  p_kernel : kernel;
  p_shape : int list;  (** index-space dimensions, e.g. [[im; jm; km]] *)
}

let points (p : program) : int = List.fold_left ( * ) 1 p.p_shape

(** The vector type of the program's input tuple stream — what the type
    transformations of {!Transform} reshape. *)
let vtype (p : program) : Vtype.t =
  Vtype.Vect (points p, Vtype.Scalar p.p_kernel.k_ty)

(** {2 Structural queries} *)

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Bin (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Un (_, a) -> fold_expr f acc a
  | Select (c, a, b) -> fold_expr f (fold_expr f (fold_expr f acc c) a) b
  | Input _ | Stencil _ | Param _ | ConstI _ | ConstF _ -> acc

(** All stencil offsets used per input stream. *)
let stencil_offsets (k : kernel) : (string * int list) list =
  let tbl = Hashtbl.create 8 in
  let collect e =
    fold_expr
      (fun () -> function
        | Stencil (s, o) ->
            let l = try Hashtbl.find tbl s with Not_found -> [] in
            if not (List.mem o l) then Hashtbl.replace tbl s (o :: l)
        | _ -> ())
      () e
  in
  List.iter (fun o -> collect o.o_expr) k.k_outputs;
  List.iter (fun r -> collect r.r_expr) k.k_reductions;
  List.map
    (fun s ->
      (s, (try List.sort compare (Hashtbl.find tbl s) with Not_found -> [])))
    k.k_inputs

(** Maximum absolute stencil offset — the front-end view of [Noff]. *)
let max_offset (k : kernel) : int =
  List.fold_left
    (fun acc (_, offs) -> List.fold_left (fun a o -> max a (abs o)) acc offs)
    0 (stencil_offsets k)

(** Number of arithmetic operations in the kernel body (front-end view of
    [NI]). *)
let op_count (k : kernel) : int =
  let count acc e =
    match e with Bin _ | Un _ | Select _ -> acc + 1 | _ -> acc
  in
  List.fold_left
    (fun acc o -> fold_expr count acc o.o_expr)
    (List.fold_left (fun acc r -> fold_expr count (acc + 1) r.r_expr) 0
       k.k_reductions)
    k.k_outputs

(** Validate a kernel: all referenced streams/params declared, operator
    arities respected by construction. *)
let check_kernel (k : kernel) : (unit, string) result =
  let declared = k.k_inputs in
  let params = List.map fst k.k_params in
  let bad = ref None in
  let visit e =
    fold_expr
      (fun () -> function
        | Input s | Stencil (s, _) ->
            if not (List.mem s declared) then
              bad := Some (Printf.sprintf "undeclared input stream %S" s)
        | Param s ->
            if not (List.mem s params) then
              bad := Some (Printf.sprintf "undeclared parameter %S" s)
        | _ -> ())
      () e
  in
  List.iter (fun o -> visit o.o_expr) k.k_outputs;
  List.iter (fun r -> visit r.r_expr) k.k_reductions;
  if k.k_outputs = [] && k.k_reductions = [] then
    bad := Some "kernel has no outputs and no reductions";
  match !bad with None -> Ok () | Some e -> Error e
