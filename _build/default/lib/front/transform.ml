(** Type-transformation-driven variant generation (paper §II).

    From the baseline program [ps = map p_sor pps] (a single stream, one
    kernel pipeline) the flow derives variants by reshaping the data and
    annotating the maps with parallelism keywords:

    {v
    ps   = map p_sor pps                    -- baseline
    ppst = reshapeTo L pps                  -- reshaping data
    pst  = map^par (map^pipe p_sor) ppst    -- L concurrent pipelines
    v}

    Each reshaped vector translates to a different arrangement of streams
    over which different parallelism patterns apply; the cost model then
    chooses the best variant. Correctness is by construction: reshaping
    is order- and size-preserving, so every variant computes the same
    function (property-tested via {!Eval}). *)

(** A design variant: the parallelism annotation applied after (possibly)
    reshaping. These map onto the design-space classes of paper Fig 5. *)
type variant =
  | Seq                       (** [map^seq f] — C4, sequential *)
  | Pipe                      (** [map^pipe f] — C2, single kernel pipeline *)
  | ParPipe of int            (** [map^par (map^pipe f)] after [reshapeTo L]
                                  — C1, [L] replicated lanes *)
  | ParVecPipe of int * int   (** [map^par (map^par (map^pipe f))] after two
                                  reshapes — C3, [L] lanes × [V] vector *)

let to_string = function
  | Seq -> "seq"
  | Pipe -> "pipe"
  | ParPipe l -> Printf.sprintf "par%d-pipe" l
  | ParVecPipe (l, v) -> Printf.sprintf "par%d-vec%d-pipe" l v

(** Lanes × vectorization implied by a variant. *)
let lanes = function
  | Seq | Pipe -> 1
  | ParPipe l -> l
  | ParVecPipe (l, _) -> l

let vec = function ParVecPipe (_, v) -> v | _ -> 1

(** Total concurrent processing elements. *)
let pes v = lanes v * vec v

(** [reshaped_type p v] — the vector type of program [p]'s data after the
    variant's type transformation; [Error] when the reshape is not size
    preserving (lane count does not divide the index space). This is the
    dynamic check standing in for Idris's dependent-type proof. *)
let reshaped_type (p : Expr.program) (v : variant) : (Vtype.t, string) result
    =
  let base = Expr.vtype p in
  match v with
  | Seq | Pipe -> Ok base
  | ParPipe l -> Vtype.reshape_to l base
  | ParVecPipe (l, vv) ->
      Result.bind (Vtype.reshape_to l base) (fun t ->
          match t with
          | Vtype.Vect (l', inner) ->
              Result.map
                (fun i -> Vtype.Vect (l', i))
                (Vtype.reshape_to vv inner)
          | _ -> Error "unreachable")

(** A variant is applicable to [p] iff its reshapes are size preserving. *)
let applicable (p : Expr.program) (v : variant) : bool =
  match reshaped_type p v with Ok _ -> true | Error _ -> false

(** [enumerate ?max_lanes ?max_vec p] — the design space reachable with a
    single [reshapeTo] (lane replication) and optionally a second one
    (vectorization): the space that "grows very quickly even on the basis
    of a single basic reshape transformation" (paper §II). Only
    size-preserving reshapes are generated. *)
let enumerate ?(max_lanes = 16) ?(max_vec = 1) (p : Expr.program) :
    variant list =
  let n = Expr.points p in
  let lanes_opts =
    List.filter (fun l -> l <= max_lanes) (Vtype.divisors n)
  in
  let base = [ Seq; Pipe ] in
  let pars =
    List.filter_map
      (fun l -> if l > 1 then Some (ParPipe l) else None)
      lanes_opts
  in
  let vecs =
    if max_vec <= 1 then []
    else
      List.concat_map
        (fun l ->
          if l = 1 then []
          else
            List.filter_map
              (fun v ->
                if v > 1 && v <= max_vec && applicable p (ParVecPipe (l, v))
                then Some (ParVecPipe (l, v))
                else None)
              (Vtype.divisors (n / l)))
        (List.filter (fun l -> l > 1) lanes_opts)
  in
  base @ pars @ vecs

(** [lane_bounds p v] — for each processing element, the half-open range
    of flat indices it processes: contiguous chunks in lane-major order
    (order preservation of the reshape). *)
let lane_bounds (p : Expr.program) (v : variant) : (int * int) array =
  let n = Expr.points p in
  let k = pes v in
  if n mod k <> 0 then
    invalid_arg
      (Printf.sprintf "variant %s not applicable to %d points" (to_string v) n);
  let chunk = n / k in
  Array.init k (fun i -> (i * chunk, (i + 1) * chunk))
