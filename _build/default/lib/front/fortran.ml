(** Legacy Fortran-style front end.

    The paper's conclusion: "Eventually, we plan to evolve our flow to
    include legacy code written in languages typically used for
    scientific computing like Fortran or C." This module implements that
    evolution for the loop-nest subset those kernels live in — the SOR
    kernel of the LES weather simulator is written exactly in this shape:

    {v
    parameter omega = 1
    do k = 1, km
      do j = 1, jm
        do i = 1, im
          reltmp = omega * (cn1 * (cn2l*p(i+1,j,k) + ...) - rhs(i,j,k)) - p(i,j,k)
          p_new(i,j,k) = p(i,j,k) + reltmp
          sorerr = sorerr + reltmp * reltmp
        end do
      end do
    end do
    v}

    Supported subset and its mapping onto the kernel DSL:
    - [parameter NAME = literal] → scalar kernel parameter;
    - a perfect [do] nest (1–3 deep, unit lower bound, upper bound a
      literal or a size name supplied via [~sizes]) → the index space;
      the innermost loop variable is the fastest (stride 1), as in
      Fortran's column-major array walks;
    - array references indexed by the loop variables, each index of the
      form [var], [var+c] or [var-c] → input streams with stencil
      offsets, linearized with the loop strides;
    - [target(i,j,k) = expr] → an output stream;
    - [acc = acc + expr] / [acc = max(acc, expr)] / [min] on a plain
      scalar → a global reduction;
    - any other scalar assignment → a local binding, inlined into later
      expressions (the kernel DSL is pure; sharing is recovered by CSE
      during lowering);
    - expressions: [+ - * /], parentheses, unary minus, integer and real
      literals, [min]/[max]/[abs]/[sqrt] intrinsics.

    Everything else (conditionals, non-affine indexing, imperfect nests,
    loop-carried dependences other than reductions) is rejected with a
    line-numbered error — this front end refuses rather than miscompiles. *)

exception Error of string * int

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type tok =
  | Id of string
  | Int of int
  | Real of float
  | Plus | Minus | Star | Slash
  | Lpar | Rpar | Comma | Assign
  | Newline
  | Eof

let tok_to_string = function
  | Id s -> s
  | Int i -> string_of_int i
  | Real f -> string_of_float f
  | Plus -> "+" | Minus -> "-" | Star -> "*" | Slash -> "/"
  | Lpar -> "(" | Rpar -> ")" | Comma -> "," | Assign -> "="
  | Newline -> "<newline>"
  | Eof -> "<eof>"

let is_al c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_dig c = c >= '0' && c <= '9'

let tokenize (src : string) : (tok * int) list =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = out := (t, !line) :: !out in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      push Newline;
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '!' then while !i < n && src.[!i] <> '\n' do incr i done
    else if c = '&' then begin
      (* free-form continuation: swallow to and including the newline *)
      incr i;
      while !i < n && src.[!i] <> '\n' do incr i done;
      if !i < n then begin
        incr line;
        incr i
      end
    end
    else if c = '+' then (push Plus; incr i)
    else if c = '-' then (push Minus; incr i)
    else if c = '*' then (push Star; incr i)
    else if c = '/' then (push Slash; incr i)
    else if c = '(' then (push Lpar; incr i)
    else if c = ')' then (push Rpar; incr i)
    else if c = ',' then (push Comma; incr i)
    else if c = '=' then (push Assign; incr i)
    else if is_dig c then begin
      let start = !i in
      while !i < n && is_dig src.[!i] do incr i done;
      if !i < n && src.[!i] = '.' && !i + 1 < n && is_dig src.[!i + 1] then begin
        incr i;
        while !i < n && is_dig src.[!i] do incr i done;
        (if !i < n && (src.[!i] = 'e' || src.[!i] = 'E' || src.[!i] = 'd'
                       || src.[!i] = 'D') then begin
           incr i;
           if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
           while !i < n && is_dig src.[!i] do incr i done
         end);
        let s =
          String.map (fun c -> if c = 'd' || c = 'D' then 'e' else c)
            (String.sub src start (!i - start))
        in
        push (Real (float_of_string s))
      end
      else push (Int (int_of_string (String.sub src start (!i - start))))
    end
    else if is_al c then begin
      let start = !i in
      while !i < n && (is_al src.[!i] || is_dig src.[!i]) do incr i done;
      push (Id (String.lowercase_ascii (String.sub src start (!i - start))))
    end
    else raise (Error (Printf.sprintf "unexpected character %C" c, !line))
  done;
  push Eof;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Parser: statements                                                  *)
(* ------------------------------------------------------------------ *)

(* surface expression *)
type fexpr =
  | FNum of int64
  | FReal of float
  | FName of string
  | FArr of string * (string * int) list  (** base, per-dim (var, offset) *)
  | FBin of Tytra_ir.Ast.op * fexpr * fexpr
  | FNeg of fexpr
  | FCall of string * fexpr list

type stmt =
  | SAssign of string * (string * int) list option * fexpr
      (** target, indices (None = scalar), rhs *)

type floop = { fl_var : string; fl_hi : string_or_int; fl_body : fbody }
and string_or_int = Sname of string | Sint of int
and fbody = Loop of floop | Stmts of stmt list

type prog = {
  fp_params : (string * fexpr) list;
  fp_loop : floop;
}

type state = { mutable toks : (tok * int) list }

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Eof
let line_of st = match st.toks with (_, l) :: _ -> l | [] -> 0
let advance st = match st.toks with _ :: tl -> st.toks <- tl | [] -> ()

let err st msg = raise (Error (msg, line_of st))

let expect st t =
  if peek st = t then advance st
  else
    err st
      (Printf.sprintf "expected %s, found %s" (tok_to_string t)
         (tok_to_string (peek st)))

let expect_id st =
  match peek st with
  | Id s -> advance st; s
  | t -> err st ("expected identifier, found " ^ tok_to_string t)

let skip_newlines st =
  while peek st = Newline do advance st done

(* expression parsing: precedence climbing *)
let rec parse_expr st = parse_add st

and parse_add st =
  let lhs = ref (parse_mul st) in
  let rec go () =
    match peek st with
    | Plus -> advance st; lhs := FBin (Tytra_ir.Ast.Add, !lhs, parse_mul st); go ()
    | Minus -> advance st; lhs := FBin (Tytra_ir.Ast.Sub, !lhs, parse_mul st); go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_mul st =
  let lhs = ref (parse_unary st) in
  let rec go () =
    match peek st with
    | Star -> advance st; lhs := FBin (Tytra_ir.Ast.Mul, !lhs, parse_unary st); go ()
    | Slash -> advance st; lhs := FBin (Tytra_ir.Ast.Div, !lhs, parse_unary st); go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_unary st =
  match peek st with
  | Minus -> advance st; FNeg (parse_unary st)
  | Plus -> advance st; parse_unary st
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Int v -> advance st; FNum (Int64.of_int v)
  | Real f -> advance st; FReal f
  | Lpar ->
      advance st;
      let e = parse_expr st in
      expect st Rpar;
      e
  | Id name -> (
      advance st;
      if peek st <> Lpar then FName name
      else begin
        advance st;
        if name = "min" || name = "max" || name = "abs" || name = "sqrt" then begin
          let rec args acc =
            let a = parse_expr st in
            match peek st with
            | Comma -> advance st; args (a :: acc)
            | Rpar -> advance st; List.rev (a :: acc)
            | t -> err st ("expected , or ) in intrinsic call, found " ^ tok_to_string t)
          in
          FCall (name, args [])
        end
        else begin
          (* array reference: indices of the form var, var+c, var-c *)
          let rec idxs acc =
            let v = expect_id st in
            let off =
              match peek st with
              | Plus -> (
                  advance st;
                  match peek st with
                  | Int k -> advance st; k
                  | t -> err st ("expected constant offset, found " ^ tok_to_string t))
              | Minus -> (
                  advance st;
                  match peek st with
                  | Int k -> advance st; -k
                  | t -> err st ("expected constant offset, found " ^ tok_to_string t))
              | _ -> 0
            in
            match peek st with
            | Comma -> advance st; idxs ((v, off) :: acc)
            | Rpar -> advance st; List.rev ((v, off) :: acc)
            | t -> err st ("expected , or ) in array index, found " ^ tok_to_string t)
          in
          FArr (name, idxs [])
        end
      end)
  | t -> err st ("expected expression, found " ^ tok_to_string t)

let parse_stmt st : stmt =
  let name = expect_id st in
  if peek st = Lpar then begin
    advance st;
    let rec idxs acc =
      let v = expect_id st in
      let off =
        match peek st with
        | Plus -> (advance st;
                   match peek st with
                   | Int k -> advance st; k
                   | _ -> err st "expected constant offset")
        | Minus -> (advance st;
                    match peek st with
                    | Int k -> advance st; -k
                    | _ -> err st "expected constant offset")
        | _ -> 0
      in
      match peek st with
      | Comma -> advance st; idxs ((v, off) :: acc)
      | Rpar -> advance st; List.rev ((v, off) :: acc)
      | t -> err st ("expected , or ) in assignment target, found " ^ tok_to_string t)
    in
    let indices = idxs [] in
    expect st Assign;
    let rhs = parse_expr st in
    SAssign (name, Some indices, rhs)
  end
  else begin
    expect st Assign;
    let rhs = parse_expr st in
    SAssign (name, None, rhs)
  end

let rec parse_do st : floop =
  (* 'do' already consumed *)
  let var = expect_id st in
  expect st Assign;
  (match peek st with
  | Int 1 -> advance st
  | t -> err st ("loop lower bound must be 1, found " ^ tok_to_string t));
  expect st Comma;
  let hi =
    match peek st with
    | Int v -> advance st; Sint v
    | Id s -> advance st; Sname s
    | t -> err st ("expected loop upper bound, found " ^ tok_to_string t)
  in
  skip_newlines st;
  let body =
    match peek st with
    | Id "do" ->
        advance st;
        let inner = parse_do st in
        skip_newlines st;
        Loop inner
    | _ ->
        let rec stmts acc =
          skip_newlines st;
          match peek st with
          | Id "end" | Id "enddo" -> List.rev acc
          | Eof -> err st "unexpected end of input inside do loop"
          | _ ->
              let s = parse_stmt st in
              skip_newlines st;
              stmts (s :: acc)
        in
        Stmts (stmts [])
  in
  (match peek st with
  | Id "enddo" -> advance st
  | Id "end" -> (
      advance st;
      match peek st with
      | Id "do" -> advance st
      | t -> err st ("expected 'do' after 'end', found " ^ tok_to_string t))
  | t -> err st ("expected 'end do', found " ^ tok_to_string t));
  { fl_var = var; fl_hi = hi; fl_body = body }

let parse_prog st : prog =
  let params = ref [] in
  skip_newlines st;
  let rec header () =
    match peek st with
    | Id "parameter" ->
        advance st;
        let name = expect_id st in
        expect st Assign;
        let v = parse_expr st in
        params := (name, v) :: !params;
        skip_newlines st;
        header ()
    | _ -> ()
  in
  header ();
  (match peek st with
  | Id "do" -> advance st
  | t -> err st ("expected a do loop, found " ^ tok_to_string t));
  let loop = parse_do st in
  skip_newlines st;
  (match peek st with
  | Eof -> ()
  | t -> err st ("trailing input after the loop nest: " ^ tok_to_string t));
  { fp_params = List.rev !params; fp_loop = loop }

(* ------------------------------------------------------------------ *)
(* Elaboration to the kernel DSL                                       *)
(* ------------------------------------------------------------------ *)

type elab = {
  el_ty : Tytra_ir.Ty.t;
  el_strides : (string * int) list;  (** loop var → linear stride *)
  el_dims : (string * int) list;     (** loop var → extent, outer first *)
  el_index_order : string list;
      (** expected array-subscript order: innermost-first for Fortran
          (leftmost-fastest), outermost-first for C (rightmost-fastest) *)
  mutable el_inputs : string list;
  el_params : (string * int64) list;
  mutable el_locals : (string * Expr.expr) list;
  mutable el_outputs : Expr.output list;
  mutable el_reductions : Expr.reduction list;
}

let lit_value ty (e : fexpr) : int64 =
  match (e, Tytra_ir.Ty.is_float ty) with
  | FNum v, false -> v
  | FNum v, true -> Expr.param_float (Int64.to_float v)
  | FReal f, true -> Expr.param_float f
  | FReal f, false -> Int64.of_float f
  | FNeg (FNum v), false -> Int64.neg v
  | FNeg (FReal f), true -> Expr.param_float (-.f)
  | _ -> raise (Error ("parameter value must be a literal", 0))

let rec elab_expr (el : elab) (e : fexpr) : Expr.expr =
  match e with
  | FNum v ->
      if Tytra_ir.Ty.is_float el.el_ty then Expr.ConstF (Int64.to_float v)
      else Expr.ConstI v
  | FReal f ->
      if Tytra_ir.Ty.is_float el.el_ty then Expr.ConstF f
      else Expr.ConstI (Int64.of_float f)
  | FName n -> (
      match List.assoc_opt n el.el_locals with
      | Some bound -> bound
      | None ->
          if List.mem_assoc n el.el_params then Expr.Param n
          else
            raise
              (Error
                 (Printf.sprintf
                    "scalar %S is neither a parameter, a local, nor an array"
                    n, 0)))
  | FArr (base, idxs) ->
      let vars_in_order = el.el_index_order in
      let given = List.map fst idxs in
      if given <> vars_in_order then
        raise
          (Error
             (Printf.sprintf
                "array %S must be indexed as (%s); found (%s)" base
                (String.concat "," vars_in_order)
                (String.concat "," given), 0));
      let off =
        List.fold_left
          (fun acc (v, o) -> acc + (o * List.assoc v el.el_strides))
          0 idxs
      in
      if not (List.mem base el.el_inputs) then
        el.el_inputs <- el.el_inputs @ [ base ];
      if off = 0 then Expr.Input base else Expr.Stencil (base, off)
  | FBin (op, a, b) -> Expr.Bin (op, elab_expr el a, elab_expr el b)
  | FNeg a -> Expr.Un (Tytra_ir.Ast.Neg, elab_expr el a)
  | FCall ("min", [ a; b ]) ->
      Expr.Bin (Tytra_ir.Ast.Min, elab_expr el a, elab_expr el b)
  | FCall ("max", [ a; b ]) ->
      Expr.Bin (Tytra_ir.Ast.Max, elab_expr el a, elab_expr el b)
  | FCall ("abs", [ a ]) -> Expr.Un (Tytra_ir.Ast.Abs, elab_expr el a)
  | FCall ("sqrt", [ a ]) -> Expr.Un (Tytra_ir.Ast.Sqrt, elab_expr el a)
  | FCall (f, args) ->
      raise
        (Error
           (Printf.sprintf "unsupported intrinsic %s/%d" f (List.length args),
            0))

(* does [e] mention scalar [name]? *)
let rec mentions name = function
  | FName n -> n = name
  | FArr _ | FNum _ | FReal _ -> false
  | FBin (_, a, b) -> mentions name a || mentions name b
  | FNeg a -> mentions name a
  | FCall (_, args) -> List.exists (mentions name) args

(* recognise accumulator updates: acc = acc + e | e + acc | max(acc, e)… *)
let reduction_pattern name (rhs : fexpr) : (Tytra_ir.Ast.op * fexpr) option =
  match rhs with
  | FBin (Tytra_ir.Ast.Add, FName n, e) when n = name && not (mentions name e)
    -> Some (Tytra_ir.Ast.Add, e)
  | FBin (Tytra_ir.Ast.Add, e, FName n) when n = name && not (mentions name e)
    -> Some (Tytra_ir.Ast.Add, e)
  | FCall ("max", [ FName n; e ]) when n = name && not (mentions name e) ->
      Some (Tytra_ir.Ast.Max, e)
  | FCall ("max", [ e; FName n ]) when n = name && not (mentions name e) ->
      Some (Tytra_ir.Ast.Max, e)
  | FCall ("min", [ FName n; e ]) when n = name && not (mentions name e) ->
      Some (Tytra_ir.Ast.Min, e)
  | FCall ("min", [ e; FName n ]) when n = name && not (mentions name e) ->
      Some (Tytra_ir.Ast.Min, e)
  | _ -> None

let elab_stmt (el : elab) (s : stmt) : unit =
  match s with
  | SAssign (name, Some idxs, rhs) ->
      (* stream output; the indices must be the plain loop variables *)
      List.iter
        (fun (_, o) ->
          if o <> 0 then
            raise (Error ("output array must be written at (i,j,k) exactly", 0)))
        idxs;
      el.el_outputs <-
        el.el_outputs @ [ { Expr.o_name = name; o_expr = elab_expr el rhs } ]
  | SAssign (name, None, rhs) -> (
      match reduction_pattern name rhs with
      | Some (op, e) ->
          el.el_reductions <-
            el.el_reductions
            @ [ { Expr.r_name = name; r_op = op; r_expr = elab_expr el e;
                  r_init = 0L } ]
      | None ->
          if mentions name rhs then
            raise
              (Error
                 (Printf.sprintf
                    "scalar %S depends on itself but is not a recognised \
                     reduction" name, 0));
          el.el_locals <- (name, elab_expr el rhs) :: el.el_locals)

(** Shared elaboration used by this front end and the C one: turn a
    statement list inside a loop nest into a kernel program. [dims] is
    outer→inner with extents; [index_order] is the array-subscript
    convention of the source language. *)
let elaborate ~(ty : Tytra_ir.Ty.t) ~(name : string)
    ~(params : (string * int64) list) ~(dims : (string * int) list)
    ~(index_order : string list) (body : stmt list) : Expr.program =
  let rev = List.rev dims in
  let strides =
    let rec go acc stride = function
      | [] -> acc
      | (v, ext) :: tl -> go ((v, stride) :: acc) (stride * ext) tl
    in
    go [] 1 rev
  in
  let el =
    {
      el_ty = ty;
      el_strides = List.map (fun (v, _) -> (v, List.assoc v strides)) dims;
      el_dims = dims;
      el_index_order = index_order;
      el_inputs = [];
      el_params = params;
      el_locals = [];
      el_outputs = [];
      el_reductions = [];
    }
  in
  List.iter (elab_stmt el) body;
  let kernel =
    {
      Expr.k_name = name;
      k_ty = ty;
      k_inputs = el.el_inputs;
      k_params = params;
      k_outputs = el.el_outputs;
      k_reductions = el.el_reductions;
    }
  in
  (match Expr.check_kernel kernel with
  | Ok () -> ()
  | Error e -> raise (Error ("elaborated kernel invalid: " ^ e, 0)));
  { Expr.p_kernel = kernel; p_shape = List.map snd el.el_dims }

(** [parse ?ty ?name ~sizes src] — parse and elaborate a Fortran-style
    loop nest into a kernel program. [sizes] resolves symbolic loop
    bounds (e.g. [("im", 16)]). *)
let parse ?(ty = Tytra_ir.Ty.UInt 18) ?(name = "legacy")
    ~(sizes : (string * int) list) (src : string) : Expr.program =
  let st = { toks = tokenize src } in
  let prog = parse_prog st in
  (* collect the nest: outer → inner *)
  let rec collect (l : floop) acc =
    match l.fl_body with
    | Loop inner -> collect inner ((l.fl_var, l.fl_hi) :: acc)
    | Stmts body -> (List.rev ((l.fl_var, l.fl_hi) :: acc), body)
  in
  let nest, body = collect prog.fp_loop [] in
  if List.length nest > 3 then
    raise (Error ("loop nests deeper than 3 are not supported", 0));
  let extent = function
    | Sint v -> v
    | Sname s -> (
        match List.assoc_opt s sizes with
        | Some v -> v
        | None -> raise (Error (Printf.sprintf "unknown size name %S" s, 0)))
  in
  let dims = List.map (fun (v, hi) -> (v, extent hi)) nest in
  let params =
    List.map (fun (n, e) -> (n, lit_value ty e)) prog.fp_params
  in
  (* Fortran arrays are leftmost-fastest: subscripts run innermost-first *)
  elaborate ~ty ~name ~params ~dims
    ~index_order:(List.rev (List.map fst dims))
    body

(** As {!parse}, reading from a file. *)
let parse_file ?ty ?name ~sizes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let src = really_input_string ic (in_channel_length ic) in
      let name =
        match name with
        | Some n -> n
        | None -> Filename.remove_extension (Filename.basename path)
      in
      parse ?ty ~name ~sizes src)
