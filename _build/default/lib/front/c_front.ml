(** Legacy C-style front end — the "or C" half of the paper's plan to
    "include legacy code written in languages typically used for
    scientific computing like Fortran or C".

    Accepts the canonical C rendering of the same loop-nest subset the
    Fortran front end handles:

    {v
    #define OMEGA 1
    for (k = 0; k < KM; k++) {
      for (j = 0; j < JM; j++) {
        for (i = 0; i < IM; i++) {
          reltmp = OMEGA * (p[k][j][i+1] + p[k][j][i-1]) - rhs[k][j][i];
          p_new[k][j][i] = p[k][j][i] + reltmp;
          sorerr += reltmp * reltmp;
        }
      }
    }
    v}

    Differences from the Fortran subset, handled here:
    - row-major arrays: the {e last} subscript is the fastest
      (outermost-first subscript order);
    - zero-based loops [for (v = 0; v < N; v++)], optionally with an
      [int] declaration in the initializer;
    - [#define NAME literal] for scalar parameters;
    - [acc += e] / [acc = fmax(acc, e)] reductions ([fmin]/[fmax]/
      [fabs]/[abs]/[sqrt]/[sqrtf] intrinsics map to the DSL's);
    - [//] and [/* */] comments; statements end with [;].

    The surface statements elaborate through the same
    {!Fortran.elaborate} machinery, so both legacy front ends share one
    (tested) semantics. *)

exception Error = Fortran.Error

type tok =
  | Id of string
  | Int of int
  | Real of float
  | Punct of string  (** one of: + - * / ( ) [ ] { } ; , = += < ++ # *)
  | Eof

let tok_str = function
  | Id s -> s
  | Int i -> string_of_int i
  | Real f -> string_of_float f
  | Punct p -> p
  | Eof -> "<eof>"

let is_al c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_dig c = c >= '0' && c <= '9'

let tokenize (src : string) : (tok * int) list =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = out := (t, !line) :: !out in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then
      while !i < n && src.[!i] <> '\n' do incr i done
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let fin = ref false in
      while not !fin do
        if !i + 1 >= n then raise (Error ("unterminated comment", !line));
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          fin := true;
          i := !i + 2
        end
        else incr i
      done
    end
    else if c = '+' && !i + 1 < n && src.[!i + 1] = '=' then
      (push (Punct "+="); i := !i + 2)
    else if c = '+' && !i + 1 < n && src.[!i + 1] = '+' then
      (push (Punct "++"); i := !i + 2)
    else if String.contains "+-*/()[]{};,=<#" c then
      (push (Punct (String.make 1 c)); incr i)
    else if is_dig c then begin
      let start = !i in
      while !i < n && is_dig src.[!i] do incr i done;
      if !i < n && src.[!i] = '.' then begin
        incr i;
        while !i < n && is_dig src.[!i] do incr i done;
        (if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
           incr i;
           if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
           while !i < n && is_dig src.[!i] do incr i done
         end);
        (if !i < n && (src.[!i] = 'f' || src.[!i] = 'F') then incr i);
        push (Real (float_of_string
                      (String.sub src start (!i - start)
                       |> String.map (fun c -> if c = 'f' || c = 'F' then ' ' else c)
                       |> String.trim)))
      end
      else push (Int (int_of_string (String.sub src start (!i - start))))
    end
    else if is_al c then begin
      let start = !i in
      while !i < n && (is_al src.[!i] || is_dig src.[!i]) do incr i done;
      push (Id (String.sub src start (!i - start)))
    end
    else raise (Error (Printf.sprintf "unexpected character %C" c, !line))
  done;
  push Eof;
  List.rev !out

type state = { mutable toks : (tok * int) list }

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Eof
let line_of st = match st.toks with (_, l) :: _ -> l | [] -> 0
let advance st = match st.toks with _ :: tl -> st.toks <- tl | [] -> ()
let err st msg = raise (Error (msg, line_of st))

let expect st p =
  if peek st = Punct p then advance st
  else err st (Printf.sprintf "expected %S, found %s" p (tok_str (peek st)))

let expect_id st =
  match peek st with
  | Id s -> advance st; s
  | t -> err st ("expected identifier, found " ^ tok_str t)

(* intrinsic renaming: C math names → DSL intrinsics *)
let intrinsic = function
  | "fmin" | "min" -> Some "min"
  | "fmax" | "max" -> Some "max"
  | "fabs" | "abs" -> Some "abs"
  | "sqrt" | "sqrtf" -> Some "sqrt"
  | _ -> None

(* expressions produce the Fortran front end's surface AST *)
let rec parse_expr st = parse_add st

and parse_add st =
  let lhs = ref (parse_mul st) in
  let rec go () =
    match peek st with
    | Punct "+" ->
        advance st;
        lhs := Fortran.FBin (Tytra_ir.Ast.Add, !lhs, parse_mul st);
        go ()
    | Punct "-" ->
        advance st;
        lhs := Fortran.FBin (Tytra_ir.Ast.Sub, !lhs, parse_mul st);
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_mul st =
  let lhs = ref (parse_unary st) in
  let rec go () =
    match peek st with
    | Punct "*" ->
        advance st;
        lhs := Fortran.FBin (Tytra_ir.Ast.Mul, !lhs, parse_unary st);
        go ()
    | Punct "/" ->
        advance st;
        lhs := Fortran.FBin (Tytra_ir.Ast.Div, !lhs, parse_unary st);
        go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_unary st =
  match peek st with
  | Punct "-" -> advance st; Fortran.FNeg (parse_unary st)
  | Punct "+" -> advance st; parse_unary st
  | _ -> parse_postfix st

and parse_index st : string * int =
  (* [v], [v+c], [v-c] *)
  let v = expect_id st in
  let off =
    match peek st with
    | Punct "+" -> (
        advance st;
        match peek st with
        | Int k -> advance st; k
        | t -> err st ("expected constant offset, found " ^ tok_str t))
    | Punct "-" -> (
        advance st;
        match peek st with
        | Int k -> advance st; -k
        | t -> err st ("expected constant offset, found " ^ tok_str t))
    | _ -> 0
  in
  expect st "]";
  (v, off)

and parse_postfix st =
  match peek st with
  | Int v -> advance st; Fortran.FNum (Int64.of_int v)
  | Real f -> advance st; Fortran.FReal f
  | Punct "(" ->
      advance st;
      let e = parse_expr st in
      expect st ")";
      e
  | Id name -> (
      advance st;
      match peek st with
      | Punct "[" ->
          let rec dims acc =
            match peek st with
            | Punct "[" ->
                advance st;
                dims (parse_index st :: acc)
            | _ -> List.rev acc
          in
          Fortran.FArr (name, dims [])
      | Punct "(" -> (
          advance st;
          match intrinsic name with
          | Some fn ->
              let rec args acc =
                let a = parse_expr st in
                match peek st with
                | Punct "," -> advance st; args (a :: acc)
                | Punct ")" -> advance st; List.rev (a :: acc)
                | t -> err st ("expected , or ) in call, found " ^ tok_str t)
              in
              Fortran.FCall (fn, args [])
          | None -> err st (Printf.sprintf "unsupported function %S" name))
      | _ -> Fortran.FName name)
  | t -> err st ("expected expression, found " ^ tok_str t)

let parse_stmt st : Fortran.stmt =
  let name = expect_id st in
  match peek st with
  | Punct "[" ->
      let rec dims acc =
        match peek st with
        | Punct "[" -> advance st; dims (parse_index st :: acc)
        | _ -> List.rev acc
      in
      let idxs = dims [] in
      expect st "=";
      let rhs = parse_expr st in
      expect st ";";
      Fortran.SAssign (name, Some idxs, rhs)
  | Punct "+=" ->
      advance st;
      let rhs = parse_expr st in
      expect st ";";
      (* desugar into the accumulator pattern the elaborator recognises *)
      Fortran.SAssign
        (name, None, Fortran.FBin (Tytra_ir.Ast.Add, Fortran.FName name, rhs))
  | Punct "=" ->
      advance st;
      let rhs = parse_expr st in
      expect st ";";
      Fortran.SAssign (name, None, rhs)
  | t -> err st ("expected assignment, found " ^ tok_str t)

(* for (v = 0; v < bound; v++) {   — 'for' consumed by caller *)
let parse_for_header st : string * Fortran.string_or_int =
  expect st "(";
  (match peek st with Id "int" -> advance st | _ -> ());
  let v = expect_id st in
  expect st "=";
  (match peek st with
  | Int 0 -> advance st
  | t -> err st ("loop must start at 0, found " ^ tok_str t));
  expect st ";";
  let v2 = expect_id st in
  if v2 <> v then err st "loop condition must test the loop variable";
  expect st "<";
  let hi =
    match peek st with
    | Int b -> advance st; Fortran.Sint b
    | Id s -> advance st; Fortran.Sname s
    | t -> err st ("expected loop bound, found " ^ tok_str t)
  in
  expect st ";";
  let v3 = expect_id st in
  if v3 <> v then err st "loop increment must bump the loop variable";
  expect st "++";
  expect st ")";
  expect st "{";
  (v, hi)

(** [parse ?ty ?name ~sizes src] — parse a C-style loop nest. [sizes]
    resolves symbolic loop bounds (matched case-sensitively, e.g.
    [("KM", 16)]). *)
let parse ?(ty = Tytra_ir.Ty.UInt 18) ?(name = "legacy_c")
    ~(sizes : (string * int) list) (src : string) : Expr.program =
  let st = { toks = tokenize src } in
  (* #define headers *)
  let params = ref [] in
  let rec header () =
    match peek st with
    | Punct "#" -> (
        advance st;
        match peek st with
        | Id "define" ->
            advance st;
            let n = expect_id st in
            let v =
              match peek st with
              | Int v -> advance st; Fortran.FNum (Int64.of_int v)
              | Real f -> advance st; Fortran.FReal f
              | Punct "-" -> (
                  advance st;
                  match peek st with
                  | Int v -> advance st; Fortran.FNum (Int64.of_int (-v))
                  | Real f -> advance st; Fortran.FReal (-.f)
                  | t -> err st ("expected literal, found " ^ tok_str t))
              | t -> err st ("expected literal, found " ^ tok_str t)
            in
            params := (n, v) :: !params;
            header ()
        | t -> err st ("expected 'define', found " ^ tok_str t))
    | _ -> ()
  in
  header ();
  (* the nest *)
  let rec parse_nest acc =
    match peek st with
    | Id "for" ->
        advance st;
        let v, hi = parse_for_header st in
        parse_nest ((v, hi) :: acc)
    | _ ->
        let rec stmts sacc =
          match peek st with
          | Punct "}" -> List.rev sacc
          | Eof -> err st "unexpected end of input inside loop body"
          | _ -> stmts (parse_stmt st :: sacc)
        in
        (List.rev acc, stmts [])
  in
  let nest, body = parse_nest [] in
  if nest = [] then err st "expected a for loop";
  if List.length nest > 3 then
    raise (Error ("loop nests deeper than 3 are not supported", 0));
  (* closing braces, one per loop *)
  List.iter (fun _ -> expect st "}") nest;
  (match peek st with
  | Eof -> ()
  | t -> err st ("trailing input after the loop nest: " ^ tok_str t));
  let extent = function
    | Fortran.Sint v -> v
    | Fortran.Sname s -> (
        match List.assoc_opt s sizes with
        | Some v -> v
        | None -> raise (Error (Printf.sprintf "unknown size name %S" s, 0)))
  in
  let dims = List.map (fun (v, hi) -> (v, extent hi)) nest in
  let params =
    List.rev_map (fun (n, e) -> (n, Fortran.lit_value ty e)) !params
  in
  (* C arrays are row-major: subscripts run outermost-first *)
  Fortran.elaborate ~ty ~name ~params ~dims
    ~index_order:(List.map fst dims)
    body

(** As {!parse}, reading from a file. *)
let parse_file ?ty ?name ~sizes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let src = really_input_string ic (in_channel_length ic) in
      let name =
        match name with
        | Some n -> n
        | None -> Filename.remove_extension (Filename.basename path)
      in
      parse ?ty ~name ~sizes src)
