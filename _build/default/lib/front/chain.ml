(** Coarse-grained pipelines: kernel composition (paper Fig 7,
    configurations 3 and 4).

    A {!t} is a sequence of kernels in which each stage's {e first} input
    stream is fed by the previous stage's {e first} output — on the FPGA,
    an on-chip stream between peer kernel pipelines, never touching
    global memory. The remaining inputs of every stage stream from memory
    as usual. Lowering produces exactly the paper's configuration 3:

    {v
    define void @pipeTop (...) pipe {
      %c1 = call @stage0 (...) pipe     ; peer-to-peer stream
      call @stage1 (%c1, ...) pipe
    }
    v}

    and configuration 4 ([par] of [pipeTop]) for the lane-replicated
    variant. Intermediate stages must have exactly one output (the
    chained stream); the final stage may have any outputs/reductions.

    Correctness: {!eval} gives the reference semantics (sequential
    composition of the stage evaluators); the test suite checks it
    against the IR interpreter on the lowered design. Note the chained
    semantics is {e per-lane}: with [L] lanes, each lane chains its own
    chunk, which equals the baseline composition exactly when the
    intermediate stages use no stencil offsets (otherwise lane-boundary
    halos differ, as with any chunked stencil). *)

type t = {
  ch_name : string;
  ch_stages : Expr.kernel list;
  ch_shape : int list;
}

let points (c : t) = List.fold_left ( * ) 1 c.ch_shape

(* external inputs of stage i: all inputs for stage 0; all but the first
   (chained) input for later stages *)
let external_inputs_of i (k : Expr.kernel) =
  if i = 0 then k.Expr.k_inputs else List.tl k.Expr.k_inputs

(** [make ~name ~shape stages] — validate and build a chain: ≥2 stages,
    same element type throughout, single-output intermediate stages, and
    no duplicate external stream names across stages. *)
let make ~name ~shape (stages : Expr.kernel list) : (t, string) result =
  match stages with
  | [] | [ _ ] -> Error "a chain needs at least two stages"
  | first :: _ ->
      let ty = first.Expr.k_ty in
      let rec check i = function
        | [] -> Ok ()
        | (k : Expr.kernel) :: tl ->
            if not (Tytra_ir.Ty.equal k.Expr.k_ty ty) then
              Error
                (Printf.sprintf "stage %d type %s differs from %s" i
                   (Tytra_ir.Ty.to_string k.Expr.k_ty)
                   (Tytra_ir.Ty.to_string ty))
            else if tl <> [] && List.length k.Expr.k_outputs <> 1 then
              Error
                (Printf.sprintf
                   "intermediate stage %d must have exactly one output" i)
            else if i > 0 && k.Expr.k_inputs = [] then
              Error (Printf.sprintf "stage %d has no input to chain into" i)
            else begin
              match Expr.check_kernel k with
              | Error e -> Error (Printf.sprintf "stage %d: %s" i e)
              | Ok () -> check (i + 1) tl
            end
      in
      Result.bind (check 0 stages) (fun () ->
          (* external stream names must be unique across stages (they all
             become ports of the same design) *)
          let ext = List.concat (List.mapi external_inputs_of stages) in
          let rec dup = function
            | [] -> None
            | x :: tl -> if List.mem x tl then Some x else dup tl
          in
          match dup ext with
          | Some s ->
              Error
                (Printf.sprintf "external stream %S appears in two stages" s)
          | None ->
              Ok { ch_name = name; ch_stages = stages; ch_shape = shape })

let make_exn ~name ~shape stages =
  match make ~name ~shape stages with
  | Ok c -> c
  | Error e -> invalid_arg ("Chain.make: " ^ e)

let external_inputs = external_inputs_of

(** All external stream names, in stage order (these become the chain's
    memory-fed streams). *)
let external_streams (c : t) : string list =
  List.concat (List.mapi (fun i k -> external_inputs i k) c.ch_stages)

(** Reference semantics: stage [i]'s first input reads stage [i-1]'s
    first output; reductions accumulate per stage. *)
let eval (c : t) (env : Eval.env) : Eval.result =
  let n = points c in
  let shape = c.ch_shape in
  let rec go i (carried : int64 array option) (reds : (string * int64) list)
      = function
    | [] -> invalid_arg "Chain.eval: empty chain"
    | (k : Expr.kernel) :: tl ->
        let stage_env =
          match carried with
          | None -> env
          | Some arr -> (List.hd k.Expr.k_inputs, arr) :: env
        in
        let prog = { Expr.p_kernel = k; p_shape = shape } in
        let r = Eval.run_baseline prog stage_env in
        let reds = reds @ r.Eval.reductions in
        if tl = [] then { r with Eval.reductions = reds }
        else
          let out = snd (List.hd r.Eval.outputs) in
          go (i + 1) (Some out) reds tl
  in
  ignore n;
  go 0 None [] c.ch_stages

(** Lower a chain to TyTra-IR: configuration 3 ([Pipe]) or 4
    ([ParPipe l]). Vectorized/sequential variants are not defined for
    chains. *)
let lower (c : t) (v : Transform.variant) : Tytra_ir.Ast.design =
  let open Tytra_ir in
  let lanes =
    match v with
    | Transform.Pipe -> 1
    | Transform.ParPipe l -> l
    | other ->
        invalid_arg
          (Printf.sprintf "Chain.lower: unsupported variant %s"
             (Transform.to_string other))
  in
  let n = points c in
  if n mod lanes <> 0 then
    invalid_arg
      (Printf.sprintf "Chain.lower: %d lanes do not divide %d points" lanes n);
  let chunk = n / lanes in
  let ty = (List.hd c.ch_stages).Expr.k_ty in
  let b =
    Builder.create
      (Printf.sprintf "%s_%s" c.ch_name (Transform.to_string v))
  in
  List.iter
    (fun (k : Expr.kernel) ->
      List.iter
        (fun (r : Expr.reduction) ->
          ignore (Builder.global b r.Expr.r_name ~ty ~init:r.Expr.r_init ()))
        k.Expr.k_reductions)
    c.ch_stages;
  (* stage PE functions *)
  List.iteri
    (fun i (k : Expr.kernel) ->
      ignore
        (Builder.func b
           (Printf.sprintf "fs%d" i)
           ~kind:Ast.Pipe ~params:(Lower.kernel_params k)
           (fun fb -> Lower.emit_kernel_body k fb)))
    c.ch_stages;
  (* the coarse pipeline wrapper: external streams + per-stage scalars *)
  let last = List.nth c.ch_stages (List.length c.ch_stages - 1) in
  let scalar_param i p = Printf.sprintf "s%d_%s" i p in
  let top_params =
    List.concat
      (List.mapi
         (fun i (k : Expr.kernel) ->
           List.map (fun s -> (s, ty)) (external_inputs i k)
           @ List.map (fun (p, _) -> (scalar_param i p, ty)) k.Expr.k_params)
         c.ch_stages)
  in
  ignore
    (Builder.func_raw b "pipeTop" ~kind:Ast.Pipe ~params:top_params
       (List.concat
          (List.mapi
             (fun i (k : Expr.kernel) ->
               let chained =
                 if i = 0 then [] else [ Ast.Var (Printf.sprintf "c%d" i) ]
               in
               let args =
                 chained
                 @ List.map (fun s -> Ast.Var s) (external_inputs i k)
                 @ List.map
                     (fun (p, _) -> Ast.Var (scalar_param i p))
                     k.Expr.k_params
               in
               let rets =
                 if i = List.length c.ch_stages - 1 then []
                 else [ Printf.sprintf "c%d" (i + 1) ]
               in
               [ Ast.Call
                   { callee = Printf.sprintf "fs%d" i; args; kind = Ast.Pipe;
                     rets } ])
             c.ch_stages)));
  (* per-lane streams, ports on main *)
  let main_params = ref [] in
  let lane_top_args = Array.make lanes [] in
  let lane_name base i = if lanes = 1 then base else Printf.sprintf "%s%d" base i in
  for l = 0 to lanes - 1 do
    let mk_port s dir =
      let pname = lane_name s l in
      let mem = Builder.mem b ("m_" ^ pname) ~space:Ast.Global ~ty ~size:chunk in
      let str = Builder.stream b ("s_" ^ pname) ~dir ~mem ~pattern:Ast.Cont in
      Builder.port b ~fn:"main" ~port:pname ~ty ~dir ~stream:str ();
      main_params := (pname, ty) :: !main_params;
      pname
    in
    let ins = List.map (fun s -> mk_port s Ast.IStream) (external_streams c) in
    List.iter
      (fun (o : Expr.output) ->
        ignore (mk_port ("o_" ^ o.Expr.o_name) Ast.OStream))
      last.Expr.k_outputs;
    lane_top_args.(l) <-
      (let exti = ref ins in
       List.concat
         (List.mapi
            (fun i (k : Expr.kernel) ->
              let take m =
                let rec go acc m l =
                  if m = 0 then (List.rev acc, l)
                  else
                    match l with
                    | [] -> (List.rev acc, [])
                    | x :: tl -> go (x :: acc) (m - 1) tl
                in
                let got, rest = go [] m !exti in
                exti := rest;
                got
              in
              let exts = take (List.length (external_inputs i k)) in
              List.map (fun s -> Ast.Var s) exts
              @ List.map
                  (fun (_, v') ->
                    if Ty.is_float ty then
                      Ast.ImmF (Expr.param_value_float v')
                    else Ast.Imm (Ty.mask ty v'))
                  k.Expr.k_params)
            c.ch_stages))
  done;
  let main_params = List.rev !main_params in
  (match v with
  | Transform.Pipe ->
      ignore
        (Builder.func b "main" ~kind:Ast.Seq ~params:main_params (fun fb ->
             Builder.call fb "pipeTop" lane_top_args.(0) Ast.Pipe))
  | Transform.ParPipe l ->
      let f1_params =
        List.concat
          (List.init l (fun i ->
               List.map
                 (fun s -> (lane_name s i, ty))
                 (external_streams c)))
      in
      ignore
        (Builder.func b "f1" ~kind:Ast.Par ~params:f1_params (fun fb ->
             for i = 0 to l - 1 do
               (* rebuild args referencing f1's params *)
               let exti =
                 ref (List.map (fun s -> lane_name s i) (external_streams c))
               in
               let args =
                 List.concat
                   (List.mapi
                      (fun si (k : Expr.kernel) ->
                        let m = List.length (external_inputs si k) in
                        let rec take acc m l =
                          if m = 0 then (List.rev acc, l)
                          else
                            match l with
                            | [] -> (List.rev acc, [])
                            | x :: tl -> take (x :: acc) (m - 1) tl
                        in
                        let got, rest = take [] m !exti in
                        exti := rest;
                        List.map (fun s -> Ast.Var s) got
                        @ List.map
                            (fun (_, v') ->
                              if Ty.is_float ty then
                                Ast.ImmF (Expr.param_value_float v')
                              else Ast.Imm (Ty.mask ty v'))
                            k.Expr.k_params)
                      c.ch_stages)
               in
               Builder.call fb "pipeTop" args Ast.Pipe
             done));
      ignore
        (Builder.func b "main" ~kind:Ast.Seq ~params:main_params (fun fb ->
             Builder.call fb "f1"
               (List.concat
                  (List.init l (fun i ->
                       List.map
                         (fun s -> Ast.Var (lane_name s i))
                         (external_streams c))))
               Ast.Par))
  | _ -> assert false);
  Validate.check_exn (Builder.design b)
