lib/front/c_front.ml: Expr Filename Fortran Fun Int64 List Printf String Tytra_ir
