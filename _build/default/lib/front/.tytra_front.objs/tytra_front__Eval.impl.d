lib/front/eval.ml: Array Ast Expr Int64 Interp List Printf Transform Ty Tytra_ir
