lib/front/chain.ml: Array Ast Builder Eval Expr List Lower Printf Result Transform Ty Tytra_ir Validate
