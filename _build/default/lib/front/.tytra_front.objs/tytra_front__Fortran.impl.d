lib/front/fortran.ml: Expr Filename Fun Int64 List Printf String Tytra_ir
