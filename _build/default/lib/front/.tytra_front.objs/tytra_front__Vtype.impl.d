lib/front/vtype.ml: Format List Printf Tytra_ir
