lib/front/transform.ml: Array Expr List Printf Result Vtype
