lib/front/expr.ml: Ast Hashtbl Int64 List Printf Ty Tytra_ir Vtype
