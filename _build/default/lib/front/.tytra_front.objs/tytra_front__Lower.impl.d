lib/front/lower.ml: Array Ast Builder Expr Hashtbl List Printf Transform Ty Tytra_ir Validate
