(** Reference evaluator for the functional DSL — the semantics against
    which correct-by-construction variant generation is verified.

    Values are carried as [int64]; for float-typed kernels the bits are an
    IEEE-754 double ([Int64.bits_of_float]). Integer arithmetic wraps
    modulo the scalar type's width, matching the hardware datapath (and
    the IR interpreter in [tytra_ir]). Stencil accesses outside the index
    space read 0 (edge padding, as the generated stream hardware does).

    {!run_variant} evaluates a reshaped/annotated variant by processing
    its lanes chunk-by-chunk in lane-major order. Because reshaping is
    order- and size-preserving, its observable behaviour must equal
    {!run_baseline} — the property the test suite checks with qcheck. *)

open Tytra_ir

type env = (string * int64 array) list

type result = {
  outputs : (string * int64 array) list;
  reductions : (string * int64) list;
}

let of_f f = Int64.bits_of_float f

(** Scalar operation semantics — shared with the IR interpreter
    ({!Tytra_ir.Interp.apply_op}), so the functional evaluator and lowered
    designs agree by construction. *)
let apply_op = Interp.apply_op

(* evaluate the kernel expression at flat index [i] *)
let rec eval_expr (k : Expr.kernel) (env : env) (n : int) (i : int)
    (e : Expr.expr) : int64 =
  let ty = k.Expr.k_ty in
  let stream s =
    match List.assoc_opt s env with
    | Some a -> a
    | None -> invalid_arg (Printf.sprintf "Eval: missing input stream %S" s)
  in
  match e with
  | Expr.Input s ->
      let a = stream s in
      if i < Array.length a then a.(i) else 0L
  | Expr.Stencil (s, off) ->
      let a = stream s in
      let j = i + off in
      if j >= 0 && j < n && j < Array.length a then a.(j) else 0L
  | Expr.Param p -> (
      match List.assoc_opt p k.Expr.k_params with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "Eval: missing parameter %S" p))
  | Expr.ConstI v -> Ty.mask ty v
  | Expr.ConstF f -> of_f f
  | Expr.Bin (op, a, b) ->
      apply_op ty op [ eval_expr k env n i a; eval_expr k env n i b ]
  | Expr.Un (op, a) -> apply_op ty op [ eval_expr k env n i a ]
  | Expr.Select (c, a, b) ->
      apply_op ty Ast.Select
        [ eval_expr k env n i c; eval_expr k env n i a; eval_expr k env n i b ]

let eval_point (k : Expr.kernel) (env : env) (n : int) (i : int) :
    (string * int64) list * (string * int64) list =
  ( List.map (fun (o : Expr.output) ->
        (o.Expr.o_name, eval_expr k env n i o.Expr.o_expr))
      k.Expr.k_outputs,
    List.map (fun (r : Expr.reduction) ->
        (r.Expr.r_name, eval_expr k env n i r.Expr.r_expr))
      k.Expr.k_reductions )

(** [run_baseline p env] — evaluate [map kernel] over the whole index
    space in order: the paper's baseline single-pipeline semantics. *)
let run_baseline (p : Expr.program) (env : env) : result =
  let k = p.Expr.p_kernel in
  let n = Expr.points p in
  let outs =
    List.map (fun (o : Expr.output) -> (o.Expr.o_name, Array.make n 0L))
      k.Expr.k_outputs
  in
  let reds =
    List.map (fun (r : Expr.reduction) -> (r.Expr.r_name, ref r.Expr.r_init))
      k.Expr.k_reductions
  in
  for i = 0 to n - 1 do
    let ovals, rvals = eval_point k env n i in
    List.iter (fun (nm, v) -> (List.assoc nm outs).(i) <- v) ovals;
    List.iter
      (fun (r : Expr.reduction) ->
        let acc = List.assoc r.Expr.r_name reds in
        let v = List.assoc r.Expr.r_name rvals in
        acc := apply_op k.Expr.k_ty r.Expr.r_op [ v; !acc ])
      k.Expr.k_reductions
  done;
  {
    outputs = List.map (fun (n', a) -> (n', a)) outs;
    reductions = List.map (fun (n', r) -> (n', !r)) reds;
  }

(** [run_variant p v env] — evaluate the reshaped/annotated variant:
    lanes process their contiguous chunks; per-lane reduction partials
    combine lane-major. Must equal {!run_baseline} for any applicable
    variant (modulo reduction reassociation, which is exact for the
    integer kernels of the paper's evaluation). *)
let run_variant (p : Expr.program) (v : Transform.variant) (env : env) :
    result =
  let k = p.Expr.p_kernel in
  let n = Expr.points p in
  let bounds = Transform.lane_bounds p v in
  let outs =
    List.map (fun (o : Expr.output) -> (o.Expr.o_name, Array.make n 0L))
      k.Expr.k_outputs
  in
  let lane_partials =
    Array.map
      (fun (lo, hi) ->
        let reds =
          List.map
            (fun (r : Expr.reduction) ->
              (r.Expr.r_name, ref (Ty.mask k.Expr.k_ty 0L)))
            k.Expr.k_reductions
        in
        for i = lo to hi - 1 do
          let ovals, rvals = eval_point k env n i in
          List.iter (fun (nm, v') -> (List.assoc nm outs).(i) <- v') ovals;
          List.iter
            (fun (r : Expr.reduction) ->
              let acc = List.assoc r.Expr.r_name reds in
              let v' = List.assoc r.Expr.r_name rvals in
              acc := apply_op k.Expr.k_ty r.Expr.r_op [ v'; !acc ])
            k.Expr.k_reductions
        done;
        reds)
      bounds
  in
  let reductions =
    List.map
      (fun (r : Expr.reduction) ->
        let acc = ref r.Expr.r_init in
        Array.iter
          (fun reds ->
            acc :=
              apply_op k.Expr.k_ty r.Expr.r_op
                [ !(List.assoc r.Expr.r_name reds); !acc ])
          lane_partials;
        (r.Expr.r_name, !acc))
      k.Expr.k_reductions
  in
  { outputs = outs; reductions }
