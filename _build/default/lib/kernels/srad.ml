(** SRAD — Rodinia's speckle-reducing anisotropic diffusion (ultrasound
    image despeckling), added beyond the paper's three kernels.

    A five-point stencil whose diffusion coefficient involves {e two
    divisions} per point — the one primitive the paper's other kernels
    never exercise, and exactly the operation whose quadratic ALUT cost
    the calibration experiment (Fig 9) characterizes. The integer
    version:

    {v
    dN,dS,dE,dW = neighbour differences
    g2   = (dN² + dS² + dE² + dW²) / (c² + 1)
    l    = dN + dS + dE + dW
    coef = l / (g2 + q0)
    c'   = c + lambda·coef
    v} *)

open Tytra_front
open Expr

let kernel ?(ty = Tytra_ir.Ty.UInt 18) ~(cols : int) () : kernel =
  let fl = Tytra_ir.Ty.is_float ty in
  let pval f i = if fl then param_float f else Int64.of_int i in
  let c = input "c" in
  let dn = sten "c" (-cols) -: c in
  let ds = sten "c" cols -: c in
  let de = sten "c" 1 -: c in
  let dw = sten "c" (-1) -: c in
  let g2 =
    ((dn *: dn) +: (ds *: ds) +: (de *: de) +: (dw *: dw))
    /: ((c *: c) +: ci 1)
  in
  let l = dn +: ds +: de +: dw in
  let coef = l /: (g2 +: param "q0") in
  {
    k_name = "srad";
    k_ty = ty;
    k_inputs = [ "c" ];
    k_params = [ ("q0", pval 0.5 3); ("lambda", pval 0.25 1) ];
    k_outputs = [ { o_name = "c"; o_expr = c +: (param "lambda" *: coef) } ];
    k_reductions =
      [ { r_name = "diffusion"; r_op = Tytra_ir.Ast.Add; r_expr = coef;
          r_init = 0L } ];
  }

(** [program ~rows ~cols ()] — one diffusion step over a [rows × cols]
    image. *)
let program ?(ty = Tytra_ir.Ty.UInt 18) ~rows ~cols () : program =
  { p_kernel = kernel ~ty ~cols (); p_shape = [ rows; cols ] }

(** Rodinia's default 502×458 image, at a divisor-friendly 512×448. *)
let default_program () = program ~rows:512 ~cols:448 ()

let cpu_workload ~(rows : int) ~(cols : int) : Tytra_sim.Cpu_model.workload =
  let points = rows * cols in
  let word = 4 in
  {
    Tytra_sim.Cpu_model.wl_points = points;
    wl_ops_per_point = 24;
    wl_bytes_per_point = 2 * word;
    wl_working_set = 2 * points * word;
  }
