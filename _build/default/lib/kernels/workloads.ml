(** Workload generation: deterministic pseudo-random input data for the
    kernels' streams, used by the evaluator-based correctness tests and
    the golden CPU references. *)

open Tytra_front

(** [random_env ?seed p] — an input array per kernel input stream, filled
    with values representable at the kernel's type (floats in [0, 4) for
    float kernels; small positive integers otherwise, so integer stencils
    stay within range under multiply-accumulate). *)
let random_env ?(seed = "workload") (p : Expr.program) : Eval.env =
  let k = p.Expr.p_kernel in
  let n = Expr.points p in
  let fl = Tytra_ir.Ty.is_float k.Expr.k_ty in
  List.map
    (fun s ->
      let rng = Tytra_sim.Prng.of_string (seed ^ ":" ^ s) in
      let a =
        Array.init n (fun _ ->
            if fl then Int64.bits_of_float (Tytra_sim.Prng.range rng 0.0 4.0)
            else Int64.of_int (Tytra_sim.Prng.int rng 64))
      in
      (s, a))
    k.Expr.k_inputs

(** The golden CPU reference: evaluate the baseline program — this is the
    single-threaded reference implementation the FPGA variants are
    checked against. *)
let golden (p : Expr.program) (env : Eval.env) : Eval.result =
  Eval.run_baseline p env
