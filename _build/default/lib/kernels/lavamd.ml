(** LavaMD — Rodinia's molecular-dynamics benchmark (paper Table II).

    Calculates particle potential and relocation due to mutual forces
    between particles within a large 3-D space. The space is cut into
    boxes of 100 particles; a kernel instance computes, for every particle
    of a home box, its interaction with the particles streamed from a
    neighbour box:

    {v
    dx = xh - xn;  dy = yh - yn;  dz = zh - zn
    r2 = dx² + dy² + dz²
    u2 = a2 · r2
    vij ≈ poly(u2)            -- exp(-u2) by quartic approximation
    fs = 2 · vij
    fx,fy,fz = fs·dx, fs·dy, fs·dz ; e += qv · vij
    v}

    The integer version is all-multiplier datapath — no stencil offsets,
    hence the 0 BRAM of the paper's Table II row — and the box size of
    100 particles gives the ~111-cycle CPKI. The home-box particle is the
    kernel's scalar parameter set; the neighbour particles stream. *)

open Tytra_front
open Expr

let kernel ?(ty = Tytra_ir.Ty.UInt 18) () : kernel =
  let fl = Tytra_ir.Ty.is_float ty in
  let pval f i = if fl then param_float f else Int64.of_int i in
  let dx = param "xh" -: input "xn" in
  let dy = param "yh" -: input "yn" in
  let dz = param "zh" -: input "zn" in
  let r2 = (dx *: dx) +: (dy *: dy) +: (dz *: dz) in
  let u2 = param "a2" *: r2 in
  (* quartic Horner approximation of exp(-u2) *)
  let vij =
    param "c0"
    +: (u2
        *: (param "c1"
            +: (u2 *: (param "c2" +: (u2 *: (param "c3" +: (u2 *: param "c4")))))))
  in
  let fs = vij +: vij in
  {
    k_name = "lavamd";
    k_ty = ty;
    k_inputs = [ "xn"; "yn"; "zn"; "qv" ];
    k_params =
      [
        ("xh", pval 1.5 3); ("yh", pval 2.5 5); ("zh", pval 0.5 1);
        ("a2", pval 0.5 1);
        ("c0", pval 1.0 1); ("c1", pval (-1.0) 1); ("c2", pval 0.5 1);
        ("c3", pval (-0.1666) 1); ("c4", pval 0.04166 1);
      ];
    k_outputs =
      [
        { o_name = "fx"; o_expr = fs *: dx };
        { o_name = "fy"; o_expr = fs *: dy };
        { o_name = "fz"; o_expr = fs *: dz };
      ];
    k_reductions =
      [ { r_name = "energy"; r_op = Tytra_ir.Ast.Add;
          r_expr = input "qv" *: vij; r_init = 0L } ];
  }

(** Rodinia's particles-per-box. *)
let par_per_box = 100

(** [program ~boxes ()] — interactions of one home particle against
    [boxes] neighbour boxes of 100 particles each. *)
let program ?(ty = Tytra_ir.Ty.UInt 18) ?(boxes = 1) () : program =
  { p_kernel = kernel ~ty (); p_shape = [ boxes; par_per_box ] }

(** The Table II configuration: one neighbour box — a ~100-work-item
    kernel instance, matching the paper's CPKI of ~111 cycles. *)
let table2_program () = program ~ty:(Tytra_ir.Ty.UInt 18) ~boxes:1 ()

let cpu_workload ~(boxes : int) : Tytra_sim.Cpu_model.workload =
  let points = boxes * par_per_box in
  let word = 4 in
  {
    Tytra_sim.Cpu_model.wl_points = points;
    wl_ops_per_point = 30;
    wl_bytes_per_point = 7 * word;
    wl_working_set = 4 * points * word;
  }
