lib/kernels/workloads.ml: Array Eval Expr Int64 List Tytra_front Tytra_ir Tytra_sim
