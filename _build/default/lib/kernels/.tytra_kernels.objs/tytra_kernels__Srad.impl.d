lib/kernels/srad.ml: Expr Int64 Tytra_front Tytra_ir Tytra_sim
