lib/kernels/sor.ml: Expr Int64 Tytra_front Tytra_ir Tytra_sim
