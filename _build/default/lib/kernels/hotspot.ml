(** Hotspot — Rodinia's thermal-simulation benchmark (paper Table II).

    Estimates processor temperature from an architectural floorplan and
    simulated power measurements: a 2-D five-point stencil over the
    temperature grid plus the local power dissipation,

    {v
    t' = t + cc * ( cn*(t_n + t_s - 2t) + ce*(t_e + t_w - 2t)
                  + cz*(amb - t) + power )
    v}

    The integer version used for cost-model validation runs at [ui32]:
    its three 32-bit multiplies map to 4 DSP tiles each — the 12 DSPs of
    the paper's Table II row — and its two-row stencil window over a
    512-wide grid is the ~32.8 Kbit of block RAM. *)

open Tytra_front
open Expr

let kernel ?(ty = Tytra_ir.Ty.UInt 32) ~(cols : int) () : kernel =
  let fl = Tytra_ir.Ty.is_float ty in
  let pval f i = if fl then param_float f else Int64.of_int i in
  let t = input "t" in
  let vertical = sten "t" cols +: sten "t" (-cols) -: (t +: t) in
  let horizontal = sten "t" 1 +: sten "t" (-1) -: (t +: t) in
  let delta =
    param "cc"
    *: ((param "cn" *: vertical) +: (param "ce" *: horizontal)
       +: (param "amb" -: t) +: input "power")
  in
  {
    k_name = "hotspot";
    k_ty = ty;
    k_inputs = [ "t"; "power" ];
    k_params =
      [ ("cc", pval 0.5 1); ("cn", pval 0.1 2); ("ce", pval 0.1 2);
        ("amb", pval 80.0 80) ];
    k_outputs = [ { o_name = "t"; o_expr = t +: delta } ];
    k_reductions = [];
  }

(** [program ~rows ~cols ()] — one time-step over a [rows × cols]
    floorplan grid. *)
let program ?(ty = Tytra_ir.Ty.UInt 32) ~rows ~cols () : program =
  { p_kernel = kernel ~ty ~cols (); p_shape = [ rows; cols ] }

(** The Table II configuration: Rodinia's default 512×512 grid — whose
    ~262 K points are the paper's CPKI of 262.3 K cycles. *)
let table2_program () = program ~ty:(Tytra_ir.Ty.UInt 32) ~rows:512 ~cols:512 ()

let cpu_workload ~(rows : int) ~(cols : int) : Tytra_sim.Cpu_model.workload =
  let points = rows * cols in
  let word = 4 in
  {
    Tytra_sim.Cpu_model.wl_points = points;
    wl_ops_per_point = 12;
    wl_bytes_per_point = 3 * word;
    wl_working_set = 3 * points * word;
  }
