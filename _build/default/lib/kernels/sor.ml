(** Successive Over-Relaxation (SOR) — the paper's running exemplar.

    The kernel comes from the Large Eddy Simulator, an experimental
    weather model; it iteratively solves the Poisson equation for the
    pressure. The main computation is a stencil over the six cardinal
    neighbours (paper §II):

    {v
    p_sor pt = reltmp + p
      where
        reltmp = omega * (cn1 * ( cn2l * p_i_pos + cn2s * p_i_neg
                                + cn3l * p_j_pos + cn3s * p_j_neg
                                + cn4l * p_k_pos + cn4s * p_k_neg ) - rhs) - p
    v}

    plus a global convergence-error reduction ([@sorErrAcc], Fig 12
    line 15). Streams: [p] (with six stencil offsets, Fig 13's offset
    buffers) and [rhs]; the weight coefficients [cn*] and [omega] are
    scalar kernel parameters. The integer version ([ui18], as in the
    paper's Table II) and a floating-point version (for the case study's
    realistically sized grids) share the same structure. *)

open Tytra_front
open Expr

(** [kernel ~ty ~im ~jm ()] — the SOR kernel for a grid with leading
    dimensions [im] (i stride 1) and [jm] (j stride [im]); the k stride is
    [im*jm], giving the maximum stream offset [Noff = im*jm] (the paper's
    [ND1*ND2], Fig 12 line 8). *)
let kernel ?(ty = Tytra_ir.Ty.UInt 18) ~(im : int) ~(jm : int) () : kernel =
  let fl = Tytra_ir.Ty.is_float ty in
  let pval f i = if fl then param_float f else Int64.of_int i in
  let sk = im * jm in
  let neigh =
    (param "cn2l" *: sten "p" 1)
    +: (param "cn2s" *: sten "p" (-1))
    +: (param "cn3l" *: sten "p" im)
    +: (param "cn3s" *: sten "p" (-im))
    +: (param "cn4l" *: sten "p" sk)
    +: (param "cn4s" *: sten "p" (-sk))
  in
  let reltmp =
    (param "omega" *: ((param "cn1" *: neigh) -: input "rhs")) -: input "p"
  in
  {
    k_name = "sor";
    k_ty = ty;
    k_inputs = [ "p"; "rhs" ];
    k_params =
      [
        ("omega", pval 0.913 1);
        ("cn1", pval 0.1666 1);
        ("cn2l", pval 1.0 1);
        ("cn2s", pval 1.0 1);
        ("cn3l", pval 1.0 1);
        ("cn3s", pval 1.0 1);
        ("cn4l", pval 1.0 1);
        ("cn4s", pval 1.0 1);
      ];
    k_outputs = [ { o_name = "p"; o_expr = reltmp +: input "p" } ];
    k_reductions =
      [ { r_name = "sorErrAcc"; r_op = Tytra_ir.Ast.Add;
          r_expr = reltmp *: reltmp; r_init = 0L } ];
  }

(** [program ~ty ~im ~jm ~km ()] — SOR over an [im × jm × km] grid. *)
let program ?(ty = Tytra_ir.Ty.UInt 18) ~im ~jm ~km () : program =
  { p_kernel = kernel ~ty ~im ~jm (); p_shape = [ im; jm; km ] }

(** The Table II configuration: the integer kernel on a small validation
    grid (CPKI of a few hundred cycles, as in the paper). *)
let table2_program () = program ~ty:(Tytra_ir.Ty.UInt 18) ~im:8 ~jm:6 ~km:6 ()

(** The case-study grids of paper Fig 17/18: cubes of side 24…192. *)
let case_study_sides = [ 24; 48; 96; 144; 192 ]

let case_study_program ?(ty = Tytra_ir.Ty.Float 32) side =
  program ~ty ~im:side ~jm:side ~km:side ()

(** CPU-baseline workload description (single-threaded Fortran-like sweep:
    ~16 arithmetic ops per point; traffic: read p×7 + rhs, write p — with
    cache reuse of stencil neighbours, ≈ 3 words move per point). *)
let cpu_workload ~(side : int) : Tytra_sim.Cpu_model.workload =
  let points = side * side * side in
  let word = 4 in
  {
    Tytra_sim.Cpu_model.wl_points = points;
    wl_ops_per_point = 16;
    wl_bytes_per_point = 3 * word;
    wl_working_set = 2 * points * word;
  }
