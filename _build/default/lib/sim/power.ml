(** Activity-based power and energy model (paper Fig 18: "increase in
    power from the idle CPU power, for both CPU-only and CPU–FPGA
    solutions").

    FPGA delta power = static (configuration + clocking) + per-resource
    dynamic power scaled by the kernel clock + interface power
    proportional to the bandwidth actually moved. CPU delta power is the
    package-active figure of the host description. *)

(** FPGA power above board idle, watts. *)
let fpga_delta_w (device : Tytra_device.Device.t)
    (u : Tytra_device.Resources.usage) ~(fmax_mhz : float)
    ~(gmem_bps : float) ~(host_bps : float) : float =
  let p = device.Tytra_device.Device.power in
  let fscale = fmax_mhz /. p.Tytra_device.Device.pw_ref_mhz in
  p.Tytra_device.Device.pw_static_w
  +. (float_of_int u.Tytra_device.Resources.aluts
      *. p.Tytra_device.Device.pw_alut_w *. fscale)
  +. (float_of_int u.Tytra_device.Resources.regs
      *. p.Tytra_device.Device.pw_reg_w *. fscale)
  +. (float_of_int u.Tytra_device.Resources.bram_blocks
      *. p.Tytra_device.Device.pw_bram_block_w *. fscale)
  +. (float_of_int u.Tytra_device.Resources.dsps
      *. p.Tytra_device.Device.pw_dsp_w *. fscale)
  +. (gmem_bps /. 1e9 *. p.Tytra_device.Device.pw_dram_w_per_gbs)
  +. (host_bps /. 1e9 *. p.Tytra_device.Device.pw_link_w_per_gbs)

(** CPU package power above idle while computing, watts. *)
let cpu_delta_w (cpu : Tytra_device.Device.cpu) : float =
  cpu.Tytra_device.Device.cpu_active_w

(** Energy above idle for a run of [seconds] at [delta_w] watts. *)
let energy_j ~(delta_w : float) ~(seconds : float) : float =
  delta_w *. seconds

(** Energy for an FPGA run: device delta power applied over device time,
    plus host-side transfer power applied over host time (the host still
    burns some active power while driving DMA). *)
let fpga_run_energy_j (device : Tytra_device.Device.t)
    (cpu : Tytra_device.Device.cpu) (u : Tytra_device.Resources.usage)
    ~(fmax_mhz : float) ~(gmem_bps : float) ~(host_bps : float)
    ~(device_s : float) ~(host_s : float) : float =
  let p_dev = fpga_delta_w device u ~fmax_mhz ~gmem_bps ~host_bps in
  let p_host_during_dma = 0.25 *. cpu_delta_w cpu in
  (p_dev *. (device_s +. host_s)) +. (p_host_during_dma *. host_s)

(** Energy for a CPU-only run. *)
let cpu_run_energy_j (cpu : Tytra_device.Device.cpu) ~(seconds : float) :
    float =
  cpu_delta_w cpu *. seconds
