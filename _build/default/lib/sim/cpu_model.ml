(** CPU baseline timing model (the [cpu] series of the paper's §VII case
    study: a Fortran implementation compiled with [gcc -O2] on an Intel
    i7 quad-core at 1.6 GHz, single-threaded).

    A classical roofline-style model: per sweep over the index space the
    CPU is limited either by instruction issue (operations / (IPC ×
    frequency)) or by memory traffic (bytes / sustained bandwidth) once
    the working set falls out of the last-level cache. The kernel library
    supplies per-point operation counts and byte traffic. *)

type workload = {
  wl_points : int;        (** index-space points per kernel instance *)
  wl_ops_per_point : int; (** arithmetic ops per point *)
  wl_bytes_per_point : int; (** DRAM traffic per point once out of cache *)
  wl_working_set : int;   (** bytes touched per instance *)
}

let llc_bytes = 8 * 1024 * 1024

(** [instance_s cpu w] — seconds for one kernel instance (one sweep). *)
let instance_s (cpu : Tytra_device.Device.cpu) (w : workload) : float =
  let compute =
    float_of_int (w.wl_points * w.wl_ops_per_point)
    /. (cpu.Tytra_device.Device.cpu_ipc *. cpu.Tytra_device.Device.cpu_freq_hz)
  in
  let mem =
    if w.wl_working_set <= llc_bytes then
      (* resident in cache after the first sweep: pay ~1/4 of the traffic *)
      float_of_int (w.wl_points * w.wl_bytes_per_point)
      /. (4.0 *. cpu.Tytra_device.Device.cpu_mem_bw)
    else
      float_of_int (w.wl_points * w.wl_bytes_per_point)
      /. cpu.Tytra_device.Device.cpu_mem_bw
  in
  (* scalar code does not overlap compute and memory perfectly *)
  Float.max compute mem +. (0.25 *. Float.min compute mem)

(** [run_s cpu w ~nki] — seconds for [nki] kernel instances. *)
let run_s (cpu : Tytra_device.Device.cpu) (w : workload) ~(nki : int) : float
    =
  float_of_int nki *. instance_s cpu w
