lib/sim/cpu_model.ml: Float Tytra_device
