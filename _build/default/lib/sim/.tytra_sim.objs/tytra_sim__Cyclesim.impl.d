lib/sim/cyclesim.ml: Analysis Ast Dram Float Format Hostlink Int64 List Prng Ty Tytra_device Tytra_ir
