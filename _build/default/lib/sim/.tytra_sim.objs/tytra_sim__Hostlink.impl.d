lib/sim/hostlink.ml: Tytra_device
