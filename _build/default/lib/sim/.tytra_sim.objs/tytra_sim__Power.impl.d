lib/sim/power.ml: Tytra_device
