lib/sim/dram.ml: Array Int64 Tytra_device
