lib/sim/prng.ml: Char Float Int64 String
