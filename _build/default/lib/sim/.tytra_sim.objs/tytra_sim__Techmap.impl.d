lib/sim/techmap.ml: Array Ast Config_tree Float Format Hashtbl List Opinfo Printf Prng Ty Tytra_device Tytra_hdl Tytra_ir
