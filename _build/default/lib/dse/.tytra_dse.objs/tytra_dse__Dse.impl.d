lib/dse/dse.ml: Expr Format List Lower Transform Tytra_cost Tytra_device Tytra_front Tytra_ir
