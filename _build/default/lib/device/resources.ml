(** Resource usage vectors, shared between the analytic cost model
    (estimates) and the technology mapper (actuals). *)

type usage = {
  aluts : int;
  regs : int;
  bram_bits : int;
  bram_blocks : int;
  dsps : int;
}

let zero = { aluts = 0; regs = 0; bram_bits = 0; bram_blocks = 0; dsps = 0 }

let add a b =
  {
    aluts = a.aluts + b.aluts;
    regs = a.regs + b.regs;
    bram_bits = a.bram_bits + b.bram_bits;
    bram_blocks = a.bram_blocks + b.bram_blocks;
    dsps = a.dsps + b.dsps;
  }

let scale k a =
  {
    aluts = k * a.aluts;
    regs = k * a.regs;
    bram_bits = k * a.bram_bits;
    bram_blocks = k * a.bram_blocks;
    dsps = k * a.dsps;
  }

let sum l = List.fold_left add zero l

(** Fractional utilization of each resource class on device [d]; BRAM is
    measured in bits against the device's total bits. *)
type utilization = {
  ut_aluts : float;
  ut_regs : float;
  ut_bram : float;
  ut_dsps : float;
}

let utilization (d : Device.t) (u : usage) : utilization =
  let f a b = if b = 0 then 0.0 else Float.of_int a /. Float.of_int b in
  {
    ut_aluts = f u.aluts d.Device.aluts;
    ut_regs = f u.regs d.Device.regs;
    ut_bram = f u.bram_bits d.Device.bram_bits;
    ut_dsps = f u.dsps d.Device.dsps;
  }

(** The utilization of the scarcest resource — what the "computation wall"
    of the paper's Fig 15 is measured against. *)
let max_utilization (d : Device.t) (u : usage) : float =
  let x = utilization d u in
  Float.max (Float.max x.ut_aluts x.ut_regs) (Float.max x.ut_bram x.ut_dsps)

(** The name of the binding resource class. *)
let binding_resource (d : Device.t) (u : usage) : string =
  let x = utilization d u in
  let cands =
    [ ("ALUTs", x.ut_aluts); ("registers", x.ut_regs); ("BRAM", x.ut_bram);
      ("DSPs", x.ut_dsps) ]
  in
  fst (List.fold_left (fun (bn, bv) (n, v) ->
      if v > bv then (n, v) else (bn, bv))
      ("ALUTs", neg_infinity) cands)

(** [fits d u] — does usage [u] fit on device [d]? *)
let fits (d : Device.t) (u : usage) : bool = max_utilization d u <= 1.0

let pp fmt u =
  Format.fprintf fmt
    "ALUTs=%d REGs=%d BRAM=%d bits (%d blocks) DSPs=%d" u.aluts u.regs
    u.bram_bits u.bram_blocks u.dsps

let pp_utilization fmt (x : utilization) =
  Format.fprintf fmt "ALUT %.1f%% REG %.1f%% BRAM %.1f%% DSP %.1f%%"
    (100. *. x.ut_aluts) (100. *. x.ut_regs) (100. *. x.ut_bram)
    (100. *. x.ut_dsps)
