lib/device/resources.ml: Device Float Format List
