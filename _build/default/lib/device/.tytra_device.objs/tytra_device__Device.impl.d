lib/device/device.ml: Float List Printf String
