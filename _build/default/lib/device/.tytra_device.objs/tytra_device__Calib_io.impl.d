lib/device/calib_io.ml: Bandwidth Fun List Printf String
