lib/device/bandwidth.ml: Device Float List
