(** FPGA target descriptions.

    The cost model takes a one-time "target description" per FPGA platform
    (paper Fig 2): raw resource inventories and peak bandwidths come from
    the architecture description (data-sheets), while the scaling factors
    for sustained bandwidth come from one-time benchmark experiments
    (paper Table I: "Architecture description" vs "Empirical data").

    Two boards from the paper are described: the Maxeler Maia DFE
    (Altera Stratix-V GSD8, used for the case study of §VII) and the
    Alpha-Data ADM-PCIE-7V3 (Xilinx Virtex-7, used for the bandwidth
    experiments of §V-C). *)

(** DRAM timing/geometry parameters consumed by the cycle-level memory
    simulator. A deliberately simple single-channel model: the interesting
    behaviour for the cost model is the row-buffer locality gap between
    contiguous and strided access. *)
type dram_cfg = {
  dram_clock_hz : float;      (** DRAM bus clock *)
  bus_bytes : int;            (** data-bus width in bytes per beat *)
  burst_beats : int;          (** beats per burst (BL8 → 8) *)
  row_bytes : int;            (** row-buffer (page) size in bytes *)
  t_rcd : int;                (** row activate latency, bus cycles *)
  t_rp : int;                 (** precharge latency, bus cycles *)
  t_cas : int;                (** column access latency, bus cycles *)
  ctrl_overhead : int;        (** controller/arbitration cycles per merged
                                  (contiguous) request *)
  rt_nonmerged : int;         (** full round-trip cycles for a non-merged
                                  (strided/random) single-element request *)
  req_bytes : int;            (** bytes fetched per merged request *)
  pipelined_reqs : bool;      (** controller overlaps successive requests
                                  (Maxeler LMem yes; baseline SDAccel no) *)
  launch_overhead_s : float;  (** kernel-launch / buffer-map overhead per
                                  kernel-instance *)
}

(** Host link (PCIe) parameters. *)
type link_cfg = {
  link_peak_bps : float;      (** peak bytes/s *)
  link_latency_s : float;     (** per-transfer setup latency, seconds *)
  link_eff : float;           (** protocol efficiency (TLP overhead etc.) *)
}

(** Power-model parameters (used by the energy comparison, paper Fig 18:
    "increase in power from the idle CPU power"). Dynamic terms are in
    watts per unit resource at 100% toggle at [pw_ref_mhz]. *)
type power_cfg = {
  pw_static_w : float;        (** FPGA static power above board idle *)
  pw_alut_w : float;          (** per used ALUT at reference clock *)
  pw_reg_w : float;
  pw_bram_block_w : float;
  pw_dsp_w : float;
  pw_dram_w_per_gbs : float;  (** DRAM interface W per GB/s moved *)
  pw_link_w_per_gbs : float;  (** PCIe W per GB/s moved *)
  pw_ref_mhz : float;
}

(** An FPGA platform: device + board + host link. *)
type t = {
  dev_name : string;
  family : string;
  (* resource inventory *)
  aluts : int;
  regs : int;
  bram_bits : int;
  bram_block_bits : int;      (** allocation granularity (M20K, BRAM36) *)
  dsps : int;
  (* clocks *)
  fmax_base_mhz : float;      (** achievable kernel clock for a simple
                                  pipeline; derated with utilization *)
  (* bandwidths, bytes/s *)
  hpb : float;                (** host–device peak bandwidth (paper: HPB) *)
  gpb : float;                (** device-DRAM peak bandwidth (paper: GPB) *)
  dram : dram_cfg;
  link : link_cfg;
  power : power_cfg;
}

(** Altera Stratix-V GSD8 on a Maxeler Maia DFE (paper §VII: 695K logic
    elements; host link PCIe gen2 x8). *)
let stratixv_gsd8 : t =
  {
    dev_name = "maxeler-maia.stratix-v-gsd8";
    family = "stratix-v";
    aluts = 524_800;
    regs = 1_049_600;
    bram_bits = 2_567 * 20_480;
    bram_block_bits = 20_480;
    dsps = 1_963;
    fmax_base_mhz = 200.0;
    hpb = 4.0e9;          (* PCIe gen2 x8 raw *)
    gpb = 38.4e9;         (* Maia LMem peak *)
    dram =
      {
        dram_clock_hz = 800.0e6;
        bus_bytes = 48;   (* 6 × 64-bit DIMM channels, ganged *)
        burst_beats = 8;
        row_bytes = 8192;
        t_rcd = 11;
        t_rp = 11;
        t_cas = 11;
        ctrl_overhead = 2;
        rt_nonmerged = 60;
        req_bytes = 384;
        pipelined_reqs = true;
        launch_overhead_s = 30.0e-6;
      };
    link = { link_peak_bps = 4.0e9; link_latency_s = 2.0e-6; link_eff = 0.80 };
    power =
      {
        pw_static_w = 9.0;
        pw_alut_w = 18.0e-6;
        pw_reg_w = 4.0e-6;
        pw_bram_block_w = 1.5e-3;
        pw_dsp_w = 3.0e-3;
        pw_dram_w_per_gbs = 0.35;
        pw_link_w_per_gbs = 0.6;
        pw_ref_mhz = 200.0;
      };
  }

(** Xilinx Virtex-7 690T on an Alpha-Data ADM-PCIE-7V3 (paper §V-C
    bandwidth experiments, Fig 10). The DRAM parameters are set for the
    *baseline, unoptimized* SDAccel access path the paper measured: one
    outstanding 64-byte request per stream beat and no burst inference,
    which is what produces the low absolute sustained-bandwidth plateau
    (~6.3 Gbit/s) of Fig 10. *)
let virtex7_690t : t =
  {
    dev_name = "adm-pcie-7v3.virtex-7-690t";
    family = "virtex-7";
    aluts = 433_200;
    regs = 866_400;
    bram_bits = 1_470 * 36_864;
    bram_block_bits = 36_864;
    dsps = 3_600;
    fmax_base_mhz = 200.0;
    hpb = 7.88e9;         (* PCIe gen3 x8 *)
    gpb = 21.3e9;         (* 2 × DDR3-1333 SODIMM *)
    dram =
      {
        dram_clock_hz = 666.0e6;
        bus_bytes = 8;
        burst_beats = 8;
        row_bytes = 8192;
        t_rcd = 9;
        t_rp = 9;
        t_cas = 9;
        ctrl_overhead = 36; (* long unpipelined AXI path in the baseline *)
        rt_nonmerged = 280;
        req_bytes = 64;
        pipelined_reqs = false;
        launch_overhead_s = 2.0e-3;
      };
    link = { link_peak_bps = 7.88e9; link_latency_s = 1.5e-6; link_eff = 0.82 };
    power =
      {
        pw_static_w = 8.0;
        pw_alut_w = 16.0e-6;
        pw_reg_w = 3.5e-6;
        pw_bram_block_w = 1.8e-3;
        pw_dsp_w = 2.5e-3;
        pw_dram_w_per_gbs = 0.4;
        pw_link_w_per_gbs = 0.6;
        pw_ref_mhz = 200.0;
      };
  }

(** Intel Arria 10 GX 1150 on a Nallatech-385A-class board — a third
    target beyond the paper's two, for cross-device exploration: more
    logic and a faster base clock than the Stratix-V, PCIe gen3, DDR4
    with a well-behaved (pipelined) memory controller. *)
let arria10_gx1150 : t =
  {
    dev_name = "nallatech-385a.arria-10-gx1150";
    family = "arria-10";
    aluts = 854_400;
    regs = 1_708_800;
    bram_bits = 2_713 * 20_480;
    bram_block_bits = 20_480;
    dsps = 1_518;
    fmax_base_mhz = 240.0;
    hpb = 7.88e9;
    gpb = 34.1e9;
    dram =
      {
        dram_clock_hz = 1066.0e6;
        bus_bytes = 16;
        burst_beats = 8;
        row_bytes = 8192;
        t_rcd = 14;
        t_rp = 14;
        t_cas = 14;
        ctrl_overhead = 3;
        rt_nonmerged = 80;
        req_bytes = 256;
        pipelined_reqs = true;
        launch_overhead_s = 50.0e-6;
      };
    link = { link_peak_bps = 7.88e9; link_latency_s = 1.2e-6; link_eff = 0.85 };
    power =
      {
        pw_static_w = 11.0;
        pw_alut_w = 14.0e-6;
        pw_reg_w = 3.0e-6;
        pw_bram_block_w = 1.4e-3;
        pw_dsp_w = 2.8e-3;
        pw_dram_w_per_gbs = 0.30;
        pw_link_w_per_gbs = 0.55;
        pw_ref_mhz = 240.0;
      };
  }

(** Host CPU description for the case-study baseline (paper §VII: Intel
    i7 quad-core at 1.6 GHz, Fortran compiled with [gcc -O2]). *)
type cpu = {
  cpu_name : string;
  cpu_freq_hz : float;
  cpu_cores : int;
  cpu_ipc : float;            (** sustained scalar ops/cycle for stencil code *)
  cpu_mem_bw : float;         (** sustained memory bandwidth, bytes/s *)
  cpu_idle_w : float;
  cpu_active_w : float;       (** package power above idle when computing *)
}

let host_i7 : cpu =
  {
    cpu_name = "intel-i7-quad-1.6GHz";
    cpu_freq_hz = 1.6e9;
    cpu_cores = 4;
    cpu_ipc = 1.6;
    cpu_mem_bw = 12.0e9;
    cpu_idle_w = 35.0;
    cpu_active_w = 42.0;
  }

(** Registry of known targets, for the CLI. *)
let all = [ stratixv_gsd8; virtex7_690t; arria10_gx1150 ]

let find name = List.find_opt (fun d -> d.dev_name = name) all

let find_exn name =
  match find name with
  | Some d -> d
  | None ->
      invalid_arg
        (Printf.sprintf "unknown device %S (known: %s)" name
           (String.concat ", " (List.map (fun d -> d.dev_name) all)))

(** Utilization-dependent clock derating: dense designs close timing at
    lower clocks. A mild linear derate, floored at 60% of base. *)
let fmax_mhz (d : t) ~alut_util =
  let u = Float.max 0.0 (Float.min 1.0 alut_util) in
  let derate = 1.0 -. (0.4 *. u) in
  Float.max (0.6 *. d.fmax_base_mhz) (d.fmax_base_mhz *. derate)
