(** Empirical sustained-bandwidth model (paper §V-C, Fig 10).

    The peak bandwidths [HPB]/[GPB] come off the data-sheets, but the
    bandwidth actually sustained by a stream depends strongly on its access
    pattern and size — up to two orders of magnitude between contiguous and
    strided access, and a pronounced size effect for contiguous access that
    plateaus around 1000×1000 elements (paper Fig 10). The cost model
    captures this with empirical scaling factors ρ (paper Table I: ρ_H,
    ρ_G, "Evaluation method: Empirical data").

    A calibration is a table of measured [(bytes, sustained bytes/s)]
    points per access pattern, produced by the one-time streaming benchmark
    ({!Tytra_streambench} regenerates it on the simulated platform);
    lookups interpolate piecewise-linearly in [log bytes]. *)

type point = { cal_bytes : float; cal_bps : float }

type calib = {
  cal_device : string;
  cont : point list;     (** contiguous access, sorted by size *)
  strided : point list;  (** constant-stride access *)
  random : point list;   (** pseudo-random access (≈ strided, §V-C) *)
}

let sort_points l =
  List.sort (fun a b -> compare a.cal_bytes b.cal_bytes) l

let make ~device ~cont ~strided ~random =
  {
    cal_device = device;
    cont = sort_points (List.map (fun (b, s) -> { cal_bytes = b; cal_bps = s }) cont);
    strided =
      sort_points (List.map (fun (b, s) -> { cal_bytes = b; cal_bps = s }) strided);
    random =
      sort_points (List.map (fun (b, s) -> { cal_bytes = b; cal_bps = s }) random);
  }

(* piecewise-linear interpolation in log-x space, clamped at both ends *)
let interp (points : point list) (bytes : float) : float =
  match points with
  | [] -> invalid_arg "Bandwidth.interp: empty calibration"
  | [ p ] -> p.cal_bps
  | first :: _ ->
      let rec go prev = function
        | [] -> prev.cal_bps
        | p :: tl ->
            if bytes <= p.cal_bytes then
              if bytes <= prev.cal_bytes || prev.cal_bytes = p.cal_bytes then
                if prev == first && bytes < first.cal_bytes then first.cal_bps
                else p.cal_bps
              else begin
                let lx = log bytes and l0 = log prev.cal_bytes
                and l1 = log p.cal_bytes in
                let t = (lx -. l0) /. (l1 -. l0) in
                prev.cal_bps +. (t *. (p.cal_bps -. prev.cal_bps))
              end
            else go p tl
      in
      if bytes <= first.cal_bytes then first.cal_bps
      else go first (List.tl points)

(** [sustained calib pattern ~bytes] — predicted sustained bandwidth
    (bytes/s) for a stream of [bytes] total with the given access
    pattern. *)
let sustained (c : calib) (pattern : [ `Cont | `Strided | `Random ]) ~bytes =
  let pts =
    match pattern with
    | `Cont -> c.cont
    | `Strided -> c.strided
    | `Random -> if c.random = [] then c.strided else c.random
  in
  interp pts bytes

(** [rho calib ~peak pattern ~bytes] — the scaling factor ρ = sustained /
    peak used in the EKIT expressions (clamped to (0, 1]). *)
let rho (c : calib) ~peak pattern ~bytes =
  let s = sustained c pattern ~bytes in
  Float.max 1e-6 (Float.min 1.0 (s /. peak))

(** Host-link efficiency ρ_H: an analytic latency/size model — a transfer
    of [bytes] sustains [eff · peak · bytes / (bytes + latency·peak)].
    Small transfers are latency-dominated, large transfers approach
    [link_eff · peak]. *)
let rho_host (link : Device.link_cfg) ~bytes =
  let b = Float.max 1.0 bytes in
  let denom = b +. (link.link_latency_s *. link.link_peak_bps) in
  Float.max 1e-6 (link.link_eff *. (b /. denom))

let gbit = 1.0e9 /. 8.0 (* 1 Gbit/s in bytes/s *)

(** Default calibration for the ADM-PCIE-7V3, transcribed from the paper's
    Fig 10 (sustained Gbit/s vs the side of a square 2-D array of 32-bit
    words; for strided access the stride equals the side). These are the
    shipped "one-time benchmark experiment" results; `tytra_streambench`
    regenerates the same curve family from the simulated platform
    (experiment E2). *)
let virtex7_default : calib =
  let side_pts = [ 100.; 200.; 400.; 600.; 1000.; 1500.; 2000.; 2500.;
                   3000.; 4000.; 5000.; 6000. ] in
  let cont_gbps = [ 0.3; 1.2; 1.7; 2.4; 4.1; 5.2; 5.6; 5.8; 6.1; 6.2; 6.2; 6.3 ] in
  let strided_sides = [ 100.; 500.; 1000.; 2000.; 3000.; 4000.; 6000. ] in
  let strided_gbps = [ 0.04; 0.07; 0.07; 0.07; 0.07; 0.07; 0.07 ] in
  let bytes side = side *. side *. 4.0 in
  make ~device:"adm-pcie-7v3.virtex-7-690t"
    ~cont:(List.map2 (fun s g -> (bytes s, g *. gbit)) side_pts cont_gbps)
    ~strided:(List.map2 (fun s g -> (bytes s, g *. gbit)) strided_sides strided_gbps)
    ~random:(List.map2 (fun s g -> (bytes s, g *. gbit *. 0.95)) strided_sides strided_gbps)

(** Default calibration for the Maxeler Maia LMem. Maxeler's memory
    controllers schedule long linear bursts, so contiguous streams sustain
    a large fraction of peak; strided/random access still pays the
    row-miss penalty. Plateau fractions follow Maxeler's published LMem
    characteristics; the size roll-off mirrors the Fig 10 shape. *)
let stratixv_default : calib =
  let gpb = 38.4e9 in
  let cont =
    [ (4.0e4, 0.08 *. gpb); (1.6e5, 0.20 *. gpb); (1.0e6, 0.45 *. gpb);
      (4.0e6, 0.62 *. gpb); (1.6e7, 0.70 *. gpb); (6.4e7, 0.72 *. gpb);
      (2.5e8, 0.72 *. gpb) ]
  in
  let strided =
    [ (4.0e4, 0.010 *. gpb); (1.0e6, 0.012 *. gpb); (1.6e7, 0.012 *. gpb);
      (2.5e8, 0.012 *. gpb) ]
  in
  make ~device:"maxeler-maia.stratix-v-gsd8" ~cont ~strided
    ~random:(List.map (fun (b, s) -> (b, 0.95 *. s)) strided)

(** Default calibration for the Arria-10 board: a modern pipelined DDR4
    controller sustains a high fraction of peak for contiguous streams and
    a couple of percent for strided/random. *)
let arria10_default : calib =
  let gpb = 34.1e9 in
  let cont =
    [ (4.0e4, 0.15 *. gpb); (2.5e5, 0.40 *. gpb); (2.0e6, 0.65 *. gpb);
      (1.6e7, 0.78 *. gpb); (1.0e8, 0.80 *. gpb); (5.0e8, 0.80 *. gpb) ]
  in
  let strided =
    [ (4.0e4, 0.018 *. gpb); (2.0e6, 0.022 *. gpb); (1.0e8, 0.022 *. gpb) ]
  in
  make ~device:"nallatech-385a.arria-10-gx1150" ~cont ~strided
    ~random:(List.map (fun (b, s) -> (b, 0.95 *. s)) strided)

(** Calibration shipped for a device (the "one-time input for each unique
    FPGA target" of paper Fig 2). *)
let default_for (d : Device.t) : calib =
  match d.Device.family with
  | "virtex-7" -> virtex7_default
  | "stratix-v" -> stratixv_default
  | "arria-10" -> arria10_default
  | _ -> virtex7_default
