(** TyBEC — the TyTra back-end compiler command-line tool.

    Accepts a design variant in TyTra-IR ([.tirl]), costs it and, if
    needed, generates the HDL code for it (paper Fig 11). Subcommands:

    - [check]   — parse and validate a [.tirl] file;
    - [cost]    — run the analytic cost model (fast path);
    - [synth]   — run the detailed tech-mapper (slow path, "synthesis");
    - [sim]     — cycle-level simulation on the platform model;
    - [hdl]     — emit Verilog, the configuration include and the MaxJ
                  wrapper;
    - [explore] — front-end design-space exploration over a built-in
                  kernel;
    - [bw]      — the sustained-bandwidth streaming benchmark. *)

open Cmdliner

(* ---- exit codes ----

   Distinct and documented (README "Exit codes"): scripts branch on
   them. 0 = success, 1 = internal error (a bug or an unexpected
   exception), 2 = the input could not be read or parsed, 3 = it parsed
   but failed static validation. *)

let exit_internal = 1
let exit_parse = 2
let exit_validation = 3

type failure = { fcode : int; fmsg : string }

let fail code fmt = Printf.ksprintf (fun m -> Error { fcode = code; fmsg = m }) fmt

let exit_of = function
  | Ok () -> 0
  | Error { fcode; fmsg } ->
      prerr_endline ("tybec: " ^ fmsg);
      fcode

(* Last line of defense for the crash-free CLI contract: anything a
   subcommand lets escape is an internal error, reported as exit 1 —
   never an uncaught-exception backtrace with cmdliner's exit 125. *)
let guarded f =
  try f ()
  with e ->
    let bt = Printexc.get_backtrace () in
    prerr_endline ("tybec: internal error: " ^ Printexc.to_string e);
    if bt <> "" then prerr_string bt;
    exit_internal

(* ---- observability: Logs reporter + telemetry flags ---- *)

(* A plain reporter on stderr with elapsed-time stamps and the source
   name: "[+0.012s] tytra.dse: [INFO] explored 16 variants". *)
let log_reporter ppf =
  let t0 = Unix.gettimeofday () in
  let report src level ~over k msgf =
    let k _ =
      over ();
      k ()
    in
    msgf @@ fun ?header ?tags fmt ->
    ignore tags;
    let label =
      match header with
      | Some h -> h
      | None -> String.uppercase_ascii (Logs.level_to_string (Some level))
    in
    Format.kfprintf k ppf
      ("[+%.3fs] %s: [%s] @[" ^^ fmt ^^ "@]@.")
      (Unix.gettimeofday () -. t0)
      (Logs.Src.name src) label
  in
  { Logs.report }

let setup_observability trace metrics verbose level no_fast_ir place_mode
    events metrics_json metrics_addr =
  if no_fast_ir then Tytra_ir.Fastpath.set_enabled false;
  (match place_mode with
  | Some m -> Tytra_sim.Techmap.set_place_mode (Some m)
  | None -> ());
  let level =
    match level with
    | Some l -> l
    | None -> (
        match List.length verbose with
        | 0 -> Some Logs.Warning
        | 1 -> Some Logs.Info
        | _ -> Some Logs.Debug)
  in
  Logs.set_level level;
  Logs.set_reporter (log_reporter Format.err_formatter);
  if
    trace <> None || metrics || events <> None || metrics_json <> None
    || metrics_addr <> None
  then Tytra_telemetry.Control.set_enabled true;
  (match events with
  | Some path -> (
      match Tytra_telemetry.Events.open_file path with
      | () -> ()
      | exception Sys_error e ->
          prerr_endline ("tybec: cannot open --events file: " ^ e);
          exit exit_parse)
  | None -> ());
  let server =
    match metrics_addr with
    | None -> None
    | Some addr -> (
        match Tytra_telemetry.Serve.start ~addr () with
        | sv ->
            (* announced on stderr immediately, so scrapers (the CI curl
               step) know the endpoint is up before the sweep ends *)
            Printf.eprintf "tybec: serving /metrics on %s\n%!"
              (Tytra_telemetry.Serve.bound_addr sv);
            Some sv
        | exception Failure m ->
            prerr_endline ("tybec: " ^ m);
            exit exit_parse)
  in
  at_exit (fun () ->
      (match trace with
      | Some path -> (
          match
            Tytra_telemetry.Export.write_chrome_trace ~process_name:"tybec"
              path
          with
          | () -> Logs.info (fun m -> m "wrote Chrome trace to %s" path)
          | exception Sys_error e ->
              Logs.err (fun m -> m "cannot write trace: %s" e))
      | None -> ());
      (match metrics_json with
      | Some path -> (
          match Tytra_telemetry.Expose.write_registry_json path with
          | () -> Logs.info (fun m -> m "wrote metrics JSON to %s" path)
          | exception Sys_error e ->
              Logs.err (fun m -> m "cannot write metrics JSON: %s" e))
      | None -> ());
      Option.iter Tytra_telemetry.Serve.stop server;
      Tytra_telemetry.Events.close ();
      if metrics then
        Format.printf
          "@.=== telemetry: per-phase summary ===@.%a@.=== telemetry: \
           metrics ===@.%a"
          Tytra_telemetry.Export.pp_summary ()
          Tytra_telemetry.Metrics.pp_text ())

let observability_term =
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE.json"
          ~doc:
            "Write a Chrome trace_event JSON of this run to $(docv); open \
             it in chrome://tracing or https://ui.perfetto.dev.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the per-phase span summary (count, total, mean, p95) \
             and the metric registry on exit.")
  in
  let verbose_arg =
    Arg.(
      value & flag_all
      & info [ "v"; "verbose" ]
          ~doc:"Increase log verbosity ($(b,-v): info, $(b,-vv): debug).")
  in
  let level_arg =
    let conv_level =
      let parse s =
        match Logs.level_of_string s with
        | Ok l -> Ok l
        | Error (`Msg m) -> Error (`Msg m)
      in
      let print fmt l = Format.pp_print_string fmt (Logs.level_to_string l) in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt (some conv_level) None
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Log level: $(b,debug), $(b,info), $(b,warning), $(b,error), \
                $(b,app) or $(b,quiet). Overrides $(b,-v).")
  in
  let no_fast_ir_arg =
    Arg.(
      value & flag
      & info [ "no-fast-ir" ]
          ~doc:
            "Disable the IR fast path (derived variants, incremental \
             annealing) and use the reference implementations; the slow \
             twin kept for differential testing. Also: \
             $(b,TYTRA_FAST_IR=0).")
  in
  let place_mode_arg =
    let conv_mode =
      let parse s =
        match Tytra_sim.Techmap.place_mode_of_string s with
        | Some m -> Ok m
        | None ->
            Error
              (`Msg
                (Printf.sprintf
                   "unknown placement mode %S (known: reference, \
                    incremental, parallel)"
                   s))
      in
      let print fmt m =
        Format.pp_print_string fmt (Tytra_sim.Techmap.place_mode_to_string m)
      in
      Arg.conv (parse, print)
    in
    Arg.(
      value
      & opt (some conv_mode) None
      & info [ "place-mode" ] ~docv:"MODE"
          ~doc:
            "Placement engine for technology mapping: $(b,reference) \
             (full-recompute annealer), $(b,incremental) (delta-evaluated \
             annealer, bit-identical to reference) or $(b,parallel) \
             (analytically seeded replica-exchange annealing across \
             domains; deterministic given a seed, wirelength within 2% of \
             reference). Default: follow the IR fast-path toggle. Also: \
             $(b,TYTRA_PLACE=)$(docv).")
  in
  let events_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE.jsonl"
          ~doc:
            "Append a structured event log to $(docv): one JSON object \
             per line (sweep lifecycle, per-point outcomes, checkpoint \
             writes, span open/close, counter deltas). Follows live with \
             tail -f; schema documented in DESIGN.md §12.")
  in
  let metrics_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Write the metric registry as stable, sorted JSON to $(docv) \
             on exit (machine-readable twin of $(b,--metrics); suitable \
             for diffing in CI).")
  in
  let metrics_addr_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-addr" ] ~docv:"ADDR"
          ~doc:
            "Serve live metric snapshots over HTTP while the command \
             runs: $(b,GET /metrics) (Prometheus text format), \
             $(b,/metrics.json) and $(b,/healthz). $(docv) is HOST:PORT, \
             :PORT, PORT (0 = ephemeral) or unix:PATH.")
  in
  Term.(
    const setup_observability $ trace_arg $ metrics_arg $ verbose_arg
    $ level_arg $ no_fast_ir_arg $ place_mode_arg $ events_arg
    $ metrics_json_arg $ metrics_addr_arg)

(* Root span of one tybec subcommand. *)
let traced name f = Tytra_telemetry.Span.with_ ~name:("tybec." ^ name) f

(* ---- the engine ----

   Every subcommand is a thin adapter over [Tytra_engine.Engine]: flags
   in, one typed request through [Engine.submit], [rs_text] printed
   verbatim. One lazy process-wide engine keeps the CLI a cheap
   one-shot client of the same lifecycle [tybec serve] keeps warm. *)

module Engine = Tytra_engine.Engine

let engine = lazy (Engine.create Engine.default_config)

(* Typed engine errors carry the same "file:line:"-located messages the
   library diagnostics always produced, and the error class picks the
   exit code (internal errors keep the [guarded]-style prefix). *)
let failure_of_engine_error e =
  match e with
  | Engine.Internal_error m ->
      { fcode = Engine.exit_code e; fmsg = "internal error: " ^ m }
  | e -> { fcode = Engine.exit_code e; fmsg = Engine.error_message e }

(* Run one request and print its rendering — the whole lifecycle of a
   design-consuming subcommand. *)
let run_request req =
  match Engine.submit (Lazy.force engine) req with
  | Ok resp ->
      print_string resp.Engine.rs_text;
      Ok ()
  | Error e -> Error (failure_of_engine_error e)

(* Shared parse→validate preamble for the subcommands that consume the
   design directly (hdl, testbench): same cache, same diagnostics. *)
let read_design path =
  Result.map_error failure_of_engine_error
    (Engine.load_design (Lazy.force engine) (Engine.File path))

(* ---- common args ---- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.tirl")

let device_arg =
  let parse s =
    match Tytra_device.Device.find s with
    | Some d -> Ok d
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown device %S (known: %s)" s
               (String.concat ", "
                  (List.map
                     (fun d -> d.Tytra_device.Device.dev_name)
                     Tytra_device.Device.all))))
  in
  let print fmt d =
    Format.pp_print_string fmt d.Tytra_device.Device.dev_name
  in
  Arg.(
    value
    & opt (conv (parse, print)) Tytra_device.Device.stratixv_gsd8
    & info [ "device" ] ~docv:"DEVICE" ~doc:"Target FPGA platform.")

let form_arg =
  let forms =
    [ ("A", Tytra_cost.Throughput.FormA); ("B", Tytra_cost.Throughput.FormB);
      ("C", Tytra_cost.Throughput.FormC) ]
  in
  Arg.(
    value
    & opt (enum forms) Tytra_cost.Throughput.FormB
    & info [ "form" ] ~docv:"A|B|C"
        ~doc:"Memory-execution form (paper Fig 6).")

let nki_arg =
  Arg.(
    value & opt int 1
    & info [ "nki" ] ~docv:"N" ~doc:"Kernel-instance repetitions.")

let calib_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "calib" ] ~docv:"FILE"
        ~doc:"Bandwidth calibration file (from 'tybec bw --save').")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:"Run the IR optimization passes (constant folding, strength \
              reduction, CSE, DCE, constant-argument propagation) before \
              the requested action.")

(* ---- check ---- *)

let check_cmd =
  let run () file =
    guarded @@ fun () ->
    traced "check" @@ fun () ->
    exit_of (run_request (Engine.Check { source = Engine.File file }))
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse and validate a .tirl design")
    Term.(const run $ observability_term $ file_arg)

(* ---- cost ---- *)

let cost_cmd =
  let run () file device form nki opt calib_file =
    guarded @@ fun () ->
    traced "cost" @@ fun () ->
    exit_of
      (run_request
         (Engine.Cost
            { source = Engine.File file; device; form; nki; optimize = opt;
              calib = calib_file }))
  in
  Cmd.v
    (Cmd.info "cost" ~doc:"Run the analytic cost model (fast estimates)")
    Term.(const run $ observability_term $ file_arg $ device_arg $ form_arg
          $ nki_arg $ optimize_arg $ calib_arg)

(* ---- synth ---- *)

let synth_cmd =
  let effort_arg =
    Arg.(
      value
      & opt (enum [ ("fast", `Fast); ("normal", `Normal); ("full", `Full) ])
          `Normal
      & info [ "effort" ] ~doc:"Placement effort.")
  in
  let run () file device effort opt =
    guarded @@ fun () ->
    traced "synth" @@ fun () ->
    exit_of
      (run_request
         (Engine.Synth
            { source = Engine.File file; device; effort; optimize = opt }))
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Run the detailed technology mapper (slow, synthesis-grade)")
    Term.(const run $ observability_term $ file_arg $ device_arg $ effort_arg
          $ optimize_arg)

(* ---- sim ---- *)

let sim_cmd =
  let run () file device form nki opt =
    guarded @@ fun () ->
    traced "sim" @@ fun () ->
    exit_of
      (run_request
         (Engine.Sim
            { source = Engine.File file; device; form; nki; optimize = opt }))
  in
  Cmd.v
    (Cmd.info "sim" ~doc:"Cycle-level simulation on the platform model")
    Term.(const run $ observability_term $ file_arg $ device_arg $ form_arg
          $ nki_arg $ optimize_arg)

(* ---- hdl ---- *)

let hdl_cmd =
  let out_arg =
    Arg.(
      value & opt string "."
      & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run () file dir opt =
    guarded @@ fun () ->
    traced "hdl" @@ fun () ->
    exit_of
      (Result.map
         (fun d ->
           let d = Engine.maybe_optimize opt d in
           let v, vh = Tytra_hdl.Verilog.write ~dir d in
           let mj =
             Filename.concat dir
               (Tytra_hdl.Verilog.sanitize d.Tytra_ir.Ast.d_name ^ "Kernel.maxj")
           in
           let oc = open_out mj in
           output_string oc (Tytra_hdl.Maxj.emit d);
           close_out oc;
           Format.printf "wrote %s@.wrote %s@.wrote %s@." v vh mj)
         (read_design file))
  in
  Cmd.v
    (Cmd.info "hdl" ~doc:"Emit Verilog, config include and MaxJ wrapper")
    Term.(const run $ observability_term $ file_arg $ out_arg $ optimize_arg)

(* ---- explore ---- *)

let explore_cmd =
  let kernel_arg =
    Arg.(
      value
      & opt (enum [ ("sor", `Sor); ("hotspot", `Hotspot); ("lavamd", `Lavamd);
                    ("srad", `Srad) ])
          `Sor
      & info [ "kernel" ] ~doc:"Built-in kernel to explore.")
  in
  let size_arg =
    Arg.(
      value & opt int 16
      & info [ "size" ] ~docv:"N" ~doc:"Grid side (sor/hotspot) or boxes (lavamd).")
  in
  let lanes_arg =
    Arg.(value & opt int 16 & info [ "max-lanes" ] ~doc:"Maximum lane count.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Evaluate design points on $(docv) parallel domains (0 = one \
             per core). Results are identical to the sequential sweep.")
  in
  let no_prune_arg =
    Arg.(
      value & flag
      & info [ "no-prune" ]
          ~doc:
            "Evaluate the whole space exhaustively instead of skipping \
             points whose cost bounds prove them oversize or dominated. \
             The selected variant and Pareto front are identical either \
             way; this flag exists for benchmarking and verification.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a failed point evaluation up to $(docv) times with \
             exponential backoff before giving up on it.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Cooperative per-point deadline: an evaluation running past \
             $(docv) seconds counts as failed (and is retried/quarantined \
             per the other flags).")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Periodically write the evaluated points to $(docv) \
             (atomically), so an interrupted sweep can be restarted with \
             $(b,--resume).")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 32
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Points evaluated between checkpoint writes.")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from a checkpoint written by $(b,--checkpoint): \
             already-evaluated points are adopted without re-evaluation. \
             The selected variant and Pareto front equal an uninterrupted \
             run's.")
  in
  let best_effort_arg =
    Arg.(
      value & flag
      & info [ "best-effort" ]
          ~doc:
            "Degraded mode: quarantine points that still fail after \
             $(b,--retries) and report them, instead of aborting the \
             sweep at the first failure (the $(b,--fail-fast) default).")
  in
  let fail_fast_arg =
    (* The default; exists so scripts can spell the policy explicitly. *)
    Arg.(
      value & flag
      & info [ "fail-fast" ]
          ~doc:
            "Abort the sweep at the first point that fails after its \
             retries (this is the default; opposite of $(b,--best-effort)).")
  in
  let progress_arg =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:
            "Render a live progress line on stderr while the sweep runs: \
             points covered, points/sec, pruned %, cache hit % and ETA.")
  in
  let flight_record_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-record" ] ~docv:"FILE.jsonl"
          ~doc:
            "Arm the DSE flight recorder: a bounded ring of recent \
             per-point records, dumped to $(docv) on completion, on \
             crash, and whenever the process receives $(b,SIGUSR1).")
  in
  let run () kernel size lanes device form nki jobs no_prune retries deadline
      checkpoint checkpoint_every resume best_effort fail_fast progress
      flight_record =
    guarded @@ fun () ->
    traced "explore" @@ fun () ->
    if best_effort && fail_fast then
      exit_of
        (fail exit_parse "--best-effort and --fail-fast are contradictory")
    else begin
      (* Flight recorder + SIGUSR1: dump-on-demand without stopping the
         sweep (OCaml signal handlers run at safepoints, so the dump is
         an ordinary consistent snapshot of the ring). *)
      (match flight_record with
      | Some path ->
          Tytra_dse.Flightrec.enable ();
          Sys.set_signal Sys.sigusr1
            (Sys.Signal_handle
               (fun _ ->
                 Tytra_dse.Flightrec.dump path;
                 Printf.eprintf "tybec: flight recorder dumped to %s\n%!"
                   path))
      | None -> ());
      let on_progress =
        if not progress then None
        else begin
          let t0 = Unix.gettimeofday () in
          Some
            (fun (pg : Tytra_dse.Dse.progress) ->
              let covered =
                pg.Tytra_dse.Dse.pr_evaluated + pg.Tytra_dse.Dse.pr_pruned
                + pg.Tytra_dse.Dse.pr_failed + pg.Tytra_dse.Dse.pr_restored
              in
              let dt = Unix.gettimeofday () -. t0 in
              let rate =
                if dt > 0.0 then float_of_int covered /. dt else 0.0
              in
              let pct part =
                if covered = 0 then 0.0
                else 100.0 *. float_of_int part /. float_of_int covered
              in
              let cs = Tytra_dse.Dse.cache_stats () in
              let lookups =
                cs.Tytra_exec.Cache.st_hits + cs.Tytra_exec.Cache.st_misses
              in
              let hit_pct =
                if lookups = 0 then 0.0
                else
                  100.0
                  *. float_of_int cs.Tytra_exec.Cache.st_hits
                  /. float_of_int lookups
              in
              let remaining = max 0 (pg.Tytra_dse.Dse.pr_space - covered) in
              let eta =
                if rate > 0.0 then float_of_int remaining /. rate else 0.0
              in
              Printf.eprintf
                "\r[explore] %d/%d points  %.1f pts/s  pruned %.0f%%  \
                 cache %.0f%%  eta %.1fs   %!"
                covered pg.Tytra_dse.Dse.pr_space rate
                (pct pg.Tytra_dse.Dse.pr_pruned)
                hit_pct eta)
        end
      in
      let dump_flight () =
        match flight_record with
        | Some path -> (
            try
              Tytra_dse.Flightrec.dump path;
              Printf.eprintf "tybec: flight recorder dumped to %s\n%!" path
            with Sys_error e ->
              Printf.eprintf "tybec: cannot dump flight recorder: %s\n%!" e)
        | None -> ()
      in
      let req =
        Engine.Explore
          {
            Engine.x_kernel =
              (match kernel with
              | `Sor -> Engine.Sor
              | `Hotspot -> Engine.Hotspot
              | `Lavamd -> Engine.Lavamd
              | `Srad -> Engine.Srad);
            x_size = size; x_max_lanes = lanes; x_device = device;
            x_form = form; x_nki = nki; x_jobs = jobs;
            x_prune = not no_prune; x_retries = retries;
            x_deadline_s = deadline; x_best_effort = best_effort;
            x_checkpoint = checkpoint; x_checkpoint_every = checkpoint_every;
            x_resume = resume;
            (* the global --place-mode flag already set the ambient mode
               in setup_observability; the request stays mode-agnostic *)
            x_place_mode = None;
          }
      in
      match Engine.submit ?on_progress (Lazy.force engine) req with
      | Ok resp ->
          if progress then prerr_newline ();
          dump_flight ();
          print_string resp.Engine.rs_text;
          0
      | Error e ->
          (* crash (and fail-fast deadline-expiry) path: dump the ring
             before reporting, as the pre-engine CLI did before the
             exception escaped to [guarded] *)
          (match e with Engine.Internal_error _ -> dump_flight () | _ -> ());
          exit_of (Error (failure_of_engine_error e))
    end
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Design-space exploration over a built-in kernel")
    Term.(
      const run $ observability_term $ kernel_arg $ size_arg $ lanes_arg
      $ device_arg $ form_arg $ nki_arg $ jobs_arg $ no_prune_arg
      $ retries_arg $ deadline_arg $ checkpoint_arg $ checkpoint_every_arg
      $ resume_arg $ best_effort_arg $ fail_fast_arg $ progress_arg
      $ flight_record_arg)

(* ---- bw ---- *)

let bw_cmd =
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:"Save the sweep as a calibration file for 'tybec cost --calib'.")
  in
  let run () device save =
    guarded @@ fun () ->
    traced "bw" @@ fun () ->
    let ms = Tytra_streambench.Streambench.sweep device in
    Format.printf " side       bytes        pattern     sustained@.";
    List.iter
      (fun m -> Format.printf "%a@." Tytra_streambench.Streambench.pp m)
      ms;
    (match save with
    | Some path ->
        Tytra_device.Calib_io.save path
          (Tytra_streambench.Streambench.to_calib device ms);
        Format.printf "calibration written to %s@." path
    | None -> ());
    0
  in
  Cmd.v
    (Cmd.info "bw" ~doc:"Sustained-bandwidth benchmark (paper Fig 10)")
    Term.(const run $ observability_term $ device_arg $ save_arg)



(* ---- testbench ---- *)

let tb_cmd =
  let out_arg =
    Arg.(
      value & opt string "."
      & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let seed_arg =
    Arg.(
      value & opt string "tb"
      & info [ "seed" ] ~docv:"SEED" ~doc:"Stimulus generator seed.")
  in
  let run () file dir seed =
    guarded @@ fun () ->
    traced "testbench" @@ fun () ->
    exit_of
      (Result.bind (read_design file) (fun d ->
           (* random stimulus for every IStream port *)
           let env =
             List.filter_map
               (fun (p : Tytra_ir.Ast.port) ->
                 if p.Tytra_ir.Ast.pt_dir <> Tytra_ir.Ast.IStream then None
                 else
                   match Tytra_ir.Ast.find_stream d p.Tytra_ir.Ast.pt_stream with
                   | None -> None
                   | Some s ->
                       let n =
                         match Tytra_ir.Ast.find_mem d s.Tytra_ir.Ast.so_mem with
                         | Some m -> m.Tytra_ir.Ast.mo_size
                         | None -> 0
                       in
                       let rng =
                         Tytra_sim.Prng.of_string
                           (seed ^ ":" ^ p.Tytra_ir.Ast.pt_port)
                       in
                       Some
                         ( p.Tytra_ir.Ast.pt_port,
                           Array.init n (fun _ ->
                               Int64.of_int (Tytra_sim.Prng.int rng 64)) ))
               d.Tytra_ir.Ast.d_ports
           in
           match Tytra_hdl.Testbench.write ~dir d env with
           | tb ->
               let v, vh = Tytra_hdl.Verilog.write ~dir d in
               Format.printf "wrote %s@.wrote %s@.wrote %s@." v vh tb;
               Format.printf
                 "run with e.g.: iverilog -o tb %s %s && vvp tb@." v tb;
               Ok ()
           | exception Invalid_argument m -> fail exit_validation "%s" m))
  in
  Cmd.v
    (Cmd.info "testbench"
       ~doc:"Emit Verilog plus a self-checking testbench with golden vectors")
    Term.(const run $ observability_term $ file_arg $ out_arg $ seed_arg)

(* ---- serve ---- *)

let serve_cmd =
  let addr_arg =
    Arg.(
      value & opt string "127.0.0.1:9470"
      & info [ "addr" ] ~docv:"ADDR"
          ~doc:
            "Listen address: HOST:PORT, :PORT, PORT (0 = ephemeral) or \
             unix:PATH. The daemon announces the bound address on stderr.")
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains answering requests concurrently.")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:
            "Admission-control bound: connections queued beyond the busy \
             workers. A full queue answers 429 immediately instead of \
             building unbounded backlog.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Evaluation-pool domains the engine keeps for exploration \
             requests (0 = one per core).")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Serve through N shard processes sharing the listen port \
             (SO_REUSEPORT, or an inherited listening fd on kernels \
             without it / unix sockets / port 0). The parent supervises: \
             crashed shards restart, SIGTERM drains every shard, and the \
             admin address aggregates /metrics, /metrics.json and \
             /healthz across them.")
  in
  let batch_window_arg =
    Arg.(
      value & opt (some float) None
      & info [ "batch-window-ms" ] ~docv:"MS"
          ~doc:
            "Enable request batching: hold arriving check/cost/synth/sim \
             requests up to MS milliseconds (or --batch-max requests) and \
             evaluate the window in one pool dispatch, deduplicating \
             identical requests. Overrides \\$(b,TYTRA_BATCH) \
             (\"off\", \"WINDOW\" or \"WINDOW:MAX\").")
  in
  let batch_max_arg =
    Arg.(
      value & opt (some int) None
      & info [ "batch-max" ] ~docv:"N"
          ~doc:"Max requests per batch window (default 16).")
  in
  let admin_addr_arg =
    Arg.(
      value & opt (some string) None
      & info [ "admin-addr" ] ~docv:"ADDR"
          ~doc:
            "With --shards: where the supervisor serves the aggregated \
             /metrics, /metrics.json and /healthz. Default: work port + 1 \
             (ephemeral when the work address is a unix socket or port 0).")
  in
  let shard_child_arg =
    Arg.(
      value & opt (some int) None
      & info [ "shard-child" ] ~docv:"I"
          ~doc:
            "Internal: run as shard I of a --shards front (set by the \
             supervisor, with the socket mode in the environment).")
  in
  let shard_admin_arg =
    Arg.(
      value & opt (some string) None
      & info [ "shard-admin" ] ~docv:"ADDR"
          ~doc:
            "Internal: this shard's private metrics endpoint (set by the \
             supervisor; scraped by the aggregator).")
  in
  let deadline_default_arg =
    Arg.(
      value & opt (some float) None
      & info [ "deadline-default-ms" ] ~docv:"MS"
          ~doc:
            "Default evaluation budget for requests that carry no \
             deadline_ms of their own: the request is answered with a \
             typed deadline_exceeded / timeout error instead of running \
             unboundedly. A request's own deadline_ms always wins.")
  in
  let cache_journal_arg =
    Arg.(
      value & opt (some string) None
      & info [ "cache-journal" ] ~docv:"PATH"
          ~doc:
            "Journal the engine's response cache to an append-only, \
             digest-validated JSONL file so a restarted process reloads \
             its hot cache (crash-safe warm state, DESIGN.md §16). With \
             --shards, each shard journals to PATH.shard-I.")
  in
  let restart_budget_arg =
    Arg.(
      value & opt int 8
      & info [ "restart-budget" ] ~docv:"N"
          ~doc:
            "With --shards: consecutive restarts (exponential backoff, \
             0.5s doubling to 30s) a crash-looping shard is allowed \
             before the supervisor marks it dead; 5s of healthy uptime \
             resets the count.")
  in
  let run () addr workers queue_cap jobs shards batch_window_ms batch_max
      admin_addr shard_child shard_admin deadline_default_ms cache_journal
      restart_budget =
    guarded @@ fun () ->
    traced "serve" @@ fun () ->
    let jobs = if jobs = 0 then Tytra_exec.Pool.default_jobs () else jobs in
    let workers = max 1 workers and queue_cap = max 1 queue_cap in
    let config = { Engine.default_config with jobs } in
    match
      match shard_child with
      | Some _ ->
          (* shard child: the supervisor tells us how to get the socket *)
          let reuseport, listen_fd =
            match Tytra_engine.Shards.child_socket () with
            | Tytra_engine.Shards.Child_plain -> (false, None)
            | Tytra_engine.Shards.Child_reuseport -> (true, None)
            | Tytra_engine.Shards.Child_fd fd -> (false, Some fd)
          in
          Tytra_engine.Daemon.run ~config ~workers ~queue_cap
            ?batch_window_ms ?batch_max ~reuseport ?listen_fd
            ?admin_addr:shard_admin ?deadline_default_ms ?cache_journal
            ~addr ()
      | None ->
          if shards <= 1 then
            Tytra_engine.Daemon.run ~config ~workers ~queue_cap
              ?batch_window_ms ?batch_max ?admin_addr ?deadline_default_ms
              ?cache_journal ~addr ()
          else begin
            let is_unix =
              String.length addr > 5 && String.sub addr 0 5 = "unix:"
            in
            let admin_addr =
              match admin_addr with
              | Some a -> a
              | None -> (
                  (* default: work port + 1 on the same host *)
                  match
                    if is_unix then None else String.rindex_opt addr ':'
                  with
                  | Some i -> (
                      match
                        int_of_string_opt
                          (String.sub addr (i + 1)
                             (String.length addr - i - 1))
                      with
                      | Some p when p > 0 ->
                          String.sub addr 0 (i + 1) ^ string_of_int (p + 1)
                      | _ -> "127.0.0.1:0")
                  | None -> (
                      match if is_unix then None else int_of_string_opt addr
                      with
                      | Some p when p > 0 -> string_of_int (p + 1)
                      | _ -> "127.0.0.1:0"))
            in
            let child_argv ~shard ~admin_addr:shard_admin_addr =
              Array.of_list
                ([
                   Sys.executable_name; "serve";
                   "--addr"; addr;
                   "--workers"; string_of_int workers;
                   "--queue-cap"; string_of_int queue_cap;
                   "--jobs"; string_of_int jobs;
                 ]
                @ (match batch_window_ms with
                  | Some w -> [ "--batch-window-ms"; string_of_float w ]
                  | None -> [])
                @ (match batch_max with
                  | Some m -> [ "--batch-max"; string_of_int m ]
                  | None -> [])
                @ (match deadline_default_ms with
                  | Some d ->
                      [ "--deadline-default-ms"; string_of_float d ]
                  | None -> [])
                @ (match cache_journal with
                  | Some p ->
                      (* per-shard journal: shards share nothing, the
                         warm state included *)
                      [
                        "--cache-journal";
                        p ^ ".shard-" ^ string_of_int shard;
                      ]
                  | None -> [])
                @ [
                    "--shard-child"; string_of_int shard;
                    "--shard-admin"; shard_admin_addr;
                  ])
            in
            Tytra_engine.Shards.run ~restart_budget ~shards ~addr ~admin_addr
              ~child_argv ()
          end
    with
    | () -> 0
    | exception Failure m ->
        (* an unusable listen address is an input error *)
        exit_of (fail exit_parse "%s" m)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the cost model as a long-lived daemon: POST /v1/submit \
          speaks the versioned JSON protocol (DESIGN.md §13); /metrics and \
          /healthz answer on the same port. --shards N scales to a \
          multi-process front, --batch-window-ms batches request \
          evaluation, and \"stream\":true on an explore answers JSONL \
          progress frames (DESIGN.md §15). SIGTERM drains gracefully.")
    Term.(
      const run $ observability_term $ addr_arg $ workers_arg $ queue_cap_arg
      $ jobs_arg $ shards_arg $ batch_window_arg $ batch_max_arg
      $ admin_addr_arg $ shard_child_arg $ shard_admin_arg
      $ deadline_default_arg $ cache_journal_arg $ restart_budget_arg)

(* ---- import (legacy front ends) ---- *)

let import_cmd =
  let src_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.f90|FILE.c")
  in
  let sizes_arg =
    Arg.(
      value
      & opt (list ~sep:',' (pair ~sep:'=' string int)) []
      & info [ "sizes" ] ~docv:"NAME=V,..."
          ~doc:"Bindings for symbolic loop bounds, e.g. im=16,jm=16,km=16.")
  in
  let lanes_opt =
    Arg.(
      value & opt int 1
      & info [ "lanes" ] ~docv:"N" ~doc:"Lane count of the generated variant.")
  in
  let ty_arg =
    let parse s =
      match Tytra_ir.Ty.of_string s with
      | Ok t -> Ok t
      | Error e -> Error (`Msg e)
    in
    Arg.(
      value
      & opt (conv (parse, fun fmt t ->
                Format.pp_print_string fmt (Tytra_ir.Ty.to_string t)))
          (Tytra_ir.Ty.UInt 18)
      & info [ "ty" ] ~docv:"TYPE" ~doc:"Element type (ui18, fp32, ...).")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE.tirl"
          ~doc:"Write the lowered TyTra-IR here (default: stdout).")
  in
  let run () src sizes lanes ty out =
    guarded @@ fun () ->
    traced "import" @@ fun () ->
    let result =
      try
        let prog =
          if Filename.check_suffix src ".c" then
            Tytra_front.C_front.parse_file ~ty ~sizes src
          else Tytra_front.Fortran.parse_file ~ty ~sizes src
        in
        let v =
          if lanes <= 1 then Tytra_front.Transform.Pipe
          else Tytra_front.Transform.ParPipe lanes
        in
        if not (Tytra_front.Transform.applicable prog v) then
          fail exit_validation
            "%d lanes do not divide the %d-point index space" lanes
            (Tytra_front.Expr.points prog)
        else begin
          let d = Tytra_front.Lower.lower prog v in
          (match out with
          | Some path ->
              Tytra_ir.Pprint.write_file path d;
              Format.printf "wrote %s@." path
          | None -> Format.printf "%a@." Tytra_ir.Pprint.pp_design d);
          Ok ()
        end
      with
      | Tytra_front.Fortran.Error (m, l) -> fail exit_parse "%s:%d: %s" src l m
      | Invalid_argument m -> fail exit_parse "%s" m
    in
    exit_of result
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:"Import a legacy Fortran/C loop nest and lower it to TyTra-IR")
    Term.(
      const run $ observability_term $ src_arg $ sizes_arg $ lanes_opt $ ty_arg
      $ out_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "tybec" ~version:"1.0.0"
       ~doc:"TyTra back-end compiler: cost models and code generation for \
             FPGA design-space exploration")
    [ check_cmd; cost_cmd; synth_cmd; sim_cmd; hdl_cmd; tb_cmd;
      explore_cmd; import_cmd; bw_cmd; serve_cmd ]

let () = exit (Cmd.eval' main_cmd)
