(** Host–device link (PCIe) transfer-time model. *)

(** [transfer_s link ~bytes] — seconds to move [bytes] across the link in
    one DMA transfer: per-transfer setup latency plus the payload at
    protocol-efficiency-derated peak. *)
let transfer_s (link : Tytra_device.Device.link_cfg) ~(bytes : int) : float =
  if bytes <= 0 then 0.0
  else begin
    Tytra_telemetry.Metrics.incr "sim.host.transfers";
    Tytra_telemetry.Metrics.add "sim.host.bytes" (float_of_int bytes);
    link.Tytra_device.Device.link_latency_s
    +. (float_of_int bytes
        /. (link.Tytra_device.Device.link_peak_bps
            *. link.Tytra_device.Device.link_eff))
  end

(** Effective bandwidth of a transfer of [bytes], bytes/s. *)
let effective_bps (link : Tytra_device.Device.link_cfg) ~(bytes : int) : float
    =
  if bytes <= 0 then 0.0
  else float_of_int bytes /. transfer_s link ~bytes
