(** Deterministic splitmix64 PRNG.

    All "synthesis noise" in the technology mapper and all stochastic
    choices in the simulator draw from this generator, seeded from stable
    strings (design name + device + resource class), so that benches and
    tests are exactly reproducible run-to-run. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

(** FNV-1a hash of a string, for stable seeding. *)
let seed_of_string s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let of_string s = create (seed_of_string s)

(* splitmix64 output mixer (Steele et al.): full-avalanche finalizer
   shared by the stream step and {!split}. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 (t : t) : int64 =
  t.state <- Int64.add t.state golden;
  mix t.state

(** [split t i] — the [i]-th child stream of [t]'s current state. The
    child seed passes (state, index) through the splitmix64 mixer twice,
    so sibling streams (and the parent) are decorrelated rather than
    merely offset along one sequence. Does not advance [t]. *)
let split (t : t) (i : int) : t =
  let z = Int64.add t.state (Int64.mul golden (Int64.of_int (i + 1))) in
  create (mix (mix (Int64.logxor z 0x5851F42D4C957F2DL)))

(** Uniform float in [0, 1). *)
let float (t : t) : float =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

(** Uniform int in [0, bound). *)
let int (t : t) bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  int_of_float (float t *. Float.of_int bound)

(** Uniform float in [lo, hi). *)
let range (t : t) lo hi = lo +. (float t *. (hi -. lo))

(** Multiplicative noise: a factor in [1-eps, 1+eps]. *)
let noise (t : t) eps = 1.0 +. range t (-.eps) eps
