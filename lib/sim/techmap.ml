(** Technology mapper — the detailed, slow elaboration that plays the role
    of vendor synthesis in this reproduction (see DESIGN.md §2).

    Where the analytic cost model (in [tytra_cost]) evaluates closed-form
    expressions per instruction, the tech-mapper {e elaborates} the design:
    it expands every scheduled instruction into device primitives (ALUT
    cells with carry chains, 18×18 DSP tiles, block-RAM macros), allocates
    BRAM at block granularity, packs glue logic, and runs a
    simulated-annealing placement of the resulting netlist to estimate the
    achievable clock. Its outputs are the "Actual" rows of the paper's
    Table II and the synthesis points from which the cost model's
    expressions are fitted (paper Fig 9).

    Determinism: all noise comes from {!Prng} seeded by
    (design, device, resource class). *)

open Tytra_ir

module Log = (val Logs.src_log (Logs.Src.create "tytra.techmap"))

(* ------------------------------------------------------------------ *)
(* Primitive elaboration rules (ALUT / DSP / reg cells per operation)  *)
(* ------------------------------------------------------------------ *)

let ceil_div a b = (a + b - 1) / b

(** ALUT cells for one functional unit. These integer rules are the
    device-level "truth" the cost model's fitted polynomials approximate:
    e.g. unsigned division elaborates to one restoring stage per quotient
    bit, [w + 4] ALUTs per stage less end-stage optimizations — the
    quadratic trend of the paper's Fig 9. *)
let alut_cells (op : Ast.op) (ty : Ty.t) : int =
  let w = Ty.width ty in
  if Ty.is_float ty then
    match op with
    | Ast.Add | Ast.Sub -> if w = 32 then 480 else 1050
    | Ast.Mul -> if w = 32 then 130 else 410
    | Ast.Div -> if w = 32 then 820 else 3150
    | Ast.Sqrt -> if w = 32 then 460 else 1900
    | Ast.CmpEq | Ast.CmpNe | Ast.CmpLt | Ast.CmpLe | Ast.CmpGt | Ast.CmpGe
      -> 60
    | Ast.Min | Ast.Max -> 90
    | Ast.Abs | Ast.Neg -> 2
    | Ast.Select -> ceil_div w 2
    | Ast.Mov -> 0
    | _ -> 40
  else
    match op with
    | Ast.Add | Ast.Sub -> w
    | Ast.Mul ->
        let tiles = ceil_div w 18 in
        if tiles <= 1 then 4 else ((tiles - 1) * 2 * w) + 20
    | Ast.Div | Ast.Rem ->
        (* w restoring stages of (w+4) ALUTs, minus shared end-stage
           logic: w^2 + 4w - 3w/10 - 10 ≈ the paper's x^2+3.7x-10.6 *)
        max 2 ((w * w) + (4 * w) - (3 * w / 10) - 10)
    | Ast.Sqrt -> max 2 ((w / 2 * (w + 3)) - 6)
    | Ast.And | Ast.Or | Ast.Xor -> ceil_div w 2
    | Ast.Not -> ceil_div w 8 + 1
    | Ast.Shl | Ast.Shr ->
        (* barrel shifter; constant shifts are free wiring but the IR
           does not distinguish, so assume variable *)
        let stages = max 1 (int_of_float (ceil (log (float_of_int w) /. log 2.))) in
        ceil_div (w * stages) 2
    | Ast.Min | Ast.Max -> w + ceil_div w 2
    | Ast.Abs -> if Ty.is_signed ty then w else 0
    | Ast.Neg -> w
    | Ast.CmpEq | Ast.CmpNe -> ceil_div w 3 + 1
    | Ast.CmpLt | Ast.CmpLe | Ast.CmpGt | Ast.CmpGe -> ceil_div w 2 + 1
    | Ast.Select -> ceil_div w 2
    | Ast.Mov -> 0

(** DSP tiles for one functional unit (18×18 multiplier granularity;
    above one tile, partial products pair across half-DSP columns). *)
let dsp_cells (op : Ast.op) (ty : Ty.t) : int =
  let w = Ty.width ty in
  if Ty.is_float ty then
    match op with
    | Ast.Mul -> if w = 32 then 2 else 8
    | Ast.Add | Ast.Sub -> if w = 32 then 0 else 2
    | _ -> 0
  else
    match op with
    | Ast.Mul ->
        let tiles = ceil_div w 18 in
        if tiles <= 1 then 1 else 2 * tiles
    | _ -> 0

(** Constant per-instance infrastructure. *)
let stream_ctrl_aluts = 58
let stream_ctrl_regs = 94
let top_glue_aluts = 26
let top_glue_regs = 40
let lane_glue_aluts = 9
let lane_glue_regs = 12

(* ------------------------------------------------------------------ *)
(* Netlist construction                                                *)
(* ------------------------------------------------------------------ *)

type netlist = {
  n_cells : int;                   (** abstract placeable cells *)
  n_edges : (int * int) array;     (** connectivity for placement *)
}

(* Build an abstract connectivity graph: each instruction occupies a
   contiguous run of cells chained internally; dataflow edges connect the
   producer's last cell to the consumer's first. *)
let build_netlist (d : Ast.design) (pes : Ast.func list) : netlist =
  let edges = ref [] in
  let count = ref 0 in
  let alloc n =
    let base = !count in
    count := !count + max 1 n;
    for k = base + 1 to base + n - 1 do
      edges := (k - 1, k) :: !edges
    done;
    base
  in
  List.iter
    (fun (f : Ast.func) ->
      let producer = Hashtbl.create 16 in
      List.iter
        (fun (n, ty) -> Hashtbl.replace producer n (alloc (Ty.width ty / 6 + 1)))
        f.fn_params;
      List.iter
        (fun (i : Ast.instr) ->
          match i with
          | Ast.Offset { dst; ty; src; _ } ->
              let base = alloc (Ty.width ty / 6 + 1) in
              (match src with
              | Ast.Var v -> (
                  match Hashtbl.find_opt producer v with
                  | Some p -> edges := (p, base) :: !edges
                  | None -> ())
              | _ -> ());
              Hashtbl.replace producer dst base
          | Ast.Assign { dst; ty; op; args } ->
              let n = max 1 (alut_cells op ty) in
              let base = alloc n in
              List.iter
                (function
                  | Ast.Var v -> (
                      match Hashtbl.find_opt producer v with
                      | Some p -> edges := (p, base) :: !edges
                      | None -> ())
                  | _ -> ())
                args;
              (match dst with
              | Ast.Dlocal nm -> Hashtbl.replace producer nm (base + n - 1)
              | Ast.Dglobal _ -> ())
          | Ast.Call _ -> ())
        f.fn_body)
    pes;
  ignore d;
  { n_cells = max 1 !count; n_edges = Array.of_list !edges }

(* ------------------------------------------------------------------ *)
(* Placement by simulated annealing                                    *)
(* ------------------------------------------------------------------ *)

type placement_result = {
  pl_avg_wire : float;    (** mean Manhattan edge length after annealing *)
  pl_grid : int;
  pl_moves : int;
  pl_accepted : int;      (** accepted swaps (uphill included) *)
}

(** [place ~rng ~effort nl] runs a swap-based annealer on a √n grid. The
    [effort] knob scales the number of passes — the main cost of a
    tech-map run, mirroring how placement dominates vendor-tool runtime. *)
let place ~(rng : Prng.t) ~(effort : int) (nl : netlist) : placement_result =
  let n = nl.n_cells in
  let grid = int_of_float (ceil (sqrt (float_of_int n))) in
  let pos = Array.init n (fun i -> (i mod grid, i / grid)) in
  let loc_of = Hashtbl.create n in
  Array.iteri (fun i p -> Hashtbl.replace loc_of i p) pos;
  let edge_len (a, b) =
    let ax, ay = pos.(a) and bx, by = pos.(b) in
    abs (ax - bx) + abs (ay - by)
  in
  (* adjacency: edges touching each cell *)
  let adj = Array.make n [] in
  Array.iteri
    (fun ei (a, b) ->
      if a < n && b < n then begin
        adj.(a) <- ei :: adj.(a);
        adj.(b) <- ei :: adj.(b)
      end)
    nl.n_edges;
  let total = ref 0 in
  Array.iter (fun e -> total := !total + edge_len e) nl.n_edges;
  let moves = effort * n in
  let temp0 = 4.0 +. (float_of_int grid /. 4.0) in
  let accepted = ref 0 in
  for m = 0 to moves - 1 do
    let a = Prng.int rng n and b = Prng.int rng n in
    if a <> b then begin
      let cost_around c =
        List.fold_left (fun acc ei -> acc + edge_len nl.n_edges.(ei)) 0 adj.(c)
      in
      let before = cost_around a + cost_around b in
      let pa = pos.(a) and pb = pos.(b) in
      pos.(a) <- pb;
      pos.(b) <- pa;
      let after = cost_around a + cost_around b in
      let dc = after - before in
      let t = temp0 *. (1.0 -. (float_of_int m /. float_of_int moves)) in
      let accept =
        dc <= 0
        || (t > 0.01 && Prng.float rng < exp (-.float_of_int dc /. t))
      in
      if accept then begin
        total := !total + dc;
        incr accepted
      end
      else begin
        pos.(a) <- pa;
        pos.(b) <- pb
      end
    end
  done;
  (* anneal accounting: aggregates published once per run, never
     per-iteration, so the hot loop carries no telemetry overhead *)
  Tytra_telemetry.Metrics.add "sim.techmap.anneal.moves" (float_of_int moves);
  Tytra_telemetry.Metrics.add "sim.techmap.anneal.accepted"
    (float_of_int !accepted);
  Tytra_telemetry.Metrics.observe "sim.techmap.anneal.acceptance_rate"
    (float_of_int !accepted /. float_of_int (max 1 moves));
  Tytra_telemetry.Metrics.set "sim.techmap.anneal.temp_start" temp0;
  Tytra_telemetry.Metrics.set "sim.techmap.anneal.temp_final"
    (temp0 /. float_of_int (max 1 moves));
  let nedges = max 1 (Array.length nl.n_edges) in
  {
    pl_avg_wire = float_of_int !total /. float_of_int nedges;
    pl_grid = grid;
    pl_moves = moves;
    pl_accepted = !accepted;
  }

(* ------------------------------------------------------------------ *)
(* Full tech-map run                                                   *)
(* ------------------------------------------------------------------ *)

type report = {
  tm_usage : Tytra_device.Resources.usage;
  tm_fmax_mhz : float;
  tm_cells : int;
  tm_avg_wire : float;
  tm_device : string;
  tm_design : string;
}

let pp_report fmt r =
  Format.fprintf fmt "%s on %s: %a, Fmax %.1f MHz (%d cells, wire %.2f)"
    r.tm_design r.tm_device Tytra_device.Resources.pp r.tm_usage r.tm_fmax_mhz
    r.tm_cells r.tm_avg_wire

(** Map one functional unit in isolation — the "synthesis experiment" used
    for calibration (paper Fig 9 was generated from exactly such runs at
    18, 32 and 64 bits). *)
let map_unit ?(device = Tytra_device.Device.stratixv_gsd8) (op : Ast.op)
    (ty : Ty.t) : Tytra_device.Resources.usage =
  let rng =
    Prng.of_string
      (Printf.sprintf "unit:%s:%s:%s" device.Tytra_device.Device.dev_name
         (Ast.op_to_string op) (Ty.to_string ty))
  in
  let aluts = alut_cells op ty in
  (* synthesis noise on glue-heavy units only; carry-chain structures map
     exactly *)
  let aluts =
    match op with
    | Ast.Div | Ast.Rem | Ast.Sqrt ->
        int_of_float (Float.round (float_of_int aluts *. Prng.noise rng 0.004))
    | _ -> aluts
  in
  let regs = Opinfo.latency op ty * Ty.width ty in
  {
    Tytra_device.Resources.aluts;
    regs;
    bram_bits = 0;
    bram_blocks = 0;
    dsps = dsp_cells op ty;
  }

(** Effort level for the placement annealer (passes over the netlist).
    [`Fast] for tests, [`Full] for the Table II / speed-claim runs. *)
let effort_passes = function `Fast -> 4 | `Normal -> 40 | `Full -> 220

(** [run ~device ~effort d] — elaborate, pack, allocate and place design
    [d] for [device]; returns the detailed resource/Fmax report. This is
    the expensive path (seconds for multi-lane designs at [`Full] effort);
    compare with the sub-millisecond analytic estimator. *)
let run ?(device = Tytra_device.Device.stratixv_gsd8) ?(effort = `Normal)
    (d : Ast.design) : report =
  Tytra_telemetry.Span.with_ ~name:"sim.techmap"
    ~attrs:
      [ ("design", Tytra_telemetry.Span.Str d.Ast.d_name);
        ("device", Tytra_telemetry.Span.Str device.Tytra_device.Device.dev_name);
        ("effort", Tytra_telemetry.Span.Int (effort_passes effort)) ]
  @@ fun () ->
  Tytra_telemetry.Metrics.incr "sim.techmap.runs";
  let summary = Config_tree.classify d in
  let pe_names = summary.Config_tree.cs_pes in
  let pes = List.filter_map (Ast.find_func d) pe_names in
  let rng =
    Prng.of_string
      (Printf.sprintf "techmap:%s:%s" device.Tytra_device.Device.dev_name
         d.Ast.d_name)
  in
  (* --- datapath cells, per PE instance --- *)
  let aluts = ref 0 and regs = ref 0 and dsps = ref 0 in
  List.iter
    (fun (f : Ast.func) ->
      let sched = Tytra_hdl.Schedule.schedule_func d f in
      List.iter
        (fun (i : Ast.instr) ->
          match i with
          | Ast.Assign { op = (Ast.Shl | Ast.Shr) as op; ty;
                         args = [ _; Ast.Imm _ ]; _ } ->
              (* constant shift: wiring only; the stage register remains *)
              regs := !regs + (Opinfo.latency op ty * Ty.width ty)
          | Ast.Assign { op; ty; _ } ->
              aluts := !aluts + alut_cells op ty;
              dsps := !dsps + dsp_cells op ty;
              let rw =
                match op with
                | Ast.CmpEq | Ast.CmpNe | Ast.CmpLt | Ast.CmpLe | Ast.CmpGt
                | Ast.CmpGe -> 1
                | _ -> Ty.width ty
              in
              regs := !regs + (Opinfo.latency op ty * rw)
          | _ -> ())
        f.fn_body;
      regs := !regs + sched.Tytra_hdl.Schedule.sc_delay_regs;
      (* valid chain *)
      regs := !regs + sched.Tytra_hdl.Schedule.sc_depth + 1;
      aluts := !aluts + lane_glue_aluts;
      regs := !regs + lane_glue_regs)
    pes;
  (* --- offset buffers: BRAM at block granularity, or registers --- *)
  let bram_bits = ref 0 and bram_blocks = ref 0 in
  let block_bits = device.Tytra_device.Device.bram_block_bits in
  List.iter
    (fun f ->
      List.iter
        (fun (b : Tytra_hdl.Offsetbuf.buf) ->
          if b.Tytra_hdl.Offsetbuf.ob_in_bram then begin
            (* physical mapping: width-wise slices of M20K/BRAM36; the
               usable bits are the window bits, blocks round up *)
            bram_bits := !bram_bits + b.Tytra_hdl.Offsetbuf.ob_bits;
            bram_blocks :=
              !bram_blocks + ceil_div b.Tytra_hdl.Offsetbuf.ob_bits block_bits;
            (* address/control logic per BRAM window *)
            aluts := !aluts + 11;
            regs := !regs + 18
          end
          else
            regs := !regs + b.Tytra_hdl.Offsetbuf.ob_bits)
        (Tytra_hdl.Offsetbuf.of_func f))
    pes;
  (* --- stream control and top glue --- *)
  let nstreams = List.length d.Ast.d_streams in
  aluts := !aluts + (nstreams * stream_ctrl_aluts) + top_glue_aluts;
  regs := !regs + (nstreams * stream_ctrl_regs) + top_glue_regs;
  (* --- packing/synthesis variation --- *)
  let aluts_f = float_of_int !aluts *. Prng.noise rng 0.035 in
  let regs_f = float_of_int !regs *. Prng.noise rng 0.045 in
  let bram_f = float_of_int !bram_bits *. Prng.noise rng 0.004 in
  (* DSP merging: synthesis occasionally shares/repacks DSP tiles *)
  let dsps_v =
    if !dsps > 4 && Prng.float rng < 0.5 then
      !dsps - 1 - Prng.int rng (max 1 (!dsps / 8))
    else !dsps
  in
  let usage =
    {
      Tytra_device.Resources.aluts = int_of_float (Float.round aluts_f);
      regs = int_of_float (Float.round regs_f);
      bram_bits = int_of_float (Float.round bram_f);
      bram_blocks = !bram_blocks;
      dsps = dsps_v;
    }
  in
  (* --- placement and timing closure --- *)
  let nl =
    Tytra_telemetry.Span.with_ ~name:"sim.techmap.elaborate"
      (fun () -> build_netlist d pes)
  in
  let pl =
    Tytra_telemetry.Span.with_ ~name:"sim.techmap.place"
      ~attrs:[ ("cells", Tytra_telemetry.Span.Int nl.n_cells) ]
      (fun () -> place ~rng ~effort:(effort_passes effort) nl)
  in
  Log.debug (fun m ->
      m "placed %s: %d cells, %d/%d swaps accepted, avg wire %.2f"
        d.Ast.d_name nl.n_cells pl.pl_accepted pl.pl_moves pl.pl_avg_wire);
  let util = Tytra_device.Resources.max_utilization device usage in
  let base = device.Tytra_device.Device.fmax_base_mhz in
  let congestion = pl.pl_avg_wire /. float_of_int (max 1 pl.pl_grid) in
  let fmax =
    base
    /. (1.0 +. (0.55 *. congestion))
    *. (1.0 -. (0.25 *. Float.min 1.0 util))
    *. Prng.noise rng 0.02
  in
  let fmax = Float.max (0.4 *. base) (Float.min base fmax) in
  {
    tm_usage = usage;
    tm_fmax_mhz = fmax;
    tm_cells = nl.n_cells;
    tm_avg_wire = pl.pl_avg_wire;
    tm_device = device.Tytra_device.Device.dev_name;
    tm_design = d.Ast.d_name;
  }
