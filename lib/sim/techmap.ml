(** Technology mapper — the detailed, slow elaboration that plays the role
    of vendor synthesis in this reproduction (see DESIGN.md §2).

    Where the analytic cost model (in [tytra_cost]) evaluates closed-form
    expressions per instruction, the tech-mapper {e elaborates} the design:
    it expands every scheduled instruction into device primitives (ALUT
    cells with carry chains, 18×18 DSP tiles, block-RAM macros), allocates
    BRAM at block granularity, packs glue logic, and runs a
    simulated-annealing placement of the resulting netlist to estimate the
    achievable clock. Its outputs are the "Actual" rows of the paper's
    Table II and the synthesis points from which the cost model's
    expressions are fitted (paper Fig 9).

    Determinism: all noise comes from {!Prng} seeded by
    (design, device, resource class). *)

open Tytra_ir
module Pool = Tytra_exec.Pool

module Log = (val Logs.src_log (Logs.Src.create "tytra.techmap"))

(* ------------------------------------------------------------------ *)
(* Primitive elaboration rules (ALUT / DSP / reg cells per operation)  *)
(* ------------------------------------------------------------------ *)

let ceil_div a b = (a + b - 1) / b

(** ALUT cells for one functional unit. These integer rules are the
    device-level "truth" the cost model's fitted polynomials approximate:
    e.g. unsigned division elaborates to one restoring stage per quotient
    bit, [w + 4] ALUTs per stage less end-stage optimizations — the
    quadratic trend of the paper's Fig 9. *)
let alut_cells (op : Ast.op) (ty : Ty.t) : int =
  let w = Ty.width ty in
  if Ty.is_float ty then
    match op with
    | Ast.Add | Ast.Sub -> if w = 32 then 480 else 1050
    | Ast.Mul -> if w = 32 then 130 else 410
    | Ast.Div -> if w = 32 then 820 else 3150
    | Ast.Sqrt -> if w = 32 then 460 else 1900
    | Ast.CmpEq | Ast.CmpNe | Ast.CmpLt | Ast.CmpLe | Ast.CmpGt | Ast.CmpGe
      -> 60
    | Ast.Min | Ast.Max -> 90
    | Ast.Abs | Ast.Neg -> 2
    | Ast.Select -> ceil_div w 2
    | Ast.Mov -> 0
    | _ -> 40
  else
    match op with
    | Ast.Add | Ast.Sub -> w
    | Ast.Mul ->
        let tiles = ceil_div w 18 in
        if tiles <= 1 then 4 else ((tiles - 1) * 2 * w) + 20
    | Ast.Div | Ast.Rem ->
        (* w restoring stages of (w+4) ALUTs, minus shared end-stage
           logic: w^2 + 4w - 3w/10 - 10 ≈ the paper's x^2+3.7x-10.6 *)
        max 2 ((w * w) + (4 * w) - (3 * w / 10) - 10)
    | Ast.Sqrt -> max 2 ((w / 2 * (w + 3)) - 6)
    | Ast.And | Ast.Or | Ast.Xor -> ceil_div w 2
    | Ast.Not -> ceil_div w 8 + 1
    | Ast.Shl | Ast.Shr ->
        (* barrel shifter; constant shifts are free wiring but the IR
           does not distinguish, so assume variable *)
        let stages = max 1 (int_of_float (ceil (log (float_of_int w) /. log 2.))) in
        ceil_div (w * stages) 2
    | Ast.Min | Ast.Max -> w + ceil_div w 2
    | Ast.Abs -> if Ty.is_signed ty then w else 0
    | Ast.Neg -> w
    | Ast.CmpEq | Ast.CmpNe -> ceil_div w 3 + 1
    | Ast.CmpLt | Ast.CmpLe | Ast.CmpGt | Ast.CmpGe -> ceil_div w 2 + 1
    | Ast.Select -> ceil_div w 2
    | Ast.Mov -> 0

(** DSP tiles for one functional unit (18×18 multiplier granularity;
    above one tile, partial products pair across half-DSP columns). *)
let dsp_cells (op : Ast.op) (ty : Ty.t) : int =
  let w = Ty.width ty in
  if Ty.is_float ty then
    match op with
    | Ast.Mul -> if w = 32 then 2 else 8
    | Ast.Add | Ast.Sub -> if w = 32 then 0 else 2
    | _ -> 0
  else
    match op with
    | Ast.Mul ->
        let tiles = ceil_div w 18 in
        if tiles <= 1 then 1 else 2 * tiles
    | _ -> 0

(** Constant per-instance infrastructure. *)
let stream_ctrl_aluts = 58
let stream_ctrl_regs = 94
let top_glue_aluts = 26
let top_glue_regs = 40
let lane_glue_aluts = 9
let lane_glue_regs = 12

(* ------------------------------------------------------------------ *)
(* Netlist construction                                                *)
(* ------------------------------------------------------------------ *)

type netlist = {
  n_cells : int;                   (** abstract placeable cells *)
  n_edges : (int * int) array;     (** connectivity for placement *)
}

(* Build an abstract connectivity graph: each instruction occupies a
   contiguous run of cells chained internally; dataflow edges connect the
   producer's last cell to the consumer's first. *)
let build_netlist (d : Ast.design) (pes : Ast.func list) : netlist =
  let edges = ref [] in
  let count = ref 0 in
  let alloc n =
    let base = !count in
    count := !count + max 1 n;
    for k = base + 1 to base + n - 1 do
      edges := (k - 1, k) :: !edges
    done;
    base
  in
  List.iter
    (fun (f : Ast.func) ->
      let producer = Hashtbl.create 16 in
      List.iter
        (fun (n, ty) -> Hashtbl.replace producer n (alloc (Ty.width ty / 6 + 1)))
        f.fn_params;
      List.iter
        (fun (i : Ast.instr) ->
          match i with
          | Ast.Offset { dst; ty; src; _ } ->
              let base = alloc (Ty.width ty / 6 + 1) in
              (match src with
              | Ast.Var v -> (
                  match Hashtbl.find_opt producer v with
                  | Some p -> edges := (p, base) :: !edges
                  | None -> ())
              | _ -> ());
              Hashtbl.replace producer dst base
          | Ast.Assign { dst; ty; op; args } ->
              let n = max 1 (alut_cells op ty) in
              let base = alloc n in
              List.iter
                (function
                  | Ast.Var v -> (
                      match Hashtbl.find_opt producer v with
                      | Some p -> edges := (p, base) :: !edges
                      | None -> ())
                  | _ -> ())
                args;
              (match dst with
              | Ast.Dlocal nm -> Hashtbl.replace producer nm (base + n - 1)
              | Ast.Dglobal _ -> ())
          | Ast.Call _ -> ())
        f.fn_body)
    pes;
  ignore d;
  { n_cells = max 1 !count; n_edges = Array.of_list !edges }

(* ------------------------------------------------------------------ *)
(* Placement by simulated annealing                                    *)
(* ------------------------------------------------------------------ *)

type placement_result = {
  pl_avg_wire : float;    (** mean Manhattan edge length after annealing *)
  pl_grid : int;
  pl_moves : int;
  pl_accepted : int;      (** accepted swaps (uphill included) *)
}

(* Shared anneal bookkeeping, published once per run — never
   per-iteration, so the hot loop carries no telemetry overhead. *)
let publish_anneal_metrics ~moves ~accepted ~temp0 =
  Tytra_telemetry.Metrics.add "sim.techmap.anneal.moves" (float_of_int moves);
  Tytra_telemetry.Metrics.add "sim.techmap.anneal.accepted"
    (float_of_int accepted);
  Tytra_telemetry.Metrics.observe "sim.techmap.anneal.acceptance_rate"
    (float_of_int accepted /. float_of_int (max 1 moves));
  Tytra_telemetry.Metrics.set "sim.techmap.anneal.temp_start" temp0;
  Tytra_telemetry.Metrics.set "sim.techmap.anneal.temp_final"
    (temp0 /. float_of_int (max 1 moves))

(** [place_reference ~rng ~effort nl] — the original annealer: every
    move recomputes the full wirelength around both swapped cells from
    scratch. Kept as the differential twin of {!place_incremental}
    ([--no-fast-ir]); both consume the PRNG identically and produce the
    same placement. *)
let place_reference ~(rng : Prng.t) ~(effort : int) (nl : netlist) :
    placement_result =
  let n = nl.n_cells in
  let grid = int_of_float (ceil (sqrt (float_of_int n))) in
  let pos = Array.init n (fun i -> (i mod grid, i / grid)) in
  let loc_of = Hashtbl.create n in
  Array.iteri (fun i p -> Hashtbl.replace loc_of i p) pos;
  let edge_len (a, b) =
    let ax, ay = pos.(a) and bx, by = pos.(b) in
    abs (ax - bx) + abs (ay - by)
  in
  (* adjacency: edges touching each cell *)
  let adj = Array.make n [] in
  Array.iteri
    (fun ei (a, b) ->
      if a < n && b < n then begin
        adj.(a) <- ei :: adj.(a);
        adj.(b) <- ei :: adj.(b)
      end)
    nl.n_edges;
  let total = ref 0 in
  Array.iter (fun e -> total := !total + edge_len e) nl.n_edges;
  let moves = effort * n in
  let temp0 = 4.0 +. (float_of_int grid /. 4.0) in
  let accepted = ref 0 in
  for m = 0 to moves - 1 do
    let a = Prng.int rng n and b = Prng.int rng n in
    if a <> b then begin
      let cost_around c =
        List.fold_left (fun acc ei -> acc + edge_len nl.n_edges.(ei)) 0 adj.(c)
      in
      let before = cost_around a + cost_around b in
      let pa = pos.(a) and pb = pos.(b) in
      pos.(a) <- pb;
      pos.(b) <- pa;
      let after = cost_around a + cost_around b in
      let dc = after - before in
      let t = temp0 *. (1.0 -. (float_of_int m /. float_of_int moves)) in
      let accept =
        dc <= 0
        || (t > 0.01 && Prng.float rng < exp (-.float_of_int dc /. t))
      in
      if accept then begin
        total := !total + dc;
        incr accepted
      end
      else begin
        pos.(a) <- pa;
        pos.(b) <- pb
      end
    end
  done;
  publish_anneal_metrics ~moves ~accepted:!accepted ~temp0;
  let nedges = max 1 (Array.length nl.n_edges) in
  {
    pl_avg_wire = float_of_int !total /. float_of_int nedges;
    pl_grid = grid;
    pl_moves = moves;
    pl_accepted = !accepted;
  }

(* How often (at most) the incremental annealer cross-checks its
   running total against a from-scratch recompute. Wirelength is
   integer arithmetic, so any nonzero drift is a bug; the check
   consumes no PRNG state. The effective interval stretches with the
   edge count so the O(edges) recompute stays a bounded fraction of
   total anneal work on large netlists. *)
let drift_check_interval = 8192

(** [place_incremental ~rng ~effort nl] — delta-wirelength annealing
    (DESIGN.md §10): cached per-cell incident-length sums make the
    before-cost of a swap two O(1) lookups, and only the edges touching
    the two swapped cells are recomputed; a periodic full recompute
    guards against drift. The data layout is tuned for the random-index
    access pattern of annealing: each cell's position (x, y packed in
    one int), incident-length sum and adjacency bounds live in one
    4-int record (a single cache line), and each adjacency entry packs
    the edge index with the far endpoint, so a degree-d move touches
    ~2 + d lines instead of ~4 + 3d. The PRNG consumption pattern and
    every accept decision match {!place_reference} exactly, so the
    resulting placement (and [pl_avg_wire]) is bit-identical —
    placement cost scales with swap locality instead of netlist size. *)
let place_incremental ~(rng : Prng.t) ~(effort : int) (nl : netlist) :
    placement_result =
  let n = nl.n_cells in
  let grid = int_of_float (ceil (sqrt (float_of_int n))) in
  (* cell records, 4 ints per cell:
       [4c]   packed position: x in bits 16.., y in bits 0..15
       [4c+1] incident-length sum (the O(1) before-cost)
       [4c+2] adjacency segment start in [adj]
       [4c+3] adjacency segment end (exclusive) *)
  let crec = Array.make (4 * n) 0 in
  for i = 0 to n - 1 do
    crec.(4 * i) <- ((i mod grid) lsl 16) lor (i / grid)
  done;
  let manhattan pu pv =
    abs ((pu lsr 16) - (pv lsr 16)) + abs ((pu land 0xFFFF) - (pv land 0xFFFF))
  in
  let ne = Array.length nl.n_edges in
  (* packed endpoints for the cold loops and the drift check: src in
     bits 31.., dst in bits 0..30 — no tuple loads off the hot path *)
  let eend = Array.make ne 0 in
  Array.iteri (fun ei (a, b) -> eend.(ei) <- (a lsl 31) lor b) nl.n_edges;
  let len_of ei =
    let e = eend.(ei) in
    manhattan crec.(4 * (e lsr 31)) crec.(4 * (e land 0x7FFFFFFF))
  in
  (* CSR adjacency; each entry packs (edge index lsl 31) lor far
     endpoint, so the hot loop never consults a separate endpoint
     table: the near endpoint is the swapped cell itself *)
  let deg = Array.make (n + 1) 0 in
  Array.iter
    (fun (a, b) ->
      if a < n && b < n then begin
        deg.(a + 1) <- deg.(a + 1) + 1;
        deg.(b + 1) <- deg.(b + 1) + 1
      end)
    nl.n_edges;
  let off = deg in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i + 1) + off.(i)
  done;
  let fill = Array.sub off 0 n in
  let adj = Array.make off.(n) 0 in
  Array.iteri
    (fun ei (a, b) ->
      if a < n && b < n then begin
        adj.(fill.(a)) <- (ei lsl 31) lor b;
        fill.(a) <- fill.(a) + 1;
        adj.(fill.(b)) <- (ei lsl 31) lor a;
        fill.(b) <- fill.(b) + 1
      end)
    nl.n_edges;
  for i = 0 to n - 1 do
    crec.((4 * i) + 2) <- off.(i);
    crec.((4 * i) + 3) <- off.(i + 1)
  done;
  (* cached edge lengths — the invariant the drift check guards *)
  let elen = Array.make ne 0 in
  let total = ref 0 in
  for ei = 0 to ne - 1 do
    let l = len_of ei in
    elen.(ei) <- l;
    total := !total + l
  done;
  (* per-cell incident-length sums, kept exact by per-edge deltas on
     commit (a self-loop counts twice, matching cost_around) *)
  Array.iteri
    (fun ei (a, b) ->
      if a < n && b < n then begin
        crec.((4 * a) + 1) <- crec.((4 * a) + 1) + elen.(ei);
        crec.((4 * b) + 1) <- crec.((4 * b) + 1) + elen.(ei)
      end)
    nl.n_edges;
  let max_deg =
    let m = ref 0 in
    for i = 0 to n - 1 do
      m := max !m (off.(i + 1) - off.(i))
    done;
    !m
  in
  (* scratch for the recomputed lengths of one move's touched edges *)
  let scratch = Array.make (max 1 (2 * max_deg)) 0 in
  let moves = effort * n in
  let temp0 = 4.0 +. (float_of_int grid /. 4.0) in
  let accepted = ref 0 in
  let delta_evals = ref 0 in
  let drift = ref 0 in
  (* amortize the O(edges) drift recompute: at least every
     drift_check_interval moves on small netlists, every ~4 passes over
     the edges on large ones *)
  let check_every = max drift_check_interval (4 * ne) in
  for m = 0 to moves - 1 do
    let a = Prng.int rng n and b = Prng.int rng n in
    if a <> b then begin
      (* Unsafe accesses throughout the move: every index is in range
         by construction (the safe initialisation loops above would
         have raised otherwise). *)
      let a4 = 4 * a and b4 = 4 * b in
      let pa = Array.unsafe_get crec a4 in
      let pb = Array.unsafe_get crec b4 in
      let before =
        Array.unsafe_get crec (a4 + 1) + Array.unsafe_get crec (b4 + 1)
      in
      Array.unsafe_set crec a4 pb;
      Array.unsafe_set crec b4 pa;
      let lo_a = Array.unsafe_get crec (a4 + 2) in
      let hi_a = Array.unsafe_get crec (a4 + 3) in
      let lo_b = Array.unsafe_get crec (b4 + 2) in
      let hi_b = Array.unsafe_get crec (b4 + 3) in
      (* after-cost: recompute only the touched edges. The near
         endpoint's new position is already in a register (pb for a's
         edges, pa for b's); only the far endpoint is loaded. *)
      let after = ref 0 in
      let s = ref 0 in
      for k = lo_a to hi_a - 1 do
        let po =
          Array.unsafe_get crec (4 * (Array.unsafe_get adj k land 0x7FFFFFFF))
        in
        let l =
          abs ((pb lsr 16) - (po lsr 16))
          + abs ((pb land 0xFFFF) - (po land 0xFFFF))
        in
        Array.unsafe_set scratch !s l;
        incr s;
        after := !after + l
      done;
      for k = lo_b to hi_b - 1 do
        let po =
          Array.unsafe_get crec (4 * (Array.unsafe_get adj k land 0x7FFFFFFF))
        in
        let l =
          abs ((pa lsr 16) - (po lsr 16))
          + abs ((pa land 0xFFFF) - (po land 0xFFFF))
        in
        Array.unsafe_set scratch !s l;
        incr s;
        after := !after + l
      done;
      delta_evals := !delta_evals + !s;
      let dc = !after - before in
      let t = temp0 *. (1.0 -. (float_of_int m /. float_of_int moves)) in
      let accept =
        dc <= 0
        || (t > 0.01 && Prng.float rng < exp (-.float_of_int dc /. t))
      in
      if accept then begin
        (* commit: apply per-edge deltas to both caches. An edge shared
           by a and b appears in both segments; its second visit sees a
           zero delta, so the caches stay exact. A self-loop updates the
           same sum twice, matching its double weight. *)
        let s = ref 0 in
        for k = lo_a to hi_a - 1 do
          let entry = Array.unsafe_get adj k in
          let ei = entry lsr 31 in
          let l = Array.unsafe_get scratch !s in
          incr s;
          let dl = l - Array.unsafe_get elen ei in
          if dl <> 0 then begin
            Array.unsafe_set elen ei l;
            Array.unsafe_set crec (a4 + 1)
              (Array.unsafe_get crec (a4 + 1) + dl);
            let o = 4 * (entry land 0x7FFFFFFF) + 1 in
            Array.unsafe_set crec o (Array.unsafe_get crec o + dl)
          end
        done;
        for k = lo_b to hi_b - 1 do
          let entry = Array.unsafe_get adj k in
          let ei = entry lsr 31 in
          let l = Array.unsafe_get scratch !s in
          incr s;
          let dl = l - Array.unsafe_get elen ei in
          if dl <> 0 then begin
            Array.unsafe_set elen ei l;
            Array.unsafe_set crec (b4 + 1)
              (Array.unsafe_get crec (b4 + 1) + dl);
            let o = 4 * (entry land 0x7FFFFFFF) + 1 in
            Array.unsafe_set crec o (Array.unsafe_get crec o + dl)
          end
        done;
        total := !total + dc;
        incr accepted
      end
      else begin
        (* revert *)
        Array.unsafe_set crec a4 pa;
        Array.unsafe_set crec b4 pb
      end
    end;
    (* periodic full-recompute drift check; consumes no PRNG state *)
    if (m + 1) mod check_every = 0 then begin
      let fresh = ref 0 in
      for ei = 0 to ne - 1 do
        fresh := !fresh + len_of ei
      done;
      let d = abs (!fresh - !total) in
      if d > !drift then drift := d;
      total := !fresh
    end
  done;
  publish_anneal_metrics ~moves ~accepted:!accepted ~temp0;
  Tytra_telemetry.Metrics.add "sim.techmap.anneal.delta_evals"
    (float_of_int !delta_evals);
  Tytra_telemetry.Metrics.set "sim.techmap.anneal.drift"
    (float_of_int !drift);
  let nedges = max 1 ne in
  {
    pl_avg_wire = float_of_int !total /. float_of_int nedges;
    pl_grid = grid;
    pl_moves = moves;
    pl_accepted = !accepted;
  }

(* ------------------------------------------------------------------ *)
(* Placement modes                                                     *)
(* ------------------------------------------------------------------ *)

(** Which placement engine {!place} runs (DESIGN.md §14):
    - [Reference]: the original full-recompute annealer.
    - [Incremental]: the delta-wirelength annealer — bit-identical to
      [Reference], just faster.
    - [Parallel]: analytic seed + domain-parallel replica-exchange
      annealing — not bit-identical (replicas explore independently),
      held instead to a wirelength quality bound vs [Reference]. *)
type place_mode = Reference | Incremental | Parallel

let place_mode_to_string = function
  | Reference -> "reference"
  | Incremental -> "incremental"
  | Parallel -> "parallel"

let place_mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "reference" | "ref" | "slow" -> Some Reference
  | "incremental" | "inc" | "fast" -> Some Incremental
  | "parallel" | "par" -> Some Parallel
  | _ -> None

(* Process-global mode override, [TYTRA_PLACE] from the environment at
   startup. [None] = follow the {!Tytra_ir.Fastpath} toggle (incremental
   when on, reference under [--no-fast-ir]), which is the pre-mode
   behaviour — so an unset TYTRA_PLACE changes nothing. *)
let place_mode_override : place_mode option ref =
  ref
    (match Sys.getenv_opt "TYTRA_PLACE" with
    | Some s -> place_mode_of_string s
    | None -> None)

let place_mode () =
  match !place_mode_override with
  | Some m -> m
  | None -> if Fastpath.enabled () then Incremental else Reference

let set_place_mode m = place_mode_override := m

let with_place_mode m f =
  let prev = !place_mode_override in
  place_mode_override := m;
  Fun.protect ~finally:(fun () -> place_mode_override := prev) f

(* ------------------------------------------------------------------ *)
(* Parallel placement: analytic seed + replica-exchange annealing       *)
(* ------------------------------------------------------------------ *)

(* Read-only annealing structure shared by every replica: packed edge
   endpoints and the CSR adjacency of {!place_incremental}, built once
   per placement. *)
type anneal_graph = {
  ag_n : int;
  ag_grid : int;
  ag_ne : int;
  ag_eend : int array;  (* (src lsl 31) lor dst per edge *)
  ag_off : int array;   (* CSR offsets, length n+1 *)
  ag_adj : int array;   (* (edge index lsl 31) lor far endpoint *)
  ag_max_deg : int;
}

let manhattan_packed pu pv =
  abs ((pu lsr 16) - (pv lsr 16)) + abs ((pu land 0xFFFF) - (pv land 0xFFFF))

let build_anneal_graph (nl : netlist) : anneal_graph =
  let n = nl.n_cells in
  let grid = int_of_float (ceil (sqrt (float_of_int n))) in
  let ne = Array.length nl.n_edges in
  let eend = Array.make (max 1 ne) 0 in
  Array.iteri (fun ei (a, b) -> eend.(ei) <- (a lsl 31) lor b) nl.n_edges;
  let deg = Array.make (n + 1) 0 in
  Array.iter
    (fun (a, b) ->
      if a < n && b < n then begin
        deg.(a + 1) <- deg.(a + 1) + 1;
        deg.(b + 1) <- deg.(b + 1) + 1
      end)
    nl.n_edges;
  let off = deg in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i + 1) + off.(i)
  done;
  let fill = Array.sub off 0 n in
  let adj = Array.make (max 1 off.(n)) 0 in
  Array.iteri
    (fun ei (a, b) ->
      if a < n && b < n then begin
        adj.(fill.(a)) <- (ei lsl 31) lor b;
        fill.(a) <- fill.(a) + 1;
        adj.(fill.(b)) <- (ei lsl 31) lor a;
        fill.(b) <- fill.(b) + 1
      end)
    nl.n_edges;
  let max_deg =
    let m = ref 0 in
    for i = 0 to n - 1 do
      m := max !m (off.(i + 1) - off.(i))
    done;
    !m
  in
  { ag_n = n; ag_grid = grid; ag_ne = ne; ag_eend = eend; ag_off = off;
    ag_adj = adj; ag_max_deg = max_deg }

(* Number of Gauss-Seidel relaxation sweeps for the analytic seed, and
   the pull of each cell's original slot. The anchor keeps the linear
   system non-degenerate (pure relaxation of a connected graph collapses
   every cell onto the centroid) and preserves enough spread that
   legalization has meaningful rows to restore. *)
let seed_sweeps = 12
let seed_anchor = 0.25

(** Analytic initial placement: a few relaxation sweeps of the quadratic
    wirelength model [x_i = (Σ_adj x_j + w·x0_i) / (deg_i + w)] over the
    packed adjacency, then legalization back onto the grid — cells
    sorted into rows by relaxed y, each row sorted by relaxed x. The
    result is a legal low-wirelength permutation from which annealing
    starts near its destination instead of from the raw row-major
    layout. Purely deterministic: no PRNG draws. *)
let analytic_seed (g : anneal_graph) : int array =
  let n = g.ag_n and grid = g.ag_grid in
  let xs = Array.init n (fun i -> float_of_int (i mod grid)) in
  let ys = Array.init n (fun i -> float_of_int (i / grid)) in
  let x0 = Array.copy xs and y0 = Array.copy ys in
  for _ = 1 to seed_sweeps do
    for i = 0 to n - 1 do
      let lo = g.ag_off.(i) and hi = g.ag_off.(i + 1) in
      if hi > lo then begin
        let sx = ref 0.0 and sy = ref 0.0 in
        for k = lo to hi - 1 do
          let far = g.ag_adj.(k) land 0x7FFFFFFF in
          sx := !sx +. xs.(far);
          sy := !sy +. ys.(far)
        done;
        let w = float_of_int (hi - lo) +. seed_anchor in
        xs.(i) <- (!sx +. (seed_anchor *. x0.(i))) /. w;
        ys.(i) <- (!sy +. (seed_anchor *. y0.(i))) /. w
      end
    done
  done;
  let ord = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let c = compare ys.(i) ys.(j) in
      if c <> 0 then c
      else
        let c = compare xs.(i) xs.(j) in
        if c <> 0 then c else compare i j)
    ord;
  let pos = Array.make n 0 in
  let row = ref 0 and k = ref 0 in
  while !k < n do
    let hi = min n (!k + grid) in
    let rowcells = Array.sub ord !k (hi - !k) in
    Array.sort
      (fun i j ->
        let c = compare xs.(i) xs.(j) in
        if c <> 0 then c else compare i j)
      rowcells;
    Array.iteri (fun col cell -> pos.(cell) <- (col lsl 16) lor !row) rowcells;
    incr row;
    k := hi
  done;
  pos

(* One temperature slot of the replica-exchange ensemble. Configurations
   ([rp_crec]/[rp_elen]/[rp_total]) migrate between slots on exchange;
   the PRNG stream and work counters stay with the slot. *)
type replica = {
  rp_rng : Prng.t;
  rp_scratch : int array;
  mutable rp_crec : int array;  (* place_incremental's 4-int cell records *)
  mutable rp_elen : int array;
  mutable rp_total : int;
  mutable rp_moves : int;
  mutable rp_accepted : int;
  mutable rp_delta_evals : int;
}

(* Build one replica's mutable state from a packed starting placement:
   the same 4-int cell records, edge-length cache and incident sums as
   {!place_incremental}, but over an arbitrary initial position map. *)
let build_anneal_state (g : anneal_graph) (init : int array) =
  let n = g.ag_n and ne = g.ag_ne in
  let crec = Array.make (4 * n) 0 in
  for i = 0 to n - 1 do
    crec.(4 * i) <- init.(i);
    crec.((4 * i) + 2) <- g.ag_off.(i);
    crec.((4 * i) + 3) <- g.ag_off.(i + 1)
  done;
  let elen = Array.make (max 1 ne) 0 in
  let total = ref 0 in
  for ei = 0 to ne - 1 do
    let e = g.ag_eend.(ei) in
    let a = e lsr 31 and b = e land 0x7FFFFFFF in
    let l = manhattan_packed crec.(4 * a) crec.(4 * b) in
    elen.(ei) <- l;
    total := !total + l;
    crec.((4 * a) + 1) <- crec.((4 * a) + 1) + l;
    crec.((4 * b) + 1) <- crec.((4 * b) + 1) + l
  done;
  (crec, elen, !total)

(* One annealing segment of one replica: [moves] delta-wirelength swap
   moves with the temperature cooling linearly from [t0] to [t1]. The
   move body is the hot loop of {!place_incremental} (same packing, same
   unsafe accesses); only the schedule differs. *)
let anneal_segment (g : anneal_graph) (r : replica) ~moves ~t0 ~t1 =
  let n = g.ag_n in
  if n > 1 && moves > 0 then begin
    let crec = r.rp_crec and elen = r.rp_elen in
    let adj = g.ag_adj and scratch = r.rp_scratch in
    let rng = r.rp_rng in
    let total = ref r.rp_total in
    let accepted = ref 0 in
    let delta_evals = ref 0 in
    let fmoves = float_of_int moves in
    for m = 0 to moves - 1 do
      let a = Prng.int rng n and b = Prng.int rng n in
      if a <> b then begin
        let a4 = 4 * a and b4 = 4 * b in
        let pa = Array.unsafe_get crec a4 in
        let pb = Array.unsafe_get crec b4 in
        let before =
          Array.unsafe_get crec (a4 + 1) + Array.unsafe_get crec (b4 + 1)
        in
        Array.unsafe_set crec a4 pb;
        Array.unsafe_set crec b4 pa;
        let lo_a = Array.unsafe_get crec (a4 + 2) in
        let hi_a = Array.unsafe_get crec (a4 + 3) in
        let lo_b = Array.unsafe_get crec (b4 + 2) in
        let hi_b = Array.unsafe_get crec (b4 + 3) in
        let after = ref 0 in
        let s = ref 0 in
        for k = lo_a to hi_a - 1 do
          let po =
            Array.unsafe_get crec
              (4 * (Array.unsafe_get adj k land 0x7FFFFFFF))
          in
          let l =
            abs ((pb lsr 16) - (po lsr 16))
            + abs ((pb land 0xFFFF) - (po land 0xFFFF))
          in
          Array.unsafe_set scratch !s l;
          incr s;
          after := !after + l
        done;
        for k = lo_b to hi_b - 1 do
          let po =
            Array.unsafe_get crec
              (4 * (Array.unsafe_get adj k land 0x7FFFFFFF))
          in
          let l =
            abs ((pa lsr 16) - (po lsr 16))
            + abs ((pa land 0xFFFF) - (po land 0xFFFF))
          in
          Array.unsafe_set scratch !s l;
          incr s;
          after := !after + l
        done;
        delta_evals := !delta_evals + !s;
        let dc = !after - before in
        let t = t0 +. ((t1 -. t0) *. (float_of_int m /. fmoves)) in
        let accept =
          dc <= 0
          || (t > 0.01 && Prng.float rng < exp (-.float_of_int dc /. t))
        in
        if accept then begin
          let s = ref 0 in
          for k = lo_a to hi_a - 1 do
            let entry = Array.unsafe_get adj k in
            let ei = entry lsr 31 in
            let l = Array.unsafe_get scratch !s in
            incr s;
            let dl = l - Array.unsafe_get elen ei in
            if dl <> 0 then begin
              Array.unsafe_set elen ei l;
              Array.unsafe_set crec (a4 + 1)
                (Array.unsafe_get crec (a4 + 1) + dl);
              let o = (4 * (entry land 0x7FFFFFFF)) + 1 in
              Array.unsafe_set crec o (Array.unsafe_get crec o + dl)
            end
          done;
          for k = lo_b to hi_b - 1 do
            let entry = Array.unsafe_get adj k in
            let ei = entry lsr 31 in
            let l = Array.unsafe_get scratch !s in
            incr s;
            let dl = l - Array.unsafe_get elen ei in
            if dl <> 0 then begin
              Array.unsafe_set elen ei l;
              Array.unsafe_set crec (b4 + 1)
                (Array.unsafe_get crec (b4 + 1) + dl);
              let o = (4 * (entry land 0x7FFFFFFF)) + 1 in
              Array.unsafe_set crec o (Array.unsafe_get crec o + dl)
            end
          done;
          total := !total + dc;
          incr accepted
        end
        else begin
          Array.unsafe_set crec a4 pa;
          Array.unsafe_set crec b4 pb
        end
      end
    done;
    r.rp_total <- !total;
    r.rp_moves <- r.rp_moves + moves;
    r.rp_accepted <- r.rp_accepted + !accepted;
    r.rp_delta_evals <- r.rp_delta_evals + !delta_evals
  end

(* Replica-exchange knobs. The per-replica budget divisor is the
   headline saving: each replica anneals effort·n/8 moves instead of the
   reference's effort·n, the replicas run on separate domains, and the
   convergence check below usually stops the schedule before the budget
   is spent. *)
let default_replicas = 4
let replica_budget_divisor = 8
let exchange_segments = 8
let ladder_decay = 0.55
let ladder_tbase_divisor = 24.0
let early_exit_threshold = 0.001
let early_exit_min_segments = 3

(** [place_parallel ~seed ~effort nl] — the three-stage engine: analytic
    seed, then [replicas] delta-annealing chains at staggered
    temperatures on separate domains (over {!Tytra_exec.Pool}), with
    deterministic seed-derived exchange decisions between segments and a
    convergence-based early exit (counted in
    [sim.techmap.anneal.early_exit]). Deterministic given [seed] and
    independent of machine width or [--jobs]: every replica draws from
    its own {!Prng.split} stream, [Pool.map] is order-preserving, and
    exchange decisions come from a dedicated stream. [seed_init] exists
    for E11's ablation: [`Random] starts from a seeded random
    permutation instead of the analytic seed. *)
let place_parallel ?(replicas = default_replicas) ?(seed_init = `Analytic)
    ?jobs ~(seed : int64) ~(effort : int) (nl : netlist) : placement_result =
  let g = build_anneal_graph nl in
  let n = g.ag_n and ne = g.ag_ne in
  let replicas = max 1 replicas in
  let base = Prng.create seed in
  let init =
    match seed_init with
    | `Analytic -> analytic_seed g
    | `Random ->
        let rng = Prng.split base (replicas + 1) in
        let perm = Array.init n (fun i -> i) in
        for i = n - 1 downto 1 do
          let j = Prng.int rng (i + 1) in
          let t = perm.(i) in
          perm.(i) <- perm.(j);
          perm.(j) <- t
        done;
        Array.init n (fun i ->
            ((perm.(i) mod g.ag_grid) lsl 16) lor (perm.(i) / g.ag_grid))
  in
  let mk_replica r =
    let crec, elen, total = build_anneal_state g init in
    {
      rp_rng = Prng.split base r;
      rp_scratch = Array.make (max 1 (2 * g.ag_max_deg)) 0;
      rp_crec = crec;
      rp_elen = elen;
      rp_total = total;
      rp_moves = 0;
      rp_accepted = 0;
      rp_delta_evals = 0;
    }
  in
  let reps = Array.init replicas mk_replica in
  let exch_rng = Prng.split base replicas in
  let temp0 = 4.0 +. (float_of_int g.ag_grid /. 4.0) in
  let tbase = temp0 /. ladder_tbase_divisor in
  let slot_temp r decay = tbase *. (2.0 ** float_of_int r) *. decay in
  let budget = max 2048 (effort * n / replica_budget_divisor) in
  let seg_moves = max 256 (budget / exchange_segments) in
  let pool_jobs =
    match jobs with
    | Some j -> j
    | None -> min (Pool.default_jobs ()) replicas
  in
  let pool = Pool.create ~jobs:pool_jobs () in
  let slots = List.init replicas (fun r -> r) in
  let best_total () =
    Array.fold_left (fun acc r -> min acc r.rp_total) max_int reps
  in
  let early_exit = ref false in
  let prev_best = ref (best_total ()) in
  let s = ref 0 in
  while (not !early_exit) && !s < exchange_segments do
    let decay = ladder_decay ** float_of_int !s in
    ignore
      (Pool.map pool
         (fun r ->
           let t_start = slot_temp r decay in
           anneal_segment g reps.(r) ~moves:seg_moves ~t0:t_start
             ~t1:(t_start *. ladder_decay);
           r)
         slots);
    (* Replica exchange between adjacent temperature slots, alternating
       pair parity per segment; the Metropolis criterion on the energy
       gap uses the dedicated exchange stream, so decisions are a pure
       function of the seed. *)
    let r0 = !s land 1 in
    let r = ref r0 in
    while !r + 1 < replicas do
      let lo = reps.(!r) and hi = reps.(!r + 1) in
      let t_lo = slot_temp !r decay and t_hi = slot_temp (!r + 1) decay in
      let d =
        ((1.0 /. t_lo) -. (1.0 /. t_hi))
        *. float_of_int (lo.rp_total - hi.rp_total)
      in
      let u = Prng.float exch_rng in
      if d >= 0.0 || u < exp d then begin
        let crec = lo.rp_crec and elen = lo.rp_elen and tot = lo.rp_total in
        lo.rp_crec <- hi.rp_crec;
        lo.rp_elen <- hi.rp_elen;
        lo.rp_total <- hi.rp_total;
        hi.rp_crec <- crec;
        hi.rp_elen <- elen;
        hi.rp_total <- tot
      end;
      r := !r + 2
    done;
    (* Convergence-based early exit: stop the temperature schedule once
       a whole segment of accepted moves no longer buys wirelength. *)
    let b = best_total () in
    if
      !s + 1 >= early_exit_min_segments
      && float_of_int (!prev_best - b)
         <= early_exit_threshold *. float_of_int (max 1 !prev_best)
    then early_exit := true;
    prev_best := b;
    incr s
  done;
  (* Recompute every replica's total from its cell records — the same
     invariant the incremental drift check guards, here applied once at
     the end instead of periodically. *)
  let drift = ref 0 in
  Array.iter
    (fun r ->
      let fresh = ref 0 in
      for ei = 0 to ne - 1 do
        let e = g.ag_eend.(ei) in
        fresh :=
          !fresh
          + manhattan_packed
              r.rp_crec.(4 * (e lsr 31))
              r.rp_crec.(4 * (e land 0x7FFFFFFF))
      done;
      let d = abs (!fresh - r.rp_total) in
      if d > !drift then drift := d;
      r.rp_total <- !fresh)
    reps;
  let best =
    Array.fold_left (fun acc r -> if r.rp_total < acc.rp_total then r else acc)
      reps.(0) reps
  in
  let moves = Array.fold_left (fun acc r -> acc + r.rp_moves) 0 reps in
  let accepted = Array.fold_left (fun acc r -> acc + r.rp_accepted) 0 reps in
  let delta_evals =
    Array.fold_left (fun acc r -> acc + r.rp_delta_evals) 0 reps
  in
  publish_anneal_metrics ~moves ~accepted ~temp0;
  Tytra_telemetry.Metrics.add "sim.techmap.anneal.delta_evals"
    (float_of_int delta_evals);
  Tytra_telemetry.Metrics.set "sim.techmap.anneal.drift"
    (float_of_int !drift);
  if !early_exit then
    Tytra_telemetry.Metrics.incr "sim.techmap.anneal.early_exit";
  {
    pl_avg_wire = float_of_int best.rp_total /. float_of_int (max 1 ne);
    pl_grid = g.ag_grid;
    pl_moves = moves;
    pl_accepted = accepted;
  }

(** [place ?fast ?mode ?seed ~rng ~effort nl] — anneal a placement of
    [nl]. [mode] (default: the global {!place_mode}, i.e. [TYTRA_PLACE]
    or the {!Tytra_ir.Fastpath} toggle) selects the engine; the legacy
    [fast] flag forces [Incremental]/[Reference] and is kept for the
    differential tests. [Reference] and [Incremental] are bit-identical;
    [Parallel] draws nothing from [rng] except (when [seed] is not
    given) one [int64] to derive its replica streams. *)
let place ?fast ?mode ?seed ?replicas ?seed_init ~(rng : Prng.t)
    ~(effort : int) (nl : netlist) : placement_result =
  let m =
    match (mode, fast) with
    | Some m, _ -> m
    | None, Some true -> Incremental
    | None, Some false -> Reference
    | None, None -> place_mode ()
  in
  match m with
  | Reference -> place_reference ~rng ~effort nl
  | Incremental -> place_incremental ~rng ~effort nl
  | Parallel ->
      let seed =
        match seed with Some s -> s | None -> Prng.next_int64 rng
      in
      place_parallel ?replicas ?seed_init ~seed ~effort nl

(* ------------------------------------------------------------------ *)
(* Full tech-map run                                                   *)
(* ------------------------------------------------------------------ *)

type report = {
  tm_usage : Tytra_device.Resources.usage;
  tm_fmax_mhz : float;
  tm_cells : int;
  tm_avg_wire : float;
  tm_device : string;
  tm_design : string;
}

let pp_report fmt r =
  Format.fprintf fmt "%s on %s: %a, Fmax %.1f MHz (%d cells, wire %.2f)"
    r.tm_design r.tm_device Tytra_device.Resources.pp r.tm_usage r.tm_fmax_mhz
    r.tm_cells r.tm_avg_wire

(** Map one functional unit in isolation — the "synthesis experiment" used
    for calibration (paper Fig 9 was generated from exactly such runs at
    18, 32 and 64 bits). *)
let map_unit ?(device = Tytra_device.Device.stratixv_gsd8) (op : Ast.op)
    (ty : Ty.t) : Tytra_device.Resources.usage =
  let rng =
    Prng.of_string
      (Printf.sprintf "unit:%s:%s:%s" device.Tytra_device.Device.dev_name
         (Ast.op_to_string op) (Ty.to_string ty))
  in
  let aluts = alut_cells op ty in
  (* synthesis noise on glue-heavy units only; carry-chain structures map
     exactly *)
  let aluts =
    match op with
    | Ast.Div | Ast.Rem | Ast.Sqrt ->
        int_of_float (Float.round (float_of_int aluts *. Prng.noise rng 0.004))
    | _ -> aluts
  in
  let regs = Opinfo.latency op ty * Ty.width ty in
  {
    Tytra_device.Resources.aluts;
    regs;
    bram_bits = 0;
    bram_blocks = 0;
    dsps = dsp_cells op ty;
  }

(** Effort level for the placement annealer (passes over the netlist).
    [`Fast] for tests, [`Full] for the Table II / speed-claim runs. *)
let effort_passes = function `Fast -> 4 | `Normal -> 40 | `Full -> 220

(** [run ~device ~effort d] — elaborate, pack, allocate and place design
    [d] for [device]; returns the detailed resource/Fmax report. This is
    the expensive path (seconds for multi-lane designs at [`Full] effort);
    compare with the sub-millisecond analytic estimator. *)
let run ?(device = Tytra_device.Device.stratixv_gsd8) ?(effort = `Normal)
    ?mode (d : Ast.design) : report =
  let mode = match mode with Some m -> m | None -> place_mode () in
  Tytra_telemetry.Span.with_ ~name:"sim.techmap"
    ~attrs:
      [ ("design", Tytra_telemetry.Span.Str d.Ast.d_name);
        ("device", Tytra_telemetry.Span.Str device.Tytra_device.Device.dev_name);
        ("effort", Tytra_telemetry.Span.Int (effort_passes effort));
        ("place_mode", Tytra_telemetry.Span.Str (place_mode_to_string mode)) ]
  @@ fun () ->
  Tytra_telemetry.Metrics.incr "sim.techmap.runs";
  let summary = Config_tree.classify d in
  let pe_names = summary.Config_tree.cs_pes in
  let pes = List.filter_map (Ast.find_func d) pe_names in
  let rng =
    Prng.of_string
      (Printf.sprintf "techmap:%s:%s" device.Tytra_device.Device.dev_name
         d.Ast.d_name)
  in
  (* --- datapath cells, per PE instance --- *)
  let aluts = ref 0 and regs = ref 0 and dsps = ref 0 in
  List.iter
    (fun (f : Ast.func) ->
      let sched = Tytra_hdl.Schedule.schedule_func d f in
      List.iter
        (fun (i : Ast.instr) ->
          match i with
          | Ast.Assign { op = (Ast.Shl | Ast.Shr) as op; ty;
                         args = [ _; Ast.Imm _ ]; _ } ->
              (* constant shift: wiring only; the stage register remains *)
              regs := !regs + (Opinfo.latency op ty * Ty.width ty)
          | Ast.Assign { op; ty; _ } ->
              aluts := !aluts + alut_cells op ty;
              dsps := !dsps + dsp_cells op ty;
              let rw =
                match op with
                | Ast.CmpEq | Ast.CmpNe | Ast.CmpLt | Ast.CmpLe | Ast.CmpGt
                | Ast.CmpGe -> 1
                | _ -> Ty.width ty
              in
              regs := !regs + (Opinfo.latency op ty * rw)
          | _ -> ())
        f.fn_body;
      regs := !regs + sched.Tytra_hdl.Schedule.sc_delay_regs;
      (* valid chain *)
      regs := !regs + sched.Tytra_hdl.Schedule.sc_depth + 1;
      aluts := !aluts + lane_glue_aluts;
      regs := !regs + lane_glue_regs)
    pes;
  (* --- offset buffers: BRAM at block granularity, or registers --- *)
  let bram_bits = ref 0 and bram_blocks = ref 0 in
  let block_bits = device.Tytra_device.Device.bram_block_bits in
  List.iter
    (fun f ->
      List.iter
        (fun (b : Tytra_hdl.Offsetbuf.buf) ->
          if b.Tytra_hdl.Offsetbuf.ob_in_bram then begin
            (* physical mapping: width-wise slices of M20K/BRAM36; the
               usable bits are the window bits, blocks round up *)
            bram_bits := !bram_bits + b.Tytra_hdl.Offsetbuf.ob_bits;
            bram_blocks :=
              !bram_blocks + ceil_div b.Tytra_hdl.Offsetbuf.ob_bits block_bits;
            (* address/control logic per BRAM window *)
            aluts := !aluts + 11;
            regs := !regs + 18
          end
          else
            regs := !regs + b.Tytra_hdl.Offsetbuf.ob_bits)
        (Tytra_hdl.Offsetbuf.of_func f))
    pes;
  (* --- stream control and top glue --- *)
  let nstreams = List.length d.Ast.d_streams in
  aluts := !aluts + (nstreams * stream_ctrl_aluts) + top_glue_aluts;
  regs := !regs + (nstreams * stream_ctrl_regs) + top_glue_regs;
  (* --- packing/synthesis variation --- *)
  let aluts_f = float_of_int !aluts *. Prng.noise rng 0.035 in
  let regs_f = float_of_int !regs *. Prng.noise rng 0.045 in
  let bram_f = float_of_int !bram_bits *. Prng.noise rng 0.004 in
  (* DSP merging: synthesis occasionally shares/repacks DSP tiles *)
  let dsps_v =
    if !dsps > 4 && Prng.float rng < 0.5 then
      !dsps - 1 - Prng.int rng (max 1 (!dsps / 8))
    else !dsps
  in
  let usage =
    {
      Tytra_device.Resources.aluts = int_of_float (Float.round aluts_f);
      regs = int_of_float (Float.round regs_f);
      bram_bits = int_of_float (Float.round bram_f);
      bram_blocks = !bram_blocks;
      dsps = dsps_v;
    }
  in
  (* --- placement and timing closure --- *)
  let nl =
    Tytra_telemetry.Span.with_ ~name:"sim.techmap.elaborate"
      (fun () -> build_netlist d pes)
  in
  let pl =
    Tytra_telemetry.Span.with_ ~name:"sim.techmap.place"
      ~attrs:[ ("cells", Tytra_telemetry.Span.Int nl.n_cells) ]
      (fun () ->
        match mode with
        | Parallel ->
            (* Seed the replica streams from a content digest of the
               (device, design) pair — not from the design's name and
               not from the shared rng — so which placement a point
               receives can never depend on sweep order or --jobs
               scheduling, only on what is being placed. *)
            let seed =
              Prng.seed_of_string
                ("techmap.place:"
                ^ Tytra_exec.Cache.digest_marshal
                    (device.Tytra_device.Device.dev_name, d))
            in
            place ~mode:Parallel ~seed ~rng ~effort:(effort_passes effort) nl
        | m -> place ~mode:m ~rng ~effort:(effort_passes effort) nl)
  in
  Log.debug (fun m ->
      m "placed %s: %d cells, %d/%d swaps accepted, avg wire %.2f"
        d.Ast.d_name nl.n_cells pl.pl_accepted pl.pl_moves pl.pl_avg_wire);
  (* routing estimate: wirelength-driven congestion and utilization
     derate the achievable clock (under its own span so the route share
     of a synth shows up next to elaborate/place in traces) *)
  let fmax =
    Tytra_telemetry.Span.with_ ~name:"sim.techmap.route"
      ~attrs:[ ("cells", Tytra_telemetry.Span.Int nl.n_cells) ]
      (fun () ->
        let util = Tytra_device.Resources.max_utilization device usage in
        let base = device.Tytra_device.Device.fmax_base_mhz in
        let congestion = pl.pl_avg_wire /. float_of_int (max 1 pl.pl_grid) in
        let fmax =
          base
          /. (1.0 +. (0.55 *. congestion))
          *. (1.0 -. (0.25 *. Float.min 1.0 util))
          *. Prng.noise rng 0.02
        in
        Float.max (0.4 *. base) (Float.min base fmax))
  in
  {
    tm_usage = usage;
    tm_fmax_mhz = fmax;
    tm_cells = nl.n_cells;
    tm_avg_wire = pl.pl_avg_wire;
    tm_device = device.Tytra_device.Device.dev_name;
    tm_design = d.Ast.d_name;
  }
