(** Request-level DRAM model.

    A deliberately simple single-channel, single-bank controller whose
    interesting behaviour is row-buffer locality and request merging:
    contiguous streams are merged into [req_bytes]-sized linear requests
    and mostly hit the open row; strided/random streams issue one
    full-round-trip request per element and mostly miss. This is what
    produces the up-to-two-orders-of-magnitude contiguous/strided gap the
    paper measures in Fig 10 — organically, not by table lookup. *)

(** Number of independently tracked banks (ranks × banks of a DDR3
    subsystem): consecutive rows interleave across banks, so concurrent
    linear streams — kernel lanes each own several — keep their rows open
    as long as their current rows land in distinct banks. The simulator
    staggers stream base addresses to make the steady state conflict-free
    for realistic stream counts. *)
let banks = 32

type t = {
  cfg : Tytra_device.Device.dram_cfg;
  open_rows : int array;          (** open row per bank; -1 = none *)
  mutable busy_cycles : Int64.t;  (** total bus cycles of service issued *)
  mutable requests : int;
  mutable row_misses : int;
  mutable bytes_moved : Int64.t;
}

let create (cfg : Tytra_device.Device.dram_cfg) : t =
  { cfg; open_rows = Array.make banks (-1); busy_cycles = 0L; requests = 0;
    row_misses = 0; bytes_moved = 0L }

let reset (t : t) =
  Array.fill t.open_rows 0 banks (-1);
  t.busy_cycles <- 0L;
  t.requests <- 0;
  t.row_misses <- 0;
  t.bytes_moved <- 0L

(** [service_cycles t ~addr ~bytes ~merged] — bus cycles to serve one
    request of [bytes] at byte address [addr]. [merged] requests ride the
    streaming path (low per-request overhead, pipelined on devices whose
    controller supports it); non-merged requests pay the full round
    trip. Updates the open-row state and counters. *)
let service_cycles (t : t) ~(addr : int) ~(bytes : int) ~(merged : bool) : int
    =
  let c = t.cfg in
  let row = addr / c.Tytra_device.Device.row_bytes in
  let bank = row mod banks in
  let row_penalty =
    if row = t.open_rows.(bank) then 0
    else c.Tytra_device.Device.t_rp + c.Tytra_device.Device.t_rcd
  in
  t.open_rows.(bank) <- row;
  let beats =
    max 1 ((bytes + c.Tytra_device.Device.bus_bytes - 1)
           / c.Tytra_device.Device.bus_bytes)
  in
  let cycles =
    if merged then
      if c.Tytra_device.Device.pipelined_reqs then
        (* streaming path: transfer dominates; control and CAS overlap
           with the previous request *)
        beats + c.Tytra_device.Device.ctrl_overhead + row_penalty
      else
        c.Tytra_device.Device.ctrl_overhead + c.Tytra_device.Device.t_cas
        + row_penalty + beats
    else
      c.Tytra_device.Device.rt_nonmerged + c.Tytra_device.Device.t_cas
      + row_penalty + beats
  in
  t.busy_cycles <- Int64.add t.busy_cycles (Int64.of_int cycles);
  t.requests <- t.requests + 1;
  if row_penalty > 0 then t.row_misses <- t.row_misses + 1;
  t.bytes_moved <- Int64.add t.bytes_moved (Int64.of_int bytes);
  cycles

(** [service_s] — as {!service_cycles} but in seconds. *)
let service_s (t : t) ~addr ~bytes ~merged : float =
  float_of_int (service_cycles t ~addr ~bytes ~merged)
  /. t.cfg.Tytra_device.Device.dram_clock_hz

(** Requests that hit an already-open row (the complement of
    [row_misses] — the locality the merged streaming path lives off). *)
let row_hits (t : t) : int = t.requests - t.row_misses

(** Achieved bandwidth over everything served so far, bytes/s. *)
let achieved_bps (t : t) : float =
  if Int64.equal t.busy_cycles 0L then 0.0
  else
    Int64.to_float t.bytes_moved
    /. (Int64.to_float t.busy_cycles /. t.cfg.Tytra_device.Device.dram_clock_hz)
