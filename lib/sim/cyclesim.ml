(** Cycle-level simulation of a TyTra-IR design on the platform model of
    paper Fig 4 (host — PCIe — device DRAM — stream control — kernel
    pipelines).

    This simulator is the executable substrate standing in for the real
    Maxeler/FPGA system: it produces the "actual" cycles-per-kernel-
    instance numbers of Table II, the runtime series of Fig 17, and the
    achieved-bandwidth figures behind Fig 15's communication walls.

    The kernel datapath advances at the kernel clock, consuming one tuple
    per lane per cycle (or one per [NTO] cycles for sequential configs)
    whenever every input stream FIFO has data and every output FIFO has
    space. A single shared DRAM controller serves all stream FIFOs
    round-robin through the request-level {!Dram} model, so lane
    contention, row-buffer locality and merge efficiency emerge from the
    simulation rather than from a formula. Host transfers follow the
    memory-execution form (paper Fig 6):

    - Form A — host↔DRAM transfer for every kernel instance;
    - Form B — one host transfer for all [NKI] instances;
    - Form C — data resides on-chip; the instance loop is compute-bound. *)

open Tytra_ir

type form = A | B | C

let form_to_string = function A -> "A" | B -> "B" | C -> "C"

type result = {
  r_form : form;
  r_fmax_mhz : float;
  r_nki : int;
  r_cycles_per_ki : float;  (** kernel-clock cycles per kernel instance *)
  r_time_per_ki_s : float;  (** device time per kernel instance *)
  r_host_s : float;         (** total host-transfer time over the run *)
  r_total_s : float;        (** wall time for the whole run *)
  r_ekit : float;           (** effective kernel-instance throughput, 1/s *)
  r_gmem_bps : float;       (** achieved device-DRAM bandwidth *)
  r_host_bps : float;       (** achieved host-link bandwidth *)
  r_stall_cycles : float;   (** kernel cycles lost waiting on streams *)
  r_compute_bound : bool;   (** kernel (not memory) was the limiter *)
}

let pp_result fmt r =
  Format.fprintf fmt
    "form %s @ %.1f MHz: CPKI=%.0f, t/KI=%.3g s, host=%.3g s, total=%.3g s, \
     EKIT=%.3g /s, gmem=%.2f GB/s, stalls=%.0f, %s-bound"
    (form_to_string r.r_form) r.r_fmax_mhz r.r_cycles_per_ki r.r_time_per_ki_s
    r.r_host_s r.r_total_s r.r_ekit (r.r_gmem_bps /. 1e9) r.r_stall_cycles
    (if r.r_compute_bound then "compute" else "memory")

(* ------------------------------------------------------------------ *)

type sstate = {
  ss_name : string;
  ss_dir : Ast.dir;
  ss_pattern : Ast.pattern;
  ss_elem_bytes : int;
  ss_total : int;              (* elements to move over one kernel instance *)
  ss_merge : int;              (* elements per DRAM request *)
  mutable ss_remaining : int;  (* reads: elements not yet fetched *)
  mutable ss_fifo : int;       (* reads: buffered; writes: awaiting writeback *)
  mutable ss_addr : int;
  mutable ss_written : int;    (* writes: elements written back *)
}

let fifo_cap = 512

let elem_bytes ty = (Ty.width ty + 7) / 8

let make_streams (device : Tytra_device.Device.t) (d : Ast.design) :
    sstate list =
  (* distinct memory objects occupy distinct regions; stagger base rows so
     lockstep streams open rows in distinct DRAM banks (5 is coprime with
     the bank count, so bases cycle through all banks) *)
  let row = device.Tytra_device.Device.dram.row_bytes in
  let idx = ref (-1) in
  List.filter_map
    (fun (p : Ast.port) ->
      incr idx;
      match Ast.find_stream d p.pt_stream with
      | None -> None
      | Some s ->
          let total =
            match Ast.find_mem d s.so_mem with
            | Some m -> m.mo_size
            | None -> 0
          in
          let eb = elem_bytes p.pt_ty in
          let merge =
            match s.so_pattern with
            | Ast.Cont ->
                max 1 (device.Tytra_device.Device.dram.req_bytes / eb)
            | Ast.Strided _ | Ast.Random -> 1
          in
          Some
            {
              ss_name = s.so_name;
              ss_dir = p.pt_dir;
              ss_pattern = s.so_pattern;
              ss_elem_bytes = eb;
              ss_total = total;
              ss_merge = merge;
              ss_remaining = (if p.pt_dir = Ast.IStream then total else 0);
              ss_fifo = 0;
              ss_addr = !idx * 5 * row;
              ss_written = 0;
            })
    d.d_ports

(* one DRAM request for stream [s]; returns seconds *)
let serve (dram : Dram.t) (rng : Prng.t) (s : sstate) : float =
  let bytes, stride_bytes =
    match s.ss_pattern with
    | Ast.Cont -> (s.ss_merge * s.ss_elem_bytes, s.ss_merge * s.ss_elem_bytes)
    | Ast.Strided k -> (s.ss_elem_bytes, k * s.ss_elem_bytes)
    | Ast.Random -> (s.ss_elem_bytes, 0)
  in
  let addr =
    match s.ss_pattern with
    | Ast.Random -> Prng.int rng (max 1 (s.ss_total * s.ss_elem_bytes))
    | _ -> s.ss_addr
  in
  let merged = s.ss_pattern = Ast.Cont in
  let dt = Dram.service_s dram ~addr ~bytes ~merged in
  (match s.ss_pattern with
  | Ast.Random -> ()
  | _ -> s.ss_addr <- s.ss_addr + stride_bytes);
  dt

(** [run_instance] — simulate one kernel instance streaming from device
    DRAM; returns (kernel cycles, stall cycles, dram state). *)
let run_instance ~(device : Tytra_device.Device.t) ~(fd_hz : float)
    ~(params : Analysis.params) (streams : sstate list) :
    float * float * Dram.t =
  let dram = Dram.create device.Tytra_device.Device.dram in
  let rng = Prng.of_string "cyclesim" in
  let reads = List.filter (fun s -> s.ss_dir = Ast.IStream) streams in
  let writes = List.filter (fun s -> s.ss_dir = Ast.OStream) streams in
  let nto = float_of_int (max 1 params.Analysis.nto) in
  (* per-stream tuple target: each stream moves its own ss_total elements *)
  let tuples_target =
    List.fold_left (fun acc s -> max acc s.ss_total) 0 streams
  in
  let t = ref 0.0 in               (* seconds *)
  let consumed = ref 0 in          (* tuples per lane consumed *)
  let stall = ref 0.0 in
  let t_k = ref 0.0 in             (* compute-time pointer *)
  let carry = ref 0.0 in
  (* ---- warm-up: stream the first Noff elements into the offset
     windows of the offset-bearing stream ---- *)
  (match reads with
  | s :: _ when params.Analysis.noff > 0 ->
      let elems = min params.Analysis.noff s.ss_remaining in
      let reqs = (elems + s.ss_merge - 1) / s.ss_merge in
      for _ = 1 to reqs do
        t := !t +. serve dram rng s
      done
      (* the elements live in the offset windows; stream continues from
         there, so do not decrement ss_remaining: the window look-ahead
         means the stream is Noff ahead, which we model as extra demand *)
  | _ -> ());
  let warmup_t = !t in
  t_k := !t;
  (* ---- main loop ---- *)
  let advance_to time =
    if time > !t_k then begin
      let cycles = ((time -. !t_k) *. fd_hz) +. !carry in
      let budget = int_of_float (cycles /. nto) in
      let min_read =
        List.fold_left (fun a s -> min a s.ss_fifo) max_int reads
      in
      let min_read = if reads = [] then max_int else min_read in
      let space =
        List.fold_left (fun a s -> min a (fifo_cap - s.ss_fifo)) max_int writes
      in
      let space = if writes = [] then max_int else space in
      let can =
        min budget (min min_read space)
        |> min (tuples_target - !consumed)
        |> max 0
      in
      List.iter (fun s -> s.ss_fifo <- s.ss_fifo - can) reads;
      List.iter (fun s -> s.ss_fifo <- s.ss_fifo + can) writes;
      consumed := !consumed + can;
      (* whole cycles the kernel idled waiting on FIFOs are lost (stall);
         the sub-tuple fractional residue of the budget carries over to
         the next event — dropping it would alias with the DRAM event
         period and silently discard throughput *)
      stall := !stall +. (float_of_int (budget - can) *. nto);
      carry := Float.max 0.0 (cycles -. (float_of_int budget *. nto));
      t_k := time
    end
  in
  let next_service () =
    (* round-robin preference: the hungriest read first, then ready writes *)
    let read_cand =
      List.filter (fun s -> s.ss_remaining > 0 && s.ss_fifo + s.ss_merge <= fifo_cap)
        reads
      |> List.sort (fun a b -> compare a.ss_fifo b.ss_fifo)
    in
    let write_cand =
      List.filter
        (fun s ->
          s.ss_fifo >= s.ss_merge
          || (!consumed >= tuples_target && s.ss_fifo > 0))
        writes
      |> List.sort (fun a b -> compare (-a.ss_fifo) (-b.ss_fifo))
    in
    match (read_cand, write_cand) with
    | r :: _, w :: _ -> if w.ss_fifo >= fifo_cap / 2 then Some w else Some r
    | r :: _, [] -> Some r
    | [], w :: _ -> Some w
    | [], [] -> None
  in
  let writes_flushed () = List.for_all (fun s -> s.ss_fifo = 0) writes in
  let guard = ref 0 in
  let max_iters =
    (* every iteration serves ≥1 element or advances compute; generous cap *)
    let total_elems = List.fold_left (fun a s -> a + s.ss_total) 16 streams in
    (total_elems * 4) + 1_000_000
  in
  while
    (!consumed < tuples_target || not (writes_flushed ()))
    && !guard < max_iters
  do
    incr guard;
    (match next_service () with
    | Some s ->
        let dt = serve dram rng s in
        t := !t +. dt;
        advance_to !t;
        if s.ss_dir = Ast.IStream then begin
          let batch = min s.ss_merge s.ss_remaining in
          s.ss_remaining <- s.ss_remaining - batch;
          s.ss_fifo <- min fifo_cap (s.ss_fifo + batch)
        end
        else begin
          let batch = min s.ss_merge s.ss_fifo in
          s.ss_fifo <- s.ss_fifo - batch;
          s.ss_written <- s.ss_written + batch
        end
    | None ->
        (* compute-bound: run the kernel until a FIFO needs service *)
        let needed = tuples_target - !consumed in
        let step = max 1 (min needed (fifo_cap / 2)) in
        let dt = float_of_int step *. nto /. fd_hz in
        t := !t +. dt;
        advance_to !t)
  done;
  (* pipeline drain *)
  let drain = float_of_int params.Analysis.kpd /. fd_hz in
  let total_t = !t +. drain in
  let cycles = (total_t *. fd_hz) +. 0.0 in
  ignore warmup_t;
  (cycles, !stall, dram)

(** [run ?device ?fmax_mhz ?form ?nki d] — simulate [nki] kernel-instance
    executions of design [d]. [fmax_mhz] defaults to the device's derated
    base clock; pass the tech-mapper's figure for closed-timing results. *)
let run ?(device = Tytra_device.Device.stratixv_gsd8) ?fmax_mhz ?(form = B)
    ?(nki = 1) (d : Ast.design) : result =
  Tytra_telemetry.Span.with_ ~name:"sim.cyclesim"
    ~attrs:
      [ ("design", Tytra_telemetry.Span.Str d.Ast.d_name);
        ("device", Tytra_telemetry.Span.Str device.Tytra_device.Device.dev_name);
        ("form", Tytra_telemetry.Span.Str (form_to_string form));
        ("nki", Tytra_telemetry.Span.Int nki) ]
  @@ fun () ->
  Tytra_telemetry.Metrics.incr "sim.cyclesim.runs";
  let params = Analysis.params d in
  let fmax =
    match fmax_mhz with
    | Some f -> f
    | None -> device.Tytra_device.Device.fmax_base_mhz
  in
  let fd_hz = fmax *. 1e6 in
  let in_bytes, out_bytes =
    List.fold_left
      (fun (i, o) (p : Ast.port) ->
        match Ast.find_stream d p.pt_stream with
        | None -> (i, o)
        | Some s ->
            let total =
              match Ast.find_mem d s.so_mem with Some m -> m.mo_size | None -> 0
            in
            let b = total * elem_bytes p.pt_ty in
            if p.pt_dir = Ast.IStream then (i + b, o) else (i, o + b))
      (0, 0) d.d_ports
  in
  let host_one =
    Hostlink.transfer_s device.Tytra_device.Device.link ~bytes:in_bytes
    +. Hostlink.transfer_s device.Tytra_device.Device.link ~bytes:out_bytes
  in
  let launch = device.Tytra_device.Device.dram.launch_overhead_s in
  match form with
  | C ->
      (* on-chip data: compute-bound instance loop *)
      let tuples =
        List.fold_left (fun acc (m : Ast.mem_obj) -> max acc m.mo_size) 0
          d.d_mems
      in
      let cycles =
        float_of_int
          (params.Analysis.noff + params.Analysis.kpd
          + (tuples * max 1 params.Analysis.nto))
      in
      let t_ki = (cycles /. fd_hz) +. launch in
      let total = host_one +. (float_of_int nki *. t_ki) in
      Tytra_telemetry.Metrics.observe "sim.cyclesim.cycles" cycles;
      {
        r_form = C;
        r_fmax_mhz = fmax;
        r_nki = nki;
        r_cycles_per_ki = cycles;
        r_time_per_ki_s = t_ki;
        r_host_s = host_one;
        r_total_s = total;
        r_ekit = float_of_int nki /. total;
        r_gmem_bps = 0.0;
        r_host_bps =
          (if host_one > 0.0 then
             float_of_int (in_bytes + out_bytes) /. host_one
           else 0.0);
        r_stall_cycles = 0.0;
        r_compute_bound = true;
      }
  | A | B ->
      let streams = make_streams device d in
      let cycles, stalls, dram =
        Tytra_telemetry.Span.with_ ~name:"sim.cyclesim.instance" (fun () ->
            run_instance ~device ~fd_hz ~params streams)
      in
      Tytra_telemetry.Metrics.observe "sim.cyclesim.cycles" cycles;
      Tytra_telemetry.Metrics.observe "sim.cyclesim.stall_cycles" stalls;
      Tytra_telemetry.Metrics.add "sim.dram.requests"
        (float_of_int dram.Dram.requests);
      Tytra_telemetry.Metrics.add "sim.dram.row_misses"
        (float_of_int dram.Dram.row_misses);
      Tytra_telemetry.Metrics.add "sim.dram.row_hits"
        (float_of_int (Dram.row_hits dram));
      Tytra_telemetry.Metrics.add "sim.dram.bytes_moved"
        (Int64.to_float dram.Dram.bytes_moved);
      let t_ki = (cycles /. fd_hz) +. launch in
      let host_total =
        match form with
        | A -> float_of_int nki *. host_one
        | B | C -> host_one
      in
      let total = host_total +. (float_of_int nki *. t_ki) in
      let moved = Int64.to_float dram.Dram.bytes_moved in
      {
        r_form = form;
        r_fmax_mhz = fmax;
        r_nki = nki;
        r_cycles_per_ki = cycles;
        r_time_per_ki_s = t_ki;
        r_host_s = host_total;
        r_total_s = total;
        r_ekit = float_of_int nki /. total;
        r_gmem_bps = (if t_ki > 0.0 then moved /. t_ki else 0.0);
        r_host_bps =
          (if host_one > 0.0 then
             float_of_int (in_bytes + out_bytes) /. host_one
           else 0.0);
        r_stall_cycles = stalls;
        r_compute_bound =
          stalls < 0.05 *. cycles;
      }
