(** Persistence for bandwidth calibrations.

    The cost-model use case (paper Fig 2) is: run a one-time set of
    benchmark experiments for each FPGA target, keep the device-specific
    costing parameters, feed them to the cost model thereafter. This
    module is the "keep" step — a plain, diff-friendly text format:

    {v
    # tytra bandwidth calibration v1
    device adm-pcie-7v3.virtex-7-690t
    cont    40000      4.6875e+07
    strided 1000000    8.75e+05
    random  1000000    8.3e+05
    v}

    Columns: pattern, stream bytes, sustained bytes/s. *)

let magic = "# tytra bandwidth calibration v1"

module Log = (val Logs.src_log (Logs.Src.create "tytra.calib"))

(** [save path calib] — write [calib] to [path]. *)
let save (path : string) (c : Bandwidth.calib) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "%s\n" magic;
      Printf.fprintf oc "device %s\n" c.Bandwidth.cal_device;
      let dump tag pts =
        List.iter
          (fun (p : Bandwidth.point) ->
            Printf.fprintf oc "%s %.17g %.17g\n" tag p.Bandwidth.cal_bytes
              p.Bandwidth.cal_bps)
          pts
      in
      dump "cont" c.Bandwidth.cont;
      dump "strided" c.Bandwidth.strided;
      dump "random" c.Bandwidth.random)

(** [load path] — read a calibration back. Returns [Error] with a
    line-numbered message on malformed input. *)
let load (path : string) : (Bandwidth.calib, string) result =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let device = ref "" in
          let cont = ref [] and strided = ref [] and random = ref [] in
          let err = ref None in
          let lineno = ref 0 in
          (try
             let first = input_line ic in
             incr lineno;
             if String.trim first <> magic then
               err := Some "not a tytra calibration file (bad header)";
             while !err = None do
               let l = input_line ic in
               incr lineno;
               let l = String.trim l in
               if l = "" || (String.length l > 0 && l.[0] = '#') then ()
               else
                 match String.split_on_char ' ' l
                       |> List.filter (fun s -> s <> "")
                 with
                 | [ "device"; name ] -> device := name
                 | [ tag; bytes; bps ] -> (
                     match
                       (float_of_string_opt bytes, float_of_string_opt bps)
                     with
                     | Some b, Some s -> (
                         let pt = (b, s) in
                         match tag with
                         | "cont" -> cont := pt :: !cont
                         | "strided" -> strided := pt :: !strided
                         | "random" -> random := pt :: !random
                         | _ ->
                             err :=
                               Some
                                 (Printf.sprintf "line %d: unknown pattern %S"
                                    !lineno tag))
                     | _ ->
                         err :=
                           Some
                             (Printf.sprintf "line %d: malformed numbers"
                                !lineno))
                 | _ ->
                     err :=
                       Some (Printf.sprintf "line %d: malformed line" !lineno)
             done
           with End_of_file -> ());
          match !err with
          | Some e ->
              Log.warn (fun m -> m "%s: %s" path e);
              Error e
          | None ->
              if !cont = [] then begin
                Log.warn (fun m ->
                    m "%s: calibration has no contiguous points" path);
                Error "calibration has no contiguous points"
              end
              else
                Ok
                  (Bandwidth.make ~device:!device ~cont:(List.rev !cont)
                     ~strided:(List.rev !strided) ~random:(List.rev !random)))

let load_exn path =
  match load path with Ok c -> c | Error e -> invalid_arg ("Calib_io: " ^ e)
