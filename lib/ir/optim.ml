(** IR-level optimization passes.

    The TyTra-IR is based on the LLVM-IR precisely so that classic
    compiler optimizations can run on it before costing and code
    generation (paper §IV, the LegUp comparison). This module implements
    the datapath-relevant subset:

    - {b constant folding} — all-immediate operations evaluate at compile
      time (via {!Interp.apply_op}, so folding agrees bit-for-bit with the
      interpreter and the generated hardware);
    - {b copy propagation} — [mov] chains collapse;
    - {b algebraic simplification / strength reduction} — multiply or
      divide by powers of two become shifts (a large win on FPGAs, where a
      multiplier burns a DSP tile but a constant shift is free wiring),
      [x*0 → 0], [x*1 → x], [x+0 → x], [x-0 → x], [x^x → 0], [x&x → x];
    - {b common-subexpression elimination} — structurally identical pure
      operations compute once;
    - {b dead-code elimination} — values that reach no output, reduction
      or call are removed.

    All passes preserve the interpreter semantics exactly (property-tested
    on random lowered kernels) and never touch the Manage-IR: stream and
    port structure — and therefore [NGS]/[NWPT]/[Noff] — are invariants.
    What changes is the datapath: [NI], [KPD] and the resource estimate
    drop, which is how the optimizer shows up in the cost model. *)

open Ast

type stats = {
  folded : int;      (** constant-folded instructions *)
  copies : int;      (** propagated moves *)
  reduced : int;     (** strength-reduced / simplified operations *)
  cse : int;         (** common subexpressions eliminated *)
  dce : int;         (** dead instructions removed *)
  const_args : int;  (** call-site constants propagated into callees *)
}

let zero_stats =
  { folded = 0; copies = 0; reduced = 0; cse = 0; dce = 0; const_args = 0 }

let add_stats a b =
  {
    folded = a.folded + b.folded;
    copies = a.copies + b.copies;
    reduced = a.reduced + b.reduced;
    cse = a.cse + b.cse;
    dce = a.dce + b.dce;
    const_args = a.const_args + b.const_args;
  }

let pp_stats fmt s =
  Format.fprintf fmt "folded=%d copies=%d reduced=%d cse=%d dce=%d cargs=%d"
    s.folded s.copies s.reduced s.cse s.dce s.const_args

module SM = Map.Make (String)

let is_pow2 (v : int64) =
  Int64.compare v 0L > 0 && Int64.equal (Int64.logand v (Int64.sub v 1L)) 0L

let log2_64 (v : int64) =
  let rec go acc v =
    if Int64.compare v 1L <= 0 then acc else go (acc + 1) (Int64.shift_right_logical v 1)
  in
  go 0 v

(* substitute operands through the environment of known replacements *)
let subst env (o : operand) : operand =
  match o with
  | Var v -> ( match SM.find_opt v env with Some o' -> o' | None -> o)
  | o -> o

let all_imm args =
  List.for_all (function Imm _ | ImmF _ -> true | _ -> false) args

let imm_value = function
  | Imm v -> v
  | ImmF f -> Int64.bits_of_float f
  | _ -> invalid_arg "imm_value"

let mk_imm ty (v : int64) : operand =
  if Ty.is_float ty then ImmF (Int64.float_of_bits v) else Imm v

(* one forward pass over a function body: fold, propagate, simplify, CSE.
   Returns (new body reversed, env, counters). *)
let forward (f : func) : instr list * stats =
  let env = ref SM.empty in
  let cse_tbl : (op * Ty.t * operand list, string) Hashtbl.t =
    Hashtbl.create 32
  in
  let st = ref zero_stats in
  let bump g = st := g !st in
  let keep_name n = Conventions.is_output n in
  let body =
    List.fold_left
      (fun acc (i : instr) ->
        match i with
        | Offset { dst; ty; src; off } ->
            Offset { dst; ty; src = subst !env src; off } :: acc
        | Call { callee; args; kind; rets } ->
            Call { callee; args = List.map (subst !env) args; kind; rets }
            :: acc
        | Assign { dst; ty; op; args } -> (
            let args = List.map (subst !env) args in
            let redirect name repl counter =
              if keep_name name then begin
                (* outputs must stay materialized: emit a mov *)
                Assign { dst = Dlocal name; ty; op = Mov; args = [ repl ] }
                :: acc
              end
              else begin
                env := SM.add name repl !env;
                bump counter;
                acc
              end
            in
            match dst with
            | Dglobal _ -> Assign { dst; ty; op; args } :: acc
            | Dlocal name ->
                (* 1. constant folding *)
                if all_imm args && op <> Mov then begin
                  let v = Interp.apply_op ty op (List.map imm_value args) in
                  let rty =
                    match op with
                    | CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe -> Ty.Bool
                    | _ -> ty
                  in
                  redirect name (mk_imm rty v) (fun s ->
                      { s with folded = s.folded + 1 })
                end
                else if op = Mov then begin
                  match args with
                  | [ a ] ->
                      redirect name a (fun s -> { s with copies = s.copies + 1 })
                  | _ -> Assign { dst; ty; op; args } :: acc
                end
                else begin
                  (* 2. algebraic simplification / strength reduction *)
                  let simplified =
                    match (op, args, Ty.is_float ty) with
                    | Mul, [ a; Imm v ], false | Mul, [ Imm v; a ], false ->
                        if Int64.equal v 0L then Some (`Repl (Imm 0L))
                        else if Int64.equal v 1L then Some (`Repl a)
                        else if is_pow2 v then
                          Some
                            (`Rewrite
                              (Shl, [ a; Imm (Int64.of_int (log2_64 v)) ]))
                        else None
                    | Div, [ a; Imm v ], false when not (Ty.is_signed ty) ->
                        if Int64.equal v 1L then Some (`Repl a)
                        else if is_pow2 v then
                          Some
                            (`Rewrite
                              (Shr, [ a; Imm (Int64.of_int (log2_64 v)) ]))
                        else None
                    | Rem, [ a; Imm v ], false when not (Ty.is_signed ty) ->
                        if Int64.equal v 1L then Some (`Repl (Imm 0L))
                        else if is_pow2 v then
                          Some (`Rewrite (And, [ a; Imm (Int64.sub v 1L) ]))
                        else None
                    | Add, [ a; Imm 0L ], false | Add, [ Imm 0L; a ], false
                    | Sub, [ a; Imm 0L ], false ->
                        Some (`Repl a)
                    | Xor, [ Var a; Var b ], false when a = b ->
                        Some (`Repl (Imm 0L))
                    | (And | Or), [ Var a; Var b ], false when a = b ->
                        Some (`Repl (Var a))
                    | Select, [ Imm c; a; b ], _ ->
                        Some (`Repl (if Int64.compare c 0L <> 0 then a else b))
                    | _ -> None
                  in
                  match simplified with
                  | Some (`Repl r) ->
                      redirect name r (fun s -> { s with reduced = s.reduced + 1 })
                  | Some (`Rewrite (op', args')) ->
                      bump (fun s -> { s with reduced = s.reduced + 1 });
                      (* the rewritten op goes through CSE like any other *)
                      let key = (op', ty, args') in
                      (match Hashtbl.find_opt cse_tbl key with
                      | Some prev when not (keep_name name) ->
                          env := SM.add name (Var prev) !env;
                          bump (fun s -> { s with cse = s.cse + 1 });
                          acc
                      | _ ->
                          Hashtbl.replace cse_tbl key name;
                          Assign { dst = Dlocal name; ty; op = op'; args = args' }
                          :: acc)
                  | None -> (
                      (* 3. CSE on the original operation *)
                      let key = (op, ty, args) in
                      match Hashtbl.find_opt cse_tbl key with
                      | Some prev when not (keep_name name) ->
                          env := SM.add name (Var prev) !env;
                          bump (fun s -> { s with cse = s.cse + 1 });
                          acc
                      | _ ->
                          Hashtbl.replace cse_tbl key name;
                          Assign { dst = Dlocal name; ty; op; args } :: acc)
                end))
      [] f.fn_body
  in
  (body, !st)

(* backward liveness: keep instructions whose destination is live *)
let dce (body_rev : instr list) : instr list * int =
  let live = Hashtbl.create 32 in
  let mark (o : operand) =
    match o with Var v -> Hashtbl.replace live v () | _ -> ()
  in
  let removed = ref 0 in
  let kept =
    List.fold_left
      (fun acc (i : instr) ->
        match i with
        | Assign { dst = Dlocal n; args; _ } ->
            if Conventions.is_output n || Hashtbl.mem live n then begin
              List.iter mark args;
              i :: acc
            end
            else begin
              incr removed;
              acc
            end
        | Assign { dst = Dglobal _; args; _ } ->
            List.iter mark args;
            i :: acc
        | Offset { dst; src; _ } ->
            if Hashtbl.mem live dst then begin
              mark src;
              i :: acc
            end
            else begin
              incr removed;
              acc
            end
        | Call { args; _ } ->
            List.iter mark args;
            i :: acc)
      [] body_rev
  in
  (kept, !removed)

(** Optimize one function to a fixpoint (bounded). *)
let optimize_func (f : func) : func * stats =
  let rec go f stats n =
    if n = 0 then (f, stats)
    else begin
      let body_rev, st1 = forward f in
      let body, removed = dce body_rev in
      let st = add_stats st1 { zero_stats with dce = removed } in
      let f' = { f with fn_body = body } in
      if f'.fn_body = f.fn_body then (f', add_stats stats st)
      else go f' (add_stats stats st) (n - 1)
    end
  in
  go f zero_stats 8

(** Interprocedural constant-argument propagation: when {e every} call
    site of a function passes the same immediate for a parameter, the
    constant is substituted into the callee's body (specialization). The
    parameter and the call-site argument stay in place — the interface is
    unchanged and the design still validates — but the constant now folds
    inside the body. This is how the paper kernels' scalar coefficients
    (passed as immediates by the lowering pass, Fig 12's [cn*]) become
    visible to folding and strength reduction. *)
let propagate_const_args (d : design) : design * int =
  (* per (callee, position): Some imm if all sites agree, None otherwise *)
  let table : (string, operand option array) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (f : func) ->
      List.iter
        (fun (i : instr) ->
          match i with
          | Call { callee; args; _ } -> (
              match find_func d callee with
              | None -> ()
              | Some cf ->
                  let arr =
                    match Hashtbl.find_opt table callee with
                    | Some arr -> arr
                    | None ->
                        let arr =
                          Array.make (List.length cf.fn_params) None
                        in
                        (* first sight: seed with this site's immediates *)
                        List.iteri
                          (fun k a ->
                            match a with
                            | (Imm _ | ImmF _) as c -> arr.(k) <- Some c
                            | _ -> ())
                          args;
                        Hashtbl.replace table callee arr;
                        arr
                  in
                  List.iteri
                    (fun k a ->
                      match (arr.(k), a) with
                      | Some c, ((Imm _ | ImmF _) as c') when c = c' -> ()
                      | _, _ -> arr.(k) <- None)
                    args)
          | _ -> ())
        f.fn_body)
    d.d_funcs;
  let count = ref 0 in
  let funcs =
    List.map
      (fun (f : func) ->
        match Hashtbl.find_opt table f.fn_name with
        | None -> f
        | Some arr ->
            let subst = Hashtbl.create 4 in
            List.iteri
              (fun k (pname, _) ->
                match arr.(k) with
                | Some c ->
                    Hashtbl.replace subst pname c;
                    incr count
                | None -> ())
              f.fn_params;
            if Hashtbl.length subst = 0 then f
            else
              let sub (o : operand) =
                match o with
                | Var v -> (
                    match Hashtbl.find_opt subst v with
                    | Some c -> c
                    | None -> o)
                | o -> o
              in
              let body =
                List.map
                  (fun (i : instr) ->
                    match i with
                    | Assign { dst; ty; op; args } ->
                        Assign { dst; ty; op; args = List.map sub args }
                    | Call { callee; args; kind; rets } ->
                        Call { callee; args = List.map sub args; kind; rets }
                    | Offset _ as i -> i (* stream sources stay symbolic *))
                  f.fn_body
              in
              { f with fn_body = body })
      d.d_funcs
  in
  ({ d with d_funcs = funcs }, !count)

(** [run ?interprocedural d] — optimize every function of [d]. Manage-IR
    is untouched; the result still validates. *)
let run ?(interprocedural = true) (d : design) : design * stats =
  Tytra_telemetry.Span.with_ ~name:"ir.optim"
    ~attrs:[ ("design", Tytra_telemetry.Span.Str d.d_name) ]
  @@ fun () ->
  let d, cargs =
    if interprocedural then propagate_const_args d else (d, 0)
  in
  let stats = ref { zero_stats with const_args = cargs } in
  let funcs =
    List.map
      (fun f ->
        let f', st = optimize_func f in
        stats := add_stats !stats st;
        f')
      d.d_funcs
  in
  ({ d with d_funcs = funcs }, !stats)
