(** Typed diagnostics for the TyTra-IR front door.

    Library consumers used to have to catch [Parser.Parse_error],
    [Lexer.Lex_error], [Sys_error] and assorted [Failure _]s to find out
    *why* a design failed to load. This module is the single typed error
    channel: every result-returning entry point ([Parser.parse_result],
    [Parser.parse_file_result], [Parser.load_file]) reports one of these
    constructors, carrying enough location to print a compiler-style
    ["file:line: message"] diagnostic. *)

(** Where a lexical/syntactic diagnostic points. *)
type location = {
  loc_file : string option;  (** source path, when parsing from a file *)
  loc_line : int;            (** 1-based line number *)
}

type t =
  | Lex of { msg : string; loc : location }
      (** invalid input below the token level *)
  | Parse of { msg : string; loc : location }
      (** token stream does not form a design *)
  | Invalid of Validate.error list
      (** parsed, but rejected by static validation *)
  | Io of { path : string; msg : string }
      (** the source could not be read at all *)

let lex ?file msg line = Lex { msg; loc = { loc_file = file; loc_line = line } }

let parse ?file msg line =
  Parse { msg; loc = { loc_file = file; loc_line = line } }

(** The line a lexical/syntactic error points at, if it has one. *)
let line = function
  | Lex { loc; _ } | Parse { loc; _ } -> Some loc.loc_line
  | Invalid _ | Io _ -> None

let pp_location fmt loc =
  (match loc.loc_file with
  | Some f -> Format.fprintf fmt "%s:" f
  | None -> ());
  Format.fprintf fmt "%d" loc.loc_line

(** Compiler-style rendering: one ["file:line: kind: msg"] line per
    diagnostic (validation reports one line per violated rule). *)
let pp fmt = function
  | Lex { msg; loc } ->
      Format.fprintf fmt "%a: lex error: %s" pp_location loc msg
  | Parse { msg; loc } ->
      Format.fprintf fmt "%a: parse error: %s" pp_location loc msg
  | Invalid errs ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_newline fmt ())
        (fun fmt e -> Format.pp_print_string fmt (Validate.error_to_string e))
        fmt errs
  | Io { path; msg } -> Format.fprintf fmt "%s: %s" path msg

let to_string e = Format.asprintf "%a" pp e
