(** Static validation of TyTra-IR designs.

    The TyTra-IR is strongly and statically typed and uses static single
    assignment (paper §IV). [check] enforces:

    - name uniqueness (memory objects, streams, ports, globals, functions);
    - referential integrity (streams → memory objects, ports → streams and
      function parameters, calls → functions);
    - SSA discipline: every local is assigned at most once per function and
      defined before use;
    - type correctness of every instruction, including immediate ranges;
    - parallelism-kind well-formedness: [par] bodies contain only calls,
      [comb] bodies contain only combinatorial assignments, call-site kinds
      match callee declarations;
    - an acyclic call graph rooted at [@main].

    Two implementations coexist (DESIGN.md §10):

    - {!check} — the fast path: one traversal in source order over a
      {!Symtab} index, O(1) lookups, errors reported in source order
      with identical (loc, msg) pairs deduplicated;
    - {!check_reference} — the original multi-pass list-scanning
      validator, kept verbatim as the differential-testing twin
      ([--no-fast-ir]); it reports the same defects, without the
      ordering/dedup guarantees.

    {!check_delta} is the derived-variant entry point: it validates a
    design whose processing-element bodies are already-validated
    templates ({!Tytra_front.Lower.derive}), re-checking only the
    per-variant delta — Manage-IR, top-level wiring and call sites. *)

open Ast

type error = { loc : string; msg : string }

let pp_error fmt e = Format.fprintf fmt "%s: %s" e.loc e.msg
let error_to_string e = Format.asprintf "%a" pp_error e

let err errs loc fmt = Format.kasprintf (fun msg -> errs := { loc; msg } :: !errs) fmt

module SS = Set.Make (String)
module SM = Map.Make (String)

(* Type of the value produced by an assignment with declared operand type
   [ty]. Comparisons produce Bool. *)
let result_ty op ty =
  match op with
  | CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe -> Ty.Bool
  | _ -> ty

(* ------------------------------------------------------------------ *)
(* Fast path: one pass over the Symtab index, errors in source order   *)
(* ------------------------------------------------------------------ *)

(* Operand check against the indexed globals; [env] is the per-function
   SSA environment. *)
let check_operand errs loc (sy : Symtab.t) ~env ~expect (o : operand) =
  match o with
  | Var v -> (
      match SM.find_opt v env with
      | None -> err errs loc "use of undefined local %%%s" v
      | Some t ->
          if not (Ty.equal t expect) then
            err errs loc "operand %%%s has type %s, expected %s" v
              (Ty.to_string t) (Ty.to_string expect))
  | Glob g -> (
      match Symtab.find_global sy g with
      | None -> err errs loc "use of undeclared global @%s" g
      | Some gl ->
          if not (Ty.equal gl.g_ty expect) then
            err errs loc "global @%s has type %s, expected %s" g
              (Ty.to_string gl.g_ty) (Ty.to_string expect))
  | Imm i -> (
      if Ty.is_float expect then
        err errs loc "integer immediate %Ld used at float type %s" i
          (Ty.to_string expect)
      else
        match Ty.int_range expect with
        | Some (lo, hi) when Int64.compare i lo < 0 || Int64.compare i hi > 0 ->
            err errs loc "immediate %Ld out of range for %s" i
              (Ty.to_string expect)
        | _ -> ())
  | ImmF f ->
      if not (Ty.is_float expect) then
        err errs loc "float immediate %g used at integer type %s" f
          (Ty.to_string expect)

(* Body check of one function: SSA discipline, types, call wiring and
   kind shape, in one walk. *)
let check_func_fast errs (sy : Symtab.t) (f : func) =
  let loc = "@" ^ f.fn_name in
  let seen_params = Hashtbl.create (2 * List.length f.fn_params) in
  List.iter
    (fun (n, t) ->
      if Hashtbl.mem seen_params n then
        err errs loc "duplicate %s %S" "parameter" n
      else Hashtbl.add seen_params n ();
      if not (Ty.valid t) then
        err errs loc "parameter %%%s has invalid type %s" n (Ty.to_string t))
    f.fn_params;
  let env0 =
    List.fold_left (fun m (n, t) -> SM.add n t m) SM.empty f.fn_params
  in
  let param_set = SS.of_list (List.map fst f.fn_params) in
  let _ =
    List.fold_left
      (fun env i ->
        (* kind-specific body shape, checked at the instruction *)
        (match (f.fn_kind, i) with
        | Par, Call _ -> ()
        | Par, i ->
            err errs loc "par function body must contain only calls, found: %s"
              (Pprint.instr_to_string i)
        | Comb, Assign _ -> ()
        | Comb, (Offset _ as i) | Comb, (Call _ as i) ->
            err errs loc
              "comb function body must be pure combinatorial assignments, \
               found: %s"
              (Pprint.instr_to_string i)
        | (Pipe | Seq), _ -> ());
        match i with
        | Offset { dst; ty; src; off = _ } ->
            if f.fn_kind = Comb then
              err errs loc "offset %%%s not allowed in comb function" dst;
            if SM.mem dst env then err errs loc "local %%%s reassigned (SSA)" dst;
            (match src with
            | Var v when SS.mem v param_set -> ()
            | Var v -> err errs loc "offset source %%%s must be a stream parameter" v
            | _ -> err errs loc "offset source must be a stream parameter");
            check_operand errs loc sy ~env ~expect:ty src;
            SM.add dst ty env
        | Assign { dst; ty; op; args } ->
            if not (Ty.valid ty) then
              err errs loc "instruction at invalid type %s" (Ty.to_string ty);
            if List.length args <> arity op then
              err errs loc "%s expects %d operands, got %d" (op_to_string op)
                (arity op) (List.length args);
            (match (op, ty) with
            | (And | Or | Xor | Not | Shl | Shr | Rem), t when Ty.is_float t ->
                err errs loc "bitwise/modular op %s at float type %s"
                  (op_to_string op) (Ty.to_string t)
            | _ -> ());
            (match (op, args) with
            | Select, [ c; a; b ] ->
                check_operand errs loc sy ~env ~expect:Ty.Bool c;
                check_operand errs loc sy ~env ~expect:ty a;
                check_operand errs loc sy ~env ~expect:ty b
            | _ ->
                List.iter (check_operand errs loc sy ~env ~expect:ty) args);
            let rty = result_ty op ty in
            (match dst with
            | Dlocal n ->
                if SM.mem n env then err errs loc "local %%%s reassigned (SSA)" n;
                SM.add n rty env
            | Dglobal g -> (
                match Symtab.find_global sy g with
                | None ->
                    err errs loc "assignment to undeclared global @%s" g;
                    env
                | Some gl ->
                    if not (Ty.equal gl.g_ty rty) then
                      err errs loc
                        "reduction into @%s: type %s does not match global %s" g
                        (Ty.to_string rty) (Ty.to_string gl.g_ty);
                    env))
        | Call { callee; args; kind; rets } -> (
            (if f.fn_kind = Comb then
               err errs loc "call not allowed in comb function");
            match Symtab.find_func sy callee with
            | None ->
                err errs loc "call to undefined function @%s" callee;
                env
            | Some g ->
                if g.fn_kind <> kind then
                  err errs loc
                    "call-site kind %s does not match @%s's declared kind %s"
                    (kind_to_string kind) callee (kind_to_string g.fn_kind);
                if List.length args <> List.length g.fn_params then
                  err errs loc "call to @%s with %d arguments, expected %d"
                    callee (List.length args) (List.length g.fn_params)
                else
                  List.iter2
                    (fun a (_, t) ->
                      check_operand errs loc sy ~env ~expect:t a)
                    args g.fn_params;
                (* returning calls: bind the callee's out_* streams *)
                let outs = Symtab.func_outputs sy g in
                if List.length rets > List.length outs then begin
                  err errs loc
                    "call to @%s binds %d results but the callee streams %d \
                     outputs"
                    callee (List.length rets) (List.length outs);
                  env
                end
                else
                  List.fold_left2
                    (fun env r (_, rty) ->
                      if SM.mem r env then begin
                        err errs loc "local %%%s reassigned (SSA)" r;
                        env
                      end
                      else SM.add r rty env)
                    env rets
                    (List.filteri (fun i _ -> i < List.length rets) outs)))
      env0 f.fn_body
  in
  ()

(* Detect call-graph cycles reachable from any function, O(1) callee
   resolution. *)
let check_recursion_fast errs (sy : Symtab.t) =
  let color = Hashtbl.create 16 in
  (* 0 = white, 1 = grey, 2 = black *)
  let rec visit name =
    match Hashtbl.find_opt color name with
    | Some 1 -> err errs ("@" ^ name) "recursive call cycle through @%s" name
    | Some 2 -> ()
    | _ -> (
        Hashtbl.replace color name 1;
        (match Symtab.find_func sy name with
        | None -> ()
        | Some f ->
            List.iter
              (function Call { callee; _ } -> visit callee | _ -> ())
              f.fn_body);
        Hashtbl.replace color name 2)
  in
  List.iter (fun f -> visit f.fn_name) (Symtab.design sy).d_funcs

(* Deduplicate identical (loc, msg) pairs, keeping the first occurrence,
   so cascading errors (the same undefined stream referenced by every
   lane's port, say) report once. *)
let dedup_errors (es : error list) : error list =
  let seen = Hashtbl.create 32 in
  List.filter
    (fun e ->
      if Hashtbl.mem seen (e.loc, e.msg) then false
      else begin
        Hashtbl.add seen (e.loc, e.msg) ();
        true
      end)
    es

(* The single source-order pass. [skip_body f] suppresses the
   per-instruction body walk of function [f] (derived variants whose PE
   bodies come from an already-validated template). *)
let check_indexed ?(skip_body = fun _ -> false) (d : design) : error list =
  let sy = Symtab.of_design d in
  let errs = ref [] in
  (* --- Manage-IR, in .tirl source order: mems, streams, ports --- *)
  let dup_guard what =
    let seen = Hashtbl.create 16 in
    fun loc n ->
      if Hashtbl.mem seen n then err errs loc "duplicate %s %S" what n
      else Hashtbl.add seen n ()
  in
  let mem_dup = dup_guard "memory object" in
  List.iter
    (fun m ->
      let loc = "%" ^ m.mo_name in
      mem_dup "manage" m.mo_name;
      if m.mo_size <= 0 then err errs loc "memory object size must be positive";
      if not (Ty.valid m.mo_ty) then
        err errs loc "invalid element type %s" (Ty.to_string m.mo_ty))
    d.d_mems;
  let stream_dup = dup_guard "stream object" in
  List.iter
    (fun s ->
      let loc = "%" ^ s.so_name in
      stream_dup "manage" s.so_name;
      (match Symtab.find_mem sy s.so_mem with
      | None ->
          err errs loc "stream references unknown memory object %%%s" s.so_mem
      | Some _ -> ());
      match s.so_pattern with
      | Strided k when k <= 0 ->
          err errs loc "stride must be positive, got %d" k
      | _ -> ())
    d.d_streams;
  let port_dup = dup_guard "port" in
  List.iter
    (fun p ->
      let loc = Printf.sprintf "@%s.%s" p.pt_fun p.pt_port in
      port_dup "manage" (p.pt_fun ^ "." ^ p.pt_port);
      (match Symtab.find_stream sy p.pt_stream with
      | None -> err errs loc "port references unknown stream object %%%s" p.pt_stream
      | Some s ->
          if s.so_dir <> p.pt_dir then
            err errs loc "port direction %s conflicts with stream %%%s (%s)"
              (dir_to_string p.pt_dir) s.so_name (dir_to_string s.so_dir);
          (match Symtab.find_mem sy s.so_mem with
          | Some m when not (Ty.equal m.mo_ty p.pt_ty) ->
              err errs loc "port type %s does not match memory %%%s element type %s"
                (Ty.to_string p.pt_ty) m.mo_name (Ty.to_string m.mo_ty)
          | _ -> ()));
      match Symtab.find_func sy p.pt_fun with
      | None -> err errs loc "port on unknown function @%s" p.pt_fun
      | Some f -> (
          match Symtab.param_ty sy f p.pt_port with
          | None ->
              err errs loc "function @%s has no parameter %%%s" p.pt_fun p.pt_port
          | Some t ->
              if not (Ty.equal t p.pt_ty) then
                err errs loc "port type %s does not match parameter type %s"
                  (Ty.to_string p.pt_ty) (Ty.to_string t)))
    d.d_ports;
  let global_dup = dup_guard "global" in
  List.iter (fun g -> global_dup "manage" g.g_name) d.d_globals;
  (* --- Compute-IR, declaration order --- *)
  let func_dup = dup_guard "function" in
  List.iter
    (fun f ->
      func_dup "design" f.fn_name;
      if not (skip_body f) then check_func_fast errs sy f)
    d.d_funcs;
  (* --- design level --- *)
  (match Symtab.find_func sy "main" with
  | None -> err errs "design" "no @main function"
  | Some _ -> ());
  check_recursion_fast errs sy;
  dedup_errors (List.rev !errs)

(* ------------------------------------------------------------------ *)
(* Reference path: the original multi-pass list-scanning validator     *)
(* ------------------------------------------------------------------ *)

module Reference = struct
  let dup_names errs loc what names =
    let seen = Hashtbl.create 16 in
    List.iter
      (fun n ->
        if Hashtbl.mem seen n then err errs loc "duplicate %s %S" what n
        else Hashtbl.add seen n ())
      names

  let check_operand errs loc ~globals ~env ~expect (o : operand) =
    match o with
    | Var v -> (
        match SM.find_opt v env with
        | None -> err errs loc "use of undefined local %%%s" v
        | Some t ->
            if not (Ty.equal t expect) then
              err errs loc "operand %%%s has type %s, expected %s" v
                (Ty.to_string t) (Ty.to_string expect))
    | Glob g -> (
        match SM.find_opt g globals with
        | None -> err errs loc "use of undeclared global @%s" g
        | Some t ->
            if not (Ty.equal t expect) then
              err errs loc "global @%s has type %s, expected %s" g
                (Ty.to_string t) (Ty.to_string expect))
    | Imm i -> (
        if Ty.is_float expect then
          err errs loc "integer immediate %Ld used at float type %s" i
            (Ty.to_string expect)
        else
          match Ty.int_range expect with
          | Some (lo, hi) when Int64.compare i lo < 0 || Int64.compare i hi > 0 ->
              err errs loc "immediate %Ld out of range for %s" i
                (Ty.to_string expect)
          | _ -> ())
    | ImmF f ->
        if not (Ty.is_float expect) then
          err errs loc "float immediate %g used at integer type %s" f
            (Ty.to_string expect)

  let check_func errs (d : design) (globals : Ty.t SM.t) (f : func) =
    let loc = "@" ^ f.fn_name in
    dup_names errs loc "parameter" (List.map fst f.fn_params);
    List.iter
      (fun (n, t) ->
        if not (Ty.valid t) then
          err errs loc "parameter %%%s has invalid type %s" n (Ty.to_string t))
      f.fn_params;
    let env0 =
      List.fold_left (fun m (n, t) -> SM.add n t m) SM.empty f.fn_params
    in
    let param_set = SS.of_list (List.map fst f.fn_params) in
    let _ =
      List.fold_left
        (fun env i ->
          match i with
          | Offset { dst; ty; src; off = _ } ->
              if f.fn_kind = Comb then
                err errs loc "offset %%%s not allowed in comb function" dst;
              if SM.mem dst env then err errs loc "local %%%s reassigned (SSA)" dst;
              (match src with
              | Var v when SS.mem v param_set -> ()
              | Var v -> err errs loc "offset source %%%s must be a stream parameter" v
              | _ -> err errs loc "offset source must be a stream parameter");
              check_operand errs loc ~globals ~env ~expect:ty src;
              SM.add dst ty env
          | Assign { dst; ty; op; args } ->
              if not (Ty.valid ty) then
                err errs loc "instruction at invalid type %s" (Ty.to_string ty);
              if List.length args <> arity op then
                err errs loc "%s expects %d operands, got %d" (op_to_string op)
                  (arity op) (List.length args);
              (match (op, ty) with
              | (And | Or | Xor | Not | Shl | Shr | Rem), t when Ty.is_float t ->
                  err errs loc "bitwise/modular op %s at float type %s"
                    (op_to_string op) (Ty.to_string t)
              | _ -> ());
              (match (op, args) with
              | Select, [ c; a; b ] ->
                  check_operand errs loc ~globals ~env ~expect:Ty.Bool c;
                  check_operand errs loc ~globals ~env ~expect:ty a;
                  check_operand errs loc ~globals ~env ~expect:ty b
              | _ ->
                  List.iter (check_operand errs loc ~globals ~env ~expect:ty) args);
              let rty = result_ty op ty in
              (match dst with
              | Dlocal n ->
                  if SM.mem n env then err errs loc "local %%%s reassigned (SSA)" n;
                  SM.add n rty env
              | Dglobal g -> (
                  match SM.find_opt g globals with
                  | None ->
                      err errs loc "assignment to undeclared global @%s" g;
                      env
                  | Some t ->
                      if not (Ty.equal t rty) then
                        err errs loc
                          "reduction into @%s: type %s does not match global %s" g
                          (Ty.to_string rty) (Ty.to_string t);
                      env))
          | Call { callee; args; kind; rets } -> (
              (if f.fn_kind = Comb then
                 err errs loc "call not allowed in comb function");
              match find_func d callee with
              | None ->
                  err errs loc "call to undefined function @%s" callee;
                  env
              | Some g ->
                  if g.fn_kind <> kind then
                    err errs loc
                      "call-site kind %s does not match @%s's declared kind %s"
                      (kind_to_string kind) callee (kind_to_string g.fn_kind);
                  if List.length args <> List.length g.fn_params then
                    err errs loc "call to @%s with %d arguments, expected %d"
                      callee (List.length args) (List.length g.fn_params)
                  else
                    List.iter2
                      (fun a (_, t) ->
                        check_operand errs loc ~globals ~env ~expect:t a)
                      args g.fn_params;
                  (* returning calls: bind the callee's out_* streams *)
                  let outs = func_outputs g in
                  if List.length rets > List.length outs then begin
                    err errs loc
                      "call to @%s binds %d results but the callee streams %d \
                       outputs"
                      callee (List.length rets) (List.length outs);
                    env
                  end
                  else
                    List.fold_left2
                      (fun env r (_, rty) ->
                        if SM.mem r env then begin
                          err errs loc "local %%%s reassigned (SSA)" r;
                          env
                        end
                        else SM.add r rty env)
                      env rets
                      (List.filteri (fun i _ -> i < List.length rets) outs)))
        env0 f.fn_body
    in
    (* kind-specific body shape *)
    (match f.fn_kind with
    | Par ->
        List.iter
          (function
            | Call _ -> ()
            | i ->
                err errs loc "par function body must contain only calls, found: %s"
                  (Pprint.instr_to_string i))
          f.fn_body
    | Comb ->
        List.iter
          (function
            | Assign _ -> ()
            | i ->
                err errs loc
                  "comb function body must be pure combinatorial assignments, \
                   found: %s"
                  (Pprint.instr_to_string i))
          f.fn_body
    | Pipe | Seq -> ());
    ()

  (* Detect call-graph cycles reachable from any function. *)
  let check_recursion errs (d : design) =
    let color = Hashtbl.create 16 in
    (* 0 = white, 1 = grey, 2 = black *)
    let rec visit name =
      match Hashtbl.find_opt color name with
      | Some 1 -> err errs ("@" ^ name) "recursive call cycle through @%s" name
      | Some 2 -> ()
      | _ -> (
          Hashtbl.replace color name 1;
          (match find_func d name with
          | None -> ()
          | Some f ->
              List.iter
                (function Call { callee; _ } -> visit callee | _ -> ())
                f.fn_body);
          Hashtbl.replace color name 2)
    in
    List.iter (fun f -> visit f.fn_name) d.d_funcs

  let check_manage errs (d : design) =
    dup_names errs "manage" "memory object" (List.map (fun m -> m.mo_name) d.d_mems);
    dup_names errs "manage" "stream object"
      (List.map (fun s -> s.so_name) d.d_streams);
    dup_names errs "manage" "global" (List.map (fun g -> g.g_name) d.d_globals);
    dup_names errs "manage" "port"
      (List.map (fun p -> p.pt_fun ^ "." ^ p.pt_port) d.d_ports);
    List.iter
      (fun m ->
        if m.mo_size <= 0 then
          err errs ("%" ^ m.mo_name) "memory object size must be positive";
        if not (Ty.valid m.mo_ty) then
          err errs ("%" ^ m.mo_name) "invalid element type %s"
            (Ty.to_string m.mo_ty))
      d.d_mems;
    List.iter
      (fun s ->
        (match find_mem d s.so_mem with
        | None ->
            err errs ("%" ^ s.so_name) "stream references unknown memory object %%%s"
              s.so_mem
        | Some _ -> ());
        match s.so_pattern with
        | Strided k when k <= 0 ->
            err errs ("%" ^ s.so_name) "stride must be positive, got %d" k
        | _ -> ())
      d.d_streams;
    List.iter
      (fun p ->
        let loc = Printf.sprintf "@%s.%s" p.pt_fun p.pt_port in
        (match find_stream d p.pt_stream with
        | None -> err errs loc "port references unknown stream object %%%s" p.pt_stream
        | Some s ->
            if s.so_dir <> p.pt_dir then
              err errs loc "port direction %s conflicts with stream %%%s (%s)"
                (dir_to_string p.pt_dir) s.so_name (dir_to_string s.so_dir);
            (match find_mem d s.so_mem with
            | Some m when not (Ty.equal m.mo_ty p.pt_ty) ->
                err errs loc "port type %s does not match memory %%%s element type %s"
                  (Ty.to_string p.pt_ty) m.mo_name (Ty.to_string m.mo_ty)
            | _ -> ()));
        match find_func d p.pt_fun with
        | None -> err errs loc "port on unknown function @%s" p.pt_fun
        | Some f -> (
            match List.assoc_opt p.pt_port f.fn_params with
            | None ->
                err errs loc "function @%s has no parameter %%%s" p.pt_fun p.pt_port
            | Some t ->
                if not (Ty.equal t p.pt_ty) then
                  err errs loc "port type %s does not match parameter type %s"
                    (Ty.to_string p.pt_ty) (Ty.to_string t)))
      d.d_ports

  let check (d : design) : error list =
    let errs = ref [] in
    dup_names errs "design" "function" (List.map (fun f -> f.fn_name) d.d_funcs);
    check_manage errs d;
    let globals =
      List.fold_left (fun m g -> SM.add g.g_name g.g_ty m) SM.empty d.d_globals
    in
    (match find_func d "main" with
    | None -> err errs "design" "no @main function"
    | Some _ -> ());
    List.iter (fun f -> check_func errs d globals f) d.d_funcs;
    check_recursion errs d;
    List.rev !errs
end

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

(** [check d] validates [d], returning all errors found (empty on
    success). On the fast path (the default) this is the indexed
    one-pass validator: errors come back in source order with identical
    (loc, msg) pairs deduplicated. Under [--no-fast-ir]
    ({!Fastpath.enabled} off) the original multi-pass reference runs
    instead — same defects, without the ordering/dedup guarantees. *)
let check (d : design) : error list =
  Tytra_telemetry.Span.with_ ~name:"ir.validate"
    ~attrs:[ ("design", Tytra_telemetry.Span.Str d.d_name) ]
  @@ fun () ->
  if Fastpath.enabled () then check_indexed d else Reference.check d

(** [check_reference d] — the original multi-pass validator, kept for
    differential testing of the fast path ([--no-fast-ir]). Reports the
    same defects as {!check} but neither orders nor deduplicates them. *)
let check_reference (d : design) : error list =
  Tytra_telemetry.Span.with_ ~name:"ir.validate"
    ~attrs:
      [ ("design", Tytra_telemetry.Span.Str d.d_name);
        ("impl", Tytra_telemetry.Span.Str "reference") ]
  @@ fun () -> Reference.check d

(** [check_delta ~trusted d] — validate [d] skipping the per-instruction
    body walk of the functions named in [trusted] (their bodies are
    shared with an already-validated template design, physically or
    structurally). Everything else — Manage-IR, wiring functions, call
    sites into trusted functions, the call graph — is checked in full.
    Counts one [ir.validate.fast_hits] per skipped body. *)
let check_delta ~(trusted : string list) (d : design) : error list =
  Tytra_telemetry.Span.with_ ~name:"ir.validate"
    ~attrs:
      [ ("design", Tytra_telemetry.Span.Str d.d_name);
        ("delta", Tytra_telemetry.Span.Bool true) ]
  @@ fun () ->
  let trusted_set = SS.of_list trusted in
  let skipped = ref 0 in
  let skip_body (f : func) =
    let s = SS.mem f.fn_name trusted_set in
    if s then incr skipped;
    s
  in
  let errors = check_indexed ~skip_body d in
  if !skipped > 0 then
    Tytra_telemetry.Metrics.add "ir.validate.fast_hits"
      (float_of_int !skipped);
  errors

(** [check_exn d] raises [Invalid_argument] with a report if [d] is
    invalid; otherwise returns [d] (handy for pipelining). *)
let check_exn (d : design) : design =
  match check d with
  | [] -> d
  | errs ->
      invalid_arg
        (Printf.sprintf "invalid TyTra-IR design %s:\n%s" d.d_name
           (String.concat "\n" (List.map error_to_string errs)))

let is_valid d = check d = []
