(** Static validation of TyTra-IR designs.

    The TyTra-IR is strongly and statically typed and uses static single
    assignment (paper §IV). [check] enforces:

    - name uniqueness (memory objects, streams, ports, globals, functions);
    - referential integrity (streams → memory objects, ports → streams and
      function parameters, calls → functions);
    - SSA discipline: every local is assigned at most once per function and
      defined before use;
    - type correctness of every instruction, including immediate ranges;
    - parallelism-kind well-formedness: [par] bodies contain only calls,
      [comb] bodies contain only combinatorial assignments, call-site kinds
      match callee declarations;
    - an acyclic call graph rooted at [@main]. *)

open Ast

type error = { loc : string; msg : string }

let pp_error fmt e = Format.fprintf fmt "%s: %s" e.loc e.msg
let error_to_string e = Format.asprintf "%a" pp_error e

let err errs loc fmt = Format.kasprintf (fun msg -> errs := { loc; msg } :: !errs) fmt

module SS = Set.Make (String)
module SM = Map.Make (String)

let dup_names errs loc what names =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then err errs loc "duplicate %s %S" what n
      else Hashtbl.add seen n ())
    names

(* Type of the value produced by an assignment with declared operand type
   [ty]. Comparisons produce Bool. *)
let result_ty op ty =
  match op with
  | CmpEq | CmpNe | CmpLt | CmpLe | CmpGt | CmpGe -> Ty.Bool
  | _ -> ty

let check_operand errs loc ~globals ~env ~expect (o : operand) =
  match o with
  | Var v -> (
      match SM.find_opt v env with
      | None -> err errs loc "use of undefined local %%%s" v
      | Some t ->
          if not (Ty.equal t expect) then
            err errs loc "operand %%%s has type %s, expected %s" v
              (Ty.to_string t) (Ty.to_string expect))
  | Glob g -> (
      match SM.find_opt g globals with
      | None -> err errs loc "use of undeclared global @%s" g
      | Some t ->
          if not (Ty.equal t expect) then
            err errs loc "global @%s has type %s, expected %s" g
              (Ty.to_string t) (Ty.to_string expect))
  | Imm i -> (
      if Ty.is_float expect then
        err errs loc "integer immediate %Ld used at float type %s" i
          (Ty.to_string expect)
      else
        match Ty.int_range expect with
        | Some (lo, hi) when Int64.compare i lo < 0 || Int64.compare i hi > 0 ->
            err errs loc "immediate %Ld out of range for %s" i
              (Ty.to_string expect)
        | _ -> ())
  | ImmF f ->
      if not (Ty.is_float expect) then
        err errs loc "float immediate %g used at integer type %s" f
          (Ty.to_string expect)

let check_func errs (d : design) (globals : Ty.t SM.t) (f : func) =
  let loc = "@" ^ f.fn_name in
  dup_names errs loc "parameter" (List.map fst f.fn_params);
  List.iter
    (fun (n, t) ->
      if not (Ty.valid t) then
        err errs loc "parameter %%%s has invalid type %s" n (Ty.to_string t))
    f.fn_params;
  let env0 =
    List.fold_left (fun m (n, t) -> SM.add n t m) SM.empty f.fn_params
  in
  let param_set = SS.of_list (List.map fst f.fn_params) in
  let _ =
    List.fold_left
      (fun env i ->
        match i with
        | Offset { dst; ty; src; off = _ } ->
            if f.fn_kind = Comb then
              err errs loc "offset %%%s not allowed in comb function" dst;
            if SM.mem dst env then err errs loc "local %%%s reassigned (SSA)" dst;
            (match src with
            | Var v when SS.mem v param_set -> ()
            | Var v -> err errs loc "offset source %%%s must be a stream parameter" v
            | _ -> err errs loc "offset source must be a stream parameter");
            check_operand errs loc ~globals ~env ~expect:ty src;
            SM.add dst ty env
        | Assign { dst; ty; op; args } ->
            if not (Ty.valid ty) then
              err errs loc "instruction at invalid type %s" (Ty.to_string ty);
            if List.length args <> arity op then
              err errs loc "%s expects %d operands, got %d" (op_to_string op)
                (arity op) (List.length args);
            (match op, ty with
            | (And | Or | Xor | Not | Shl | Shr | Rem), t when Ty.is_float t ->
                err errs loc "bitwise/modular op %s at float type %s"
                  (op_to_string op) (Ty.to_string t)
            | _ -> ());
            (match op, args with
            | Select, [ c; a; b ] ->
                check_operand errs loc ~globals ~env ~expect:Ty.Bool c;
                check_operand errs loc ~globals ~env ~expect:ty a;
                check_operand errs loc ~globals ~env ~expect:ty b
            | _ ->
                List.iter (check_operand errs loc ~globals ~env ~expect:ty) args);
            let rty = result_ty op ty in
            (match dst with
            | Dlocal n ->
                if SM.mem n env then err errs loc "local %%%s reassigned (SSA)" n;
                SM.add n rty env
            | Dglobal g -> (
                match SM.find_opt g globals with
                | None ->
                    err errs loc "assignment to undeclared global @%s" g;
                    env
                | Some t ->
                    if not (Ty.equal t rty) then
                      err errs loc
                        "reduction into @%s: type %s does not match global %s" g
                        (Ty.to_string rty) (Ty.to_string t);
                    env))
        | Call { callee; args; kind; rets } -> (
            (if f.fn_kind = Comb then
               err errs loc "call not allowed in comb function");
            match find_func d callee with
            | None ->
                err errs loc "call to undefined function @%s" callee;
                env
            | Some g ->
                if g.fn_kind <> kind then
                  err errs loc
                    "call-site kind %s does not match @%s's declared kind %s"
                    (kind_to_string kind) callee (kind_to_string g.fn_kind);
                if List.length args <> List.length g.fn_params then
                  err errs loc "call to @%s with %d arguments, expected %d"
                    callee (List.length args) (List.length g.fn_params)
                else
                  List.iter2
                    (fun a (_, t) ->
                      check_operand errs loc ~globals ~env ~expect:t a)
                    args g.fn_params;
                (* returning calls: bind the callee's out_* streams *)
                let outs = func_outputs g in
                if List.length rets > List.length outs then begin
                  err errs loc
                    "call to @%s binds %d results but the callee streams %d \
                     outputs"
                    callee (List.length rets) (List.length outs);
                  env
                end
                else
                  List.fold_left2
                    (fun env r (_, rty) ->
                      if SM.mem r env then begin
                        err errs loc "local %%%s reassigned (SSA)" r;
                        env
                      end
                      else SM.add r rty env)
                    env rets
                    (List.filteri (fun i _ -> i < List.length rets) outs)))
      env0 f.fn_body
  in
  (* kind-specific body shape *)
  (match f.fn_kind with
  | Par ->
      List.iter
        (function
          | Call _ -> ()
          | i ->
              err errs loc "par function body must contain only calls, found: %s"
                (Pprint.instr_to_string i))
        f.fn_body
  | Comb ->
      List.iter
        (function
          | Assign _ -> ()
          | i ->
              err errs loc
                "comb function body must be pure combinatorial assignments, \
                 found: %s"
                (Pprint.instr_to_string i))
        f.fn_body
  | Pipe | Seq -> ());
  ()

(* Detect call-graph cycles reachable from any function. *)
let check_recursion errs (d : design) =
  let color = Hashtbl.create 16 in
  (* 0 = white, 1 = grey, 2 = black *)
  let rec visit name =
    match Hashtbl.find_opt color name with
    | Some 1 -> err errs ("@" ^ name) "recursive call cycle through @%s" name
    | Some 2 -> ()
    | _ -> (
        Hashtbl.replace color name 1;
        (match find_func d name with
        | None -> ()
        | Some f ->
            List.iter
              (function Call { callee; _ } -> visit callee | _ -> ())
              f.fn_body);
        Hashtbl.replace color name 2)
  in
  List.iter (fun f -> visit f.fn_name) d.d_funcs

let check_manage errs (d : design) =
  dup_names errs "manage" "memory object" (List.map (fun m -> m.mo_name) d.d_mems);
  dup_names errs "manage" "stream object"
    (List.map (fun s -> s.so_name) d.d_streams);
  dup_names errs "manage" "global" (List.map (fun g -> g.g_name) d.d_globals);
  dup_names errs "manage" "port"
    (List.map (fun p -> p.pt_fun ^ "." ^ p.pt_port) d.d_ports);
  List.iter
    (fun m ->
      if m.mo_size <= 0 then
        err errs ("%" ^ m.mo_name) "memory object size must be positive";
      if not (Ty.valid m.mo_ty) then
        err errs ("%" ^ m.mo_name) "invalid element type %s"
          (Ty.to_string m.mo_ty))
    d.d_mems;
  List.iter
    (fun s ->
      (match find_mem d s.so_mem with
      | None ->
          err errs ("%" ^ s.so_name) "stream references unknown memory object %%%s"
            s.so_mem
      | Some _ -> ());
      match s.so_pattern with
      | Strided k when k <= 0 ->
          err errs ("%" ^ s.so_name) "stride must be positive, got %d" k
      | _ -> ())
    d.d_streams;
  List.iter
    (fun p ->
      let loc = Printf.sprintf "@%s.%s" p.pt_fun p.pt_port in
      (match find_stream d p.pt_stream with
      | None -> err errs loc "port references unknown stream object %%%s" p.pt_stream
      | Some s ->
          if s.so_dir <> p.pt_dir then
            err errs loc "port direction %s conflicts with stream %%%s (%s)"
              (dir_to_string p.pt_dir) s.so_name (dir_to_string s.so_dir);
          (match find_mem d s.so_mem with
          | Some m when not (Ty.equal m.mo_ty p.pt_ty) ->
              err errs loc "port type %s does not match memory %%%s element type %s"
                (Ty.to_string p.pt_ty) m.mo_name (Ty.to_string m.mo_ty)
          | _ -> ()));
      match find_func d p.pt_fun with
      | None -> err errs loc "port on unknown function @%s" p.pt_fun
      | Some f -> (
          match List.assoc_opt p.pt_port f.fn_params with
          | None ->
              err errs loc "function @%s has no parameter %%%s" p.pt_fun p.pt_port
          | Some t ->
              if not (Ty.equal t p.pt_ty) then
                err errs loc "port type %s does not match parameter type %s"
                  (Ty.to_string p.pt_ty) (Ty.to_string t)))
    d.d_ports

(** [check d] validates [d], returning all errors found (empty on
    success). *)
let check (d : design) : error list =
  Tytra_telemetry.Span.with_ ~name:"ir.validate"
    ~attrs:[ ("design", Tytra_telemetry.Span.Str d.d_name) ]
  @@ fun () ->
  let errs = ref [] in
  dup_names errs "design" "function" (List.map (fun f -> f.fn_name) d.d_funcs);
  check_manage errs d;
  let globals =
    List.fold_left (fun m g -> SM.add g.g_name g.g_ty m) SM.empty d.d_globals
  in
  (match find_func d "main" with
  | None -> err errs "design" "no @main function"
  | Some _ -> ());
  List.iter (fun f -> check_func errs d globals f) d.d_funcs;
  check_recursion errs d;
  List.rev !errs

(** [check_exn d] raises [Invalid_argument] with a report if [d] is
    invalid; otherwise returns [d] (handy for pipelining). *)
let check_exn (d : design) : design =
  match check d with
  | [] -> d
  | errs ->
      invalid_arg
        (Printf.sprintf "invalid TyTra-IR design %s:\n%s" d.d_name
           (String.concat "\n" (List.map error_to_string errs)))

let is_valid d = check d = []
