(** IR analyses deriving the kernel- and variant-dependent parameters of
    the throughput cost model (paper Table I).

    All of [NGS], [NWPT], [Noff], [NI], [NTO], [KNL], [DV] and the
    pipeline-depth input to [KPD] are obtained by "Parsing IR", exactly as
    the paper's Table I prescribes.

    Internally every analysis runs over a {!Symtab} index: [params]
    builds the index and classifies the configuration tree once, then
    derives all parameters with O(1) lookups (DESIGN.md §10). The
    design-based entry points below each build a fresh index and are kept
    for callers that analyse a single function in isolation. *)

open Ast

(** Parameters extracted from a design (paper Table I, the rows whose
    evaluation method is "Parsing IR"). *)
type params = {
  ngs : int;    (** [NGS] — global size: work-items in the NDRange *)
  nwpt : int;   (** [NWPT] — words per tuple per work-item *)
  noff : int;   (** [Noff] — maximum offset in any stream *)
  ni : int;     (** [NI] — datapath instructions per processing element *)
  nto : int;    (** [NTO] — cycles per instruction (1 for pipelined PEs) *)
  knl : int;    (** [KNL] — parallel kernel lanes *)
  dv : int;     (** [DV] — degree of vectorization per lane *)
  kpd : int;    (** [KPD] — kernel pipeline depth in cycles *)
  in_words : int;   (** total input words per work-item (subset of NWPT) *)
  out_words : int;  (** total output words per work-item *)
}
[@@deriving show { with_path = false }]

module SM = Map.Make (String)

(** {2 Pipeline depth} *)

(* [pe_depth_sym sy f] — longest latency path through [f]'s SSA dataflow
   graph, each functional unit contributing {!Opinfo.latency} stages.
   Stream offsets contribute no datapath stages (their buffering is
   accounted separately by the [Noff / (GPB·rho)] term of the EKIT
   expressions). *)
let pe_depth_sym (sy : Symtab.t) (f : func) : int =
  let rec depth_of (f : func) (env : int SM.t) : int * int SM.t =
    (* env maps names to the cycle at which their value is available *)
    List.fold_left
      (fun (maxd, env) i ->
        match i with
        | Offset { dst; _ } -> (maxd, SM.add dst 0 env)
        | Assign { dst; ty; op; args } ->
            let ready o =
              match o with
              | Var v -> ( match SM.find_opt v env with Some t -> t | None -> 0)
              | Glob _ | Imm _ | ImmF _ -> 0
            in
            let start = List.fold_left (fun a o -> max a (ready o)) 0 args in
            let fin = start + Opinfo.latency op ty in
            let env =
              match dst with
              | Dlocal n -> SM.add n fin env
              | Dglobal _ -> env
            in
            (max maxd fin, env)
        | Call { callee; _ } -> (
            match Symtab.find_func sy callee with
            | Some g when g.fn_kind = Comb || g.fn_kind = Pipe ->
                (* a called sub-pipeline or combinatorial block adds its
                   own depth in series *)
                let sub, _ = depth_of g SM.empty in
                let sub = if g.fn_kind = Comb then max 1 sub else sub in
                (maxd + sub, env)
            | _ -> (maxd, env)))
      (0, env) f.fn_body
  in
  fst (depth_of f SM.empty)

(** [pe_depth d f] is the pipeline depth of a single processing element
    [f] of design [d]. *)
let pe_depth (d : design) (f : func) : int =
  pe_depth_sym (Symtab.of_design d) f

(* [kpd_sym sy summary] — kernel pipeline depth: the depth of one lane
   (for coarse-grained pipelines, the serial composition of the lane's
   sub-pipelines). All lanes are structurally identical in generated
   variants; we take the max for safety. *)
let kpd_sym (sy : Symtab.t) (summary : Config_tree.summary) : int =
  match summary.cs_pes with
  | [] -> (
      (* sequential config: depth of main itself *)
      match Symtab.find_func sy "main" with
      | Some f -> pe_depth_sym sy f
      | None -> 0)
  | pes ->
      (* depth of one lane = sum over that lane's serial PEs; as variants
         replicate a single lane structure, group PEs per lane *)
      let lanes = max 1 (summary.cs_knl * summary.cs_dv) in
      let per_lane = max 1 (List.length pes / lanes) in
      let pe_depths =
        List.map (fun n -> pe_depth_sym sy (Symtab.find_func_exn sy n)) pes
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: tl -> x :: take (n - 1) tl
      in
      List.fold_left ( + ) 0 (take per_lane pe_depths)

(** [kpd d] — kernel pipeline depth of design [d]. *)
let kpd (d : design) : int =
  let sy = Symtab.of_design d in
  kpd_sym sy (Config_tree.classify_sym sy)

(** {2 Instruction counts} *)

(* Number of datapath instructions in one processing element, counting
   called [comb]/sub-[pipe] bodies once per call site. [Mov] is free
   (wiring) and not counted. *)
let rec ni_sym (sy : Symtab.t) (f : func) : int =
  List.fold_left
    (fun acc i ->
      match i with
      | Assign { op = Mov; _ } -> acc
      | Assign _ -> acc + 1
      | Offset _ -> acc
      | Call { callee; _ } -> (
          match Symtab.find_func sy callee with
          | Some g -> acc + ni_sym sy g
          | None -> acc))
    0 f.fn_body

(** Number of datapath instructions in one processing element of [d]. *)
let ni_of_func (d : design) (f : func) : int = ni_sym (Symtab.of_design d) f

(* Maximum absolute stream offset in one PE (drives the offset-buffer
   fill time, the [Noff] term). *)
let rec noff_sym (sy : Symtab.t) (f : func) : int =
  List.fold_left
    (fun acc i ->
      match i with
      | Offset { off; _ } -> max acc (abs off)
      | Call { callee; _ } -> (
          match Symtab.find_func sy callee with
          | Some g -> max acc (noff_sym sy g)
          | None -> acc)
      | _ -> acc)
    0 f.fn_body

(** Maximum absolute stream offset in one PE of [d]. *)
let noff_of_func (d : design) (f : func) : int =
  noff_sym (Symtab.of_design d) f

(** {2 Stream and work-item accounting} *)

(** Input/output ports of the design's entry function, resolved to their
    backing memory objects. *)
let io_ports (d : design) =
  let ports = d.d_ports in
  let ins = List.filter (fun p -> p.pt_dir = IStream) ports in
  let outs = List.filter (fun p -> p.pt_dir = OStream) ports in
  (ins, outs)

(* Size in elements of the memory object backing port [p]. *)
let port_mem_size_sym (sy : Symtab.t) (p : port) =
  match Symtab.find_stream sy p.pt_stream with
  | None -> 0
  | Some s -> (
      match Symtab.find_mem sy s.so_mem with Some m -> m.mo_size | None -> 0)

let port_mem_size (d : design) (p : port) =
  port_mem_size_sym (Symtab.of_design d) p

(* [ngs_sym sy summary] — global size: the total number of work-items in
   the index-space. Each lane processes the elements of its own input
   streams; the global size is the per-lane element count summed over
   lanes. Per-lane element count is the largest backing-memory size among
   that lane's input streams (all inputs of a tuple have equal length in
   well-formed designs). *)
let ngs_sym (sy : Symtab.t) (summary : Config_tree.summary) : int =
  let ins, outs = io_ports (Symtab.design sy) in
  let lanes = max 1 (summary.cs_knl * summary.cs_dv) in
  let relevant = if ins <> [] then ins else outs in
  if relevant = [] then 0
  else begin
    (* group ports by lane: ports are declared lane-major in generated
       variants; conservatively, take the max size and multiply by lanes
       when each lane has its own port set, else the single port size. *)
    let per_lane_inputs = max 1 (List.length relevant / lanes) in
    if List.length relevant >= lanes && lanes > 1 then begin
      (* distinct streams per lane: sum one representative per lane *)
      let sizes = List.map (port_mem_size_sym sy) relevant in
      let sorted = List.sort compare sizes in
      let _ = per_lane_inputs in
      (* sum of the largest [lanes] sizes approximates Σ elems/lane *)
      let rec last_n n l =
        let len = List.length l in
        if len <= n then l else last_n n (List.tl l)
      in
      List.fold_left ( + ) 0 (last_n lanes sorted)
    end
    else
      List.fold_left (fun acc p -> max acc (port_mem_size_sym sy p)) 0 relevant
  end

(** [ngs d] — global size of [d]'s index-space. *)
let ngs (d : design) : int =
  let sy = Symtab.of_design d in
  ngs_sym sy (Config_tree.classify_sym sy)

(* [nwpt_sym d summary] — words per tuple per work-item: the number of
   distinct stream words each work-item consumes plus produces. Offsets
   re-use their base stream's words (served from on-chip offset buffers),
   so only ports count. *)
let nwpt_sym (d : design) (summary : Config_tree.summary) : int * int =
  let ins, outs = io_ports d in
  let lanes = max 1 (summary.cs_knl * summary.cs_dv) in
  let per_lane n = if n = 0 then 0 else max 1 (n / lanes) in
  (per_lane (List.length ins), per_lane (List.length outs))

(** [nwpt d] — input/output words per tuple per work-item. *)
let nwpt (d : design) : int * int =
  nwpt_sym d (Config_tree.classify d)

(** [params d] — all IR-derived Table I parameters for design [d].
    One index build, one configuration-tree classification, one pass per
    parameter family. *)
let params (d : design) : params =
  Tytra_telemetry.Span.with_ ~name:"ir.analysis"
    ~attrs:[ ("design", Tytra_telemetry.Span.Str d.d_name) ]
  @@ fun () ->
  let sy = Symtab.of_design d in
  let summary = Config_tree.classify_sym sy in
  let pes = summary.cs_pes in
  let pe_funcs = List.map (Symtab.find_func_exn sy) pes in
  let ni =
    match pe_funcs with
    | [] -> (
        match Symtab.find_func sy "main" with
        | Some f -> ni_sym sy f
        | None -> 0)
    | fs ->
        (* instructions per lane: coarse-grained lanes are a serial
           composition of PEs, so one lane's NI sums its stage PEs *)
        let lanes = max 1 (summary.Config_tree.cs_knl * summary.Config_tree.cs_dv) in
        let per_lane = max 1 (List.length fs / lanes) in
        let rec take n = function
          | [] -> []
          | _ when n = 0 -> []
          | x :: tl -> x :: take (n - 1) tl
        in
        List.fold_left (fun acc f -> acc + ni_sym sy f) 0 (take per_lane fs)
  in
  let noff =
    List.fold_left (fun acc f -> max acc (noff_sym sy f)) 0
      (match pe_funcs with
      | [] -> Option.to_list (Symtab.find_func sy "main")
      | l -> l)
  in
  let nto =
    match summary.cs_class with
    | Config_tree.C4 -> max 1 ni (* sequential: NI cycles per work-item *)
    | _ -> 1 (* pipelined: one work-item per cycle per lane in steady state *)
  in
  let in_w, out_w = nwpt_sym d summary in
  {
    ngs = ngs_sym sy summary;
    nwpt = in_w + out_w;
    noff;
    ni;
    nto;
    knl = summary.cs_knl;
    dv = summary.cs_dv;
    kpd = kpd_sym sy summary;
    in_words = in_w;
    out_words = out_w;
  }

(** Dominant access pattern among the design's global-memory streams (used
    to pick the sustained-bandwidth scaling factor). Returns the "worst"
    pattern present: random ≺ strided ≺ contiguous. *)
let dominant_pattern (d : design) : pattern =
  List.fold_left
    (fun acc s ->
      match (acc, s.so_pattern) with
      | Random, _ | _, Random -> Random
      | Strided a, Strided b -> Strided (max a b)
      | Strided a, _ | _, Strided a -> Strided a
      | Cont, Cont -> Cont)
    Cont d.d_streams

(** Total bytes moved between global memory and the device per execution
    of the whole index space (both directions). *)
let bytes_per_ndrange (d : design) : int =
  let sy = Symtab.of_design d in
  List.fold_left
    (fun acc p ->
      let words = port_mem_size_sym sy p in
      let bytes_per_word = (Ty.width p.pt_ty + 7) / 8 in
      acc + (words * bytes_per_word))
    0 d.d_ports
