(** Recursive-descent parser for the textual TyTra-IR ([.tirl]).

    Grammar (EBNF; [;]-comments handled by the lexer):
    {v
    design     ::= decl*
    decl       ::= memdecl | streamdecl | portdecl | globaldecl | fundef
    memdecl    ::= LOCAL '=' 'memobj' space ty 'size' INT
    space      ::= 'private' | 'global' | 'local' | 'constant'
    streamdecl ::= LOCAL '=' 'stream' dir LOCAL 'pattern' pattern
    dir        ::= 'istream' | 'ostream'
    pattern    ::= 'cont' | 'random' | 'strided' INT
    portdecl   ::= GLOBAL(fn.port) '=' 'addrspace' '(' INT ')' ty
                     meta* ( ',' meta* )*
      -- metadata: !istream/!ostream, !cont/!random/!strided INT,
         !INT (base offset), !streamobj-name; quoted forms !"CONT" accepted
    globaldecl ::= GLOBAL '=' 'global' ty 'init' INT
    fundef     ::= 'define' 'void' GLOBAL '(' params? ')' kind
                     '{' instr* '}'
    params     ::= ty LOCAL ( ',' ty LOCAL )*
    kind       ::= 'pipe' | 'par' | 'seq' | 'comb'
    instr      ::= LOCAL '=' 'offset' ty operand ',' INT
                 | dest '=' OP ty operand ( ',' operand )*
                 | rets? 'call' GLOBAL '(' operands? ')' kind
    rets       ::= LOCAL ( ',' LOCAL )* '='
      -- returning calls bind the callee's out_* streams positionally:
         the peer-to-peer plumbing of coarse-grained pipelines (Fig 7)
    dest       ::= LOCAL | GLOBAL
    operand    ::= LOCAL | GLOBAL | INT | FLOAT
    v} *)

exception Parse_error of string * int

let err lx msg = raise (Parse_error (msg, Lexer.line lx))

let expect lx tok =
  let t = Lexer.next lx in
  if t <> tok then
    err lx
      (Printf.sprintf "expected %s but found %s" (Lexer.token_to_string tok)
         (Lexer.token_to_string t))

let expect_ident lx =
  match Lexer.next lx with
  | Lexer.TIdent s -> s
  | t -> err lx ("expected identifier, found " ^ Lexer.token_to_string t)

let expect_keyword lx kw =
  let s = expect_ident lx in
  if s <> kw then err lx (Printf.sprintf "expected %S, found %S" kw s)

let expect_local lx =
  match Lexer.next lx with
  | Lexer.TLocal s -> s
  | t -> err lx ("expected %name, found " ^ Lexer.token_to_string t)

let expect_global lx =
  match Lexer.next lx with
  | Lexer.TGlobal s -> s
  | t -> err lx ("expected @name, found " ^ Lexer.token_to_string t)

let expect_int lx =
  match Lexer.next lx with
  | Lexer.TInt i -> i
  | t -> err lx ("expected integer, found " ^ Lexer.token_to_string t)

let parse_ty lx =
  let s = expect_ident lx in
  match Ty.of_string s with Ok t -> t | Error e -> err lx e

let parse_kind lx =
  match expect_ident lx with
  | "pipe" -> Ast.Pipe
  | "par" -> Ast.Par
  | "seq" -> Ast.Seq
  | "comb" -> Ast.Comb
  | s -> err lx (Printf.sprintf "expected parallelism kind, found %S" s)

let parse_space lx =
  match expect_ident lx with
  | "private" -> Ast.Private
  | "global" -> Ast.Global
  | "local" -> Ast.Local
  | "constant" -> Ast.Constant
  | s -> err lx (Printf.sprintf "expected address space, found %S" s)

let parse_dir_of_string lx = function
  | "istream" -> Ast.IStream
  | "ostream" -> Ast.OStream
  | s -> err lx (Printf.sprintf "expected istream/ostream, found %S" s)

let parse_pattern lx =
  match expect_ident lx with
  | "cont" -> Ast.Cont
  | "random" -> Ast.Random
  | "strided" -> Ast.Strided (expect_int lx)
  | s -> err lx (Printf.sprintf "expected access pattern, found %S" s)

let parse_operand lx : Ast.operand =
  match Lexer.next lx with
  | Lexer.TLocal s -> Ast.Var s
  | Lexer.TGlobal s -> Ast.Glob s
  | Lexer.TInt i -> Ast.Imm (Int64.of_int i)
  | Lexer.TFloat f -> Ast.ImmF f
  | t -> err lx ("expected operand, found " ^ Lexer.token_to_string t)

(* memdecl, after "%name =" and keyword [memobj] consumed *)
let parse_memdecl lx name : Ast.mem_obj =
  let space = parse_space lx in
  let ty = parse_ty lx in
  expect_keyword lx "size";
  let size = expect_int lx in
  if size <= 0 then err lx "memory object size must be positive";
  { mo_name = name; mo_space = space; mo_ty = ty; mo_size = size }

(* streamdecl, after "%name =" and keyword [stream] consumed *)
let parse_streamdecl lx name : Ast.stream_obj =
  let dir = parse_dir_of_string lx (expect_ident lx) in
  let mem = expect_local lx in
  expect_keyword lx "pattern";
  let pat = parse_pattern lx in
  { so_name = name; so_dir = dir; so_mem = mem; so_pattern = pat }

(* Port metadata: a sequence of !-items, commas optional. *)
let parse_port lx qualified : Ast.port =
  let fn, port =
    match String.index_opt qualified '.' with
    | Some i ->
        ( String.sub qualified 0 i,
          String.sub qualified (i + 1) (String.length qualified - i - 1) )
    | None -> err lx (Printf.sprintf "port name %S must be @fn.port" qualified)
  in
  expect_keyword lx "addrspace";
  expect lx Lexer.TLparen;
  let lvl = expect_int lx in
  let space =
    match Ast.space_of_level lvl with
    | Some s -> s
    | None -> err lx (Printf.sprintf "invalid address-space level %d" lvl)
  in
  expect lx Lexer.TRparen;
  let ty = parse_ty lx in
  let dir = ref None and pat = ref None and off = ref None and str = ref None in
  let set r v what =
    match !r with
    | None -> r := Some v
    | Some _ -> err lx ("duplicate " ^ what ^ " metadata on port")
  in
  let rec meta () =
    match Lexer.peek lx with
    | Lexer.TComma -> ignore (Lexer.next lx); meta ()
    | Lexer.TBang ->
        ignore (Lexer.next lx);
        (match Lexer.next lx with
        | Lexer.TInt i -> set off i "base-offset"
        | Lexer.TString s | Lexer.TIdent s -> (
            match String.lowercase_ascii s with
            | "istream" -> set dir Ast.IStream "direction"
            | "ostream" -> set dir Ast.OStream "direction"
            | "cont" -> set pat Ast.Cont "pattern"
            | "random" -> set pat Ast.Random "pattern"
            | "strided" ->
                (* stride follows as !INT or INT *)
                let s =
                  match Lexer.peek lx with
                  | Lexer.TBang ->
                      ignore (Lexer.next lx);
                      expect_int lx
                  | Lexer.TInt _ -> expect_int lx
                  | _ -> err lx "strided pattern needs a stride"
                in
                set pat (Ast.Strided s) "pattern"
            | _ -> set str s "stream")
        | t -> err lx ("bad port metadata " ^ Lexer.token_to_string t));
        meta ()
    | _ -> ()
  in
  meta ();
  let req what = function Some v -> v | None -> err lx ("port missing " ^ what) in
  {
    pt_fun = fn;
    pt_port = port;
    pt_space = space;
    pt_ty = ty;
    pt_dir = req "direction (!istream/!ostream)" !dir;
    pt_pattern = (match !pat with Some p -> p | None -> Ast.Cont);
    pt_base_off = (match !off with Some o -> o | None -> 0);
    pt_stream = req "stream object name" !str;
  }

(* globaldecl, after "@name =" and keyword [global] consumed *)
let parse_globaldecl lx name : Ast.global =
  let ty = parse_ty lx in
  expect_keyword lx "init";
  let init = expect_int lx in
  { g_name = name; g_ty = ty; g_init = Int64.of_int init }

let parse_params lx =
  expect lx Lexer.TLparen;
  if Lexer.peek lx = Lexer.TRparen then (ignore (Lexer.next lx); [])
  else begin
    let rec go acc =
      let ty = parse_ty lx in
      let name = expect_local lx in
      match Lexer.next lx with
      | Lexer.TComma -> go ((name, ty) :: acc)
      | Lexer.TRparen -> List.rev ((name, ty) :: acc)
      | t -> err lx ("expected , or ) in parameter list, found "
                     ^ Lexer.token_to_string t)
    in
    go []
  end

let parse_call ?(rets = []) lx : Ast.instr =
  let callee = expect_global lx in
  expect lx Lexer.TLparen;
  let args =
    if Lexer.peek lx = Lexer.TRparen then (ignore (Lexer.next lx); [])
    else begin
      let rec go acc =
        let a = parse_operand lx in
        match Lexer.next lx with
        | Lexer.TComma -> go (a :: acc)
        | Lexer.TRparen -> List.rev (a :: acc)
        | t -> err lx ("expected , or ) in call arguments, found "
                       ^ Lexer.token_to_string t)
      in
      go []
    end
  in
  let kind = parse_kind lx in
  Ast.Call { callee; args; kind; rets }

let parse_assign lx (dst : Ast.dest) : Ast.instr =
  let opname = expect_ident lx in
  if opname = "offset" then begin
    let ty = parse_ty lx in
    let src = parse_operand lx in
    expect lx Lexer.TComma;
    let off = expect_int lx in
    match dst with
    | Ast.Dlocal d -> Ast.Offset { dst = d; ty; src; off }
    | Ast.Dglobal _ -> err lx "offset destination must be a local"
  end
  else
    match Ast.op_of_string opname with
    | None -> err lx (Printf.sprintf "unknown operation %S" opname)
    | Some op ->
        let ty = parse_ty lx in
        let rec operands acc =
          let a = parse_operand lx in
          if Lexer.peek lx = Lexer.TComma then begin
            ignore (Lexer.next lx);
            operands (a :: acc)
          end
          else List.rev (a :: acc)
        in
        let args = operands [] in
        if List.length args <> Ast.arity op then
          err lx
            (Printf.sprintf "%s expects %d operands, got %d" opname
               (Ast.arity op) (List.length args));
        Ast.Assign { dst; ty; op; args }

let parse_instr lx : Ast.instr =
  match Lexer.next lx with
  | Lexer.TIdent "call" -> parse_call lx
  | Lexer.TLocal d -> (
      (* one or more comma-separated locals: single destination for an
         SSA assignment, a destination list for a returning call
         ([%s1 = call @pipeA (...) pipe], coarse-pipeline plumbing) *)
      let rec dsts acc =
        match Lexer.peek lx with
        | Lexer.TComma -> (
            ignore (Lexer.next lx);
            match Lexer.next lx with
            | Lexer.TLocal d' -> dsts (d' :: acc)
            | t ->
                err lx
                  ("expected %name in destination list, found "
                  ^ Lexer.token_to_string t))
        | _ -> List.rev acc
      in
      let ds = dsts [ d ] in
      expect lx Lexer.TEq;
      match (Lexer.peek lx, ds) with
      | Lexer.TIdent "call", _ ->
          ignore (Lexer.next lx);
          parse_call ~rets:ds lx
      | _, [ d ] -> parse_assign lx (Ast.Dlocal d)
      | _ -> err lx "multiple destinations are only allowed for call")
  | Lexer.TGlobal d ->
      expect lx Lexer.TEq;
      parse_assign lx (Ast.Dglobal d)
  | t -> err lx ("expected instruction, found " ^ Lexer.token_to_string t)

let parse_fundef lx : Ast.func =
  expect_keyword lx "void";
  let name = expect_global lx in
  let params = parse_params lx in
  let kind = parse_kind lx in
  expect lx Lexer.TLbrace;
  let rec body acc =
    if Lexer.peek lx = Lexer.TRbrace then (ignore (Lexer.next lx); List.rev acc)
    else body (parse_instr lx :: acc)
  in
  let body = body [] in
  { fn_name = name; fn_params = params; fn_kind = kind; fn_body = body }

(** [parse ~name src] parses a complete design from [src]. Raises
    {!Parse_error} (and {!Lexer.Lex_error}) on malformed input. *)
let parse ?(name = "design") (src : string) : Ast.design =
  Tytra_telemetry.Span.with_ ~name:"ir.parse"
    ~attrs:
      [ ("design", Tytra_telemetry.Span.Str name);
        ("bytes", Tytra_telemetry.Span.Int (String.length src)) ]
  @@ fun () ->
  let lx = Lexer.of_string src in
  let d = ref (Ast.empty_design name) in
  let add_mem m = d := { !d with Ast.d_mems = !d.Ast.d_mems @ [ m ] } in
  let add_stream s = d := { !d with Ast.d_streams = !d.Ast.d_streams @ [ s ] } in
  let add_port p = d := { !d with Ast.d_ports = !d.Ast.d_ports @ [ p ] } in
  let add_global g = d := { !d with Ast.d_globals = !d.Ast.d_globals @ [ g ] } in
  let add_func f = d := { !d with Ast.d_funcs = !d.Ast.d_funcs @ [ f ] } in
  let rec go () =
    match Lexer.next lx with
    | Lexer.TEOF -> ()
    | Lexer.TIdent "define" ->
        add_func (parse_fundef lx);
        go ()
    | Lexer.TLocal n ->
        expect lx Lexer.TEq;
        (match expect_ident lx with
        | "memobj" -> add_mem (parse_memdecl lx n)
        | "stream" -> add_stream (parse_streamdecl lx n)
        | s -> err lx (Printf.sprintf "expected memobj/stream, found %S" s));
        go ()
    | Lexer.TGlobal n ->
        expect lx Lexer.TEq;
        if String.contains n '.' then add_port (parse_port lx n)
        else begin
          expect_keyword lx "global";
          add_global (parse_globaldecl lx n)
        end;
        go ()
    | t -> err lx ("expected declaration, found " ^ Lexer.token_to_string t)
  in
  go ();
  !d

(** [parse_result ?name ?file src] is {!parse} with failures reported as
    a typed {!Error.t} instead of an exception — the entry point library
    consumers should use. [file] only labels diagnostics. *)
let parse_result ?name ?file src : (Ast.design, Error.t) result =
  match parse ?name src with
  | d -> Ok d
  | exception Parse_error (m, l) -> Result.error (Error.parse ?file m l)
  | exception Lexer.Lex_error (m, l) -> Result.error (Error.lex ?file m l)
  | exception Stack_overflow ->
      (* Deeply nested input blows the recursive-descent stack long
         before it means anything; still the caller's data, not a bug. *)
      Result.error (Error.parse ?file "input nests too deeply" 0)
  | exception e ->
      (* Crash-free contract on arbitrary bytes (the fuzz suite pins
         it): anything the cases above miss is a parser bug, but it must
         surface as a diagnostic, not a crash of the enclosing sweep. *)
      Result.error
        (Error.parse ?file
           ("internal parser failure: " ^ Printexc.to_string e)
           0)

(** Parse the contents of a [.tirl] file. *)
let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let src = really_input_string ic (in_channel_length ic) in
      parse ~name:(Filename.remove_extension (Filename.basename path)) src)

(** [parse_file_result path] — {!parse_file} with typed errors;
    unreadable files come back as [Error.Io]. *)
let parse_file_result path : (Ast.design, Error.t) result =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Result.error (Error.Io { path; msg })
  | src ->
      parse_result
        ~name:(Filename.remove_extension (Filename.basename path))
        ~file:path src

(** [load_file path] — parse *and* statically validate: the one-call
    front door for tools. Validation failures come back as
    [Error.Invalid]. *)
let load_file path : (Ast.design, Error.t) result =
  Result.bind (parse_file_result path) (fun d ->
      match Validate.check d with
      | [] -> Ok d
      | errs -> Result.error (Error.Invalid errs))
