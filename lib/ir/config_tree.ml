(** Configuration-tree extraction (paper Fig 8) and design-space
    classification (paper Fig 5).

    The compiler parses the parallelism constructs of a design and extracts
    the architecture implied by the parent/child and peer/peer combinations
    of [pipe]/[par]/[seq]/[comb] functions. The supported configurations
    (paper Fig 7) are:

    + a pipeline with combinatorial blocks;
    + data-parallel pipelines ([par] of [pipe]);
    + a coarse-grained pipeline ([pipe] of [pipe]s);
    + data-parallel coarse-grained pipelines;
    + (extension) vectorized lanes: [par] of [par] of [pipe], where the
      inner replication factor is the degree of vectorization [DV]. *)

open Ast

type node = {
  cn_func : string;
  cn_kind : kind;
  cn_children : node list;
}

(** Build the configuration tree rooted at [@main] (or [root]) over a
    {!Symtab} index — O(1) per call edge. Assumes a validated design (no
    recursion, calls resolve). *)
let rec build_sym ?(root = "main") (sy : Symtab.t) : node =
  let f = Symtab.find_func_exn sy root in
  let children =
    List.filter_map
      (function
        | Call { callee; _ } -> Some (build_sym ~root:callee sy)
        | _ -> None)
      f.fn_body
  in
  { cn_func = f.fn_name; cn_kind = f.fn_kind; cn_children = children }

(** Build the configuration tree rooted at [@main] (or [root]). Assumes a
    validated design (no recursion, calls resolve). *)
let build ?root (d : design) : node = build_sym ?root (Symtab.of_design d)

let rec pp_node ?(indent = 0) fmt n =
  Format.fprintf fmt "%s%s:%s@\n"
    (String.make indent ' ')
    n.cn_func (kind_to_string n.cn_kind);
  List.iter (pp_node ~indent:(indent + 2) fmt) n.cn_children

let to_string n = Format.asprintf "%a" (fun fmt -> pp_node fmt) n

(** Design-space classes of Fig 5 that the compiler currently supports. *)
type cclass =
  | C1  (** replicated pipeline lanes (thread + pipeline parallelism) *)
  | C2  (** single kernel pipeline (pipeline parallelism only) *)
  | C3  (** vectorized lanes (medium/coarse-grained data parallelism) *)
  | C4  (** scalar sequential execution (instruction-processor-like) *)

let cclass_to_string = function
  | C1 -> "C1" | C2 -> "C2" | C3 -> "C3" | C4 -> "C4"

(** Summary of the architecture implied by a configuration tree. *)
type summary = {
  cs_class : cclass;
  cs_knl : int;      (** [KNL] — number of parallel kernel lanes *)
  cs_dv : int;       (** [DV] — degree of vectorization per lane *)
  cs_coarse : bool;  (** lanes are coarse-grained pipelines of pipes *)
  cs_pes : string list;
      (** names of the leaf processing-element functions, one per lane
          (times [DV] for vectorized lanes) *)
}

(* A lane rooted at a pipe node: either a fine-grained pipeline (leaf) or a
   coarse-grained pipeline of pipes. Returns the PE function names. *)
let rec lane_pes (n : node) : string list =
  match n.cn_kind with
  | Pipe ->
      let subpipes =
        List.filter (fun c -> c.cn_kind = Pipe) n.cn_children
      in
      if subpipes = [] then [ n.cn_func ]
      else List.concat_map lane_pes subpipes
  | Comb -> []
  | _ -> [ n.cn_func ]

let lane_is_coarse (n : node) =
  n.cn_kind = Pipe && List.exists (fun c -> c.cn_kind = Pipe) n.cn_children

(** [classify_sym sy] analyses the configuration tree of the indexed
    design and returns the architecture summary. The top-level function
    [@main] is treated as a transparent wrapper: its single child (or
    children) define the configuration. *)
let classify_sym (sy : Symtab.t) : summary =
  let root = build_sym sy in
  (* main's children are the real top of the configuration *)
  let tops = if root.cn_children = [] then [ root ] else root.cn_children in
  match tops with
  | [ { cn_kind = Par; cn_children = lanes; _ } ]
    when lanes <> [] && List.for_all (fun l -> l.cn_kind = Par) lanes ->
      (* par of par of pipe: vectorized lanes *)
      let knl = List.length lanes in
      let dv =
        List.fold_left (fun acc l -> max acc (List.length l.cn_children)) 1 lanes
      in
      let pes =
        List.concat_map (fun l -> List.concat_map lane_pes l.cn_children) lanes
      in
      {
        cs_class = C3;
        cs_knl = knl;
        cs_dv = dv;
        cs_coarse = false;
        cs_pes = pes;
      }
  | [ { cn_kind = Par; cn_children = lanes; _ } ] when lanes <> [] ->
      let knl = List.length lanes in
      let coarse = List.exists lane_is_coarse lanes in
      {
        cs_class = C1;
        cs_knl = knl;
        cs_dv = 1;
        cs_coarse = coarse;
        cs_pes = List.concat_map lane_pes lanes;
      }
  | [ ({ cn_kind = Pipe; _ } as lane) ] ->
      {
        cs_class = C2;
        cs_knl = 1;
        cs_dv = 1;
        cs_coarse = lane_is_coarse lane;
        cs_pes = lane_pes lane;
      }
  | [ { cn_kind = Seq; _ } ] | [] ->
      { cs_class = C4; cs_knl = 1; cs_dv = 1; cs_coarse = false; cs_pes = [] }
  | tops ->
      (* several peer children under main: treat as a coarse pipeline of
         peers if all pipes, else sequential *)
      if List.for_all (fun t -> t.cn_kind = Pipe) tops then
        {
          cs_class = C2;
          cs_knl = 1;
          cs_dv = 1;
          cs_coarse = true;
          cs_pes = List.concat_map lane_pes tops;
        }
      else
        {
          cs_class = C4;
          cs_knl = 1;
          cs_dv = 1;
          cs_coarse = false;
          cs_pes = List.concat_map lane_pes tops;
        }

(** [classify d] — as {!classify_sym}, indexing [d] first. *)
let classify (d : design) : summary = classify_sym (Symtab.of_design d)

let pp_summary fmt s =
  Format.fprintf fmt "%s: KNL=%d DV=%d%s PEs=[%s]"
    (cclass_to_string s.cs_class)
    s.cs_knl s.cs_dv
    (if s.cs_coarse then " coarse" else "")
    (String.concat "; " s.cs_pes)
