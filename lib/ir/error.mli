(** Typed diagnostics for loading TyTra-IR designs.

    The single error channel of the result-returning parser entry points
    ([Parser.parse_result], [Parser.parse_file_result],
    [Parser.load_file]); consumers match on constructors instead of
    catching exceptions. *)

type location = {
  loc_file : string option;  (** source path, when parsing from a file *)
  loc_line : int;            (** 1-based line number *)
}

type t =
  | Lex of { msg : string; loc : location }
      (** invalid input below the token level *)
  | Parse of { msg : string; loc : location }
      (** token stream does not form a design *)
  | Invalid of Validate.error list
      (** parsed, but rejected by static validation *)
  | Io of { path : string; msg : string }
      (** the source could not be read at all *)

val lex : ?file:string -> string -> int -> t
val parse : ?file:string -> string -> int -> t

val line : t -> int option
(** The line a lexical/syntactic error points at, if it has one. *)

val pp : Format.formatter -> t -> unit
(** Compiler-style ["file:line: kind: msg"] rendering. *)

val to_string : t -> string
