(** Global toggle for the IR fast path (DESIGN.md §10).

    The fast path covers three optimizations that have a slower,
    independently implemented reference twin kept for differential
    testing:

    - derived replicated variants ({!Tytra_front.Lower.derive}): the
      shared PE body is validated once per program, each lane-count
      variant re-checks only its wiring delta;
    - incremental delta-wirelength annealing in
      {!Tytra_sim.Techmap.place};
    - (always on, no twin needed at call sites:) the indexed one-pass
      validator — its reference implementation stays callable as
      {!Validate.check_reference}.

    Defaults to enabled; disable for a run with [tybec --no-fast-ir],
    [bench/main.exe -- --no-fast-ir] or [TYTRA_FAST_IR=0] in the
    environment. Both paths produce byte-identical designs, selections
    and placements — the flag exists so that equivalence stays cheap to
    re-check. *)

let enabled_ref =
  ref
    (match Sys.getenv_opt "TYTRA_FAST_IR" with
    | Some ("0" | "false" | "no" | "off") -> false
    | _ -> true)

let enabled () = !enabled_ref
let set_enabled b = enabled_ref := b

(** [with_enabled b f] — run [f] with the toggle forced to [b], restoring
    the previous value afterwards (used by differential tests). *)
let with_enabled b f =
  let prev = !enabled_ref in
  enabled_ref := b;
  Fun.protect ~finally:(fun () -> enabled_ref := prev) f
