(** Lexer for the textual TyTra-IR ([.tirl]) concrete syntax.

    Comments run from [;] to end of line (as in the paper's listings).
    Local names are [%ident], design-level names are [@ident] (dots
    allowed, for qualified port names like [@main.p]). Metadata tokens are
    introduced by [!] and may be bare identifiers, integers, or quoted
    strings ([!"CONT"], as in the paper's Fig 12). *)

type token =
  | TIdent of string          (* keywords and type names *)
  | TLocal of string          (* %name *)
  | TGlobal of string         (* @name or @main.p *)
  | TInt of int
  | TFloat of float
  | TString of string
  | TBang
  | TLparen | TRparen | TLbrace | TRbrace
  | TComma | TEq
  | TEOF

let token_to_string = function
  | TIdent s -> s
  | TLocal s -> "%" ^ s
  | TGlobal s -> "@" ^ s
  | TInt i -> string_of_int i
  | TFloat f -> string_of_float f
  | TString s -> Printf.sprintf "%S" s
  | TBang -> "!"
  | TLparen -> "(" | TRparen -> ")" | TLbrace -> "{" | TRbrace -> "}"
  | TComma -> "," | TEq -> "="
  | TEOF -> "<eof>"

exception Lex_error of string * int  (** message, line *)

type t = { toks : (token * int) array; mutable pos : int }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** [tokenize src] lexes the whole of [src], returning tokens paired with
    their 1-based line number. Raises {!Lex_error} on invalid input. *)
let tokenize (src : string) : (token * int) array =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let read_while pred =
    let start = !i in
    while !i < n && pred src.[!i] do incr i done;
    String.sub src start (!i - start)
  in
  let read_number ~neg =
    (* digits ('.' digits)? (('e'|'E') sign? digits)? — a token is a float
       iff it contains a fractional part or an exponent. *)
    let intpart = read_while is_digit in
    let has_dot =
      peek 0 = Some '.' && (match peek 1 with Some c -> is_digit c | None -> false)
    in
    let frac =
      if has_dot then begin
        incr i;
        "." ^ read_while is_digit
      end
      else ""
    in
    let has_exp =
      (peek 0 = Some 'e' || peek 0 = Some 'E')
      && (match peek 1 with
         | Some c when is_digit c -> true
         | Some ('+' | '-') ->
             (match peek 2 with Some c -> is_digit c | None -> false)
         | _ -> false)
    in
    let ex =
      if has_exp then begin
        incr i;
        let sign =
          if peek 0 = Some '-' || peek 0 = Some '+' then begin
            let c = src.[!i] in
            incr i;
            String.make 1 c
          end
          else ""
        in
        "e" ^ sign ^ read_while is_digit
      end
      else ""
    in
    if has_dot || has_exp then begin
      (* [float_of_string] would crash on e.g. a bare "1e"; overflow
         saturates to infinity, which is fine for a literal. *)
      let v =
        match float_of_string_opt (intpart ^ frac ^ ex) with
        | Some v -> v
        | None -> raise (Lex_error ("invalid numeric literal", !line))
      in
      push (TFloat (if neg then -.v else v))
    end
    else
      (* [int_of_string] raises on literals past max_int — arbitrary
         input must surface as a lex error, not a [Failure] crash. *)
      let v =
        match int_of_string_opt intpart with
        | Some v -> v
        | None -> raise (Lex_error ("integer literal out of range", !line))
      in
      push (TInt (if neg then -v else v))
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = ';' then (while !i < n && src.[!i] <> '\n' do incr i done)
    else if c = '(' then (push TLparen; incr i)
    else if c = ')' then (push TRparen; incr i)
    else if c = '{' then (push TLbrace; incr i)
    else if c = '}' then (push TRbrace; incr i)
    else if c = ',' then (push TComma; incr i)
    else if c = '=' then (push TEq; incr i)
    else if c = '!' then (push TBang; incr i)
    else if c = '%' then begin
      incr i;
      let s = read_while is_ident_char in
      if s = "" then raise (Lex_error ("empty local name after %", !line));
      push (TLocal s)
    end
    else if c = '@' then begin
      incr i;
      let s = read_while (fun c -> is_ident_char c || c = '.') in
      if s = "" then raise (Lex_error ("empty global name after @", !line));
      push (TGlobal s)
    end
    else if c = '"' then begin
      incr i;
      let b = Buffer.create 16 in
      let fin = ref false in
      while not !fin do
        if !i >= n then raise (Lex_error ("unterminated string", !line));
        let c = src.[!i] in
        if c = '"' then (fin := true; incr i)
        else if c = '\n' then raise (Lex_error ("newline in string", !line))
        else (Buffer.add_char b c; incr i)
      done;
      push (TString (Buffer.contents b))
    end
    else if is_digit c then read_number ~neg:false
    else if (c = '-' || c = '+') && (match peek 1 with Some d -> is_digit d | None -> false)
    then begin
      incr i;
      read_number ~neg:(c = '-')
    end
    else if is_ident_start c then begin
      let s = read_while is_ident_char in
      push (TIdent s)
    end
    else raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line))
  done;
  push TEOF;
  Array.of_list (List.rev !toks)

let of_string src = { toks = tokenize src; pos = 0 }

let peek lx = fst lx.toks.(lx.pos)
let line lx = snd lx.toks.(lx.pos)
let next lx =
  let t = fst lx.toks.(lx.pos) in
  if t <> TEOF then lx.pos <- lx.pos + 1;
  t
