(** Interned, indexed view of a design (DESIGN.md §10).

    The AST keeps the Manage-IR and Compute-IR as plain lists, which is
    the right shape for construction and printing but makes every
    cross-reference — [find_func], [find_stream], port→parameter
    resolution — a linear scan. Replicated variants make that quadratic:
    a 64-lane design has hundreds of ports, each resolved against
    hundreds of streams and [@main] parameters.

    [Symtab.of_design] builds hashtable-backed symbol tables for the
    design's functions, memory objects, streams and globals in one
    traversal, plus per-function port groups, memoized parameter tables
    and memoized streamed-output signatures. {!Validate.check} and
    {!Analysis} run on this index with O(1) lookups.

    Name collisions are recorded (first declaration wins, matching the
    [List.find_opt] semantics of the plain-AST lookups) so the validator
    can report duplicates without a separate pass. *)

open Ast

(** A duplicate declaration found while indexing: [what] is the entity
    class ("function", "memory object", …), [name] the colliding name. *)
type dup = { dup_what : string; dup_name : string }

type t = {
  sy_design : design;
  sy_funcs : (string, func) Hashtbl.t;
  sy_mems : (string, mem_obj) Hashtbl.t;
  sy_streams : (string, stream_obj) Hashtbl.t;
  sy_globals : (string, global) Hashtbl.t;
  sy_ports : (string, port list) Hashtbl.t;
      (** ports grouped by function, declaration order *)
  sy_dups : dup list;  (** duplicate declarations, design order *)
  (* memoized derived facts, filled on first use *)
  sy_params : (string, (string, Ty.t) Hashtbl.t) Hashtbl.t;
  sy_outputs : (string, (string * Ty.t) list) Hashtbl.t;
}

let design t = t.sy_design

let of_design (d : design) : t =
  let dups = ref [] in
  let index what name_of xs =
    let tbl = Hashtbl.create (2 * List.length xs) in
    List.iter
      (fun x ->
        let n = name_of x in
        if Hashtbl.mem tbl n then
          dups := { dup_what = what; dup_name = n } :: !dups
        else Hashtbl.add tbl n x)
      xs;
    tbl
  in
  let funcs = index "function" (fun f -> f.fn_name) d.d_funcs in
  let mems = index "memory object" (fun m -> m.mo_name) d.d_mems in
  let streams = index "stream object" (fun s -> s.so_name) d.d_streams in
  let globals = index "global" (fun g -> g.g_name) d.d_globals in
  let ports = Hashtbl.create 64 in
  (* group per function preserving declaration order *)
  List.iter
    (fun p ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt ports p.pt_fun) in
      Hashtbl.replace ports p.pt_fun (p :: prev))
    d.d_ports;
  Hashtbl.filter_map_inplace (fun _ l -> Some (List.rev l)) ports;
  {
    sy_design = d;
    sy_funcs = funcs;
    sy_mems = mems;
    sy_streams = streams;
    sy_globals = globals;
    sy_ports = ports;
    sy_dups = List.rev !dups;
    sy_params = Hashtbl.create 16;
    sy_outputs = Hashtbl.create 16;
  }

(** {2 O(1) lookups} *)

let find_func t name = Hashtbl.find_opt t.sy_funcs name
let find_mem t name = Hashtbl.find_opt t.sy_mems name
let find_stream t name = Hashtbl.find_opt t.sy_streams name
let find_global t name = Hashtbl.find_opt t.sy_globals name

let find_func_exn t name =
  match find_func t name with
  | Some f -> f
  | None ->
      invalid_arg
        (Printf.sprintf "no function @%s in design %s" name
           t.sy_design.d_name)

(** Ports declared for function [fname], declaration order. *)
let ports_of t fname =
  Option.value ~default:[] (Hashtbl.find_opt t.sy_ports fname)

let duplicates t = t.sy_dups

(** Type of parameter [p] of function [f]; memoized hashtable per
    function, so resolving [n] ports against an [n]-parameter [@main]
    is O(n), not O(n²). *)
let param_ty t (f : func) (p : string) : Ty.t option =
  let tbl =
    match Hashtbl.find_opt t.sy_params f.fn_name with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create (2 * List.length f.fn_params) in
        List.iter
          (fun (n, ty) ->
            if not (Hashtbl.mem tbl n) then Hashtbl.add tbl n ty)
          f.fn_params;
        Hashtbl.replace t.sy_params f.fn_name tbl;
        tbl
  in
  Hashtbl.find_opt tbl p

(** Streamed outputs of [f] (see {!Ast.func_outputs}), memoized — a
    replicated design resolves the shared PE's outputs once per design
    instead of once per call site. *)
let func_outputs t (f : func) : (string * Ty.t) list =
  match Hashtbl.find_opt t.sy_outputs f.fn_name with
  | Some outs -> outs
  | None ->
      let outs = Ast.func_outputs f in
      Hashtbl.replace t.sy_outputs f.fn_name outs;
      outs
