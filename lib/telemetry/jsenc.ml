(** Minimal JSON encoding/decoding shared by the telemetry exporters.

    The telemetry layer deliberately has no external JSON dependency:
    every exporter (Chrome trace, metrics registry, event log, exposition
    endpoint) builds its output through the two encoders below, and the
    event-log round-trip decoder ({!Events.decode_line}) parses through
    {!parse}. The parser handles the full JSON grammar but is tuned for
    the small flat objects telemetry emits — one allocation-light pass,
    no streaming. *)

(** JSON string literal with proper escaping (OCaml's [%S] escapes
    control characters as decimal [\ddd], which JSON rejects). *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_num x =
  (* JSON has no infinities/NaN; clamp to null-safe strings *)
  if Float.is_nan x then "0"
  else if x = infinity then "1e308"
  else if x = neg_infinity then "-1e308"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
          | Some '/' -> advance (); Buffer.add_char b '/'; go ()
          | Some '"' -> advance (); Buffer.add_char b '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* telemetry only escapes control chars; keep it simple *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
              go ()
          | _ -> fail "bad escape")
      | Some c -> advance (); Buffer.add_char b c; go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when numchar c -> true | _ -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* Accessors used by the decoder and tests. *)
let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let str_member key j =
  match member key j with Some (Str s) -> Some s | _ -> None

let num_member key j =
  match member key j with Some (Num f) -> Some f | _ -> None

let bool_member key j =
  match member key j with Some (Bool b) -> Some b | _ -> None
