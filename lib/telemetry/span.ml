(** Hierarchical timed spans.

    A span measures one phase of the compile/cost/DSE flow. Spans nest:
    [with_ ~name f] opens a span, runs [f], and records a completed event
    when [f] returns (or raises — the event is recorded with an [error]
    attribute and the exception re-raised). The recorded stream is the
    *completion* order: children always appear before their parents, and
    Chrome's trace viewer reconstructs the hierarchy from the (ts, dur)
    containment on each thread lane.

    Phase names are a stable public interface — see DESIGN.md §7 for the
    taxonomy. Attribute payloads are small typed values rendered into the
    Chrome-trace [args] object.

    Overhead when disabled: one mutable-bool check, no allocation. *)

(** Typed span attribute values. *)
type attr = Str of string | Int of int | Float of float | Bool of bool

let attr_to_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.17g" f
  | Bool b -> string_of_bool b

(** One completed span. Times are nanoseconds from {!Clock}. *)
type event = {
  ev_name : string;
  ev_ts_ns : int64;   (** start time *)
  ev_dur_ns : int64;  (** duration (>= 0) *)
  ev_depth : int;     (** nesting depth at open time; roots are 0 *)
  ev_tid : int;       (** thread-of-execution (domain) id *)
  ev_seq : int;       (** global completion sequence number *)
  ev_attrs : (string * attr) list;
}

(* ------------------------------------------------------------------ *)
(* Recording state                                                     *)
(* ------------------------------------------------------------------ *)

let mutex = Mutex.create ()

(* completion-ordered, newest first; reversed on read *)
let recorded : event list ref = ref []
let n_recorded = ref 0
let seq = ref 0
let dropped = ref 0

(* Retention cap: a long DSE sweep or anneal could otherwise grow the
   buffer without bound. Past the cap, events are counted but not kept. *)
let default_max_events = 1_000_000
let max_events = ref default_max_events
let set_max_events n = max_events := max 0 n

(* Open-span stack and nesting depth are *per-domain* state: workers of
   the parallel DSE pool each carry their own stack, so concurrent spans
   nest correctly inside their own domain and never contend on a lock
   just to track depth. The completed-event buffer above stays shared
   (and mutex-guarded) so one export sees every domain's spans. *)
type domain_state = {
  mutable ds_stack : string list;
  mutable ds_depth : int;
}

let dls : domain_state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { ds_stack = []; ds_depth = 0 })

let reset () =
  Mutex.lock mutex;
  recorded := [];
  n_recorded := 0;
  seq := 0;
  dropped := 0;
  Mutex.unlock mutex;
  let ds = Domain.DLS.get dls in
  ds.ds_stack <- [];
  ds.ds_depth <- 0

(** Completed events in completion order (children before parents). *)
let events () : event list =
  Mutex.lock mutex;
  let l = List.rev !recorded in
  Mutex.unlock mutex;
  l

let dropped_events () = !dropped

(** Dotted path of the calling domain's open spans, outermost first
    (diagnostics). *)
let current_path () : string list =
  List.rev (Domain.DLS.get dls).ds_stack

(* ------------------------------------------------------------------ *)
(* The span combinator                                                 *)
(* ------------------------------------------------------------------ *)

let record ~name ~t0 ~t1 ~depth:d ~tid ~attrs =
  Mutex.lock mutex;
  let s = !seq in
  seq := s + 1;
  if !n_recorded < !max_events then begin
    recorded :=
      {
        ev_name = name;
        ev_ts_ns = t0;
        ev_dur_ns = Int64.max 0L (Int64.sub t1 t0);
        ev_depth = d;
        ev_tid = tid;
        ev_seq = s;
        ev_attrs = attrs;
      }
      :: !recorded;
    incr n_recorded
  end
  else incr dropped;
  Mutex.unlock mutex

(** [with_ ?attrs ~name f] — run [f ()] inside a span called [name].
    Returns [f ()]'s value; re-raises its exceptions after recording the
    span with an [error] attribute. When telemetry is disabled this is
    exactly [f ()]. *)
let with_ ?(attrs : (string * attr) list = []) ~name f =
  if not !Control.enabled then f ()
  else begin
    let tid = (Domain.self () :> int) in
    let ds = Domain.DLS.get dls in
    let d = ds.ds_depth in
    ds.ds_depth <- d + 1;
    ds.ds_stack <- name :: ds.ds_stack;
    let leave () =
      ds.ds_depth <- ds.ds_depth - 1;
      match ds.ds_stack with _ :: tl -> ds.ds_stack <- tl | [] -> ()
    in
    if Events.active () then Events.emit (Events.Span_open { name; depth = d });
    let t0 = Clock.now_ns () in
    match f () with
    | v ->
        let t1 = Clock.now_ns () in
        leave ();
        record ~name ~t0 ~t1 ~depth:d ~tid ~attrs;
        if Events.active () then
          Events.emit
            (Events.Span_close
               { name; dur_ns = Int64.max 0L (Int64.sub t1 t0); error = None });
        v
    | exception e ->
        let t1 = Clock.now_ns () in
        leave ();
        record ~name ~t0 ~t1 ~depth:d ~tid
          ~attrs:(("error", Str (Printexc.to_string e)) :: attrs);
        if Events.active () then
          Events.emit
            (Events.Span_close
               {
                 name;
                 dur_ns = Int64.max 0L (Int64.sub t1 t0);
                 error = Some (Printexc.to_string e);
               });
        raise e
  end

(** [instant ?attrs name] — record a zero-duration marker event. *)
let instant ?(attrs : (string * attr) list = []) name =
  if !Control.enabled then begin
    let t = Clock.now_ns () in
    record ~name ~t0:t ~t1:t
      ~depth:(Domain.DLS.get dls).ds_depth
      ~tid:((Domain.self () :> int))
      ~attrs
  end
