(** Structured event log: an append-only JSONL sink of typed records.

    Where {!Span} answers "where did the time go" after the fact, the
    event log answers "what is happening right now": each significant
    action (sweep lifecycle, per-point DSE outcomes, checkpoint writes,
    span open/close, counter deltas) is appended as one self-contained
    JSON object per line, so a `tail -f` or a log shipper can follow a
    long sweep live and the file parses back losslessly through
    {!decode_line}.

    Concurrency: all domains share one sink behind a mutex; [r_seq] is a
    global sequence number assigned under that lock, so the file order is
    the emission order. Timestamps come from {!Clock}, so tests inject a
    deterministic clock and get byte-stable logs.

    Cost: with no sink installed, {!emit} is one mutable-bool check.
    Coarse events (sweep/point/checkpoint) flush the channel so external
    observers see them promptly; high-rate events (span close, counter
    deltas) ride the normal buffering.

    Schema versioning policy (see DESIGN.md §12): every line carries
    [{"v":N}]. Additive field changes keep the version; renaming or
    removing a field, or changing a field's meaning, bumps it. Decoders
    must ignore unknown fields. *)

(** Schema version stamped into every line. *)
let schema_version = 1

type event =
  | Sweep_started of { kernel : string; space : int; jobs : int; prune : bool }
  | Sweep_finished of {
      evaluated : int;
      pruned : int;
      failed : int;
      restored : int;
    }
  | Point_evaluated of {
      variant : string;
      ekit : float;
      valid : bool;
      cached : bool;
      dur_ns : int64;
    }
  | Point_pruned of { variant : string; reason : string }
  | Point_failed of { variant : string; error : string }
  | Checkpoint_written of { path : string; points : int }
  | Span_open of { name : string; depth : int }
  | Span_close of { name : string; dur_ns : int64; error : string option }
  | Counter_delta of { name : string; delta : float }
  | Shard_crash of { shard : int; pid : int; restarts : int }
      (** a serve shard died unexpectedly; [restarts] counts its
          consecutive restarts so far (additive in schema v1) *)

type record = {
  r_seq : int;      (** global emission order *)
  r_ts_ns : int64;  (** {!Clock} time at emission *)
  r_domain : int;   (** emitting domain id *)
  r_event : event;
}

(* ------------------------------------------------------------------ *)
(* Sink state                                                          *)
(* ------------------------------------------------------------------ *)

type sink = No_sink | Channel of out_channel | Memory of Buffer.t

let mutex = Mutex.create ()
let sink = ref No_sink

(* Fast gate read outside the lock: emit sites in hot paths check this
   single bool before doing any work. Only flipped under [mutex]. *)
let active_flag = ref false

let seq = ref 0
let n_emitted = ref 0
let n_write_errors = ref 0

let active () = !active_flag

let emitted () = !n_emitted
let write_errors () = !n_write_errors

let close () =
  Mutex.lock mutex;
  (match !sink with
  | Channel oc -> ( try close_out oc with Sys_error _ -> ())
  | Memory _ | No_sink -> ());
  sink := No_sink;
  active_flag := false;
  Mutex.unlock mutex

let install s =
  close ();
  Mutex.lock mutex;
  sink := s;
  active_flag := true;
  seq := 0;
  n_emitted := 0;
  n_write_errors := 0;
  Mutex.unlock mutex

(** [open_file path] — truncate [path] and start appending events to it.
    Any previously installed sink is closed first. *)
let open_file path = install (Channel (open_out path))

(** [open_memory buf] — append events to an in-memory buffer (tests). *)
let open_memory buf = install (Memory buf)

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

(* Direct Buffer writes, not Printf: encoding sits on the per-point hot
   path of an observed sweep, and format interpretation there is what
   pushes the observability overhead past its 2% budget. *)
let add_kv_str b k v =
  Buffer.add_string b k;
  Buffer.add_string b (Jsenc.json_string v)

let add_kv_int b k v =
  Buffer.add_string b k;
  Buffer.add_string b (string_of_int v)

let add_kv_i64 b k v =
  Buffer.add_string b k;
  Buffer.add_string b (Int64.to_string v)

let add_kv_bool b k v =
  Buffer.add_string b k;
  Buffer.add_string b (if v then "true" else "false")

let add_body b (e : event) : unit =
  match e with
  | Sweep_started { kernel; space; jobs; prune } ->
      Buffer.add_string b "\"type\":\"sweep_started\"";
      add_kv_str b ",\"kernel\":" kernel;
      add_kv_int b ",\"space\":" space;
      add_kv_int b ",\"jobs\":" jobs;
      add_kv_bool b ",\"prune\":" prune
  | Sweep_finished { evaluated; pruned; failed; restored } ->
      Buffer.add_string b "\"type\":\"sweep_finished\"";
      add_kv_int b ",\"evaluated\":" evaluated;
      add_kv_int b ",\"pruned\":" pruned;
      add_kv_int b ",\"failed\":" failed;
      add_kv_int b ",\"restored\":" restored
  | Point_evaluated { variant; ekit; valid; cached; dur_ns } ->
      Buffer.add_string b "\"type\":\"point_evaluated\"";
      add_kv_str b ",\"variant\":" variant;
      Buffer.add_string b ",\"ekit\":";
      Buffer.add_string b (Jsenc.json_num ekit);
      add_kv_bool b ",\"valid\":" valid;
      add_kv_bool b ",\"cached\":" cached;
      add_kv_i64 b ",\"dur_ns\":" dur_ns
  | Point_pruned { variant; reason } ->
      Buffer.add_string b "\"type\":\"point_pruned\"";
      add_kv_str b ",\"variant\":" variant;
      add_kv_str b ",\"reason\":" reason
  | Point_failed { variant; error } ->
      Buffer.add_string b "\"type\":\"point_failed\"";
      add_kv_str b ",\"variant\":" variant;
      add_kv_str b ",\"error\":" error
  | Checkpoint_written { path; points } ->
      Buffer.add_string b "\"type\":\"checkpoint_written\"";
      add_kv_str b ",\"path\":" path;
      add_kv_int b ",\"points\":" points
  | Span_open { name; depth } ->
      Buffer.add_string b "\"type\":\"span_open\"";
      add_kv_str b ",\"name\":" name;
      add_kv_int b ",\"depth\":" depth
  | Span_close { name; dur_ns; error } ->
      Buffer.add_string b "\"type\":\"span_close\"";
      add_kv_str b ",\"name\":" name;
      add_kv_i64 b ",\"dur_ns\":" dur_ns;
      Option.iter (fun e -> add_kv_str b ",\"error\":" e) error
  | Counter_delta { name; delta } ->
      Buffer.add_string b "\"type\":\"counter_delta\"";
      add_kv_str b ",\"name\":" name;
      Buffer.add_string b ",\"delta\":";
      Buffer.add_string b (Jsenc.json_num delta)
  | Shard_crash { shard; pid; restarts } ->
      Buffer.add_string b "\"type\":\"shard_crash\"";
      add_kv_int b ",\"shard\":" shard;
      add_kv_int b ",\"pid\":" pid;
      add_kv_int b ",\"restarts\":" restarts

let add_record b (r : record) : unit =
  Buffer.add_string b "{\"v\":";
  Buffer.add_string b (string_of_int schema_version);
  add_kv_int b ",\"seq\":" r.r_seq;
  add_kv_i64 b ",\"ts_ns\":" r.r_ts_ns;
  add_kv_int b ",\"dom\":" r.r_domain;
  Buffer.add_char b ',';
  add_body b r.r_event;
  Buffer.add_char b '}'

(** One JSONL line (no trailing newline) for [r]. *)
let encode (r : record) : string =
  let b = Buffer.create 192 in
  add_record b r;
  Buffer.contents b

(* Rare, coarse events flush so a tail -f (or a crash shortly after)
   sees them; the per-point and per-span stream rides stdio buffering —
   crash-time freshness for those is the flight recorder's job, and
   [close] flushes everything. *)
let flush_worthy = function
  | Sweep_started _ | Sweep_finished _ | Point_failed _
  | Checkpoint_written _ | Shard_crash _ ->
      true
  | Point_evaluated _ | Point_pruned _ | Span_open _ | Span_close _
  | Counter_delta _ ->
      false

(** Append one event to the active sink; a no-op without a sink. *)
(* Reused under [mutex] so the hot path allocates no intermediate
   strings beyond what json_string/json_num produce. *)
let scratch = Buffer.create 256

let emit (e : event) : unit =
  if !active_flag then begin
    let ts = Clock.now_ns () in
    let dom = (Domain.self () :> int) in
    Mutex.lock mutex;
    (match !sink with
    | No_sink -> () (* closed between the gate check and the lock *)
    | Channel oc -> (
        let r = { r_seq = !seq; r_ts_ns = ts; r_domain = dom; r_event = e } in
        incr seq;
        try
          Buffer.clear scratch;
          add_record scratch r;
          Buffer.add_char scratch '\n';
          Buffer.output_buffer oc scratch;
          if flush_worthy e then flush oc;
          incr n_emitted
        with Sys_error _ -> incr n_write_errors)
    | Memory b ->
        let r = { r_seq = !seq; r_ts_ns = ts; r_domain = dom; r_event = e } in
        incr seq;
        add_record b r;
        Buffer.add_char b '\n';
        incr n_emitted);
    Mutex.unlock mutex
  end

(* ------------------------------------------------------------------ *)
(* Decoding (round-trip)                                               *)
(* ------------------------------------------------------------------ *)

let decode_error fmt = Printf.ksprintf (fun s -> Error s) fmt

let req_str j key =
  match Jsenc.str_member key j with
  | Some s -> Ok s
  | None -> decode_error "missing string field %S" key

let req_num j key =
  match Jsenc.num_member key j with
  | Some f -> Ok f
  | None -> decode_error "missing numeric field %S" key

let req_int j key = Result.map int_of_float (req_num j key)
let req_i64 j key = Result.map Int64.of_float (req_num j key)

let req_bool j key =
  match Jsenc.bool_member key j with
  | Some b -> Ok b
  | None -> decode_error "missing boolean field %S" key

let ( let* ) = Result.bind

let decode_event j : (event, string) result =
  let* ty = req_str j "type" in
  match ty with
  | "sweep_started" ->
      let* kernel = req_str j "kernel" in
      let* space = req_int j "space" in
      let* jobs = req_int j "jobs" in
      let* prune = req_bool j "prune" in
      Ok (Sweep_started { kernel; space; jobs; prune })
  | "sweep_finished" ->
      let* evaluated = req_int j "evaluated" in
      let* pruned = req_int j "pruned" in
      let* failed = req_int j "failed" in
      let* restored = req_int j "restored" in
      Ok (Sweep_finished { evaluated; pruned; failed; restored })
  | "point_evaluated" ->
      let* variant = req_str j "variant" in
      let* ekit = req_num j "ekit" in
      let* valid = req_bool j "valid" in
      let* cached = req_bool j "cached" in
      let* dur_ns = req_i64 j "dur_ns" in
      Ok (Point_evaluated { variant; ekit; valid; cached; dur_ns })
  | "point_pruned" ->
      let* variant = req_str j "variant" in
      let* reason = req_str j "reason" in
      Ok (Point_pruned { variant; reason })
  | "point_failed" ->
      let* variant = req_str j "variant" in
      let* error = req_str j "error" in
      Ok (Point_failed { variant; error })
  | "checkpoint_written" ->
      let* path = req_str j "path" in
      let* points = req_int j "points" in
      Ok (Checkpoint_written { path; points })
  | "span_open" ->
      let* name = req_str j "name" in
      let* depth = req_int j "depth" in
      Ok (Span_open { name; depth })
  | "span_close" ->
      let* name = req_str j "name" in
      let* dur_ns = req_i64 j "dur_ns" in
      Ok (Span_close { name; dur_ns; error = Jsenc.str_member "error" j })
  | "counter_delta" ->
      let* name = req_str j "name" in
      let* delta = req_num j "delta" in
      Ok (Counter_delta { name; delta })
  | "shard_crash" ->
      let* shard = req_int j "shard" in
      let* pid = req_int j "pid" in
      let* restarts = req_int j "restarts" in
      Ok (Shard_crash { shard; pid; restarts })
  | other -> decode_error "unknown event type %S" other

(** Parse one JSONL line back into a {!record}. Inverse of {!encode} for
    every event this module emits; tolerates unknown extra fields (the
    schema policy allows additive growth). *)
let decode_line (line : string) : (record, string) result =
  let* j = Jsenc.parse line in
  let* v = req_int j "v" in
  if v <> schema_version then
    decode_error "unsupported event schema version %d (expected %d)" v
      schema_version
  else
    let* r_seq = req_int j "seq" in
    let* r_ts_ns = req_i64 j "ts_ns" in
    let* r_domain = req_int j "dom" in
    let* r_event = decode_event j in
    Ok { r_seq; r_ts_ns; r_domain; r_event }

(** Decode a whole JSONL document; returns records plus per-line errors. *)
let decode_lines (s : string) : record list * (int * string) list =
  let lines = String.split_on_char '\n' s in
  let recs, errs, _ =
    List.fold_left
      (fun (recs, errs, lineno) line ->
        if String.trim line = "" then (recs, errs, lineno + 1)
        else
          match decode_line line with
          | Ok r -> (r :: recs, errs, lineno + 1)
          | Error e -> (recs, (lineno, e) :: errs, lineno + 1))
      ([], [], 1) lines
  in
  (List.rev recs, List.rev errs)
