(** Master switch for the telemetry layer.

    Every instrumentation site in the code base is gated on one mutable
    boolean: when telemetry is disabled (the default), a span or metric
    call is a single [if not !enabled] check and an immediate return —
    no allocation, no clock read, no locking. This is what keeps the
    instrumented estimator fast path (the paper's §VI-A speed claim,
    experiment E5) unaffected when nobody is watching. *)

let enabled = ref false

let set_enabled b = enabled := b
let is_enabled () = !enabled

(** [with_enabled b f] — run [f ()] with the switch set to [b], restoring
    the previous state afterwards (exception-safe). Used by tests and by
    scoped instrumentation in the benchmark harness. *)
let with_enabled b f =
  let prev = !enabled in
  enabled := b;
  Fun.protect ~finally:(fun () -> enabled := prev) f
