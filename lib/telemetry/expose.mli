(** Prometheus-style text exposition of the metrics registry.

    Public interface of [Tytra_telemetry.Expose]. Renders the whole
    registry (from one consistent {!Metrics.snapshot}) as Prometheus
    text, as stable sorted JSON, and as the versioned [perf_profile]
    section that [scripts/perf_guard.py] gates on. *)

val render : unit -> string
(** The whole registry in Prometheus text exposition format 0.0.4:
    counters and gauges as single samples, histograms as summaries.
    Metric names are sanitized — dots become underscores, everything
    gets a [tytra_] prefix — so [dse.points_evaluated] exposes as
    [tytra_dse_points_evaluated]. *)

val registry_json : unit -> string
(** The registry as stable sorted JSON (same shape as
    [Metrics.to_json]; the [--metrics-json FILE] payload —
    byte-identical across runs with identical counters, so CI can diff
    it). *)

val write_registry_json : string -> unit
(** [write_registry_json path] — dump {!registry_json} to [path]. *)

val perf_profile_version : int
(** Version of the [perf_profile] payload in bench [--json] reports.
    Bumped when the shape (not the counter set) changes. *)

val perf_profile_json : unit -> string
(** Versioned machine-readable work-counter profile: every registered
    counter, sorted by name, values as exact integers where integral.
    [scripts/perf_guard.py] gates on this with exact equality. *)
