(** Exporters for recorded telemetry.

    Two consumers:

    - {b Chrome trace_event JSON} ({!to_chrome_json},
      {!write_chrome_trace}): load the file in [chrome://tracing] or
      {{:https://ui.perfetto.dev}Perfetto} to see the phase hierarchy on
      a timeline. Spans are emitted as complete ([ph:"X"]) events with
      microsecond timestamps; the span category is the dotted prefix of
      the phase name ([ir.parse] → cat [ir]).

    - {b Summary table} ({!summary}, {!pp_summary}, {!report_json}): a
      per-phase aggregation — count, total, mean, p95, max — plus the
      metrics registry, as aligned text for terminals and as JSON for the
      benchmark harness (machine-readable per-phase timing for E5). *)

let json_string = Metrics.json_string
let json_num = Metrics.json_num

let us_of_ns ns = Int64.to_float ns /. 1e3

let category name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let attr_json (v : Span.attr) =
  match v with
  | Span.Str s -> json_string s
  | Span.Int i -> string_of_int i
  | Span.Float f -> json_num f
  | Span.Bool b -> string_of_bool b

(* ------------------------------------------------------------------ *)
(* Chrome trace                                                        *)
(* ------------------------------------------------------------------ *)

let add_event b (ev : Span.event) =
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d"
       (json_string ev.Span.ev_name)
       (json_string (category ev.Span.ev_name))
       (json_num (us_of_ns ev.Span.ev_ts_ns))
       (json_num (us_of_ns ev.Span.ev_dur_ns))
       ev.Span.ev_tid);
  (match ev.Span.ev_attrs with
  | [] -> ()
  | attrs ->
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (json_string k);
          Buffer.add_char b ':';
          Buffer.add_string b (attr_json v))
        attrs;
      Buffer.add_char b '}');
  Buffer.add_char b '}'

(** The recorded spans as a Chrome [trace_event] JSON document. *)
let to_chrome_json ?(process_name = "tybec") () : string =
  let evs = Span.events () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":%s}}"
       (json_string process_name));
  List.iter
    (fun ev ->
      Buffer.add_char b ',';
      add_event b ev)
    evs;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"";
  let d = Span.dropped_events () in
  if d > 0 then
    Buffer.add_string b (Printf.sprintf ",\"droppedEvents\":%d" d);
  Buffer.add_char b '}';
  Buffer.contents b

(** Write the Chrome trace to [path]. *)
let write_chrome_trace ?process_name (path : string) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_chrome_json ?process_name ()))

(* ------------------------------------------------------------------ *)
(* Per-phase summary                                                   *)
(* ------------------------------------------------------------------ *)

type row = {
  sr_name : string;
  sr_count : int;
  sr_total_ns : int64;
  sr_mean_ns : float;
  sr_p95_ns : float;
  sr_max_ns : int64;
}

(** Aggregate the recorded spans per phase name, heaviest total first. *)
let summary () : row list =
  let tbl : (string, int64 list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (ev : Span.event) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl ev.Span.ev_name) in
      Hashtbl.replace tbl ev.Span.ev_name (ev.Span.ev_dur_ns :: prev))
    (Span.events ());
  Hashtbl.fold
    (fun name durs acc ->
      let n = List.length durs in
      let total = List.fold_left Int64.add 0L durs in
      let sorted = List.sort compare (List.map Int64.to_float durs) in
      let p95 = Metrics.percentile sorted n 0.95 in
      {
        sr_name = name;
        sr_count = n;
        sr_total_ns = total;
        sr_mean_ns = Int64.to_float total /. float_of_int (max 1 n);
        sr_p95_ns = p95;
        sr_max_ns = List.fold_left Int64.max 0L durs;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare b.sr_total_ns a.sr_total_ns)

let pp_ns fmt ns =
  if ns >= 1e9 then Format.fprintf fmt "%8.3f s " (ns /. 1e9)
  else if ns >= 1e6 then Format.fprintf fmt "%8.3f ms" (ns /. 1e6)
  else if ns >= 1e3 then Format.fprintf fmt "%8.3f us" (ns /. 1e3)
  else Format.fprintf fmt "%8.0f ns" ns

(** Aligned per-phase table: count, total, mean, p95, max. *)
let pp_summary fmt () =
  let rows = summary () in
  if rows = [] then Format.fprintf fmt "(no spans recorded)@."
  else begin
    Format.fprintf fmt "%-34s %7s %11s %11s %11s %11s@." "phase" "count"
      "total" "mean" "p95" "max";
    List.iter
      (fun r ->
        Format.fprintf fmt "%-34s %7d %a %a %a %a@." r.sr_name r.sr_count
          pp_ns (Int64.to_float r.sr_total_ns)
          pp_ns r.sr_mean_ns pp_ns r.sr_p95_ns
          pp_ns (Int64.to_float r.sr_max_ns))
      rows;
    let d = Span.dropped_events () in
    if d > 0 then
      Format.fprintf fmt "(%d events dropped past the retention cap)@." d
  end

let summary_to_string () = Format.asprintf "%a" pp_summary ()

(** Machine-readable report: per-phase rows plus the metrics registry.
    This is what [bench/main.exe --json FILE] writes per experiment run. *)
let report_json () : string =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\"spans\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":%s,\"count\":%d,\"total_ns\":%Ld,\"mean_ns\":%s,\"p95_ns\":%s,\"max_ns\":%Ld}"
           (json_string r.sr_name) r.sr_count r.sr_total_ns
           (json_num r.sr_mean_ns) (json_num r.sr_p95_ns) r.sr_max_ns))
    (summary ());
  Buffer.add_string b "],\"metrics\":";
  Buffer.add_string b (Metrics.to_json ());
  Buffer.add_string b ",\"perf_profile\":";
  Buffer.add_string b (Expose.perf_profile_json ());
  Buffer.add_string b
    (Printf.sprintf ",\"dropped_events\":%d}" (Span.dropped_events ()));
  Buffer.contents b

let write_report (path : string) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (report_json ()))

(** Reset spans and metrics together (fresh run). *)
let reset_all () =
  Span.reset ();
  Metrics.reset ()
