(** Prometheus-style text exposition of the metrics registry.

    Renders the whole registry (from one consistent {!Metrics.snapshot})
    in the Prometheus text format (version 0.0.4): counters and gauges as
    single samples, histograms as summaries (quantile-labelled samples
    plus [_sum]/[_count]). Metric names are sanitized — dots become
    underscores, everything gets a [tytra_] prefix — so
    [dse.points_evaluated] exposes as [tytra_dse_points_evaluated].

    The same module renders the registry as stable sorted JSON
    ({!registry_json}, the [--metrics-json] payload — byte-identical
    across runs with identical counters, so CI can diff it) and the
    versioned [perf_profile] section ({!perf_profile_json}) that
    [scripts/perf_guard.py] gates on. *)

let prefix = "tytra_"

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]* *)
let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  prefix ^ Bytes.to_string b

(* Prometheus sample values: Go-style float formatting; integral values
   print without an exponent so greps stay simple. *)
let sample x =
  if Float.is_nan x then "NaN"
  else if x = infinity then "+Inf"
  else if x = neg_infinity then "-Inf"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

(** The whole registry in Prometheus text exposition format 0.0.4. *)
let render () : string =
  let b = Buffer.create 2048 in
  let meta name ty =
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name ty)
  in
  List.iter
    (fun (name, v) ->
      let pname = sanitize name in
      match (v : Metrics.snapshot_value) with
      | Metrics.SCounter c ->
          meta pname "counter";
          Buffer.add_string b (Printf.sprintf "%s %s\n" pname (sample c))
      | Metrics.SGauge g ->
          meta pname "gauge";
          Buffer.add_string b (Printf.sprintf "%s %s\n" pname (sample g))
      | Metrics.SHistogram h ->
          let s = Metrics.stats_of_histogram h in
          meta pname "summary";
          Buffer.add_string b
            (Printf.sprintf "%s{quantile=\"0.5\"} %s\n" pname (sample s.hs_p50));
          Buffer.add_string b
            (Printf.sprintf "%s{quantile=\"0.95\"} %s\n" pname (sample s.hs_p95));
          Buffer.add_string b
            (Printf.sprintf "%s_sum %s\n" pname (sample s.hs_sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count %d\n" pname s.hs_count))
    (Metrics.snapshot ());
  (* Self-accounting: exporters must be loss-accounted. *)
  Buffer.add_string b "# TYPE tytra_telemetry_dropped_spans counter\n";
  Buffer.add_string b
    (Printf.sprintf "tytra_telemetry_dropped_spans %d\n" (Span.dropped_events ()));
  Buffer.add_string b "# TYPE tytra_telemetry_events_emitted counter\n";
  Buffer.add_string b
    (Printf.sprintf "tytra_telemetry_events_emitted %d\n" (Events.emitted ()));
  Buffer.contents b

(** The registry as stable sorted JSON (same shape as
    [Metrics.to_json]; the [--metrics-json FILE] payload). *)
let registry_json () : string = Metrics.to_json ()

(** [write_registry_json path] — dump {!registry_json} to [path]. *)
let write_registry_json (path : string) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (registry_json ());
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Deterministic perf accounting                                       *)
(* ------------------------------------------------------------------ *)

(** Version of the [perf_profile] payload in bench [--json] reports.
    Bumped when the shape (not the counter set) changes. *)
let perf_profile_version = 1

(** Versioned machine-readable work-counter profile: every registered
    counter, sorted by name, values as exact integers where integral.
    This is what [scripts/perf_guard.py] gates on with exact equality. *)
let perf_profile_json () : string =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "{\"version\":%d,\"counters\":{" perf_profile_version);
  let first = ref true in
  List.iter
    (fun (name, v) ->
      match (v : Metrics.snapshot_value) with
      | Metrics.SCounter c ->
          if not !first then Buffer.add_char b ',';
          first := false;
          Buffer.add_string b (Jsenc.json_string name);
          Buffer.add_char b ':';
          Buffer.add_string b (Jsenc.json_num c)
      | _ -> ())
    (Metrics.snapshot ());
  Buffer.add_string b "}}";
  Buffer.contents b
