(** Structured event log: an append-only JSONL sink of typed records.

    Public interface of [Tytra_telemetry.Events]. Each significant action
    (sweep lifecycle, per-point DSE outcomes, checkpoint writes, span
    open/close, counter deltas) is appended as one self-contained JSON
    object per line; the file parses back losslessly through
    {!decode_line}. See [events.ml] for the concurrency and flushing
    contract.

    Schema versioning policy (DESIGN.md §12): every line carries
    [{"v":N}]. Additive field changes keep the version; renaming or
    removing a field, or changing a field's meaning, bumps it. Decoders
    must ignore unknown fields. *)

val schema_version : int
(** Version stamped into every line. *)

(** The typed event kinds, encoded one per line. *)
type event =
  | Sweep_started of { kernel : string; space : int; jobs : int; prune : bool }
  | Sweep_finished of {
      evaluated : int;
      pruned : int;
      failed : int;
      restored : int;
    }
  | Point_evaluated of {
      variant : string;
      ekit : float;
      valid : bool;
      cached : bool;
      dur_ns : int64;
    }
  | Point_pruned of { variant : string; reason : string }
  | Point_failed of { variant : string; error : string }
  | Checkpoint_written of { path : string; points : int }
  | Span_open of { name : string; depth : int }
  | Span_close of { name : string; dur_ns : int64; error : string option }
  | Counter_delta of { name : string; delta : float }
  | Shard_crash of { shard : int; pid : int; restarts : int }
      (** a serve shard died unexpectedly; [restarts] counts its
          consecutive restarts so far (additive in schema v1) *)

(** One emitted line: a gapless global sequence number, the {!Clock}
    timestamp and the emitting domain, around the event itself. *)
type record = {
  r_seq : int;      (** global emission order *)
  r_ts_ns : int64;  (** {!Clock} time at emission *)
  r_domain : int;   (** emitting domain id *)
  r_event : event;
}

(** {2 Sink lifecycle} *)

val open_file : string -> unit
(** [open_file path] — truncate [path] and start appending events to it.
    Any previously installed sink is closed first. *)

val open_memory : Buffer.t -> unit
(** [open_memory buf] — append events to an in-memory buffer (tests). *)

val close : unit -> unit
(** Flush and close the active sink; subsequent {!emit}s are no-ops. *)

val active : unit -> bool
(** Is a sink installed? The {!emit} fast-gate, readable by callers that
    want to avoid stealing an already-open sink. *)

val emit : event -> unit
(** Append one event to the active sink; a no-op without a sink. *)

val emitted : unit -> int
(** Lines successfully written since the sink was installed. *)

val write_errors : unit -> int
(** Lines lost to write errors since the sink was installed
    (loss-accounting twin of {!emitted}). *)

(** {2 Encoding and decoding} *)

val encode : record -> string
(** One JSONL line (no trailing newline) for the record. *)

val decode_line : string -> (record, string) result
(** Parse one JSONL line back into a {!record}. Inverse of {!encode} for
    every event this module emits; tolerates unknown extra fields (the
    schema policy allows additive growth). *)

val decode_lines : string -> record list * (int * string) list
(** Decode a whole JSONL document; returns records plus per-line
    [(line_number, error)] diagnostics. Blank lines are skipped. *)
