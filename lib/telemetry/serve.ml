(** Tiny single-threaded metrics snapshot server — the first brick of
    [tybec serve].

    Listens on a TCP address ([HOST:PORT], [:PORT], or [PORT]; port 0
    binds an ephemeral port) or a Unix socket ([unix:PATH]) and answers:

    - [GET /metrics]      → Prometheus text exposition ({!Expose.render})
    - [GET /metrics.json] → the registry as stable sorted JSON
    - [GET /healthz]      → [200 ok]

    Every response is rendered from a {!Metrics.snapshot} taken at
    request time, so a scrape never blocks the sweep: workers only hold
    the registry mutex for the duration of the copy, exactly as any
    other reader.

    The accept loop runs on its own domain and polls a stop flag through
    [Unix.select], so {!stop} returns promptly (≤ the poll interval) and
    the listening socket is closed deterministically. One request is
    served at a time — a scrape endpoint needs no more, and it keeps the
    server trivially correct. *)

type server = {
  sv_fd : Unix.file_descr;
  sv_addr : string;         (** bound address, e.g. "127.0.0.1:9464" *)
  sv_unix_path : string option;
  sv_stop : bool Atomic.t;
  sv_requests : int Atomic.t;
  sv_domain : unit Domain.t;
}

let bound_addr t = t.sv_addr
let requests_served t = Atomic.get t.sv_requests

(* --------------------------------------------------------------- *)
(* Request handling                                                 *)
(* --------------------------------------------------------------- *)

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let respond path =
  match path with
  | "/metrics" ->
      http_response ~status:"200 OK"
        ~content_type:"text/plain; version=0.0.4; charset=utf-8"
        (Expose.render ())
  | "/metrics.json" ->
      http_response ~status:"200 OK" ~content_type:"application/json"
        (Expose.registry_json () ^ "\n")
  | "/healthz" ->
      http_response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
  | _ ->
      http_response ~status:"404 Not Found" ~content_type:"text/plain"
        "not found\n"

(* Read until the end of the request head (blank line) or a small cap;
   clients slower than [timeout] get dropped rather than wedging the
   accept loop. *)
let read_request fd =
  let buf = Bytes.create 1024 in
  let b = Buffer.create 256 in
  let deadline = Unix.gettimeofday () +. 2.0 in
  let rec go () =
    if Buffer.length b > 8192 then Buffer.contents b
    else
      let head = Buffer.contents b in
      if
        String.length head >= 4
        && String.sub head (String.length head - 4) 4 = "\r\n\r\n"
      then head
      else
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then head
        else
          match Unix.select [ fd ] [] [] remaining with
          | [], _, _ -> head
          | _ -> (
              match Unix.read fd buf 0 (Bytes.length buf) with
              | 0 -> head
              | n ->
                  Buffer.add_subbytes b buf 0 n;
                  go ()
              | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _)
                ->
                  go ())
  in
  go ()

let request_path head =
  (* "GET /metrics HTTP/1.1\r\n..." → "/metrics" *)
  match String.index_opt head '\r' with
  | None -> None
  | Some eol -> (
      let line = String.sub head 0 eol in
      match String.split_on_char ' ' line with
      | meth :: path :: _ when String.uppercase_ascii meth = "GET" ->
          Some path
      | _ -> None)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  try go 0 with Unix.Unix_error _ -> ()

let handle_client fd requests =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let head = read_request fd in
      let body =
        match request_path head with
        | Some path -> respond path
        | None ->
            http_response ~status:"400 Bad Request" ~content_type:"text/plain"
              "bad request\n"
      in
      write_all fd body;
      Atomic.incr requests)

let accept_loop fd stop requests =
  let rec go () =
    if not (Atomic.get stop) then begin
      (match Unix.select [ fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept ~cloexec:true fd with
          | client, _ -> (
              try handle_client client requests
              with _ -> (try Unix.close client with Unix.Unix_error _ -> ()))
          | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

(* --------------------------------------------------------------- *)
(* Lifecycle                                                        *)
(* --------------------------------------------------------------- *)

let parse_tcp_addr addr =
  match String.rindex_opt addr ':' with
  | Some i ->
      let host = String.sub addr 0 i in
      let port = String.sub addr (i + 1) (String.length addr - i - 1) in
      let host = if host = "" then "127.0.0.1" else host in
      (host, int_of_string port)
  | None -> ("127.0.0.1", int_of_string addr)

(** [start ~addr] — bind, listen and serve on a background domain.
    [addr] is [HOST:PORT], [:PORT], [PORT] (TCP; port 0 = ephemeral) or
    [unix:PATH]. Raises [Failure] on an unusable address. *)
let start ~addr : server =
  let fd, bound, unix_path =
    if String.length addr > 5 && String.sub addr 0 5 = "unix:" then begin
      let path = String.sub addr 5 (String.length addr - 5) in
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind fd (Unix.ADDR_UNIX path)
       with e ->
         Unix.close fd;
         failwith
           (Printf.sprintf "cannot bind unix socket %s: %s" path
              (Printexc.to_string e)));
      (fd, addr, Some path)
    end
    else begin
      let host, port =
        try parse_tcp_addr addr
        with _ ->
          failwith
            (Printf.sprintf
               "bad --metrics-addr %S (expected HOST:PORT, :PORT, PORT or \
                unix:PATH)"
               addr)
      in
      let inet =
        try Unix.inet_addr_of_string host
        with _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } ->
              failwith (Printf.sprintf "cannot resolve host %S" host)
          | h -> h.Unix.h_addr_list.(0)
          | exception Not_found ->
              failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      (try Unix.bind fd (Unix.ADDR_INET (inet, port))
       with e ->
         Unix.close fd;
         failwith
           (Printf.sprintf "cannot bind %s: %s" addr (Printexc.to_string e)));
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (a, p) ->
            Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
        | _ -> addr
      in
      (fd, bound, None)
    end
  in
  Unix.listen fd 16;
  let stop = Atomic.make false in
  let requests = Atomic.make 0 in
  let dom = Domain.spawn (fun () -> accept_loop fd stop requests) in
  {
    sv_fd = fd;
    sv_addr = bound;
    sv_unix_path = unix_path;
    sv_stop = stop;
    sv_requests = requests;
    sv_domain = dom;
  }

(** Stop the accept loop, join its domain, close the socket. Idempotent
    enough for an [at_exit] hook. *)
let stop (t : server) : unit =
  if not (Atomic.exchange t.sv_stop true) then begin
    Domain.join t.sv_domain;
    (try Unix.close t.sv_fd with Unix.Unix_error _ -> ());
    match t.sv_unix_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | None -> ()
  end
