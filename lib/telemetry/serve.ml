(** Minimal HTTP/Unix-socket server: metrics snapshots and custom
    handlers.

    Listens on a TCP address ([HOST:PORT], [:PORT], or [PORT]; port 0
    binds an ephemeral port) or a Unix socket ([unix:PATH]). Out of the
    box it answers the metrics snapshot routes:

    - [GET /metrics]      → Prometheus text exposition ({!Expose.render})
    - [GET /metrics.json] → the registry as stable sorted JSON
    - [GET /healthz]      → [200 ok]

    A custom {!handler} is consulted first and falls through to those
    routes when it returns [None] — [tybec serve] mounts the engine
    request protocol this way and gets [/metrics] and [/healthz] for
    free.

    Every metrics response is rendered from a {!Metrics.snapshot} taken
    at request time, so a scrape never blocks the sweep: workers only
    hold the registry mutex for the duration of the copy, exactly as any
    other reader.

    Concurrency is chosen at {!start}:

    - [workers = 0] (the default): the accept loop serves one request at
      a time on its own domain — all a scrape endpoint needs, and it
      keeps the server trivially correct.
    - [workers = n > 0]: the accept loop only accepts, handing each
      connection to a bounded queue drained by [n] worker domains.
      When the queue is full the connection is answered [429 Too Many
      Requests] immediately from the accept domain (admission control:
      the queue bounds memory and tail latency, the 429 sheds load).

    {!stop} drains gracefully: the listening socket stops accepting,
    every connection already accepted is answered, then the domains are
    joined and the socket closed deterministically. The accept loop
    polls a stop flag through [Unix.select], so {!stop} returns promptly
    (≤ the poll interval + the in-flight work). *)

type request = {
  rq_meth : string;  (** "GET", "POST", ... (uppercased) *)
  rq_path : string;  (** path component of the request line *)
  rq_body : string;  (** request body ("" when absent) *)
}

type response = {
  rs_status : int;  (** 200, 400, 404, 429, 500, ... *)
  rs_content_type : string;
  rs_body : string;
}

type handler = request -> response option

(** An incrementally-written response: the head is sent first (status +
    content type, no Content-Length — the body is delimited by the
    connection close), then [st_write] runs with a chunk writer that
    pushes bytes to the peer immediately. Built for the JSONL progress
    frames of streaming [explore] requests (DESIGN.md §15). *)
type stream = {
  st_status : int;
  st_content_type : string;
  st_write : (string -> unit) -> unit;
}

type streamer = request -> stream option
(** Consulted before the plain {!handler}; [None] falls through. *)

type error_responder = int -> response option
(** Renders wire-level failures (400 malformed, 408 read timeout, 413
    oversized body, 429 shed load) into a custom response body —
    [tybec serve] answers them as typed protocol JSON. [None] falls
    back to the built-in plain-text rendering. *)

type server = {
  sv_fd : Unix.file_descr;
  sv_addr : string;         (* bound address, e.g. "127.0.0.1:9464" *)
  sv_unix_path : string option;
  sv_stop : bool Atomic.t;
  sv_requests : int Atomic.t;
  sv_rejected : int Atomic.t;
  sv_accept : unit Domain.t;
  sv_workers : unit Domain.t list;
  sv_queue : Unix.file_descr Queue.t;
  sv_queue_cap : int;
  sv_mutex : Mutex.t;
  sv_cond : Condition.t;
}

let bound_addr t = t.sv_addr
let requests_served t = Atomic.get t.sv_requests
let requests_rejected t = Atomic.get t.sv_rejected

(* --------------------------------------------------------------- *)
(* Request handling                                                 *)
(* --------------------------------------------------------------- *)

let reason_of_status = function
  | 200 -> "200 OK"
  | 400 -> "400 Bad Request"
  | 404 -> "404 Not Found"
  | 405 -> "405 Method Not Allowed"
  | 408 -> "408 Request Timeout"
  | 413 -> "413 Payload Too Large"
  | 429 -> "429 Too Many Requests"
  | 500 -> "500 Internal Server Error"
  | 503 -> "503 Service Unavailable"
  | c -> string_of_int c ^ " Status"

let http_response { rs_status; rs_content_type; rs_body } =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    (reason_of_status rs_status)
    rs_content_type (String.length rs_body) rs_body

(* Stream head: no Content-Length — the close delimits the body. *)
let http_stream_head status content_type =
  Printf.sprintf "HTTP/1.0 %s\r\nContent-Type: %s\r\nConnection: close\r\n\r\n"
    (reason_of_status status) content_type

let text status body = { rs_status = status; rs_content_type = "text/plain"; rs_body = body }

(** The built-in metrics snapshot routes; the fallback behind every
    custom handler. *)
let metrics_routes (rq : request) : response =
  match (rq.rq_meth, rq.rq_path) with
  | "GET", "/metrics" ->
      {
        rs_status = 200;
        rs_content_type = "text/plain; version=0.0.4; charset=utf-8";
        rs_body = Expose.render ();
      }
  | "GET", "/metrics.json" ->
      {
        rs_status = 200;
        rs_content_type = "application/json";
        rs_body = Expose.registry_json () ^ "\n";
      }
  | "GET", "/healthz" -> text 200 "ok\n"
  | _ -> text 404 "not found\n"

(* Hard caps: request heads stay small; bodies carry inline .tirl
   sources, so they get room but not unbounded room. *)
let max_head_bytes = 16_384
let max_body_bytes = 8 * 1024 * 1024

(* Read until [enough] says the buffer is complete, the peer closes, the
   cap is hit or the deadline passes; slow clients get dropped rather
   than wedging a worker. *)
let read_until fd ~deadline ~cap ~enough b =
  let buf = Bytes.create 4096 in
  let rec go () =
    if Buffer.length b > cap || enough (Buffer.contents b) then ()
    else
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then ()
      else
        match Unix.select [ fd ] [] [] remaining with
        | [], _, _ -> ()
        | _ -> (
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> ()
            | n ->
                Buffer.add_subbytes b buf 0 n;
                go ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) ->
                go ())
  in
  go ()

let head_end s =
  (* offset just past "\r\n\r\n", if the head is complete *)
  let n = String.length s in
  let rec find i =
    if i + 3 >= n then None
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some (i + 4)
    else find (i + 1)
  in
  find 0

let content_length head =
  (* case-insensitive scan of the header lines *)
  let lines = String.split_on_char '\n' head in
  List.fold_left
    (fun acc line ->
      match acc with
      | Some _ -> acc
      | None -> (
          match String.index_opt line ':' with
          | None -> None
          | Some i ->
              let k = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
              if k <> "content-length" then None
              else
                int_of_string_opt
                  (String.trim
                     (String.sub line (i + 1) (String.length line - i - 1)))))
    None lines

(** Read one full request (head + Content-Length body) from [fd].
    Returns [Error status] on malformed, oversize or timed-out input. *)
let read_request fd : (request, int) result =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let b = Buffer.create 512 in
  read_until fd ~deadline ~cap:max_head_bytes
    ~enough:(fun s -> head_end s <> None)
    b;
  let data = Buffer.contents b in
  match head_end data with
  | None -> Error (if String.length data = 0 then 408 else 400)
  | Some body_off -> (
      let head = String.sub data 0 body_off in
      let want = Option.value ~default:0 (content_length head) in
      if want < 0 || want > max_body_bytes then Error 413
      else begin
        read_until fd ~deadline ~cap:(body_off + want)
          ~enough:(fun s -> String.length s >= body_off + want)
          b;
        let data = Buffer.contents b in
        if String.length data < body_off + want then Error 400
        else
          match String.index_opt head '\r' with
          | None -> Error 400
          | Some eol -> (
              let line = String.sub head 0 eol in
              match String.split_on_char ' ' line with
              | meth :: path :: _ ->
                  Ok
                    {
                      rq_meth = String.uppercase_ascii meth;
                      rq_path = path;
                      rq_body = String.sub data body_off want;
                    }
              | _ -> Error 400)
      end)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  try go 0 with Unix.Unix_error _ -> ()

let error_response (error_responder : error_responder) status =
  match error_responder status with
  | Some r -> r
  | None -> text status (reason_of_status status ^ "\n")
  | exception _ -> text status (reason_of_status status ^ "\n")

let handle_client ?(streamer : streamer = fun _ -> None)
    ?(error_responder : error_responder = fun _ -> None) handler fd requests =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let count () =
        Atomic.incr requests;
        Metrics.incr "serve.requests"
      in
      match read_request fd with
      | Error status ->
          write_all fd (http_response (error_response error_responder status));
          count ()
      | Ok rq -> (
          match streamer rq with
          | Some st ->
              (* head first, then chunks as the producer emits them; a
                 peer that goes away mid-stream just loses bytes
                 (write_all swallows the error), the producer finishes
                 undisturbed *)
              write_all fd (http_stream_head st.st_status st.st_content_type);
              (try st.st_write (fun chunk -> write_all fd chunk)
               with e ->
                 write_all fd
                   ("{\"status\":\"error\",\"message\":"
                   ^ Printf.sprintf "%S" (Printexc.to_string e)
                   ^ "}\n"));
              count ()
          | exception e ->
              write_all fd
                (http_response
                   (text 500 ("internal error: " ^ Printexc.to_string e ^ "\n")));
              count ()
          | None ->
              let resp =
                match
                  match handler rq with
                  | Some r -> r
                  | None -> metrics_routes rq
                with
                | r -> r
                | exception e ->
                    text 500 ("internal error: " ^ Printexc.to_string e ^ "\n")
              in
              write_all fd (http_response resp);
              count ()))

(* --------------------------------------------------------------- *)
(* Accept loop and worker handoff                                   *)
(* --------------------------------------------------------------- *)

(* workers = 0: serve inline on the accept domain (the metrics-scrape
   configuration). workers > 0: enqueue for the worker domains, shedding
   load with a 429 when the bounded queue is full. *)
let accept_loop fd stop handler ~streamer ~error_responder ~inline ~queue
    ~queue_cap ~mutex ~cond ~requests ~rejected =
  let rec go () =
    if not (Atomic.get stop) then begin
      (match Unix.select [ fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept ~cloexec:true fd with
          | client, _ ->
              if inline then (
                try
                  handle_client ~streamer ~error_responder handler client
                    requests
                with _ -> (
                  try Unix.close client with Unix.Unix_error _ -> ()))
              else begin
                Mutex.lock mutex;
                let full = Queue.length queue >= queue_cap in
                if not full then Queue.push client queue;
                Mutex.unlock mutex;
                if full then begin
                  Atomic.incr rejected;
                  Metrics.incr "serve.rejected";
                  (try
                     write_all client
                       (http_response (error_response error_responder 429))
                   with _ -> ());
                  try Unix.close client with Unix.Unix_error _ -> ()
                end
                else Condition.signal cond
              end
          | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

(* Workers block on the condition until work or shutdown; on shutdown
   they drain whatever the accept loop already admitted (the graceful-
   drain contract: every accepted connection is answered). *)
let worker_loop handler ~streamer ~error_responder ~stop ~queue ~mutex ~cond
    ~requests =
  let rec go () =
    Mutex.lock mutex;
    let rec await () =
      if Queue.is_empty queue then
        if Atomic.get stop then None
        else begin
          Condition.wait cond mutex;
          await ()
        end
      else Some (Queue.pop queue)
    in
    let job = await () in
    Mutex.unlock mutex;
    match job with
    | None -> ()
    | Some client ->
        (try handle_client ~streamer ~error_responder handler client requests
         with _ -> (try Unix.close client with Unix.Unix_error _ -> ()));
        go ()
  in
  go ()

(* --------------------------------------------------------------- *)
(* Lifecycle                                                        *)
(* --------------------------------------------------------------- *)

let parse_tcp_addr addr =
  match String.rindex_opt addr ':' with
  | Some i ->
      let host = String.sub addr 0 i in
      let port = String.sub addr (i + 1) (String.length addr - i - 1) in
      let host = if host = "" then "127.0.0.1" else host in
      (host, int_of_string port)
  | None -> ("127.0.0.1", int_of_string addr)

let start ?(handler : handler = fun _ -> None)
    ?(streamer : streamer = fun _ -> None)
    ?(error_responder : error_responder = fun _ -> None) ?(workers = 0)
    ?(queue_cap = 64) ?(reuseport = false) ?listen_fd ~addr () : server =
  let fd, bound, unix_path =
    match listen_fd with
    | Some fd ->
        (* Inherited listening socket (multi-shard fallback mode): it is
           already bound and listening; several shards may accept on the
           same fd, so it must be non-blocking — select can report it
           readable in every shard while only one accept succeeds. *)
        Unix.set_nonblock fd;
        let bound =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (a, p) ->
              Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
          | Unix.ADDR_UNIX p -> "unix:" ^ p
          | exception Unix.Unix_error _ -> addr
        in
        (fd, bound, None)
    | None ->
    if String.length addr > 5 && String.sub addr 0 5 = "unix:" then begin
      let path = String.sub addr 5 (String.length addr - 5) in
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind fd (Unix.ADDR_UNIX path)
       with e ->
         Unix.close fd;
         failwith
           (Printf.sprintf "cannot bind unix socket %s: %s" path
              (Printexc.to_string e)));
      (fd, addr, Some path)
    end
    else begin
      let host, port =
        try parse_tcp_addr addr
        with _ ->
          failwith
            (Printf.sprintf
               "bad address %S (expected HOST:PORT, :PORT, PORT or unix:PATH)"
               addr)
      in
      let inet =
        try Unix.inet_addr_of_string host
        with _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } ->
              failwith (Printf.sprintf "cannot resolve host %S" host)
          | h -> h.Unix.h_addr_list.(0)
          | exception Not_found ->
              failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      if reuseport then begin
        (* Shared-nothing sharding: every shard binds the same port and
           the kernel load-balances accepts. Raises on kernels without
           SO_REUSEPORT — {!Shards} probes support before asking. *)
        try Unix.setsockopt fd Unix.SO_REUSEPORT true
        with e ->
          Unix.close fd;
          failwith ("SO_REUSEPORT unsupported: " ^ Printexc.to_string e)
      end;
      (try Unix.bind fd (Unix.ADDR_INET (inet, port))
       with e ->
         Unix.close fd;
         failwith
           (Printf.sprintf "cannot bind %s: %s" addr (Printexc.to_string e)));
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (a, p) ->
            Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
        | _ -> addr
      in
      (fd, bound, None)
    end
  in
  if listen_fd = None then Unix.listen fd (max 16 queue_cap);
  let stop = Atomic.make false in
  let requests = Atomic.make 0 in
  let rejected = Atomic.make 0 in
  let queue = Queue.create () in
  let mutex = Mutex.create () in
  let cond = Condition.create () in
  let inline = workers <= 0 in
  let accept =
    Domain.spawn (fun () ->
        accept_loop fd stop handler ~streamer ~error_responder ~inline ~queue
          ~queue_cap ~mutex ~cond ~requests ~rejected)
  in
  let worker_domains =
    List.init (max 0 workers) (fun _ ->
        Domain.spawn (fun () ->
            worker_loop handler ~streamer ~error_responder ~stop ~queue ~mutex
              ~cond ~requests))
  in
  {
    sv_fd = fd;
    sv_addr = bound;
    sv_unix_path = unix_path;
    sv_stop = stop;
    sv_requests = requests;
    sv_rejected = rejected;
    sv_accept = accept;
    sv_workers = worker_domains;
    sv_queue = queue;
    sv_queue_cap = queue_cap;
    sv_mutex = mutex;
    sv_cond = cond;
  }

let stop (t : server) : unit =
  if not (Atomic.exchange t.sv_stop true) then begin
    (* 1. stop admitting: join the accept loop, close the socket *)
    Domain.join t.sv_accept;
    (try Unix.close t.sv_fd with Unix.Unix_error _ -> ());
    (* 2. drain: wake every worker; they answer whatever was already
       accepted before exiting on the empty queue *)
    Mutex.lock t.sv_mutex;
    Condition.broadcast t.sv_cond;
    Mutex.unlock t.sv_mutex;
    List.iter Domain.join t.sv_workers;
    match t.sv_unix_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | None -> ()
  end
