(** Process-wide counters, gauges and histograms.

    A single registry keyed by metric name. Like spans, every mutation is
    gated on {!Control.enabled}: disabled calls cost one boolean check.
    Hot loops (the techmap annealer, the cycle simulator) accumulate
    locally and publish aggregates once per run, so even enabled
    telemetry never adds per-iteration work on those paths.

    Domain-safety: the registry is shared by all domains of the parallel
    DSE pool ({!Tytra_exec.Pool}), so *every* access — mutations and
    reads alike — takes the registry mutex. Reads work on a snapshot
    taken under the lock, then format/sort outside it, so dumps never
    observe a metric mid-update and never deadlock against a mutating
    worker.

    Histograms keep exact samples up to a cap (for exact percentiles in
    tests and small sweeps) and degrade to count/sum/min/max beyond it. *)

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_samples : float list;  (** newest first; capped *)
  mutable h_kept : int;
}

type metric =
  | Counter of float ref
  | Gauge of float ref
  | Histogram of histogram

let max_samples = 65_536

let mutex = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let reset () =
  Mutex.lock mutex;
  Hashtbl.reset registry;
  Mutex.unlock mutex

let find_or_add name mk =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
      let m = mk () in
      Hashtbl.replace registry name m;
      m

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)
(* ------------------------------------------------------------------ *)

(* Counter mutations mirror into the structured event log when a sink is
   installed (Events has its own lock; emit outside the registry mutex). *)
let emit_delta name delta =
  if Events.active () then
    Events.emit (Events.Counter_delta { name; delta })

(** [incr ?by name] — add [by] (default 1) to counter [name]. *)
let incr ?(by = 1) name =
  if !Control.enabled then begin
    Mutex.lock mutex;
    (match find_or_add name (fun () -> Counter (ref 0.0)) with
    | Counter c -> c := !c +. float_of_int by
    | _ -> ());
    Mutex.unlock mutex;
    emit_delta name (float_of_int by)
  end

(** [add name x] — add float [x] to counter [name]. *)
let add name x =
  if !Control.enabled then begin
    Mutex.lock mutex;
    (match find_or_add name (fun () -> Counter (ref 0.0)) with
    | Counter c -> c := !c +. x
    | _ -> ());
    Mutex.unlock mutex;
    emit_delta name x
  end

(** [set name x] — set gauge [name] to [x]. *)
let set name x =
  if !Control.enabled then begin
    Mutex.lock mutex;
    (match find_or_add name (fun () -> Gauge (ref 0.0)) with
    | Gauge g -> g := x
    | _ -> ());
    Mutex.unlock mutex
  end

(** [observe name x] — record observation [x] into histogram [name]. *)
let observe name x =
  if !Control.enabled then begin
    Mutex.lock mutex;
    (match
       find_or_add name (fun () ->
           Histogram
             {
               h_count = 0;
               h_sum = 0.0;
               h_min = infinity;
               h_max = neg_infinity;
               h_samples = [];
               h_kept = 0;
             })
     with
    | Histogram h ->
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. x;
        if x < h.h_min then h.h_min <- x;
        if x > h.h_max then h.h_max <- x;
        if h.h_kept < max_samples then begin
          h.h_samples <- x :: h.h_samples;
          h.h_kept <- h.h_kept + 1
        end
    | _ -> ());
    Mutex.unlock mutex
  end

(* ------------------------------------------------------------------ *)
(* Queries (always available, independent of the enabled switch)       *)
(* ------------------------------------------------------------------ *)

type histogram_stats = {
  hs_count : int;
  hs_sum : float;
  hs_mean : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p95 : float;
}

(* Nearest-rank percentile: rank ceil(q*n), 1-based. The product q*n can
   land a hair above an exact integer in floating point (0.95 *. 20. =
   19.000000000000004), which would push ceil one rank too high — the
   epsilon guard keeps exact ranks exact. *)
let percentile sorted n q =
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil ((q *. float_of_int n) -. 1e-9)) in
    let idx = min (n - 1) (rank - 1) in
    List.nth sorted (max 0 idx)

(* Immutable copy of one metric, taken under the lock; everything
   downstream (sorting, percentile math, formatting) runs lock-free. *)
type snapshot_value =
  | SCounter of float
  | SGauge of float
  | SHistogram of histogram  (* a field-copied record; h_samples shared
                                structurally but immutable as a list *)

let snap_one = function
  | Counter c -> SCounter !c
  | Gauge g -> SGauge !g
  | Histogram h ->
      SHistogram
        {
          h_count = h.h_count;
          h_sum = h.h_sum;
          h_min = h.h_min;
          h_max = h.h_max;
          h_samples = h.h_samples;
          h_kept = h.h_kept;
        }

(** Consistent point-in-time copy of the whole registry, sorted by
    name. The only read path — all queries and dumps go through it. *)
let snapshot () : (string * snapshot_value) list =
  Mutex.lock mutex;
  let l = Hashtbl.fold (fun k m acc -> (k, snap_one m) :: acc) registry [] in
  Mutex.unlock mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) l

let snap_find name =
  Mutex.lock mutex;
  let r = Option.map snap_one (Hashtbl.find_opt registry name) in
  Mutex.unlock mutex;
  r

let stats_of_histogram (h : histogram) : histogram_stats =
  let sorted = List.sort compare h.h_samples in
  let n = h.h_kept in
  {
    hs_count = h.h_count;
    hs_sum = h.h_sum;
    hs_mean = (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count);
    hs_min = (if h.h_count = 0 then 0.0 else h.h_min);
    hs_max = (if h.h_count = 0 then 0.0 else h.h_max);
    hs_p50 = percentile sorted n 0.50;
    hs_p95 = percentile sorted n 0.95;
  }

let counter_value name : float option =
  match snap_find name with Some (SCounter c) -> Some c | _ -> None

let gauge_value name : float option =
  match snap_find name with Some (SGauge g) -> Some g | _ -> None

let histogram_stats name : histogram_stats option =
  match snap_find name with
  | Some (SHistogram h) -> Some (stats_of_histogram h)
  | _ -> None

(** All registered metric names, sorted. *)
let names () : string list =
  Mutex.lock mutex;
  let l = Hashtbl.fold (fun k _ acc -> k :: acc) registry [] in
  Mutex.unlock mutex;
  List.sort compare l

(* ------------------------------------------------------------------ *)
(* Dumps                                                               *)
(* ------------------------------------------------------------------ *)

(* %.17g round-trips doubles; trim the common integral case for humans *)
let pp_num fmt x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Format.fprintf fmt "%.0f" x
  else Format.fprintf fmt "%.6g" x

(** Plain-text dump of every registered metric, sorted by name. *)
let pp_text fmt () =
  List.iter
    (fun (name, v) ->
      match v with
      | SCounter c -> Format.fprintf fmt "counter  %-42s %a@." name pp_num c
      | SGauge g -> Format.fprintf fmt "gauge    %-42s %a@." name pp_num g
      | SHistogram h ->
          let s = stats_of_histogram h in
          Format.fprintf fmt
            "hist     %-42s count=%d mean=%a min=%a p50=%a p95=%a max=%a@."
            name s.hs_count pp_num s.hs_mean pp_num s.hs_min pp_num
            s.hs_p50 pp_num s.hs_p95 pp_num s.hs_max)
    (snapshot ())

let to_text () = Format.asprintf "%a" pp_text ()

(* JSON encoding lives in {!Jsenc}; aliased here for existing callers. *)
let json_string = Jsenc.json_string
let json_num = Jsenc.json_num

(** JSON dump: {"counters":{..},"gauges":{..},"histograms":{..}}. *)
let to_json () : string =
  let snap = snapshot () in
  let b = Buffer.create 1024 in
  let cats =
    [
      ("counters",
       function SCounter c -> Some (json_num c) | _ -> None);
      ("gauges",
       function SGauge g -> Some (json_num g) | _ -> None);
      ("histograms",
       function
       | SHistogram h ->
           let s = stats_of_histogram h in
           Some
             (Printf.sprintf
                "{\"count\":%d,\"sum\":%s,\"mean\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p95\":%s}"
                s.hs_count (json_num s.hs_sum) (json_num s.hs_mean)
                (json_num s.hs_min) (json_num s.hs_max)
                (json_num s.hs_p50) (json_num s.hs_p95))
       | _ -> None);
    ]
  in
  Buffer.add_char b '{';
  List.iteri
    (fun i (cat, get) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":{" cat);
      let first = ref true in
      List.iter
        (fun (name, v) ->
          match get v with
          | Some v ->
              if not !first then Buffer.add_char b ',';
              first := false;
              Buffer.add_string b (json_string name ^ ":" ^ v)
          | None -> ())
        snap;
      Buffer.add_char b '}')
    cats;
  Buffer.add_char b '}';
  Buffer.contents b
