(** Minimal HTTP/Unix-socket server: metrics snapshots and custom
    handlers.

    Public interface of [Tytra_telemetry.Serve]. See [serve.ml] for the
    accept-loop, worker-handoff and drain contracts. Out of the box a
    server answers [GET /metrics], [GET /metrics.json] and
    [GET /healthz] from the live registry; a custom {!handler} is
    consulted first and falls through to those routes when it returns
    [None]. *)

(** One parsed HTTP request, as passed to a {!handler}. *)
type request = {
  rq_meth : string;  (** "GET", "POST", ... (uppercased) *)
  rq_path : string;  (** path component of the request line *)
  rq_body : string;  (** request body ("" when absent) *)
}

(** What a {!handler} answers with. *)
type response = {
  rs_status : int;  (** 200, 400, 404, 429, 500, ... *)
  rs_content_type : string;
  rs_body : string;
}

type handler = request -> response option
(** [None] falls through to the built-in metrics routes (and their 404).
    An exception from a handler is answered as a 500, never crashes a
    worker. *)

(** An incrementally-written response: the head goes out first (status +
    content type, {e no} Content-Length — the connection close delimits
    the body), then [st_write] runs with a chunk writer that pushes
    bytes to the peer immediately. Built for the JSONL progress frames
    of streaming [explore] requests (DESIGN.md §15). *)
type stream = {
  st_status : int;
  st_content_type : string;
  st_write : (string -> unit) -> unit;
}

type streamer = request -> stream option
(** Consulted before the plain {!handler}; [None] falls through. An
    exception raised before the head is written is answered as a 500;
    after the head, an error line is appended and the stream closed. *)

type error_responder = int -> response option
(** Renders wire-level failures into a custom response body. Consulted
    with the HTTP status the server chose — 400 (malformed request),
    408 (read timeout, e.g. a slow-loris client), 413 (body over
    {!max_body_bytes}), 429 (queue full) — before the built-in
    plain-text rendering; [None] (and any exception) falls back to it.
    [tybec serve] uses this to answer wire-level failures as typed
    protocol JSON. *)

val max_body_bytes : int
(** Hard cap on request-body size (8 MiB); a larger Content-Length is
    answered with status 413 without reading the body. *)

type server
(** A running server: listening socket, accept domain and (optionally)
    worker domains. Opaque — lifecycle goes through {!start}/{!stop}. *)

val start :
  ?handler:handler ->
  ?streamer:streamer ->
  ?error_responder:error_responder ->
  ?workers:int ->
  ?queue_cap:int ->
  ?reuseport:bool ->
  ?listen_fd:Unix.file_descr ->
  addr:string ->
  unit ->
  server
(** [start ?handler ?streamer ?error_responder ?workers ?queue_cap
    ?reuseport ?listen_fd ~addr ()] — bind, listen and serve on
    background domains. [addr] is
    [HOST:PORT], [:PORT], [PORT] (TCP; port 0 = ephemeral) or
    [unix:PATH]. Raises [Failure] on an unusable address.

    With [workers = 0] (default) the accept loop serves one request at a
    time — the metrics-scrape configuration. With [workers = n > 0],
    accepted connections are handed to a bounded queue ([queue_cap],
    default 64) drained by [n] worker domains; when the queue is full
    the connection is answered [429 Too Many Requests] immediately
    (admission control).

    [reuseport] (TCP only) sets [SO_REUSEPORT] before binding so several
    shard processes can bind the same port and let the kernel balance
    accepts; raises [Failure] on kernels without it. [listen_fd] skips
    bind/listen entirely and accepts on an inherited, already-listening
    socket (the sharding fallback when [SO_REUSEPORT] is unavailable or
    the port is ephemeral); the fd is switched to non-blocking since
    several processes may race on one accept. *)

val stop : server -> unit
(** Graceful drain: stop accepting, answer every connection already
    accepted, join all domains, close the socket (and unlink a Unix
    socket path). Idempotent enough for an [at_exit] hook. *)

val bound_addr : server -> string
(** The bound address, e.g. "127.0.0.1:9464" — with port 0, the
    ephemeral port actually assigned. *)

val requests_served : server -> int
(** Connections answered (including error responses) since {!start}. *)

val requests_rejected : server -> int
(** Connections shed with a 429 because the queue was full. *)
