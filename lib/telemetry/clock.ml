(** Time source for the telemetry layer.

    The default source is the OS monotonic clock (CLOCK_MONOTONIC via the
    bechamel stubs, nanosecond resolution, immune to wall-clock steps).
    Tests inject a deterministic source with {!set_source} so span
    durations and orderings are exactly reproducible. *)

type source = unit -> int64
(** A clock: returns a monotonically non-decreasing time in nanoseconds. *)

let monotonic : source = Monotonic_clock.now

let source = ref monotonic

(** [set_source s] — replace the clock (tests; restore with
    {!use_monotonic}). *)
let set_source s = source := s

let use_monotonic () = source := monotonic

(** Current time in nanoseconds from the active source. *)
let now_ns () : int64 = !source ()

(** [counting ?start ?step ()] — a deterministic clock for tests: the
    first reading is [start], each subsequent reading advances by
    [step] nanoseconds. *)
let counting ?(start = 0L) ?(step = 1000L) () : source =
  let t = ref (Int64.sub start step) in
  fun () ->
    t := Int64.add !t step;
    !t
