(** Versioned, digest-validated checkpoint files.

    A checkpoint makes an interrupted sweep resumable, so the format is
    designed around the two ways resumption goes wrong:

    - {e the file is garbage} — the process died mid-write, the disk
      filled up, the user pointed [--resume] at the wrong file. Writes
      go to a temp file first and land with an atomic [Sys.rename], so
      a reader only ever sees complete checkpoints; the payload is
      digest-checked on load anyway, and every failure mode comes back
      as [Error _], never an exception.
    - {e the file is stale} — it was written by an incompatible build
      or for a different workload. The header carries a format version,
      a payload [kind], and a caller-supplied [meta] digest (the DSE
      layer derives it from program + device + sweep parameters); any
      mismatch is a load error with a message saying which field
      disagreed.

    The payload itself is [Marshal]ed OCaml data — checkpoints are a
    crash-recovery mechanism for the same binary, not an interchange
    format, and the meta digest is what keeps a checkpoint from being
    fed to a sweep it does not belong to. *)

let magic = "TYTRA-CKPT"
let version = 1

(** [save ~path ~kind ~meta v] — atomically write [v] as a checkpoint:
    marshal to a sibling temp file, then [Sys.rename] over [path], so a
    concurrent or crashed writer can never leave a half-written
    checkpoint at [path]. *)
let save ~path ~kind ~meta v =
  let payload = Marshal.to_string v [] in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "%s %d %s\n" magic version kind;
      Printf.fprintf oc "meta %s\n" meta;
      Printf.fprintf oc "payload %s %d\n" (Digest.to_hex (Digest.string payload))
        (String.length payload);
      output_string oc payload);
  Sys.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Split [s] at the first newline: (line, rest). *)
let cut_line s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

(** [load ~path ~kind ~meta] — read a checkpoint back, validating magic,
    version, [kind], [meta] and the payload digest before unmarshalling.
    Every failure — missing file, truncation, corruption, an
    incompatible or stale checkpoint — is an [Error] with a diagnostic,
    never an exception. *)
let load ~path ~kind ~meta =
  let fail fmt = Printf.ksprintf (fun m -> Error (path ^ ": " ^ m)) fmt in
  match read_file path with
  | exception Sys_error m -> Error m
  | exception End_of_file -> fail "truncated checkpoint"
  | contents -> (
      let header, rest = cut_line contents in
      match String.split_on_char ' ' header with
      | [ m; v; k ] when m = magic -> (
          if v <> string_of_int version then
            fail "checkpoint format version %s (this build reads %d)" v
              version
          else if k <> kind then
            fail "checkpoint holds %S, expected %S" k kind
          else
            let meta_line, rest = cut_line rest in
            match String.split_on_char ' ' meta_line with
            | [ "meta"; m ] when m = meta -> (
                let payload_line, payload = cut_line rest in
                match String.split_on_char ' ' payload_line with
                | [ "payload"; digest; len ] -> (
                    if int_of_string_opt len <> Some (String.length payload)
                    then fail "truncated payload"
                    else if
                      digest <> Digest.to_hex (Digest.string payload)
                    then fail "payload digest mismatch (corrupt checkpoint)"
                    else
                      match Marshal.from_string payload 0 with
                      | v -> Ok v
                      | exception _ -> fail "unreadable payload")
                | _ -> fail "malformed payload header")
            | [ "meta"; _ ] ->
                fail
                  "checkpoint belongs to a different program/device/sweep \
                   configuration"
            | _ -> fail "malformed meta header")
      | _ -> fail "not a TyTra checkpoint")
