(** Design-space exploration: generate variants by type transformation,
    lower each to TyTra-IR, cost it, and select — "the compiler costs the
    variants" of paper Fig 1, with the selection policy of §VI-A: as many
    lanes as the resources allow, or until the IO bandwidth saturates.

    The evaluation loop runs through {!Tytra_exec}: points fan out over a
    Domain pool ([config.jobs]) and every (program, variant, device,
    calibration, form, nki) evaluation is memoized in a process-wide LRU
    cache, so repeated sweeps — guided search, cross-device exploration,
    the bench harness — cost one lowering per distinct point.

    With [config.prune] on (the default), the sweep does not even lower
    most of the space: after evaluating the cheap baselines (Seq, Pipe)
    it computes admissible {!Tytra_cost.Bounds} for every replicated
    candidate and skips those that provably cannot fit the device or
    cannot beat an already-evaluated incumbent. Pruning is {e exact}:
    {!best} and {!pareto} over the surviving points equal those of the
    exhaustive sweep (see [sweep_many] below for the invariant). *)

open Tytra_front

module Log = (val Logs.src_log (Logs.Src.create "tytra.dse"))

(** One evaluated design point. *)
type point = {
  dp_variant : Transform.variant;
  dp_design : Tytra_ir.Ast.design;
  dp_report : Tytra_cost.Report.t;
}

let ekit (p : point) = p.dp_report.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_ekit
let valid (p : point) = p.dp_report.Tytra_cost.Report.rp_valid

let area (p : point) =
  p.dp_report.Tytra_cost.Report.rp_estimate.Tytra_cost.Resource_model.est_usage
    .Tytra_device.Resources.aluts

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

(** Everything a sweep is parameterized by, as one value. *)
type config = {
  device : Tytra_device.Device.t;   (** target FPGA platform *)
  calib : Tytra_device.Bandwidth.calib option;
      (** bandwidth calibration; [None] = the device's built-in one *)
  form : Tytra_cost.Throughput.form;  (** memory-execution form (Fig 6) *)
  nki : int;                        (** kernel-instance repetitions *)
  max_lanes : int;                  (** lane-count bound of the space *)
  max_vec : int;                    (** vectorization bound of the space *)
  jobs : int;                       (** evaluation-pool domains; 1 = seq *)
  use_cache : bool;                 (** memoize point evaluations *)
  prune : bool;                     (** bound-based pruning of the space *)
  fast_ir : bool;
      (** derive replicated variants from a pre-validated template
          ({!Tytra_front.Lower.derive}); also gated by the global
          {!Tytra_ir.Fastpath} toggle *)
  max_attempts : int;     (** attempts per point (1 = no retry) *)
  retry_delay_s : float;  (** base backoff delay between attempts *)
  deadline_s : float option;
      (** cooperative per-point deadline; [None] = unbounded *)
  fail_fast : bool;
      (** [true]: first point failure (after retries) aborts the sweep;
          [false]: failed points are quarantined into [sw_errors] *)
  checkpoint : string option;
      (** write a resumable checkpoint of the evaluated points here *)
  checkpoint_every : int;  (** points evaluated between checkpoint writes *)
  on_progress : (progress -> unit) option;
      (** called on the sweep's driving domain after every evaluation
          wave (and every checkpoint chunk) with cumulative coverage;
          the [--progress] live line renders from this *)
  place_mode : Tytra_sim.Techmap.place_mode option;
      (** placement engine for any technology mapping performed under
          this sweep; [None] = the ambient process-wide mode
          ({!Tytra_sim.Techmap.place_mode}) *)
}

(** Cumulative sweep coverage, as passed to [config.on_progress].
    Aggregated over every config of a {!sweep_many} batch. *)
and progress = {
  pr_space : int;      (** variants enumerated across all configs *)
  pr_evaluated : int;  (** full evaluations completed so far *)
  pr_pruned : int;     (** candidates skipped by bounds so far *)
  pr_failed : int;     (** candidates quarantined so far *)
  pr_restored : int;   (** points adopted from a checkpoint *)
}

let default_config : config =
  {
    device = Tytra_device.Device.stratixv_gsd8;
    calib = None;
    form = Tytra_cost.Throughput.FormB;
    nki = 1;
    max_lanes = 16;
    max_vec = 1;
    jobs = 1;
    use_cache = true;
    prune = true;
    fast_ir = true;
    max_attempts = 1;
    retry_delay_s = 0.05;
    deadline_s = None;
    fail_fast = true;
    checkpoint = None;
    checkpoint_every = 32;
    on_progress = None;
    place_mode = None;
  }

(* ------------------------------------------------------------------ *)
(* Memoized point evaluation                                           *)
(* ------------------------------------------------------------------ *)

(* Lower + cost results are pure functions of the content key below, so
   one process-wide cache serves every entry point. 4096 entries hold a
   full 16-lane × 3-form × all-device sweep several times over. *)
let cache : (Tytra_ir.Ast.design * Tytra_cost.Report.t) Tytra_exec.Cache.t =
  Tytra_exec.Cache.create ~metrics_prefix:"dse.cache" ~capacity:4096 ()

(* Pre-validated lowering templates, one per program digest: the shared
   PE body is compiled and fully validated once per sweep; every
   replicated variant of the same program is then derived from it and
   only its wiring delta re-checked. Templates are small (one instruction
   list), so a handful of entries covers any realistic sweep mix. *)
let template_cache : Tytra_front.Lower.template Tytra_exec.Cache.t =
  Tytra_exec.Cache.create ~metrics_prefix:"dse.template_cache" ~capacity:64 ()

let cache_stats () = Tytra_exec.Cache.stats cache
let cache_hit_rate () = Tytra_exec.Cache.hit_rate cache
let clear_cache () =
  Tytra_exec.Cache.clear cache;
  Tytra_exec.Cache.reset_stats cache;
  Tytra_exec.Cache.clear template_cache;
  Tytra_exec.Cache.reset_stats template_cache

(* Expr programs and calibrations are pure data, so a digest of their
   marshalled bytes is a sound content key. *)
let program_digest (prog : Expr.program) = Tytra_exec.Cache.digest_marshal prog

let calib_digest = function
  | None -> "device-default"
  | Some c -> Tytra_exec.Cache.digest_marshal c

let template_for ~prog_key (prog : Expr.program) : Lower.template =
  Tytra_exec.Cache.find_or_add template_cache
    ~key:(Tytra_exec.Cache.digest_key [ prog_key; "lower-template" ])
    (fun () -> Lower.template prog)

(* Lower one variant: derived from the program's template on the fast
   path, full re-lowering + re-validation otherwise. *)
let lower_point ~(config : config) ~prog_key prog v =
  if config.fast_ir && Tytra_ir.Fastpath.enabled () then begin
    let d = Lower.derive (template_for ~prog_key prog) v in
    Tytra_telemetry.Metrics.incr "dse.points_derived";
    d
  end
  else Lower.lower prog v

let point_key ~(config : config) ~prog_key v =
  Tytra_exec.Cache.digest_key
    [
      prog_key;
      Transform.to_string v;
      config.device.Tytra_device.Device.dev_name;
      calib_digest config.calib;
      Tytra_cost.Throughput.form_to_string config.form;
      string_of_int config.nki;
    ]

(* Evaluate one variant under a per-point span: lane count, form and the
   resulting EKIT become trace attributes, so a sweep reads as a row of
   "dse.point" slices in Perfetto (one lane per pool domain). *)
let eval_point ~(config : config) ~prog_key prog v =
  Tytra_telemetry.Span.with_ ~name:"dse.point"
    ~attrs:
      [ ("variant", Tytra_telemetry.Span.Str (Transform.to_string v));
        ("pes", Tytra_telemetry.Span.Int (Transform.pes v));
        ("form",
         Tytra_telemetry.Span.Str
           (Tytra_cost.Throughput.form_to_string config.form));
      ]
  @@ fun () ->
  let computed = ref false in
  let compute () =
    computed := true;
    let d = lower_point ~config ~prog_key prog v in
    let report =
      Tytra_cost.Report.evaluate ~device:config.device ?calib:config.calib
        ~form:config.form ~nki:config.nki d
    in
    (d, report)
  in
  (* Flight-recorder / event-log detail is gated separately from plain
     metrics: with neither armed, this adds two ref cells and a bool. *)
  let observe = Flightrec.is_enabled () || Tytra_telemetry.Events.active () in
  let t0 = if observe then Tytra_telemetry.Clock.now_ns () else 0L in
  let d, report =
    if config.use_cache then
      Tytra_exec.Cache.find_or_add cache ~key:(point_key ~config ~prog_key v)
        compute
    else compute ()
  in
  let p = { dp_variant = v; dp_design = d; dp_report = report } in
  Tytra_telemetry.Metrics.incr "dse.points_evaluated";
  Tytra_telemetry.Metrics.observe "dse.point.ekit" (ekit p);
  if observe then begin
    let dur_ns =
      Int64.max 0L (Int64.sub (Tytra_telemetry.Clock.now_ns ()) t0)
    in
    let cached = config.use_cache && not !computed in
    let variant = Transform.to_string v in
    if Flightrec.is_enabled () then
      Flightrec.note ~variant
        (Flightrec.Evaluated
           {
             fo_ekit = ekit p;
             fo_valid = valid p;
             fo_cached = cached;
             fo_dur_ns = dur_ns;
           });
    if Tytra_telemetry.Events.active () then
      Tytra_telemetry.Events.emit
        (Tytra_telemetry.Events.Point_evaluated
           { variant; ekit = ekit p; valid = valid p; cached; dur_ns })
  end;
  p

(* ------------------------------------------------------------------ *)
(* Bound-based pruned sweep                                            *)
(* ------------------------------------------------------------------ *)

(** Why a candidate was skipped without lowering. *)
type prune_reason =
  | Overflow   (** resource lower bound exceeds the device *)
  | Dominated  (** EKIT upper bound below an incumbent of no more area *)

let prune_reason_to_string = function
  | Overflow -> "resource overflow"
  | Dominated -> "dominated by incumbent"

(** A candidate skipped by the pruner, with the bounds that justify it. *)
type bounded = {
  bp_variant : Transform.variant;
  bp_bounds : Tytra_cost.Bounds.t;
  bp_reason : prune_reason;
}

type sweep_stats = {
  ss_space : int;             (** variants enumerated *)
  ss_evaluated : int;         (** full lower + cost evaluations performed *)
  ss_pruned_resource : int;   (** skipped: could not fit *)
  ss_pruned_incumbent : int;  (** skipped: could not beat the incumbent *)
  ss_restored : int;          (** taken from a resume checkpoint, not evaluated *)
  ss_failed : int;            (** quarantined after exhausting retries *)
}

(* Restored/failed counts appear only when nonzero, so the stats line of
   a clean, non-resumed sweep is byte-identical to what it always was. *)
let pp_sweep_stats fmt s =
  Format.fprintf fmt "%d variants: %d evaluated, %d pruned (%d overflow, %d dominated)"
    s.ss_space s.ss_evaluated
    (s.ss_pruned_resource + s.ss_pruned_incumbent)
    s.ss_pruned_resource s.ss_pruned_incumbent;
  if s.ss_restored > 0 then Format.fprintf fmt ", %d restored" s.ss_restored;
  if s.ss_failed > 0 then Format.fprintf fmt ", %d failed" s.ss_failed

(** A candidate whose evaluation failed after exhausting its retry
    budget; quarantined so the rest of the sweep can proceed. *)
type sweep_error = {
  se_variant : Transform.variant;
  se_error : Tytra_exec.Pool.task_error;
}

let pp_sweep_error fmt e =
  Format.fprintf fmt "%-16s failed: %a"
    (Transform.to_string e.se_variant)
    Tytra_exec.Pool.pp_task_error e.se_error

(** Result of one sweep: fully evaluated points, pruned candidates,
    quarantined failures, and the evaluation accounting. *)
type sweep = {
  sw_points : point list;     (** evaluated points, enumeration order *)
  sw_bounded : bounded list;  (** pruned candidates, enumeration order *)
  sw_errors : sweep_error list;
      (** failed candidates, enumeration order; empty on the fail-fast
          path (the first failure raises instead) *)
  sw_stats : sweep_stats;
}

(* Mutable per-config sweep state; driven by [sweep_many] below. All
   mutation happens on the calling domain — worker domains only run the
   pure [eval_point]. *)
type sweep_state = {
  st_config : config;
  st_prog_key : string;
  st_space : int;
  mutable st_done : (int * point) list;       (* (enumeration index, point) *)
  mutable st_bounded : (int * bounded) list;
  mutable st_errors : (int * sweep_error) list;
  mutable st_restored : int;                  (* of st_done, from a checkpoint *)
  mutable st_queue : (int * Transform.variant * Tytra_cost.Bounds.t) list;
      (* pending candidates, sorted by (ekit_ub desc, index asc) *)
  mutable st_incumbent : (float * int) option; (* (ekit, area) of best valid *)
}

let update_incumbent st (p : point) =
  if valid p then begin
    let e = ekit p and a = area p in
    match st.st_incumbent with
    | None -> st.st_incumbent <- Some (e, a)
    | Some (be, ba) ->
        if e > be || (e = be && a < ba) then st.st_incumbent <- Some (e, a)
  end

(* The pruning invariant: a candidate may be skipped only when some
   *evaluated* valid point provably dominates it. [b.b_ekit_ub < be]
   gives actual_ekit ≤ ekit_ub < incumbent's ekit (strict), and
   [area_lb b ≥ ba] gives actual_area ≥ area_lb ≥ incumbent's area — so
   the incumbent beats the candidate on throughput and matches-or-beats
   it on area. Such a point can be neither [best] (its EKIT is strictly
   below a valid survivor's) nor on the [pareto] front (the incumbent
   dominates it), hence best/pareto over the survivors equal the
   exhaustive sweep's. *)
let prunable st (b : Tytra_cost.Bounds.t) =
  match st.st_incumbent with
  | None -> false
  | Some (be, ba) ->
      b.Tytra_cost.Bounds.b_ekit_ub < be && Tytra_cost.Bounds.area_lb b >= ba

let record_bounded st idx v b reason =
  Tytra_telemetry.Metrics.incr "dse.points_pruned";
  if Flightrec.is_enabled () || Tytra_telemetry.Events.active () then begin
    let variant = Transform.to_string v in
    let why =
      Printf.sprintf "%s (ekit_ub=%.6g, fits=%b)"
        (prune_reason_to_string reason)
        b.Tytra_cost.Bounds.b_ekit_ub b.Tytra_cost.Bounds.b_fits
    in
    if Flightrec.is_enabled () then
      Flightrec.note ~variant (Flightrec.Pruned why);
    if Tytra_telemetry.Events.active () then
      Tytra_telemetry.Events.emit
        (Tytra_telemetry.Events.Point_pruned { variant; reason = why })
  end;
  st.st_bounded <-
    (idx, { bp_variant = v; bp_bounds = b; bp_reason = reason })
    :: st.st_bounded

let rec take_n n = function
  | x :: tl when n > 0 ->
      let a, b = take_n (n - 1) tl in
      (x :: a, b)
  | l -> ([], l)

(* Evaluate a combined wave of (state, index, variant) items on the
   shared pool; results land back in each state's accumulator. *)
let eval_wave ~pool prog (items : (sweep_state * int * Transform.variant) list)
    =
  Tytra_exec.Pool.map pool
    (fun (st, idx, v) ->
      (st, idx, eval_point ~config:st.st_config ~prog_key:st.st_prog_key prog v))
    items
  |> List.iter (fun (st, idx, p) ->
         st.st_done <- (idx, p) :: st.st_done;
         update_incumbent st p)

(* Resilient twin of [eval_wave]: every point runs under the retry /
   deadline policy, and a failure — after its retry budget — either
   aborts the sweep (fail-fast, re-raised with the original backtrace)
   or is quarantined into the state's error list (best-effort). *)
let eval_wave_resilient ~pool ~retry ~deadline_s ~fail_fast prog
    (items : (sweep_state * int * Transform.variant) list) =
  let outcomes =
    Tytra_exec.Pool.map_result pool ~retry ?deadline_s
      (fun (st, idx, v) ->
        ( st,
          idx,
          eval_point ~config:st.st_config ~prog_key:st.st_prog_key prog v ))
      items
  in
  List.iter2
    (fun (st, idx, v) outcome ->
      match outcome with
      | Ok (_, _, p) ->
          st.st_done <- (idx, p) :: st.st_done;
          update_incumbent st p
      | Error te ->
          Tytra_telemetry.Metrics.incr "dse.points_failed";
          Log.warn (fun m ->
              m "point %s failed: %a" (Transform.to_string v)
                Tytra_exec.Pool.pp_task_error te);
          if Flightrec.is_enabled () || Tytra_telemetry.Events.active ()
          then begin
            let variant = Transform.to_string v in
            let err =
              Format.asprintf "%a" Tytra_exec.Pool.pp_task_error te
            in
            if Flightrec.is_enabled () then
              Flightrec.note ~variant (Flightrec.Failed err);
            if Tytra_telemetry.Events.active () then
              Tytra_telemetry.Events.emit
                (Tytra_telemetry.Events.Point_failed { variant; error = err })
          end;
          st.st_errors <-
            (idx, { se_variant = v; se_error = te }) :: st.st_errors)
    items outcomes;
  if fail_fast then
    match
      List.find_map
        (function Error te -> Some te | Ok _ -> None)
        outcomes
    with
    | Some te ->
        Printexc.raise_with_backtrace te.Tytra_exec.Pool.te_exn
          te.Tytra_exec.Pool.te_backtrace
    | None -> ()

(* ------------------------------------------------------------------ *)
(* Checkpoints                                                          *)
(* ------------------------------------------------------------------ *)

(* What a checkpoint is compatible with: same program, same device /
   calibration / form / nki and the same enumeration bounds. Execution
   knobs (jobs, cache, prune, resilience) are deliberately excluded —
   they change how a sweep runs, not what its points mean, so a
   checkpoint written under one of them may resume under another. *)
let checkpoint_meta (config : config) prog =
  Tytra_exec.Cache.digest_key
    [
      program_digest prog;
      config.device.Tytra_device.Device.dev_name;
      calib_digest config.calib;
      Tytra_cost.Throughput.form_to_string config.form;
      string_of_int config.nki;
      string_of_int config.max_lanes;
      string_of_int config.max_vec;
    ]

let checkpoint_kind = "dse-sweep"

let save_checkpoint ~path (config : config) prog (points : point list) =
  Checkpoint.save ~path ~kind:checkpoint_kind
    ~meta:(checkpoint_meta config prog)
    points;
  Tytra_telemetry.Metrics.incr "dse.checkpoint.writes";
  if Tytra_telemetry.Events.active () then
    Tytra_telemetry.Events.emit
      (Tytra_telemetry.Events.Checkpoint_written
         { path; points = List.length points })

let load_checkpoint ~path (config : config) prog : (point list, string) result
    =
  Checkpoint.load ~path ~kind:checkpoint_kind
    ~meta:(checkpoint_meta config prog)

(** [sweep_many ~pool configs prog] — run one sweep of [prog] per config,
    interleaved on a single shared pool so a registry-wide device sweep
    saturates [Pool.jobs pool] domains even when each per-device space is
    small. Phases:

    + evaluate every config's baselines (Seq, Pipe — or the whole space
      when that config has [prune = false]) in one combined pool map;
    + derive {!Tytra_cost.Bounds} for each replicated candidate from its
      config's Pipe report; candidates whose resource lower bound
      overflows the device are recorded as {!Overflow} without lowering;
    + rounds: each active config re-checks its pending candidates against
      its current incumbent (recording {!Dominated} prunes), then
      contributes its most-promising survivors (highest EKIT upper bound
      first) to a combined wave of at most [Pool.jobs pool] evaluations.

    For a fixed config the surviving *set* may depend on [jobs] (a wider
    wave evaluates candidates a later incumbent would have pruned), but
    [best] and [pareto] over the survivors are invariant — equal to the
    exhaustive sweep's for every [jobs] value.

    Resilience (retries, deadlines, best-effort quarantine) is governed
    by the {e head} config: per-config policies make no sense on one
    shared pool. [restore] pre-fills the head config's sweep with points
    from a checkpoint (matched by variant; they are not re-evaluated and
    count as [ss_restored]), and [checkpoint] on the head config — only
    honoured for single-config sweeps — persists the evaluated points
    every [checkpoint_every] evaluations. Restored points seed the
    incumbent, and the pruning invariant above is indifferent to {e why}
    an incumbent exists, so a resumed sweep keeps best/pareto equal to
    an uninterrupted one. *)
let sweep_many ~pool ?(restore = []) (configs : config list)
    (prog : Expr.program) : sweep list =
  let prog_key = program_digest prog in
  let states_with_variants =
    List.mapi
      (fun ci config ->
        let variants =
          Transform.enumerate ~max_lanes:config.max_lanes
            ~max_vec:config.max_vec prog
        in
        let st =
          {
            st_config = config;
            st_prog_key = prog_key;
            st_space = List.length variants;
            st_done = [];
            st_bounded = [];
            st_errors = [];
            st_restored = 0;
            st_queue = [];
            st_incumbent = None;
          }
        in
        let indexed =
          List.mapi (fun i v -> (i, v)) variants
          |> List.filter (fun (i, v) ->
                 (* Adopt checkpointed points (head config only) and
                    drop them from every later phase. *)
                 match
                   if ci = 0 then
                     List.find_opt (fun p -> p.dp_variant = v) restore
                   else None
                 with
                 | None -> true
                 | Some p ->
                     st.st_done <- (i, p) :: st.st_done;
                     st.st_restored <- st.st_restored + 1;
                     update_incumbent st p;
                     if Flightrec.is_enabled () then
                       Flightrec.note ~variant:(Transform.to_string v)
                         Flightrec.Restored;
                     false)
        in
        (st, indexed))
      configs
  in
  (* The event log marks each config's sweep here, where the space is
     already enumerated — recomputing it just for the event would cost
     a full [Transform.enumerate] per sweep (~ms on large spaces). *)
  if Tytra_telemetry.Events.active () then
    List.iter
      (fun (st, _) ->
        Tytra_telemetry.Events.emit
          (Tytra_telemetry.Events.Sweep_started
             {
               kernel = prog.Expr.p_kernel.Expr.k_name;
               space = st.st_space;
               jobs = st.st_config.jobs;
               prune = st.st_config.prune;
             }))
      states_with_variants;
  (* Resilience policy, from the head config. The legacy [eval_wave]
     path is kept bit-for-bit for plain sweeps: it is the hot path the
     bench baseline pins, and its first-exception semantics *is* the
     fail-fast contract. *)
  let head = List.hd configs in
  (* Progress notification: cumulative coverage across every config,
     reported on the driving domain after each wave/chunk. The policy
     (like resilience below) comes from the head config. *)
  let notify =
    match head.on_progress with
    | None -> fun () -> ()
    | Some f ->
        let states = List.map fst states_with_variants in
        fun () ->
          f
            (List.fold_left
               (fun acc st ->
                 {
                   pr_space = acc.pr_space + st.st_space;
                   pr_evaluated =
                     acc.pr_evaluated
                     + (List.length st.st_done - st.st_restored);
                   pr_pruned = acc.pr_pruned + List.length st.st_bounded;
                   pr_failed = acc.pr_failed + List.length st.st_errors;
                   pr_restored = acc.pr_restored + st.st_restored;
                 })
               {
                 pr_space = 0;
                 pr_evaluated = 0;
                 pr_pruned = 0;
                 pr_failed = 0;
                 pr_restored = 0;
               }
               states)
  in
  let resilient =
    head.max_attempts > 1
    || head.deadline_s <> None
    || (not head.fail_fast)
    || Tytra_exec.Faultgen.installed () <> None
  in
  let run_wave items =
    if not resilient then eval_wave ~pool prog items
    else
      let retry =
        {
          Tytra_exec.Pool.default_retry with
          max_attempts = max 1 head.max_attempts;
          base_delay_s = head.retry_delay_s;
        }
      in
      eval_wave_resilient ~pool ~retry ~deadline_s:head.deadline_s
        ~fail_fast:head.fail_fast prog items
  in
  (* Checkpointing splits waves into chunks of [checkpoint_every] (but
     never narrower than the pool) and persists after each chunk — with
     pruning off the whole space is a single wave, and the periodic
     write is exactly what makes a SIGKILLed exhaustive sweep
     resumable. *)
  let ckpt =
    match (configs, head.checkpoint) with
    | [ _ ], Some path -> Some path
    | _ -> None
  in
  let head_state = fst (List.hd states_with_variants) in
  let write_ckpt path =
    let pts =
      List.sort (fun (i1, _) (i2, _) -> compare i1 i2) head_state.st_done
      |> List.map snd
    in
    save_checkpoint ~path head prog pts
  in
  let run_wave items =
    (match ckpt with
    | None -> run_wave items
    | Some path ->
        let chunk_size =
          max (max 1 head.checkpoint_every) (Tytra_exec.Pool.jobs pool)
        in
        let rec go = function
          | [] -> ()
          | items ->
              let chunk, rest = take_n chunk_size items in
              run_wave chunk;
              write_ckpt path;
              notify ();
              go rest
        in
        go items);
    notify ()
  in
  (* Phase 1: baselines. Replication bounds derive from the Pipe report,
     so Seq and Pipe (pes < 2) are always evaluated in full; with
     pruning off the whole space is a "baseline". *)
  let baseline_items =
    List.concat_map
      (fun (st, indexed) ->
        List.filter_map
          (fun (i, v) ->
            if (not st.st_config.prune) || Transform.pes v < 2 then
              Some (st, i, v)
            else None)
          indexed)
      states_with_variants
  in
  run_wave baseline_items;
  (* Phase 2: bounds. *)
  let forced =
    List.concat_map
      (fun (st, indexed) ->
        if not st.st_config.prune then []
        else
          let candidates =
            List.filter (fun (_, v) -> Transform.pes v >= 2) indexed
          in
          let pipe =
            List.find_map
              (fun (_, p) ->
                if p.dp_variant = Transform.Pipe then Some p.dp_report
                else None)
              st.st_done
          in
          match pipe with
          | None ->
              (* No Pipe baseline in the space (cannot happen with the
                 current enumerator): fall back to exhaustive. *)
              List.map (fun (i, v) -> (st, i, v)) candidates
          | Some baseline ->
              let queue =
                List.filter_map
                  (fun (i, v) ->
                    let b =
                      Tytra_cost.Bounds.of_baseline ~device:st.st_config.device
                        ~form:st.st_config.form ~pes:(Transform.pes v) baseline
                    in
                    if not b.Tytra_cost.Bounds.b_fits then begin
                      record_bounded st i v b Overflow;
                      None
                    end
                    else Some (i, v, b))
                  candidates
              in
              st.st_queue <-
                List.sort
                  (fun (i1, _, b1) (i2, _, b2) ->
                    let c =
                      compare b2.Tytra_cost.Bounds.b_ekit_ub
                        b1.Tytra_cost.Bounds.b_ekit_ub
                    in
                    if c <> 0 then c else compare i1 i2)
                  queue;
              [])
      states_with_variants
  in
  run_wave forced;
  (* Phase 3: incumbent-pruned waves. *)
  let states = List.map fst states_with_variants in
  let rec rounds () =
    let active = List.filter (fun st -> st.st_queue <> []) states in
    if active <> [] then begin
      let quota =
        max 1 (Tytra_exec.Pool.jobs pool / List.length active)
      in
      let wave =
        List.concat_map
          (fun st ->
            let pruned, rest =
              List.partition (fun (_, _, b) -> prunable st b) st.st_queue
            in
            List.iter (fun (i, v, b) -> record_bounded st i v b Dominated)
              pruned;
            let take, keep = take_n quota rest in
            st.st_queue <- keep;
            List.map (fun (i, v, _) -> (st, i, v)) take)
          active
      in
      run_wave wave;
      rounds ()
    end
  in
  rounds ();
  (* Final write so a completed sweep leaves a complete checkpoint on
     disk (a resume of it restores every point and evaluates nothing). *)
  Option.iter write_ckpt ckpt;
  let sweeps =
    List.map
      (fun st ->
      let by_index (i1, _) (i2, _) = compare i1 i2 in
      let bounded = List.sort by_index st.st_bounded |> List.map snd in
      let errors = List.sort by_index st.st_errors |> List.map snd in
      let n_reason r =
        List.length (List.filter (fun b -> b.bp_reason = r) bounded)
      in
      {
        sw_points = List.sort by_index st.st_done |> List.map snd;
        sw_bounded = bounded;
        sw_errors = errors;
        sw_stats =
          {
            ss_space = st.st_space;
            ss_evaluated = List.length st.st_done - st.st_restored;
            ss_pruned_resource = n_reason Overflow;
            ss_pruned_incumbent = n_reason Dominated;
            ss_restored = st.st_restored;
            ss_failed = List.length errors;
          };
      })
      states
  in
  if Tytra_telemetry.Events.active () then
    List.iter
      (fun sw ->
        Tytra_telemetry.Events.emit
          (Tytra_telemetry.Events.Sweep_finished
             {
               evaluated = sw.sw_stats.ss_evaluated;
               pruned =
                 sw.sw_stats.ss_pruned_resource
                 + sw.sw_stats.ss_pruned_incumbent;
               failed = sw.sw_stats.ss_failed;
               restored = sw.sw_stats.ss_restored;
             }))
      sweeps;
  sweeps

(* A config-requested placement mode applies to the whole batch (the
   override is process-global, and batch configs evaluate concurrently
   on shared workers, so per-config switching would race): the head
   config's choice wins. [explore_devices] derives its batch from one
   base config, so in practice every config agrees. *)
let sweep_many ~pool ?restore configs prog =
  match configs with
  | { place_mode = Some m; _ } :: _ ->
      Tytra_sim.Techmap.with_place_mode (Some m) (fun () ->
          sweep_many ~pool ?restore configs prog)
  | _ -> sweep_many ~pool ?restore configs prog

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

(** [explore_sweep ?config ?restore prog] — sweep the reshaping design
    space of [prog]: full reports for the surviving points plus the
    bound records of every pruned candidate. [restore] (typically from
    {!load_checkpoint}) pre-fills the sweep with already-evaluated
    points, which are adopted without re-evaluation. *)
let explore_sweep_in ~pool ?(config = default_config) ?restore
    (prog : Expr.program) : sweep =
  Tytra_telemetry.Span.with_ ~name:"dse.explore"
    ~attrs:
      [ ("kernel", Tytra_telemetry.Span.Str prog.Expr.p_kernel.Expr.k_name);
        ("max_lanes", Tytra_telemetry.Span.Int config.max_lanes);
        ("max_vec", Tytra_telemetry.Span.Int config.max_vec);
        ("jobs", Tytra_telemetry.Span.Int config.jobs);
        ("prune", Tytra_telemetry.Span.Str (string_of_bool config.prune)) ]
  @@ fun () ->
  (* sweep_started / sweep_finished events are emitted by [sweep_many],
     which has the enumerated space at hand. *)
  let sw =
    match sweep_many ~pool ?restore [ config ] prog with
    | [ sw ] -> sw
    | _ -> assert false
  in
  Log.info (fun m ->
      m "explored %s (max_lanes %d, jobs %d): %a"
        prog.Expr.p_kernel.Expr.k_name config.max_lanes config.jobs
        pp_sweep_stats sw.sw_stats);
  sw

let explore_sweep ?(config = default_config) ?restore (prog : Expr.program) :
    sweep =
  Tytra_exec.Pool.with_pool ~jobs:config.jobs (fun pool ->
      explore_sweep_in ~pool ~config ?restore prog)

(** [explore ?config prog] — evaluated points of {!explore_sweep}, in
    enumeration order. With [config.prune] off this is the exhaustive
    sweep (identical for every [jobs] value); with pruning on it returns
    the survivors, whose {!best} and {!pareto} equal the exhaustive
    sweep's. *)
let explore ?(config = default_config) (prog : Expr.program) : point list =
  (explore_sweep ~config prog).sw_points

(** [best points] — the highest-EKIT variant among those that fit the
    device (the automated selection of Fig 1's "Selected Variant-X"). *)
let best (points : point list) : point option =
  List.fold_left
    (fun acc p ->
      if not (valid p) then acc
      else
        match acc with
        | None -> Some p
        | Some b -> if ekit p > ekit b then Some p else acc)
    None points

(** [pareto points] — the EKIT/ALUT Pareto front: no retained point is
    beaten on both throughput and area by another valid point.

    Sort-and-scan, O(n log n): order the valid points by (area asc, EKIT
    desc); a point is on the front iff it has the top EKIT of its area
    group and beats the best EKIT seen at any strictly smaller area.
    Equal (area, EKIT) duplicates are all retained, and the front comes
    back in input order — both exactly as the quadratic
    reference-by-definition filter behaves (the randomized test in
    [test_dse.ml] pins that equivalence). *)
let pareto (points : point list) : point list =
  let valid_pts = List.filter valid points in
  let arr = Array.of_list valid_pts in
  let n = Array.length arr in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let c = compare (area arr.(i)) (area arr.(j)) in
      if c <> 0 then c
      else
        let c = compare (ekit arr.(j)) (ekit arr.(i)) in
        if c <> 0 then c else compare i j)
    order;
  let keep = Array.make n false in
  let best_prev = ref neg_infinity in
  let i = ref 0 in
  while !i < n do
    let a = area arr.(order.(!i)) in
    let j = ref !i in
    while !j < n && area arr.(order.(!j)) = a do incr j done;
    let group_max = ekit arr.(order.(!i)) in
    for k = !i to !j - 1 do
      let e = ekit arr.(order.(k)) in
      if e = group_max && e > !best_prev then keep.(order.(k)) <- true
    done;
    if group_max > !best_prev then best_prev := group_max;
    i := !j
  done;
  let front = List.filteri (fun i _ -> keep.(i)) valid_pts in
  Tytra_telemetry.Metrics.set "dse.pareto_front_size"
    (float_of_int (List.length front));
  front

(** Guided search (the "targeted optimization" of paper §I): follow the
    limiting parameter. Starting from the baseline pipe, double lanes
    while compute-limited and the next variant still fits; stop at a
    bandwidth wall (more lanes cannot help) or the resource wall. Returns
    the visited points in order — a trace of the feedback loop. The loop
    is inherently sequential, but revisited points (e.g. after a prior
    [explore] of the same program) come from the cache. *)
let guided ?(config = default_config) (prog : Expr.program) : point list =
  Tytra_telemetry.Span.with_ ~name:"dse.guided"
    ~attrs:
      [ ("kernel", Tytra_telemetry.Span.Str prog.Expr.p_kernel.Expr.k_name);
        ("max_lanes", Tytra_telemetry.Span.Int config.max_lanes) ]
  @@ fun () ->
  let prog_key = program_digest prog in
  let eval = eval_point ~config ~prog_key prog in
  let applicable l = Transform.applicable prog (Transform.ParPipe l) in
  let rec go acc lanes =
    let v = if lanes = 1 then Transform.Pipe else Transform.ParPipe lanes in
    let p = eval v in
    let acc = p :: acc in
    let limited_by_compute =
      p.dp_report.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_limiter
      = Tytra_cost.Throughput.Compute
    in
    let next = lanes * 2 in
    if
      limited_by_compute && valid p && next <= config.max_lanes
      && applicable next
    then go acc next
    else List.rev acc
  in
  go [] 1

(** Cross-device exploration: evaluate the variant space on every device
    of [devices] (default: the whole registry) and return per-device
    results plus the overall best (device, point) — "performance
    portability" made concrete: the same high-level program, retargeted
    by swapping the one-time device description and calibration. All
    per-device sweeps are interleaved on one shared evaluation pool
    ({!sweep_many}), so the registry-wide sweep saturates [config.jobs]
    domains instead of running devices one after another. *)
let explore_devices ?(config = default_config)
    ?(devices = Tytra_device.Device.all) (prog : Expr.program) :
    (Tytra_device.Device.t * point list) list
    * (Tytra_device.Device.t * point) option =
  Tytra_telemetry.Span.with_ ~name:"dse.explore_devices"
    ~attrs:
      [ ("kernel", Tytra_telemetry.Span.Str prog.Expr.p_kernel.Expr.k_name);
        ("devices", Tytra_telemetry.Span.Int (List.length devices));
        ("jobs", Tytra_telemetry.Span.Int config.jobs) ]
  @@ fun () ->
  let sweeps =
    Tytra_exec.Pool.with_pool ~jobs:config.jobs (fun pool ->
        sweep_many ~pool
          (List.map (fun device -> { config with device }) devices)
          prog)
  in
  let per_device =
    List.map2 (fun device sw -> (device, sw.sw_points)) devices sweeps
  in
  let best_overall =
    List.fold_left
      (fun acc (device, pts) ->
        match best pts with
        | None -> acc
        | Some b -> (
            match acc with
            | None -> Some (device, b)
            | Some (_, prev) -> if ekit b > ekit prev then Some (device, b) else acc))
      None per_device
  in
  (per_device, best_overall)

let pp_point fmt (p : point) =
  Format.fprintf fmt "%-16s EKIT=%10.3g  %s  %s"
    (Transform.to_string p.dp_variant)
    (ekit p)
    (if valid p then "fits " else "OVER ")
    (Tytra_cost.Throughput.limiter_to_string
       p.dp_report.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_limiter)
