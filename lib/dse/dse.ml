(** Design-space exploration: generate variants by type transformation,
    lower each to TyTra-IR, cost it, and select — "the compiler costs the
    variants" of paper Fig 1, with the selection policy of §VI-A: as many
    lanes as the resources allow, or until the IO bandwidth saturates. *)

open Tytra_front

module Log = (val Logs.src_log (Logs.Src.create "tytra.dse"))

(** One evaluated design point. *)
type point = {
  dp_variant : Transform.variant;
  dp_design : Tytra_ir.Ast.design;
  dp_report : Tytra_cost.Report.t;
}

let ekit (p : point) = p.dp_report.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_ekit
let valid (p : point) = p.dp_report.Tytra_cost.Report.rp_valid

(** [explore ?device ?calib ?form ?nki ?max_lanes ?max_vec prog] —
    enumerate the reshaping design space of [prog], lower every variant
    and run the full cost model on each. This is the fast evaluation loop
    whose per-variant latency the paper benchmarks at ~0.3 s (we measure
    it in experiment E5). *)
(* Evaluate one variant under a per-point span: lane count, form and the
   resulting EKIT become trace attributes, so a sweep reads as a row of
   "dse.point" slices in Perfetto. *)
let eval_point ~device ?calib ~form ~nki prog v =
  Tytra_telemetry.Span.with_ ~name:"dse.point"
    ~attrs:
      [ ("variant", Tytra_telemetry.Span.Str (Transform.to_string v));
        ("pes", Tytra_telemetry.Span.Int (Transform.pes v));
        ("form",
         Tytra_telemetry.Span.Str (Tytra_cost.Throughput.form_to_string form));
      ]
  @@ fun () ->
  let d = Lower.lower prog v in
  let report = Tytra_cost.Report.evaluate ~device ?calib ~form ~nki d in
  let p = { dp_variant = v; dp_design = d; dp_report = report } in
  Tytra_telemetry.Metrics.incr "dse.points_evaluated";
  Tytra_telemetry.Metrics.observe "dse.point.ekit" (ekit p);
  p

let explore ?(device = Tytra_device.Device.stratixv_gsd8) ?calib
    ?(form = Tytra_cost.Throughput.FormB) ?(nki = 1) ?(max_lanes = 16)
    ?(max_vec = 1) (prog : Expr.program) : point list =
  Tytra_telemetry.Span.with_ ~name:"dse.explore"
    ~attrs:
      [ ("kernel", Tytra_telemetry.Span.Str prog.Expr.p_kernel.Expr.k_name);
        ("max_lanes", Tytra_telemetry.Span.Int max_lanes);
        ("max_vec", Tytra_telemetry.Span.Int max_vec) ]
  @@ fun () ->
  let pts =
    Transform.enumerate ~max_lanes ~max_vec prog
    |> List.map (eval_point ~device ?calib ~form ~nki prog)
  in
  Log.info (fun m ->
      m "explored %d variants of %s (max_lanes %d)" (List.length pts)
        prog.Expr.p_kernel.Expr.k_name max_lanes);
  pts

(** [best points] — the highest-EKIT variant among those that fit the
    device (the automated selection of Fig 1's "Selected Variant-X"). *)
let best (points : point list) : point option =
  List.fold_left
    (fun acc p ->
      if not (valid p) then acc
      else
        match acc with
        | None -> Some p
        | Some b -> if ekit p > ekit b then Some p else acc)
    None points

(** [pareto points] — the EKIT/ALUT Pareto front: no retained point is
    beaten on both throughput and area by another valid point. *)
let pareto (points : point list) : point list =
  let area p =
    p.dp_report.Tytra_cost.Report.rp_estimate.Tytra_cost.Resource_model.est_usage
      .Tytra_device.Resources.aluts
  in
  let valid_pts = List.filter valid points in
  let front =
    List.filter
      (fun p ->
        not
          (List.exists
             (fun q ->
               q != p
               && ekit q >= ekit p
               && area q <= area p
               && (ekit q > ekit p || area q < area p))
             valid_pts))
      valid_pts
  in
  Tytra_telemetry.Metrics.set "dse.pareto_front_size"
    (float_of_int (List.length front));
  front

(** Guided search (the "targeted optimization" of paper §I): follow the
    limiting parameter. Starting from the baseline pipe, double lanes
    while compute-limited and the next variant still fits; stop at a
    bandwidth wall (more lanes cannot help) or the resource wall. Returns
    the visited points in order — a trace of the feedback loop. *)
let guided ?(device = Tytra_device.Device.stratixv_gsd8) ?calib
    ?(form = Tytra_cost.Throughput.FormB) ?(nki = 1) ?(max_lanes = 64)
    (prog : Expr.program) : point list =
  Tytra_telemetry.Span.with_ ~name:"dse.guided"
    ~attrs:
      [ ("kernel", Tytra_telemetry.Span.Str prog.Expr.p_kernel.Expr.k_name);
        ("max_lanes", Tytra_telemetry.Span.Int max_lanes) ]
  @@ fun () ->
  let eval = eval_point ~device ?calib ~form ~nki prog in
  let applicable l = Transform.applicable prog (Transform.ParPipe l) in
  let rec go acc lanes =
    let v = if lanes = 1 then Transform.Pipe else Transform.ParPipe lanes in
    let p = eval v in
    let acc = p :: acc in
    let limited_by_compute =
      p.dp_report.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_limiter
      = Tytra_cost.Throughput.Compute
    in
    let next = lanes * 2 in
    if
      limited_by_compute && valid p && next <= max_lanes && applicable next
    then go acc next
    else List.rev acc
  in
  go [] 1

(** Cross-device exploration: evaluate the variant space on every known
    target and return per-device results plus the overall best
    (device, point) — "performance portability" made concrete: the same
    high-level program, retargeted by swapping the one-time device
    description and calibration. *)
let explore_devices ?(devices = Tytra_device.Device.all)
    ?(form = Tytra_cost.Throughput.FormB) ?(nki = 1) ?(max_lanes = 16)
    (prog : Expr.program) :
    (Tytra_device.Device.t * point list) list
    * (Tytra_device.Device.t * point) option =
  let per_device =
    List.map
      (fun device ->
        Tytra_telemetry.Span.with_ ~name:"dse.device"
          ~attrs:
            [ ("device",
               Tytra_telemetry.Span.Str device.Tytra_device.Device.dev_name) ]
          (fun () -> (device, explore ~device ~form ~nki ~max_lanes prog)))
      devices
  in
  let best_overall =
    List.fold_left
      (fun acc (device, pts) ->
        match best pts with
        | None -> acc
        | Some b -> (
            match acc with
            | None -> Some (device, b)
            | Some (_, prev) -> if ekit b > ekit prev then Some (device, b) else acc))
      None per_device
  in
  (per_device, best_overall)

let pp_point fmt (p : point) =
  Format.fprintf fmt "%-16s EKIT=%10.3g  %s  %s"
    (Transform.to_string p.dp_variant)
    (ekit p)
    (if valid p then "fits " else "OVER ")
    (Tytra_cost.Throughput.limiter_to_string
       p.dp_report.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_limiter)
