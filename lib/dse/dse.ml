(** Design-space exploration: generate variants by type transformation,
    lower each to TyTra-IR, cost it, and select — "the compiler costs the
    variants" of paper Fig 1, with the selection policy of §VI-A: as many
    lanes as the resources allow, or until the IO bandwidth saturates.

    The evaluation loop runs through {!Tytra_exec}: points fan out over a
    Domain pool ([config.jobs]) and every (program, variant, device,
    calibration, form, nki) evaluation is memoized in a process-wide LRU
    cache, so repeated sweeps — guided search, cross-device exploration,
    the bench harness — cost one lowering per distinct point. *)

open Tytra_front

module Log = (val Logs.src_log (Logs.Src.create "tytra.dse"))

(** One evaluated design point. *)
type point = {
  dp_variant : Transform.variant;
  dp_design : Tytra_ir.Ast.design;
  dp_report : Tytra_cost.Report.t;
}

let ekit (p : point) = p.dp_report.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_ekit
let valid (p : point) = p.dp_report.Tytra_cost.Report.rp_valid

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

(** Everything a sweep is parameterized by, as one value. *)
type config = {
  device : Tytra_device.Device.t;   (** target FPGA platform *)
  calib : Tytra_device.Bandwidth.calib option;
      (** bandwidth calibration; [None] = the device's built-in one *)
  form : Tytra_cost.Throughput.form;  (** memory-execution form (Fig 6) *)
  nki : int;                        (** kernel-instance repetitions *)
  max_lanes : int;                  (** lane-count bound of the space *)
  max_vec : int;                    (** vectorization bound of the space *)
  jobs : int;                       (** evaluation-pool domains; 1 = seq *)
  use_cache : bool;                 (** memoize point evaluations *)
}

let default_config : config =
  {
    device = Tytra_device.Device.stratixv_gsd8;
    calib = None;
    form = Tytra_cost.Throughput.FormB;
    nki = 1;
    max_lanes = 16;
    max_vec = 1;
    jobs = 1;
    use_cache = true;
  }

(* ------------------------------------------------------------------ *)
(* Memoized point evaluation                                           *)
(* ------------------------------------------------------------------ *)

(* Lower + cost results are pure functions of the content key below, so
   one process-wide cache serves every entry point. 4096 entries hold a
   full 16-lane × 3-form × all-device sweep several times over. *)
let cache : (Tytra_ir.Ast.design * Tytra_cost.Report.t) Tytra_exec.Cache.t =
  Tytra_exec.Cache.create ~metrics_prefix:"dse.cache" ~capacity:4096 ()

let cache_stats () = Tytra_exec.Cache.stats cache
let cache_hit_rate () = Tytra_exec.Cache.hit_rate cache
let clear_cache () =
  Tytra_exec.Cache.clear cache;
  Tytra_exec.Cache.reset_stats cache

(* Expr programs and calibrations are pure data, so a digest of their
   marshalled bytes is a sound content key. *)
let program_digest (prog : Expr.program) =
  Digest.to_hex (Digest.string (Marshal.to_string prog []))

let calib_digest = function
  | None -> "device-default"
  | Some c -> Digest.to_hex (Digest.string (Marshal.to_string c []))

let point_key ~(config : config) ~prog_key v =
  Tytra_exec.Cache.digest_key
    [
      prog_key;
      Transform.to_string v;
      config.device.Tytra_device.Device.dev_name;
      calib_digest config.calib;
      Tytra_cost.Throughput.form_to_string config.form;
      string_of_int config.nki;
    ]

(* Evaluate one variant under a per-point span: lane count, form and the
   resulting EKIT become trace attributes, so a sweep reads as a row of
   "dse.point" slices in Perfetto (one lane per pool domain). *)
let eval_point ~(config : config) ~prog_key prog v =
  Tytra_telemetry.Span.with_ ~name:"dse.point"
    ~attrs:
      [ ("variant", Tytra_telemetry.Span.Str (Transform.to_string v));
        ("pes", Tytra_telemetry.Span.Int (Transform.pes v));
        ("form",
         Tytra_telemetry.Span.Str
           (Tytra_cost.Throughput.form_to_string config.form));
      ]
  @@ fun () ->
  let compute () =
    let d = Lower.lower prog v in
    let report =
      Tytra_cost.Report.evaluate ~device:config.device ?calib:config.calib
        ~form:config.form ~nki:config.nki d
    in
    (d, report)
  in
  let d, report =
    if config.use_cache then
      Tytra_exec.Cache.find_or_add cache ~key:(point_key ~config ~prog_key v)
        compute
    else compute ()
  in
  let p = { dp_variant = v; dp_design = d; dp_report = report } in
  Tytra_telemetry.Metrics.incr "dse.points_evaluated";
  Tytra_telemetry.Metrics.observe "dse.point.ekit" (ekit p);
  p

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)
(* ------------------------------------------------------------------ *)

(** [explore ?config prog] — enumerate the reshaping design space of
    [prog], lower every variant and run the full cost model on each,
    fanned out over [config.jobs] domains. This is the fast evaluation
    loop whose per-variant latency the paper benchmarks at ~0.3 s (we
    measure it in experiment E5). Results are in enumeration order and
    identical for every [jobs] value. *)
let explore ?(config = default_config) (prog : Expr.program) : point list =
  Tytra_telemetry.Span.with_ ~name:"dse.explore"
    ~attrs:
      [ ("kernel", Tytra_telemetry.Span.Str prog.Expr.p_kernel.Expr.k_name);
        ("max_lanes", Tytra_telemetry.Span.Int config.max_lanes);
        ("max_vec", Tytra_telemetry.Span.Int config.max_vec);
        ("jobs", Tytra_telemetry.Span.Int config.jobs) ]
  @@ fun () ->
  let prog_key = program_digest prog in
  let variants =
    Transform.enumerate ~max_lanes:config.max_lanes ~max_vec:config.max_vec
      prog
  in
  let pts =
    Tytra_exec.Pool.with_pool ~jobs:config.jobs (fun pool ->
        Tytra_exec.Pool.map pool (eval_point ~config ~prog_key prog) variants)
  in
  Log.info (fun m ->
      m "explored %d variants of %s (max_lanes %d, jobs %d)" (List.length pts)
        prog.Expr.p_kernel.Expr.k_name config.max_lanes config.jobs);
  pts

(** [best points] — the highest-EKIT variant among those that fit the
    device (the automated selection of Fig 1's "Selected Variant-X"). *)
let best (points : point list) : point option =
  List.fold_left
    (fun acc p ->
      if not (valid p) then acc
      else
        match acc with
        | None -> Some p
        | Some b -> if ekit p > ekit b then Some p else acc)
    None points

(** [pareto points] — the EKIT/ALUT Pareto front: no retained point is
    beaten on both throughput and area by another valid point. *)
let pareto (points : point list) : point list =
  let area p =
    p.dp_report.Tytra_cost.Report.rp_estimate.Tytra_cost.Resource_model.est_usage
      .Tytra_device.Resources.aluts
  in
  let valid_pts = List.filter valid points in
  let front =
    List.filter
      (fun p ->
        not
          (List.exists
             (fun q ->
               q != p
               && ekit q >= ekit p
               && area q <= area p
               && (ekit q > ekit p || area q < area p))
             valid_pts))
      valid_pts
  in
  Tytra_telemetry.Metrics.set "dse.pareto_front_size"
    (float_of_int (List.length front));
  front

(** Guided search (the "targeted optimization" of paper §I): follow the
    limiting parameter. Starting from the baseline pipe, double lanes
    while compute-limited and the next variant still fits; stop at a
    bandwidth wall (more lanes cannot help) or the resource wall. Returns
    the visited points in order — a trace of the feedback loop. The loop
    is inherently sequential, but revisited points (e.g. after a prior
    [explore] of the same program) come from the cache. *)
let guided ?(config = default_config) (prog : Expr.program) : point list =
  Tytra_telemetry.Span.with_ ~name:"dse.guided"
    ~attrs:
      [ ("kernel", Tytra_telemetry.Span.Str prog.Expr.p_kernel.Expr.k_name);
        ("max_lanes", Tytra_telemetry.Span.Int config.max_lanes) ]
  @@ fun () ->
  let prog_key = program_digest prog in
  let eval = eval_point ~config ~prog_key prog in
  let applicable l = Transform.applicable prog (Transform.ParPipe l) in
  let rec go acc lanes =
    let v = if lanes = 1 then Transform.Pipe else Transform.ParPipe lanes in
    let p = eval v in
    let acc = p :: acc in
    let limited_by_compute =
      p.dp_report.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_limiter
      = Tytra_cost.Throughput.Compute
    in
    let next = lanes * 2 in
    if
      limited_by_compute && valid p && next <= config.max_lanes
      && applicable next
    then go acc next
    else List.rev acc
  in
  go [] 1

(** Cross-device exploration: evaluate the variant space on every device
    of [devices] (default: the whole registry) and return per-device
    results plus the overall best (device, point) — "performance
    portability" made concrete: the same high-level program, retargeted
    by swapping the one-time device description and calibration. Each
    per-device sweep runs on the evaluation pool. *)
let explore_devices ?(config = default_config)
    ?(devices = Tytra_device.Device.all) (prog : Expr.program) :
    (Tytra_device.Device.t * point list) list
    * (Tytra_device.Device.t * point) option =
  let per_device =
    List.map
      (fun device ->
        Tytra_telemetry.Span.with_ ~name:"dse.device"
          ~attrs:
            [ ("device",
               Tytra_telemetry.Span.Str device.Tytra_device.Device.dev_name) ]
          (fun () -> (device, explore ~config:{ config with device } prog)))
      devices
  in
  let best_overall =
    List.fold_left
      (fun acc (device, pts) ->
        match best pts with
        | None -> acc
        | Some b -> (
            match acc with
            | None -> Some (device, b)
            | Some (_, prev) -> if ekit b > ekit prev then Some (device, b) else acc))
      None per_device
  in
  (per_device, best_overall)

let pp_point fmt (p : point) =
  Format.fprintf fmt "%-16s EKIT=%10.3g  %s  %s"
    (Transform.to_string p.dp_variant)
    (ekit p)
    (if valid p then "fits " else "OVER ")
    (Tytra_cost.Throughput.limiter_to_string
       p.dp_report.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_limiter)

(* ------------------------------------------------------------------ *)
(* Deprecated optional-argument entry points (one release of grace)    *)
(* ------------------------------------------------------------------ *)

let explore_legacy ?(device = Tytra_device.Device.stratixv_gsd8) ?calib
    ?(form = Tytra_cost.Throughput.FormB) ?(nki = 1) ?(max_lanes = 16)
    ?(max_vec = 1) prog =
  explore
    ~config:{ default_config with device; calib; form; nki; max_lanes; max_vec }
    prog

let guided_legacy ?(device = Tytra_device.Device.stratixv_gsd8) ?calib
    ?(form = Tytra_cost.Throughput.FormB) ?(nki = 1) ?(max_lanes = 64) prog =
  guided ~config:{ default_config with device; calib; form; nki; max_lanes }
    prog

let explore_devices_legacy ?(devices = Tytra_device.Device.all)
    ?(form = Tytra_cost.Throughput.FormB) ?(nki = 1) ?(max_lanes = 16) prog =
  explore_devices
    ~config:{ default_config with form; nki; max_lanes }
    ~devices prog
