(** DSE flight recorder: a bounded ring buffer of recent per-point
    records.

    Public interface of [Tytra_dse.Flightrec]. The recorder keeps the
    last [capacity] per-point outcomes in a fixed-size mutex-guarded
    ring: recording is O(1), memory is bounded, and {!dump} writes the
    ring as JSONL oldest-first with a header line accounting for
    anything overwritten. See [flightrec.ml] for the concurrency and
    signal-safety notes. *)

(** What happened to one candidate point. *)
type outcome =
  | Evaluated of {
      fo_ekit : float;
      fo_valid : bool;
      fo_cached : bool;   (** served from the evaluation cache *)
      fo_dur_ns : int64;  (** wall time of this evaluation *)
    }
  | Pruned of string   (** bound decision, e.g. "dominated (ekit_ub=…)" *)
  | Failed of string   (** task error after exhausting retries *)
  | Restored           (** adopted from a resume checkpoint *)

type entry = {
  fr_seq : int;        (** recording order, 0-based from {!enable} *)
  fr_ts_ns : int64;
  fr_variant : string; (** variant digest, e.g. "par8" *)
  fr_outcome : outcome;
}

val enable : ?capacity:int -> unit -> unit
(** [enable ?capacity ()] — arm the recorder with a fresh ring
    (default capacity 256). *)

val disable : unit -> unit
(** Disarm and drop the ring; {!note} becomes a no-op again. *)

val is_enabled : unit -> bool

val note : variant:string -> outcome -> unit
(** Append one record; a single mutable-bool check when disabled. *)

val capacity : unit -> int
(** Ring capacity (0 when disabled). *)

val recorded : unit -> int
(** Total records since {!enable}, retained or not. *)

val overwritten : unit -> int
(** Records overwritten since {!enable} (total minus retained). *)

val entries : unit -> entry list
(** Retained entries, oldest first — a consistent snapshot. *)

val to_jsonl : unit -> string
(** The ring as JSONL: one header line ([{"flight_recorder":…}] with
    version, capacity and loss accounting) followed by the retained
    entries, oldest first. *)

val dump : string -> unit
(** [dump path] — write {!to_jsonl} to [path] (truncating). Safe to call
    from an OCaml signal handler (handlers run at safepoints, not in
    async-signal context). *)
