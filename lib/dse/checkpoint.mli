(** Versioned, digest-validated checkpoint files (atomic temp+rename
    writes; every load failure is an [Error], never an exception). The
    payload is [Marshal]ed data: a crash-recovery format for the same
    binary, guarded by the [kind] tag and the caller's [meta] digest —
    see [checkpoint.ml] for the failure modes the format defends
    against. *)

val save : path:string -> kind:string -> meta:string -> 'a -> unit
(** [save ~path ~kind ~meta v] — atomically replace [path] with a
    checkpoint of [v]. Raises [Sys_error] if the directory is not
    writable. *)

val load : path:string -> kind:string -> meta:string -> ('a, string) result
(** [load ~path ~kind ~meta] — read a checkpoint written by {!save}
    with the same [kind] and [meta], validating format version and
    payload digest. Unsafe in the usual [Marshal] way if the checkpoint
    was forged to match digests; sound for its crash-recovery purpose. *)
