(** DSE flight recorder: a bounded ring buffer of recent per-point
    records.

    A multi-hour sweep that crashes, hangs past its deadline, or gets
    poked with SIGUSR1 should be able to say what it was doing *just
    now* — not only what it aggregated since start. The recorder keeps
    the last [capacity] per-point outcomes (evaluated / pruned / failed /
    restored, with EKIT, cache and duration detail) in a fixed-size ring:
    recording is O(1), memory is bounded, and {!dump} writes the ring as
    JSONL oldest-first with a header line accounting for anything
    overwritten.

    The ring is process-wide and mutex-guarded: worker domains of the
    evaluation pool record directly, and a dump (from a signal handler
    or a crash path on the main domain) sees a consistent snapshot.
    Disabled (the default), {!note} is one mutable-bool check.

    Timestamps come from {!Tytra_telemetry.Clock}, so tests with an
    injected clock get deterministic dumps. *)

module Jsenc = Tytra_telemetry.Jsenc

(** What happened to one candidate point. *)
type outcome =
  | Evaluated of {
      fo_ekit : float;
      fo_valid : bool;
      fo_cached : bool;   (** served from the evaluation cache *)
      fo_dur_ns : int64;  (** wall time of this evaluation *)
    }
  | Pruned of string   (** bound decision, e.g. "dominated (ekit_ub=…)" *)
  | Failed of string   (** task error after exhausting retries *)
  | Restored           (** adopted from a resume checkpoint *)

type entry = {
  fr_seq : int;        (** recording order, 0-based from {!enable} *)
  fr_ts_ns : int64;
  fr_variant : string; (** variant digest, e.g. "par8" *)
  fr_outcome : outcome;
}

(* ------------------------------------------------------------------ *)
(* Ring state                                                          *)
(* ------------------------------------------------------------------ *)

let mutex = Mutex.create ()
let enabled_flag = ref false
let ring : entry option array ref = ref [||]
let next = ref 0 (* total records ever; ring slot is next mod capacity *)

let default_capacity = 256

(** [enable ?capacity ()] — arm the recorder with a fresh ring. *)
let enable ?(capacity = default_capacity) () =
  Mutex.lock mutex;
  ring := Array.make (max 1 capacity) None;
  next := 0;
  enabled_flag := true;
  Mutex.unlock mutex

let disable () =
  Mutex.lock mutex;
  enabled_flag := false;
  ring := [||];
  next := 0;
  Mutex.unlock mutex

let is_enabled () = !enabled_flag

let capacity () = Array.length !ring

(** Records overwritten since {!enable} (total minus retained). *)
let overwritten () =
  Mutex.lock mutex;
  let n = max 0 (!next - Array.length !ring) in
  Mutex.unlock mutex;
  n

(** Total records since {!enable}, retained or not. *)
let recorded () = !next

(** [note ~variant outcome] — append one record; no-op when disabled. *)
let note ~variant (o : outcome) =
  if !enabled_flag then begin
    let ts = Tytra_telemetry.Clock.now_ns () in
    Mutex.lock mutex;
    if !enabled_flag then begin
      let cap = Array.length !ring in
      let s = !next in
      !ring.(s mod cap) <-
        Some { fr_seq = s; fr_ts_ns = ts; fr_variant = variant; fr_outcome = o };
      next := s + 1
    end;
    Mutex.unlock mutex
  end

(** Retained entries, oldest first. *)
let entries () : entry list =
  Mutex.lock mutex;
  let cap = Array.length !ring in
  let l =
    if cap = 0 then []
    else
      let n = !next in
      let lo = max 0 (n - cap) in
      List.init (n - lo) (fun i ->
          match !ring.((lo + i) mod cap) with
          | Some e -> e
          | None -> assert false)
  in
  Mutex.unlock mutex;
  l

(* ------------------------------------------------------------------ *)
(* Dump                                                                *)
(* ------------------------------------------------------------------ *)

let outcome_fields = function
  | Evaluated { fo_ekit; fo_valid; fo_cached; fo_dur_ns } ->
      Printf.sprintf
        "\"outcome\":\"evaluated\",\"ekit\":%s,\"valid\":%b,\"cached\":%b,\"dur_ns\":%Ld"
        (Jsenc.json_num fo_ekit) fo_valid fo_cached fo_dur_ns
  | Pruned reason ->
      Printf.sprintf "\"outcome\":\"pruned\",\"reason\":%s"
        (Jsenc.json_string reason)
  | Failed err ->
      Printf.sprintf "\"outcome\":\"failed\",\"error\":%s"
        (Jsenc.json_string err)
  | Restored -> "\"outcome\":\"restored\""

let entry_line (e : entry) =
  Printf.sprintf "{\"seq\":%d,\"ts_ns\":%Ld,\"variant\":%s,%s}" e.fr_seq
    e.fr_ts_ns
    (Jsenc.json_string e.fr_variant)
    (outcome_fields e.fr_outcome)

(** The ring as JSONL: one header line ([{"flight_recorder":…}] with
    version, capacity and loss accounting) followed by the retained
    entries, oldest first. *)
let to_jsonl () : string =
  let es = entries () in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"flight_recorder\":1,\"capacity\":%d,\"recorded\":%d,\"overwritten\":%d}\n"
       (capacity ()) (recorded ()) (overwritten ()));
  List.iter
    (fun e ->
      Buffer.add_string b (entry_line e);
      Buffer.add_char b '\n')
    es;
  Buffer.contents b

(** [dump path] — write {!to_jsonl} to [path] (truncating). Safe to call
    from a signal handler: OCaml handlers run at safepoints, not in
    async-signal context. *)
let dump (path : string) : unit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_jsonl ()))
