(** Design-space exploration over the reshaping variant space.

    Public interface of [Tytra_dse.Dse]. A sweep is parameterized by one
    {!config} value; evaluation fans out over a {!Tytra_exec.Pool} and
    memoizes (program, variant, device, calibration, form, nki) points in
    a process-wide {!Tytra_exec.Cache}. *)

(** One evaluated design point. *)
type point = {
  dp_variant : Tytra_front.Transform.variant;
  dp_design : Tytra_ir.Ast.design;
  dp_report : Tytra_cost.Report.t;
}

val ekit : point -> float
(** Effective kernel-iteration throughput of the point (higher = better). *)

val valid : point -> bool
(** Does the point fit on its device? *)

(** Sweep parameters. Build one with record update on
    {!default_config}: [{ default_config with jobs = 8; max_lanes = 32 }]. *)
type config = {
  device : Tytra_device.Device.t;   (** target FPGA platform *)
  calib : Tytra_device.Bandwidth.calib option;
      (** bandwidth calibration; [None] = the device's built-in one *)
  form : Tytra_cost.Throughput.form;  (** memory-execution form (Fig 6) *)
  nki : int;                        (** kernel-instance repetitions *)
  max_lanes : int;                  (** lane-count bound of the space *)
  max_vec : int;                    (** vectorization bound of the space *)
  jobs : int;                       (** evaluation-pool domains; 1 = seq *)
  use_cache : bool;                 (** memoize point evaluations *)
}

val default_config : config
(** Stratix-V GSD8, device calibration, form B, [nki = 1],
    [max_lanes = 16], [max_vec = 1], [jobs = 1], caching on. *)

val explore : ?config:config -> Tytra_front.Expr.program -> point list
(** Evaluate the whole variant space. Results are in enumeration order
    and identical for every [config.jobs] value. *)

val best : point list -> point option
(** Highest-EKIT point that fits the device, if any. *)

val pareto : point list -> point list
(** The EKIT/ALUT Pareto front of the valid points. *)

val guided : ?config:config -> Tytra_front.Expr.program -> point list
(** Follow-the-limiter search: double lanes while compute-limited and
    fitting. Returns the visited points in order. *)

val explore_devices :
  ?config:config ->
  ?devices:Tytra_device.Device.t list ->
  Tytra_front.Expr.program ->
  (Tytra_device.Device.t * point list) list
  * (Tytra_device.Device.t * point) option
(** Per-device sweeps ([config.device] is overridden by each element of
    [devices]) plus the overall winner. *)

val pp_point : Format.formatter -> point -> unit

(** {2 Evaluation cache} *)

val cache_stats : unit -> Tytra_exec.Cache.stats
val cache_hit_rate : unit -> float
val clear_cache : unit -> unit
(** Drop all memoized evaluations and reset the cache statistics. *)

(** {2 Deprecated optional-argument API (removed next release)} *)

val explore_legacy :
  ?device:Tytra_device.Device.t ->
  ?calib:Tytra_device.Bandwidth.calib ->
  ?form:Tytra_cost.Throughput.form ->
  ?nki:int ->
  ?max_lanes:int ->
  ?max_vec:int ->
  Tytra_front.Expr.program ->
  point list
[@@ocaml.deprecated "use explore ~config:{ default_config with ... }"]

val guided_legacy :
  ?device:Tytra_device.Device.t ->
  ?calib:Tytra_device.Bandwidth.calib ->
  ?form:Tytra_cost.Throughput.form ->
  ?nki:int ->
  ?max_lanes:int ->
  Tytra_front.Expr.program ->
  point list
[@@ocaml.deprecated "use guided ~config:{ default_config with ... }"]

val explore_devices_legacy :
  ?devices:Tytra_device.Device.t list ->
  ?form:Tytra_cost.Throughput.form ->
  ?nki:int ->
  ?max_lanes:int ->
  Tytra_front.Expr.program ->
  (Tytra_device.Device.t * point list) list
  * (Tytra_device.Device.t * point) option
[@@ocaml.deprecated "use explore_devices ~config:{ default_config with ... }"]
