(** Design-space exploration over the reshaping variant space.

    Public interface of [Tytra_dse.Dse]. A sweep is parameterized by one
    {!config} value; evaluation fans out over a {!Tytra_exec.Pool} and
    memoizes (program, variant, device, calibration, form, nki) points in
    a process-wide {!Tytra_exec.Cache}.

    With [config.prune] on (the default) the sweep skips full lowering
    for candidates whose {!Tytra_cost.Bounds} prove they cannot fit the
    device or cannot beat an already-evaluated incumbent. Pruning is
    exact with respect to selection: {!best} and {!pareto} over the
    returned points equal those of the exhaustive ([prune = false])
    sweep. The surviving point {e set} may vary with [config.jobs]
    (wider evaluation waves see a later incumbent); tests that compare
    raw point lists across [jobs] values should set [prune = false]. *)

(** One evaluated design point. *)
type point = {
  dp_variant : Tytra_front.Transform.variant;
  dp_design : Tytra_ir.Ast.design;
  dp_report : Tytra_cost.Report.t;
}

val ekit : point -> float
(** Effective kernel-iteration throughput of the point (higher = better). *)

val valid : point -> bool
(** Does the point fit on its device? *)

val area : point -> int
(** ALUT usage of the point — the area axis of the Pareto front. *)

(** Sweep parameters. Build one with record update on
    {!default_config}: [{ default_config with jobs = 8; max_lanes = 32 }]. *)
type config = {
  device : Tytra_device.Device.t;   (** target FPGA platform *)
  calib : Tytra_device.Bandwidth.calib option;
      (** bandwidth calibration; [None] = the device's built-in one *)
  form : Tytra_cost.Throughput.form;  (** memory-execution form (Fig 6) *)
  nki : int;                        (** kernel-instance repetitions *)
  max_lanes : int;                  (** lane-count bound of the space *)
  max_vec : int;                    (** vectorization bound of the space *)
  jobs : int;                       (** evaluation-pool domains; 1 = seq *)
  use_cache : bool;                 (** memoize point evaluations *)
  prune : bool;                     (** bound-based pruning of the space *)
  fast_ir : bool;
      (** derive replicated variants from a pre-validated template
          ({!Tytra_front.Lower.derive}) instead of re-lowering and
          re-validating each from scratch; also gated by the global
          {!Tytra_ir.Fastpath} toggle ([--no-fast-ir]). Both paths
          produce byte-identical designs. *)
  max_attempts : int;     (** attempts per point (1 = no retry) *)
  retry_delay_s : float;  (** base backoff delay between attempts *)
  deadline_s : float option;
      (** cooperative per-point deadline; [None] = unbounded *)
  fail_fast : bool;
      (** [true]: first point failure (after retries) aborts the sweep
          by re-raising it; [false]: failed points are quarantined into
          [sw_errors] and the sweep completes degraded *)
  checkpoint : string option;
      (** write a resumable checkpoint of the evaluated points here
          (single-config sweeps only; see {!save_checkpoint}) *)
  checkpoint_every : int;  (** points evaluated between checkpoint writes *)
  on_progress : (progress -> unit) option;
      (** called on the sweep's driving domain after every evaluation
          wave (and every checkpoint chunk) with cumulative coverage;
          [tybec explore --progress] renders its live line from this *)
  place_mode : Tytra_sim.Techmap.place_mode option;
      (** placement engine for any technology mapping performed under
          this sweep ([--place-mode]); [None] = the ambient
          process-wide mode ({!Tytra_sim.Techmap.place_mode}). In a
          multi-config batch the head config's choice applies to the
          whole batch. *)
}

(** Cumulative sweep coverage, as passed to [config.on_progress]. In a
    multi-config batch ({!explore_devices}) the counts aggregate over
    every config. *)
and progress = {
  pr_space : int;      (** variants enumerated across all configs *)
  pr_evaluated : int;  (** full evaluations completed so far *)
  pr_pruned : int;     (** candidates skipped by bounds so far *)
  pr_failed : int;     (** candidates quarantined so far *)
  pr_restored : int;   (** points adopted from a checkpoint *)
}

val default_config : config
(** Stratix-V GSD8, device calibration, form B, [nki = 1],
    [max_lanes = 16], [max_vec = 1], [jobs = 1], caching, pruning and
    the IR fast path on; resilience off ([max_attempts = 1], no
    deadline, fail-fast, no checkpoint); ambient placement mode. *)

(** {2 Sweeps} *)

(** Why a candidate was skipped without lowering. *)
type prune_reason =
  | Overflow   (** resource lower bound exceeds the device *)
  | Dominated  (** EKIT upper bound below an incumbent of no more area *)

val prune_reason_to_string : prune_reason -> string

(** A candidate skipped by the pruner, with the bounds that justify it. *)
type bounded = {
  bp_variant : Tytra_front.Transform.variant;
  bp_bounds : Tytra_cost.Bounds.t;
  bp_reason : prune_reason;
}

type sweep_stats = {
  ss_space : int;             (** variants enumerated *)
  ss_evaluated : int;         (** full lower + cost evaluations performed *)
  ss_pruned_resource : int;   (** skipped: could not fit *)
  ss_pruned_incumbent : int;  (** skipped: could not beat the incumbent *)
  ss_restored : int;          (** taken from a resume checkpoint, not evaluated *)
  ss_failed : int;            (** quarantined after exhausting retries *)
}

val pp_sweep_stats : Format.formatter -> sweep_stats -> unit
(** Restored/failed counts are printed only when nonzero, so clean
    sweeps render exactly as before. *)

(** A candidate whose evaluation failed after exhausting its retry
    budget; quarantined so the rest of the sweep could proceed. *)
type sweep_error = {
  se_variant : Tytra_front.Transform.variant;
  se_error : Tytra_exec.Pool.task_error;
}

val pp_sweep_error : Format.formatter -> sweep_error -> unit

(** Result of one sweep: fully evaluated points, pruned candidates,
    quarantined failures, and the evaluation accounting. *)
type sweep = {
  sw_points : point list;     (** evaluated points, enumeration order *)
  sw_bounded : bounded list;  (** pruned candidates, enumeration order *)
  sw_errors : sweep_error list;
      (** failed candidates, enumeration order; empty on the fail-fast
          path (the first failure raises instead) *)
  sw_stats : sweep_stats;
}

val explore_sweep :
  ?config:config -> ?restore:point list -> Tytra_front.Expr.program -> sweep
(** Sweep the whole variant space, pruning per [config.prune].

    Resilience is governed by [config]: with [max_attempts > 1] failed
    evaluations are retried with exponential backoff; [deadline_s] arms
    a cooperative per-point deadline; with [fail_fast = false] the sweep
    completes in degraded mode, quarantining failures into [sw_errors]
    ([ss_failed], [dse.points_failed] telemetry). [config.checkpoint]
    persists evaluated points periodically ({!save_checkpoint});
    [restore] (typically from {!load_checkpoint}) adopts previously
    evaluated points without re-evaluating them ([ss_restored]).
    Restored points seed the pruning incumbent, so a resumed sweep's
    {!best} and {!pareto} equal an uninterrupted run's. *)

val explore_sweep_in :
  pool:Tytra_exec.Pool.t ->
  ?config:config ->
  ?restore:point list ->
  Tytra_front.Expr.program ->
  sweep
(** {!explore_sweep} on a caller-owned pool instead of a fresh one — the
    long-lived engine ([tybec serve]) shares one pool across requests.
    The pool's width, not [config.jobs], governs the evaluation fan-out,
    so pass a pool of exactly [config.jobs] domains to reproduce
    {!explore_sweep} results under pruning. *)

val explore : ?config:config -> Tytra_front.Expr.program -> point list
(** Evaluated points of {!explore_sweep}, in enumeration order. With
    [config.prune = false] this is the exhaustive sweep, identical for
    every [config.jobs] value. *)

val best : point list -> point option
(** Highest-EKIT point that fits the device, if any. *)

val pareto : point list -> point list
(** The EKIT/ALUT Pareto front of the valid points, in input order.
    O(n log n) sort-and-scan; equal (area, EKIT) duplicates are all
    retained. *)

val guided : ?config:config -> Tytra_front.Expr.program -> point list
(** Follow-the-limiter search: double lanes while compute-limited and
    fitting. Returns the visited points in order. *)

val explore_devices :
  ?config:config ->
  ?devices:Tytra_device.Device.t list ->
  Tytra_front.Expr.program ->
  (Tytra_device.Device.t * point list) list
  * (Tytra_device.Device.t * point) option
(** Per-device sweeps ([config.device] is overridden by each element of
    [devices]) plus the overall winner. All devices share one evaluation
    pool, so the registry-wide sweep saturates [config.jobs] domains. *)

val pp_point : Format.formatter -> point -> unit

(** {2 Checkpoints}

    Versioned, digest-validated sweep checkpoints ({!Checkpoint} is the
    generic layer). The meta digest binds a checkpoint to its program,
    device, calibration, form, nki and enumeration bounds — execution
    knobs (jobs, cache, prune, resilience) are deliberately excluded, so
    a checkpoint written under one of them may resume under another. *)

val save_checkpoint :
  path:string -> config -> Tytra_front.Expr.program -> point list -> unit
(** Atomically write the points as a resume checkpoint for (config,
    program); counts as [dse.checkpoint.writes] telemetry. *)

val load_checkpoint :
  path:string ->
  config ->
  Tytra_front.Expr.program ->
  (point list, string) result
(** Read a checkpoint back, validating that it belongs to (config,
    program). Every failure — missing/corrupt/stale file — is an
    [Error], never an exception. *)

(** {2 Evaluation cache} *)

val cache_stats : unit -> Tytra_exec.Cache.stats
val cache_hit_rate : unit -> float
val clear_cache : unit -> unit
(** Drop all memoized evaluations and reset the cache statistics. *)
