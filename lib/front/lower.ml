(** Lowering: functional program + variant → TyTra-IR design.

    This is the translation arrow of paper Fig 1 ("HLL variant-N →
    TyTra-IR variant-N"). The structure generated follows the paper's
    listings exactly:

    - the kernel becomes a [pipe] function [@f0] whose body starts with
      the stream offsets (Fig 12 lines 6–9) followed by the SSA datapath;
    - a [ParPipe l] variant wraps [l] calls to [@f0] in a [par] function
      [@f1], with per-lane stream objects over the reshaped data
      (Fig 14);
    - a [ParVecPipe] variant nests [par] inside [par] (the C3 extension);
    - [Seq] puts the datapath directly in a sequential [@main] (C4).

    Conventions consumed downstream: a PE's output values are SSA locals
    named [out_*]; ostream ports bind to [@main] parameters of the same
    name. *)

open Tytra_ir

let lane_name base i = Printf.sprintf "%s%d" base i

(* compile an expression to SSA, returning its operand; [cse] memoizes
   structurally equal subexpressions so shared terms (e.g. [reltmp] used
   by both the output and the error reduction) are computed once, as the
   hand-written IR of the paper's Fig 12 does *)
let rec compile_expr ~inline_params (k : Expr.kernel) (fb : Builder.fb)
    (offsets : (string * int, Ast.operand) Hashtbl.t)
    (cse : (Expr.expr, Ast.operand) Hashtbl.t) (e : Expr.expr) : Ast.operand
    =
  match Hashtbl.find_opt cse e with
  | Some v -> v
  | None ->
      let v = compile_expr_raw ~inline_params k fb offsets cse e in
      Hashtbl.replace cse e v;
      v

and compile_expr_raw ~inline_params (k : Expr.kernel) (fb : Builder.fb)
    (offsets : (string * int, Ast.operand) Hashtbl.t)
    (cse : (Expr.expr, Ast.operand) Hashtbl.t) (e : Expr.expr) : Ast.operand
    =
  let ty = k.Expr.k_ty in
  let go = compile_expr ~inline_params k fb offsets cse in
  match e with
  | Expr.Input s -> Ast.Var s
  | Expr.Stencil (s, 0) -> Ast.Var s
  | Expr.Stencil (s, o) -> (
      match Hashtbl.find_opt offsets (s, o) with
      | Some v -> v
      | None ->
          let v = Builder.offset fb ~ty (Ast.Var s) o in
          Hashtbl.replace offsets (s, o) v;
          v)
  | Expr.Param p ->
      if inline_params then begin
        (* Seq designs have no call site to carry the scalar immediates:
           inline the value *)
        let v = List.assoc p k.Expr.k_params in
        if Ty.is_float ty then Ast.ImmF (Expr.param_value_float v)
        else Ast.Imm (Ty.mask ty v)
      end
      else Ast.Var p
  | Expr.ConstI v -> Ast.Imm (Ty.mask ty v)
  | Expr.ConstF f -> Ast.ImmF f
  | Expr.Bin (op, a, b) ->
      let a' = go a in
      let b' = go b in
      Builder.ins fb op ty [ a'; b' ]
  | Expr.Un (op, a) ->
      let a' = go a in
      Builder.ins fb op ty [ a' ]
  | Expr.Select (c, a, b) ->
      let c' =
        match c with
        | Expr.Bin ((Ast.CmpEq | Ast.CmpNe | Ast.CmpLt | Ast.CmpLe
                    | Ast.CmpGt | Ast.CmpGe), _, _) ->
            go c
        | _ ->
            let cv = go c in
            Builder.ins fb Ast.CmpNe ty [ cv; Ast.Imm 0L ]
      in
      let a' = go a in
      let b' = go b in
      Builder.ins fb Ast.Select ty [ c'; a'; b' ]

(* emit the kernel body (offsets first — matching the paper's listing
   layout comes from compile order; SSA order is what matters) *)
let emit_kernel_body ?(inline_params = false) (k : Expr.kernel)
    (fb : Builder.fb) : unit =
  let offsets = Hashtbl.create 8 in
  let cse = Hashtbl.create 32 in
  (* pre-materialize all stencil offsets so they lead the body *)
  List.iter
    (fun (s, offs) ->
      List.iter
        (fun o ->
          if o <> 0 && not (Hashtbl.mem offsets (s, o)) then
            Hashtbl.replace offsets (s, o)
              (Builder.offset fb ~ty:k.Expr.k_ty (Ast.Var s) o))
        offs)
    (Expr.stencil_offsets k);
  List.iter
    (fun (o : Expr.output) ->
      let v = compile_expr ~inline_params k fb offsets cse o.Expr.o_expr in
      ignore
        (Builder.ins_named fb ("out_" ^ o.Expr.o_name) Ast.Mov k.Expr.k_ty
           [ v ]))
    k.Expr.k_outputs;
  List.iter
    (fun (r : Expr.reduction) ->
      let v = compile_expr ~inline_params k fb offsets cse r.Expr.r_expr in
      Builder.reduce fb r.Expr.r_name r.Expr.r_op k.Expr.k_ty
        [ v; Ast.Glob r.Expr.r_name ])
    k.Expr.k_reductions

(* scalar parameter operands at the call site *)
let param_args (k : Expr.kernel) : Ast.operand list =
  List.map
    (fun (_, v) ->
      if Ty.is_float k.Expr.k_ty then Ast.ImmF (Expr.param_value_float v)
      else Ast.Imm (Ty.mask k.Expr.k_ty v))
    k.Expr.k_params

let kernel_params (k : Expr.kernel) : (string * Ty.t) list =
  List.map (fun s -> (s, k.Expr.k_ty)) k.Expr.k_inputs
  @ List.map (fun (p, _) -> (p, k.Expr.k_ty)) k.Expr.k_params

(* Shared construction for [lower] and [derive]: build the (unvalidated)
   design for variant [v]. [f0] selects the PE-body source: [`Emit]
   compiles the kernel datapath, [`Raw body] installs an instruction list
   taken from an already-validated template — physically shared, so the
   derived design pretty-prints byte-identically to a full lowering. *)
let build_variant ~(pattern : Ast.pattern)
    ~(f0 : [ `Emit | `Raw of Ast.instr list ]) (p : Expr.program)
    (v : Transform.variant) : Ast.design =
  (match Expr.check_kernel p.Expr.p_kernel with
  | Ok () -> ()
  | Error e -> invalid_arg ("Lower.lower: invalid kernel: " ^ e));
  if not (Transform.applicable p v) then
    invalid_arg
      (Printf.sprintf "Lower.lower: variant %s not applicable (size %d)"
         (Transform.to_string v) (Expr.points p));
  let k = p.Expr.p_kernel in
  let ty = k.Expr.k_ty in
  let n = Expr.points p in
  let pes = Transform.pes v in
  let chunk = n / pes in
  (* single-PE variants keep the paper's unsuffixed stream names
     ([@main.p]); replicated variants suffix per lane ([@main.p0]…) *)
  let lane_name base i = if pes = 1 then base else lane_name base i in
  let b =
    Builder.create
      (Printf.sprintf "%s_%s" k.Expr.k_name (Transform.to_string v))
  in
  (* globals for reductions *)
  List.iter
    (fun (r : Expr.reduction) ->
      ignore (Builder.global b r.Expr.r_name ~ty ~init:r.Expr.r_init ()))
    k.Expr.k_reductions;
  (* per-PE memory objects, stream objects and ports *)
  let main_params = ref [] in
  let lane_args = Array.make pes [] in
  for i = 0 to pes - 1 do
    let mk_port s dir =
      let pname = lane_name s i in
      let mem =
        Builder.mem b ("m_" ^ pname) ~space:Ast.Global ~ty ~size:chunk
      in
      let str = Builder.stream b ("s_" ^ pname) ~dir ~mem ~pattern in
      Builder.port b ~fn:"main" ~port:pname ~ty ~dir ~pattern ~stream:str ();
      main_params := (pname, ty) :: !main_params;
      pname
    in
    let ins = List.map (fun s -> mk_port s Ast.IStream) k.Expr.k_inputs in
    (* output ports are prefixed [o_] to avoid colliding with the PE's
       [out_*] SSA locals when the datapath lives in @main (Seq) *)
    List.iter
      (fun (o : Expr.output) ->
        ignore (mk_port ("o_" ^ o.Expr.o_name) Ast.OStream))
      k.Expr.k_outputs;
    lane_args.(i) <- List.map (fun s -> Ast.Var s) ins
  done;
  let main_params = List.rev !main_params in
  let emit_f0 () =
    match f0 with
    | `Emit ->
        ignore
          (Builder.func b "f0" ~kind:Ast.Pipe ~params:(kernel_params k)
             (fun fb -> emit_kernel_body k fb))
    | `Raw body ->
        ignore
          (Builder.func_raw b "f0" ~kind:Ast.Pipe ~params:(kernel_params k)
             body)
  in
  (* the PE function *)
  (match v with
  | Transform.Seq ->
      (* datapath directly in a sequential @main *)
      ignore
        (Builder.func b "main" ~kind:Ast.Seq ~params:main_params
           (fun fb -> emit_kernel_body ~inline_params:true k fb))
  | Transform.Pipe ->
      emit_f0 ();
      ignore
        (Builder.func b "main" ~kind:Ast.Seq ~params:main_params (fun fb ->
             Builder.call fb "f0" (lane_args.(0) @ param_args k) Ast.Pipe))
  | Transform.ParPipe l ->
      emit_f0 ();
      (* @f1 takes every lane's input streams *)
      let f1_params =
        List.concat
          (List.init l (fun i ->
               List.map
                 (fun s -> (lane_name s i, ty))
                 k.Expr.k_inputs))
        @ List.map (fun (p', _) -> (p', ty)) k.Expr.k_params
      in
      ignore
        (Builder.func b "f1" ~kind:Ast.Par ~params:f1_params (fun fb ->
             for i = 0 to l - 1 do
               Builder.call fb "f0"
                 (List.map (fun s -> Ast.Var (lane_name s i)) k.Expr.k_inputs
                 @ List.map (fun (p', _) -> Ast.Var p') k.Expr.k_params)
                 Ast.Pipe
             done));
      ignore
        (Builder.func b "main" ~kind:Ast.Seq ~params:main_params (fun fb ->
             Builder.call fb "f1"
               (List.concat
                  (List.init l (fun i -> lane_args.(i)))
               @ param_args k)
               Ast.Par))
  | Transform.ParVecPipe (l, dv) ->
      emit_f0 ();
      (* @flane bundles the dv vector PEs of one lane *)
      let flane_params =
        List.concat
          (List.init dv (fun j ->
               List.map (fun s -> (lane_name s j, ty)) k.Expr.k_inputs))
        @ List.map (fun (p', _) -> (p', ty)) k.Expr.k_params
      in
      ignore
        (Builder.func b "flane" ~kind:Ast.Par ~params:flane_params (fun fb ->
             for j = 0 to dv - 1 do
               Builder.call fb "f0"
                 (List.map (fun s -> Ast.Var (lane_name s j)) k.Expr.k_inputs
                 @ List.map (fun (p', _) -> Ast.Var p') k.Expr.k_params)
                 Ast.Pipe
             done));
      let f1_params =
        List.concat
          (List.init (l * dv) (fun i ->
               List.map (fun s -> (lane_name s i, ty)) k.Expr.k_inputs))
        @ List.map (fun (p', _) -> (p', ty)) k.Expr.k_params
      in
      ignore
        (Builder.func b "f1" ~kind:Ast.Par ~params:f1_params (fun fb ->
             for i = 0 to l - 1 do
               Builder.call fb "flane"
                 (List.concat
                    (List.init dv (fun j ->
                         List.map
                           (fun s -> Ast.Var (lane_name s ((i * dv) + j)))
                           k.Expr.k_inputs))
                 @ List.map (fun (p', _) -> Ast.Var p') k.Expr.k_params)
                 Ast.Par
             done));
      ignore
        (Builder.func b "main" ~kind:Ast.Seq ~params:main_params (fun fb ->
             Builder.call fb "f1"
               (List.concat (List.init (l * dv) (fun i -> lane_args.(i)))
               @ param_args k)
               Ast.Par)));
  (* Seq variant needs scalar params on main's call-free body; give the
     ports-only main its parameter list including scalars *)
  Builder.design b

(** [lower ?pattern p v] — build the validated IR design for variant [v]
    of program [p]. [pattern] is the global-memory access pattern of the
    generated streams (default contiguous; the reshaped chunks are
    contiguous slices). *)
let lower ?(pattern = Ast.Cont) (p : Expr.program) (v : Transform.variant) :
    Ast.design =
  Validate.check_exn (build_variant ~pattern ~f0:`Emit p v)

(** {2 Derived variants (DESIGN.md §10)}

    Every replicated variant of one program shares the same PE function
    [@f0]; only the Manage-IR and the wiring functions ([@f1], [@flane],
    [@main]) differ per lane count. [template] lowers and fully validates
    the [Pipe] variant once; [derive] then builds each further variant
    around the template's PE body — physically shared, so it
    pretty-prints byte-identically to [lower]'s output — and re-validates
    only the per-variant delta via {!Validate.check_delta}. *)

type template = {
  tpl_program : Expr.program;
  tpl_pattern : Ast.pattern;
  tpl_f0_body : Ast.instr list;  (** validated PE body, shared by reference *)
}

(** [template ?pattern p] — lower the [Pipe] variant of [p] in full
    (including validation) and capture the PE body for reuse. *)
let template ?(pattern = Ast.Cont) (p : Expr.program) : template =
  let d = lower ~pattern p Transform.Pipe in
  {
    tpl_program = p;
    tpl_pattern = pattern;
    tpl_f0_body = (Ast.find_func_exn d "f0").Ast.fn_body;
  }

(** [derive tpl v] — build the design for variant [v] of the template's
    program, reusing the pre-validated PE body and checking only the
    per-variant delta (memory objects, streams, ports, wiring calls).
    [Seq] variants inline scalar parameters into a different body shape,
    so they fall back to a full {!lower}. Raises [Invalid_argument] like
    {!lower} if the delta is invalid. *)
let derive (tpl : template) (v : Transform.variant) : Ast.design =
  match v with
  | Transform.Seq -> lower ~pattern:tpl.tpl_pattern tpl.tpl_program v
  | _ ->
      let d =
        build_variant ~pattern:tpl.tpl_pattern ~f0:(`Raw tpl.tpl_f0_body)
          tpl.tpl_program v
      in
      (match Validate.check_delta ~trusted:[ "f0" ] d with
      | [] -> ()
      | errs ->
          invalid_arg
            (Printf.sprintf "invalid TyTra-IR design %s:\n%s" d.Ast.d_name
               (String.concat "\n"
                  (List.map Validate.error_to_string errs))));
      d
