(** Multi-process sharded serving: [tybec serve --shards N].

    One process per shard, each a {e full} {!Daemon} — its own engine,
    pool, caches and batcher — so shards share nothing and scale until
    the machine runs out of cores. The parent never touches a request;
    it only supervises:

    - {b Socket sharing.} On kernels with [SO_REUSEPORT] every shard
      binds the same TCP port and the kernel load-balances accepts
      (shared-nothing all the way down). Fallback — and always for
      [unix:] addresses and ephemeral port 0, where per-shard binds
      would produce N different ports — the parent binds once and the
      shards inherit the listening fd across [exec], racing on a
      non-blocking [accept].
    - {b Supervision.} Children are started with fork+exec of our own
      executable ([create_process], never a bare [fork]: the parent
      runs domains, and a forked child would inherit their mutexes
      mid-flight). A crashed shard is reaped, postmortemed (crash
      record + last metrics snapshot + flight recorder, as JSONL in the
      run directory) and restarted under an exponential-backoff restart
      budget ([shards.restarts], [shards.crashes]); a shard that is
      alive but stops answering health probes is SIGKILLed and treated
      as a crash ([shards.hung_kills]); when {e every} shard is down a
      circuit breaker takes over the work address and answers typed
      [overloaded] instead of letting connections hang in the backlog
      ([shards.breaker_trips]). SIGTERM/SIGINT forwards to every shard,
      which drains gracefully, then the parent reaps them all.
    - {b Aggregation.} Each shard serves its private metrics on a unix
      socket ([--shard-admin]); the parent's admin server scrapes them
      on demand and answers [/metrics] with per-shard
      [{shard="i"}]-labeled samples (plus its own as
      [{shard="parent"}]), [/metrics.json] with the raw per-shard
      registries, and [/healthz] with 200 only when every shard
      answers. *)

module Serve = Tytra_telemetry.Serve
module Metrics = Tytra_telemetry.Metrics
module Expose = Tytra_telemetry.Expose

let env_fd = "TYTRA_SHARD_FD"
let env_reuseport = "TYTRA_SHARD_REUSEPORT"

(* ------------------------------------------------------------------ *)
(* Child-side mode detection                                           *)
(* ------------------------------------------------------------------ *)

type child_socket = Child_plain | Child_reuseport | Child_fd of Unix.file_descr

(* On Unix an abstract [Unix.file_descr] is the int fd; crossing exec we
   can only carry the number, so the child conjures the descriptor back
   from the environment. *)
let fd_of_int (n : int) : Unix.file_descr = Obj.magic n
let int_of_fd (fd : Unix.file_descr) : int = Obj.magic fd

let child_socket () : child_socket =
  match Option.bind (Sys.getenv_opt env_fd) int_of_string_opt with
  | Some n -> Child_fd (fd_of_int n)
  | None -> (
      match Sys.getenv_opt env_reuseport with
      | Some ("1" | "true") -> Child_reuseport
      | _ -> Child_plain)

(* ------------------------------------------------------------------ *)
(* Parent-side socket setup                                            *)
(* ------------------------------------------------------------------ *)

let reuseport_supported () =
  match Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> false
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.setsockopt fd Unix.SO_REUSEPORT true with
          | () -> true
          | exception _ -> false)

let is_unix_addr addr =
  String.length addr > 5 && String.sub addr 0 5 = "unix:"

let parse_tcp_addr addr =
  match String.rindex_opt addr ':' with
  | Some i ->
      let host = String.sub addr 0 i in
      let port = String.sub addr (i + 1) (String.length addr - i - 1) in
      let host = if host = "" then "127.0.0.1" else host in
      (host, int_of_string port)
  | None -> ("127.0.0.1", int_of_string addr)

let is_port_zero addr =
  match parse_tcp_addr addr with
  | _, 0 -> true
  | _ -> false
  | exception _ -> false

(* Bind + listen once in the parent; the fd is inherited by every shard
   (cloexec cleared — it must survive the exec). *)
let bind_listener addr : Unix.file_descr * string =
  let fd, bound =
    if is_unix_addr addr then begin
      let path = String.sub addr 5 (String.length addr - 5) in
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:false Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      (fd, addr)
    end
    else begin
      let host, port = parse_tcp_addr addr in
      let inet =
        try Unix.inet_addr_of_string host
        with _ -> (
          match Unix.gethostbyname host with
          | { Unix.h_addr_list = [||]; _ } -> raise Not_found
          | h -> h.Unix.h_addr_list.(0))
      in
      let fd = Unix.socket ~cloexec:false Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (a, p) ->
            Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
        | _ -> addr
      in
      (fd, bound)
    end
  in
  Unix.listen fd 64;
  Unix.clear_close_on_exec fd;
  (fd, bound)

(* ------------------------------------------------------------------ *)
(* Scraping a shard's admin socket                                     *)
(* ------------------------------------------------------------------ *)

(* A one-shot HTTP/1.0 GET against "unix:PATH" or "host:port"; the
   close-delimited body comes back whole. Deliberately tiny — the only
   client is the aggregator scraping its own children. *)
let http_get ?(timeout_s = 2.0) ~addr path : (int * string, string) result =
  match
    let fd, sockaddr =
      if is_unix_addr addr then
        ( Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0,
          Unix.ADDR_UNIX (String.sub addr 5 (String.length addr - 5)) )
      else
        let host, port = parse_tcp_addr addr in
        ( Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0,
          Unix.ADDR_INET (Unix.inet_addr_of_string host, port) )
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd sockaddr;
        let rq = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
        ignore (Unix.write_substring fd rq 0 (String.length rq));
        let deadline = Unix.gettimeofday () +. timeout_s in
        let b = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining > 0.0 then
            match Unix.select [ fd ] [] [] remaining with
            | [], _, _ -> ()
            | _ -> (
                match Unix.read fd chunk 0 (Bytes.length chunk) with
                | 0 -> ()
                | n ->
                    Buffer.add_subbytes b chunk 0 n;
                    drain ()
                | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _)
                  ->
                    drain ())
        in
        drain ();
        Buffer.contents b)
  with
  | exception e -> Error (Printexc.to_string e)
  | raw -> (
      let split_head s =
        let n = String.length s in
        let rec find i =
          if i + 3 >= n then None
          else if
            s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
            && s.[i + 3] = '\n'
          then Some (i + 4)
          else find (i + 1)
        in
        find 0
      in
      match split_head raw with
      | None -> Error "short response"
      | Some off -> (
          match String.split_on_char ' ' raw with
          | _ :: code :: _ -> (
              match int_of_string_opt code with
              | Some status ->
                  Ok (status, String.sub raw off (String.length raw - off))
              | None -> Error "bad status line")
          | _ -> Error "bad status line"))

(* ------------------------------------------------------------------ *)
(* Prometheus relabeling                                               *)
(* ------------------------------------------------------------------ *)

(* Tag every sample of one shard's exposition with [shard="<id>"];
   comment lines (# HELP / # TYPE) are passed through for [seen]-side
   dedup by the caller. *)
let relabel ~shard text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         if line = "" then None
         else if line.[0] = '#' then Some (`Meta line)
         else
           match String.index_opt line ' ' with
           | None -> Some (`Meta line)
           | Some sp ->
               let name = String.sub line 0 sp in
               let rest = String.sub line sp (String.length line - sp) in
               let labeled =
                 match String.index_opt name '{' with
                 | Some b ->
                     (* splice into the existing label set *)
                     String.sub name 0 (b + 1)
                     ^ Printf.sprintf "shard=%S," shard
                     ^ String.sub name (b + 1) (String.length name - b - 1)
                 | None -> Printf.sprintf "%s{shard=%S}" name shard
               in
               Some (`Sample (labeled ^ rest)))

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)
(* ------------------------------------------------------------------ *)

(* Per-shard health state machine (DESIGN.md §16):

     Up --crash--> Backoff --timer--> Up
     Up --3 failed probes--> SIGKILL --reap--> Backoff
     Backoff --restart budget exhausted--> Dead

   A successful health probe after [stability_s] of uptime resets the
   consecutive-restart counter, so the budget only ever trips on a
   genuine crash loop, not on occasional faults spread over hours. *)
type state = Up | Backoff | Dead

type shard = {
  sh_index : int;
  sh_admin : string;  (* "unix:PATH" scrape endpoint *)
  mutable sh_pid : int;
  mutable sh_state : state;
  mutable sh_spawned : float;  (* wall time of the last spawn *)
  mutable sh_fails : int;  (* consecutive failed health probes *)
  mutable sh_restarts : int;  (* consecutive restarts without stability *)
  mutable sh_backoff_until : float;
  mutable sh_last_metrics : string option;  (* last good /metrics.json *)
}

type t = {
  t_shards : shard array;
  t_dir : string;  (* per-run admin-socket (and postmortem) directory *)
}

let probe_interval_s = 1.0  (* health-probe cadence per shard *)
let probe_grace_s = 1.0  (* no probes until a fresh shard has bound *)
let probe_strikes = 3  (* consecutive failures before SIGKILL *)
let backoff_cap_s = 30.0
let stability_s = 5.0  (* uptime that forgives past restarts *)

let state_name = function Up -> "up" | Backoff -> "backoff" | Dead -> "dead"

(* 0.5, 1, 2, 4, ... seconds, capped — a crash-looping shard must not
   be respawned as fast as it can die. *)
let backoff_delay n = Float.min backoff_cap_s (0.5 *. (2.0 ** float (n - 1)))

let shard_sources t =
  Array.to_list t.t_shards
  |> List.map (fun s -> (string_of_int s.sh_index, s.sh_admin))

let aggregate_metrics t =
  let buf = Buffer.create 16_384 in
  let seen = Hashtbl.create 64 in
  let add_exposition ~shard text =
    List.iter
      (function
        | `Meta line ->
            if not (Hashtbl.mem seen line) then begin
              Hashtbl.add seen line ();
              Buffer.add_string buf line;
              Buffer.add_char buf '\n'
            end
        | `Sample line ->
            Buffer.add_string buf line;
            Buffer.add_char buf '\n')
      (relabel ~shard text)
  in
  List.iter
    (fun (shard, admin) ->
      match http_get ~addr:admin "/metrics" with
      | Ok (200, body) -> add_exposition ~shard body
      | Ok _ | Error _ -> ())
    (shard_sources t);
  (* the parent's own registry (shards.restarts, serve.requests of the
     aggregator itself) rides along under shard="parent" *)
  add_exposition ~shard:"parent" (Expose.render ());
  Buffer.contents buf

(* [pid] and [state] ride along so external tooling (the chaos harness)
   can target a specific shard process without guessing. *)
let aggregate_metrics_json t =
  let shard_objs =
    Array.to_list t.t_shards
    |> List.map (fun s ->
           let prefix =
             Printf.sprintf {|"shard":%d,"pid":%d,"state":%S,"restarts":%d|}
               s.sh_index s.sh_pid (state_name s.sh_state) s.sh_restarts
           in
           match
             if s.sh_state = Up then http_get ~addr:s.sh_admin "/metrics.json"
             else Error "not up"
           with
           | Ok (200, body) ->
               Printf.sprintf {|{%s,"up":true,"metrics":%s}|} prefix
                 (String.trim body)
           | Ok _ | Error _ ->
               Printf.sprintf {|{%s,"up":false}|} prefix)
  in
  Printf.sprintf {|{"shards":[%s]}|} (String.concat "," shard_objs)

let health t =
  let down =
    Array.to_list t.t_shards
    |> List.filter_map (fun s ->
           let id = string_of_int s.sh_index in
           if s.sh_state <> Up then Some id
           else
             match http_get ~addr:s.sh_admin "/healthz" with
             | Ok (200, _) -> None
             | Ok _ | Error _ -> Some id)
  in
  match down with
  | [] -> (200, "ok\n")
  | down ->
      (503, Printf.sprintf "shards down: %s\n" (String.concat ", " down))

let aggregator_handler t (rq : Serve.request) : Serve.response option =
  match (rq.Serve.rq_meth, rq.Serve.rq_path) with
  | "GET", "/metrics" ->
      Some
        {
          Serve.rs_status = 200;
          rs_content_type = "text/plain; version=0.0.4; charset=utf-8";
          rs_body = aggregate_metrics t;
        }
  | "GET", "/metrics.json" ->
      Some
        {
          Serve.rs_status = 200;
          rs_content_type = "application/json";
          rs_body = aggregate_metrics_json t ^ "\n";
        }
  | "GET", "/healthz" ->
      let status, body = health t in
      Some
        { Serve.rs_status = status; rs_content_type = "text/plain";
          rs_body = body }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Crash postmortems and the circuit breaker                           *)
(* ------------------------------------------------------------------ *)

let describe_status = function
  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n

(* One JSONL file per crash in the run directory: the crash record, the
   shard's last good /metrics.json scrape (its state died with it — this
   snapshot is all that survives), and the supervisor's flight recorder
   if one is armed. The run directory is deliberately left behind when
   postmortems exist, so the evidence outlives the run. *)
let postmortem t s ~pid ~status =
  let path =
    Filename.concat t.t_dir
      (Printf.sprintf "postmortem-shard-%d-pid-%d.jsonl" s.sh_index pid)
  in
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Printf.fprintf oc
          {|{"type":"shard_crash","shard":%d,"pid":%d,"restarts":%d,"status":%S,"uptime_s":%.3f}|}
          s.sh_index pid s.sh_restarts (describe_status status)
          (Unix.gettimeofday () -. s.sh_spawned);
        output_char oc '\n';
        (match s.sh_last_metrics with
        | Some m ->
            Printf.fprintf oc {|{"type":"last_metrics","shard":%d,"metrics":%s}|}
              s.sh_index (String.trim m);
            output_char oc '\n'
        | None -> ());
        if Tytra_dse.Flightrec.is_enabled () then
          output_string oc (Tytra_dse.Flightrec.to_jsonl ()));
    Some path
  with Sys_error _ -> None

(* When every shard is down the kernel would let connections queue in
   the listen backlog until they time out — the worst failure mode, an
   untyped hang. The breaker takes over the work address and answers
   everything with a typed [overloaded] immediately, so clients fail
   fast and can back off. *)
let breaker_handler (_ : Serve.request) : Serve.response option =
  Some
    {
      Serve.rs_status = 429;
      rs_content_type = "application/json";
      rs_body = Protocol.encode_error Engine.Overloaded ^ "\n";
    }

let run ?(restart_budget = 8) ~shards:n ~addr ~admin_addr
    ~(child_argv : shard:int -> admin_addr:string -> string array) () =
  if n < 1 then invalid_arg "Shards.run: shards must be >= 1";
  Tytra_telemetry.Control.set_enabled true;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tybec-shards-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (* socket mode: kernel balancing when we can, inherited fd when we
     must (unix sockets, ephemeral ports, old kernels) *)
  let inherited, bound_addr =
    if is_unix_addr addr || is_port_zero addr || not (reuseport_supported ())
    then
      let fd, bound = bind_listener addr in
      (Some fd, bound)
    else (None, addr)
  in
  let base_env =
    Array.to_list (Unix.environment ())
    |> List.filter (fun s ->
           not
             (String.starts_with ~prefix:(env_fd ^ "=") s
             || String.starts_with ~prefix:(env_reuseport ^ "=") s))
  in
  let child_env =
    (match inherited with
    | Some fd -> Printf.sprintf "%s=%d" env_fd (int_of_fd fd)
    | None -> env_reuseport ^ "=1")
    :: base_env
    |> Array.of_list
  in
  let spawn i admin =
    let argv = child_argv ~shard:i ~admin_addr:admin in
    Unix.create_process_env argv.(0) argv child_env Unix.stdin Unix.stdout
      Unix.stderr
  in
  let now0 = Unix.gettimeofday () in
  let t =
    {
      t_dir = dir;
      t_shards =
        Array.init n (fun i ->
            let admin =
              "unix:" ^ Filename.concat dir (Printf.sprintf "shard-%d.sock" i)
            in
            {
              sh_index = i;
              sh_admin = admin;
              sh_pid = spawn i admin;
              sh_state = Up;
              sh_spawned = now0;
              sh_fails = 0;
              sh_restarts = 0;
              sh_backoff_until = 0.0;
              sh_last_metrics = None;
            });
    }
  in
  let stopping = Atomic.make false in
  let on_stop = Sys.Signal_handle (fun _ -> Atomic.set stopping true) in
  Sys.set_signal Sys.sigterm on_stop;
  Sys.set_signal Sys.sigint on_stop;
  let agg = Serve.start ~handler:(aggregator_handler t) ~addr:admin_addr () in
  Printf.eprintf
    "tybec: %d shard(s) on %s (%s), supervisor pid %d, admin %s\n%!" n
    bound_addr
    (if inherited = None then "SO_REUSEPORT" else "inherited fd")
    (Unix.getpid ()) (Serve.bound_addr agg);
  (* --- circuit breaker ------------------------------------------- *)
  let breaker : Serve.server option ref = ref None in
  let trip_breaker () =
    if !breaker = None && not (Atomic.get stopping) then begin
      Metrics.incr "shards.breaker_trips";
      Printf.eprintf
        "tybec: all shards down, circuit breaker shedding load on %s\n%!"
        bound_addr;
      breaker :=
        (try
           Some
             (match inherited with
             | Some fd ->
                 (* dup: Serve.stop closes its fd, and the original must
                    survive for the shards still inheriting it *)
                 Serve.start ~handler:breaker_handler
                   ~error_responder:Daemon.wire_error ~workers:2
                   ~queue_cap:16 ~listen_fd:(Unix.dup fd) ~addr:bound_addr ()
             | None ->
                 Serve.start ~handler:breaker_handler
                   ~error_responder:Daemon.wire_error ~workers:2
                   ~queue_cap:16 ~reuseport:true ~addr:bound_addr ())
         with Failure _ | Unix.Unix_error _ -> None)
    end
  in
  let reset_breaker reason =
    match !breaker with
    | None -> ()
    | Some sv ->
        Printf.eprintf "tybec: circuit breaker reset (%s)\n%!" reason;
        breaker := None;
        Serve.stop sv
  in
  (* --- supervision ------------------------------------------------ *)
  let handle_crash s ~pid ~status =
    s.sh_restarts <- s.sh_restarts + 1;
    Metrics.incr "shards.crashes";
    Tytra_telemetry.Events.emit
      (Tytra_telemetry.Events.Shard_crash
         { shard = s.sh_index; pid; restarts = s.sh_restarts });
    let dumped = postmortem t s ~pid ~status in
    if s.sh_restarts > restart_budget then begin
      s.sh_state <- Dead;
      Printf.eprintf
        "tybec: shard %d (pid %d) died (%s); restart budget (%d) exhausted, \
         shard marked dead%s\n%!"
        s.sh_index pid (describe_status status) restart_budget
        (match dumped with
        | Some p -> ", postmortem " ^ p
        | None -> "")
    end
    else begin
      let delay = backoff_delay s.sh_restarts in
      s.sh_state <- Backoff;
      s.sh_backoff_until <- Unix.gettimeofday () +. delay;
      Printf.eprintf
        "tybec: shard %d (pid %d) died (%s), restart %d/%d in %.1fs%s\n%!"
        s.sh_index pid (describe_status status) s.sh_restarts restart_budget
        delay
        (match dumped with
        | Some p -> ", postmortem " ^ p
        | None -> "")
    end
  in
  let last_probe = ref 0.0 in
  while not (Atomic.get stopping) do
    (try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    (* 1. reap crashed shards *)
    let rec reap () =
      match Unix.waitpid [ Unix.WNOHANG ] (-1) with
      | 0, _ -> ()
      | pid, status ->
          if not (Atomic.get stopping) then
            Array.iter
              (fun s ->
                if s.sh_pid = pid && s.sh_state = Up then
                  handle_crash s ~pid ~status)
              t.t_shards;
          reap ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
    in
    reap ();
    (* 2. respawn shards whose backoff has elapsed *)
    let now = Unix.gettimeofday () in
    if not (Atomic.get stopping) then
      Array.iter
        (fun s ->
          if s.sh_state = Backoff && now >= s.sh_backoff_until then begin
            Metrics.incr "shards.restarts";
            Printf.eprintf "tybec: shard %d restarting (attempt %d)\n%!"
              s.sh_index s.sh_restarts;
            s.sh_pid <- spawn s.sh_index s.sh_admin;
            s.sh_state <- Up;
            s.sh_spawned <- now;
            s.sh_fails <- 0
          end)
        t.t_shards;
    (* 3. health probes: catch shards that are alive but hung *)
    if now -. !last_probe >= probe_interval_s then begin
      last_probe := now;
      Array.iter
        (fun s ->
          if s.sh_state = Up && now -. s.sh_spawned >= probe_grace_s then
            match http_get ~timeout_s:1.0 ~addr:s.sh_admin "/healthz" with
            | Ok (200, _) ->
                s.sh_fails <- 0;
                if
                  s.sh_restarts > 0 && now -. s.sh_spawned >= stability_s
                then
                  s.sh_restarts <- 0;
                (match http_get ~timeout_s:1.0 ~addr:s.sh_admin
                         "/metrics.json"
                 with
                | Ok (200, body) -> s.sh_last_metrics <- Some body
                | Ok _ | Error _ -> ());
                reset_breaker
                  (Printf.sprintf "shard %d healthy" s.sh_index)
            | Ok _ | Error _ ->
                s.sh_fails <- s.sh_fails + 1;
                if s.sh_fails >= probe_strikes then begin
                  Printf.eprintf
                    "tybec: shard %d (pid %d) hung (%d failed probes), \
                     killing\n%!"
                    s.sh_index s.sh_pid s.sh_fails;
                  Metrics.incr "shards.hung_kills";
                  try Unix.kill s.sh_pid Sys.sigkill
                  with Unix.Unix_error _ -> ()
                end)
        t.t_shards
    end;
    (* 4. trip the breaker when nothing is left to serve *)
    if Array.for_all (fun s -> s.sh_state <> Up) t.t_shards then
      trip_breaker ()
  done;
  (* graceful drain: forward the signal, wait for every shard to finish
     answering its in-flight requests, then take the front down *)
  prerr_endline "tybec: shards: draining";
  reset_breaker "shutdown";
  Array.iter
    (fun s ->
      if s.sh_state = Up then
        try Unix.kill s.sh_pid Sys.sigterm with Unix.Unix_error _ -> ())
    t.t_shards;
  Array.iter
    (fun s ->
      let rec wait () =
        match Unix.waitpid [] s.sh_pid with
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      in
      if s.sh_state = Up then wait ())
    t.t_shards;
  Serve.stop agg;
  (match inherited with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  if is_unix_addr addr then begin
    try Unix.unlink (String.sub addr 5 (String.length addr - 5))
    with Unix.Unix_error _ -> ()
  end;
  Array.iter
    (fun s ->
      try Unix.unlink (String.sub s.sh_admin 5 (String.length s.sh_admin - 5))
      with Unix.Unix_error _ -> ())
    t.t_shards;
  (try Unix.rmdir t.t_dir with Unix.Unix_error _ -> ());
  Printf.eprintf "tybec: shards stopped (%d supervisor restarts)\n%!"
    (match Metrics.counter_value "shards.restarts" with
    | Some v -> int_of_float v
    | None -> 0)
