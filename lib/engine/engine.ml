(** The cost-model engine: one typed front door for every tybec verb.

    [tybec] subcommands used to own the whole request lifecycle — parse,
    validate, resolve the device, evaluate, render. That worked for a
    one-shot CLI but made every invocation pay the cold-start tax and
    left nothing for a long-lived service to hold on to. This module
    extracts the lifecycle behind a typed API:

    - {!create} builds an engine holding the shared caches (a
      content-addressed parse+validate cache here; the cost-model stage
      caches and the DSE template/point caches are process-global and
      warm up behind it) and a persistent {!Tytra_exec.Pool} for
      exploration requests.
    - {!submit} runs one typed {!request} to a typed {!response} or
      {!error}. Requests never raise: parse and validation failures,
      deadline expiry and escaped exceptions all come back as typed
      errors with a stable {!exit_code} mapping.

    The CLI is a thin adapter over this module (flags in, [rs_text]
    out); [tybec serve] speaks the same API over the wire through
    {!Protocol} and {!Daemon}. Byte-compatibility contract: [rs_text] is
    exactly what the pre-engine CLI printed to stdout, rendered through
    the same pretty-printers in the same order. *)

module Ast = Tytra_ir.Ast
module Cache = Tytra_exec.Cache
module Task = Tytra_exec.Task
module Pool = Tytra_exec.Pool
module Span = Tytra_telemetry.Span
module Metrics = Tytra_telemetry.Metrics

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)
(* ------------------------------------------------------------------ *)

(** Where the design text comes from. [File] reads (and digests) the
    file; [Inline] carries the TyTra-IR text in the request itself — the
    natural shape for remote clients of [tybec serve]. *)
type source = File of string | Inline of string

(** Built-in kernels of the exploration front end. *)
type kernel = Sor | Hotspot | Lavamd | Srad

let kernel_to_string = function
  | Sor -> "sor"
  | Hotspot -> "hotspot"
  | Lavamd -> "lavamd"
  | Srad -> "srad"

let kernel_of_string = function
  | "sor" -> Some Sor
  | "hotspot" -> Some Hotspot
  | "lavamd" -> Some Lavamd
  | "srad" -> Some Srad
  | _ -> None

(** Parameters of one exploration request — the typed twin of the
    [tybec explore] flag set. *)
type explore_params = {
  x_kernel : kernel;
  x_size : int;             (** grid side (sor/hotspot/srad) or boxes *)
  x_max_lanes : int;
  x_device : Tytra_device.Device.t;
  x_form : Tytra_cost.Throughput.form;
  x_nki : int;
  x_jobs : int;             (** evaluation domains; 0 = one per core *)
  x_prune : bool;
  x_retries : int;          (** per-point retry budget *)
  x_deadline_s : float option;  (** cooperative per-point deadline *)
  x_best_effort : bool;     (** quarantine failed points, don't abort *)
  x_checkpoint : string option;
  x_checkpoint_every : int;
  x_resume : string option;
  x_place_mode : Tytra_sim.Techmap.place_mode option;
      (** placement engine for the sweep; [None] = ambient mode *)
}

type request =
  | Check of { source : source }
  | Cost of {
      source : source;
      device : Tytra_device.Device.t;
      form : Tytra_cost.Throughput.form;
      nki : int;
      optimize : bool;
      calib : string option;  (** calibration file path *)
    }
  | Synth of {
      source : source;
      device : Tytra_device.Device.t;
      effort : [ `Fast | `Normal | `Full ];
      optimize : bool;
    }
  | Sim of {
      source : source;
      device : Tytra_device.Device.t;
      form : Tytra_cost.Throughput.form;
      nki : int;
      optimize : bool;
    }
  | Explore of explore_params

let op_name = function
  | Check _ -> "check"
  | Cost _ -> "cost"
  | Synth _ -> "synth"
  | Sim _ -> "sim"
  | Explore _ -> "explore"

(* ------------------------------------------------------------------ *)
(* Responses and errors                                                *)
(* ------------------------------------------------------------------ *)

(** Structured result fields, one constructor per request kind. *)
type payload =
  | Checked of { ck_design : string; ck_funcs : int; ck_streams : int }
  | Costed of { co_ekit : float; co_valid : bool }
  | Synthed of { sy_fmax_mhz : float; sy_synth_s : float }
  | Simmed of { si_ekit : float; si_total_s : float }
  | Explored of {
      xr_space : int;
      xr_evaluated : int;
      xr_pruned : int;
      xr_failed : int;
      xr_restored : int;
      xr_points : int;
      xr_pareto : int;
      xr_selected : string option;
    }

type response = {
  rs_text : string;
      (** the exact CLI stdout rendering of this result (the CLI prints
          it verbatim; remote clients may ignore it) *)
  rs_payload : payload;
}

type error =
  | Bad_request of string      (** malformed request (wire decode, unknown device) *)
  | Parse_error of string      (** source unreadable or not TyTra-IR *)
  | Validation_error of string (** parsed but statically invalid *)
  | Timeout_error of float     (** request-level cooperative deadline expired *)
  | Deadline_exceeded of float
      (** deadline budget exhausted {e before} evaluation started
          (batch-window admission, queue expiry) — the request was
          never run, so retrying with a larger budget is safe *)
  | Request_too_large of int   (** request body exceeded the wire cap (bytes) *)
  | Internal_error of string   (** an exception escaped the evaluation *)
  | Overloaded                 (** serve-side admission control shed this request *)

(* The documented CLI contract (README "Exit codes"): 0 success,
   1 internal, 2 parse/input, 3 validation. *)
let exit_code = function
  | Bad_request _ | Parse_error _ | Request_too_large _ -> 2
  | Validation_error _ -> 3
  | Timeout_error _ | Deadline_exceeded _ | Internal_error _ | Overloaded -> 1

let error_message = function
  | Bad_request m | Parse_error m | Validation_error m | Internal_error m -> m
  | Timeout_error allotted ->
      Printf.sprintf "request deadline exceeded (%g s)" allotted
  | Deadline_exceeded budget ->
      Printf.sprintf
        "deadline budget (%g s) exhausted before evaluation started" budget
  | Request_too_large cap ->
      Printf.sprintf "request body exceeds the %d-byte limit" cap
  | Overloaded -> "engine overloaded, retry later"

(** Stable machine-readable discriminator (the wire ["error"] field). *)
let error_kind = function
  | Bad_request _ -> "bad_request"
  | Parse_error _ -> "parse"
  | Validation_error _ -> "validation"
  | Timeout_error _ -> "timeout"
  | Deadline_exceeded _ -> "deadline_exceeded"
  | Request_too_large _ -> "request_too_large"
  | Internal_error _ -> "internal"
  | Overloaded -> "overloaded"

(* ------------------------------------------------------------------ *)
(* Engine state                                                        *)
(* ------------------------------------------------------------------ *)

type config = {
  jobs : int;  (** persistent evaluation-pool width for exploration *)
  parse_cache_capacity : int;
      (** entries in the content-addressed parse+validate cache *)
  response_cache_capacity : int;
      (** entries in the full-request response cache *)
  cache_journal : string option;
      (** journal response-cache insertions to this file and replay it
          at {!create}, so the warm cache survives a crash *)
}

let default_config =
  { jobs = 1; parse_cache_capacity = 64; response_cache_capacity = 128;
    cache_journal = None }

type t = {
  cfg : config;
  pool : Pool.t;
  parse_cache : (Ast.design, Tytra_ir.Error.t) result Cache.t;
  response_cache : response Cache.t;
  journal : Journal.t option;
}

(* The journal payload is the marshaled response. Only bytes that came
   back digest-valid from [Journal.load] reach [from_string], so the
   unmarshal cannot read torn data; a response written by a different
   binary is caught by the digest only if the file was torn, hence the
   exception guard — an undecodable payload is skipped, never fatal. *)
let response_of_journal (payload : string) : response option =
  match (Marshal.from_string payload 0 : response) with
  | rs -> Some rs
  | exception _ -> None

let replay_journal response_cache path =
  let entries, skipped = Journal.load path in
  let replayed =
    List.fold_left
      (fun n (key, payload) ->
        match response_of_journal payload with
        | Some rs ->
            Cache.add response_cache ~key rs;
            n + 1
        | None -> n)
      0 entries
  in
  if replayed > 0 then Metrics.incr ~by:replayed "engine.journal.replayed";
  let skipped = skipped + (List.length entries - replayed) in
  if skipped > 0 then Metrics.incr ~by:skipped "engine.journal.skipped";
  Logs.info (fun m ->
      m "cache journal %s: replayed %d entr%s (%d skipped)" path replayed
        (if replayed = 1 then "y" else "ies")
        skipped)

let create cfg =
  let response_cache =
    Cache.create ~metrics_prefix:"engine.response_cache"
      ~capacity:(max 1 cfg.response_cache_capacity) ()
  in
  let journal =
    match cfg.cache_journal with
    | None -> None
    | Some path ->
        replay_journal response_cache path;
        let j = Journal.open_append path in
        if j = None then
          Logs.warn (fun m ->
              m "cache journal %s: cannot open for append, journaling off"
                path);
        j
  in
  {
    cfg;
    pool = Pool.create ~jobs:(max 1 cfg.jobs) ();
    parse_cache =
      Cache.create ~metrics_prefix:"engine.parse_cache"
        ~capacity:(max 1 cfg.parse_cache_capacity) ();
    response_cache;
    journal;
  }

let config t = t.cfg
let parse_cache_stats t = Cache.stats t.parse_cache
let response_cache_stats t = Cache.stats t.response_cache

(* ------------------------------------------------------------------ *)
(* Loading: content-addressed parse + validate                         *)
(* ------------------------------------------------------------------ *)

let validate_design d =
  match Tytra_ir.Validate.check d with
  | [] -> Ok d
  | errs -> Error (Tytra_ir.Error.Invalid errs)

(* The cache key includes the diagnostic name alongside the bytes:
   located errors ("path:3: parse error ...") embed the path, so the
   same bytes under two names must not share an entry. *)
let load_design_ir t (src : source) : (Ast.design, Tytra_ir.Error.t) result =
  match src with
  | Inline text ->
      let key = Cache.digest_key [ "inline"; text ] in
      Cache.find_or_add t.parse_cache ~key (fun () ->
          Result.bind (Tytra_ir.Parser.parse_result text) validate_design)
  | File path -> (
      match
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | exception Sys_error msg -> Error (Tytra_ir.Error.Io { path; msg })
      | text ->
          let key = Cache.digest_key [ "file"; path; text ] in
          Cache.find_or_add t.parse_cache ~key (fun () ->
              Result.bind
                (Tytra_ir.Parser.parse_result
                   ~name:(Filename.remove_extension (Filename.basename path))
                   ~file:path text)
                validate_design))

let error_of_ir (e : Tytra_ir.Error.t) =
  match e with
  | Tytra_ir.Error.Invalid _ -> Validation_error (Tytra_ir.Error.to_string e)
  | Tytra_ir.Error.Lex _ | Tytra_ir.Error.Parse _ | Tytra_ir.Error.Io _ ->
      Parse_error (Tytra_ir.Error.to_string e)

let load_design t src = Result.map_error error_of_ir (load_design_ir t src)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

(* Every renderer writes into a fresh buffer formatter with the default
   geometry — the same margins [Format.printf] used when the CLI printed
   these reports directly, so [rs_text] stays byte-identical. *)
let render f =
  let b = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer b in
  let v = f fmt in
  Format.pp_print_flush fmt ();
  (Buffer.contents b, v)

let maybe_optimize opt d =
  if opt then begin
    let d', st = Tytra_ir.Optim.run d in
    Logs.info (fun m -> m "optimizer: %a" Tytra_ir.Optim.pp_stats st);
    d'
  end
  else d

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let do_check t ~source =
  let* d = load_design t source in
  let text, () =
    render (fun fmt ->
        Format.fprintf fmt "%s: valid TyTra-IR design (%d functions, %d streams)@."
          d.Ast.d_name
          (List.length d.Ast.d_funcs)
          (List.length d.Ast.d_streams);
        Format.fprintf fmt "%a@."
          (fun fmt n -> Tytra_ir.Config_tree.pp_node fmt n)
          (Tytra_ir.Config_tree.build d))
  in
  Ok
    {
      rs_text = text;
      rs_payload =
        Checked
          {
            ck_design = d.Ast.d_name;
            ck_funcs = List.length d.Ast.d_funcs;
            ck_streams = List.length d.Ast.d_streams;
          };
    }

let load_calib = function
  | None -> Ok None
  | Some f ->
      (* a calibration file that does not parse is an input error, same
         class as a bad .tirl *)
      Result.map Option.some
        (Result.map_error (fun m -> Parse_error m) (Tytra_device.Calib_io.load f))

let do_cost t ~source ~device ~form ~nki ~optimize ~calib:calib_file =
  let* d = load_design t source in
  let* calib = load_calib calib_file in
  let d = maybe_optimize optimize d in
  let r = Tytra_cost.Report.evaluate ~device ?calib ~form ~nki d in
  Task.check ();
  let text, () =
    Span.with_ ~name:"tybec.report" @@ fun () ->
    render (fun fmt ->
        Format.fprintf fmt "%a@." Tytra_cost.Report.pp r;
        Format.fprintf fmt "form selection:@.%a@." Tytra_cost.Formsel.pp
          (Tytra_cost.Formsel.recommend ~device ?calib ~nki d);
        Format.fprintf fmt "@.roofline: %a@." Tytra_cost.Roofline.pp
          (Tytra_cost.Roofline.of_design ~device ?calib ~form ~nki d))
  in
  Ok
    {
      rs_text = text;
      rs_payload =
        Costed
          {
            co_ekit =
              r.Tytra_cost.Report.rp_breakdown.Tytra_cost.Throughput.bd_ekit;
            co_valid = r.Tytra_cost.Report.rp_valid;
          };
    }

let do_synth t ~source ~device ~effort ~optimize =
  let* d = load_design t source in
  let d = maybe_optimize optimize d in
  let t0 = Unix.gettimeofday () in
  let r = Tytra_sim.Techmap.run ~device ~effort d in
  let dt = Unix.gettimeofday () -. t0 in
  Task.check ();
  let text, () =
    render (fun fmt ->
        Format.fprintf fmt "%a@." Tytra_sim.Techmap.pp_report r;
        Format.fprintf fmt "synthesis time: %.2f s@." dt)
  in
  Ok
    {
      rs_text = text;
      rs_payload =
        Synthed
          { sy_fmax_mhz = r.Tytra_sim.Techmap.tm_fmax_mhz; sy_synth_s = dt };
    }

let do_sim t ~source ~device ~form ~nki ~optimize =
  let* d = load_design t source in
  let sform =
    match form with
    | Tytra_cost.Throughput.FormA -> Tytra_sim.Cyclesim.A
    | Tytra_cost.Throughput.FormB -> Tytra_sim.Cyclesim.B
    | Tytra_cost.Throughput.FormC -> Tytra_sim.Cyclesim.C
  in
  let d = maybe_optimize optimize d in
  let r = Tytra_sim.Cyclesim.run ~device ~form:sform ~nki d in
  Task.check ();
  let text, () =
    render (fun fmt -> Format.fprintf fmt "%a@." Tytra_sim.Cyclesim.pp_result r)
  in
  Ok
    {
      rs_text = text;
      rs_payload =
        Simmed
          {
            si_ekit = r.Tytra_sim.Cyclesim.r_ekit;
            si_total_s = r.Tytra_sim.Cyclesim.r_total_s;
          };
    }

let program_of = function
  | { x_kernel = Sor; x_size = s; _ } ->
      Tytra_kernels.Sor.program ~im:s ~jm:s ~km:s ()
  | { x_kernel = Hotspot; x_size = s; _ } ->
      Tytra_kernels.Hotspot.program ~rows:s ~cols:s ()
  | { x_kernel = Lavamd; x_size = s; _ } ->
      Tytra_kernels.Lavamd.program ~boxes:s ()
  | { x_kernel = Srad; x_size = s; _ } ->
      Tytra_kernels.Srad.program ~rows:s ~cols:s ()

let do_explore t ?on_progress (x : explore_params) =
  let module Dse = Tytra_dse.Dse in
  let prog = program_of x in
  let jobs = if x.x_jobs = 0 then Pool.default_jobs () else x.x_jobs in
  let config =
    { Dse.default_config with
      device = x.x_device; form = x.x_form; nki = x.x_nki;
      max_lanes = x.x_max_lanes; jobs; prune = x.x_prune;
      max_attempts = 1 + max 0 x.x_retries; deadline_s = x.x_deadline_s;
      fail_fast = not x.x_best_effort; checkpoint = x.x_checkpoint;
      checkpoint_every = x.x_checkpoint_every; on_progress;
      place_mode = x.x_place_mode }
  in
  let* restore, resumed =
    match x.x_resume with
    | None -> Ok (None, None)
    | Some path -> (
        match Dse.load_checkpoint ~path config prog with
        | Ok pts -> Ok (Some pts, Some (List.length pts, path))
        | Error m -> Error (Parse_error m))
  in
  (* Exploration shares the engine's persistent pool when the requested
     width matches; an explicit -j N gets its own width (the surviving
     point set under pruning is jobs-dependent, so the width must honor
     the request exactly). *)
  let pool =
    if jobs = Pool.jobs t.pool then t.pool else Pool.create ~jobs ()
  in
  let sw = Dse.explore_sweep_in ~pool ~config ?restore prog in
  let pts = sw.Dse.sw_points in
  let front = Dse.pareto pts in
  let text, selected =
    Span.with_ ~name:"tybec.report" @@ fun () ->
    render (fun fmt ->
        (match resumed with
        | Some (n, path) ->
            Format.fprintf fmt "resumed %d points from %s@." n path
        | None -> ());
        List.iter (fun p -> Format.fprintf fmt "%a@." Dse.pp_point p) pts;
        List.iter
          (fun b ->
            Format.fprintf fmt "%-16s pruned (%s): %a@."
              (Tytra_front.Transform.to_string b.Dse.bp_variant)
              (Dse.prune_reason_to_string b.Dse.bp_reason)
              Tytra_cost.Bounds.pp b.Dse.bp_bounds)
          sw.Dse.sw_bounded;
        List.iter
          (fun e -> Format.fprintf fmt "%a@." Dse.pp_sweep_error e)
          sw.Dse.sw_errors;
        Format.fprintf fmt "sweep: %a@." Dse.pp_sweep_stats sw.Dse.sw_stats;
        Format.fprintf fmt "pareto front: %d of %d points@."
          (List.length front) (List.length pts);
        match Dse.best pts with
        | Some b ->
            let s = Tytra_front.Transform.to_string b.Dse.dp_variant in
            Format.fprintf fmt "selected: %s@." s;
            Some s
        | None ->
            Format.fprintf fmt "no valid variant@.";
            None)
  in
  let st = sw.Dse.sw_stats in
  Ok
    {
      rs_text = text;
      rs_payload =
        Explored
          {
            xr_space = st.Dse.ss_space;
            xr_evaluated = st.Dse.ss_evaluated;
            xr_pruned = st.Dse.ss_pruned_resource + st.Dse.ss_pruned_incumbent;
            xr_failed = st.Dse.ss_failed;
            xr_restored = st.Dse.ss_restored;
            xr_points = List.length pts;
            xr_pareto = List.length front;
            xr_selected = selected;
          };
    }

let dispatch t ?on_progress = function
  | Check { source } -> do_check t ~source
  | Cost { source; device; form; nki; optimize; calib } ->
      do_cost t ~source ~device ~form ~nki ~optimize ~calib
  | Synth { source; device; effort; optimize } ->
      do_synth t ~source ~device ~effort ~optimize
  | Sim { source; device; form; nki; optimize } ->
      do_sim t ~source ~device ~form ~nki ~optimize
  | Explore x -> do_explore t ?on_progress x

(* ------------------------------------------------------------------ *)
(* Response cache                                                      *)
(* ------------------------------------------------------------------ *)

(* The key digests the *full* request: op, every parameter that can
   influence the response, the content behind every path parameter
   (source bytes, calibration bytes — a path alone is not a key; the
   path itself still participates because diagnostic names and design
   names embed it), and ambient state the evaluation reads (the resolved
   placement mode, for synthesis). [None] means uncacheable: an Explore
   with checkpoint/resume side effects, and a source or calib file that
   cannot be read (keyless, falls through to the normal error path). A
   {e pure} Explore — no checkpoint file, no resume — is cacheable like
   any other request when [cache_explore] is set (the caller clears it
   when an [on_progress] observer is attached, so streamed explores
   always evaluate live and emit their frames). Only [Ok] responses are
   inserted, so errors are re-derived (and re-rendered with current
   file state) every time. *)

let read_file_opt path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> Some text
  | exception Sys_error _ -> None

let source_key = function
  | Inline text -> Some [ "inline"; text ]
  | File path ->
      Option.map (fun text -> [ "file"; path; text ]) (read_file_opt path)

let request_key ?(cache_explore = false) (req : request) : string option =
  let ( let* ) = Option.bind in
  match req with
  | Explore x ->
      if
        (not cache_explore) || x.x_checkpoint <> None || x.x_resume <> None
      then None
      else
        (* the surviving point set under pruning is jobs-dependent, so
           the resolved width keys; ambient placement mode keys exactly
           as for Synth *)
        let jobs = if x.x_jobs = 0 then Pool.default_jobs () else x.x_jobs in
        let place =
          match x.x_place_mode with
          | Some m -> m
          | None -> Tytra_sim.Techmap.place_mode ()
        in
        Some
          (Cache.digest_key
             [ "explore";
               Cache.digest_marshal { x with x_jobs = jobs };
               Tytra_sim.Techmap.place_mode_to_string place ])
  | Check { source } ->
      let* src = source_key source in
      Some (Cache.digest_key ("check" :: src))
  | Cost { source; device; form; nki; optimize; calib } ->
      let* src = source_key source in
      let* calib_part =
        match calib with
        | None -> Some [ "nocalib" ]
        | Some path ->
            Option.map
              (fun text -> [ "calib"; path; text ])
              (read_file_opt path)
      in
      Some
        (Cache.digest_key
           (("cost" :: src)
           @ calib_part
           @ [ Cache.digest_marshal (device, form, nki, optimize) ]))
  | Synth { source; device; effort; optimize } ->
      let* src = source_key source in
      (* synthesis output depends on the active placement engine *)
      Some
        (Cache.digest_key
           (("synth" :: src)
           @ [
               Cache.digest_marshal (device, effort, optimize);
               Tytra_sim.Techmap.place_mode_to_string
                 (Tytra_sim.Techmap.place_mode ());
             ]))
  | Sim { source; device; form; nki; optimize } ->
      let* src = source_key source in
      Some
        (Cache.digest_key
           (("sim" :: src)
           @ [ Cache.digest_marshal (device, form, nki, optimize) ]))

let journal_insert t ~key rs =
  match t.journal with
  | None -> ()
  | Some j ->
      Journal.append j ~key ~payload:(Marshal.to_string rs []);
      Metrics.incr "engine.journal.appended"

let dispatch_cached t ?on_progress req =
  (* an attached progress observer pins the request to live evaluation:
     a cache hit would answer correctly but silently skip every frame *)
  match request_key ~cache_explore:(on_progress = None) req with
  | None -> dispatch t ?on_progress req
  | Some key -> (
      match Cache.find t.response_cache ~key with
      | Some rs -> Ok rs
      | None ->
          let r = dispatch t ?on_progress req in
          (match r with
          | Ok rs ->
              Cache.add t.response_cache ~key rs;
              journal_insert t ~key rs
          | Error _ -> ());
          r)

let run_one ?deadline_s ?(retries = 0) ?on_progress t req =
  Metrics.incr "engine.requests";
  Span.with_ ~name:"engine.submit"
    ~attrs:[ ("op", Span.Str (op_name req)) ]
  @@ fun () ->
  let attempt () =
    match
      Task.with_context ?deadline_s (fun () ->
          dispatch_cached t ?on_progress req)
    with
    | r -> r
    | exception Task.Timeout allotted when deadline_s <> None ->
        (* only the request-level deadline is reported as a timeout; a
           per-point deadline escaping a fail-fast sweep keeps its
           historical internal-error shape *)
        Error (Timeout_error allotted)
    | exception e -> Error (Internal_error (Printexc.to_string e))
  in
  let rec go n =
    match attempt () with
    | Ok _ as ok -> ok
    | Error (Internal_error _ | Timeout_error _) when n < retries ->
        (* transient-class failures burn the retry budget; parse and
           validation errors are deterministic and fail immediately *)
        Metrics.incr "engine.retries";
        go (n + 1)
    | Error _ as e ->
        Metrics.incr "engine.errors";
        e
  in
  go 0

let submit ?deadline_s ?retries ?on_progress t req =
  run_one ?deadline_s ?retries ?on_progress t req

(* ------------------------------------------------------------------ *)
(* Batched submission                                                  *)
(* ------------------------------------------------------------------ *)

type batch_item = {
  bi_request : request;
  bi_deadline_s : float option;
  bi_retries : int;
}

let batch_item ?deadline_s ?(retries = 0) req =
  { bi_request = req; bi_deadline_s = deadline_s; bi_retries = retries }

(* One pool dispatch for many requests. Items whose (request digest,
   deadline, retries) triple coincides are deduplicated: the request
   runs once and every duplicate shares its result — exactly what the
   response cache would have answered for all but the first, minus the
   race where identical in-flight requests each miss and each pay the
   evaluation. Explore requests (and requests over unreadable files)
   have no digest and are never coalesced. Error isolation is free:
   [run_one] never raises, so [Pool.map]'s first-exception contract is
   vacuous and a failing item cannot abort its batchmates. Nested
   parallelism degrades safely: an [Explore] item fanning out on its own
   pool inside a worker runs sequentially ([Pool.inside_worker]). *)
let submit_batch t (items : batch_item list) : (response, error) result list =
  match items with
  | [] -> []
  | _ ->
      let n = List.length items in
      Metrics.incr ~by:n "engine.batch.requests";
      Metrics.incr "engine.batch.dispatches";
      Metrics.observe "engine.batch.occupancy" (float_of_int n);
      (* group: first-occurrence order; each group carries one
         representative item, every item an index into the groups *)
      let tbl = Hashtbl.create (2 * n) in
      let reps = ref [] and ngroups = ref 0 in
      let assign =
        List.mapi
          (fun i it ->
            let key =
              match request_key it.bi_request with
              | None -> Printf.sprintf "unique:%d" i
              | Some digest ->
                  Printf.sprintf "digest:%s|deadline:%s|retries:%d" digest
                    (match it.bi_deadline_s with
                    | None -> "-"
                    | Some d -> string_of_float d)
                    it.bi_retries
            in
            match Hashtbl.find_opt tbl key with
            | Some g -> g
            | None ->
                let g = !ngroups in
                Hashtbl.add tbl key g;
                incr ngroups;
                reps := it :: !reps;
                g)
          items
      in
      Metrics.incr ~by:(n - !ngroups) "engine.batch.dedup_hits";
      let results =
        Pool.map t.pool
          (fun it ->
            run_one ?deadline_s:it.bi_deadline_s ~retries:it.bi_retries t
              it.bi_request)
          (List.rev !reps)
        |> Array.of_list
      in
      List.map (fun g -> results.(g)) assign
