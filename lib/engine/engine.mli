(** Cost-model engine: the typed request lifecycle behind every tybec
    verb.

    Public interface of [Tytra_engine.Engine]. {!create} an engine once,
    {!submit} any number of typed requests against it: the engine holds
    the shared warm state (content-addressed parse+validate cache, a
    persistent evaluation pool; the cost-model stage caches and DSE
    caches are process-global and warm up behind it), so a long-lived
    process answers repeat requests at cache speed. The CLI adapters and
    [tybec serve] are both thin layers over this module.

    [submit] never raises: every failure mode is a typed {!error} with a
    stable {!exit_code} mapping matching the documented CLI contract.
    [rs_text] in a {!response} is byte-identical to what the pre-engine
    CLI printed for the same request. *)

(** {2 Requests} *)

type source =
  | File of string    (** read the design from this path *)
  | Inline of string  (** TyTra-IR text carried in the request *)

type kernel = Sor | Hotspot | Lavamd | Srad

val kernel_to_string : kernel -> string
val kernel_of_string : string -> kernel option

type explore_params = {
  x_kernel : kernel;
  x_size : int;             (** grid side (sor/hotspot/srad) or boxes *)
  x_max_lanes : int;
  x_device : Tytra_device.Device.t;
  x_form : Tytra_cost.Throughput.form;
  x_nki : int;
  x_jobs : int;             (** evaluation domains; 0 = one per core *)
  x_prune : bool;
  x_retries : int;          (** per-point retry budget *)
  x_deadline_s : float option;  (** cooperative per-point deadline *)
  x_best_effort : bool;     (** quarantine failed points, don't abort *)
  x_checkpoint : string option;
  x_checkpoint_every : int;
  x_resume : string option;
  x_place_mode : Tytra_sim.Techmap.place_mode option;
      (** placement engine for the sweep; [None] = ambient mode *)
}

type request =
  | Check of { source : source }
  | Cost of {
      source : source;
      device : Tytra_device.Device.t;
      form : Tytra_cost.Throughput.form;
      nki : int;
      optimize : bool;
      calib : string option;
    }
  | Synth of {
      source : source;
      device : Tytra_device.Device.t;
      effort : [ `Fast | `Normal | `Full ];
      optimize : bool;
    }
  | Sim of {
      source : source;
      device : Tytra_device.Device.t;
      form : Tytra_cost.Throughput.form;
      nki : int;
      optimize : bool;
    }
  | Explore of explore_params

val op_name : request -> string
(** "check", "cost", "synth", "sim" or "explore" — the wire ["op"]. *)

(** {2 Responses and errors} *)

type payload =
  | Checked of { ck_design : string; ck_funcs : int; ck_streams : int }
  | Costed of { co_ekit : float; co_valid : bool }
  | Synthed of { sy_fmax_mhz : float; sy_synth_s : float }
  | Simmed of { si_ekit : float; si_total_s : float }
  | Explored of {
      xr_space : int;
      xr_evaluated : int;
      xr_pruned : int;
      xr_failed : int;
      xr_restored : int;
      xr_points : int;
      xr_pareto : int;
      xr_selected : string option;
    }

type response = {
  rs_text : string;    (** exact CLI stdout rendering of the result *)
  rs_payload : payload;
}

type error =
  | Bad_request of string
  | Parse_error of string
  | Validation_error of string
  | Timeout_error of float
      (** the cooperative deadline expired {e during} evaluation *)
  | Deadline_exceeded of float
      (** the deadline budget was exhausted {e before} evaluation
          started (batch-window admission, queue expiry): the request
          never ran, retrying with a larger budget is safe *)
  | Request_too_large of int
      (** the request body exceeded the wire cap (bytes) *)
  | Internal_error of string
  | Overloaded

val exit_code : error -> int
(** The CLI contract: 2 for bad input/parse/oversize, 3 for validation,
    1 for internal/timeout/deadline/overload. *)

val error_message : error -> string

val error_kind : error -> string
(** Stable machine-readable discriminator (the wire ["error"] field):
    "bad_request", "parse", "validation", "timeout",
    "deadline_exceeded", "request_too_large", "internal",
    "overloaded". *)

(** {2 Lifecycle} *)

type config = {
  jobs : int;  (** persistent evaluation-pool width for exploration *)
  parse_cache_capacity : int;
  response_cache_capacity : int;
      (** entries in the full-request response cache: completed [Ok]
          responses keyed on a digest of the op, every parameter, the
          content behind every path parameter and the resolved placement
          mode (for synth and explore). Error responses are never
          cached; an [Explore] is cached only when pure (no checkpoint
          or resume side effects) and unobserved (no progress
          callback). *)
  cache_journal : string option;
      (** when set, every response-cache insertion is appended to this
          digest-validated JSONL file ({!Journal}) and {!create} replays
          the file into the fresh cache — the warm path survives a
          crash. Telemetry: [engine.journal.replayed/appended/skipped]. *)
}

val default_config : config
(** [jobs = 1], 64 parse-cache entries, 128 response-cache entries, no
    journal. *)

type t
(** A running engine: configuration, persistent pool and caches. *)

val create : config -> t

val config : t -> config

val parse_cache_stats : t -> Tytra_exec.Cache.stats
(** Hit/miss/eviction statistics of the content-addressed
    parse+validate cache (also published as [engine.parse_cache.*]
    telemetry counters). *)

val response_cache_stats : t -> Tytra_exec.Cache.stats
(** Hit/miss/eviction statistics of the full-request response cache
    (also published as [engine.response_cache.*] telemetry counters).
    A hit replays the stored response verbatim — including the
    originally rendered [rs_text] (wall-clock figures such as the synth
    time line reflect the first, uncached run). *)

val submit :
  ?deadline_s:float ->
  ?retries:int ->
  ?on_progress:(Tytra_dse.Dse.progress -> unit) ->
  t ->
  request ->
  (response, error) result
(** [submit ?deadline_s ?retries ?on_progress t req] — run one request
    to completion. [deadline_s] arms a request-level cooperative
    deadline ({!Tytra_exec.Task.with_context}); [retries] re-runs the
    request on transient-class failures (internal errors and timeouts —
    parse/validation errors are deterministic and never retried);
    [on_progress] receives live sweep coverage for [Explore] requests.
    Never raises. *)

(** {2 Batched submission} *)

type batch_item = {
  bi_request : request;
  bi_deadline_s : float option;  (** per-request cooperative deadline *)
  bi_retries : int;              (** per-request transient retry budget *)
}

val batch_item : ?deadline_s:float -> ?retries:int -> request -> batch_item
(** [batch_item ?deadline_s ?retries req] — one slot of a batch, with
    the same per-request knobs as {!submit} (retries default 0). *)

val submit_batch : t -> batch_item list -> (response, error) result list
(** [submit_batch t items] — run many requests in one pool dispatch,
    answers in input order. Items whose full request digest {e and}
    deadline/retries coincide are deduplicated within the batch: the
    request runs once and every duplicate shares the result (so
    [engine.requests] counts evaluations dispatched, not items
    submitted). [Explore] items are never coalesced and may not batch
    well (each fans out internally); the daemon keeps them out of
    batches. Error isolation matches {!submit}: a failing item yields
    its own [Error] and cannot abort its batchmates. Never raises.

    Telemetry: [engine.batch.requests] (items), [engine.batch.dispatches]
    (calls), [engine.batch.dedup_hits] (items − unique groups), and the
    [engine.batch.occupancy] histogram (items per call). *)

val load_design :
  t -> source -> (Tytra_ir.Ast.design, error) result
(** Parse + validate a source through the engine's content-addressed
    cache — the shared preamble of every design-consuming subcommand
    (the HDL/testbench emitters use it directly). *)

val maybe_optimize : bool -> Tytra_ir.Ast.design -> Tytra_ir.Ast.design
(** [maybe_optimize true d] — the optimization-pass preamble shared by
    every [-O]-accepting request (logs the pass statistics at info). *)
