(** [tybec serve] — the cost model as a long-lived service.

    Public interface of [Tytra_engine.Daemon]. See [daemon.ml] for the
    route table and drain contract. *)

val handler : Engine.t -> Tytra_telemetry.Serve.handler
(** The route table: [POST /v1/submit] (the {!Protocol} codec),
    [GET /v1/protocol]; everything else falls through to the built-in
    metrics routes. Exposed so tests can mount an engine on an
    ephemeral-port server directly. *)

val run :
  ?config:Engine.config ->
  ?workers:int ->
  ?queue_cap:int ->
  addr:string ->
  unit ->
  unit
(** [run ?config ?workers ?queue_cap ~addr ()] — create an engine,
    serve it on [addr] ([HOST:PORT], [:PORT], [PORT] or [unix:PATH])
    with [workers] domains and a bounded queue of [queue_cap]
    connections (full queue ⇒ 429), and block until SIGTERM/SIGINT.
    On signal: graceful drain — stop accepting, answer everything
    in flight, join, print the served/rejected accounting. Returns
    normally so the CLI exits 0. *)
