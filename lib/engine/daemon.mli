(** [tybec serve] — the cost model as a long-lived service.

    Public interface of [Tytra_engine.Daemon]. See [daemon.ml] for the
    route table, batching/streaming behavior and drain contract. *)

val handler :
  ?batcher:Batcher.t ->
  ?default_deadline_s:float ->
  Engine.t ->
  Tytra_telemetry.Serve.handler
(** The route table: [POST /v1/submit] (the {!Protocol} codec),
    [GET /v1/protocol]; everything else falls through to the built-in
    metrics routes. With [batcher], the batchable ops
    (check/cost/synth/sim) are submitted through it instead of
    {!Engine.submit}. [default_deadline_s] is applied to requests that
    carry no deadline of their own (the frame's own [deadline_ms]
    always wins). Exposed so tests can mount an engine on an
    ephemeral-port server directly. *)

val streamer :
  ?default_deadline_s:float -> Engine.t -> Tytra_telemetry.Serve.streamer
(** Streamed-progress route: a [POST /v1/submit] whose body is a
    well-formed [explore] with ["stream":true] is answered as JSONL —
    one {!Protocol.encode_progress} frame per sweep wave, then one
    result frame. Everything else returns [None] (falls through to
    {!handler}). *)

val wire_error : int -> Tytra_telemetry.Serve.response option
(** {!Tytra_telemetry.Serve.error_responder} used by {!run}: renders the
    server's wire-level failure statuses as typed protocol errors —
    400 → [Bad_request], 408 → [Bad_request] (read timeout),
    413 → [Request_too_large], 429 → [Overloaded] — so every byte a
    client ever reads off the socket is protocol JSON. Unknown statuses
    return [None] (plain-text fallback). *)

val parse_batch_spec : string -> (float * int) option
(** Parse a [TYTRA_BATCH] value: ["off"]/["0"]/[""] → [None],
    ["W"] → window of W ms with the default max size (16),
    ["W:M"] → window + max batch size. Malformed specs read as off. *)

val run :
  ?config:Engine.config ->
  ?workers:int ->
  ?queue_cap:int ->
  ?batch_window_ms:float ->
  ?batch_max:int ->
  ?reuseport:bool ->
  ?listen_fd:Unix.file_descr ->
  ?admin_addr:string ->
  ?deadline_default_ms:float ->
  ?cache_journal:string ->
  addr:string ->
  unit ->
  unit
(** [run ?config ?workers ?queue_cap ?batch_window_ms ?batch_max
    ?reuseport ?listen_fd ?admin_addr ?deadline_default_ms
    ?cache_journal ~addr ()] — create an engine, serve it on [addr]
    ([HOST:PORT], [:PORT], [PORT] or [unix:PATH]) with [workers]
    domains and a bounded queue of [queue_cap] connections (full queue
    ⇒ typed 429), and block until SIGTERM/SIGINT.

    Batching is enabled when [batch_window_ms] is given or the
    [TYTRA_BATCH] environment variable holds a non-off spec (flags beat
    the environment; [batch_max] defaults to the spec's or 16).
    [reuseport]/[listen_fd] pass through to {!Tytra_telemetry.Serve.start}
    for multi-shard fronts ({!Shards}); [admin_addr] additionally serves
    the plain metrics routes on a second address (each shard's private
    scrape endpoint).

    [deadline_default_ms] gives every request that carries no
    [deadline_ms] of its own a default evaluation budget
    ([--deadline-default-ms]); [cache_journal] overrides
    [config.cache_journal] with an append-only response-cache journal
    path, so a restarted process reloads its hot cache
    ([--cache-journal], DESIGN.md §16).

    On signal: graceful drain — stop accepting, answer everything in
    flight, flush the batcher, join, print the served/rejected
    accounting. Returns normally so the CLI exits 0. *)
