(** Crash-safe response-cache journal: append-only, digest-validated
    JSONL of (key, payload) string pairs.

    Public interface of [Tytra_engine.Journal]. The engine journals
    every response-cache insertion through one of these and replays the
    file into a fresh cache at startup, so a crashed shard restarts
    warm (DESIGN.md §16). Payloads are opaque bytes (hex-encoded on
    disk); this module journals strings and knows nothing of
    [Engine.response]. Loading is total: malformed, truncated or
    digest-mismatched lines are skipped and counted, never raised. *)

val magic : string
(** ["TYTRA-JRNL"], carried by the header line. *)

val version : int
(** Format version stamped into the header and every entry. *)

val load : string -> (string * string) list * int
(** [load path] — validated [(key, payload)] entries in file order,
    plus the count of corrupt lines skipped (torn tails from mid-write
    crashes, digest mismatches, foreign files). A missing file is
    [([], 0)]. *)

type t
(** An open journal: append handle + mutex (safe from any domain). *)

val open_append : string -> t option
(** [open_append path] — open for appending, creating (with a header
    line) if new. [None] when the path cannot be opened; the caller
    should serve without journaling rather than fail. *)

val append : t -> key:string -> payload:string -> unit
(** Append one digest-stamped entry and flush, so the entry survives a
    crash immediately after. Write errors are counted, not raised. *)

val close : t -> unit

val path : t -> string

val appended : t -> int
(** Entries durably appended since {!open_append}. *)

val write_errors : t -> int
(** Entries lost to write errors (loss accounting, as for
    [Events.write_errors]). *)
