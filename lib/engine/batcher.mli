(** Time/size-windowed request accumulation in front of
    {!Engine.submit_batch}.

    A single dispatcher domain holds a window open — until [max_size]
    requests are pending or [window_ms] has elapsed since the first —
    then drains the window into one {!Engine.submit_batch} call and
    wakes every blocked caller with its own result. A lone request
    waits at most the window on top of its own evaluation; under load
    the window fills before it expires and adds no latency. Identical
    requests landing in one window collapse to one evaluation.

    [tybec serve] routes batchable requests (check/cost/synth/sim)
    through one of these when [TYTRA_BATCH] / [--batch-window-ms] is
    set; [Explore] requests bypass it. *)

type t

val create : ?window_ms:float -> ?max_size:int -> Engine.t -> t
(** [create ?window_ms ?max_size engine] — start the dispatcher domain.
    Defaults: 2 ms window, 16 requests. [window_ms = 0] still batches
    whatever arrives while a dispatch is in flight (pure size-windowing
    with no added idle latency). *)

val submit :
  ?deadline_s:float ->
  ?retries:int ->
  t ->
  Engine.request ->
  (Engine.response, Engine.error) result
(** [submit ?deadline_s ?retries t req] — park the request in the
    current window and block until its result is ready. Same contract
    as {!Engine.submit} (never raises); after {!stop} has completed,
    answers [Error Overloaded] ([engine.batch.rejected]).

    Deadline propagation: a request whose budget is no larger than the
    batch window is refused immediately with
    [Error (Deadline_exceeded _)] ([engine.batch.deadline_rejected]) —
    it could never be answered in time — and a request whose budget
    runs out while parked in the window is answered the same way
    without being evaluated ([engine.batch.deadline_expired]). *)

val stop : t -> unit
(** Graceful drain: flush every pending request through a final
    dispatch, then join the dispatcher. Call after the server has
    stopped accepting. Idempotent; concurrent callers block until the
    drain completes. *)

val window_ms : t -> float
val max_size : t -> int
