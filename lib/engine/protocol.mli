(** Versioned JSON wire codec for {!Engine} requests and responses.

    Public interface of [Tytra_engine.Protocol]. One request or response
    is one JSON object carrying [{"v":1}]; decoding is total — malformed
    bytes of any shape come back as [Engine.Bad_request], never an
    exception. Schema documented in DESIGN.md §13. *)

val version : int
(** Protocol version stamped into (and required of) every message. *)

val version_minor : int
(** Additive revision within {!version}. Minor 1 added the ["stream"]
    request flag and the progress/result frame vocabulary; minor 2
    added the ["deadline_ms"] request budget and the
    ["deadline_exceeded"]/["request_too_large"] error kinds. Decoders
    never check it (additive changes are compatible by construction),
    clients read it from [GET /v1/protocol] for capability discovery. *)

(** {2 Requests} *)

val encode_request :
  ?deadline_s:float ->
  ?deadline_ms:float ->
  ?retries:int ->
  ?stream:bool ->
  Engine.request ->
  string
(** One JSON object for the request, including the envelope fields
    ([deadline_s]/[deadline_ms]/[retries] are the request-level budget
    passed to [Engine.submit]; omitted when absent/zero — when both
    deadline spellings are given, decoders prefer [deadline_ms]).
    [stream] (default false) asks the server to answer with JSONL
    progress frames — meaningful for [explore] only. *)

(** A decoded request: the typed operation plus its envelope.
    [dq_deadline_s] is the unified budget — decoded from
    ["deadline_ms"] (preferred, minor 2) or the legacy ["deadline_s"]. *)
type decoded_request = {
  dq_request : Engine.request;
  dq_deadline_s : float option;
  dq_retries : int;
  dq_stream : bool;
}

val decode_request : string -> (decoded_request, Engine.error) result
(** Inverse of {!encode_request}. Missing optional fields take the CLI
    defaults (device, form B, nki 1, ...); unknown fields are ignored;
    every malformed input is an [Engine.Bad_request]. *)

(** {2 Responses} *)

val encode_response : op:string -> Engine.response -> string
(** [{"v":1,"status":"ok","op":…,"text":…,"data":{…}}] — [text] is the
    exact CLI rendering, [data] the structured payload fields. *)

val encode_error : Engine.error -> string
(** [{"v":1,"status":"error","error":…,"exit_code":…,"message":…}]. *)

val http_status : Engine.error -> int
(** HTTP status for an error reply: 400 bad request, 413 oversized
    body, 422 rejected design (parse/validation), 429 shed load, 504
    deadline (expired mid-evaluation or exhausted before admission),
    500 internal. *)

(** What a client gets back from one exchange. *)
type reply =
  | Reply_ok of {
      rp_op : string;
      rp_text : string;
      rp_data : Tytra_telemetry.Jsenc.t;
    }
  | Reply_error of {
      re_kind : string;      (** [Engine.error_kind] discriminator *)
      re_exit_code : int;
      re_message : string;
    }

val decode_reply : string -> (reply, string) result
(** Decode a response body (inverse of {!encode_response} and
    {!encode_error}). *)

(** {2 Streamed frames} (minor version 1)

    A streamed reply body is JSONL: zero or more progress frames
    followed by exactly one result frame — a normal reply object plus a
    ["frame":"result"] discriminator, so a version-1 client that reads
    the last line and ignores unknown fields still sees a valid reply. *)

val encode_progress : op:string -> Tytra_dse.Dse.progress -> string
(** [{"v":1,"frame":"progress","op":…,"space":…,"evaluated":…,
    "pruned":…,"failed":…,"restored":…}] — one line per sweep wave. *)

val encode_response_frame : op:string -> Engine.response -> string
(** {!encode_response} plus the ["frame":"result"] discriminator. *)

val encode_error_frame : Engine.error -> string
(** {!encode_error} plus the ["frame":"result"] discriminator. *)

type progress_frame = {
  pf_op : string;
  pf_space : int;
  pf_evaluated : int;
  pf_pruned : int;
  pf_failed : int;
  pf_restored : int;
}

type frame = Frame_progress of progress_frame | Frame_result of reply

val decode_frame : string -> (frame, string) result
(** Decode one JSONL line of a streamed reply. A line with no ["frame"]
    field decodes as [Frame_result] (plain replies are result frames),
    so clients use one decoder for streamed and unstreamed bodies. *)

(** {2 Field codecs} (shared with tests) *)

val form_to_string : Tytra_cost.Throughput.form -> string
val form_of_string : string -> Tytra_cost.Throughput.form option
val effort_to_string : [ `Fast | `Normal | `Full ] -> string
val effort_of_string : string -> [ `Fast | `Normal | `Full ] option
