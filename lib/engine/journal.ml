(** Crash-safe response-cache journal: an append-only, digest-validated
    JSONL file of (key, payload) pairs.

    The engine's in-memory response cache dies with the process; a shard
    that crashes mid-flight restarts cold and pays the full evaluation
    cost for every request it had already answered. The journal makes
    the cache's *contents* survive: every insertion is appended as one
    self-contained line, and a fresh engine replays the file back into
    its cache before serving ({!Engine.create} with
    [config.cache_journal]).

    The discipline borrows from both persistence layers already in the
    tree: like the {!Tytra_telemetry.Events} sink it is an append-only
    JSONL stream flushed per record (a crash loses at most the line
    being written), and like {!Tytra_dse.Checkpoint} every record is
    versioned and digest-validated — a header line carries the magic and
    format version, each entry carries an MD5 digest of its payload, and
    the loader treats every malformed, truncated or digest-mismatched
    line as data loss to skip, never a reason to raise.

    Payloads are opaque bytes (hex-encoded on the wire, so the JSONL
    stays valid UTF-8); the engine marshals {!Engine.response} values
    through them. Keys are the response-cache digest keys. This module
    knows neither — it journals strings, which keeps it free of
    dependency cycles and reusable for any cache worth persisting. *)

module J = Tytra_telemetry.Jsenc

let magic = "TYTRA-JRNL"
let version = 1

(* ------------------------------------------------------------------ *)
(* Hex payload codec                                                   *)
(* ------------------------------------------------------------------ *)

let hex_encode (s : string) : string =
  let n = String.length s in
  let b = Bytes.create (2 * n) in
  let digit v = Char.chr (if v < 10 then Char.code '0' + v else Char.code 'a' + v - 10) in
  for i = 0 to n - 1 do
    let c = Char.code s.[i] in
    Bytes.set b (2 * i) (digit (c lsr 4));
    Bytes.set b ((2 * i) + 1) (digit (c land 0xf))
  done;
  Bytes.to_string b

let hex_decode (s : string) : string option =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    let nibble c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let b = Bytes.create (n / 2) in
    let ok = ref true in
    for i = 0 to (n / 2) - 1 do
      match (nibble s.[2 * i], nibble s.[(2 * i) + 1]) with
      | Some hi, Some lo -> Bytes.set b i (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if !ok then Some (Bytes.to_string b) else None

(* ------------------------------------------------------------------ *)
(* Line codecs                                                         *)
(* ------------------------------------------------------------------ *)

let header_line () =
  Printf.sprintf {|{"v":%d,"magic":%s}|} version (J.json_string magic)

let entry_line ~key ~payload =
  Printf.sprintf {|{"v":%d,"key":%s,"digest":%s,"payload":%s}|} version
    (J.json_string key)
    (J.json_string (Digest.to_hex (Digest.string payload)))
    (J.json_string (hex_encode payload))

let decode_header line =
  match J.parse line with
  | Error _ -> false
  | Ok j -> (
      match (J.num_member "v" j, J.str_member "magic" j) with
      | Some v, Some m -> int_of_float v = version && m = magic
      | _ -> false)

(* One entry back from its line; [None] covers every corruption mode —
   bad JSON (including a torn tail from a mid-write crash), missing
   fields, undecodable hex, digest mismatch. *)
let decode_entry line : (string * string) option =
  match J.parse line with
  | Error _ -> None
  | Ok j -> (
      match
        (J.num_member "v" j, J.str_member "key" j, J.str_member "digest" j,
         J.str_member "payload" j)
      with
      | Some v, Some key, Some digest, Some hex
        when int_of_float v = version -> (
          match hex_decode hex with
          | Some payload
            when Digest.to_hex (Digest.string payload) = digest ->
              Some (key, payload)
          | _ -> None)
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

let read_lines path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | line -> go (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          Some (go []))

(** [load path] — every validated (key, payload) entry in file order,
    plus the count of lines skipped as corrupt. A missing file is an
    empty journal; a file whose first line is not a valid v1 header is
    treated as wholly foreign (no entries, every line skipped) rather
    than guessed at. *)
let load path : (string * string) list * int =
  match read_lines path with
  | None -> ([], 0)
  | Some [] -> ([], 0)
  | Some (header :: rest) ->
      if not (decode_header header) then ([], 1 + List.length rest)
      else
        List.fold_left
          (fun (entries, skipped) line ->
            if String.trim line = "" then (entries, skipped)
            else
              match decode_entry line with
              | Some e -> (e :: entries, skipped)
              | None -> (entries, skipped + 1))
          ([], 0) rest
        |> fun (entries, skipped) -> (List.rev entries, skipped)

(* ------------------------------------------------------------------ *)
(* Appending                                                           *)
(* ------------------------------------------------------------------ *)

type t = {
  jr_path : string;
  jr_mutex : Mutex.t;
  mutable jr_oc : out_channel option;
  mutable jr_appended : int;
  mutable jr_write_errors : int;
}

let path t = t.jr_path
let appended t = t.jr_appended
let write_errors t = t.jr_write_errors

(** [open_append path] — open (creating if needed) for appending. A new
    or empty file gets the header line first; an existing journal is
    appended to as-is (its header was validated by {!load} if the caller
    replayed it). [None] when the path cannot be opened. *)
let open_append path : t option =
  match open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path with
  | exception Sys_error _ -> None
  | oc ->
      if out_channel_length oc = 0 then begin
        output_string oc (header_line ());
        output_char oc '\n';
        flush oc
      end;
      Some
        {
          jr_path = path;
          jr_mutex = Mutex.create ();
          jr_oc = Some oc;
          jr_appended = 0;
          jr_write_errors = 0;
        }

(* Flush per entry: the whole point is surviving a crash, so an entry
   is either durably on disk or (at worst) a torn final line the loader
   skips. Write errors are counted, never raised — journaling is an
   optimization, losing it must not fail the request. *)
let append t ~key ~payload =
  Mutex.lock t.jr_mutex;
  (match t.jr_oc with
  | None -> ()
  | Some oc -> (
      try
        output_string oc (entry_line ~key ~payload);
        output_char oc '\n';
        flush oc;
        t.jr_appended <- t.jr_appended + 1
      with Sys_error _ -> t.jr_write_errors <- t.jr_write_errors + 1));
  Mutex.unlock t.jr_mutex

let close t =
  Mutex.lock t.jr_mutex;
  (match t.jr_oc with
  | Some oc -> ( try close_out oc with Sys_error _ -> ())
  | None -> ());
  t.jr_oc <- None;
  Mutex.unlock t.jr_mutex
