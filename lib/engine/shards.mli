(** Multi-process sharded serving: the supervisor behind
    [tybec serve --shards N].

    Public interface of [Tytra_engine.Shards]. Each shard is a full
    {!Daemon} process (own engine, pool, caches, batcher); the parent
    binds or brokers the shared listen socket, supervises the children
    (health probes, postmortem dumps, exponential-backoff restarts
    under a budget, SIGKILL of hung shards, a circuit breaker shedding
    typed [overloaded] when every shard is down — DESIGN.md §16),
    forwards SIGTERM for a graceful drain, and serves aggregated
    [/metrics] (per-shard [shard="i"] labels), [/metrics.json] (with
    per-shard [pid]/[state]/[restarts]) and [/healthz] on the admin
    address. See [shards.ml] for the socket strategy (SO_REUSEPORT vs
    inherited fd) and the supervision state machine. *)

(** How a shard child should obtain its listen socket, decoded from the
    environment the supervisor set ([TYTRA_SHARD_FD] /
    [TYTRA_SHARD_REUSEPORT]). *)
type child_socket =
  | Child_plain  (** not a shard child: bind normally *)
  | Child_reuseport  (** bind the address yourself with [SO_REUSEPORT] *)
  | Child_fd of Unix.file_descr
      (** accept on this inherited, already-listening descriptor *)

val child_socket : unit -> child_socket
(** Called by the [serve] CLI when [--shard-child] is present. *)

val reuseport_supported : unit -> bool
(** Probe the kernel: can a TCP socket take [SO_REUSEPORT]? *)

val http_get :
  ?timeout_s:float -> addr:string -> string -> (int * string, string) result
(** [http_get ~addr path] — one-shot HTTP/1.0 GET against ["unix:PATH"]
    or ["host:port"], returning (status, close-delimited body). The
    aggregator's scrape client; exposed for tests. *)

val run :
  ?restart_budget:int ->
  shards:int ->
  addr:string ->
  admin_addr:string ->
  child_argv:(shard:int -> admin_addr:string -> string array) ->
  unit ->
  unit
(** [run ?restart_budget ~shards ~addr ~admin_addr ~child_argv ()] —
    supervise [shards] child processes serving [addr] and block until
    SIGTERM/SIGINT. [child_argv ~shard ~admin_addr] must produce the
    full exec argv for one shard (our own executable with
    [serve --shard-child i --shard-admin <admin_addr>] plus the user's
    flags); the supervisor adds the socket-mode environment.

    Supervision (DESIGN.md §16): a crashed shard is postmortemed (crash
    JSONL + last metrics snapshot + flight recorder into the run
    directory, plus a typed [shard_crash] event) and restarted after an
    exponential backoff (0.5 s doubling, 30 s cap); [restart_budget]
    (default 8) consecutive restarts without 5 s of proven stability
    marks the shard dead. A shard whose [/healthz] stops answering for
    3 consecutive probes is SIGKILLed and treated as a crash. When no
    shard is up, a circuit breaker serves the work address itself,
    answering every request with typed [overloaded] (HTTP 429) until a
    shard passes a health probe again.

    On signal: forward SIGTERM to every shard, wait for each to drain,
    stop the aggregator, clean up the admin sockets (postmortem files,
    if any, are left behind). *)
