(** Multi-process sharded serving: the supervisor behind
    [tybec serve --shards N].

    Public interface of [Tytra_engine.Shards]. Each shard is a full
    {!Daemon} process (own engine, pool, caches, batcher); the parent
    binds or brokers the shared listen socket, restarts crashed shards,
    forwards SIGTERM for a graceful drain, and serves aggregated
    [/metrics] (per-shard [shard="i"] labels), [/metrics.json] and
    [/healthz] on the admin address. See [shards.ml] for the socket
    strategy (SO_REUSEPORT vs inherited fd) and supervision loop. *)

(** How a shard child should obtain its listen socket, decoded from the
    environment the supervisor set ([TYTRA_SHARD_FD] /
    [TYTRA_SHARD_REUSEPORT]). *)
type child_socket =
  | Child_plain  (** not a shard child: bind normally *)
  | Child_reuseport  (** bind the address yourself with [SO_REUSEPORT] *)
  | Child_fd of Unix.file_descr
      (** accept on this inherited, already-listening descriptor *)

val child_socket : unit -> child_socket
(** Called by the [serve] CLI when [--shard-child] is present. *)

val reuseport_supported : unit -> bool
(** Probe the kernel: can a TCP socket take [SO_REUSEPORT]? *)

val http_get :
  ?timeout_s:float -> addr:string -> string -> (int * string, string) result
(** [http_get ~addr path] — one-shot HTTP/1.0 GET against ["unix:PATH"]
    or ["host:port"], returning (status, close-delimited body). The
    aggregator's scrape client; exposed for tests. *)

val run :
  shards:int ->
  addr:string ->
  admin_addr:string ->
  child_argv:(shard:int -> admin_addr:string -> string array) ->
  unit ->
  unit
(** [run ~shards ~addr ~admin_addr ~child_argv ()] — supervise [shards]
    child processes serving [addr] and block until SIGTERM/SIGINT.
    [child_argv ~shard ~admin_addr] must produce the full exec argv for
    one shard (our own executable with [serve --shard-child i
    --shard-admin <admin_addr>] plus the user's flags); the supervisor
    adds the socket-mode environment. On signal: forward SIGTERM to
    every shard, wait for each to drain, stop the aggregator, clean up
    the admin sockets. *)
