(** [tybec serve] — the cost model as a long-lived service.

    Mounts one {!Engine} behind the telemetry HTTP server
    ({!Tytra_telemetry.Serve}): [POST /v1/submit] speaks the
    {!Protocol} JSON codec, everything else falls through to the
    built-in [/metrics], [/metrics.json] and [/healthz] routes, so one
    port answers both work and observability traffic. Admission control
    is the server's bounded worker queue: when it is full, connections
    are answered [429] without touching the engine.

    Two serving upgrades ride on the same routes (DESIGN.md §15):

    - {b Batching} — when enabled ([TYTRA_BATCH] / [--batch-window-ms])
      the batchable ops (check/cost/synth/sim) go through a {!Batcher}
      instead of calling {!Engine.submit} directly, so concurrent
      requests coalesce into one pool dispatch and identical requests
      in one window collapse to one evaluation.
    - {b Streamed progress} — a [POST /v1/submit] whose body carries
      ["stream":true] on an [explore] is answered as JSONL progress
      frames followed by one result frame (protocol minor 1), written
      incrementally as the sweep advances.

    {!run} blocks until SIGTERM/SIGINT, then drains gracefully: the
    listener stops accepting, every request already accepted is
    answered, the batcher flushes, the workers join, and the accounting
    line is printed — whereupon the CLI exits 0. *)

module Serve = Tytra_telemetry.Serve

let json_response status body =
  {
    Serve.rs_status = status;
    rs_content_type = "application/json";
    rs_body = body ^ "\n";
  }

(* [TYTRA_BATCH]: "off"/"0"/"" disables, "W" = window in ms, "W:M" =
   window + max batch size. *)
let parse_batch_spec s : (float * int) option =
  match String.lowercase_ascii (String.trim s) with
  | "" | "0" | "off" | "no" | "false" -> None
  | spec -> (
      match String.split_on_char ':' spec with
      | [ w ] -> (
          match float_of_string_opt w with
          | Some w when w >= 0.0 -> Some (w, 16)
          | _ -> None)
      | [ w; m ] -> (
          match (float_of_string_opt w, int_of_string_opt m) with
          | Some w, Some m when w >= 0.0 && m >= 1 -> Some (w, m)
          | _ -> None)
      | _ -> None)

(* CLI flags beat the environment; either source enables batching. *)
let resolve_batch ?window_ms ?max_size () : (float * int) option =
  let env =
    Option.bind (Sys.getenv_opt "TYTRA_BATCH") parse_batch_spec
  in
  let window =
    match window_ms with Some w -> Some w | None -> Option.map fst env
  in
  match window with
  | None -> None
  | Some w ->
      let m =
        match max_size with
        | Some m -> m
        | None -> ( match env with Some (_, m) -> m | None -> 16)
      in
      Some (Float.max 0.0 w, max 1 m)

(* The request's own deadline always wins; [--deadline-default-ms] only
   fills in for frames that carry none, so old clients get a budget
   without resending anything. *)
let effective_deadline ?default_deadline_s (d : Protocol.decoded_request) =
  match d.Protocol.dq_deadline_s with
  | Some _ as s -> s
  | None -> default_deadline_s

let submit_via ?batcher ?default_deadline_s eng
    (d : Protocol.decoded_request) =
  let deadline_s = effective_deadline ?default_deadline_s d in
  let batchable =
    (* explores fan out on the pool themselves; batching them serializes
       their inner parallelism for no dedup benefit *)
    match d.Protocol.dq_request with Engine.Explore _ -> false | _ -> true
  in
  match batcher with
  | Some b when batchable ->
      Batcher.submit ?deadline_s ~retries:d.Protocol.dq_retries b
        d.Protocol.dq_request
  | _ ->
      Engine.submit ?deadline_s ~retries:d.Protocol.dq_retries eng
        d.Protocol.dq_request

(* Wire-level failures — the server gave up before (or instead of)
   reaching the engine — rendered as typed protocol errors, so a client
   never has to parse plain-text bodies to tell "you sent garbage" from
   "the service is shedding load". *)
let wire_error (status : int) : Serve.response option =
  let err =
    match status with
    | 413 -> Some (Engine.Request_too_large Serve.max_body_bytes)
    | 408 -> Some (Engine.Bad_request "timeout reading request")
    | 429 -> Some Engine.Overloaded
    | 400 -> Some (Engine.Bad_request "malformed HTTP request")
    | _ -> None
  in
  Option.map
    (fun e -> json_response status (Protocol.encode_error e))
    err

let handler ?batcher ?default_deadline_s (eng : Engine.t)
    (rq : Serve.request) : Serve.response option =
  match (rq.Serve.rq_meth, rq.Serve.rq_path) with
  | "POST", "/v1/submit" ->
      Some
        (match Protocol.decode_request rq.Serve.rq_body with
        | Error err ->
            (json_response (Protocol.http_status err)
               (Protocol.encode_error err))
        | Ok d -> (
            match submit_via ?batcher ?default_deadline_s eng d with
            | Ok resp ->
                json_response 200
                  (Protocol.encode_response
                     ~op:(Engine.op_name d.Protocol.dq_request)
                     resp)
            | Error err ->
                json_response (Protocol.http_status err)
                  (Protocol.encode_error err)))
  | "GET", "/v1/protocol" ->
      Some
        (json_response 200
           (Printf.sprintf
              {|{"v":%d,"minor":%d,"ops":["check","cost","synth","sim","explore"],"frames":["progress","result"]}|}
              Protocol.version Protocol.version_minor))
  | _ -> None (* falls through to /metrics, /metrics.json, /healthz *)

(* Streaming is consulted before the handler: only a well-formed
   [explore] with ["stream":true] streams; every other body (including
   undecodable ones) falls through to the plain handler and its error
   rendering. Streamed requests bypass the batcher by construction. *)
let streamer ?default_deadline_s (eng : Engine.t) (rq : Serve.request) :
    Serve.stream option =
  match (rq.Serve.rq_meth, rq.Serve.rq_path) with
  | "POST", "/v1/submit" -> (
      match Protocol.decode_request rq.Serve.rq_body with
      | Ok
          ({ Protocol.dq_stream = true;
             dq_request = Engine.Explore _ as req; _ } as d) ->
          Some
            {
              Serve.st_status = 200;
              st_content_type = "application/jsonl";
              st_write =
                (fun write ->
                  let op = Engine.op_name req in
                  let on_progress p =
                    write (Protocol.encode_progress ~op p ^ "\n")
                  in
                  match
                    Engine.submit
                      ?deadline_s:(effective_deadline ?default_deadline_s d)
                      ~retries:d.Protocol.dq_retries ~on_progress eng req
                  with
                  | Ok resp ->
                      write (Protocol.encode_response_frame ~op resp ^ "\n")
                  | Error err ->
                      write (Protocol.encode_error_frame err ^ "\n"));
            }
      | _ -> None)
  | _ -> None

let run ?(config = Engine.default_config) ?(workers = 4) ?(queue_cap = 64)
    ?batch_window_ms ?batch_max ?(reuseport = false) ?listen_fd ?admin_addr
    ?deadline_default_ms ?cache_journal ~addr () =
  (* the service exists to be scraped: metrics are always live here *)
  Tytra_telemetry.Control.set_enabled true;
  let config =
    match cache_journal with
    | None -> config
    | Some _ -> { config with Engine.cache_journal = cache_journal }
  in
  let default_deadline_s =
    Option.map (fun ms -> Float.max 0.0 ms /. 1000.0) deadline_default_ms
  in
  let eng = Engine.create config in
  let batcher =
    Option.map
      (fun (w, m) -> Batcher.create ~window_ms:w ~max_size:m eng)
      (resolve_batch ?window_ms:batch_window_ms ?max_size:batch_max ())
  in
  let sv =
    Serve.start
      ~handler:(handler ?batcher ?default_deadline_s eng)
      ~streamer:(streamer ?default_deadline_s eng)
      ~error_responder:wire_error ~workers ~queue_cap ~reuseport ?listen_fd
      ~addr ()
  in
  (* a shard's private observability endpoint: plain metrics routes on a
     second (usually unix-socket) server, so the parent aggregator can
     scrape each shard even though they share the public port *)
  let admin = Option.map (fun a -> Serve.start ~addr:a ()) admin_addr in
  Printf.eprintf "tybec: engine serving on %s (workers %d, queue %d%s)\n%!"
    (Serve.bound_addr sv) workers queue_cap
    (match batcher with
    | None -> ""
    | Some b ->
        Printf.sprintf ", batch %gms/%d" (Batcher.window_ms b)
          (Batcher.max_size b));
  let stopping = Atomic.make false in
  let on_stop = Sys.Signal_handle (fun _ -> Atomic.set stopping true) in
  Sys.set_signal Sys.sigterm on_stop;
  Sys.set_signal Sys.sigint on_stop;
  while not (Atomic.get stopping) do
    try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  prerr_endline "tybec: drain: stopped accepting, answering in-flight requests";
  (* order matters: stop admitting first, then flush the batcher so the
     final window answers everything the server already accepted *)
  Serve.stop sv;
  Option.iter Batcher.stop batcher;
  Option.iter Serve.stop admin;
  Printf.eprintf "tybec: served %d requests (%d rejected)\n%!"
    (Serve.requests_served sv)
    (Serve.requests_rejected sv)
