(** [tybec serve] — the cost model as a long-lived service.

    Mounts one {!Engine} behind the telemetry HTTP server
    ({!Tytra_telemetry.Serve}): [POST /v1/submit] speaks the
    {!Protocol} JSON codec, everything else falls through to the
    built-in [/metrics], [/metrics.json] and [/healthz] routes, so one
    port answers both work and observability traffic. Admission control
    is the server's bounded worker queue: when it is full, connections
    are answered [429] without touching the engine.

    {!run} blocks until SIGTERM/SIGINT, then drains gracefully: the
    listener stops accepting, every request already accepted is
    answered, the workers join, and the accounting line is printed —
    whereupon the CLI exits 0. *)

module Serve = Tytra_telemetry.Serve

let json_response status body =
  {
    Serve.rs_status = status;
    rs_content_type = "application/json";
    rs_body = body ^ "\n";
  }

let handler (eng : Engine.t) (rq : Serve.request) : Serve.response option =
  match (rq.Serve.rq_meth, rq.Serve.rq_path) with
  | "POST", "/v1/submit" ->
      Some
        (match Protocol.decode_request rq.Serve.rq_body with
        | Error err ->
            (json_response (Protocol.http_status err)
               (Protocol.encode_error err))
        | Ok d -> (
            match
              Engine.submit ?deadline_s:d.Protocol.dq_deadline_s
                ~retries:d.Protocol.dq_retries eng d.Protocol.dq_request
            with
            | Ok resp ->
                json_response 200
                  (Protocol.encode_response
                     ~op:(Engine.op_name d.Protocol.dq_request)
                     resp)
            | Error err ->
                json_response (Protocol.http_status err)
                  (Protocol.encode_error err)))
  | "GET", "/v1/protocol" ->
      Some
        (json_response 200
           (Printf.sprintf
              {|{"v":%d,"ops":["check","cost","synth","sim","explore"]}|}
              Protocol.version))
  | _ -> None (* falls through to /metrics, /metrics.json, /healthz *)

let run ?(config = Engine.default_config) ?(workers = 4) ?(queue_cap = 64)
    ~addr () =
  (* the service exists to be scraped: metrics are always live here *)
  Tytra_telemetry.Control.set_enabled true;
  let eng = Engine.create config in
  let sv = Serve.start ~handler:(handler eng) ~workers ~queue_cap ~addr () in
  Printf.eprintf "tybec: engine serving on %s (workers %d, queue %d)\n%!"
    (Serve.bound_addr sv) workers queue_cap;
  let stopping = Atomic.make false in
  let on_stop = Sys.Signal_handle (fun _ -> Atomic.set stopping true) in
  Sys.set_signal Sys.sigterm on_stop;
  Sys.set_signal Sys.sigint on_stop;
  while not (Atomic.get stopping) do
    try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  prerr_endline "tybec: drain: stopped accepting, answering in-flight requests";
  Serve.stop sv;
  Printf.eprintf "tybec: served %d requests (%d rejected)\n%!"
    (Serve.requests_served sv)
    (Serve.requests_rejected sv)
