(** Versioned JSON wire codec for {!Engine} requests and responses.

    One request or response is one JSON object carrying the protocol
    version ([{"v":1}]). Encoding goes through the telemetry JSON
    encoders ({!Tytra_telemetry.Jsenc}); decoding goes through its total
    parser, so malformed bytes of any shape come back as a typed
    [Engine.Bad_request] — never an exception (the fuzz suite pins
    this).

    Versioning policy mirrors the event-log schema (DESIGN.md §12):
    additive field changes keep the version, renames/removals/meaning
    changes bump it. Decoders ignore unknown fields; requests with a
    version other than {!version} are rejected.

    Minor version 1 (additive, old clients unaffected): the ["stream"]
    request flag and the JSONL frame vocabulary for streamed explore
    progress — [{"frame":"progress",...}] lines followed by one final
    [{"frame":"result",...}] line that is a normal reply object plus
    the discriminator.

    Minor version 2 (additive): the ["deadline_ms"] request budget
    (preferred over the legacy ["deadline_s"] when both are present —
    millisecond wire precision matches what serving deadlines actually
    are) and the ["deadline_exceeded"]/["request_too_large"] error
    kinds. Old clients never send the field and decode the new error
    objects through the same ["error"]/["exit_code"]/["message"] shape
    as every other kind. *)

module J = Tytra_telemetry.Jsenc

let version = 1

let version_minor = 2

(* ------------------------------------------------------------------ *)
(* Field-level codecs                                                  *)
(* ------------------------------------------------------------------ *)

let form_to_string = function
  | Tytra_cost.Throughput.FormA -> "A"
  | Tytra_cost.Throughput.FormB -> "B"
  | Tytra_cost.Throughput.FormC -> "C"

let form_of_string = function
  | "A" -> Some Tytra_cost.Throughput.FormA
  | "B" -> Some Tytra_cost.Throughput.FormB
  | "C" -> Some Tytra_cost.Throughput.FormC
  | _ -> None

let effort_to_string = function
  | `Fast -> "fast"
  | `Normal -> "normal"
  | `Full -> "full"

let effort_of_string = function
  | "fast" -> Some `Fast
  | "normal" -> Some `Normal
  | "full" -> Some `Full
  | _ -> None

let source_fields = function
  | Engine.File p -> Printf.sprintf {|"source":{"path":%s}|} (J.json_string p)
  | Engine.Inline s ->
      Printf.sprintf {|"source":{"inline":%s}|} (J.json_string s)

let obj fields = "{" ^ String.concat "," (List.filter (( <> ) "") fields) ^ "}"

let str_field k v = Printf.sprintf "%s:%s" (J.json_string k) (J.json_string v)
let num_field k v = Printf.sprintf "%s:%s" (J.json_string k) (J.json_num v)
let int_field k v = num_field k (float_of_int v)
let bool_field k v = Printf.sprintf "%s:%b" (J.json_string k) v
let opt f k = function None -> "" | Some v -> f k v

(* ------------------------------------------------------------------ *)
(* Request encoding                                                    *)
(* ------------------------------------------------------------------ *)

let encode_request ?deadline_s ?deadline_ms ?(retries = 0) ?(stream = false)
    (req : Engine.request) : string =
  let envelope =
    [ int_field "v" version; str_field "op" (Engine.op_name req) ]
    @ (match deadline_s with
      | None -> []
      | Some d -> [ num_field "deadline_s" d ])
    @ (match deadline_ms with
      | None -> []
      | Some d -> [ num_field "deadline_ms" d ])
    @ (if retries = 0 then [] else [ int_field "retries" retries ])
    @ if stream then [ bool_field "stream" true ] else []
  in
  let body =
    match req with
    | Engine.Check { source } -> [ source_fields source ]
    | Engine.Cost { source; device; form; nki; optimize; calib } ->
        [ source_fields source;
          str_field "device" device.Tytra_device.Device.dev_name;
          str_field "form" (form_to_string form);
          int_field "nki" nki;
          bool_field "optimize" optimize;
          opt str_field "calib" calib ]
    | Engine.Synth { source; device; effort; optimize } ->
        [ source_fields source;
          str_field "device" device.Tytra_device.Device.dev_name;
          str_field "effort" (effort_to_string effort);
          bool_field "optimize" optimize ]
    | Engine.Sim { source; device; form; nki; optimize } ->
        [ source_fields source;
          str_field "device" device.Tytra_device.Device.dev_name;
          str_field "form" (form_to_string form);
          int_field "nki" nki;
          bool_field "optimize" optimize ]
    | Engine.Explore x ->
        [ str_field "kernel" (Engine.kernel_to_string x.Engine.x_kernel);
          int_field "size" x.Engine.x_size;
          int_field "max_lanes" x.Engine.x_max_lanes;
          str_field "device" x.Engine.x_device.Tytra_device.Device.dev_name;
          str_field "form" (form_to_string x.Engine.x_form);
          int_field "nki" x.Engine.x_nki;
          int_field "jobs" x.Engine.x_jobs;
          bool_field "prune" x.Engine.x_prune;
          int_field "point_retries" x.Engine.x_retries;
          opt num_field "point_deadline_s" x.Engine.x_deadline_s;
          bool_field "best_effort" x.Engine.x_best_effort;
          opt str_field "checkpoint" x.Engine.x_checkpoint;
          int_field "checkpoint_every" x.Engine.x_checkpoint_every;
          opt str_field "resume" x.Engine.x_resume;
          opt str_field "place_mode"
            (Option.map Tytra_sim.Techmap.place_mode_to_string
               x.Engine.x_place_mode) ]
  in
  obj (envelope @ body)

(* ------------------------------------------------------------------ *)
(* Request decoding                                                    *)
(* ------------------------------------------------------------------ *)

type decoded_request = {
  dq_request : Engine.request;
  dq_deadline_s : float option;  (** request-level deadline *)
  dq_retries : int;              (** request-level retry budget *)
  dq_stream : bool;              (** client asked for progress frames *)
}

let bad fmt = Printf.ksprintf (fun m -> Error (Engine.Bad_request m)) fmt
let ( let* ) = Result.bind

let int_member ?default key j =
  match J.member key j with
  | Some (J.Num f) when Float.is_integer f -> Ok (int_of_float f)
  | Some _ -> bad "field %S must be an integer" key
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> bad "missing field %S" key)

let float_opt_member key j =
  match J.member key j with
  | Some (J.Num f) -> Ok (Some f)
  | Some J.Null | None -> Ok None
  | Some _ -> bad "field %S must be a number" key

let str_opt_member key j =
  match J.member key j with
  | Some (J.Str s) -> Ok (Some s)
  | Some J.Null | None -> Ok None
  | Some _ -> bad "field %S must be a string" key

let bool_member ~default key j =
  match J.member key j with
  | Some (J.Bool b) -> Ok b
  | None -> Ok default
  | Some _ -> bad "field %S must be a boolean" key

let decode_source j =
  match J.member "source" j with
  | None -> bad "missing field \"source\""
  | Some s -> (
      match (J.str_member "path" s, J.str_member "inline" s) with
      | Some p, None -> Ok (Engine.File p)
      | None, Some text -> Ok (Engine.Inline text)
      | Some _, Some _ -> bad "\"source\" has both \"path\" and \"inline\""
      | None, None ->
          bad "\"source\" must carry \"path\" or \"inline\"")

let decode_device j =
  match J.str_member "device" j with
  | None -> Ok Tytra_device.Device.stratixv_gsd8
  | Some name -> (
      match Tytra_device.Device.find name with
      | Some d -> Ok d
      | None ->
          bad "unknown device %S (known: %s)" name
            (String.concat ", "
               (List.map
                  (fun d -> d.Tytra_device.Device.dev_name)
                  Tytra_device.Device.all)))

let decode_form j =
  match J.str_member "form" j with
  | None -> Ok Tytra_cost.Throughput.FormB
  | Some s -> (
      match form_of_string s with
      | Some f -> Ok f
      | None -> bad "unknown form %S (known: A, B, C)" s)

let decode_effort j =
  match J.str_member "effort" j with
  | None -> Ok `Normal
  | Some s -> (
      match effort_of_string s with
      | Some e -> Ok e
      | None -> bad "unknown effort %S (known: fast, normal, full)" s)

let decode_op j = function
  | "check" ->
      let* source = decode_source j in
      Ok (Engine.Check { source })
  | "cost" ->
      let* source = decode_source j in
      let* device = decode_device j in
      let* form = decode_form j in
      let* nki = int_member ~default:1 "nki" j in
      let* optimize = bool_member ~default:false "optimize" j in
      let* calib = str_opt_member "calib" j in
      Ok (Engine.Cost { source; device; form; nki; optimize; calib })
  | "synth" ->
      let* source = decode_source j in
      let* device = decode_device j in
      let* effort = decode_effort j in
      let* optimize = bool_member ~default:false "optimize" j in
      Ok (Engine.Synth { source; device; effort; optimize })
  | "sim" ->
      let* source = decode_source j in
      let* device = decode_device j in
      let* form = decode_form j in
      let* nki = int_member ~default:1 "nki" j in
      let* optimize = bool_member ~default:false "optimize" j in
      Ok (Engine.Sim { source; device; form; nki; optimize })
  | "explore" ->
      let* kernel =
        match J.str_member "kernel" j with
        | None -> Ok Engine.Sor
        | Some s -> (
            match Engine.kernel_of_string s with
            | Some k -> Ok k
            | None ->
                bad "unknown kernel %S (known: sor, hotspot, lavamd, srad)" s)
      in
      let* size = int_member ~default:16 "size" j in
      let* max_lanes = int_member ~default:16 "max_lanes" j in
      let* device = decode_device j in
      let* form = decode_form j in
      let* nki = int_member ~default:1 "nki" j in
      let* jobs = int_member ~default:1 "jobs" j in
      let* prune = bool_member ~default:true "prune" j in
      let* retries = int_member ~default:0 "point_retries" j in
      let* deadline = float_opt_member "point_deadline_s" j in
      let* best_effort = bool_member ~default:false "best_effort" j in
      let* checkpoint = str_opt_member "checkpoint" j in
      let* checkpoint_every = int_member ~default:32 "checkpoint_every" j in
      let* resume = str_opt_member "resume" j in
      let* place_mode =
        match J.str_member "place_mode" j with
        | None -> Ok None
        | Some s -> (
            match Tytra_sim.Techmap.place_mode_of_string s with
            | Some m -> Ok (Some m)
            | None ->
                bad
                  "unknown place_mode %S (known: reference, incremental, \
                   parallel)"
                  s)
      in
      Ok
        (Engine.Explore
           {
             Engine.x_kernel = kernel; x_size = size; x_max_lanes = max_lanes;
             x_device = device; x_form = form; x_nki = nki; x_jobs = jobs;
             x_prune = prune; x_retries = retries; x_deadline_s = deadline;
             x_best_effort = best_effort; x_checkpoint = checkpoint;
             x_checkpoint_every = checkpoint_every; x_resume = resume;
             x_place_mode = place_mode;
           })
  | op -> bad "unknown op %S (known: check, cost, synth, sim, explore)" op

let decode_request (body : string) : (decoded_request, Engine.error) result =
  match J.parse body with
  | Error m -> bad "invalid JSON: %s" m
  | Ok j -> (
      match j with
      | J.Obj _ -> (
          match J.num_member "v" j with
          | None -> bad "missing protocol version \"v\""
          | Some v when int_of_float v <> version ->
              bad "unsupported protocol version %s (supported: %d)"
                (J.json_num v) version
          | Some _ -> (
              match J.str_member "op" j with
              | None -> bad "missing field \"op\""
              | Some op ->
                  let* dq_request = decode_op j op in
                  let* deadline_s = float_opt_member "deadline_s" j in
                  let* deadline_ms = float_opt_member "deadline_ms" j in
                  (* minor 2: deadline_ms wins over the legacy field
                     when a client sends both; either decodes into the
                     one engine-side budget *)
                  let dq_deadline_s =
                    match deadline_ms with
                    | Some ms -> Some (ms /. 1000.0)
                    | None -> deadline_s
                  in
                  let* dq_retries = int_member ~default:0 "retries" j in
                  let* dq_stream = bool_member ~default:false "stream" j in
                  Ok { dq_request; dq_deadline_s; dq_retries; dq_stream }))
      | _ -> bad "request must be a JSON object")

(* ------------------------------------------------------------------ *)
(* Response encoding                                                   *)
(* ------------------------------------------------------------------ *)

let payload_fields = function
  | Engine.Checked { ck_design; ck_funcs; ck_streams } ->
      [ str_field "design" ck_design;
        int_field "functions" ck_funcs;
        int_field "streams" ck_streams ]
  | Engine.Costed { co_ekit; co_valid } ->
      [ num_field "ekit" co_ekit; bool_field "valid" co_valid ]
  | Engine.Synthed { sy_fmax_mhz; sy_synth_s } ->
      [ num_field "fmax_mhz" sy_fmax_mhz; num_field "synth_s" sy_synth_s ]
  | Engine.Simmed { si_ekit; si_total_s } ->
      [ num_field "ekit" si_ekit; num_field "total_s" si_total_s ]
  | Engine.Explored
      { xr_space; xr_evaluated; xr_pruned; xr_failed; xr_restored; xr_points;
        xr_pareto; xr_selected } ->
      [ int_field "space" xr_space;
        int_field "evaluated" xr_evaluated;
        int_field "pruned" xr_pruned;
        int_field "failed" xr_failed;
        int_field "restored" xr_restored;
        int_field "points" xr_points;
        int_field "pareto" xr_pareto;
        (match xr_selected with
        | Some s -> str_field "selected" s
        | None -> Printf.sprintf "%s:null" (J.json_string "selected")) ]

let response_fields ~op (resp : Engine.response) =
  [ int_field "v" version;
    str_field "status" "ok";
    str_field "op" op;
    str_field "text" resp.Engine.rs_text;
    Printf.sprintf "%s:%s" (J.json_string "data")
      (obj (payload_fields resp.Engine.rs_payload)) ]

let error_fields (err : Engine.error) =
  [ int_field "v" version;
    str_field "status" "error";
    str_field "error" (Engine.error_kind err);
    int_field "exit_code" (Engine.exit_code err);
    str_field "message" (Engine.error_message err) ]

let encode_response ~op (resp : Engine.response) : string =
  obj (response_fields ~op resp)

let encode_error (err : Engine.error) : string = obj (error_fields err)

(** HTTP status for an error reply: wire-level rejections are 400,
    oversized bodies 413, rejected designs 422, deadline expiry 504,
    shed load 429, engine bugs 500. *)
let http_status = function
  | Engine.Bad_request _ -> 400
  | Engine.Request_too_large _ -> 413
  | Engine.Parse_error _ | Engine.Validation_error _ -> 422
  | Engine.Timeout_error _ | Engine.Deadline_exceeded _ -> 504
  | Engine.Overloaded -> 429
  | Engine.Internal_error _ -> 500

(* ------------------------------------------------------------------ *)
(* Response decoding (clients, round-trip tests)                       *)
(* ------------------------------------------------------------------ *)

type reply =
  | Reply_ok of { rp_op : string; rp_text : string; rp_data : J.t }
  | Reply_error of {
      re_kind : string;
      re_exit_code : int;
      re_message : string;
    }

let decode_reply (body : string) : (reply, string) result =
  match J.parse body with
  | Error m -> Error ("invalid JSON: " ^ m)
  | Ok j -> (
      match J.num_member "v" j with
      | None -> Error "missing protocol version \"v\""
      | Some v when int_of_float v <> version ->
          Error
            (Printf.sprintf "unsupported protocol version %s" (J.json_num v))
      | Some _ -> (
          match J.str_member "status" j with
          | Some "ok" -> (
              match (J.str_member "op" j, J.str_member "text" j) with
              | Some rp_op, Some rp_text ->
                  Ok
                    (Reply_ok
                       {
                         rp_op;
                         rp_text;
                         rp_data =
                           Option.value ~default:(J.Obj [])
                             (J.member "data" j);
                       })
              | _ -> Error "ok reply missing \"op\" or \"text\"")
          | Some "error" -> (
              match
                ( J.str_member "error" j,
                  J.num_member "exit_code" j,
                  J.str_member "message" j )
              with
              | Some re_kind, Some code, Some re_message ->
                  Ok
                    (Reply_error
                       { re_kind; re_exit_code = int_of_float code; re_message })
              | _ ->
                  Error
                    "error reply missing \"error\", \"exit_code\" or \
                     \"message\"")
          | Some s -> Error (Printf.sprintf "unknown status %S" s)
          | None -> Error "missing field \"status\""))

(* ------------------------------------------------------------------ *)
(* Streamed frames (minor version 1)                                   *)
(* ------------------------------------------------------------------ *)

(* A streamed reply is JSONL: zero or more progress frames, then exactly
   one result frame — a normal reply object plus the "frame":"result"
   discriminator, so a client that ignores unknown fields and reads the
   last line sees a v1 reply. *)

let encode_progress ~op (p : Tytra_dse.Dse.progress) : string =
  obj
    [ int_field "v" version;
      str_field "frame" "progress";
      str_field "op" op;
      int_field "space" p.Tytra_dse.Dse.pr_space;
      int_field "evaluated" p.Tytra_dse.Dse.pr_evaluated;
      int_field "pruned" p.Tytra_dse.Dse.pr_pruned;
      int_field "failed" p.Tytra_dse.Dse.pr_failed;
      int_field "restored" p.Tytra_dse.Dse.pr_restored ]

let encode_response_frame ~op (resp : Engine.response) : string =
  obj (response_fields ~op resp @ [ str_field "frame" "result" ])

let encode_error_frame (err : Engine.error) : string =
  obj (error_fields err @ [ str_field "frame" "result" ])

type progress_frame = {
  pf_op : string;
  pf_space : int;
  pf_evaluated : int;
  pf_pruned : int;
  pf_failed : int;
  pf_restored : int;
}

type frame = Frame_progress of progress_frame | Frame_result of reply

let decode_frame (line : string) : (frame, string) result =
  match J.parse line with
  | Error m -> Error ("invalid JSON: " ^ m)
  | Ok j -> (
      match J.str_member "frame" j with
      | Some "progress" ->
          let geti k =
            match J.num_member k j with
            | Some f -> int_of_float f
            | None -> 0
          in
          Ok
            (Frame_progress
               {
                 pf_op = Option.value ~default:"" (J.str_member "op" j);
                 pf_space = geti "space";
                 pf_evaluated = geti "evaluated";
                 pf_pruned = geti "pruned";
                 pf_failed = geti "failed";
                 pf_restored = geti "restored";
               })
      | Some "result" | None ->
          (* an unframed reply decodes as the result — one code path for
             streamed and plain bodies *)
          Result.map (fun r -> Frame_result r) (decode_reply line)
      | Some s -> Error (Printf.sprintf "unknown frame kind %S" s))
