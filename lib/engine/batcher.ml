(** Time/size-windowed request accumulation in front of
    {!Engine.submit_batch}.

    The daemon's worker domains block one request each; without batching
    every request pays a full pool dispatch. The batcher turns that into
    amortized dispatch: callers park their request in a shared pending
    list and block on a condition; a single dispatcher domain holds a
    window open — until [max_size] requests are pending or [window_ms]
    has elapsed since the first — then drains the window into one
    {!Engine.submit_batch} call and wakes every caller with its own
    result.

    Latency contract: a lone request waits at most the window (default
    2 ms) on top of its own evaluation; under load the window fills
    before it expires and adds nothing. Identical requests landing in
    one window collapse to a single evaluation ([submit_batch] dedup),
    which is precisely the stampede the response cache cannot absorb
    (concurrent misses race past each other).

    OCaml's [Condition] has no timed wait, so the dispatcher slices the
    window into short sleeps and re-checks the pending count — worst
    case it oversleeps by one slice (0.5 ms). *)

module Metrics = Tytra_telemetry.Metrics

type slot = {
  s_item : Engine.batch_item;
  s_budget : float option;   (* the deadline budget as submitted *)
  s_expires : float option;  (* absolute wall time the budget runs out *)
  mutable s_result : (Engine.response, Engine.error) result option;
}

type t = {
  engine : Engine.t;
  window_s : float;
  max_size : int;
  mutex : Mutex.t;
  cond : Condition.t;  (* broadcast on: results filled, or stop *)
  mutable pending : slot list;  (* newest first *)
  mutable stopping : bool;
  mutable stopped : bool;  (* dispatcher exited; submit after this = Overloaded *)
  mutable dispatcher : unit Domain.t option;
}

let window_slice_s = 0.0005

let drain_locked t =
  let slots = List.rev t.pending in
  t.pending <- [];
  slots

(* Runs outside the lock: the evaluation must never block producers from
   parking into the *next* window. Slots whose budget ran out while they
   were parked in the window are answered with a typed
   [Deadline_exceeded] instead of being evaluated — by the time their
   result came back the client's deadline would already have passed, so
   the evaluation would be pure waste heat. *)
let dispatch t slots =
  match slots with
  | [] -> ()
  | _ ->
      let now = Unix.gettimeofday () in
      let live, expired =
        List.partition
          (fun s ->
            match s.s_expires with
            | Some e when e <= now -> false
            | _ -> true)
          slots
      in
      (match expired with
      | [] -> ()
      | _ ->
          Metrics.incr ~by:(List.length expired) "engine.batch.deadline_expired";
          Mutex.lock t.mutex;
          List.iter
            (fun s ->
              s.s_result <-
                Some
                  (Error
                     (Engine.Deadline_exceeded
                        (Option.value ~default:0.0 s.s_budget))))
            expired;
          Condition.broadcast t.cond;
          Mutex.unlock t.mutex);
      match live with
      | [] -> ()
      | _ ->
          let results =
            Engine.submit_batch t.engine (List.map (fun s -> s.s_item) live)
          in
          Mutex.lock t.mutex;
          List.iter2 (fun s r -> s.s_result <- Some r) live results;
          Condition.broadcast t.cond;
          Mutex.unlock t.mutex

let rec dispatcher_loop t =
  Mutex.lock t.mutex;
  (* wait for work (or stop) *)
  while t.pending = [] && not t.stopping do
    Condition.wait t.cond t.mutex
  done;
  if t.pending = [] && t.stopping then begin
    t.stopped <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  end
  else begin
    Mutex.unlock t.mutex;
    (* hold the window open until it fills, expires, or we are draining *)
    let deadline = Unix.gettimeofday () +. t.window_s in
    let rec hold () =
      Mutex.lock t.mutex;
      let full = List.length t.pending >= t.max_size in
      let stop_now = t.stopping in
      Mutex.unlock t.mutex;
      if (not full) && (not stop_now) && Unix.gettimeofday () < deadline
      then begin
        Unix.sleepf window_slice_s;
        hold ()
      end
    in
    hold ();
    Mutex.lock t.mutex;
    let slots = drain_locked t in
    Mutex.unlock t.mutex;
    dispatch t slots;
    dispatcher_loop t
  end

let create ?(window_ms = 2.0) ?(max_size = 16) engine =
  let t =
    {
      engine;
      window_s = Float.max 0.0 window_ms /. 1000.0;
      max_size = max 1 max_size;
      mutex = Mutex.create ();
      cond = Condition.create ();
      pending = [];
      stopping = false;
      stopped = false;
      dispatcher = None;
    }
  in
  t.dispatcher <- Some (Domain.spawn (fun () -> dispatcher_loop t));
  t

let window_ms t = t.window_s *. 1000.0
let max_size t = t.max_size

(* Blocks the calling domain until the dispatcher fills the slot.
   Deadline admission: a request whose whole budget is no larger than
   the batch window cannot possibly be answered in time — the window
   alone would consume it — so it is refused up front with a typed
   [Deadline_exceeded] rather than parked to die in the queue. *)
let submit ?deadline_s ?retries t req =
  match deadline_s with
  | Some budget when budget <= t.window_s ->
      Metrics.incr "engine.batch.deadline_rejected";
      Error (Engine.Deadline_exceeded budget)
  | _ ->
  let slot =
    {
      s_item = Engine.batch_item ?deadline_s ?retries req;
      s_budget = deadline_s;
      s_expires =
        Option.map (fun d -> Unix.gettimeofday () +. d) deadline_s;
      s_result = None;
    }
  in
  Mutex.lock t.mutex;
  if t.stopped then begin
    Mutex.unlock t.mutex;
    Metrics.incr "engine.batch.rejected";
    Error Engine.Overloaded
  end
  else begin
    t.pending <- slot :: t.pending;
    Condition.broadcast t.cond;
    while slot.s_result = None && not t.stopped do
      Condition.wait t.cond t.mutex
    done;
    let r =
      match slot.s_result with
      | Some r -> r
      | None ->
          (* stop raced us in before the dispatcher saw the slot *)
          Metrics.incr "engine.batch.rejected";
          Error Engine.Overloaded
    in
    Mutex.unlock t.mutex;
    r
  end

(* Graceful drain: flag stop, wake the dispatcher; it flushes every
   pending window (the [stopping] check inside [hold] cuts the window
   short) and exits on the empty queue. Call after the server has
   stopped accepting, so nothing new arrives mid-drain. *)
let stop t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.cond;
  if already then begin
    (* a concurrent stop owns the join; wait for its drain to finish *)
    while not t.stopped do
      Condition.wait t.cond t.mutex
    done;
    Mutex.unlock t.mutex
  end
  else begin
    Mutex.unlock t.mutex;
    Option.iter Domain.join t.dispatcher
  end
