(** Deterministic fault injection for the execution layer.

    Disabled unless a spec is installed (programmatically or via the
    [TYTRA_FAULT_SPEC] environment variable). Schedules are seeded and
    keyed by a global task index, so the [n]-th submitted task observes
    the same fate in every run — see [faultgen.ml] for the schedule
    semantics and the spec syntax. *)

exception Injected_failure of int
(** [Injected_failure id] — the scheduled failure of task [id]. *)

type spec = {
  fs_seed : int;  (** seeds the pseudo-random failure selection *)
  fs_fail : float;  (** fraction of tasks that fail, in [0, 1] *)
  fs_fail_attempts : int;
      (** inject failures/timeouts only while [attempt <= this] *)
  fs_fail_at : int list;  (** explicit task ids that fail *)
  fs_timeout_at : int list;  (** explicit task ids that hang *)
  fs_delay_s : float;  (** how long a hung task sleeps *)
  fs_crash_at : int option;  (** task id that SIGKILLs the process *)
}

val default : spec
(** All-zeros spec: no faults even if installed. *)

val parse : string -> (spec, string) result
(** Parse ["seed=42,fail=0.1,fail_at=3:5,timeout_at=7,delay_s=30,crash_at=12"].
    Lists are colon-separated; unknown keys and out-of-range values are
    errors. *)

val to_string : spec -> string
(** Round-trips through {!parse} (modulo field order and defaults). *)

val installed : unit -> spec option
val install : spec option -> unit

val with_spec : spec option -> (unit -> 'a) -> 'a
(** Run with the given spec installed, restoring the previous one
    afterwards (exception-safe). *)

val next_id : unit -> int
(** Draw the next task id from the process-wide counter. The pool calls
    this at submission time, before work fans out, so ids — and hence
    the fault schedule — are independent of domain interleaving. *)

val reset_counter : unit -> unit
(** Restart ids at 0 (tests; lets one process replay a schedule). *)

val inject : id:int -> attempt:int -> unit
(** Apply the installed schedule to task [id] on its [attempt]-th try
    (1-based): possibly SIGKILL the process, sleep, or raise
    {!Injected_failure}. No-op when no spec is installed. *)
