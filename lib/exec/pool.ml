(** Domain-based worker pool for the evaluation loop.

    The DSE sweep is embarrassingly parallel — every (variant, device,
    form) point lowers and costs independently — but variants are
    *uneven*: a 16-lane variant elaborates an order of magnitude more IR
    than the baseline pipe. A static block partition would leave most
    domains idle behind the one that drew the widest variants, so [map]
    feeds workers from a shared deque of small index chunks: each worker
    pops the next chunk when it runs dry, which bounds the straggler
    penalty by one chunk rather than one block.

    Semantics are kept exactly sequential-equivalent:

    - results come back in input order, whatever order workers finish;
    - the first exception raised by any worker is re-raised (with its
      backtrace) from [map] after all domains have been joined;
    - [jobs = 1] short-circuits to [List.map] on the calling domain —
      no domains, no mutex, bit-identical behaviour for tests and for
      callers that need deterministic telemetry nesting. *)

type t = { pool_jobs : int }

(** Upper bound used by [default_jobs]: going past the physical core
    count only adds scheduling noise to a CPU-bound sweep. *)
let max_sensible_jobs = 64

let default_jobs () =
  min max_sensible_jobs (Domain.recommended_domain_count ())

let create ?jobs () =
  let j = match jobs with Some j -> j | None -> default_jobs () in
  { pool_jobs = max 1 j }

let jobs t = t.pool_jobs

(* ------------------------------------------------------------------ *)
(* Work deque: index chunks [lo, hi), popped front-first under a lock.  *)
(* ------------------------------------------------------------------ *)

type deque = {
  dq_mutex : Mutex.t;
  mutable dq_chunks : (int * int) list;
}

let deque_of ~n ~workers =
  (* Small chunks (≈4 per worker) so an expensive tail item cannot hold
     the whole sweep hostage; at least 1 so tiny inputs still terminate. *)
  let chunk = max 1 (n / (workers * 4)) in
  let rec build lo acc =
    if lo >= n then List.rev acc
    else build (lo + chunk) ((lo, min n (lo + chunk)) :: acc)
  in
  { dq_mutex = Mutex.create (); dq_chunks = build 0 [] }

let deque_pop dq =
  Mutex.lock dq.dq_mutex;
  let r =
    match dq.dq_chunks with
    | [] -> None
    | c :: tl ->
        dq.dq_chunks <- tl;
        Some c
  in
  Mutex.unlock dq.dq_mutex;
  r

(* ------------------------------------------------------------------ *)
(* map                                                                  *)
(* ------------------------------------------------------------------ *)

type 'b slot = Pending | Done of 'b

(** [map t f xs] — [List.map f xs], fanned out over [jobs t] domains.
    Order-preserving; re-raises the first worker exception. *)
let map (t : t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let n = List.length xs in
  if t.pool_jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let workers = min t.pool_jobs n in
    let input = Array.of_list xs in
    let results = Array.make n Pending in
    let dq = deque_of ~n ~workers in
    let failure_mutex = Mutex.create () in
    let failure : (exn * Printexc.raw_backtrace) option ref = ref None in
    let failed = Atomic.make false in
    let record_failure e bt =
      Mutex.lock failure_mutex;
      if !failure = None then failure := Some (e, bt);
      Mutex.unlock failure_mutex;
      Atomic.set failed true
    in
    let worker () =
      let rec drain () =
        if Atomic.get failed then ()
        else
          match deque_pop dq with
          | None -> ()
          | Some (lo, hi) ->
              (try
                 for i = lo to hi - 1 do
                   if not (Atomic.get failed) then
                     results.(i) <- Done (f input.(i))
                 done
               with e ->
                 record_failure e (Printexc.get_raw_backtrace ()));
              drain ()
      in
      drain ()
    in
    let domains = List.init workers (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    Tytra_telemetry.Metrics.incr "exec.pool.maps";
    Tytra_telemetry.Metrics.add "exec.pool.items" (float_of_int n);
    match !failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.to_list results
        |> List.map (function
             | Done v -> v
             | Pending ->
                 (* unreachable: every chunk was drained and no failure
                    was recorded *)
                 invalid_arg "Pool.map: missing result")
  end

(** [with_pool ?jobs f] — scoped pool; today a pool holds no OS
    resources, but callers should not rely on that. *)
let with_pool ?jobs f = f (create ?jobs ())
